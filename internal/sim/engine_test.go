package sim

import (
	"testing"
	"testing/quick"

	"colab/internal/mathx"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	e.At(30, func() { got = append(got, 30) })
	e.At(10, func() { got = append(got, 10) })
	e.At(20, func() { got = append(got, 20) })
	e.Run(0)
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("order = %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("now = %v", e.Now())
	}
}

func TestEqualTimestampsFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func() { fired = true })
	e.Cancel(ev)
	e.Cancel(nil) // must not panic
	e.Run(0)
	if fired {
		t.Fatalf("cancelled event fired")
	}
	if e.Processed != 0 {
		t.Fatalf("processed = %d", e.Processed)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	var got []Time
	e.At(10, func() {
		got = append(got, e.Now())
		e.After(5, func() { got = append(got, e.Now()) })
	})
	e.Run(0)
	if len(got) != 2 || got[0] != 10 || got[1] != 15 {
		t.Fatalf("got %v", got)
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	e := NewEngine()
	var got []Time
	e.At(10, func() { got = append(got, 10) })
	e.At(30, func() { got = append(got, 30) })
	e.RunUntil(20)
	if len(got) != 1 || got[0] != 10 {
		t.Fatalf("got %v", got)
	}
	if e.Now() != 20 {
		t.Fatalf("clock must advance to the deadline, got %v", e.Now())
	}
	e.Run(0)
	if len(got) != 2 {
		t.Fatalf("later event lost: %v", got)
	}
}

func TestStopAndBudget(t *testing.T) {
	e := NewEngine()
	count := 0
	var rearm func()
	rearm = func() {
		count++
		if count == 5 {
			e.Stop()
		}
		e.After(1, rearm)
	}
	e.After(1, rearm)
	e.Run(0)
	if count != 5 {
		t.Fatalf("Stop did not stop: %d", count)
	}
	// Budget-bounded run of a self-rearming event.
	e2 := NewEngine()
	n := 0
	var loop func()
	loop = func() { n++; e2.After(1, loop) }
	e2.After(1, loop)
	if fired := e2.Run(7); fired != 7 || n != 7 {
		t.Fatalf("budget run fired %d, handler ran %d", fired, n)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Errorf("scheduling in the past must panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run(0)

	defer func() {
		if recover() == nil {
			t.Errorf("negative After must panic")
		}
	}()
	e.After(-1, func() {})
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		5:                  "5ns",
		3 * Microsecond:    "3.000us",
		2 * Millisecond:    "2.000ms",
		1500 * Millisecond: "1.500s",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(in), got, want)
		}
	}
	if s := (2 * Second).Seconds(); s != 2 {
		t.Errorf("Seconds = %v", s)
	}
	if m := (3 * Millisecond).Millis(); m != 3 {
		t.Errorf("Millis = %v", m)
	}
}

// Property: N random events fire exactly once each, in non-decreasing time
// order, and the clock never goes backwards.
func TestRandomScheduleProperty(t *testing.T) {
	check := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		e := NewEngine()
		n := 1 + rng.IntN(200)
		fired := 0
		last := Time(-1)
		ok := true
		for i := 0; i < n; i++ {
			at := Time(rng.IntN(1000))
			e.At(at, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
				fired++
			})
		}
		e.Run(0)
		return ok && fired == n && e.Pending() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
