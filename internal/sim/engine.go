// Package sim is a deterministic discrete-event simulation engine. It stands
// in for gem5's event-driven core: the kernel model, the cores and the
// periodic scheduler machinery all advance by scheduling callbacks on a
// single virtual clock.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is simulated time in nanoseconds.
type Time int64

// Convenient durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders a Time with a readable unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds returns the time in seconds as a float.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns the time in milliseconds as a float.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Event is a scheduled callback. Events are single-shot; cancelling an event
// that already fired is a no-op.
//
// Handle lifetime: the engine recycles Event objects through an internal
// freelist so steady-state scheduling does not allocate. A handle returned
// by At/After is valid until its callback fires or it is cancelled; after
// either, the holder must drop the handle — the same object may be reissued
// for a later, unrelated scheduling, and a stale Cancel would then kill
// that event.
type Event struct {
	at       Time
	seq      uint64 // tie-break: FIFO among equal timestamps
	fn       func()
	canceled bool
	fired    bool
}

// At returns the time the event is (or was) scheduled for.
func (e *Event) At() Time { return e.at }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*Event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is the event loop. The zero value is not usable; call NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventQueue
	free    []*Event // fired/collected events awaiting reuse
	stopped bool
	// Processed counts fired (non-cancelled) events, for tests and stats.
	Processed uint64
	// PostStep, when set, runs after every event handler returns — the
	// machine is in a consistent between-events state there. Used by
	// validation harnesses (kernel.CheckInvariants); nil in production.
	PostStep func()
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn at absolute time t (>= Now) and returns a cancellable
// handle. Scheduling in the past panics: it would silently corrupt
// causality.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free = e.free[:n-1]
		*ev = Event{at: t, seq: e.seq, fn: fn}
	} else {
		ev = &Event{at: t, seq: e.seq, fn: fn}
	}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel deactivates ev. Safe to call on nil, already-cancelled or
// already-fired events.
func (e *Engine) Cancel(ev *Event) {
	if ev != nil {
		ev.canceled = true
	}
}

// Stop makes the current Run call return after the in-flight event.
func (e *Engine) Stop() { e.stopped = true }

// recycle returns a popped event to the freelist, dropping its closure so
// captured state does not outlive the event.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	e.free = append(e.free, ev)
}

// Step fires the next pending event. It reports whether an event fired
// (false when the queue is empty).
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		ev.fired = true
		e.Processed++
		ev.fn()
		if e.PostStep != nil {
			e.PostStep()
		}
		e.recycle(ev)
		return true
	}
	return false
}

// Run fires events until the queue drains, Stop is called, or the event
// budget maxEvents is exhausted (0 means unlimited). It returns the number
// of events fired.
func (e *Engine) Run(maxEvents uint64) uint64 {
	e.stopped = false
	var fired uint64
	for !e.stopped {
		if maxEvents > 0 && fired >= maxEvents {
			break
		}
		if !e.Step() {
			break
		}
		fired++
	}
	return fired
}

// RunUntil fires events with timestamps <= deadline, leaving later events
// queued, and advances the clock to deadline.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.canceled {
			e.recycle(heap.Pop(&e.queue).(*Event))
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Pending returns the number of queued (possibly cancelled) events.
func (e *Engine) Pending() int { return len(e.queue) }
