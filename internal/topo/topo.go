// Package topo models multi-socket machine topology as a layer over the
// tier palette: cores grouped into shared-LLC domains, domains grouped
// into sockets, and an inter-domain distance matrix in hops. A migration
// that crosses a domain boundary pays a cold-cache penalty — PenaltyCycles
// destination-core cycles per hop — which the kernel charges as extra
// burst time on cross-domain dispatches.
//
// The zero value is the flat topology: one implicit domain containing
// every core, zero distance everywhere, exactly the pre-topology machine
// model. Everything downstream (fingerprints, scheduling behaviour) is
// gated so a flat topology is byte-identical to having no topology at
// all, and a topology whose penalty is zero schedules identically to the
// flat machine.
package topo

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// DefaultPenaltyCycles is the committed palettes' cold-cache migration
// penalty: destination-core cycles per distance hop (8000 cycles ≈ 4 µs
// at 2 GHz — the order of refilling a warmed private cache footprint).
const DefaultPenaltyCycles = 8000

// Domain is one shared-LLC core group.
type Domain struct {
	// Socket is the socket index the domain belongs to.
	Socket int
	// Cores lists the member core IDs in ascending order. Domains of one
	// topology partition the machine's core index space.
	Cores []int
}

// Topology describes the socket/LLC-domain layout of a machine. The zero
// value (and any single-domain value) is flat: no distance, no penalty.
type Topology struct {
	// Domains are the LLC domains; nil or a single domain means flat.
	Domains []Domain
	// PenaltyCycles is the cold-cache migration penalty in destination-core
	// cycles per distance hop.
	PenaltyCycles float64
	// Dist optionally overrides the derived inter-domain distance matrix
	// (hops, symmetric, zero diagonal). When nil, distance is derived from
	// the socket layout: 0 within a domain, 1 between domains of one
	// socket, 2 across sockets.
	Dist [][]int
}

// IsFlat reports whether the topology is the flat (single-domain) machine.
func (t Topology) IsFlat() bool { return len(t.Domains) <= 1 }

// Active reports whether the topology affects scheduling: multiple
// domains and a non-zero migration penalty. Every topology-aware code
// path gates on this, which is what makes a zero-penalty topology
// bit-identical to the flat machine.
func (t Topology) Active() bool { return !t.IsFlat() && t.PenaltyCycles > 0 }

// NumDomains returns the LLC-domain count (1 for flat topologies).
func (t Topology) NumDomains() int {
	if len(t.Domains) == 0 {
		return 1
	}
	return len(t.Domains)
}

// NumSockets returns the socket count (1 for flat topologies).
func (t Topology) NumSockets() int {
	if len(t.Domains) == 0 {
		return 1
	}
	seen := map[int]bool{}
	for _, d := range t.Domains {
		seen[d.Socket] = true
	}
	return len(seen)
}

// CoreDomains returns the per-core domain index for a machine of n cores:
// out[i] is core i's domain (all zero for flat topologies). The topology
// must be valid for n cores.
func (t Topology) CoreDomains(n int) []int {
	out := make([]int, n)
	for di, d := range t.Domains {
		for _, c := range d.Cores {
			if c >= 0 && c < n {
				out[c] = di
			}
		}
	}
	return out
}

// Distance returns the hop count between domains a and b: the explicit
// Dist matrix when set, otherwise 0 within a domain, 1 between domains of
// one socket and 2 across sockets.
func (t Topology) Distance(a, b int) int {
	if a == b {
		return 0
	}
	if t.Dist != nil {
		return t.Dist[a][b]
	}
	if t.Domains[a].Socket == t.Domains[b].Socket {
		return 1
	}
	return 2
}

// Validate reports structural problems for a machine of numCores cores:
// the domains must partition [0, numCores), socket indices must be
// non-negative, and an explicit distance matrix must be square,
// symmetric, non-negative and zero on the diagonal.
func (t Topology) Validate(numCores int) error {
	if t.PenaltyCycles < 0 {
		return fmt.Errorf("topo: negative migration penalty %g cycles", t.PenaltyCycles)
	}
	if len(t.Domains) == 0 {
		if t.Dist != nil {
			return fmt.Errorf("topo: distance matrix without domains")
		}
		return nil
	}
	seen := make([]bool, numCores)
	total := 0
	for di, d := range t.Domains {
		if d.Socket < 0 {
			return fmt.Errorf("topo: domain %d has negative socket index %d", di, d.Socket)
		}
		if len(d.Cores) == 0 {
			return fmt.Errorf("topo: domain %d has no cores", di)
		}
		for _, c := range d.Cores {
			if c < 0 || c >= numCores {
				return fmt.Errorf("topo: domain %d core %d outside machine of %d cores", di, c, numCores)
			}
			if seen[c] {
				return fmt.Errorf("topo: core %d appears in two domains", c)
			}
			seen[c] = true
			total++
		}
	}
	if total != numCores {
		return fmt.Errorf("topo: domains cover %d of %d cores", total, numCores)
	}
	if t.Dist != nil {
		n := len(t.Domains)
		if len(t.Dist) != n {
			return fmt.Errorf("topo: distance matrix has %d rows for %d domains", len(t.Dist), n)
		}
		for i, row := range t.Dist {
			if len(row) != n {
				return fmt.Errorf("topo: distance row %d has %d entries for %d domains", i, len(row), n)
			}
			for j, v := range row {
				if v < 0 {
					return fmt.Errorf("topo: negative distance %d between domains %d and %d", v, i, j)
				}
				if i == j && v != 0 {
					return fmt.Errorf("topo: non-zero self distance %d for domain %d", v, i)
				}
				if t.Dist[j][i] != v {
					return fmt.Errorf("topo: asymmetric distance between domains %d and %d", i, j)
				}
			}
		}
	}
	return nil
}

// Uniform builds the regular layout the committed NUMA palettes use:
// sockets × domainsPerSocket contiguous LLC domains of coresPerDomain
// cores each, socket-major, with the derived distance matrix.
func Uniform(sockets, domainsPerSocket, coresPerDomain int, penaltyCycles float64) Topology {
	if sockets < 1 || domainsPerSocket < 1 || coresPerDomain < 1 {
		panic(fmt.Sprintf("topo: Uniform(%d, %d, %d) needs positive shape", sockets, domainsPerSocket, coresPerDomain))
	}
	t := Topology{PenaltyCycles: penaltyCycles}
	next := 0
	for s := 0; s < sockets; s++ {
		for d := 0; d < domainsPerSocket; d++ {
			cores := make([]int, coresPerDomain)
			for i := range cores {
				cores[i] = next
				next++
			}
			t.Domains = append(t.Domains, Domain{Socket: s, Cores: cores})
		}
	}
	return t
}

// ---------------------------------------------------------------------------
// Canonical form.

// Canonical renders the topology as its canonical string: "flat" for the
// flat topology, otherwise a deterministic "cost=...;dom=socket:ranges;..."
// form (cores ascending, ranges compressed, '+'-joined) with the explicit
// distance matrix appended when one is set. Equal canonical strings mean
// equal topologies; Parse round-trips the form. Config fingerprints fold
// this string in for non-flat topologies.
func (t Topology) Canonical() string {
	if t.IsFlat() {
		return "flat"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "cost=%g", t.PenaltyCycles)
	for _, d := range t.Domains {
		fmt.Fprintf(&b, ";dom=%d:%s", d.Socket, rangesOf(d.Cores))
	}
	if t.Dist != nil {
		b.WriteString(";dist=")
		for i, row := range t.Dist {
			if i > 0 {
				b.WriteByte('/')
			}
			for j, v := range row {
				if j > 0 {
					b.WriteByte(',')
				}
				b.WriteString(strconv.Itoa(v))
			}
		}
	}
	return b.String()
}

// rangesOf compresses an ascending-sorted copy of ids into "0-3+8+10-11".
func rangesOf(ids []int) string {
	sorted := append([]int(nil), ids...)
	sort.Ints(sorted)
	var b strings.Builder
	for i := 0; i < len(sorted); {
		j := i
		for j+1 < len(sorted) && sorted[j+1] == sorted[j]+1 {
			j++
		}
		if b.Len() > 0 {
			b.WriteByte('+')
		}
		if i == j {
			b.WriteString(strconv.Itoa(sorted[i]))
		} else {
			fmt.Fprintf(&b, "%d-%d", sorted[i], sorted[j])
		}
		i = j + 1
	}
	return b.String()
}

// Parse reads a canonical topology string back into a Topology. It
// accepts exactly what Canonical emits ("flat" or the cost/dom[/dist]
// form); Parse(t.Canonical()) reproduces t with core lists sorted.
func Parse(s string) (Topology, error) {
	if s == "flat" {
		return Topology{}, nil
	}
	var t Topology
	sawCost := false
	for _, part := range strings.Split(s, ";") {
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Topology{}, fmt.Errorf("topo: malformed field %q (want key=value)", part)
		}
		switch key {
		case "cost":
			if sawCost {
				return Topology{}, fmt.Errorf("topo: duplicate cost field")
			}
			v, err := strconv.ParseFloat(val, 64)
			if err != nil || v < 0 {
				return Topology{}, fmt.Errorf("topo: bad cost %q", val)
			}
			sawCost = true
			t.PenaltyCycles = v
		case "dom":
			sockStr, coreStr, ok := strings.Cut(val, ":")
			if !ok {
				return Topology{}, fmt.Errorf("topo: malformed domain %q (want socket:ranges)", val)
			}
			sock, err := strconv.Atoi(sockStr)
			if err != nil || sock < 0 {
				return Topology{}, fmt.Errorf("topo: bad socket %q", sockStr)
			}
			cores, err := parseRanges(coreStr)
			if err != nil {
				return Topology{}, err
			}
			t.Domains = append(t.Domains, Domain{Socket: sock, Cores: cores})
		case "dist":
			if t.Dist != nil {
				return Topology{}, fmt.Errorf("topo: duplicate dist field")
			}
			for _, rowStr := range strings.Split(val, "/") {
				var row []int
				for _, cell := range strings.Split(rowStr, ",") {
					v, err := strconv.Atoi(cell)
					if err != nil {
						return Topology{}, fmt.Errorf("topo: bad distance %q", cell)
					}
					row = append(row, v)
				}
				t.Dist = append(t.Dist, row)
			}
		default:
			return Topology{}, fmt.Errorf("topo: unknown field %q", key)
		}
	}
	if !sawCost {
		return Topology{}, fmt.Errorf("topo: missing cost field")
	}
	if len(t.Domains) < 2 {
		return Topology{}, fmt.Errorf("topo: %d domains; a non-flat topology needs at least 2", len(t.Domains))
	}
	return t, nil
}

// parseRanges reads "0-3+8+10-11" into its ascending member list.
func parseRanges(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, "+") {
		lo, hi, isRange := strings.Cut(part, "-")
		a, err := strconv.Atoi(lo)
		if err != nil || a < 0 {
			return nil, fmt.Errorf("topo: bad core range %q", part)
		}
		b := a
		if isRange {
			if b, err = strconv.Atoi(hi); err != nil || b < a {
				return nil, fmt.Errorf("topo: bad core range %q", part)
			}
		}
		if b-a >= 1<<20 {
			return nil, fmt.Errorf("topo: core range %q too large", part)
		}
		for c := a; c <= b; c++ {
			out = append(out, c)
		}
	}
	return out, nil
}
