package topo

import "testing"

// FuzzTopologyCanonical hunts for canonical-form instability: any string
// Parse accepts must re-render to a fixed point (Parse∘Canonical is
// idempotent) and survive a second round trip unchanged. Seeds cover the
// committed palette layouts, explicit distance matrices, non-contiguous
// core sets and the flat sentinel.
func FuzzTopologyCanonical(f *testing.F) {
	f.Add("flat")
	f.Add(Uniform(2, 2, 64, DefaultPenaltyCycles).Canonical())
	f.Add(Uniform(4, 1, 32, DefaultPenaltyCycles).Canonical())
	f.Add(Uniform(2, 1, 4, DefaultPenaltyCycles).Canonical())
	f.Add("cost=0;dom=0:0-1;dom=1:2-3")
	f.Add("cost=100;dom=0:0+2+4;dom=1:1+3+5-7")
	f.Add("cost=8000;dom=0:0-1;dom=1:2-3;dist=0,4/4,0")
	f.Add("cost=1.5;dom=0:0;dom=0:1;dom=1:2;dom=1:3")
	f.Fuzz(func(t *testing.T, s string) {
		topo, err := Parse(s)
		if err != nil {
			return
		}
		canon := topo.Canonical()
		back, err := Parse(canon)
		if err != nil {
			t.Fatalf("Canonical %q of accepted input %q does not re-parse: %v", canon, s, err)
		}
		if again := back.Canonical(); again != canon {
			t.Fatalf("canonical form unstable: %q -> %q -> %q", s, canon, again)
		}
	})
}
