package topo

import (
	"reflect"
	"strings"
	"testing"
)

func TestFlatZeroValue(t *testing.T) {
	var z Topology
	if !z.IsFlat() || z.Active() {
		t.Fatalf("zero topology: IsFlat=%v Active=%v, want flat and inactive", z.IsFlat(), z.Active())
	}
	if got := z.NumDomains(); got != 1 {
		t.Fatalf("flat NumDomains = %d, want 1", got)
	}
	if got := z.NumSockets(); got != 1 {
		t.Fatalf("flat NumSockets = %d, want 1", got)
	}
	if got := z.Canonical(); got != "flat" {
		t.Fatalf("flat Canonical = %q", got)
	}
	if err := z.Validate(8); err != nil {
		t.Fatalf("flat Validate: %v", err)
	}
	for _, d := range z.CoreDomains(4) {
		if d != 0 {
			t.Fatalf("flat CoreDomains = %v, want all zero", z.CoreDomains(4))
		}
	}
}

func TestActiveGate(t *testing.T) {
	u := Uniform(2, 1, 2, DefaultPenaltyCycles)
	if !u.Active() {
		t.Fatalf("2-socket topology with penalty should be active")
	}
	u.PenaltyCycles = 0
	if u.Active() {
		t.Fatalf("zero-penalty topology must be inactive")
	}
	single := Uniform(1, 1, 4, DefaultPenaltyCycles)
	if !single.IsFlat() || single.Active() {
		t.Fatalf("single-domain topology must be flat and inactive")
	}
}

func TestUniformLayoutAndDistance(t *testing.T) {
	// 2 sockets × 2 domains × 3 cores, socket-major contiguous.
	u := Uniform(2, 2, 3, 1000)
	if err := u.Validate(12); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := u.NumDomains(); got != 4 {
		t.Fatalf("NumDomains = %d, want 4", got)
	}
	if got := u.NumSockets(); got != 2 {
		t.Fatalf("NumSockets = %d, want 2", got)
	}
	wantDomains := []int{0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3}
	if got := u.CoreDomains(12); !reflect.DeepEqual(got, wantDomains) {
		t.Fatalf("CoreDomains = %v, want %v", got, wantDomains)
	}
	// Derived distance: 0 same domain, 1 same socket, 2 cross-socket.
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 1}, {1, 0, 1}, {0, 2, 2}, {1, 3, 2}, {2, 3, 1},
	}
	for _, c := range cases {
		if got := u.Distance(c.a, c.b); got != c.want {
			t.Errorf("Distance(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestExplicitDistanceMatrix(t *testing.T) {
	u := Uniform(2, 1, 2, 500)
	u.Dist = [][]int{{0, 3}, {3, 0}}
	if err := u.Validate(4); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := u.Distance(0, 1); got != 3 {
		t.Fatalf("explicit Distance(0,1) = %d, want 3", got)
	}
	canon := u.Canonical()
	if !strings.Contains(canon, ";dist=0,3/3,0") {
		t.Fatalf("Canonical %q missing dist matrix", canon)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []struct {
		name string
		t    Topology
		n    int
	}{
		{"negative penalty", Topology{PenaltyCycles: -1}, 4},
		{"dist without domains", Topology{Dist: [][]int{{0}}}, 4},
		{"empty domain", Topology{Domains: []Domain{{Socket: 0}, {Socket: 1, Cores: []int{0, 1, 2, 3}}}}, 4},
		{"negative socket", Topology{Domains: []Domain{{Socket: -1, Cores: []int{0, 1}}, {Socket: 0, Cores: []int{2, 3}}}}, 4},
		{"core out of range", Topology{Domains: []Domain{{Socket: 0, Cores: []int{0, 9}}, {Socket: 1, Cores: []int{1, 2}}}}, 4},
		{"duplicate core", Topology{Domains: []Domain{{Socket: 0, Cores: []int{0, 1}}, {Socket: 1, Cores: []int{1, 2}}}}, 4},
		{"partial cover", Topology{Domains: []Domain{{Socket: 0, Cores: []int{0, 1}}, {Socket: 1, Cores: []int{2}}}}, 4},
		{"ragged dist", Topology{Domains: []Domain{{Socket: 0, Cores: []int{0, 1}}, {Socket: 1, Cores: []int{2, 3}}}, Dist: [][]int{{0, 1}, {1}}}, 4},
		{"asymmetric dist", Topology{Domains: []Domain{{Socket: 0, Cores: []int{0, 1}}, {Socket: 1, Cores: []int{2, 3}}}, Dist: [][]int{{0, 1}, {2, 0}}}, 4},
		{"nonzero diagonal", Topology{Domains: []Domain{{Socket: 0, Cores: []int{0, 1}}, {Socket: 1, Cores: []int{2, 3}}}, Dist: [][]int{{1, 1}, {1, 0}}}, 4},
		{"negative dist", Topology{Domains: []Domain{{Socket: 0, Cores: []int{0, 1}}, {Socket: 1, Cores: []int{2, 3}}}, Dist: [][]int{{0, -1}, {-1, 0}}}, 4},
	}
	for _, c := range bad {
		if err := c.t.Validate(c.n); err == nil {
			t.Errorf("%s: Validate accepted invalid topology", c.name)
		}
	}
}

func TestCanonicalForm(t *testing.T) {
	u := Uniform(2, 2, 4, 8000)
	want := "cost=8000;dom=0:0-3;dom=0:4-7;dom=1:8-11;dom=1:12-15"
	if got := u.Canonical(); got != want {
		t.Fatalf("Canonical = %q, want %q", got, want)
	}
	// Non-contiguous cores use '+'-joined ranges.
	nc := Topology{
		PenaltyCycles: 100,
		Domains: []Domain{
			{Socket: 0, Cores: []int{0, 2, 4}},
			{Socket: 1, Cores: []int{1, 3, 5, 6, 7}},
		},
	}
	want = "cost=100;dom=0:0+2+4;dom=1:1+3+5-7"
	if got := nc.Canonical(); got != want {
		t.Fatalf("Canonical = %q, want %q", got, want)
	}
}

func TestParseRoundTrip(t *testing.T) {
	topos := []Topology{
		{},
		Uniform(2, 1, 2, 0),
		Uniform(2, 2, 4, 8000),
		Uniform(4, 1, 32, 123.5),
		{
			PenaltyCycles: 100,
			Domains: []Domain{
				{Socket: 0, Cores: []int{0, 2, 4}},
				{Socket: 1, Cores: []int{1, 3, 5, 6, 7}},
			},
			Dist: [][]int{{0, 4}, {4, 0}},
		},
	}
	for _, orig := range topos {
		canon := orig.Canonical()
		back, err := Parse(canon)
		if err != nil {
			t.Fatalf("Parse(%q): %v", canon, err)
		}
		if got := back.Canonical(); got != canon {
			t.Fatalf("round trip drift: %q -> %q", canon, got)
		}
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		"",
		"cost=8000",                           // no domains
		"cost=8000;dom=0:0-3",                 // single domain is not a canonical non-flat form
		"dom=0:0-1;dom=1:2-3",                 // missing cost
		"cost=-5;dom=0:0-1;dom=1:2-3",         // negative cost
		"cost=x;dom=0:0-1;dom=1:2-3",          // bad cost
		"cost=1;cost=2;dom=0:0-1;dom=1:2-3",   // duplicate cost
		"cost=1;dom=0-1;dom=1:2-3",            // malformed domain
		"cost=1;dom=-1:0-1;dom=1:2-3",         // negative socket
		"cost=1;dom=0:3-0;dom=1:4-7",          // descending range
		"cost=1;dom=0:0-9999999;dom=1:2",      // oversized range
		"cost=1;dom=0:0-1;dom=1:2-3;bogus=1",  // unknown field
		"cost=1;dom=0:0-1;dom=1:2-3;dist=0,x", // bad distance cell
		"nonsense",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted invalid input", s)
		}
	}
}

func TestParseFlat(t *testing.T) {
	got, err := Parse("flat")
	if err != nil {
		t.Fatalf("Parse(flat): %v", err)
	}
	if !got.IsFlat() || got.PenaltyCycles != 0 {
		t.Fatalf("Parse(flat) = %+v, want zero topology", got)
	}
}
