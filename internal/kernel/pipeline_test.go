package kernel_test

import (
	"testing"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/sched/cfs"
	colabsched "colab/internal/sched/colab"
	"colab/internal/sim"
	"colab/internal/task"
)

func rqThread(id int, vr sim.Time) *task.Thread {
	t := &task.Thread{ID: id, Affinity: task.MaskAll()}
	t.VRuntime = vr
	return t
}

// RunQueues must reproduce the CFS timeline semantics: PopMin returns by
// (vruntime, push order), advances the monotone floor, and StealMax walks
// the timeline from the right honouring the allow filter.
func TestRunQueuesTimelineSemantics(t *testing.T) {
	q := kernel.NewRunQueues(2)
	a, b, c := rqThread(0, 30), rqThread(1, 10), rqThread(2, 10)
	q.Push(0, a)
	q.Push(0, b)
	q.Push(0, c)
	if got := q.Len(0); got != 3 {
		t.Fatalf("Len = %d", got)
	}
	if got := q.QueuedOn(b); got != 0 {
		t.Fatalf("QueuedOn = %d", got)
	}
	// b and c tie on vruntime: push order (b first) must break the tie.
	if got := q.PopMin(0, nil); got != b {
		t.Fatalf("PopMin = %v, want b", got)
	}
	if got := q.MinVR(0); got != 10 {
		t.Fatalf("MinVR = %v, want 10 after popping vr=10", got)
	}
	// StealMax from the right: a (vr=30) first, but a filter can skip it.
	if got := q.StealMax(0, func(th *task.Thread) bool { return th != a }); got != c {
		t.Fatalf("StealMax = %v, want c", got)
	}
	if got := q.MinVR(0); got != 10 {
		t.Fatalf("steals must not advance the floor: MinVR = %v", got)
	}
	if !q.Remove(a) {
		t.Fatal("Remove(a) failed")
	}
	if q.Remove(a) {
		t.Fatal("double Remove must report false")
	}
	if got := q.PopMin(0, nil); got != nil {
		t.Fatalf("drained queue returned %v", got)
	}
}

// Double-enqueueing a thread is an allocator bug the queues must surface
// loudly.
func TestRunQueuesDoubleEnqueuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double Push must panic")
		}
	}()
	q := kernel.NewRunQueues(2)
	th := rqThread(0, 0)
	q.Push(0, th)
	q.Push(1, th)
}

// The hint board hands out neutral defaults matching the monolithic
// policies' pre-observation assumptions, and Each iterates in insertion
// order (the COLAB criticality-scan order).
func TestHintDefaultsAndEachOrder(t *testing.T) {
	b := kernel.NewHintBoard()
	th := rqThread(7, 0)
	h := b.Get(th)
	if h.TargetTier != -1 || h.Pred != kernel.NeutralPred || h.Util != kernel.NeutralUtil {
		t.Fatalf("neutral hint = %+v", *h)
	}
	if b.Get(th) != h {
		t.Fatal("Get must be stable per thread")
	}
	b.Drop(th)
	if b.Get(th) == h {
		t.Fatal("Drop must forget the entry")
	}

	q := kernel.NewRunQueues(1)
	order := []*task.Thread{rqThread(1, 5), rqThread(2, 1), rqThread(3, 9)}
	for _, th := range order {
		q.Push(0, th)
	}
	i := 0
	q.Each(0, func(got *task.Thread) {
		if got != order[i] {
			t.Fatalf("Each[%d] = %v, want %v", i, got, order[i])
		}
		i++
	})
	if i != len(order) {
		t.Fatalf("Each visited %d of %d", i, len(order))
	}
}

// NewPipeline rejects stage combinations without the mechanical base and
// derives names from the stages present.
func TestNewPipelineValidation(t *testing.T) {
	if _, err := kernel.NewPipeline("x", nil, nil, nil, nil); err == nil {
		t.Fatal("missing allocator must error")
	}
}

// A hybrid pairing an affinity-blind allocator (COLAB treats queues as
// bags) with the CFS selector must still honour thread affinity: the
// selector-side filter is what keeps a little-pinned thread off the big
// cores when the allocator queues it anywhere.
func TestPipelineHybridHonoursAffinity(t *testing.T) {
	const work = 20e6
	app := mkApp(0, "pin", []cpu.WorkProfile{fastProfile, fastProfile, slowProfile, slowProfile},
		[]task.Program{
			{task.Compute{Work: work}},
			{task.Compute{Work: work}},
			{task.Compute{Work: work}},
			{task.Compute{Work: work}},
		})
	pinned := app.Threads[0]
	pinned.Affinity = task.MaskOf([]int{2, 3}) // 2B2S big-first: cores 2,3 are little
	w := &task.Workload{Name: "pin", Apps: []*task.App{app}}
	sched, err := kernel.NewPipeline("hybrid-affinity",
		nil, colabsched.NewAllocator(colabsched.Options{}), cfs.NewSelector(cfs.Options{}), nil)
	if err != nil {
		t.Fatal(err)
	}
	res := runOn(t, cpu.Config2B2S, sched, w)
	for _, tr := range res.Threads {
		if tr.Name == pinned.Name && tr.SumExecBig != 0 {
			t.Fatalf("little-pinned thread ran %v on big cores through the hybrid pipeline", tr.SumExecBig)
		}
	}
	if res.EndTime <= 0 {
		t.Fatal("workload did not finish")
	}
}
