package kernel

// White-box allocation assertions for the big-machine hot path. This file
// lives in package kernel (not kernel_test) so it can admit a workload with
// m.start() and then drive the engine one event at a time: steady-state
// dispatch — burst end, rotate, re-enqueue, pick-next, burst start — must
// not allocate, and neither may RunQueues insertion once the queue slices
// have reached capacity. The stages here are deliberately minimal
// (least-loaded placement, leftmost-allowed selection) so the test pins the
// kernel's own path without dragging a policy package into an import cycle.

import (
	"testing"

	"colab/internal/cpu"
	"colab/internal/sim"
	"colab/internal/task"
)

type allocLeastLoaded struct{ pc *PipelineContext }

func (a *allocLeastLoaded) Name() string              { return "least-loaded" }
func (a *allocLeastLoaded) Start(pc *PipelineContext) { a.pc = pc }

func (a *allocLeastLoaded) Enqueue(t *task.Thread, wakeup bool) int {
	q := a.pc.Queues()
	best := -1
	for i := 0; i < q.NumQueues(); i++ {
		if !t.AllowedOn(i) {
			continue
		}
		if best < 0 || q.Len(i) < q.Len(best) {
			best = i
		}
	}
	q.Push(best, t)
	return best
}

type selLeftmost struct{ pc *PipelineContext }

func (s *selLeftmost) Name() string              { return "leftmost" }
func (s *selLeftmost) Start(pc *PipelineContext) { s.pc = pc }

func (s *selLeftmost) PickNext(c *Core) *task.Thread {
	return s.pc.Queues().PopMinAllowed(c.ID, c.ID)
}

func (s *selLeftmost) TimeSlice(c *Core, t *task.Thread) sim.Time    { return sim.Millisecond }
func (s *selLeftmost) VRuntimeScale(c *Core, t *task.Thread) float64 { return 1 }
func (s *selLeftmost) WakeupPreempt(c *Core, t *task.Thread) bool    { return false }

// bigMachineSpin builds a 128-core tri-gear machine running 256 compute-only
// threads (two per core) with effectively infinite work, half of them pinned
// to masks spanning the spilled word so the >64-core Allows path is on the
// measured loop. Rotation via slice expiry keeps every dispatch mechanism
// hot forever.
func bigMachineSpin(t testing.TB) *Machine {
	profile := cpu.WorkProfile{ILP: 0.5, BranchRate: 0.1, MemIntensity: 0.3, FPRate: 0.2}
	app := &task.App{ID: 0, Name: "spin"}
	var highHalf task.Mask
	for c := 32; c < 128; c++ {
		highHalf.Set(c)
	}
	for i := 0; i < 256; i++ {
		th := &task.Thread{
			App:     app,
			Name:    "spin",
			Profile: profile,
			Program: task.Program{task.Compute{Work: 1e15}},
		}
		if i%2 == 1 {
			th.Affinity = highHalf
		}
		app.Threads = append(app.Threads, th)
	}
	w := &task.Workload{Name: "spin", Apps: []*task.App{app}}
	sched, err := NewPipeline("alloc-probe", nil, &allocLeastLoaded{}, &selLeftmost{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(cpu.NewTieredConfig(cpu.TriGearTiers(), []int{64, 32, 32}, true), sched, w, Params{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSteadyStateDispatchDoesNotAllocate admits the spin workload, lets the
// machine reach steady state (event freelist filled, queue slices and the
// engine heap at capacity), then asserts the event loop runs allocation-free.
func TestSteadyStateDispatchDoesNotAllocate(t *testing.T) {
	m := bigMachineSpin(t)
	m.start()
	eng := m.Engine()
	for i := 0; i < 50000; i++ {
		if !eng.Step() {
			t.Fatalf("engine drained during warm-up at event %d", i)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 100; i++ {
			if !eng.Step() {
				t.Fatalf("engine drained during measurement")
			}
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state dispatch allocates: %.2f allocs per 100 events, want 0", avg)
	}
}

// TestRunQueueInsertionDoesNotAllocate pins the Push/PopMinAllowed cycle at
// zero allocations once the per-core entry slices have grown to capacity —
// including threads whose masks spill past the inline 64-bit word.
func TestRunQueueInsertionDoesNotAllocate(t *testing.T) {
	const depth = 64
	q := NewRunQueues(2)
	ths := make([]*task.Thread, depth)
	for i := range ths {
		ths[i] = &task.Thread{ID: i, VRuntime: sim.Time(i), Affinity: task.MaskOf([]int{0, 1, 100 + i})}
		q.Push(0, ths[i])
	}
	avg := testing.AllocsPerRun(1000, func() {
		th := q.PopMinAllowed(0, 0)
		th.VRuntime += depth
		q.Push(0, th)
	})
	if avg != 0 {
		t.Fatalf("queue insertion allocates: %.2f allocs/op, want 0", avg)
	}
	avg = testing.AllocsPerRun(1000, func() {
		th := q.StealMaxAllowed(0, 1)
		q.Push(0, th)
	})
	if avg != 0 {
		t.Fatalf("steal cycle allocates: %.2f allocs/op, want 0", avg)
	}
}
