package kernel

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"colab/internal/cpu"
	"colab/internal/sim"
)

// AppResult records one application's outcome.
type AppResult struct {
	Name       string
	AppID      int
	NumThreads int
	// Arrival is when the app was admitted (zero for closed-system apps).
	Arrival sim.Time
	// Turnaround is completion time minus Arrival.
	Turnaround sim.Time
}

// ThreadResult records one thread's accounting at the end of a run.
type ThreadResult struct {
	Name        string
	ID          int
	App         string
	TrueSpeedup float64
	SumExec     sim.Time
	SumExecBig  sim.Time
	BlockedTime sim.Time
	ReadyTime   sim.Time
	BlockBlame  sim.Time
	WorkDone    float64
	Migrations  int
	// CrossDomainHops sums LLC-domain hop distance over the thread's
	// migrations (always 0 on flat machines).
	CrossDomainHops int
	Preemptions     int
	Switches        int
}

// CoreResult records one core's utilisation.
type CoreResult struct {
	ID         int
	Kind       cpu.Kind // tier index
	TierName   string
	BusyTime   sim.Time
	IdleTime   sim.Time
	Dispatches int
	EnergyJ    float64 // per the machine's power model
	// BusyByOPP is the core's busy-time residency per DVFS operating
	// point (ladder order, ascending frequency; length 1 on
	// fixed-frequency tiers).
	BusyByOPP []sim.Time
	OPPsMHz   []int
}

// Result is the outcome of one simulation.
type Result struct {
	Workload string
	Sched    string
	Config   string
	EndTime  sim.Time
	Events   uint64
	Apps     []AppResult
	Threads  []ThreadResult
	Cores    []CoreResult

	TotalMigrations  int
	TotalPreemptions int
	TotalSwitches    int
}

func (m *Machine) buildResult() *Result {
	r := &Result{
		Workload: m.workload.Name,
		Sched:    m.sched.Name(),
		Config:   m.config.Name,
		EndTime:  m.eng.Now(),
		Events:   m.eng.Processed,
	}
	for _, a := range m.workload.Apps {
		r.Apps = append(r.Apps, AppResult{
			Name:       a.Name,
			AppID:      a.ID,
			NumThreads: a.NumThreads(),
			Arrival:    a.StartTime,
			Turnaround: a.TurnaroundTime(),
		})
	}
	for _, t := range m.workload.Threads() {
		r.Threads = append(r.Threads, ThreadResult{
			Name:            t.Name,
			ID:              t.ID,
			App:             t.App.Name,
			TrueSpeedup:     t.Profile.TrueSpeedup(),
			SumExec:         t.SumExec,
			SumExecBig:      t.SumExecBig,
			BlockedTime:     t.BlockedTime,
			ReadyTime:       t.ReadyTime,
			BlockBlame:      t.BlockBlame,
			WorkDone:        t.WorkDone,
			Migrations:      t.Migrations,
			CrossDomainHops: t.CrossDomainHops,
			Preemptions:     t.Preemptions,
			Switches:        t.Switches,
		})
		r.TotalMigrations += t.Migrations
		r.TotalPreemptions += t.Preemptions
		r.TotalSwitches += t.Switches
	}
	for _, c := range m.cores {
		r.Cores = append(r.Cores, CoreResult{
			ID:         c.ID,
			Kind:       c.Kind,
			TierName:   c.Tier.Name,
			BusyTime:   c.BusyTime,
			IdleTime:   c.IdleTime,
			Dispatches: c.Dispatches,
			EnergyJ:    m.params.Power.TierEnergyJ(c.Tier, c.busyByOPP, c.IdleTime),
			BusyByOPP:  append([]sim.Time(nil), c.busyByOPP...),
			OPPsMHz:    append([]int(nil), c.ladder...),
		})
	}
	return r
}

// TotalEnergyJ sums per-core energy over the run (extension metric).
func (r *Result) TotalEnergyJ() float64 {
	var e float64
	for _, c := range r.Cores {
		e += c.EnergyJ
	}
	return e
}

// EnergyDelayProduct returns energy (J) times makespan (s), the standard
// combined efficiency figure of merit.
func (r *Result) EnergyDelayProduct() float64 {
	return r.TotalEnergyJ() * r.Makespan().Seconds()
}

// AppTurnaround returns the turnaround time of the named app (first match),
// or false when absent.
func (r *Result) AppTurnaround(name string) (sim.Time, bool) {
	for _, a := range r.Apps {
		if a.Name == name {
			return a.Turnaround, true
		}
	}
	return 0, false
}

// Makespan returns the completion time of the last app.
func (r *Result) Makespan() sim.Time {
	var mx sim.Time
	for _, a := range r.Apps {
		if a.Turnaround > mx {
			mx = a.Turnaround
		}
	}
	return mx
}

// WriteSummary prints a human-readable run summary.
func (r *Result) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "workload %s | scheduler %s | config %s | simulated %v | %d events\n",
		r.Workload, r.Sched, r.Config, r.EndTime, r.Events)
	open := false
	for _, a := range r.Apps {
		if a.Arrival > 0 {
			open = true
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if open {
		fmt.Fprintln(tw, "app\tthreads\tarrival\tturnaround")
	} else {
		fmt.Fprintln(tw, "app\tthreads\tturnaround")
	}
	apps := append([]AppResult(nil), r.Apps...)
	sort.Slice(apps, func(i, j int) bool { return apps[i].AppID < apps[j].AppID })
	for _, a := range apps {
		if open {
			fmt.Fprintf(tw, "%s\t%d\t%v\t%v\n", a.Name, a.NumThreads, a.Arrival, a.Turnaround)
		} else {
			fmt.Fprintf(tw, "%s\t%d\t%v\n", a.Name, a.NumThreads, a.Turnaround)
		}
	}
	tw.Flush()
	fmt.Fprintf(w, "switches %d, migrations %d, preemptions %d\n",
		r.TotalSwitches, r.TotalMigrations, r.TotalPreemptions)
	for _, c := range r.Cores {
		total := c.BusyTime + c.IdleTime
		util := 0.0
		if total > 0 {
			util = float64(c.BusyTime) / float64(total) * 100
		}
		fmt.Fprintf(w, "cpu%d(%s): busy %v (%.1f%%), %.3f J\n", c.ID, c.TierName, c.BusyTime, util, c.EnergyJ)
	}
	fmt.Fprintf(w, "energy %.3f J, energy-delay product %.4f Js\n", r.TotalEnergyJ(), r.EnergyDelayProduct())
}
