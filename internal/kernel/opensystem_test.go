package kernel_test

import (
	"testing"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/sched/cfs"
	colabsched "colab/internal/sched/colab"
	"colab/internal/sim"
	"colab/internal/task"
)

// openPair is a closed app at time zero plus one arriving at the offset.
func openPair(arrival sim.Time) *task.Workload {
	const work = 10e6
	a := mkApp(0, "early", []cpu.WorkProfile{fastProfile}, []task.Program{{task.Compute{Work: work}}})
	b := mkApp(1, "late", []cpu.WorkProfile{fastProfile}, []task.Program{{task.Compute{Work: work}}})
	b.Arrival = arrival
	return &task.Workload{Name: "open", Apps: []*task.App{a, b}}
}

// A late app must be invisible before its arrival and its turnaround must
// be measured from arrival, not from time zero.
func TestOpenSystemAdmissionTiming(t *testing.T) {
	const arrival = 5 * sim.Millisecond
	w := openPair(arrival)
	var admits []kernel.TraceEvent
	var firstLateDispatch sim.Time = -1
	m, err := kernel.NewMachine(cpu.NewSymmetric(cpu.Little, 1), cfs.New(cfs.Options{}), w, kernel.Params{})
	if err != nil {
		t.Fatal(err)
	}
	m.SetTracer(func(e kernel.TraceEvent) {
		switch {
		case e.Kind == kernel.TraceAdmit:
			admits = append(admits, e)
		case e.Kind == kernel.TraceDispatch && e.Thread == "late/late-t0" && firstLateDispatch < 0:
			firstLateDispatch = e.At
		}
	})
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(admits) != 2 {
		t.Fatalf("admit events = %d, want 2", len(admits))
	}
	if admits[0].At != 0 || admits[0].Thread != "early" {
		t.Fatalf("first admit = %+v, want early at 0", admits[0])
	}
	if admits[1].At != arrival || admits[1].Thread != "late" {
		t.Fatalf("second admit = %+v, want late at %v", admits[1], arrival)
	}
	if firstLateDispatch < arrival {
		t.Fatalf("late app dispatched at %v, before its arrival %v", firstLateDispatch, arrival)
	}
	var late kernel.AppResult
	for _, a := range res.Apps {
		if a.Name == "late" {
			late = a
		}
	}
	if late.Arrival != arrival {
		t.Fatalf("late arrival recorded as %v", late.Arrival)
	}
	// On one little core the early app (10ms of work) still holds the core
	// at t=5ms, so the late app finishes well after arrival+work, but its
	// turnaround must exclude the 5ms it had not yet arrived.
	wall := late.Turnaround + late.Arrival
	if late.Turnaround <= 0 || wall <= late.Turnaround {
		t.Fatalf("turnaround not measured from arrival: turnaround=%v arrival=%v", late.Turnaround, late.Arrival)
	}
}

// An app arriving after every earlier thread finished must still be
// admitted (the pending admission event keeps the engine alive) and run to
// completion on an otherwise quiet machine.
func TestOpenSystemArrivalAfterQuiescence(t *testing.T) {
	const arrival = 500 * sim.Millisecond // far beyond the early app's ~10ms
	w := openPair(arrival)
	res := runOn(t, cpu.NewSymmetric(cpu.Little, 1), cfs.New(cfs.Options{}), w)
	for _, a := range res.Apps {
		if a.Turnaround <= 0 {
			t.Fatalf("app %s unfinished: %+v", a.Name, a)
		}
	}
	if res.EndTime <= arrival {
		t.Fatalf("simulation ended at %v, before the late arrival %v", res.EndTime, arrival)
	}
}

// Negative arrivals are rejected at machine construction.
func TestNegativeArrivalRejected(t *testing.T) {
	w := openPair(-sim.Millisecond)
	if _, err := kernel.NewMachine(cpu.Config2B2S, cfs.New(cfs.Options{}), w, kernel.Params{}); err == nil {
		t.Fatal("negative arrival must error")
	}
}

// Mid-run admission must behave identically across repeated runs under a
// policy with periodic labeling state (COLAB), including synchronising
// apps that block at birth.
func TestOpenSystemDeterministicUnderCOLAB(t *testing.T) {
	build := func() *task.Workload {
		const work = 4e6
		// Producer/consumer app arriving mid-run: consumer blocks at birth.
		progA := task.Program{task.Compute{Work: 20e6}}
		a := mkApp(0, "base", []cpu.WorkProfile{fastProfile}, []task.Program{progA})
		var prod, cons task.Program
		for i := 0; i < 6; i++ {
			prod = append(prod, task.Compute{Work: work}, task.Put{ID: 1})
			cons = append(cons, task.Get{ID: 1}, task.Compute{Work: work})
		}
		b := mkApp(1, "pipe", []cpu.WorkProfile{fastProfile, slowProfile},
			[]task.Program{prod, cons}, task.QueueSpec{ID: 1, Capacity: 2})
		b.Arrival = 3 * sim.Millisecond
		return &task.Workload{Name: "open-colab", Apps: []*task.App{a, b}}
	}
	fingerprint := func() string {
		var sb []byte
		m, err := kernel.NewMachine(cpu.Config2B2S, colabsched.New(colabsched.Options{}), build(), kernel.Params{})
		if err != nil {
			t.Fatal(err)
		}
		m.SetTracer(func(e kernel.TraceEvent) { sb = append(sb, []byte(e.String()+"\n")...) })
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return string(sb)
	}
	if a, b := fingerprint(), fingerprint(); a != b {
		t.Fatal("open-system trace differs across identical runs")
	}
}
