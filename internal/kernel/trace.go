package kernel

import (
	"fmt"
	"io"

	"colab/internal/sim"
	"colab/internal/task"
)

// TraceKind labels one scheduling event in an execution trace.
type TraceKind string

// Trace event kinds.
const (
	TraceAdmit    TraceKind = "admit"    // application admitted to the machine
	TraceDispatch TraceKind = "dispatch" // thread starts running on a core
	TraceMigrate  TraceKind = "migrate"  // dispatch on a different core than last time
	TraceRotate   TraceKind = "rotate"   // slice expired, thread re-queued
	TracePreempt  TraceKind = "preempt"  // running thread displaced
	TraceBlock    TraceKind = "block"    // thread waits on a futex
	TraceWake     TraceKind = "wake"     // futex wait ended
	TraceIdle     TraceKind = "idle"     // core found nothing to run
	TraceDone     TraceKind = "done"     // thread retired
)

// TraceEvent is one timestamped scheduling event.
type TraceEvent struct {
	At     sim.Time
	Kind   TraceKind
	Core   int    // core involved, -1 when not core-specific
	Thread string // thread identity, "" for pure core events
}

// String renders the event as one trace line.
func (e TraceEvent) String() string {
	if e.Thread == "" {
		return fmt.Sprintf("%12v cpu%-2d %s", e.At, e.Core, e.Kind)
	}
	if e.Core < 0 {
		return fmt.Sprintf("%12v %-8s %s", e.At, e.Kind, e.Thread)
	}
	return fmt.Sprintf("%12v cpu%-2d %-8s %s", e.At, e.Core, e.Kind, e.Thread)
}

// SetTracer installs a scheduling-event callback. Pass nil to disable.
// Tracing is off by default and adds no overhead when disabled.
func (m *Machine) SetTracer(fn func(TraceEvent)) { m.tracer = fn }

// WriteTracer returns a tracer that writes one line per event to w.
func WriteTracer(w io.Writer) func(TraceEvent) {
	return func(e TraceEvent) { fmt.Fprintln(w, e.String()) }
}

func (m *Machine) emit(kind TraceKind, core int, thread string) {
	if m.tracer == nil {
		return
	}
	m.tracer(TraceEvent{At: m.eng.Now(), Kind: kind, Core: core, Thread: thread})
}

// emitT is emit for thread events: the thread identity string is only
// rendered when a tracer is installed, keeping the hot path allocation-free
// in the untraced steady state.
func (m *Machine) emitT(kind TraceKind, core int, t *task.Thread) {
	if m.tracer == nil {
		return
	}
	m.tracer(TraceEvent{At: m.eng.Now(), Kind: kind, Core: core, Thread: t.String()})
}
