package kernel

import (
	"context"
	"fmt"

	"colab/internal/cpu"
	"colab/internal/mathx"
	"colab/internal/sim"
	"colab/internal/task"
	"colab/internal/topo"
)

// workEpsilon is the residual work (in little-core nanoseconds) below which
// a compute segment counts as retired; it absorbs float rounding from the
// rate division.
const workEpsilon = 1e-6

// Machine wires a hardware config, a scheduling policy and a workload into
// one deterministic simulation.
type Machine struct {
	eng      *sim.Engine
	config   cpu.Config
	cores    []*Core
	sched    Scheduler
	workload *task.Workload
	futexes  *futexTable
	ctrRNG   *mathx.RNG
	params   Params

	live   int
	done   bool
	tracer func(TraceEvent)

	tierIDs  [][]int // per tier index, core IDs in core order
	topTier  int     // index of the highest-capacity tier in the palette
	governor DVFSGovernor

	// Topology (all derived from config.Topo in NewMachine). Every
	// topology-aware branch gates on topoActive, so a flat or zero-penalty
	// topology runs the exact pre-topology code path.
	topoActive   bool
	domainOf     []int     // per core, LLC domain index (all zero when flat)
	domainIDs    [][]int   // per domain, core IDs in core order
	dist         [][]int   // inter-domain distance in hops
	migPenaltyNS []float64 // per destination core, penalty ns per hop (PenaltyCycles at nominal freq)
	nextHome     int       // round-robin cursor for home-domain placement at admission
}

// NewMachine builds a machine. The workload's threads must be freshly
// generated (state New); a workload instance cannot be reused across runs.
func NewMachine(cfg cpu.Config, sched Scheduler, w *task.Workload, params Params) (*Machine, error) {
	if cfg.NumCores() == 0 {
		return nil, fmt.Errorf("kernel: config %q has no cores", cfg.Name)
	}
	if cfg.NumCores() > cpu.MaxCores {
		return nil, fmt.Errorf("kernel: config %q has %d cores; max %d supported", cfg.Name, cfg.NumCores(), cpu.MaxCores)
	}
	if len(w.Apps) == 0 {
		return nil, fmt.Errorf("kernel: workload %q has no apps", w.Name)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	params = params.withDefaults()
	m := &Machine{
		eng:      sim.NewEngine(),
		config:   cfg,
		sched:    sched,
		workload: w,
		futexes:  newFutexTable(),
		ctrRNG:   mathx.NewRNG(params.CounterNoiseSeed),
		params:   params,
		topTier:  cfg.NumTiers() - 1,
	}
	m.governor, _ = sched.(DVFSGovernor)
	m.tierIDs = make([][]int, cfg.NumTiers())
	for tier := range m.tierIDs {
		m.tierIDs[tier] = cfg.TierIndices(tier)
	}
	for i, kind := range cfg.Kinds {
		tier := cfg.Tier(i)
		ladder := tier.Ladder()
		c := &Core{
			ID: i, Kind: kind, Tier: tier, Spec: cfg.Spec(i),
			ladder:    ladder,
			opp:       len(ladder) - 1, // boot at nominal
			busyByOPP: make([]sim.Time, len(ladder)),
			wasIdle:   true,
		}
		c.burstEndFn = func() { m.onBurstEnd(c) }
		c.reschedFn = func() {
			c.reschedPending = false
			m.schedule(c)
		}
		m.cores = append(m.cores, c)
	}
	tp := cfg.Topology()
	m.topoActive = tp.Active()
	m.domainOf = tp.CoreDomains(cfg.NumCores())
	m.domainIDs = make([][]int, tp.NumDomains())
	for id, dom := range m.domainOf {
		m.domainIDs[dom] = append(m.domainIDs[dom], id)
	}
	if m.topoActive {
		nd := tp.NumDomains()
		m.dist = make([][]int, nd)
		for a := 0; a < nd; a++ {
			m.dist[a] = make([]int, nd)
			for b := 0; b < nd; b++ {
				m.dist[a][b] = tp.Distance(a, b)
			}
		}
		m.migPenaltyNS = make([]float64, cfg.NumCores())
		for i, c := range m.cores {
			// cycles -> ns at the destination core's nominal frequency.
			m.migPenaltyNS[i] = tp.PenaltyCycles * 1000 / float64(c.Tier.FreqMHz)
		}
	}
	id := 0
	for _, a := range w.Apps {
		if len(a.Threads) == 0 {
			return nil, fmt.Errorf("kernel: app %q has no threads", a.Name)
		}
		if a.Arrival < 0 {
			return nil, fmt.Errorf("kernel: app %q has negative arrival %v", a.Name, a.Arrival)
		}
		for _, t := range a.Threads {
			if t.State != task.New {
				return nil, fmt.Errorf("kernel: thread %v reused (state %v); regenerate the workload", t, t.State)
			}
			t.ID = id
			id++
			t.CoreID = -1
			if t.Affinity.IsEmpty() {
				t.Affinity = task.MaskAll()
			}
			m.live++
		}
	}
	return m, nil
}

// Engine exposes the event engine (policies schedule periodic labeling on it).
func (m *Machine) Engine() *sim.Engine { return m.eng }

// Now returns the current simulated time.
func (m *Machine) Now() sim.Time { return m.eng.Now() }

// Config returns the hardware configuration.
func (m *Machine) Config() cpu.Config { return m.config }

// Cores returns the simulated cores (do not mutate).
func (m *Machine) Cores() []*Core { return m.cores }

// NumTiers returns the size of the machine's tier palette.
func (m *Machine) NumTiers() int { return len(m.tierIDs) }

// Tiers returns the machine's tier palette in ascending capacity order.
func (m *Machine) Tiers() []cpu.Tier { return m.config.Tiers() }

// TierCoreIDs returns the core indices of the given tier, in core order
// (possibly empty: symmetric machines populate a single tier).
func (m *Machine) TierCoreIDs(tier int) []int { return m.tierIDs[tier] }

// TopTier returns the index of the highest-capacity tier in the palette.
func (m *Machine) TopTier() int { return m.topTier }

// BigCoreIDs returns indices of top-tier cores in core order.
func (m *Machine) BigCoreIDs() []int { return m.tierIDs[m.topTier] }

// LittleCoreIDs returns indices of base-tier cores in core order.
func (m *Machine) LittleCoreIDs() []int { return m.tierIDs[0] }

// Topology returns the machine's socket/LLC-domain layout (the zero-value
// flat topology on pre-topology configs).
func (m *Machine) Topology() topo.Topology { return m.config.Topology() }

// TopoActive reports whether topology affects this run: multiple LLC
// domains with a non-zero migration penalty. Stages gate their
// topology-aware behaviour on this so zero-penalty topologies schedule
// bit-identically to the flat machine.
func (m *Machine) TopoActive() bool { return m.topoActive }

// NumDomains returns the number of LLC domains (1 on flat machines).
func (m *Machine) NumDomains() int { return len(m.domainIDs) }

// DomainOf returns the LLC domain index of a core (0 on flat machines).
func (m *Machine) DomainOf(core int) int { return m.domainOf[core] }

// DomainCoreIDs returns the core indices of one LLC domain, in core order
// (do not mutate).
func (m *Machine) DomainCoreIDs(dom int) []int { return m.domainIDs[dom] }

// DomainDistance returns the hop count between two LLC domains (0 on flat
// machines).
func (m *Machine) DomainDistance(a, b int) int {
	if m.dist == nil {
		return 0
	}
	return m.dist[a][b]
}

// TopologyOf returns a core's socket and LLC domain indices.
func (m *Machine) TopologyOf(core int) (socket, domain int) {
	dom := m.domainOf[core]
	t := m.config.Topology()
	if dom < len(t.Domains) {
		return t.Domains[dom].Socket, dom
	}
	return 0, dom
}

// MigrationPenalty returns the extra dispatch cost a thread last run on
// core from pays to start on core to: the cold-cache penalty, in
// destination-core nanoseconds, scaled by the LLC-domain hop distance.
// Zero on flat machines, with penalty 0, and within one domain.
func (m *Machine) MigrationPenalty(from, to int) sim.Time {
	if !m.topoActive || from < 0 {
		return 0
	}
	hops := m.dist[m.domainOf[from]][m.domainOf[to]]
	if hops == 0 {
		return 0
	}
	return sim.Time(float64(hops) * m.migPenaltyNS[to])
}

// Workload returns the workload under simulation.
func (m *Machine) Workload() *task.Workload { return m.workload }

// Done reports whether every thread retired.
func (m *Machine) Done() bool { return m.done }

// Kick asks core to re-run thread selection (deferred to the next event).
// Policies call it after moving queued threads around outside the normal
// Enqueue path, e.g. on affinity relabeling.
func (m *Machine) Kick(core int) {
	if core >= 0 && core < len(m.cores) && m.cores[core].Current == nil {
		m.resched(m.cores[core])
	}
}

// KickIdle re-runs selection on every idle core.
func (m *Machine) KickIdle() {
	for _, c := range m.cores {
		if c.Current == nil {
			m.resched(c)
		}
	}
}

// Run admits applications (at time zero, or at their App.Arrival times for
// open-system workloads), drives the simulation to completion and returns
// the result. It fails when the event budget is exhausted or the system
// deadlocks (threads alive with no pending events).
func (m *Machine) Run() (*Result, error) {
	return m.RunContext(context.Background())
}

// ctxCheckInterval is how many simulation events fire between context
// checks in RunContext: large enough that the check is free against the
// per-event work, small enough that cancellation lands within microseconds
// of wall time.
const ctxCheckInterval = 16384

// RunContext is Run with cooperative cancellation: the event loop checks
// ctx every ctxCheckInterval events and returns a wrapped ctx.Err() as soon
// as the context is done. The simulation itself is unaffected by the
// chunked loop — event order, timestamps and results are identical to Run.
func (m *Machine) RunContext(ctx context.Context) (*Result, error) {
	m.start()
	remaining := m.params.MaxEvents
	for !m.done && remaining > 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("kernel: %q under %s cancelled at %v: %w",
				m.workload.Name, m.sched.Name(), m.eng.Now(), err)
		}
		chunk := uint64(ctxCheckInterval)
		if chunk > remaining {
			chunk = remaining
		}
		fired := m.eng.Run(chunk)
		remaining -= fired
		if fired < chunk {
			// Queue drained (or Stop): no further events will fire.
			break
		}
	}
	if !m.done {
		if m.eng.Pending() == 0 {
			return nil, fmt.Errorf("kernel: deadlock in %q under %s: %d threads alive with no pending events",
				m.workload.Name, m.sched.Name(), m.live)
		}
		return nil, fmt.Errorf("kernel: event budget %d exhausted for %q under %s at %v",
			m.params.MaxEvents, m.workload.Name, m.sched.Name(), m.eng.Now())
	}
	return m.buildResult(), nil
}

// start installs the policy and performs the time-zero admission: apps
// with Arrival == 0 are admitted immediately, later arrivals get
// timestamped admission events. Extracted from RunContext so tests (the
// allocation assertions) can admit a workload and then step the engine
// manually instead of driving the whole run.
func (m *Machine) start() {
	m.sched.Start(m)
	var late []*task.App
	for _, a := range m.workload.Apps {
		if a.Arrival > 0 {
			late = append(late, a)
			continue
		}
		a.StartTime = 0
		m.emit(TraceAdmit, -1, a.Name)
		m.placeApp(a)
		for _, t := range a.Threads {
			m.sched.Admit(t)
		}
	}
	// Admit threads: process leading sync ops; enqueue the runnable ones.
	for _, t := range m.workload.Threads() {
		if t.App.Arrival > 0 {
			continue
		}
		switch m.advance(t) {
		case statusDone:
			m.finishThread(t)
		case statusBlocked:
			// Blocked at birth (e.g. pipeline consumer on an empty queue).
		case statusCompute:
			m.makeReady(t, false)
		}
	}
	for _, c := range m.cores {
		m.resched(c)
	}
	// Open-system arrivals: each remaining app gets a timestamped admission
	// event. Until it fires, the app's threads stay New and invisible to the
	// policy; the pending event keeps the engine alive, so a quiet machine
	// waits for the arrival instead of reporting deadlock.
	for _, a := range late {
		a := a
		m.eng.After(a.Arrival, func() { m.admitApp(a) })
	}
}

// placeApp assigns the app a home LLC domain — apps round-robin across
// domains in admission order, threads inherit the app's domain — before
// the policy sees any of its threads. On flat or zero-penalty machines
// every thread stays in domain 0 and placement is a no-op.
func (m *Machine) placeApp(a *task.App) {
	if !m.topoActive {
		return
	}
	home := m.nextHome % len(m.domainIDs)
	m.nextHome++
	for _, t := range a.Threads {
		t.HomeDomain = home
	}
}

// admitApp introduces one open-system app at its arrival time: the policy
// sees every thread (state New) before the first Enqueue, exactly like the
// time-zero admission, and runnable threads then enter as wake-ups so they
// may preempt like any other awakened work. App turnaround is measured from
// this instant (StartTime = arrival).
func (m *Machine) admitApp(a *task.App) {
	if m.done {
		return
	}
	a.StartTime = m.eng.Now()
	m.emit(TraceAdmit, -1, a.Name)
	m.placeApp(a)
	for _, t := range a.Threads {
		m.sched.Admit(t)
	}
	for _, t := range a.Threads {
		switch m.advance(t) {
		case statusDone:
			m.finishThread(t)
		case statusBlocked:
			// Blocked at birth (e.g. pipeline consumer on an empty queue).
		case statusCompute:
			m.makeReady(t, true)
		}
	}
}

// ---------------------------------------------------------------------------
// Thread advancement through program ops (zero simulated time).

type threadStatus int

const (
	statusCompute threadStatus = iota // current op is Compute with work left
	statusBlocked
	statusDone
)

// advance consumes non-compute ops until the thread reaches a compute
// segment, blocks or retires.
func (m *Machine) advance(t *task.Thread) threadStatus {
	for {
		op := t.CurrentOp()
		if op == nil {
			return statusDone
		}
		switch o := op.(type) {
		case task.Compute:
			if o.Work <= workEpsilon {
				t.Remaining = 0
				t.PC++
				continue
			}
			if t.Remaining <= 0 {
				t.Remaining = o.Work
			}
			return statusCompute
		case task.Lock:
			if m.doLock(t, o.ID) {
				return statusBlocked
			}
		case task.Unlock:
			m.doUnlock(t, o.ID)
		case task.Barrier:
			if m.doBarrier(t, o.ID, o.Parties) {
				return statusBlocked
			}
		case task.Put:
			if m.doPut(t, o.ID) {
				return statusBlocked
			}
		case task.Get:
			if m.doGet(t, o.ID) {
				return statusBlocked
			}
		case task.Sleep:
			m.doSleep(t, o.Duration)
			return statusBlocked
		case task.Phase:
			t.Profile = o.Profile.Clamp()
			t.PC++
		default:
			panic(fmt.Sprintf("kernel: unknown op %T in %v", op, t))
		}
	}
}

// ---------------------------------------------------------------------------
// Blocking and waking.

func (m *Machine) blockThread(t *task.Thread) {
	t.State = task.Blocked
	t.WaitStart = m.eng.Now()
	m.emitT(TraceBlock, t.CoreID, t)
}

func (m *Machine) doSleep(t *task.Thread, d sim.Time) {
	if d < 0 {
		d = 0
	}
	m.blockThread(t)
	m.eng.After(d, func() {
		if t.State == task.Blocked {
			m.wakeThread(t, nil)
		}
	})
}

// wakeThread ends t's futex wait. blamer, when non-nil, is the thread that
// released the wait and accumulates the waiting period (the paper's
// criticality metric).
func (m *Machine) wakeThread(t *task.Thread, blamer *task.Thread) {
	now := m.eng.Now()
	dur := now - t.WaitStart
	t.BlockedTime += dur
	if blamer != nil {
		blamer.BlockBlame += dur
	}
	// The wait shows up as quiesce cycles on the thread's counters.
	q := float64(dur) * float64(cpu.LittleSpec.FreqMHz) / 1000.0
	t.TotalCounters[cpu.CtrQuiesceCycles] += q
	t.IntervalCounters[cpu.CtrQuiesceCycles] += q
	t.PC++ // the blocking op completed
	m.emitT(TraceWake, -1, t)
	// Advance through the ops that follow: initialise the next compute
	// segment, or block again, or retire.
	switch m.advance(t) {
	case statusCompute:
		m.makeReady(t, true)
	case statusBlocked:
		// Re-blocked on the next op (e.g. chained barriers).
	case statusDone:
		m.finishThread(t)
	}
}

// makeReady hands a runnable thread to the policy's core allocator and
// kicks the affected cores. wakeup distinguishes real wake-ups (which may
// preempt) from slice-rotation re-queues (which must not cascade).
func (m *Machine) makeReady(t *task.Thread, wakeup bool) {
	now := m.eng.Now()
	t.State = task.Ready
	t.MarkReadyAt(now)
	target := m.sched.Enqueue(t, wakeup)
	if target < 0 || target >= len(m.cores) {
		panic(fmt.Sprintf("kernel: %s.Enqueue(%v) returned invalid core %d", m.sched.Name(), t, target))
	}
	tc := m.cores[target]
	if tc.Current == nil {
		m.resched(tc)
	} else if wakeup {
		m.deferPreemptCheck(tc, t)
	}
	// Work conservation: any idle core the thread may run on gets a chance
	// to pick it (or anything else) up.
	for _, c := range m.cores {
		if c != tc && c.Current == nil && t.AllowedOn(c.ID) {
			m.resched(c)
		}
	}
}

// deferPreemptCheck re-evaluates wake-up preemption after the current event
// handler finishes, avoiding reentrant core mutation mid-advance.
func (m *Machine) deferPreemptCheck(c *Core, t *task.Thread) {
	m.eng.After(0, func() {
		if m.done || t.State != task.Ready || c.Current == nil || c.Current == t {
			return
		}
		if m.sched.WakeupPreempt(c, t) {
			m.preemptCore(c)
		}
	})
}

// preemptCore stops the core's current thread and re-queues it.
func (m *Machine) preemptCore(c *Core) {
	t := c.Current
	if t == nil {
		m.resched(c)
		return
	}
	m.stopBurst(c)
	c.Current = nil
	t.State = task.Ready
	t.Preemptions++
	m.emitT(TracePreempt, c.ID, t)
	m.makeReady(t, false)
	m.resched(c)
}

// ---------------------------------------------------------------------------
// Dispatch and burst execution.

func (m *Machine) resched(c *Core) {
	if c.reschedPending || m.done {
		return
	}
	c.reschedPending = true
	m.eng.After(0, c.reschedFn)
}

func (m *Machine) schedule(c *Core) {
	if m.done || c.Current != nil {
		return
	}
	now := m.eng.Now()
	t := m.sched.PickNext(c)
	if t == nil {
		if !c.wasIdle {
			c.wasIdle = true
			c.idleSince = now
			m.emit(TraceIdle, c.ID, "")
		}
		return
	}
	switch t.State {
	case task.Running:
		// COLAB-style pull: the policy selected a thread running on another
		// core (big preempts little). Stop it there and take it here.
		if t.CoreID == c.ID || t.CoreID < 0 {
			panic(fmt.Sprintf("kernel: %s.PickNext(%v) returned running thread %v on the same core", m.sched.Name(), c, t))
		}
		vc := m.cores[t.CoreID]
		if vc.Current != t {
			panic(fmt.Sprintf("kernel: %s.PickNext(%v) returned stale running thread %v", m.sched.Name(), c, t))
		}
		m.stopBurst(vc)
		vc.Current = nil
		t.Preemptions++
		m.resched(vc)
	case task.Ready:
		t.AccrueReadyWait(now)
	default:
		panic(fmt.Sprintf("kernel: %s.PickNext(%v) returned thread %v in state %v", m.sched.Name(), c, t, t.State))
	}
	if c.wasIdle {
		c.IdleTime += now - c.idleSince
		c.wasIdle = false
	}
	var cost sim.Time
	if c.lastThread != t {
		cost += m.params.ContextSwitchCost
		t.Switches++
	}
	if t.CoreID >= 0 && t.CoreID != c.ID {
		cost += m.params.MigrationCost
		t.Migrations++
		// Cross-domain moves additionally pay the cold-cache penalty — every
		// migration path (Requeue relabeling, idle steal, pull preemption)
		// funnels through this dispatch point.
		if m.topoActive {
			if hops := m.dist[m.domainOf[t.CoreID]][m.domainOf[c.ID]]; hops > 0 {
				cost += sim.Time(float64(hops) * m.migPenaltyNS[c.ID])
				t.CrossDomainHops += hops
			}
		}
		m.emitT(TraceMigrate, c.ID, t)
	}
	m.emitT(TraceDispatch, c.ID, t)
	c.Current = t
	c.lastThread = t
	t.State = task.Running
	t.CoreID = c.ID
	c.Dispatches++
	// DVFS: let a governor policy reprogram the core's operating point for
	// this occupancy. Fixed-frequency tiers (the paper's setup) skip the
	// hook entirely.
	if m.governor != nil && len(c.ladder) > 1 {
		c.setOPP(m.governor.SelectOPP(c, t))
	}
	slice := m.sched.TimeSlice(c, t)
	if slice <= 0 {
		slice = sim.Millisecond
	}
	c.sliceEnd = now + cost + slice
	c.accrueBusy(cost) // switch overhead occupies the core
	m.startBurst(c, cost)
}

// execRate returns the work units per nanosecond thread t retires on core
// c: the tier-relative speedup scaled by the active DVFS point.
func (m *Machine) execRate(c *Core, t *task.Thread) float64 {
	return t.Profile.SpeedupOn(c.Tier) * c.dvfsScale()
}

// startBurst schedules the end of the next execution segment: the earlier
// of compute completion and slice expiry.
func (m *Machine) startBurst(c *Core, delay sim.Time) {
	t := c.Current
	now := m.eng.Now()
	rate := m.execRate(c, t)
	need := sim.Time(t.Remaining/rate) + 1 // ceil to whole ns
	begin := now + delay
	run := need
	if end := c.sliceEnd - begin; run > end {
		run = end
	}
	if run < 1 {
		run = 1
	}
	c.burstStart = begin
	c.burstRun = run
	c.burstEv = m.eng.After(delay+run, c.burstEndFn)
}

// stopBurst cancels the pending burst event and accrues any execution that
// already happened.
func (m *Machine) stopBurst(c *Core) {
	if c.burstEv != nil {
		m.eng.Cancel(c.burstEv)
		c.burstEv = nil
	}
	t := c.Current
	if t == nil {
		return
	}
	now := m.eng.Now()
	if now > c.burstStart {
		elapsed := now - c.burstStart
		if elapsed > c.burstRun {
			elapsed = c.burstRun
		}
		m.accrueExec(c, t, elapsed)
	}
}

func (m *Machine) onBurstEnd(c *Core) {
	c.burstEv = nil
	t := c.Current
	if t == nil {
		return
	}
	m.accrueExec(c, t, c.burstRun)
	if t.Remaining <= workEpsilon {
		if _, ok := t.CurrentOp().(task.Compute); ok {
			t.Remaining = 0
			t.PC++
		}
	}
	switch m.advance(t) {
	case statusDone:
		c.Current = nil
		m.finishThread(t)
		m.resched(c)
	case statusBlocked:
		c.Current = nil
		m.resched(c)
	case statusCompute:
		now := m.eng.Now()
		if now >= c.sliceEnd {
			// Slice expired: rotate through the policy.
			c.Current = nil
			t.State = task.Ready
			m.emitT(TraceRotate, c.ID, t)
			m.makeReady(t, false)
			m.resched(c)
			return
		}
		m.continueBurst(c)
	}
}

func (m *Machine) continueBurst(c *Core) {
	m.startBurst(c, 0)
}

// accrueExec charges d nanoseconds of execution on c to t: work retired,
// vruntime growth (policy-scaled), busy time, and synthetic counters.
func (m *Machine) accrueExec(c *Core, t *task.Thread, d sim.Time) {
	if d <= 0 {
		return
	}
	rate := m.execRate(c, t)
	work := float64(d) * rate
	if work > t.Remaining {
		work = t.Remaining
	}
	t.Remaining -= work
	if t.Remaining < workEpsilon {
		t.Remaining = 0
	}
	t.WorkDone += work
	t.SumExec += d
	if int(c.Kind) == m.topTier {
		t.SumExecBig += d
	}
	scale := m.sched.VRuntimeScale(c, t)
	if scale <= 0 {
		scale = 1
	}
	t.VRuntime += sim.Time(float64(d) * scale)
	c.accrueBusy(d)
	cycles := float64(d) * c.FreqGHz()
	vec := cpu.SampleCountersOn(m.ctrRNG, t.Profile, c.Tier, work, cycles, 0)
	t.TotalCounters.Add(vec)
	t.IntervalCounters.Add(vec)
}

func (m *Machine) finishThread(t *task.Thread) {
	now := m.eng.Now()
	t.State = task.Done
	t.FinishTime = now
	m.emitT(TraceDone, t.CoreID, t)
	t.App.NoteThreadDone(now)
	m.sched.ThreadDone(t)
	m.live--
	if m.live == 0 {
		m.done = true
		// Close out idle accounting before the engine stops.
		for _, c := range m.cores {
			if c.wasIdle {
				c.IdleTime += now - c.idleSince
				c.wasIdle = false
			}
		}
		m.eng.Stop()
	}
}
