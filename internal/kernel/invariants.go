package kernel

import (
	"fmt"

	"colab/internal/task"
)

// CheckInvariants inspects live machine state and returns a description of
// every violated structural invariant (empty when consistent). Tests call
// it from trace callbacks to validate the simulation continuously; it is
// never called on the hot path.
//
// Invariants:
//  1. A core's Current thread is Running and believes it is on that core.
//  2. No two cores run the same thread.
//  3. Every Running thread is some core's Current.
//  4. The live-thread count equals the number of non-Done threads.
//  5. Done threads have a finish time and no residual work.
//  6. Accounting totals are non-negative and blocked threads have a wait
//     start no later than now.
func (m *Machine) CheckInvariants() []string {
	var violations []string
	seen := make(map[*task.Thread]int)
	for _, c := range m.cores {
		t := c.Current
		if t == nil {
			continue
		}
		if t.State != task.Running {
			violations = append(violations, fmt.Sprintf("cpu%d current %v in state %v", c.ID, t, t.State))
		}
		if t.CoreID != c.ID {
			violations = append(violations, fmt.Sprintf("cpu%d current %v claims core %d", c.ID, t, t.CoreID))
		}
		if prev, dup := seen[t]; dup {
			violations = append(violations, fmt.Sprintf("%v running on both cpu%d and cpu%d", t, prev, c.ID))
		}
		seen[t] = c.ID
	}
	alive := 0
	now := m.eng.Now()
	for _, t := range m.workload.Threads() {
		switch t.State {
		case task.Done:
			if t.FinishTime <= 0 && now > 0 {
				violations = append(violations, fmt.Sprintf("%v done without finish time", t))
			}
			if t.Remaining > workEpsilon {
				violations = append(violations, fmt.Sprintf("%v done with %v work left", t, t.Remaining))
			}
			continue
		case task.Running:
			if _, ok := seen[t]; !ok {
				violations = append(violations, fmt.Sprintf("%v running but on no core", t))
			}
		case task.Blocked:
			if t.WaitStart > now {
				violations = append(violations, fmt.Sprintf("%v blocked with future wait start %v", t, t.WaitStart))
			}
		}
		alive++
		if t.SumExec < 0 || t.BlockedTime < 0 || t.BlockBlame < 0 || t.ReadyTime < 0 {
			violations = append(violations, fmt.Sprintf("%v has negative accounting", t))
		}
	}
	if alive != m.live {
		violations = append(violations, fmt.Sprintf("live count %d, but %d threads not done", m.live, alive))
	}
	return violations
}
