// Package kernel simulates the OS layer the paper patches: per-core
// dispatch, context switching, futex-based synchronisation with blocking
// blame accounting, vruntime bookkeeping, and the hook interface scheduling
// policies (CFS, WASH, COLAB, GTS) implement.
//
// The hooks mirror where the paper modifies Linux v3.16:
//
//	Enqueue       ~ select_task_rq_fair   (core allocation)
//	PickNext      ~ pick_next_task_fair   (thread selection)
//	WakeupPreempt ~ wakeup_preempt_entity (preemption check)
//	VRuntimeScale ~ the scale-slice vruntime update
//	Rebalance     ~ the periodic labeler added to __sched__schedule
package kernel

import (
	"colab/internal/cpu"
	"colab/internal/sim"
	"colab/internal/task"
)

// Scheduler is a pluggable scheduling policy.
//
// Contract:
//   - Enqueue places a ready thread into some core's run queue and returns
//     that core's index. wakeup distinguishes sleep→ready transitions (the
//     paper's core-allocation trigger) from slice rotation re-queues.
//   - PickNext removes and returns the next thread for core c, or nil to
//     idle. It may instead return a thread currently Running on another
//     core: the kernel then performs the COLAB big-pulls-little preemption.
//   - TimeSlice bounds how long the picked thread may run before the kernel
//     re-invokes selection.
//   - VRuntimeScale multiplies wall-clock execution before it is added to
//     the thread's vruntime (COLAB's scale-slice equal-progress mechanism).
//   - WakeupPreempt reports whether newly woken t should preempt c.Current.
//   - Rebalance-style periodic work (labeling) is scheduled by the policy
//     itself in Start via m.Engine().
type Scheduler interface {
	Name() string
	// Start installs the policy on a machine before any thread is admitted.
	Start(m *Machine)
	// Admit introduces a thread (state New) prior to its first Enqueue.
	Admit(t *task.Thread)
	// Enqueue places a ready thread and returns the chosen core index.
	Enqueue(t *task.Thread, wakeup bool) int
	// PickNext selects the next thread for c (removing it from any queue),
	// nil to idle.
	PickNext(c *Core) *task.Thread
	// TimeSlice returns the maximum uninterrupted run for t on c.
	TimeSlice(c *Core, t *task.Thread) sim.Time
	// VRuntimeScale returns the vruntime growth multiplier for t on c.
	VRuntimeScale(c *Core, t *task.Thread) float64
	// WakeupPreempt reports whether woken thread t preempts c.Current.
	WakeupPreempt(c *Core, t *task.Thread) bool
	// ThreadDone notifies the policy a thread retired.
	ThreadDone(t *task.Thread)
}

// DVFSGovernor is an optional Scheduler extension. A policy that implements
// it selects the operating point (an index into the core's tier ladder,
// ascending frequency) the kernel programs before each dispatch; the
// returned index is clamped to the ladder. Cores of fixed-frequency tiers
// (single-entry ladders, as in the paper's gem5 setup) never invoke the
// hook. Policies without the hook run every core at its nominal point.
type DVFSGovernor interface {
	// SelectOPP picks the operating point for thread t about to run on c.
	SelectOPP(c *Core, t *task.Thread) int
}

// Params are machine-level costs and limits. Zero values select defaults.
type Params struct {
	// ContextSwitchCost is charged when a core switches between two
	// different threads (~ a few microseconds on big.LITTLE).
	ContextSwitchCost sim.Time
	// MigrationCost is additionally charged when the incoming thread last
	// ran on a different core (cold caches).
	MigrationCost sim.Time
	// MaxEvents aborts runaway simulations (0 = default budget).
	MaxEvents uint64
	// CounterNoiseSeed seeds the performance-counter noise stream.
	CounterNoiseSeed uint64
	// Power models per-core-type power draw for the energy extension
	// (zero value selects cpu.DefaultPower).
	Power cpu.PowerModel
}

// Default costs.
const (
	DefaultContextSwitchCost = 3 * sim.Microsecond
	DefaultMigrationCost     = 25 * sim.Microsecond
	DefaultMaxEvents         = 30_000_000
)

// Canonical returns the params with every zero field replaced by its
// default: the normalised value cell keys hash, so a zero Params and an
// explicitly spelled-out default configuration (which run identically)
// share cache and journal entries.
func (p Params) Canonical() Params { return p.withDefaults() }

func (p Params) withDefaults() Params {
	if p.ContextSwitchCost == 0 {
		p.ContextSwitchCost = DefaultContextSwitchCost
	}
	if p.MigrationCost == 0 {
		p.MigrationCost = DefaultMigrationCost
	}
	if p.MaxEvents == 0 {
		p.MaxEvents = DefaultMaxEvents
	}
	if p.CounterNoiseSeed == 0 {
		p.CounterNoiseSeed = 0xc01ab
	}
	if p.Power == (cpu.PowerModel{}) {
		p.Power = cpu.DefaultPower
	}
	return p
}
