package kernel_test

import (
	"fmt"
	"strings"
	"testing"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/sched/cfs"
	colabsched "colab/internal/sched/colab"
	"colab/internal/sched/eas"
	"colab/internal/sched/gts"
	"colab/internal/sched/wash"
	"colab/internal/sim"
	"colab/internal/task"
)

// bigOpenWorkload is the 128-core determinism scenario: a wide closed app
// saturating more than 64 cores at time zero (so run-queue and affinity
// state live in the spilled mask words from the first dispatch), a
// producer/consumer app arriving mid-run, and a straggler arriving after
// the first wave thins out.
func bigOpenWorkload() *task.Workload {
	var profiles []cpu.WorkProfile
	var progs []task.Program
	for i := 0; i < 96; i++ {
		p := fastProfile
		if i%3 == 0 {
			p = slowProfile
		}
		profiles = append(profiles, p)
		progs = append(progs, task.Program{task.Compute{Work: float64(4+i%5) * 1e6}})
	}
	wide := mkApp(0, "wide", profiles, progs)

	var prod, cons task.Program
	for i := 0; i < 4; i++ {
		prod = append(prod, task.Compute{Work: 2e6}, task.Put{ID: 1})
		cons = append(cons, task.Get{ID: 1}, task.Compute{Work: 2e6})
	}
	pipe := mkApp(1, "pipe", []cpu.WorkProfile{fastProfile, slowProfile},
		[]task.Program{prod, cons}, task.QueueSpec{ID: 1, Capacity: 2})
	pipe.Arrival = 2 * sim.Millisecond

	late := mkApp(2, "late", []cpu.WorkProfile{fastProfile, fastProfile},
		[]task.Program{{task.Compute{Work: 6e6}}, {task.Compute{Work: 6e6}}})
	late.Arrival = 5 * sim.Millisecond

	return &task.Workload{Name: "big-open", Apps: []*task.App{wide, pipe, late}}
}

// TestBigMachineTraceDeterministic runs the 128-core open-system scenario
// under all five policies and requires the full scheduling trace to be
// byte-identical across repeated runs: beyond-64-core masks, open-system
// admission and the allocation-free dispatch path must not introduce any
// map-order or pointer-order dependence.
func TestBigMachineTraceDeterministic(t *testing.T) {
	mkPolicies := func() map[string]kernel.Scheduler {
		return map[string]kernel.Scheduler{
			"linux": cfs.New(cfs.Options{}),
			"wash":  wash.New(wash.Options{}),
			"gts":   gts.New(gts.Options{}),
			"eas":   eas.New(eas.Options{}),
			"colab": colabsched.New(colabsched.Options{}),
		}
	}
	names := []string{"linux", "wash", "gts", "eas", "colab"}
	fingerprint := func(name string) string {
		var sb strings.Builder
		m, err := kernel.NewMachine(cpu.Config32B32M64S, mkPolicies()[name], bigOpenWorkload(), kernel.Params{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		m.SetTracer(func(e kernel.TraceEvent) { fmt.Fprintln(&sb, e.String()) })
		res, err := m.Run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, a := range res.Apps {
			if a.Turnaround <= 0 {
				t.Fatalf("%s: app %s unfinished", name, a.Name)
			}
		}
		return sb.String()
	}
	for _, name := range names {
		a, b := fingerprint(name), fingerprint(name)
		if a != b {
			t.Errorf("%s: 128-core trace differs across identical runs", name)
		}
		// More than 64 cores must actually dispatch work, or the spilled
		// mask words were never on the executed path.
		seen := map[int]bool{}
		m, err := kernel.NewMachine(cpu.Config32B32M64S, mkPolicies()[name], bigOpenWorkload(), kernel.Params{})
		if err != nil {
			t.Fatal(err)
		}
		m.SetTracer(func(e kernel.TraceEvent) {
			if e.Kind == kernel.TraceDispatch || e.Kind == kernel.TraceMigrate {
				seen[e.Core] = true
			}
		})
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		high := 0
		for c := range seen {
			if c >= 64 {
				high++
			}
		}
		if len(seen) <= 64 || high == 0 {
			t.Errorf("%s: only %d cores dispatched (%d above core 63); workload does not cover the big machine", name, len(seen), high)
		}
	}
}
