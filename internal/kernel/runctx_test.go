package kernel_test

import (
	"context"
	"errors"
	"testing"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/sched/cfs"
	"colab/internal/task"
)

// longApp is a workload big enough to span multiple context-check
// intervals: six threads x 16s of little-core work rotates through tens of
// thousands of dispatch/rotate events.
func longApp() *task.Workload {
	var profiles []cpu.WorkProfile
	var progs []task.Program
	for i := 0; i < 6; i++ {
		p := fastProfile
		if i%2 == 1 {
			p = slowProfile
		}
		profiles = append(profiles, p)
		progs = append(progs, task.Program{task.Compute{Work: 16e9}})
	}
	app := mkApp(0, "long", profiles, progs)
	return &task.Workload{Name: "long", Apps: []*task.App{app}}
}

func TestRunContextCancelledBeforeStart(t *testing.T) {
	m, err := kernel.NewMachine(cpu.Config2B2S, cfs.New(cfs.Options{}), longApp(), kernel.Params{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = m.RunContext(ctx)
	if err == nil {
		t.Fatal("cancelled context must abort the run")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap ctx.Err(): %v", err)
	}
}

func TestRunContextCancelledMidRun(t *testing.T) {
	m, err := kernel.NewMachine(cpu.Config2B2S, cfs.New(cfs.Options{}), longApp(), kernel.Params{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel from inside the simulation: the first dispatch event fires well
	// before the workload completes, so the loop must notice the done
	// context at the next check and bail out mid-run.
	dispatched := false
	m.SetTracer(func(ev kernel.TraceEvent) {
		if ev.Kind == kernel.TraceDispatch && !dispatched {
			dispatched = true
			cancel()
		}
	})
	_, err = m.RunContext(ctx)
	if !dispatched {
		t.Fatal("tracer never saw a dispatch")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancellation not surfaced as wrapped ctx.Err(): %v", err)
	}
}

func TestRunContextBackgroundMatchesRun(t *testing.T) {
	run := func(viaCtx bool) *kernel.Result {
		m, err := kernel.NewMachine(cpu.Config2B2S, cfs.New(cfs.Options{}), longApp(), kernel.Params{})
		if err != nil {
			t.Fatal(err)
		}
		var res *kernel.Result
		if viaCtx {
			res, err = m.RunContext(context.Background())
		} else {
			res, err = m.Run()
		}
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(false), run(true)
	if a.EndTime != b.EndTime || a.TotalSwitches != b.TotalSwitches || a.TotalMigrations != b.TotalMigrations {
		t.Fatalf("RunContext(Background) diverged from Run: end %v vs %v", a.EndTime, b.EndTime)
	}
}
