package kernel_test

import (
	"testing"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/sched/cfs"
	"colab/internal/sim"
	"colab/internal/task"
)

// oneCoreTier builds a single-core config of the given tier.
func oneCoreTier(tier cpu.Tier) cpu.Config {
	return cpu.Config{Name: "1" + tier.Name, Kinds: []cpu.Kind{0}, TierSet: []cpu.Tier{tier}}
}

func soloWorkload(name string, prof cpu.WorkProfile, work float64) *task.Workload {
	app := mkApp(0, name, []cpu.WorkProfile{prof}, []task.Program{{task.Compute{Work: work}}})
	return &task.Workload{Name: name, Apps: []*task.App{app}}
}

func TestTierCoreLayout(t *testing.T) {
	w := soloWorkload("layout", fastProfile, 1e6)
	m, err := kernel.NewMachine(cpu.Config2B2M2S, cfs.New(cfs.Options{}), w, kernel.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTiers() != 3 || m.TopTier() != 2 {
		t.Fatalf("tiers=%d top=%d", m.NumTiers(), m.TopTier())
	}
	wantTier := map[int][]int{0: {4, 5}, 1: {2, 3}, 2: {0, 1}}
	for tier, want := range wantTier {
		got := m.TierCoreIDs(tier)
		if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
			t.Errorf("tier %d cores %v, want %v", tier, got, want)
		}
	}
	// Legacy accessors map to the top/base tiers.
	if ids := m.BigCoreIDs(); ids[0] != 0 || ids[1] != 1 {
		t.Errorf("BigCoreIDs %v", ids)
	}
	if ids := m.LittleCoreIDs(); ids[0] != 4 || ids[1] != 5 {
		t.Errorf("LittleCoreIDs %v", ids)
	}
	for _, c := range m.Cores() {
		if c.NumOPPs() != 3 {
			t.Errorf("%v: %d OPPs, want 3 (DVFS ladders on every tri-gear tier)", c, c.NumOPPs())
		}
		if c.FreqMHz() != c.Tier.FreqMHz {
			t.Errorf("%v boots at %d MHz, want nominal %d", c, c.FreqMHz(), c.Tier.FreqMHz)
		}
	}
}

func TestMediumTierRatesBetweenAnchors(t *testing.T) {
	const work = 20e6
	mk := func() *task.Workload { return soloWorkload("rate", fastProfile, work) }
	little := runOn(t, oneCoreTier(cpu.TierLittle), cfs.New(cfs.Options{}), mk()).Apps[0].Turnaround
	medium := runOn(t, oneCoreTier(cpu.TierMedium), cfs.New(cfs.Options{}), mk()).Apps[0].Turnaround
	big := runOn(t, oneCoreTier(cpu.TierBig), cfs.New(cfs.Options{}), mk()).Apps[0].Turnaround
	if !(big < medium && medium < little) {
		t.Fatalf("turnarounds not tier-ordered: big=%v medium=%v little=%v", big, medium, little)
	}
	wantMedium := float64(little) / fastProfile.SpeedupOn(cpu.TierMedium)
	if ratio := float64(medium) / wantMedium; ratio < 0.99 || ratio > 1.01 {
		t.Errorf("medium turnaround %v, want ~%v", medium, sim.Time(wantMedium))
	}
}

// fixedOPP wraps CFS with a governor pinning every dispatch to one OPP.
type fixedOPP struct {
	*cfs.Policy
	opp int
}

func (f *fixedOPP) SelectOPP(c *kernel.Core, t *task.Thread) int { return f.opp }

func TestDVFSGovernorScalesRateAndEnergy(t *testing.T) {
	const work = 20e6
	run := func(opp int) *kernel.Result {
		w := soloWorkload("dvfs", fastProfile, work)
		m, err := kernel.NewMachine(oneCoreTier(cpu.TierMedium),
			&fixedOPP{Policy: cfs.New(cfs.Options{}), opp: opp}, w, kernel.Params{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	nominal := run(2) // 1600 MHz
	slow := run(0)    // 1000 MHz
	ratio := float64(slow.Apps[0].Turnaround) / float64(nominal.Apps[0].Turnaround)
	want := 1600.0 / 1000.0
	if ratio < want*0.99 || ratio > want*1.01 {
		t.Errorf("downclocked slowdown %.3f, want ~%.3f", ratio, want)
	}
	// Busy-time residency lands on the programmed point.
	if slow.Cores[0].BusyByOPP[0] == 0 || slow.Cores[0].BusyByOPP[2] != 0 {
		t.Errorf("slow run residency %v, want all at OPP 0", slow.Cores[0].BusyByOPP)
	}
	// Cube-law power beats the linear slowdown: less busy energy overall.
	busyJ := func(r *kernel.Result) float64 {
		idle := cpu.DefaultPower.TierIdleW(cpu.TierMedium) * r.Cores[0].IdleTime.Seconds()
		return r.Cores[0].EnergyJ - idle
	}
	if busyJ(slow) >= busyJ(nominal) {
		t.Errorf("downclocked busy energy %.4f J not below nominal %.4f J", busyJ(slow), busyJ(nominal))
	}
}

func TestFixedFrequencyTiersSkipGovernor(t *testing.T) {
	// A governor on a fixed-frequency (paper) machine must never fire.
	w := soloWorkload("fixed", fastProfile, 1e6)
	pol := &fixedOPP{Policy: cfs.New(cfs.Options{}), opp: 0}
	m, err := kernel.NewMachine(cpu.NewSymmetric(cpu.Big, 1), pol, w, kernel.Params{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores[0].BusyByOPP) != 1 || res.Cores[0].BusyByOPP[0] != res.Cores[0].BusyTime {
		t.Errorf("fixed-frequency residency %v, busy %v", res.Cores[0].BusyByOPP, res.Cores[0].BusyTime)
	}
}

func TestInvalidTierConfigRejected(t *testing.T) {
	w := soloWorkload("bad", fastProfile, 1e6)
	bad := cpu.Config{Name: "bad", Kinds: []cpu.Kind{0, 5}, TierSet: cpu.TriGearTiers()}
	if _, err := kernel.NewMachine(bad, cfs.New(cfs.Options{}), w, kernel.Params{}); err == nil {
		t.Fatal("out-of-range tier index accepted")
	}
	desc := cpu.Config{Name: "desc", Kinds: []cpu.Kind{0, 1},
		TierSet: []cpu.Tier{cpu.TierBig, cpu.TierLittle}} // capacity not ascending
	w2 := soloWorkload("bad2", fastProfile, 1e6)
	if _, err := kernel.NewMachine(desc, cfs.New(cfs.Options{}), w2, kernel.Params{}); err == nil {
		t.Fatal("descending tier palette accepted")
	}
}
