package kernel_test

import (
	"strings"
	"testing"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/mathx"
	"colab/internal/sched/cfs"
	"colab/internal/sched/colab"
	"colab/internal/sched/gts"
	"colab/internal/sched/wash"
	"colab/internal/sim"
	"colab/internal/task"
)

func TestTraceCapturesLifecycle(t *testing.T) {
	prog0 := task.Program{task.Lock{ID: 1}, task.Compute{Work: 5e6}, task.Unlock{ID: 1}}
	prog1 := task.Program{task.Compute{Work: 0.1e6}, task.Lock{ID: 1}, task.Unlock{ID: 1}}
	app := mkApp(0, "tr", []cpu.WorkProfile{slowProfile, slowProfile}, []task.Program{prog0, prog1})
	w := &task.Workload{Name: "tr", Apps: []*task.App{app}}
	m, err := kernel.NewMachine(cpu.NewSymmetric(cpu.Little, 2), cfs.New(cfs.Options{}), w, kernel.Params{})
	if err != nil {
		t.Fatal(err)
	}
	var events []kernel.TraceEvent
	m.SetTracer(func(e kernel.TraceEvent) { events = append(events, e) })
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	counts := map[kernel.TraceKind]int{}
	var lastAt sim.Time
	firstDispatch, firstDone := -1, -1
	for i, e := range events {
		counts[e.Kind]++
		if e.At < lastAt {
			t.Fatalf("trace time went backwards at %d", i)
		}
		lastAt = e.At
		if e.Kind == kernel.TraceDispatch && firstDispatch < 0 {
			firstDispatch = i
		}
		if e.Kind == kernel.TraceDone && firstDone < 0 {
			firstDone = i
		}
	}
	if counts[kernel.TraceDispatch] == 0 || counts[kernel.TraceDone] != 2 {
		t.Fatalf("trace counts: %v", counts)
	}
	if counts[kernel.TraceBlock] == 0 || counts[kernel.TraceWake] == 0 {
		t.Fatalf("lock contention left no block/wake events: %v", counts)
	}
	if firstDone < firstDispatch {
		t.Fatalf("done before any dispatch")
	}
	// Every wake pairs with a block.
	if counts[kernel.TraceWake] > counts[kernel.TraceBlock] {
		t.Fatalf("more wakes (%d) than blocks (%d)", counts[kernel.TraceWake], counts[kernel.TraceBlock])
	}
	// Event rendering must be stable and informative.
	if s := events[firstDispatch].String(); !strings.Contains(s, "dispatch") {
		t.Fatalf("trace line %q", s)
	}
}

func TestEnergyAccounting(t *testing.T) {
	mk := func() *task.Workload {
		app := mkApp(0, "e", []cpu.WorkProfile{slowProfile}, []task.Program{{task.Compute{Work: 100e6}}})
		return &task.Workload{Name: "e", Apps: []*task.App{app}}
	}
	little := runOn(t, cpu.NewSymmetric(cpu.Little, 1), cfs.New(cfs.Options{}), mk())
	big := runOn(t, cpu.NewSymmetric(cpu.Big, 1), cfs.New(cfs.Options{}), mk())
	if little.TotalEnergyJ() <= 0 || big.TotalEnergyJ() <= 0 {
		t.Fatalf("no energy accounted")
	}
	// The memory-bound thread gains little from big cores, so burning the
	// big core's power budget on it must cost more energy.
	if big.TotalEnergyJ() <= little.TotalEnergyJ() {
		t.Fatalf("big-core run cheaper than little: %v J vs %v J",
			big.TotalEnergyJ(), little.TotalEnergyJ())
	}
	// Busy+idle per core must cover the whole makespan.
	for _, c := range little.Cores {
		if got := c.BusyTime + c.IdleTime; got < little.EndTime-sim.Microsecond {
			t.Fatalf("core time %v does not cover makespan %v", got, little.EndTime)
		}
	}
	if little.EnergyDelayProduct() <= 0 {
		t.Fatalf("EDP must be positive")
	}
}

func TestCustomPowerModel(t *testing.T) {
	app := mkApp(0, "p", []cpu.WorkProfile{slowProfile}, []task.Program{{task.Compute{Work: 10e6}}})
	w := &task.Workload{Name: "p", Apps: []*task.App{app}}
	m, err := kernel.NewMachine(cpu.NewSymmetric(cpu.Little, 1), cfs.New(cfs.Options{}), w,
		kernel.Params{Power: cpu.PowerModel{LittleBusyW: 100, LittleIdleW: 1, BigBusyW: 1, BigIdleW: 1}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 10ms at 100W ~ 1J.
	if e := res.TotalEnergyJ(); e < 0.9 || e > 1.2 {
		t.Fatalf("custom power model ignored: %v J", e)
	}
}

func TestPhaseOpSwitchesProfile(t *testing.T) {
	hot := cpu.WorkProfile{ILP: 0.9, MemIntensity: 0.05, FPRate: 0.6}
	cold := cpu.WorkProfile{ILP: 0.1, MemIntensity: 0.95}
	// 20ms in the hot phase then 20ms in the cold phase, on one big core:
	// runtime must reflect the two different execution rates.
	prog := task.Program{
		task.Phase{Profile: hot},
		task.Compute{Work: 20e6},
		task.Phase{Profile: cold},
		task.Compute{Work: 20e6},
	}
	app := mkApp(0, "ph", []cpu.WorkProfile{hot}, []task.Program{prog})
	w := &task.Workload{Name: "ph", Apps: []*task.App{app}}
	res := runOn(t, cpu.NewSymmetric(cpu.Big, 1), cfs.New(cfs.Options{}), w)
	want := 20e6/hot.TrueSpeedup() + 20e6/cold.TrueSpeedup()
	got := float64(res.EndTime)
	if got < want*0.98 || got > want*1.05 {
		t.Fatalf("phased runtime %v, want ~%.0fns", res.EndTime, want)
	}
}

func TestUnlockWithoutOwnershipPanics(t *testing.T) {
	prog := task.Program{task.Unlock{ID: 5}}
	app := mkApp(0, "bad", []cpu.WorkProfile{slowProfile}, []task.Program{prog})
	w := &task.Workload{Name: "bad", Apps: []*task.App{app}}
	m, err := kernel.NewMachine(cpu.NewSymmetric(cpu.Little, 1), cfs.New(cfs.Options{}), w, kernel.Params{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatalf("unlock without ownership must panic (generator bug detector)")
		}
	}()
	_, _ = m.Run()
}

func TestBarrierWithOneParty(t *testing.T) {
	prog := task.Program{task.Barrier{ID: 1, Parties: 1}, task.Compute{Work: 1e6}}
	app := mkApp(0, "b1", []cpu.WorkProfile{slowProfile}, []task.Program{prog})
	w := &task.Workload{Name: "b1", Apps: []*task.App{app}}
	res := runOn(t, cpu.NewSymmetric(cpu.Little, 1), cfs.New(cfs.Options{}), w)
	if res.Threads[0].BlockedTime != 0 {
		t.Fatalf("single-party barrier must not block")
	}
}

func TestSleepOpBlocksWithoutBlame(t *testing.T) {
	prog := task.Program{task.Compute{Work: 1e6}, task.Sleep{Duration: 5 * sim.Millisecond}, task.Compute{Work: 1e6}}
	app := mkApp(0, "sl", []cpu.WorkProfile{slowProfile}, []task.Program{prog})
	w := &task.Workload{Name: "sl", Apps: []*task.App{app}}
	res := runOn(t, cpu.NewSymmetric(cpu.Little, 1), cfs.New(cfs.Options{}), w)
	if res.Threads[0].BlockedTime < 5*sim.Millisecond {
		t.Fatalf("sleep not accounted: %v", res.Threads[0].BlockedTime)
	}
	if res.Threads[0].BlockBlame != 0 {
		t.Fatalf("sleep must not create blame")
	}
	if res.EndTime < 7*sim.Millisecond {
		t.Fatalf("end %v too early", res.EndTime)
	}
}

func TestMigrationCostCharged(t *testing.T) {
	// One thread forced to migrate: pin to core 0, then the scheduler moves
	// it via stealing when core 0 is overloaded. Simpler: two threads on
	// two cores with migration cost 0 vs high must differ in makespan when
	// threads bounce. Use three threads on two cores (steals guaranteed).
	mk := func() *task.Workload {
		var progs []task.Program
		var profs []cpu.WorkProfile
		for i := 0; i < 3; i++ {
			progs = append(progs, task.Program{task.Compute{Work: 30e6}})
			profs = append(profs, slowProfile)
		}
		app := mkApp(0, "mig", profs, progs)
		return &task.Workload{Name: "mig", Apps: []*task.App{app}}
	}
	cheap, err := kernel.NewMachine(cpu.NewSymmetric(cpu.Little, 2), cfs.New(cfs.Options{}), mk(),
		kernel.Params{MigrationCost: 1})
	if err != nil {
		t.Fatal(err)
	}
	resCheap, err := cheap.Run()
	if err != nil {
		t.Fatal(err)
	}
	dear, err := kernel.NewMachine(cpu.NewSymmetric(cpu.Little, 2), cfs.New(cfs.Options{}), mk(),
		kernel.Params{MigrationCost: 2 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	resDear, err := dear.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resCheap.TotalMigrations == 0 {
		t.Fatalf("scenario produced no migrations")
	}
	if resDear.EndTime <= resCheap.EndTime {
		t.Fatalf("expensive migrations not charged: %v vs %v", resDear.EndTime, resCheap.EndTime)
	}
}

// Failure injection / fuzz: random well-formed programs must always
// complete under every scheduler, conserve work, and never deadlock.
func TestFuzzRandomWorkloadsAllSchedulers(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		rng := mathx.NewRNG(seed)
		w := randomWorkload(rng)
		want := -1.0
		for _, mk := range schedFactories() {
			// Regenerate the identical workload for each scheduler.
			w2 := randomWorkload(mathx.NewRNG(seed))
			s := mk()
			cfgs := cpu.EvaluatedConfigs()
			cfg := cfgs[rng.IntN(len(cfgs))]
			m, err := kernel.NewMachine(cfg, s, w2, kernel.Params{})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, s.Name(), err)
			}
			// Continuously validate machine invariants between events.
			var events int
			m.Engine().PostStep = func() {
				events++
				if events%23 == 0 {
					if v := m.CheckInvariants(); len(v) > 0 {
						t.Fatalf("seed %d %s invariants: %v", seed, s.Name(), v)
					}
				}
			}
			res, err := m.Run()
			if err != nil {
				t.Fatalf("seed %d %s on %s: %v", seed, s.Name(), cfg.Name, err)
			}
			if v := m.CheckInvariants(); len(v) > 0 {
				t.Fatalf("seed %d %s final invariants: %v", seed, s.Name(), v)
			}
			total := 0.0
			for _, th := range res.Threads {
				total += th.WorkDone
			}
			if want < 0 {
				want = totalWork(w)
			}
			if total < want*0.999 || total > want*1.001 {
				t.Fatalf("seed %d %s: retired %v of %v work", seed, s.Name(), total, want)
			}
		}
	}
}

func totalWork(w *task.Workload) float64 {
	total := 0.0
	for _, th := range w.Threads() {
		total += th.Program.TotalWork()
	}
	return total
}

// randomWorkload emits 1-3 apps of structurally valid random programs:
// barrier-phased compute with optional lock pairs and queue ping-pongs.
func randomWorkload(rng *mathx.RNG) *task.Workload {
	w := &task.Workload{Name: "fuzz"}
	nApps := 1 + rng.IntN(3)
	for a := 0; a < nApps; a++ {
		app := &task.App{ID: a, Name: "fz"}
		n := 1 + rng.IntN(6)
		phases := 1 + rng.IntN(5)
		useLocks := rng.Float64() < 0.5
		bar := 1
		for i := 0; i < n; i++ {
			prof := cpu.WorkProfile{
				ILP:          rng.Float64(),
				BranchRate:   rng.Range(0, 0.3),
				MemIntensity: rng.Float64(),
				StoreRate:    rng.Float64(),
				FPRate:       rng.Float64(),
			}
			var prog task.Program
			for ph := 0; ph < phases; ph++ {
				prog = append(prog, task.Compute{Work: rng.Range(0.1e6, 8e6)})
				if useLocks && rng.Float64() < 0.7 {
					prog = append(prog,
						task.Lock{ID: 99},
						task.Compute{Work: rng.Range(0.01e6, 0.5e6)},
						task.Unlock{ID: 99})
				}
				if rng.Float64() < 0.3 {
					prog = append(prog, task.Sleep{Duration: sim.Time(rng.IntN(2_000_000))})
				}
				if n > 1 {
					prog = append(prog, task.Barrier{ID: bar, Parties: n})
				}
			}
			app.Threads = append(app.Threads, &task.Thread{App: app, Name: "t", Profile: prof, Program: prog})
		}
		w.Apps = append(w.Apps, app)
	}
	return w
}

func schedFactories() []func() kernel.Scheduler {
	return []func() kernel.Scheduler{
		func() kernel.Scheduler { return cfs.New(cfs.Options{}) },
		func() kernel.Scheduler { return wash.New(wash.Options{}) },
		func() kernel.Scheduler { return colab.New(colab.Options{}) },
		func() kernel.Scheduler { return gts.New(gts.Options{}) },
	}
}
