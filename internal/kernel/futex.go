package kernel

import (
	"fmt"

	"colab/internal/task"
)

// The futex layer reproduces the paper's bottleneck identification (§4.1):
// every synchronisation primitive funnels through kernel wait queues; a
// waiter records its wait start (futex_wait_queue_me) and the thread that
// releases it accumulates the waiting period it ended (wake_futex). The
// accumulated "time this thread made others wait" is the criticality /
// blocking metric both WASH and COLAB consume.

type fkey struct {
	app int
	id  int
}

// flock is a futex-backed mutex with FIFO handoff.
type flock struct {
	owner   *task.Thread
	waiters []*task.Thread
}

// fbarrier collects arrivals until the party count is met.
type fbarrier struct {
	arrived []*task.Thread
}

// fqueue is a bounded FIFO used by pipeline benchmarks.
type fqueue struct {
	capacity   int
	items      int
	getWaiters []*task.Thread
	putWaiters []*task.Thread
}

type futexTable struct {
	locks    map[fkey]*flock
	barriers map[fkey]*fbarrier
	queues   map[fkey]*fqueue
}

func newFutexTable() *futexTable {
	return &futexTable{
		locks:    make(map[fkey]*flock),
		barriers: make(map[fkey]*fbarrier),
		queues:   make(map[fkey]*fqueue),
	}
}

func (ft *futexTable) lock(k fkey) *flock {
	l := ft.locks[k]
	if l == nil {
		l = &flock{}
		ft.locks[k] = l
	}
	return l
}

func (ft *futexTable) barrier(k fkey) *fbarrier {
	b := ft.barriers[k]
	if b == nil {
		b = &fbarrier{}
		ft.barriers[k] = b
	}
	return b
}

func (ft *futexTable) queue(k fkey, m *Machine) *fqueue {
	q := ft.queues[k]
	if q == nil {
		capacity := 1
		// Look up the declared capacity on the owning app.
		for _, a := range m.workload.Apps {
			if a.ID == k.app {
				for _, qs := range a.Queues {
					if qs.ID == k.id {
						capacity = qs.Capacity
					}
				}
			}
		}
		if capacity < 1 {
			capacity = 1
		}
		q = &fqueue{capacity: capacity}
		ft.queues[k] = q
	}
	return q
}

// opKey scopes a synchronisation ID to the thread's application.
func opKey(t *task.Thread, id int) fkey { return fkey{app: t.App.ID, id: id} }

// doLock executes a Lock op for t. It reports whether t blocked.
func (m *Machine) doLock(t *task.Thread, id int) bool {
	l := m.futexes.lock(opKey(t, id))
	if l.owner == nil {
		// Uncontested: user-space atomic, no kernel involvement (§4.1).
		l.owner = t
		t.PC++
		return false
	}
	l.waiters = append(l.waiters, t)
	m.blockThread(t)
	return true
}

// doUnlock executes an Unlock op for t, waking the first waiter with direct
// lock handoff and charging t the waiter's full waiting period.
func (m *Machine) doUnlock(t *task.Thread, id int) {
	l := m.futexes.lock(opKey(t, id))
	if l.owner != t {
		panic(fmt.Sprintf("kernel: %v unlocks futex %d it does not hold", t, id))
	}
	l.owner = nil
	t.PC++
	if len(l.waiters) > 0 {
		w := l.waiters[0]
		l.waiters = l.waiters[1:]
		l.owner = w
		m.wakeThread(w, t)
	}
}

// doBarrier executes a Barrier op. The last arriver releases everyone and is
// blamed for the full accumulated waiting time (it is the thread the others
// were critically waiting on).
func (m *Machine) doBarrier(t *task.Thread, id, parties int) bool {
	if parties <= 1 {
		t.PC++
		return false
	}
	b := m.futexes.barrier(opKey(t, id))
	if len(b.arrived)+1 >= parties {
		waiters := b.arrived
		b.arrived = nil
		t.PC++
		for _, w := range waiters {
			m.wakeThread(w, t)
		}
		return false
	}
	b.arrived = append(b.arrived, t)
	m.blockThread(t)
	return true
}

// doPut executes a bounded-queue produce. It reports whether t blocked.
func (m *Machine) doPut(t *task.Thread, id int) bool {
	q := m.futexes.queue(opKey(t, id), m)
	if len(q.getWaiters) > 0 {
		// Direct handoff to a starving consumer; the producer ended its wait.
		w := q.getWaiters[0]
		q.getWaiters = q.getWaiters[1:]
		t.PC++
		m.wakeThread(w, t)
		return false
	}
	if q.items < q.capacity {
		q.items++
		t.PC++
		return false
	}
	q.putWaiters = append(q.putWaiters, t)
	m.blockThread(t)
	return true
}

// doGet executes a bounded-queue consume. It reports whether t blocked.
func (m *Machine) doGet(t *task.Thread, id int) bool {
	q := m.futexes.queue(opKey(t, id), m)
	if len(q.putWaiters) > 0 {
		// A producer was blocked on a full queue: take its item directly.
		w := q.putWaiters[0]
		q.putWaiters = q.putWaiters[1:]
		t.PC++
		m.wakeThread(w, t)
		return false
	}
	if q.items > 0 {
		q.items--
		t.PC++
		return false
	}
	q.getWaiters = append(q.getWaiters, t)
	m.blockThread(t)
	return true
}
