package kernel

import (
	"fmt"
	"strings"

	"colab/internal/sim"
	"colab/internal/task"
)

// This file is the generic policy-pipeline driver: it decomposes the
// Scheduler contract into four pluggable stages — a Labeler (the periodic
// multi-factor tagging pass), an Allocator (core allocation on enqueue), a
// Selector (thread selection plus the fairness hooks tied to it) and a
// Governor (per-dispatch DVFS) — and adapts any stage combination back into
// a Scheduler. Stages communicate through two pieces of shared state owned
// by the driver: the per-core RunQueues every allocator pushes into and
// every selector pops from, and the HintBoard of per-thread scheduling
// hints labelers publish and the other stages read. Cross-policy hybrids
// (say COLAB's labeler feeding the CFS selector) compose exactly because
// those two channels, plus the kernel-owned thread fields (affinity,
// vruntime), are the only coupling between stages.

// Stage is the contract shared by all pipeline stages.
type Stage interface {
	// Name is the stage's registry address, e.g. "colab.labeler".
	Name() string
	// Start installs the stage on a machine (via the shared pipeline
	// context) before any thread is admitted.
	Start(pc *PipelineContext)
}

// Labeler is the periodic labeling stage (~ the paper's multi-factor
// labeler added to __sched__schedule). It observes threads, refreshes the
// runtime models and publishes per-thread Hints; it may also steer thread
// affinity (WASH/GTS style) through PipelineContext.Requeue.
type Labeler interface {
	Stage
	// Admit introduces a thread (state New) prior to its first Enqueue.
	Admit(t *task.Thread)
	// ThreadDone notifies the stage a thread retired.
	ThreadDone(t *task.Thread)
}

// Allocator is the core-allocation stage (~ select_task_rq_fair): it places
// a ready thread into some core's run queue (PipelineContext.Queues) and
// returns that core's index.
type Allocator interface {
	Stage
	Enqueue(t *task.Thread, wakeup bool) int
}

// Selector is the thread-selection stage (~ pick_next_task_fair) together
// with the fairness hooks inseparable from selection order: slice length,
// vruntime scaling and wake-up preemption.
type Selector interface {
	Stage
	PickNext(c *Core) *task.Thread
	TimeSlice(c *Core, t *task.Thread) sim.Time
	VRuntimeScale(c *Core, t *task.Thread) float64
	WakeupPreempt(c *Core, t *task.Thread) bool
}

// Governor is the DVFS stage: it picks the operating point the kernel
// programs before each dispatch. A pipeline without a governor stage runs
// every core at its nominal point, exactly like a Scheduler that does not
// implement DVFSGovernor.
type Governor interface {
	Stage
	SelectOPP(c *Core, t *task.Thread) int
}

// ---------------------------------------------------------------------------
// Shared per-thread hints.

// Neutral hint defaults, matching the per-policy defaults the monolithic
// schedulers used for threads they had not yet observed.
const (
	// NeutralPred is the speedup prediction assumed before the first
	// labeling pass.
	NeutralPred = 1.5
	// NeutralUtil is the utilisation assumed before the first sampling pass
	// (threads start on the cheap tiers, the energy-first default).
	NeutralUtil = 0.4
)

// Hint is the per-thread blackboard entry labelers publish and the other
// stages read. Every field is optional: stages must tolerate the neutral
// defaults for threads no labeler has tagged yet (or when no labeler runs
// at all).
type Hint struct {
	// Label is the labeler's tag (colab.Label semantics for the built-in
	// COLAB stages; free = 0).
	Label int
	// TargetTier is the tier the allocator should steer to; -1 = free.
	TargetTier int
	// Pred is the predicted big-vs-little speedup.
	Pred float64
	// TierPred, when non-nil, holds per-tier speedup predictions indexed by
	// tier (entry 0 is 1 by definition).
	TierPred []float64
	// Crit is the criticality score (blocking-blame EWMA for the built-in
	// labelers).
	Crit float64
	// LastBlame is the thread's accumulated BlockBlame at the last labeling
	// pass; a live BlockBlame above it means fresh criticality the labeler
	// has not folded in yet.
	LastBlame sim.Time
	// Util is the tracked runnable-time fraction (EAS-style utilisation).
	Util float64
}

func newHint() *Hint {
	return &Hint{TargetTier: -1, Pred: NeutralPred, Util: NeutralUtil}
}

// HintBoard holds the live threads' hints. The pipeline driver creates an
// entry at Admit and drops it at ThreadDone; Get materialises entries for
// unknown threads so stages can always read (and labelers always write)
// through it.
type HintBoard struct {
	hints map[*task.Thread]*Hint
}

// NewHintBoard returns an empty board.
func NewHintBoard() *HintBoard {
	return &HintBoard{hints: make(map[*task.Thread]*Hint)}
}

// Get returns t's hint, materialising a neutral one if absent.
func (b *HintBoard) Get(t *task.Thread) *Hint {
	h := b.hints[t]
	if h == nil {
		h = newHint()
		b.hints[t] = h
	}
	return h
}

// Drop forgets t's hint.
func (b *HintBoard) Drop(t *task.Thread) { delete(b.hints, t) }

// ---------------------------------------------------------------------------
// Shared run queues.

// rqEntry snapshots the vruntime at push time; (vr, seq) is a total order
// reproducing the CFS red-black-tree timeline ordering (seq breaks vruntime
// ties in insertion order).
type rqEntry struct {
	t   *task.Thread
	vr  sim.Time
	seq uint64
}

// RunQueues is the pipeline's shared per-core ready-queue state: the
// allocator pushes, the selector pops. Entries keep insertion order (the
// order COLAB-style criticality scans walk) while (vruntime, push-sequence)
// gives CFS-style timeline ordering for PopMin/StealMax.
type RunQueues struct {
	qs    [][]rqEntry
	seqs  []uint64
	minVR []sim.Time
	where map[*task.Thread]int
}

// NewRunQueues returns empty queues for n cores.
func NewRunQueues(n int) *RunQueues {
	return &RunQueues{
		qs:    make([][]rqEntry, n),
		seqs:  make([]uint64, n),
		minVR: make([]sim.Time, n),
		where: make(map[*task.Thread]int, 16),
	}
}

// NumQueues returns the number of per-core queues.
func (q *RunQueues) NumQueues() int { return len(q.qs) }

// Len returns the number of threads queued (not running) on core.
func (q *RunQueues) Len(core int) int { return len(q.qs[core]) }

// MinVR returns the monotone vruntime floor of core's queue (the largest
// vruntime ever popped from its timeline; CFS placement rules build on it).
func (q *RunQueues) MinVR(core int) sim.Time { return q.minVR[core] }

// Push appends t to core's queue. Double-queueing a thread is a bug in the
// calling allocator.
func (q *RunQueues) Push(core int, t *task.Thread) {
	if at, dup := q.where[t]; dup {
		panic(fmt.Sprintf("kernel: thread %v enqueued on cpu%d while queued on cpu%d", t, core, at))
	}
	q.seqs[core]++
	q.qs[core] = append(q.qs[core], rqEntry{t: t, vr: t.VRuntime, seq: q.seqs[core]})
	q.where[t] = core
}

func entryLess(a, b rqEntry) bool {
	if a.vr != b.vr {
		return a.vr < b.vr
	}
	return a.seq < b.seq
}

func (q *RunQueues) removeAt(core, i int) *task.Thread {
	es := q.qs[core]
	t := es[i].t
	q.qs[core] = append(es[:i], es[i+1:]...)
	delete(q.where, t)
	return t
}

// PopMin removes and returns the thread with the smallest (vruntime, push
// order) on core that satisfies allow — the CFS leftmost — advancing the
// queue's vruntime floor. A nil allow admits everything; selectors pass the
// picking core's affinity check so that a hybrid pipeline whose allocator
// queues affinity-blind (COLAB treats queues as bags and enforces affinity
// at selection) never dispatches a thread onto a forbidden core. It returns
// nil when no queued thread qualifies.
func (q *RunQueues) PopMin(core int, allow func(*task.Thread) bool) *task.Thread {
	es := q.qs[core]
	best := -1
	for i, e := range es {
		if allow != nil && !allow(e.t) {
			continue
		}
		if best < 0 || entryLess(e, es[best]) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	if es[best].vr > q.minVR[core] {
		q.minVR[core] = es[best].vr
	}
	return q.removeAt(core, best)
}

// StealMax removes and returns the thread with the largest (vruntime, push
// order) on core that satisfies allow — the CFS rightmost steal — or nil.
// (Walking the timeline right-to-left until allow passes selects exactly
// the maximum over the allowed entries, so one linear scan suffices.)
func (q *RunQueues) StealMax(core int, allow func(*task.Thread) bool) *task.Thread {
	es := q.qs[core]
	best := -1
	for i, e := range es {
		if !allow(e.t) {
			continue
		}
		if best < 0 || entryLess(es[best], e) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	return q.removeAt(core, best)
}

// PopMinAllowed is PopMin with the filter fixed to "may run on core dest":
// the selector hot path, closure-free so steady-state dispatch does not
// allocate a predicate per pick.
func (q *RunQueues) PopMinAllowed(core, dest int) *task.Thread {
	es := q.qs[core]
	best := -1
	for i := range es {
		if !es[i].t.AllowedOn(dest) {
			continue
		}
		if best < 0 || entryLess(es[i], es[best]) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	if es[best].vr > q.minVR[core] {
		q.minVR[core] = es[best].vr
	}
	return q.removeAt(core, best)
}

// StealMaxAllowed is StealMax with the filter fixed to "may run on core
// dest": the idle-balance hot path, closure-free like PopMinAllowed.
func (q *RunQueues) StealMaxAllowed(core, dest int) *task.Thread {
	es := q.qs[core]
	best := -1
	for i := range es {
		if !es[i].t.AllowedOn(dest) {
			continue
		}
		if best < 0 || entryLess(es[best], es[i]) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	return q.removeAt(core, best)
}

// Thread returns the i'th queued thread on core in insertion order
// (0 <= i < Len(core)) — the closure-free counterpart of Each for scans
// that must not allocate (COLAB's criticality sweeps).
func (q *RunQueues) Thread(core, i int) *task.Thread { return q.qs[core][i].t }

// Remove deletes t from whichever queue holds it, reporting whether it was
// queued. The vruntime floor is untouched (matching CFS dequeue).
func (q *RunQueues) Remove(t *task.Thread) bool {
	core, ok := q.where[t]
	if !ok {
		return false
	}
	for i, e := range q.qs[core] {
		if e.t == t {
			q.removeAt(core, i)
			return true
		}
	}
	panic(fmt.Sprintf("kernel: queue index desynced for thread %v", t))
}

// QueuedOn returns the core whose queue currently holds t, or -1.
func (q *RunQueues) QueuedOn(t *task.Thread) int {
	core, ok := q.where[t]
	if !ok {
		return -1
	}
	return core
}

// Each calls fn for every thread queued on core, in insertion order.
func (q *RunQueues) Each(core int, fn func(*task.Thread)) {
	for _, e := range q.qs[core] {
		fn(e.t)
	}
}

// ---------------------------------------------------------------------------
// Pipeline context and driver.

// PipelineContext is the shared state a pipeline's stages operate on. The
// driver builds one per Start; monolithic policies that embed stages build
// their own through NewPipelineContext.
type PipelineContext struct {
	m       *Machine
	queues  *RunQueues
	hints   *HintBoard
	requeue func(*task.Thread)
}

// NewPipelineContext wires a context for stages embedded outside the
// generic driver. queues may be nil when the embedding policy owns its own
// queue structure; requeue may be nil when no labeler steers affinity.
func NewPipelineContext(m *Machine, q *RunQueues, h *HintBoard, requeue func(*task.Thread)) *PipelineContext {
	if h == nil {
		h = NewHintBoard()
	}
	return &PipelineContext{m: m, queues: q, hints: h, requeue: requeue}
}

// Machine returns the machine under simulation.
func (pc *PipelineContext) Machine() *Machine { return pc.m }

// Queues returns the shared per-core run queues.
func (pc *PipelineContext) Queues() *RunQueues { return pc.queues }

// Hints returns the shared per-thread hint board.
func (pc *PipelineContext) Hints() *HintBoard { return pc.hints }

// Requeue re-places t after an affinity change: if t waits in a queue its
// new mask forbids, it is dequeued, re-enqueued through the pipeline's
// allocator and the chosen core is kicked — the effect sched_setaffinity
// has on a waiting task.
func (pc *PipelineContext) Requeue(t *task.Thread) {
	if pc.requeue != nil {
		pc.requeue(t)
	}
}

// Pipeline adapts a stage combination into a Scheduler. Allocator and
// selector are mandatory (they carry the mechanical scheduling base);
// labeler and governor are optional refinements.
type Pipeline struct {
	name  string
	lab   Labeler
	alloc Allocator
	sel   Selector
	gov   Governor
	pc    *PipelineContext
}

// governedPipeline adds the DVFSGovernor extension when (and only when) a
// governor stage is present, so a governor-less pipeline is
// indistinguishable from a Scheduler without the hook.
type governedPipeline struct{ *Pipeline }

// SelectOPP implements DVFSGovernor.
func (p *governedPipeline) SelectOPP(c *Core, t *task.Thread) int { return p.gov.SelectOPP(c, t) }

// NewPipeline builds a Scheduler from a stage combination. lab and gov may
// be nil; name defaults to the stage names joined with "+".
func NewPipeline(name string, lab Labeler, alloc Allocator, sel Selector, gov Governor) (Scheduler, error) {
	if alloc == nil {
		return nil, fmt.Errorf("kernel: pipeline %q needs an allocator stage", name)
	}
	if sel == nil {
		return nil, fmt.Errorf("kernel: pipeline %q needs a selector stage", name)
	}
	if name == "" {
		var parts []string
		for _, s := range []Stage{lab, alloc, sel, gov} {
			if s != nil {
				parts = append(parts, s.Name())
			}
		}
		name = strings.Join(parts, "+")
	}
	p := &Pipeline{name: name, lab: lab, alloc: alloc, sel: sel, gov: gov}
	if gov != nil {
		return &governedPipeline{p}, nil
	}
	return p, nil
}

// Name implements Scheduler.
func (p *Pipeline) Name() string { return p.name }

// Context returns the pipeline's shared state (nil before Start), for
// diagnostics and tests.
func (p *Pipeline) Context() *PipelineContext { return p.pc }

// Start implements Scheduler: it builds the shared state and starts the
// stages in slot order (labeler first, so its periodic pass is scheduled
// ahead of any same-time machine events, exactly as the monolithic
// policies' Start did).
func (p *Pipeline) Start(m *Machine) {
	q := NewRunQueues(len(m.Cores()))
	pc := NewPipelineContext(m, q, NewHintBoard(), nil)
	pc.requeue = func(t *task.Thread) {
		if core := q.QueuedOn(t); core >= 0 && !t.AllowedOn(core) {
			q.Remove(t)
			m.Kick(p.alloc.Enqueue(t, false))
		}
	}
	p.pc = pc
	if p.lab != nil {
		p.lab.Start(pc)
	}
	p.alloc.Start(pc)
	p.sel.Start(pc)
	if p.gov != nil {
		p.gov.Start(pc)
	}
}

// Admit implements Scheduler.
func (p *Pipeline) Admit(t *task.Thread) {
	p.pc.hints.Get(t) // materialise the neutral hint for the thread's lifetime
	if p.lab != nil {
		p.lab.Admit(t)
	}
}

// ThreadDone implements Scheduler.
func (p *Pipeline) ThreadDone(t *task.Thread) {
	if p.lab != nil {
		p.lab.ThreadDone(t)
	}
	p.pc.hints.Drop(t)
}

// Enqueue implements Scheduler.
func (p *Pipeline) Enqueue(t *task.Thread, wakeup bool) int { return p.alloc.Enqueue(t, wakeup) }

// PickNext implements Scheduler.
func (p *Pipeline) PickNext(c *Core) *task.Thread { return p.sel.PickNext(c) }

// TimeSlice implements Scheduler.
func (p *Pipeline) TimeSlice(c *Core, t *task.Thread) sim.Time { return p.sel.TimeSlice(c, t) }

// VRuntimeScale implements Scheduler.
func (p *Pipeline) VRuntimeScale(c *Core, t *task.Thread) float64 { return p.sel.VRuntimeScale(c, t) }

// WakeupPreempt implements Scheduler.
func (p *Pipeline) WakeupPreempt(c *Core, t *task.Thread) bool { return p.sel.WakeupPreempt(c, t) }

var (
	_ Scheduler    = (*Pipeline)(nil)
	_ DVFSGovernor = (*governedPipeline)(nil)
)
