package kernel_test

import (
	"fmt"
	"strings"
	"testing"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/sched/cfs"
	colabsched "colab/internal/sched/colab"
	"colab/internal/sched/gts"
	"colab/internal/sched/wash"
	"colab/internal/sim"
	"colab/internal/task"
	"colab/internal/topo"
)

// numaWorkload is a small multi-app scenario that forces cross-core (and,
// on NUMA shapes, cross-domain) traffic: more threads than cores, a
// producer/consumer pipe and an open-system straggler.
func numaWorkload() *task.Workload {
	var profiles []cpu.WorkProfile
	var progs []task.Program
	for i := 0; i < 6; i++ {
		p := fastProfile
		if i%2 == 0 {
			p = slowProfile
		}
		profiles = append(profiles, p)
		progs = append(progs, task.Program{task.Compute{Work: float64(3+i%4) * 1e6}})
	}
	wide := mkApp(0, "wide", profiles, progs)

	var prod, cons task.Program
	for i := 0; i < 3; i++ {
		prod = append(prod, task.Compute{Work: 1e6}, task.Put{ID: 1})
		cons = append(cons, task.Get{ID: 1}, task.Compute{Work: 1e6})
	}
	pipe := mkApp(1, "pipe", []cpu.WorkProfile{fastProfile, slowProfile},
		[]task.Program{prod, cons}, task.QueueSpec{ID: 1, Capacity: 2})
	pipe.Arrival = 1 * sim.Millisecond

	late := mkApp(2, "late", []cpu.WorkProfile{fastProfile, fastProfile},
		[]task.Program{{task.Compute{Work: 4e6}}, {task.Compute{Work: 4e6}}})
	late.Arrival = 3 * sim.Millisecond

	return &task.Workload{Name: "numa-mix", Apps: []*task.App{wide, pipe, late}}
}

func numaPolicies() map[string]func() kernel.Scheduler {
	return map[string]func() kernel.Scheduler{
		"linux": func() kernel.Scheduler { return cfs.New(cfs.Options{}) },
		"wash":  func() kernel.Scheduler { return wash.New(wash.Options{}) },
		"gts":   func() kernel.Scheduler { return gts.New(gts.Options{}) },
		"colab": func() kernel.Scheduler { return colabsched.New(colabsched.Options{}) },
	}
}

func traceOf(t *testing.T, cfg cpu.Config, mk func() kernel.Scheduler) (string, *kernel.Result) {
	t.Helper()
	var sb strings.Builder
	m, err := kernel.NewMachine(cfg, mk(), numaWorkload(), kernel.Params{})
	if err != nil {
		t.Fatal(err)
	}
	m.SetTracer(func(e kernel.TraceEvent) { fmt.Fprintln(&sb, e.String()) })
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return sb.String(), res
}

// TestZeroCostTopologyBitIdentical is the reduction guarantee: a NUMA
// machine with migration cost zero must schedule bit-identically (full
// trace and results) to the same core layout with no topology at all.
func TestZeroCostTopologyBitIdentical(t *testing.T) {
	zero := cpu.Config2x2B2S.WithMigrationCost(0)
	flat := cpu.Config2x2B2S.Flat()
	for name, mk := range numaPolicies() {
		zt, zres := traceOf(t, zero, mk)
		ft, fres := traceOf(t, flat, mk)
		if zt != ft {
			t.Errorf("%s: zero-cost NUMA trace differs from flat machine", name)
		}
		if zres.EndTime != fres.EndTime || zres.Events != fres.Events ||
			zres.TotalMigrations != fres.TotalMigrations {
			t.Errorf("%s: zero-cost NUMA result differs from flat: end %v vs %v, events %d vs %d",
				name, zres.EndTime, fres.EndTime, zres.Events, fres.Events)
		}
	}
}

// TestNUMATraceDeterministic pins run-to-run determinism of the
// topology-aware paths (home-domain placement, domain-ranked steal, the
// ranked WASH arm) on an active NUMA palette.
func TestNUMATraceDeterministic(t *testing.T) {
	for name, mk := range numaPolicies() {
		a, _ := traceOf(t, cpu.Config2x2B2S, mk)
		b, _ := traceOf(t, cpu.Config2x2B2S, mk)
		if a != b {
			t.Errorf("%s: NUMA trace differs across identical runs", name)
		}
		if a == "" {
			t.Errorf("%s: empty trace", name)
		}
	}
}

// TestMigrationPenaltyCharged uses a machine where every migration is
// cross-domain — two cores, one per socket — and three CPU-bound threads,
// so the idle-balance steals that share the cores sit on the critical
// path. The penalised run must record cross-domain hops and finish
// strictly later than the free one; on this shape the steal order itself
// cannot differ (only one other queue exists), so the delta is purely the
// charged penalty.
func TestMigrationPenaltyCharged(t *testing.T) {
	run := func(cycles float64) *kernel.Result {
		cfg := cpu.NewSymmetric(cpu.Big, 2).WithTopology(topo.Uniform(2, 1, 1, cycles))
		var progs []task.Program
		var profiles []cpu.WorkProfile
		// Long enough that the doubled-up core rotates its two threads
		// through several slices before the solo core idles and steals —
		// the stolen thread must have *run* on its old core for the move
		// to count as a migration.
		for i := 0; i < 3; i++ {
			profiles = append(profiles, fastProfile)
			progs = append(progs, task.Program{task.Compute{Work: 40e6}})
		}
		w := &task.Workload{Name: "cross", Apps: []*task.App{mkApp(0, "cross", profiles, progs)}}
		m, err := kernel.NewMachine(cfg, cfs.New(cfs.Options{}), w, kernel.Params{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// 40M cycles ≈ 20ms at the big tier's clock: large enough that the
	// stolen thread's penalised finish dominates the makespan.
	free, dear := run(0), run(40e6)
	hops := 0
	for _, th := range dear.Threads {
		hops += th.CrossDomainHops
	}
	if hops == 0 {
		t.Fatalf("no cross-domain hops recorded on an active NUMA machine")
	}
	for _, th := range free.Threads {
		if th.CrossDomainHops != 0 {
			t.Fatalf("zero-cost run recorded cross-domain hops")
		}
	}
	if dear.EndTime <= free.EndTime {
		t.Fatalf("migration penalty did not slow the run: %v (cost 400k cycles) vs %v (free)", dear.EndTime, free.EndTime)
	}
}

// TestHomeDomainPlacement checks admission round-robins apps across LLC
// domains and threads inherit the app's home.
func TestHomeDomainPlacement(t *testing.T) {
	w := numaWorkload()
	m, err := kernel.NewMachine(cpu.Config2x2B2S, cfs.New(cfs.Options{}), w, kernel.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	homes := map[string]int{}
	for _, a := range w.Apps {
		for i, th := range a.Threads {
			if i == 0 {
				homes[a.Name] = th.HomeDomain
			} else if th.HomeDomain != homes[a.Name] {
				t.Fatalf("app %s threads span home domains %d and %d", a.Name, homes[a.Name], th.HomeDomain)
			}
		}
	}
	// Admission order: wide (t=0) -> domain 0, pipe (1ms) -> domain 1,
	// late (3ms) -> domain 0 again.
	if homes["wide"] != 0 || homes["pipe"] != 1 || homes["late"] != 0 {
		t.Fatalf("round-robin placement drifted: %v", homes)
	}
}

// TestMachineTopologyAccessors covers the queries stages build on.
func TestMachineTopologyAccessors(t *testing.T) {
	m, err := kernel.NewMachine(cpu.Config2x2B2S, cfs.New(cfs.Options{}), numaWorkload(), kernel.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.TopoActive() {
		t.Fatalf("TopoActive false on an active NUMA palette")
	}
	if m.NumDomains() != 2 {
		t.Fatalf("NumDomains = %d", m.NumDomains())
	}
	if m.DomainOf(0) != 0 || m.DomainOf(5) != 1 {
		t.Fatalf("DomainOf mapping wrong: %d %d", m.DomainOf(0), m.DomainOf(5))
	}
	if d := m.DomainDistance(0, 1); d != 2 {
		t.Fatalf("cross-socket distance = %d, want 2", d)
	}
	sock, dom := m.TopologyOf(6)
	if sock != 1 || dom != 1 {
		t.Fatalf("TopologyOf(6) = socket %d domain %d", sock, dom)
	}
	if got := m.DomainCoreIDs(1); len(got) != 4 || got[0] != 4 {
		t.Fatalf("DomainCoreIDs(1) = %v", got)
	}
	// Penalty: 8000 cycles at the big tier's nominal frequency, two hops.
	want := sim.Time(2 * topo.DefaultPenaltyCycles * 1000 / float64(cpu.TierBig.FreqMHz))
	if got := m.MigrationPenalty(0, 4); got != want {
		t.Fatalf("MigrationPenalty(0,4) = %v, want %v", got, want)
	}
	if got := m.MigrationPenalty(0, 1); got != 0 {
		t.Fatalf("same-domain penalty = %v, want 0", got)
	}
	if got := m.MigrationPenalty(-1, 4); got != 0 {
		t.Fatalf("never-ran penalty = %v, want 0", got)
	}

	// Flat machine: accessors answer the single implicit domain.
	fm, err := kernel.NewMachine(cpu.Config4B4S, cfs.New(cfs.Options{}), numaWorkload(), kernel.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if fm.TopoActive() || fm.NumDomains() != 1 || fm.DomainOf(3) != 0 || fm.MigrationPenalty(0, 3) != 0 {
		t.Fatalf("flat machine topology accessors drifted")
	}
}
