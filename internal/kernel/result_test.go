package kernel_test

import (
	"strings"
	"testing"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/sched/cfs"
	"colab/internal/sim"
	"colab/internal/task"
)

func twoAppResult(t *testing.T) *kernel.Result {
	t.Helper()
	a := mkApp(0, "first", []cpu.WorkProfile{slowProfile}, []task.Program{{task.Compute{Work: 10e6}}})
	b := mkApp(1, "second", []cpu.WorkProfile{slowProfile}, []task.Program{{task.Compute{Work: 30e6}}})
	w := &task.Workload{Name: "two", Apps: []*task.App{a, b}}
	return runOn(t, cpu.NewSymmetric(cpu.Little, 2), cfs.New(cfs.Options{}), w)
}

func TestResultAccessors(t *testing.T) {
	res := twoAppResult(t)
	first, ok := res.AppTurnaround("first")
	if !ok || first <= 0 {
		t.Fatalf("first turnaround missing")
	}
	second, _ := res.AppTurnaround("second")
	if res.Makespan() != second {
		t.Fatalf("makespan %v != slowest app %v", res.Makespan(), second)
	}
	if _, ok := res.AppTurnaround("nope"); ok {
		t.Fatalf("unknown app resolved")
	}
	if res.Events == 0 {
		t.Fatalf("no events recorded")
	}
}

func TestWriteSummaryContents(t *testing.T) {
	res := twoAppResult(t)
	var sb strings.Builder
	res.WriteSummary(&sb)
	out := sb.String()
	for _, want := range []string{"first", "second", "linux", "cpu0", "energy", "migrations"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestTraceEventString(t *testing.T) {
	e := kernel.TraceEvent{At: 3 * sim.Millisecond, Kind: kernel.TraceDispatch, Core: 1, Thread: "app/t0"}
	s := e.String()
	if !strings.Contains(s, "cpu1") || !strings.Contains(s, "dispatch") || !strings.Contains(s, "app/t0") {
		t.Fatalf("trace line %q", s)
	}
	idle := kernel.TraceEvent{At: 1, Kind: kernel.TraceIdle, Core: 2}
	if !strings.Contains(idle.String(), "idle") {
		t.Fatalf("idle line %q", idle.String())
	}
	wake := kernel.TraceEvent{At: 1, Kind: kernel.TraceWake, Core: -1, Thread: "x"}
	if !strings.Contains(wake.String(), "wake") {
		t.Fatalf("wake line %q", wake.String())
	}
}

func TestWriteTracer(t *testing.T) {
	var sb strings.Builder
	tr := kernel.WriteTracer(&sb)
	tr(kernel.TraceEvent{At: 5, Kind: kernel.TraceDone, Core: 0, Thread: "a/b"})
	if !strings.Contains(sb.String(), "done") {
		t.Fatalf("tracer wrote %q", sb.String())
	}
}

func TestMachineValidation(t *testing.T) {
	app := mkApp(0, "x", []cpu.WorkProfile{slowProfile}, []task.Program{{task.Compute{Work: 1}}})
	w := &task.Workload{Name: "x", Apps: []*task.App{app}}
	if _, err := kernel.NewMachine(cpu.Config{Name: "none"}, cfs.New(cfs.Options{}), w, kernel.Params{}); err == nil {
		t.Errorf("empty config must be rejected")
	}
	if _, err := kernel.NewMachine(cpu.Config2B2S, cfs.New(cfs.Options{}), &task.Workload{Name: "e"}, kernel.Params{}); err == nil {
		t.Errorf("empty workload must be rejected")
	}
	empty := &task.Workload{Name: "e", Apps: []*task.App{{ID: 0, Name: "nothreads"}}}
	if _, err := kernel.NewMachine(cpu.Config2B2S, cfs.New(cfs.Options{}), empty, kernel.Params{}); err == nil {
		t.Errorf("threadless app must be rejected")
	}
}

func TestKickIsSafe(t *testing.T) {
	app := mkApp(0, "k", []cpu.WorkProfile{slowProfile}, []task.Program{{task.Compute{Work: 1e6}}})
	w := &task.Workload{Name: "k", Apps: []*task.App{app}}
	m, err := kernel.NewMachine(cpu.NewSymmetric(cpu.Little, 2), cfs.New(cfs.Options{}), w, kernel.Params{})
	if err != nil {
		t.Fatal(err)
	}
	m.Kick(-1) // out of range: no-op
	m.Kick(99)
	m.KickIdle()
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
}
