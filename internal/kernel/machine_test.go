package kernel_test

import (
	"strings"
	"testing"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/sched/cfs"
	"colab/internal/sched/colab"
	"colab/internal/sched/gts"
	"colab/internal/sched/wash"
	"colab/internal/sim"
	"colab/internal/task"
	"colab/internal/workload"
)

// mkApp builds a one-off application from thread programs.
func mkApp(id int, name string, profiles []cpu.WorkProfile, progs []task.Program, queues ...task.QueueSpec) *task.App {
	app := &task.App{ID: id, Name: name, Queues: queues}
	for i, p := range progs {
		app.Threads = append(app.Threads, &task.Thread{
			App:     app,
			Name:    name + "-t" + string(rune('0'+i)),
			Profile: profiles[i],
			Program: p,
		})
	}
	return app
}

var (
	fastProfile = cpu.WorkProfile{ILP: 0.9, BranchRate: 0.1, MemIntensity: 0.1, FPRate: 0.5}
	slowProfile = cpu.WorkProfile{ILP: 0.2, BranchRate: 0.05, MemIntensity: 0.9, FPRate: 0.1}
)

func runOn(t *testing.T, cfg cpu.Config, s kernel.Scheduler, w *task.Workload) *kernel.Result {
	t.Helper()
	m, err := kernel.NewMachine(cfg, s, w, kernel.Params{})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestSingleThreadComputeOnLittle(t *testing.T) {
	const work = 10e6 // 10ms of little-core work
	app := mkApp(0, "solo", []cpu.WorkProfile{fastProfile}, []task.Program{{task.Compute{Work: work}}})
	w := &task.Workload{Name: "solo", Apps: []*task.App{app}}
	res := runOn(t, cpu.NewSymmetric(cpu.Little, 1), cfs.New(cfs.Options{}), w)
	got := res.Apps[0].Turnaround
	// One work unit = 1ns on little; allow switch cost and rounding slack.
	if got < 10*sim.Millisecond || got > 10*sim.Millisecond+sim.Millisecond {
		t.Fatalf("turnaround on little = %v, want ~10ms", got)
	}
}

func TestSingleThreadComputeFasterOnBig(t *testing.T) {
	const work = 10e6
	mk := func() *task.Workload {
		app := mkApp(0, "solo", []cpu.WorkProfile{fastProfile}, []task.Program{{task.Compute{Work: work}}})
		return &task.Workload{Name: "solo", Apps: []*task.App{app}}
	}
	little := runOn(t, cpu.NewSymmetric(cpu.Little, 1), cfs.New(cfs.Options{}), mk())
	big := runOn(t, cpu.NewSymmetric(cpu.Big, 1), cfs.New(cfs.Options{}), mk())
	ratio := float64(little.Apps[0].Turnaround) / float64(big.Apps[0].Turnaround)
	want := fastProfile.TrueSpeedup()
	if ratio < want*0.95 || ratio > want*1.05 {
		t.Fatalf("big/little speedup = %.3f, want ~%.3f", ratio, want)
	}
}

func TestLockContentionAssignsBlame(t *testing.T) {
	// Thread 0 grabs the lock and computes 20ms inside it; thread 1 blocks
	// on the same lock almost immediately. Thread 0 must accumulate
	// blocking blame close to thread 1's wait.
	prog0 := task.Program{task.Lock{ID: 1}, task.Compute{Work: 20e6}, task.Unlock{ID: 1}}
	prog1 := task.Program{task.Compute{Work: 0.1e6}, task.Lock{ID: 1}, task.Unlock{ID: 1}, task.Compute{Work: 1e6}}
	app := mkApp(0, "locky", []cpu.WorkProfile{slowProfile, slowProfile}, []task.Program{prog0, prog1})
	w := &task.Workload{Name: "locky", Apps: []*task.App{app}}
	res := runOn(t, cpu.NewSymmetric(cpu.Little, 2), cfs.New(cfs.Options{}), w)

	blame := res.Threads[0].BlockBlame
	blocked := res.Threads[1].BlockedTime
	if blame <= 0 {
		t.Fatalf("lock holder got no blame; blocked thread waited %v", blocked)
	}
	if blame != blocked {
		t.Fatalf("blame (%v) != waiter blocked time (%v)", blame, blocked)
	}
	if blame < 15*sim.Millisecond {
		t.Fatalf("blame %v too small, want ~20ms", blame)
	}
}

func TestBarrierReleasesAllAndBlamesLastArriver(t *testing.T) {
	// Thread 0 computes 3x longer, so it arrives last at the barrier and
	// should carry the blame for both waiters.
	progs := []task.Program{
		{task.Compute{Work: 30e6}, task.Barrier{ID: 7, Parties: 3}, task.Compute{Work: 1e6}},
		{task.Compute{Work: 10e6}, task.Barrier{ID: 7, Parties: 3}, task.Compute{Work: 1e6}},
		{task.Compute{Work: 10e6}, task.Barrier{ID: 7, Parties: 3}, task.Compute{Work: 1e6}},
	}
	app := mkApp(0, "barrier", []cpu.WorkProfile{slowProfile, slowProfile, slowProfile}, progs)
	w := &task.Workload{Name: "barrier", Apps: []*task.App{app}}
	res := runOn(t, cpu.NewSymmetric(cpu.Little, 3), cfs.New(cfs.Options{}), w)
	if res.Threads[0].BlockBlame <= res.Threads[1].BlockBlame {
		t.Fatalf("slow arriver blame %v not greater than fast thread blame %v",
			res.Threads[0].BlockBlame, res.Threads[1].BlockBlame)
	}
	if res.Threads[0].BlockBlame < 30*sim.Millisecond {
		t.Fatalf("last arriver blame %v, want >= ~2x20ms", res.Threads[0].BlockBlame)
	}
}

func TestBoundedQueueProducerConsumer(t *testing.T) {
	const items = 20
	var prod, cons task.Program
	for i := 0; i < items; i++ {
		prod = append(prod, task.Compute{Work: 0.5e6}, task.Put{ID: 3})
		cons = append(cons, task.Get{ID: 3}, task.Compute{Work: 1e6})
	}
	app := mkApp(0, "pipe", []cpu.WorkProfile{slowProfile, slowProfile}, []task.Program{prod, cons},
		task.QueueSpec{ID: 3, Capacity: 2})
	w := &task.Workload{Name: "pipe", Apps: []*task.App{app}}
	res := runOn(t, cpu.NewSymmetric(cpu.Little, 2), cfs.New(cfs.Options{}), w)
	// Consumer is slower, so the producer must have blocked on the full
	// queue and been blamed by the consumer's Get.
	if res.Threads[0].BlockedTime == 0 {
		t.Fatalf("producer never blocked on the bounded queue")
	}
	if res.Threads[1].BlockBlame == 0 {
		t.Fatalf("consumer freed the producer but got no blame")
	}
}

func TestDeadlockIsDetected(t *testing.T) {
	// A thread blocking on a lock nobody releases must fail the run, not
	// hang it.
	prog0 := task.Program{task.Lock{ID: 1}, task.Compute{Work: 1e6}} // never unlocks
	prog1 := task.Program{task.Compute{Work: 0.1e6}, task.Lock{ID: 1}, task.Unlock{ID: 1}}
	app := mkApp(0, "dead", []cpu.WorkProfile{slowProfile, slowProfile}, []task.Program{prog0, prog1})
	w := &task.Workload{Name: "dead", Apps: []*task.App{app}}
	m, err := kernel.NewMachine(cpu.NewSymmetric(cpu.Little, 2), cfs.New(cfs.Options{}), w, kernel.Params{})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock error, got %v", err)
	}
}

func TestWorkloadReuseRejected(t *testing.T) {
	app := mkApp(0, "solo", []cpu.WorkProfile{fastProfile}, []task.Program{{task.Compute{Work: 1e6}}})
	w := &task.Workload{Name: "solo", Apps: []*task.App{app}}
	runOn(t, cpu.NewSymmetric(cpu.Little, 1), cfs.New(cfs.Options{}), w)
	if _, err := kernel.NewMachine(cpu.NewSymmetric(cpu.Little, 1), cfs.New(cfs.Options{}), w, kernel.Params{}); err == nil {
		t.Fatalf("reusing a finished workload must be rejected")
	}
}

// TestAllSchedulersCompleteMixes runs a real Table 4 composition under all
// four policies on all four configs and checks structural sanity.
func TestAllSchedulersCompleteMixes(t *testing.T) {
	for _, idx := range []string{"Sync-1", "NSync-3", "Comm-2", "Rand-5"} {
		comp, ok := workload.CompositionByIndex(idx)
		if !ok {
			t.Fatalf("composition %s missing", idx)
		}
		for _, cfg := range cpu.EvaluatedConfigs() {
			for _, mkSched := range []func() kernel.Scheduler{
				func() kernel.Scheduler { return cfs.New(cfs.Options{}) },
				func() kernel.Scheduler { return wash.New(wash.Options{}) },
				func() kernel.Scheduler { return colab.New(colab.Options{}) },
				func() kernel.Scheduler { return gts.New(gts.Options{}) },
			} {
				s := mkSched()
				w, err := comp.Build(99)
				if err != nil {
					t.Fatalf("%s build: %v", idx, err)
				}
				m, err := kernel.NewMachine(cfg, s, w, kernel.Params{})
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", idx, cfg.Name, s.Name(), err)
				}
				res, err := m.Run()
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", idx, cfg.Name, s.Name(), err)
				}
				for _, a := range res.Apps {
					if a.Turnaround <= 0 {
						t.Errorf("%s/%s/%s: app %s turnaround %v", idx, cfg.Name, s.Name(), a.Name, a.Turnaround)
					}
				}
				var busy sim.Time
				for _, c := range res.Cores {
					busy += c.BusyTime
				}
				if busy == 0 {
					t.Errorf("%s/%s/%s: no core did any work", idx, cfg.Name, s.Name())
				}
			}
		}
	}
}

// TestWorkConservation verifies no core idles while ready threads wait for
// long stretches: with 8 independent equal threads on 4 cores, total idle
// time before the last completion must be tiny.
func TestWorkConservation(t *testing.T) {
	var progs []task.Program
	var profs []cpu.WorkProfile
	for i := 0; i < 8; i++ {
		progs = append(progs, task.Program{task.Compute{Work: 20e6}})
		profs = append(profs, slowProfile)
	}
	app := mkApp(0, "par", profs, progs)
	w := &task.Workload{Name: "par", Apps: []*task.App{app}}
	res := runOn(t, cpu.NewSymmetric(cpu.Little, 4), cfs.New(cfs.Options{}), w)
	for _, c := range res.Cores {
		// 8x20ms over 4 cores = 40ms/core; idle should be a rounding sliver.
		if c.IdleTime > 2*sim.Millisecond {
			t.Errorf("cpu%d idle %v during saturated run", c.ID, c.IdleTime)
		}
	}
}
