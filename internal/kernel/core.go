package kernel

import (
	"fmt"

	"colab/internal/cpu"
	"colab/internal/sim"
	"colab/internal/task"
)

// Core is one simulated CPU. Execution state is kernel-owned; policies read
// ID/Kind/Tier and query Current.
type Core struct {
	ID   int
	Kind cpu.Kind // tier index into the config's palette
	Tier cpu.Tier
	Spec cpu.Spec

	// Current is the thread occupying the core (nil when idle).
	Current *task.Thread

	// DVFS state: the active index into ladder (the tier's operating
	// points, highest = nominal). Changed by the kernel at dispatch time
	// through the policy's DVFSGovernor hook.
	opp    int
	ladder []int
	// busyByOPP accounts busy time per operating point for the energy
	// model.
	busyByOPP []sim.Time

	// Burst state (kernel-internal).
	burstEv    *sim.Event // pending burst-end event
	burstStart sim.Time   // when useful execution began (after switch costs)
	burstRun   sim.Time   // planned execution length of the burst
	sliceEnd   sim.Time   // absolute time the current slice expires

	reschedPending bool
	lastThread     *task.Thread // last thread that ran (to skip switch cost)

	// Pre-bound event callbacks (built once at machine construction) so the
	// steady-state dispatch loop schedules events without allocating a new
	// closure per burst or resched.
	burstEndFn func()
	reschedFn  func()

	// Accounting.
	BusyTime   sim.Time
	IdleTime   sim.Time
	idleSince  sim.Time
	wasIdle    bool
	Dispatches int
}

// FreqGHz returns the core clock at the active operating point in cycles
// per nanosecond.
func (c *Core) FreqGHz() float64 { return float64(c.ladder[c.opp]) / 1000.0 }

// FreqMHz returns the active operating-point frequency.
func (c *Core) FreqMHz() int { return c.ladder[c.opp] }

// OPP returns the active operating-point index (ladder order, ascending
// frequency).
func (c *Core) OPP() int { return c.opp }

// NumOPPs returns the length of the core's DVFS ladder (1 when the tier
// runs fixed-frequency).
func (c *Core) NumOPPs() int { return len(c.ladder) }

// dvfsScale is the active frequency as a fraction of nominal; execution
// rates scale linearly with it. Exactly 1.0 at the nominal point.
func (c *Core) dvfsScale() float64 {
	return float64(c.ladder[c.opp]) / float64(c.ladder[len(c.ladder)-1])
}

// setOPP clamps and applies an operating-point index.
func (c *Core) setOPP(i int) {
	if i < 0 {
		i = 0
	}
	if i >= len(c.ladder) {
		i = len(c.ladder) - 1
	}
	c.opp = i
}

// accrueBusy charges busy time to the core at its active operating point.
func (c *Core) accrueBusy(d sim.Time) {
	c.BusyTime += d
	c.busyByOPP[c.opp] += d
}

// IsIdle reports whether no thread occupies the core.
func (c *Core) IsIdle() bool { return c.Current == nil }

// String identifies the core by its tier name.
func (c *Core) String() string { return fmt.Sprintf("cpu%d(%s)", c.ID, c.Tier.Name) }
