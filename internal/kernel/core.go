package kernel

import (
	"fmt"

	"colab/internal/cpu"
	"colab/internal/sim"
	"colab/internal/task"
)

// Core is one simulated CPU. Execution state is kernel-owned; policies read
// ID/Kind and query Current.
type Core struct {
	ID   int
	Kind cpu.Kind
	Spec cpu.Spec

	// Current is the thread occupying the core (nil when idle).
	Current *task.Thread

	// Burst state (kernel-internal).
	burstEv    *sim.Event // pending burst-end event
	burstStart sim.Time   // when useful execution began (after switch costs)
	burstRun   sim.Time   // planned execution length of the burst
	sliceEnd   sim.Time   // absolute time the current slice expires

	reschedPending bool
	lastThread     *task.Thread // last thread that ran (to skip switch cost)

	// Accounting.
	BusyTime   sim.Time
	IdleTime   sim.Time
	idleSince  sim.Time
	wasIdle    bool
	Dispatches int
}

// FreqGHz returns the core clock in cycles per nanosecond.
func (c *Core) FreqGHz() float64 { return float64(c.Spec.FreqMHz) / 1000.0 }

// IsIdle reports whether no thread occupies the core.
func (c *Core) IsIdle() bool { return c.Current == nil }

// String identifies the core.
func (c *Core) String() string { return fmt.Sprintf("cpu%d(%s)", c.ID, c.Kind) }
