package mathx

import (
	"fmt"
	"math"
	"sort"
)

// PCA is a fitted principal component analysis over a samples x features
// matrix. Components holds unit-norm principal axes as columns; Explained
// holds the variance captured by each axis in descending order.
type PCA struct {
	Mean      []float64 // per-feature mean subtracted before projection
	Scale     []float64 // per-feature std used for standardisation (1 if disabled)
	Component *Matrix   // features x features, column k = k-th principal axis
	Explained []float64 // eigenvalues (variance per component), descending
}

// PCAOptions controls the fit.
type PCAOptions struct {
	// Standardize divides each centred feature by its standard deviation,
	// making the analysis correlation-based rather than covariance-based.
	// This is what the paper's counter selection needs: raw counters have
	// wildly different magnitudes.
	Standardize bool
}

// FitPCA fits a PCA on x (rows = samples, cols = features).
func FitPCA(x *Matrix, opt PCAOptions) (*PCA, error) {
	n, d := x.Rows, x.Cols
	if n < 2 {
		return nil, fmt.Errorf("mathx: FitPCA needs at least 2 samples, got %d", n)
	}
	if d == 0 {
		return nil, fmt.Errorf("mathx: FitPCA needs at least 1 feature")
	}
	mean := make([]float64, d)
	for j := 0; j < d; j++ {
		s := 0.0
		for i := 0; i < n; i++ {
			s += x.At(i, j)
		}
		mean[j] = s / float64(n)
	}
	scale := make([]float64, d)
	for j := range scale {
		scale[j] = 1
	}
	if opt.Standardize {
		for j := 0; j < d; j++ {
			ss := 0.0
			for i := 0; i < n; i++ {
				dev := x.At(i, j) - mean[j]
				ss += dev * dev
			}
			sd := math.Sqrt(ss / float64(n-1))
			if sd < 1e-12 {
				sd = 1 // constant feature: leave unscaled rather than blow up
			}
			scale[j] = sd
		}
	}

	// Covariance (or correlation) matrix of the centred data.
	cov := NewMatrix(d, d)
	for i := 0; i < n; i++ {
		for a := 0; a < d; a++ {
			va := (x.At(i, a) - mean[a]) / scale[a]
			for b := a; b < d; b++ {
				vb := (x.At(i, b) - mean[b]) / scale[b]
				cov.Data[a*d+b] += va * vb
			}
		}
	}
	inv := 1 / float64(n-1)
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			v := cov.Data[a*d+b] * inv
			cov.Data[a*d+b] = v
			cov.Data[b*d+a] = v
		}
	}

	eig, err := JacobiEigen(cov)
	if err != nil {
		return nil, fmt.Errorf("mathx: FitPCA eigen-decomposition: %w", err)
	}
	// Numerical noise can make tiny eigenvalues slightly negative; clamp.
	for i, v := range eig.Values {
		if v < 0 {
			eig.Values[i] = 0
		}
	}
	return &PCA{Mean: mean, Scale: scale, Component: eig.Vectors, Explained: eig.Values}, nil
}

// ExplainedRatio returns the fraction of total variance captured by each
// component.
func (p *PCA) ExplainedRatio() []float64 {
	total := 0.0
	for _, v := range p.Explained {
		total += v
	}
	out := make([]float64, len(p.Explained))
	if total <= 0 {
		return out
	}
	for i, v := range p.Explained {
		out[i] = v / total
	}
	return out
}

// Transform projects rows of x onto the first k principal components.
func (p *PCA) Transform(x *Matrix, k int) *Matrix {
	d := len(p.Mean)
	if x.Cols != d {
		panic(fmt.Sprintf("mathx: PCA.Transform feature mismatch: %d, want %d", x.Cols, d))
	}
	if k <= 0 || k > d {
		k = d
	}
	out := NewMatrix(x.Rows, k)
	for i := 0; i < x.Rows; i++ {
		for c := 0; c < k; c++ {
			s := 0.0
			for j := 0; j < d; j++ {
				s += (x.At(i, j) - p.Mean[j]) / p.Scale[j] * p.Component.At(j, c)
			}
			out.Set(i, c, s)
		}
	}
	return out
}

// FeatureScores ranks features by their aggregate |loading| on the top
// components, weighted by explained-variance ratio. This is the counter
// selection rule: a feature that contributes strongly to high-variance
// components carries the most signal.
func (p *PCA) FeatureScores(topComponents int) []float64 {
	d := len(p.Mean)
	if topComponents <= 0 || topComponents > d {
		topComponents = d
	}
	ratio := p.ExplainedRatio()
	scores := make([]float64, d)
	for j := 0; j < d; j++ {
		for c := 0; c < topComponents; c++ {
			scores[j] += ratio[c] * math.Abs(p.Component.At(j, c))
		}
	}
	return scores
}

// SelectFeatures returns the indices of the k best features per
// FeatureScores, in descending score order.
func (p *PCA) SelectFeatures(k, topComponents int) []int {
	scores := p.FeatureScores(topComponents)
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
