// Package mathx provides the small dense linear-algebra and statistics
// kernels the COLAB reproduction needs: matrices, a Jacobi eigen-solver,
// principal component analysis, ordinary least squares, descriptive
// statistics and deterministic random number generation.
//
// The package exists because the speedup model of the paper (Table 2) is
// trained offline with PCA feature selection followed by linear regression,
// and the module must be self-contained (stdlib only).
package mathx

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zeroed r x c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mathx: invalid matrix dimensions %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewMatrixFromRows builds a matrix from row slices. All rows must have the
// same length.
func NewMatrixFromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic(fmt.Sprintf("mathx: ragged rows: row %d has %d cols, want %d", i, len(r), c))
		}
		copy(m.Data[i*c:(i+1)*c], r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Transpose returns m^T.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns the matrix product m * b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("mathx: dimension mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m * v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("mathx: dimension mismatch %dx%d * vec(%d)", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out
}

// IsSymmetric reports whether the matrix is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%9.4f", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// SolveLinearSystem solves A x = b by Gaussian elimination with partial
// pivoting. A must be square; A and b are not modified. It returns an error
// when the system is singular to working precision.
func SolveLinearSystem(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("mathx: SolveLinearSystem needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("mathx: SolveLinearSystem rhs length %d, want %d", len(b), n)
	}
	aug := a.Clone()
	rhs := make([]float64, n)
	copy(rhs, b)

	for col := 0; col < n; col++ {
		// Partial pivot: find the row with the largest magnitude in col.
		pivot := col
		maxAbs := math.Abs(aug.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(aug.At(r, col)); v > maxAbs {
				maxAbs, pivot = v, r
			}
		}
		if maxAbs < 1e-12 {
			return nil, fmt.Errorf("mathx: singular system (pivot %d ~ 0)", col)
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				vi, vp := aug.At(col, j), aug.At(pivot, j)
				aug.Set(col, j, vp)
				aug.Set(pivot, j, vi)
			}
			rhs[col], rhs[pivot] = rhs[pivot], rhs[col]
		}
		inv := 1 / aug.At(col, col)
		for r := col + 1; r < n; r++ {
			f := aug.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				aug.Set(r, j, aug.At(r, j)-f*aug.At(col, j))
			}
			rhs[r] -= f * rhs[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := rhs[i]
		for j := i + 1; j < n; j++ {
			s -= aug.At(i, j) * x[j]
		}
		x[i] = s / aug.At(i, i)
	}
	return x, nil
}
