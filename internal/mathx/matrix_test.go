package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("dims %dx%d", m.Rows, m.Cols)
	}
	if m.At(1, 0) != 3 || m.At(2, 1) != 6 {
		t.Fatalf("At wrong: %v", m)
	}
	m.Set(0, 1, 9)
	if m.At(0, 1) != 9 {
		t.Fatalf("Set failed")
	}
	if got := m.Row(2); got[0] != 5 || got[1] != 6 {
		t.Fatalf("Row = %v", got)
	}
	if got := m.Col(0); got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("Col = %v", got)
	}
}

func TestMatrixRowColAreCopies(t *testing.T) {
	m := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatalf("Row must return a copy")
	}
	c := m.Col(1)
	c[0] = 99
	if m.At(0, 1) != 2 {
		t.Fatalf("Col must return a copy")
	}
}

func TestMatrixMul(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := NewMatrixFromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	got := a.Mul(b)
	want := [][]float64{{58, 64}, {139, 154}}
	for i := range want {
		for j := range want[i] {
			if got.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %v, want %v", i, j, got.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatrixMulVecMatchesMul(t *testing.T) {
	rng := NewRNG(7)
	a := NewMatrix(4, 5)
	for i := range a.Data {
		a.Data[i] = rng.Range(-3, 3)
	}
	v := make([]float64, 5)
	for i := range v {
		v[i] = rng.Range(-3, 3)
	}
	col := NewMatrix(5, 1)
	copy(col.Data, v)
	want := a.Mul(col)
	got := a.MulVec(v)
	for i := range got {
		if !almostEq(got[i], want.At(i, 0), 1e-12) {
			t.Fatalf("MulVec[%d] = %v, want %v", i, got[i], want.At(i, 0))
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	check := func(seed uint64) bool {
		rng := NewRNG(seed)
		r, c := 1+rng.IntN(6), 1+rng.IntN(6)
		m := NewMatrix(r, c)
		for i := range m.Data {
			m.Data[i] = rng.Range(-10, 10)
		}
		tt := m.Transpose().Transpose()
		if tt.Rows != m.Rows || tt.Cols != m.Cols {
			return false
		}
		for i := range m.Data {
			if m.Data[i] != tt.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIdentityIsMulNeutral(t *testing.T) {
	rng := NewRNG(3)
	m := NewMatrix(4, 4)
	for i := range m.Data {
		m.Data[i] = rng.Range(-5, 5)
	}
	p := m.Mul(Identity(4))
	for i := range m.Data {
		if !almostEq(p.Data[i], m.Data[i], 1e-12) {
			t.Fatalf("m*I != m at %d", i)
		}
	}
}

func TestSolveLinearSystemKnown(t *testing.T) {
	a := NewMatrixFromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	x, err := SolveLinearSystem(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEq(x[i], want[i], 1e-9) {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

// Property: for random well-conditioned systems, A * solve(A, b) == b.
func TestSolveLinearSystemResidualProperty(t *testing.T) {
	check := func(seed uint64) bool {
		rng := NewRNG(seed)
		n := 2 + rng.IntN(6)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.Range(-2, 2)
		}
		// Diagonal dominance keeps the system well-conditioned.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+5)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Range(-10, 10)
		}
		x, err := SolveLinearSystem(a, b)
		if err != nil {
			return false
		}
		res := a.MulVec(x)
		for i := range b {
			if !almostEq(res[i], b[i], 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveLinearSystemSingular(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLinearSystem(a, []float64{1, 2}); err == nil {
		t.Fatalf("singular system must error")
	}
}

func TestSolveLinearSystemShapeErrors(t *testing.T) {
	if _, err := SolveLinearSystem(NewMatrix(2, 3), []float64{1, 2}); err == nil {
		t.Fatalf("non-square must error")
	}
	if _, err := SolveLinearSystem(NewMatrix(2, 2), []float64{1}); err == nil {
		t.Fatalf("rhs length mismatch must error")
	}
}
