package mathx

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for fewer than 2 values).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, v := range xs {
		s += (v - m) * (v - m)
	}
	return s / float64(n-1)
}

// Std returns the sample standard deviation.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// GeoMean returns the geometric mean of strictly positive values. Zero or
// negative entries make the geometric mean undefined; they are skipped, and
// an all-invalid input yields 0. The paper aggregates normalised H_ANTT /
// H_STP figures with geometric means.
func GeoMean(xs []float64) float64 {
	s, n := 0.0, 0
	for _, v := range xs {
		if v > 0 {
			s += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// Median returns the median (0 for empty input). The input is not modified.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	c := make([]float64, n)
	copy(c, xs)
	sort.Float64s(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// MinMax returns the minimum and maximum of xs; (0, 0) for empty input.
func MinMax(xs []float64) (mn, mx float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	mn, mx = xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mn, mx
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	c := make([]float64, n)
	copy(c, xs)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 100 {
		return c[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return c[lo]
	}
	frac := rank - float64(lo)
	return c[lo]*(1-frac) + c[hi]*frac
}

// Correlation returns the Pearson correlation coefficient of two equal-length
// samples, or 0 when undefined (degenerate variance or length mismatch).
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
