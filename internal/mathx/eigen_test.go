package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestJacobiEigenDiagonal(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{3, 0}, {0, 1}})
	e, err := JacobiEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(e.Values[0], 3, 1e-12) || !almostEq(e.Values[1], 1, 1e-12) {
		t.Fatalf("values = %v", e.Values)
	}
}

func TestJacobiEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := NewMatrixFromRows([][]float64{{2, 1}, {1, 2}})
	e, err := JacobiEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(e.Values[0], 3, 1e-10) || !almostEq(e.Values[1], 1, 1e-10) {
		t.Fatalf("values = %v", e.Values)
	}
	// Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
	v := e.Vectors.Col(0)
	if !almostEq(math.Abs(v[0]), 1/math.Sqrt2, 1e-9) || !almostEq(math.Abs(v[1]), 1/math.Sqrt2, 1e-9) {
		t.Fatalf("vector = %v", v)
	}
}

func TestJacobiEigenRejectsNonSymmetric(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if _, err := JacobiEigen(a); err == nil {
		t.Fatalf("non-symmetric must error")
	}
	if _, err := JacobiEigen(NewMatrix(2, 3)); err == nil {
		t.Fatalf("non-square must error")
	}
}

// Property: A v_k = lambda_k v_k, eigenvalues sorted descending, vectors
// orthonormal.
func TestJacobiEigenProperty(t *testing.T) {
	check := func(seed uint64) bool {
		rng := NewRNG(seed)
		n := 2 + rng.IntN(7)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.Range(-4, 4)
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		e, err := JacobiEigen(a)
		if err != nil {
			return false
		}
		for k := 0; k < n; k++ {
			if k > 0 && e.Values[k] > e.Values[k-1]+1e-9 {
				return false // not sorted
			}
			v := e.Vectors.Col(k)
			av := a.MulVec(v)
			for i := 0; i < n; i++ {
				if !almostEq(av[i], e.Values[k]*v[i], 1e-6) {
					return false
				}
			}
		}
		// Orthonormality.
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				dot := 0.0
				for r := 0; r < n; r++ {
					dot += e.Vectors.At(r, i) * e.Vectors.At(r, j)
				}
				want := 0.0
				if i == j {
					want = 1
				}
				if !almostEq(dot, want, 1e-8) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the trace equals the eigenvalue sum (invariant of similarity
// transforms).
func TestJacobiEigenTraceInvariant(t *testing.T) {
	check := func(seed uint64) bool {
		rng := NewRNG(seed)
		n := 2 + rng.IntN(6)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.Range(-3, 3)
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		e, err := JacobiEigen(a)
		if err != nil {
			return false
		}
		trace, sum := 0.0, 0.0
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
			sum += e.Values[i]
		}
		return almostEq(trace, sum, 1e-8)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
