package mathx

import (
	"fmt"
	"math"
)

// LinReg is a fitted linear regression y = Intercept + Coef . x.
type LinReg struct {
	Intercept float64
	Coef      []float64
}

// FitLinReg fits ordinary least squares with an intercept by solving the
// normal equations. A small ridge term lambda >= 0 stabilises nearly
// collinear designs (lambda = 0 is plain OLS).
func FitLinReg(x *Matrix, y []float64, lambda float64) (*LinReg, error) {
	n, d := x.Rows, x.Cols
	if len(y) != n {
		return nil, fmt.Errorf("mathx: FitLinReg: %d targets for %d samples", len(y), n)
	}
	if n < d+1 {
		return nil, fmt.Errorf("mathx: FitLinReg: underdetermined (%d samples, %d features)", n, d)
	}
	if lambda < 0 {
		return nil, fmt.Errorf("mathx: FitLinReg: negative ridge %g", lambda)
	}
	// Design matrix with leading intercept column.
	p := d + 1
	ata := NewMatrix(p, p)
	atb := make([]float64, p)
	row := make([]float64, p)
	for i := 0; i < n; i++ {
		row[0] = 1
		copy(row[1:], x.Data[i*d:(i+1)*d])
		for a := 0; a < p; a++ {
			atb[a] += row[a] * y[i]
			for b := a; b < p; b++ {
				ata.Data[a*p+b] += row[a] * row[b]
			}
		}
	}
	for a := 0; a < p; a++ {
		for b := a; b < p; b++ {
			ata.Data[b*p+a] = ata.Data[a*p+b]
		}
	}
	if lambda > 0 {
		for a := 1; a < p; a++ { // do not penalise the intercept
			ata.Data[a*p+a] += lambda
		}
	}
	w, err := SolveLinearSystem(ata, atb)
	if err != nil {
		return nil, fmt.Errorf("mathx: FitLinReg: %w", err)
	}
	return &LinReg{Intercept: w[0], Coef: w[1:]}, nil
}

// Predict evaluates the model on one feature vector.
func (l *LinReg) Predict(x []float64) float64 {
	if len(x) != len(l.Coef) {
		panic(fmt.Sprintf("mathx: LinReg.Predict feature mismatch: %d, want %d", len(x), len(l.Coef)))
	}
	s := l.Intercept
	for i, c := range l.Coef {
		s += c * x[i]
	}
	return s
}

// R2 returns the coefficient of determination of the model on (x, y).
func (l *LinReg) R2(x *Matrix, y []float64) float64 {
	if x.Rows == 0 {
		return 0
	}
	mean := Mean(y)
	ssRes, ssTot := 0.0, 0.0
	for i := 0; i < x.Rows; i++ {
		pred := l.Predict(x.Row(i))
		ssRes += (y[i] - pred) * (y[i] - pred)
		ssTot += (y[i] - mean) * (y[i] - mean)
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// MAE returns the mean absolute prediction error on (x, y).
func (l *LinReg) MAE(x *Matrix, y []float64) float64 {
	if x.Rows == 0 {
		return 0
	}
	s := 0.0
	for i := 0; i < x.Rows; i++ {
		s += math.Abs(y[i] - l.Predict(x.Row(i)))
	}
	return s / float64(x.Rows)
}
