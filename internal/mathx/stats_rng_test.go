package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean = %v", m)
	}
	if v := Variance(xs); !almostEq(v, 32.0/7, 1e-12) {
		t.Fatalf("variance = %v", v)
	}
	if s := Std(xs); !almostEq(s, math.Sqrt(32.0/7), 1e-12) {
		t.Fatalf("std = %v", s)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatalf("degenerate inputs must be 0")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4, 16}); !almostEq(g, 4, 1e-12) {
		t.Fatalf("geomean = %v", g)
	}
	// Non-positive entries are skipped.
	if g := GeoMean([]float64{0, 4, 4, -1}); !almostEq(g, 4, 1e-12) {
		t.Fatalf("geomean with invalids = %v", g)
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{0}) != 0 {
		t.Fatalf("all-invalid geomean must be 0")
	}
}

func TestMedianPercentile(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %v", m)
	}
	if m := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
	xs := []float64{1, 2, 3, 4, 5}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Fatalf("p100 = %v", p)
	}
	if p := Percentile(xs, 50); p != 3 {
		t.Fatalf("p50 = %v", p)
	}
	if p := Percentile(xs, 25); p != 2 {
		t.Fatalf("p25 = %v", p)
	}
}

func TestMinMaxClampCorrelation(t *testing.T) {
	mn, mx := MinMax([]float64{3, -1, 7, 0})
	if mn != -1 || mx != 7 {
		t.Fatalf("minmax = %v %v", mn, mx)
	}
	if Clamp(5, 0, 3) != 3 || Clamp(-2, 0, 3) != 0 || Clamp(1, 0, 3) != 1 {
		t.Fatalf("clamp broken")
	}
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if c := Correlation(xs, ys); !almostEq(c, 1, 1e-12) {
		t.Fatalf("perfect correlation = %v", c)
	}
	neg := []float64{8, 6, 4, 2}
	if c := Correlation(xs, neg); !almostEq(c, -1, 1e-12) {
		t.Fatalf("perfect anticorrelation = %v", c)
	}
	if Correlation(xs, []float64{1, 1, 1, 1}) != 0 {
		t.Fatalf("degenerate correlation must be 0")
	}
}

// Property: median lies between min and max; percentiles are monotone.
func TestPercentileMonotoneProperty(t *testing.T) {
	check := func(seed uint64) bool {
		rng := NewRNG(seed)
		n := 1 + rng.IntN(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Range(-100, 100)
		}
		last := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < last-1e-9 {
				return false
			}
			last = v
		}
		mn, mx := MinMax(xs)
		med := Median(xs)
		return med >= mn && med <= mx
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(5), NewRNG(5)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	c := NewRNG(6)
	same := true
	a2 := NewRNG(5)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatalf("different seeds produced identical streams")
	}
}

func TestRNGRangesAndJitter(t *testing.T) {
	rng := NewRNG(9)
	for i := 0; i < 1000; i++ {
		if v := rng.Range(2, 5); v < 2 || v >= 5 {
			t.Fatalf("Range out of bounds: %v", v)
		}
		if v := rng.Jitter(10, 0.2); v < 8 || v > 12 {
			t.Fatalf("Jitter out of bounds: %v", v)
		}
		if v := rng.IntN(7); v < 0 || v >= 7 {
			t.Fatalf("IntN out of bounds: %v", v)
		}
	}
	if rng.Jitter(-5, 2) < 0 {
		t.Fatalf("Jitter must clamp at 0")
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(100)
	c1 := parent.Fork(1)
	c2 := parent.Fork(2)
	equal := 0
	for i := 0; i < 100; i++ {
		if c1.Float64() == c2.Float64() {
			equal++
		}
	}
	if equal > 2 {
		t.Fatalf("forked streams look identical (%d equal draws)", equal)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	rng := NewRNG(4)
	p := rng.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}
