package mathx

import "math/rand/v2"

// RNG is a deterministic, seedable random source. All stochastic components
// of the simulator (workload generation, counter noise) draw from an RNG so
// that a (workload, config, scheduler, seed) tuple is fully reproducible.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns an RNG seeded from a single 64-bit seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{r: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Fork derives an independent child stream; the child is a pure function of
// the parent seed and the label, so forks are order-independent.
func (g *RNG) Fork(label uint64) *RNG {
	// Mix the label through a splitmix64 round to decorrelate streams.
	z := label + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return &RNG{r: rand.New(rand.NewPCG(g.r.Uint64()^z, z))}
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Range returns a uniform value in [lo, hi).
func (g *RNG) Range(lo, hi float64) float64 { return lo + (hi-lo)*g.r.Float64() }

// IntN returns a uniform int in [0, n).
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Norm returns a normally distributed value with the given mean and stddev.
func (g *RNG) Norm(mean, std float64) float64 { return mean + std*g.r.NormFloat64() }

// Jitter returns base scaled by a uniform factor in [1-amp, 1+amp],
// clamped to be non-negative.
func (g *RNG) Jitter(base, amp float64) float64 {
	v := base * (1 + g.Range(-amp, amp))
	if v < 0 {
		return 0
	}
	return v
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Exp returns an exponentially distributed value with the given mean.
func (g *RNG) Exp(mean float64) float64 { return g.r.ExpFloat64() * mean }
