package mathx

import (
	"math"
	"testing"
)

// synthetic dataset: feature 0 is the signal, feature 1 correlated noise,
// feature 2 pure noise, feature 3 constant.
func pcaFixture(n int, seed uint64) (*Matrix, []float64) {
	rng := NewRNG(seed)
	x := NewMatrix(n, 4)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sig := rng.Range(-1, 1)
		x.Set(i, 0, sig*10)
		x.Set(i, 1, sig*3+rng.Norm(0, 0.1))
		x.Set(i, 2, rng.Norm(0, 1))
		x.Set(i, 3, 7)
		y[i] = 2 + 3*sig
	}
	return x, y
}

func TestFitPCATopComponentFollowsVariance(t *testing.T) {
	x, _ := pcaFixture(200, 11)
	p, err := FitPCA(x, PCAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Without standardisation the x10 feature dominates component 0.
	v := p.Component.Col(0)
	if math.Abs(v[0]) < 0.9 {
		t.Fatalf("dominant feature loading = %v", v)
	}
	if p.Explained[0] <= p.Explained[1] {
		t.Fatalf("explained not sorted: %v", p.Explained)
	}
}

func TestFitPCAStandardizedSelectsSignalFeatures(t *testing.T) {
	x, _ := pcaFixture(200, 12)
	p, err := FitPCA(x, PCAOptions{Standardize: true})
	if err != nil {
		t.Fatal(err)
	}
	sel := p.SelectFeatures(2, 2)
	seen := map[int]bool{sel[0]: true, sel[1]: true}
	if !seen[0] || !seen[1] {
		t.Fatalf("selected %v, want the two correlated signal features {0,1}", sel)
	}
	ratios := p.ExplainedRatio()
	sum := 0.0
	for _, r := range ratios {
		sum += r
	}
	if !almostEq(sum, 1, 1e-9) {
		t.Fatalf("explained ratios sum to %v", sum)
	}
}

func TestFitPCAErrors(t *testing.T) {
	if _, err := FitPCA(NewMatrix(1, 3), PCAOptions{}); err == nil {
		t.Fatalf("single sample must error")
	}
	if _, err := FitPCA(NewMatrix(5, 0), PCAOptions{}); err == nil {
		t.Fatalf("zero features must error")
	}
}

func TestPCATransformShape(t *testing.T) {
	x, _ := pcaFixture(50, 13)
	p, err := FitPCA(x, PCAOptions{Standardize: true})
	if err != nil {
		t.Fatal(err)
	}
	proj := p.Transform(x, 2)
	if proj.Rows != 50 || proj.Cols != 2 {
		t.Fatalf("projection %dx%d", proj.Rows, proj.Cols)
	}
	// Projections onto distinct components are uncorrelated.
	if c := Correlation(proj.Col(0), proj.Col(1)); math.Abs(c) > 0.05 {
		t.Fatalf("component scores correlated: %v", c)
	}
}

func TestFitLinRegRecoversCoefficients(t *testing.T) {
	rng := NewRNG(21)
	n := 300
	x := NewMatrix(n, 3)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b, c := rng.Range(-2, 2), rng.Range(-2, 2), rng.Range(-2, 2)
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		x.Set(i, 2, c)
		y[i] = 1.5 + 2*a - 0.5*b + 0*c + rng.Norm(0, 0.01)
	}
	reg, err := FitLinReg(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(reg.Intercept, 1.5, 0.02) {
		t.Fatalf("intercept = %v", reg.Intercept)
	}
	want := []float64{2, -0.5, 0}
	for i, w := range want {
		if !almostEq(reg.Coef[i], w, 0.02) {
			t.Fatalf("coef[%d] = %v, want %v", i, reg.Coef[i], w)
		}
	}
	if r2 := reg.R2(x, y); r2 < 0.999 {
		t.Fatalf("R2 = %v", r2)
	}
	if mae := reg.MAE(x, y); mae > 0.02 {
		t.Fatalf("MAE = %v", mae)
	}
}

func TestFitLinRegRidgeHandlesCollinearity(t *testing.T) {
	rng := NewRNG(22)
	n := 100
	x := NewMatrix(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a := rng.Range(-1, 1)
		x.Set(i, 0, a)
		x.Set(i, 1, 2*a) // perfectly collinear
		y[i] = 3 * a
	}
	if _, err := FitLinReg(x, y, 0); err == nil {
		t.Fatalf("collinear OLS must error without ridge")
	}
	reg, err := FitLinReg(x, y, 1e-3)
	if err != nil {
		t.Fatalf("ridge fit: %v", err)
	}
	// Prediction quality matters, not coefficient identifiability.
	if mae := reg.MAE(x, y); mae > 0.01 {
		t.Fatalf("ridge MAE = %v", mae)
	}
}

func TestFitLinRegErrors(t *testing.T) {
	x := NewMatrix(3, 3)
	if _, err := FitLinReg(x, []float64{1, 2}, 0); err == nil {
		t.Fatalf("target length mismatch must error")
	}
	if _, err := FitLinReg(x, []float64{1, 2, 3}, 0); err == nil {
		t.Fatalf("underdetermined fit must error")
	}
	if _, err := FitLinReg(NewMatrix(10, 2), make([]float64, 10), -1); err == nil {
		t.Fatalf("negative ridge must error")
	}
}
