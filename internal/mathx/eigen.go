package mathx

import (
	"fmt"
	"math"
	"sort"
)

// Eigen holds the result of a symmetric eigen-decomposition: Values sorted in
// descending order and Vectors with the corresponding unit eigenvectors as
// columns (Vectors.Col(k) pairs with Values[k]).
type Eigen struct {
	Values  []float64
	Vectors *Matrix
}

// JacobiEigen computes the eigen-decomposition of a symmetric matrix using
// the cyclic Jacobi rotation method. It is robust and precise for the small
// (tens of features) covariance matrices used by the PCA counter-selection
// stage. The input is not modified.
func JacobiEigen(a *Matrix) (*Eigen, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("mathx: JacobiEigen needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if !a.IsSymmetric(1e-9 * (1 + maxAbsElem(a))) {
		return nil, fmt.Errorf("mathx: JacobiEigen needs a symmetric matrix")
	}
	if n == 0 {
		return &Eigen{Values: nil, Vectors: NewMatrix(0, 0)}, nil
	}

	m := a.Clone()
	v := Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagonalNorm(m)
		if off <= 1e-14*(1+maxAbsElem(m)) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(theta*theta+1))
				} else {
					t = -1 / (-theta + math.Sqrt(theta*theta+1))
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(m, v, p, q, c, s)
			}
		}
	}

	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = m.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return vals[idx[i]] > vals[idx[j]] })
	outVals := make([]float64, n)
	outVecs := NewMatrix(n, n)
	for k, src := range idx {
		outVals[k] = vals[src]
		for r := 0; r < n; r++ {
			outVecs.Set(r, k, v.At(r, src))
		}
	}
	return &Eigen{Values: outVals, Vectors: outVecs}, nil
}

// rotate applies the Jacobi rotation J^T m J for the (p, q) plane with
// cosine c and sine s, and accumulates the rotation into v.
func rotate(m, v *Matrix, p, q int, c, s float64) {
	n := m.Rows
	for k := 0; k < n; k++ { // column update: m = m * J
		mkp, mkq := m.At(k, p), m.At(k, q)
		m.Set(k, p, c*mkp-s*mkq)
		m.Set(k, q, s*mkp+c*mkq)
	}
	for k := 0; k < n; k++ { // row update: m = J^T * m
		mpk, mqk := m.At(p, k), m.At(q, k)
		m.Set(p, k, c*mpk-s*mqk)
		m.Set(q, k, s*mpk+c*mqk)
	}
	for k := 0; k < n; k++ { // accumulate eigenvectors
		vkp, vkq := v.At(k, p), v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}

func offDiagonalNorm(m *Matrix) float64 {
	s := 0.0
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if i != j {
				s += m.At(i, j) * m.At(i, j)
			}
		}
	}
	return math.Sqrt(s)
}

func maxAbsElem(m *Matrix) float64 {
	mx := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}
