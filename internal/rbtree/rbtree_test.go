package rbtree

import (
	"sort"
	"testing"
	"testing/quick"

	"colab/internal/mathx"
)

func intTree() *Tree[int] { return New(func(a, b int) bool { return a < b }) }

func TestInsertOrderedIteration(t *testing.T) {
	tr := intTree()
	for _, v := range []int{5, 1, 9, 3, 7, 2, 8, 4, 6, 0} {
		tr.Insert(v)
	}
	if tr.Len() != 10 {
		t.Fatalf("len = %d", tr.Len())
	}
	got := tr.Values()
	for i, v := range got {
		if v != i {
			t.Fatalf("Values() = %v", got)
		}
	}
	if msg := tr.Validate(); msg != "" {
		t.Fatalf("invalid tree: %s", msg)
	}
}

func TestMinMaxNextPrev(t *testing.T) {
	tr := intTree()
	if tr.Min() != nil || tr.Max() != nil {
		t.Fatalf("empty tree min/max must be nil")
	}
	for _, v := range []int{4, 2, 6, 1, 3, 5, 7} {
		tr.Insert(v)
	}
	if tr.Min().Value != 1 || tr.Max().Value != 7 {
		t.Fatalf("min/max = %d/%d", tr.Min().Value, tr.Max().Value)
	}
	// Walk forward.
	want := 1
	for n := tr.Min(); n != nil; n = tr.Next(n) {
		if n.Value != want {
			t.Fatalf("Next walk got %d want %d", n.Value, want)
		}
		want++
	}
	// Walk backward.
	want = 7
	for n := tr.Max(); n != nil; n = tr.Prev(n) {
		if n.Value != want {
			t.Fatalf("Prev walk got %d want %d", n.Value, want)
		}
		want--
	}
	if tr.Next(nil) != nil || tr.Prev(nil) != nil {
		t.Fatalf("Next/Prev(nil) must be nil")
	}
}

func TestDeleteByHandle(t *testing.T) {
	tr := intTree()
	nodes := map[int]*Node[int]{}
	for _, v := range []int{10, 20, 30, 40, 50, 25, 35, 15} {
		nodes[v] = tr.Insert(v)
	}
	tr.Delete(nodes[30])
	tr.Delete(nodes[10])
	if msg := tr.Validate(); msg != "" {
		t.Fatalf("after delete: %s", msg)
	}
	got := tr.Values()
	want := []int{15, 20, 25, 35, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("Values = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Values = %v", got)
		}
	}
	tr.Delete(nil) // must be a no-op
	if tr.Len() != 6 {
		t.Fatalf("len after nil delete = %d", tr.Len())
	}
}

func TestDuplicateKeysFIFOOnEqual(t *testing.T) {
	type item struct{ key, id int }
	tr := New(func(a, b item) bool { return a.key < b.key })
	for i := 0; i < 5; i++ {
		tr.Insert(item{key: 7, id: i})
	}
	// Equal keys go right, so in-order yields insertion order.
	var ids []int
	tr.Ascend(func(v item) bool { ids = append(ids, v.id); return true })
	for i, id := range ids {
		if id != i {
			t.Fatalf("equal-key order = %v", ids)
		}
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := intTree()
	for i := 0; i < 100; i++ {
		tr.Insert(i)
	}
	count := 0
	tr.Ascend(func(v int) bool {
		count++
		return v < 10 // v=10 returns false and stops the walk
	})
	if count != 11 {
		t.Fatalf("Ascend early stop made %d calls, want 11", count)
	}
}

// Property: arbitrary interleaved insert/delete sequences keep the
// red-black invariants and match a reference sorted-multiset model.
func TestRandomOpsAgainstReferenceModel(t *testing.T) {
	check := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		tr := intTree()
		handles := map[int][]*Node[int]{} // value -> live handles
		var model []int
		for op := 0; op < 300; op++ {
			if rng.Float64() < 0.6 || len(model) == 0 {
				v := rng.IntN(50)
				handles[v] = append(handles[v], tr.Insert(v))
				model = append(model, v)
				sort.Ints(model)
			} else {
				v := model[rng.IntN(len(model))]
				hs := handles[v]
				h := hs[len(hs)-1]
				handles[v] = hs[:len(hs)-1]
				tr.Delete(h)
				i := sort.SearchInts(model, v)
				model = append(model[:i], model[i+1:]...)
			}
			if tr.Len() != len(model) {
				return false
			}
			if msg := tr.Validate(); msg != "" {
				t.Logf("seed %d op %d: %s", seed, op, msg)
				return false
			}
		}
		got := tr.Values()
		if len(got) != len(model) {
			return false
		}
		for i := range model {
			if got[i] != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeSequentialInsertDeleteStaysBalanced(t *testing.T) {
	tr := intTree()
	var nodes []*Node[int]
	const n = 4096
	for i := 0; i < n; i++ {
		nodes = append(nodes, tr.Insert(i))
	}
	if msg := tr.Validate(); msg != "" {
		t.Fatalf("after sequential inserts: %s", msg)
	}
	// Delete evens, keep odds.
	for i := 0; i < n; i += 2 {
		tr.Delete(nodes[i])
	}
	if msg := tr.Validate(); msg != "" {
		t.Fatalf("after deletes: %s", msg)
	}
	if tr.Len() != n/2 {
		t.Fatalf("len = %d", tr.Len())
	}
	if tr.Min().Value != 1 {
		t.Fatalf("min = %d", tr.Min().Value)
	}
}

func BenchmarkInsertDelete(b *testing.B) {
	tr := intTree()
	rng := mathx.NewRNG(1)
	var nodes []*Node[int]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		nodes = append(nodes, tr.Insert(rng.IntN(1<<20)))
		if len(nodes) > 1024 {
			tr.Delete(nodes[0])
			nodes = nodes[1:]
		}
	}
}

func BenchmarkMin(b *testing.B) {
	tr := intTree()
	rng := mathx.NewRNG(1)
	for i := 0; i < 1024; i++ {
		tr.Insert(rng.IntN(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tr.Min() == nil {
			b.Fatal("empty")
		}
	}
}
