// Package rbtree implements a generic red-black tree with parent pointers
// and handle-based deletion. It is the timeline data structure behind the
// CFS run queue re-implementation: the Linux CFS scheduler keeps runnable
// tasks in a red-black tree ordered by virtual runtime and repeatedly takes
// the leftmost node.
package rbtree

// Node is a tree node handle. Handles stay valid until the node is deleted,
// so callers (the run queues) can unlink a specific task in O(log n)
// without searching.
type Node[T any] struct {
	Value               T
	left, right, parent *Node[T]
	red                 bool
}

// Tree is a red-black tree ordered by a strict less function. Duplicate keys
// are permitted; equal elements are kept in insertion order on the right,
// matching CFS behaviour for equal vruntimes.
type Tree[T any] struct {
	root *Node[T]
	nil_ *Node[T] // shared sentinel leaf: black, self-parented
	less func(a, b T) bool
	size int
}

// New returns an empty tree ordered by less.
func New[T any](less func(a, b T) bool) *Tree[T] {
	sentinel := &Node[T]{}
	sentinel.left, sentinel.right, sentinel.parent = sentinel, sentinel, sentinel
	return &Tree[T]{root: sentinel, nil_: sentinel, less: less}
}

// Len returns the number of elements.
func (t *Tree[T]) Len() int { return t.size }

// Insert adds v and returns its node handle.
func (t *Tree[T]) Insert(v T) *Node[T] {
	z := &Node[T]{Value: v, left: t.nil_, right: t.nil_, parent: t.nil_, red: true}
	y := t.nil_
	x := t.root
	for x != t.nil_ {
		y = x
		if t.less(z.Value, x.Value) {
			x = x.left
		} else {
			x = x.right
		}
	}
	z.parent = y
	switch {
	case y == t.nil_:
		t.root = z
	case t.less(z.Value, y.Value):
		y.left = z
	default:
		y.right = z
	}
	t.size++
	t.insertFixup(z)
	return z
}

func (t *Tree[T]) insertFixup(z *Node[T]) {
	for z.parent.red {
		if z.parent == z.parent.parent.left {
			y := z.parent.parent.right
			if y.red {
				z.parent.red = false
				y.red = false
				z.parent.parent.red = true
				z = z.parent.parent
			} else {
				if z == z.parent.right {
					z = z.parent
					t.rotateLeft(z)
				}
				z.parent.red = false
				z.parent.parent.red = true
				t.rotateRight(z.parent.parent)
			}
		} else {
			y := z.parent.parent.left
			if y.red {
				z.parent.red = false
				y.red = false
				z.parent.parent.red = true
				z = z.parent.parent
			} else {
				if z == z.parent.left {
					z = z.parent
					t.rotateRight(z)
				}
				z.parent.red = false
				z.parent.parent.red = true
				t.rotateLeft(z.parent.parent)
			}
		}
	}
	t.root.red = false
}

func (t *Tree[T]) rotateLeft(x *Node[T]) {
	y := x.right
	x.right = y.left
	if y.left != t.nil_ {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == t.nil_:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

func (t *Tree[T]) rotateRight(x *Node[T]) {
	y := x.left
	x.left = y.right
	if y.right != t.nil_ {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == t.nil_:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

// Min returns the leftmost node, or nil when the tree is empty.
func (t *Tree[T]) Min() *Node[T] {
	if t.root == t.nil_ {
		return nil
	}
	return t.minimum(t.root)
}

// Max returns the rightmost node, or nil when the tree is empty.
func (t *Tree[T]) Max() *Node[T] {
	if t.root == t.nil_ {
		return nil
	}
	x := t.root
	for x.right != t.nil_ {
		x = x.right
	}
	return x
}

func (t *Tree[T]) minimum(x *Node[T]) *Node[T] {
	for x.left != t.nil_ {
		x = x.left
	}
	return x
}

// Next returns the in-order successor of n, or nil at the end.
func (t *Tree[T]) Next(n *Node[T]) *Node[T] {
	if n == nil || n == t.nil_ {
		return nil
	}
	if n.right != t.nil_ {
		s := t.minimum(n.right)
		return s
	}
	y := n.parent
	for y != t.nil_ && n == y.right {
		n = y
		y = y.parent
	}
	if y == t.nil_ {
		return nil
	}
	return y
}

// Prev returns the in-order predecessor of n, or nil at the start.
func (t *Tree[T]) Prev(n *Node[T]) *Node[T] {
	if n == nil || n == t.nil_ {
		return nil
	}
	if n.left != t.nil_ {
		x := n.left
		for x.right != t.nil_ {
			x = x.right
		}
		return x
	}
	y := n.parent
	for y != t.nil_ && n == y.left {
		n = y
		y = y.parent
	}
	if y == t.nil_ {
		return nil
	}
	return y
}

// Delete unlinks node z from the tree. z must be a live handle obtained from
// Insert on this tree.
func (t *Tree[T]) Delete(z *Node[T]) {
	if z == nil || z == t.nil_ {
		return
	}
	y := z
	yWasRed := y.red
	var x *Node[T]
	switch {
	case z.left == t.nil_:
		x = z.right
		t.transplant(z, z.right)
	case z.right == t.nil_:
		x = z.left
		t.transplant(z, z.left)
	default:
		y = t.minimum(z.right)
		yWasRed = y.red
		x = y.right
		if y.parent == z {
			x.parent = y // x may be sentinel; fixup relies on its parent
		} else {
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.red = z.red
	}
	t.size--
	if !yWasRed {
		t.deleteFixup(x)
	}
	// Detach handle so double-deletes are detectable by tests.
	z.left, z.right, z.parent = nil, nil, nil
	// Reset the sentinel parent mutated via the y.parent == z shortcut.
	t.nil_.parent = t.nil_
}

func (t *Tree[T]) transplant(u, v *Node[T]) {
	switch {
	case u.parent == t.nil_:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	v.parent = u.parent
}

func (t *Tree[T]) deleteFixup(x *Node[T]) {
	for x != t.root && !x.red {
		if x == x.parent.left {
			w := x.parent.right
			if w.red {
				w.red = false
				x.parent.red = true
				t.rotateLeft(x.parent)
				w = x.parent.right
			}
			if !w.left.red && !w.right.red {
				w.red = true
				x = x.parent
			} else {
				if !w.right.red {
					w.left.red = false
					w.red = true
					t.rotateRight(w)
					w = x.parent.right
				}
				w.red = x.parent.red
				x.parent.red = false
				w.right.red = false
				t.rotateLeft(x.parent)
				x = t.root
			}
		} else {
			w := x.parent.left
			if w.red {
				w.red = false
				x.parent.red = true
				t.rotateRight(x.parent)
				w = x.parent.left
			}
			if !w.right.red && !w.left.red {
				w.red = true
				x = x.parent
			} else {
				if !w.left.red {
					w.right.red = false
					w.red = true
					t.rotateLeft(w)
					w = x.parent.left
				}
				w.red = x.parent.red
				x.parent.red = false
				w.left.red = false
				t.rotateRight(x.parent)
				x = t.root
			}
		}
	}
	x.red = false
}

// Ascend calls fn for each value in ascending order until fn returns false.
func (t *Tree[T]) Ascend(fn func(v T) bool) {
	for n := t.Min(); n != nil; n = t.Next(n) {
		if !fn(n.Value) {
			return
		}
	}
}

// Values returns all values in ascending order.
func (t *Tree[T]) Values() []T {
	out := make([]T, 0, t.size)
	t.Ascend(func(v T) bool { out = append(out, v); return true })
	return out
}

// Validate checks the red-black invariants and the ordering invariant.
// It returns a descriptive error string, or "" when the tree is valid.
// Exposed for tests and debug builds.
func (t *Tree[T]) Validate() string {
	if t.root == t.nil_ {
		if t.size != 0 {
			return "empty tree with non-zero size"
		}
		return ""
	}
	if t.root.red {
		return "root is red"
	}
	blackHeight := -1
	count := 0
	var walk func(n *Node[T], blacks int) string
	walk = func(n *Node[T], blacks int) string {
		if n == t.nil_ {
			if blackHeight == -1 {
				blackHeight = blacks
			} else if blacks != blackHeight {
				return "unequal black heights"
			}
			return ""
		}
		count++
		if n.red && (n.left.red || n.right.red) {
			return "red node with red child"
		}
		if n.left != t.nil_ && t.less(n.Value, n.left.Value) {
			return "left child greater than parent"
		}
		if n.right != t.nil_ && t.less(n.right.Value, n.Value) {
			return "right child less than parent"
		}
		if !n.red {
			blacks++
		}
		if msg := walk(n.left, blacks); msg != "" {
			return msg
		}
		return walk(n.right, blacks)
	}
	if msg := walk(t.root, 0); msg != "" {
		return msg
	}
	if count != t.size {
		return "size mismatch"
	}
	return ""
}
