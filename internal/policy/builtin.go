package policy

import (
	"fmt"

	"colab/internal/kernel"
	"colab/internal/perfmodel"
	"colab/internal/sched/cfs"
	"colab/internal/sched/colab"
	"colab/internal/sched/eas"
	"colab/internal/sched/gts"
	"colab/internal/sched/wash"
)

// Built-in policy names. These are the only names the repo itself
// hard-codes; everything else (flag help, unknown-name errors, experiment
// kind lists) derives from the registry.
const (
	Linux = "linux"
	WASH  = "wash"
	COLAB = "colab"
	GTS   = "gts"
	EAS   = "eas"
	// COLABDVFS is COLAB with its native DVFS governor and per-tier trained
	// speedup models (tri-gear extension; identical to COLAB on
	// fixed-frequency machines apart from the per-tier predictions).
	COLABDVFS = "colab-dvfs"
	// Ablation variants of COLAB (DESIGN.md §4).
	COLABNoScale = "colab-noscale" // scale-slice fairness off
	COLABLocal   = "colab-local"   // biased-global selector off
	COLABFlat    = "colab-flat"    // hierarchical allocator off
	COLABNoPull  = "colab-nopull"  // big-pulls-little off
	COLABOracle  = "colab-oracle"  // ground-truth speedup predictor
)

// NeedsSpeedup reports whether the named policy's factory consumes
// Context.Speedup, letting batch drivers skip training the model for
// sweeps of speedup-blind policies. Unknown (user-registered) policies
// conservatively report true.
func NeedsSpeedup(name string) bool {
	switch name {
	case Linux, GTS, EAS, COLABOracle:
		return false
	}
	return true
}

func init() {
	MustRegister(Linux, func(Context) (kernel.Scheduler, error) {
		return cfs.New(cfs.Options{}), nil
	})
	MustRegister(WASH, func(ctx Context) (kernel.Scheduler, error) {
		return wash.New(wash.Options{Speedup: ctx.Speedup}), nil
	})
	MustRegister(COLAB, func(ctx Context) (kernel.Scheduler, error) {
		return colab.New(colab.Options{Speedup: ctx.Speedup}), nil
	})
	MustRegister(GTS, func(Context) (kernel.Scheduler, error) {
		return gts.New(gts.Options{}), nil
	})
	MustRegister(EAS, func(Context) (kernel.Scheduler, error) {
		return eas.New(eas.Options{}), nil
	})
	MustRegister(COLABDVFS, func(ctx Context) (kernel.Scheduler, error) {
		o := colab.Options{Speedup: ctx.Speedup, Governor: true}
		if ctx.TierSpeedup != nil {
			o.TierSpeedup, o.TierSpeedupTiers = ctx.TierSpeedup, ctx.TierSpeedupTiers
		} else {
			tm, err := perfmodel.DefaultTriGear()
			if err != nil {
				return nil, fmt.Errorf("training tri-gear tiered model: %w", err)
			}
			// The palette lets the policy disable per-tier predictions on
			// machines the model was not trained for (e.g. the two-tier
			// paper configs) instead of mispredicting through wrong tier
			// indices.
			o.TierSpeedup, o.TierSpeedupTiers = tm.TierPredictor(), tm.Tiers
		}
		return colab.New(o), nil
	})
	MustRegister(COLABNoScale, func(ctx Context) (kernel.Scheduler, error) {
		return colab.New(colab.Options{Speedup: ctx.Speedup, DisableScaleSlice: true}), nil
	})
	MustRegister(COLABLocal, func(ctx Context) (kernel.Scheduler, error) {
		return colab.New(colab.Options{Speedup: ctx.Speedup, LocalOnlySelector: true}), nil
	})
	MustRegister(COLABFlat, func(ctx Context) (kernel.Scheduler, error) {
		return colab.New(colab.Options{Speedup: ctx.Speedup, FlatAllocator: true}), nil
	})
	MustRegister(COLABNoPull, func(ctx Context) (kernel.Scheduler, error) {
		return colab.New(colab.Options{Speedup: ctx.Speedup, DisablePull: true}), nil
	})
	MustRegister(COLABOracle, func(Context) (kernel.Scheduler, error) {
		return colab.New(colab.Options{Speedup: perfmodel.Oracle()}), nil
	})

	registerBuiltinStages()
}

// registerBuiltinStages populates the stage level of the registry with the
// decomposed built-ins. WASH and GTS are labeler-only policies — their
// allocator/selector really are CFS — so those slots alias the CFS stages,
// letting compositions like "colab.labeler+wash.selector" read naturally.
func registerBuiltinStages() {
	cfsAllocator := func(Context) (kernel.Stage, error) {
		return cfs.NewAllocator(cfs.Options{}), nil
	}
	cfsSelector := func(Context) (kernel.Stage, error) {
		return cfs.NewSelector(cfs.Options{}), nil
	}
	for _, name := range []string{Linux, WASH, GTS} {
		MustRegisterStage(SlotAllocator, name, cfsAllocator)
		MustRegisterStage(SlotSelector, name, cfsSelector)
	}
	MustRegisterStage(SlotLabeler, WASH, func(ctx Context) (kernel.Stage, error) {
		return wash.NewLabeler(wash.Options{Speedup: ctx.Speedup}), nil
	})
	MustRegisterStage(SlotLabeler, GTS, func(Context) (kernel.Stage, error) {
		return gts.NewLabeler(gts.Options{}), nil
	})
	MustRegisterStage(SlotLabeler, EAS, func(Context) (kernel.Stage, error) {
		return eas.NewLabeler(eas.Options{}), nil
	})
	MustRegisterStage(SlotAllocator, EAS, func(Context) (kernel.Stage, error) {
		return eas.NewAllocator(eas.Options{}), nil
	})
	MustRegisterStage(SlotSelector, EAS, func(Context) (kernel.Stage, error) {
		return eas.NewSelector(eas.Options{}), nil
	})
	MustRegisterStage(SlotGovernor, EAS, func(Context) (kernel.Stage, error) {
		return eas.NewGovernor(eas.Options{}), nil
	})
	// Plain colab.labeler keeps the "colab" policy's semantics exactly:
	// upper-tier scaling interpolates the big-anchor prediction, never the
	// per-tier trained model — per-tier predictions are the dvfs variant's
	// feature, carried by the separate colab-dvfs.labeler below. This keeps
	// the canonical composition byte-identical to the "colab" policy under
	// every context, tiered or not.
	MustRegisterStage(SlotLabeler, COLAB, func(ctx Context) (kernel.Stage, error) {
		return colab.NewLabeler(colab.Options{Speedup: ctx.Speedup}), nil
	})
	MustRegisterStage(SlotLabeler, COLABDVFS, func(ctx Context) (kernel.Stage, error) {
		return colab.NewLabeler(colab.Options{
			Speedup:          ctx.Speedup,
			TierSpeedup:      ctx.TierSpeedup,
			TierSpeedupTiers: ctx.TierSpeedupTiers,
		}), nil
	})
	MustRegisterStage(SlotAllocator, COLAB, func(ctx Context) (kernel.Stage, error) {
		return colab.NewAllocator(colab.Options{Speedup: ctx.Speedup}), nil
	})
	MustRegisterStage(SlotSelector, COLAB, func(ctx Context) (kernel.Stage, error) {
		return colab.NewSelector(colab.Options{Speedup: ctx.Speedup}), nil
	})
	// The registry's colab.governor is built active (Options.Governor on):
	// composing it into a pipeline means asking for label-driven DVFS.
	MustRegisterStage(SlotGovernor, COLAB, func(Context) (kernel.Stage, error) {
		return colab.NewGovernor(colab.Options{Governor: true}), nil
	})
}
