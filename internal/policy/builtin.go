package policy

import (
	"fmt"

	"colab/internal/kernel"
	"colab/internal/perfmodel"
	"colab/internal/sched/cfs"
	"colab/internal/sched/colab"
	"colab/internal/sched/eas"
	"colab/internal/sched/gts"
	"colab/internal/sched/wash"
)

// Built-in policy names. These are the only names the repo itself
// hard-codes; everything else (flag help, unknown-name errors, experiment
// kind lists) derives from the registry.
const (
	Linux = "linux"
	WASH  = "wash"
	COLAB = "colab"
	GTS   = "gts"
	EAS   = "eas"
	// COLABDVFS is COLAB with its native DVFS governor and per-tier trained
	// speedup models (tri-gear extension; identical to COLAB on
	// fixed-frequency machines apart from the per-tier predictions).
	COLABDVFS = "colab-dvfs"
	// Ablation variants of COLAB (DESIGN.md §4).
	COLABNoScale = "colab-noscale" // scale-slice fairness off
	COLABLocal   = "colab-local"   // biased-global selector off
	COLABFlat    = "colab-flat"    // hierarchical allocator off
	COLABNoPull  = "colab-nopull"  // big-pulls-little off
	COLABOracle  = "colab-oracle"  // ground-truth speedup predictor
)

// NeedsSpeedup reports whether the named policy's factory consumes
// Context.Speedup, letting batch drivers skip training the model for
// sweeps of speedup-blind policies. Unknown (user-registered) policies
// conservatively report true.
func NeedsSpeedup(name string) bool {
	switch name {
	case Linux, GTS, EAS, COLABOracle:
		return false
	}
	return true
}

func init() {
	MustRegister(Linux, func(Context) (kernel.Scheduler, error) {
		return cfs.New(cfs.Options{}), nil
	})
	MustRegister(WASH, func(ctx Context) (kernel.Scheduler, error) {
		return wash.New(wash.Options{Speedup: ctx.Speedup}), nil
	})
	MustRegister(COLAB, func(ctx Context) (kernel.Scheduler, error) {
		return colab.New(colab.Options{Speedup: ctx.Speedup}), nil
	})
	MustRegister(GTS, func(Context) (kernel.Scheduler, error) {
		return gts.New(gts.Options{}), nil
	})
	MustRegister(EAS, func(Context) (kernel.Scheduler, error) {
		return eas.New(eas.Options{}), nil
	})
	MustRegister(COLABDVFS, func(ctx Context) (kernel.Scheduler, error) {
		o := colab.Options{Speedup: ctx.Speedup, Governor: true}
		if ctx.TierSpeedup != nil {
			o.TierSpeedup, o.TierSpeedupTiers = ctx.TierSpeedup, ctx.TierSpeedupTiers
		} else {
			tm, err := perfmodel.DefaultTriGear()
			if err != nil {
				return nil, fmt.Errorf("training tri-gear tiered model: %w", err)
			}
			// The palette lets the policy disable per-tier predictions on
			// machines the model was not trained for (e.g. the two-tier
			// paper configs) instead of mispredicting through wrong tier
			// indices.
			o.TierSpeedup, o.TierSpeedupTiers = tm.TierPredictor(), tm.Tiers
		}
		return colab.New(o), nil
	})
	MustRegister(COLABNoScale, func(ctx Context) (kernel.Scheduler, error) {
		return colab.New(colab.Options{Speedup: ctx.Speedup, DisableScaleSlice: true}), nil
	})
	MustRegister(COLABLocal, func(ctx Context) (kernel.Scheduler, error) {
		return colab.New(colab.Options{Speedup: ctx.Speedup, LocalOnlySelector: true}), nil
	})
	MustRegister(COLABFlat, func(ctx Context) (kernel.Scheduler, error) {
		return colab.New(colab.Options{Speedup: ctx.Speedup, FlatAllocator: true}), nil
	})
	MustRegister(COLABNoPull, func(ctx Context) (kernel.Scheduler, error) {
		return colab.New(colab.Options{Speedup: ctx.Speedup, DisablePull: true}), nil
	})
	MustRegister(COLABOracle, func(Context) (kernel.Scheduler, error) {
		return colab.New(colab.Options{Speedup: perfmodel.Oracle()}), nil
	})
}
