package policy

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"colab/internal/kernel"
	"colab/internal/sched/cfs"
)

func TestBuiltinsRegistered(t *testing.T) {
	want := []string{Linux, WASH, COLAB, GTS, EAS, COLABDVFS,
		COLABNoScale, COLABLocal, COLABFlat, COLABNoPull, COLABOracle}
	names := Names()
	for _, n := range want {
		found := false
		for _, got := range names {
			if got == n {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("builtin %q missing from Names() = %v", n, names)
		}
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
}

func TestNewBuildsEveryBuiltin(t *testing.T) {
	if testing.Short() {
		t.Skip("colab-dvfs trains the tiered model; not -short")
	}
	for _, name := range Names() {
		s, err := New(name, Context{})
		if err != nil {
			t.Errorf("New(%s): %v", name, err)
			continue
		}
		if s.Name() == "" {
			t.Errorf("New(%s) built a scheduler without a name", name)
		}
	}
}

func TestNewReturnsFreshInstances(t *testing.T) {
	a, err := New(Linux, Context{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Linux, Context{})
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("New returned the same scheduler instance twice")
	}
}

func TestUnknownNameListsRegistry(t *testing.T) {
	_, err := New("bogus", Context{})
	if err == nil {
		t.Fatal("unknown policy must error")
	}
	for _, n := range []string{Linux, COLABDVFS, "bogus"} {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("unknown-name error misses %q: %v", n, err)
		}
	}
}

func TestRegisterValidation(t *testing.T) {
	if err := Register("", func(Context) (kernel.Scheduler, error) { return cfs.New(cfs.Options{}), nil }); err == nil {
		t.Error("empty name must error")
	}
	if err := Register("nilfactory", nil); err == nil {
		t.Error("nil factory must error")
	}
	if err := Register(Linux, func(Context) (kernel.Scheduler, error) { return cfs.New(cfs.Options{}), nil }); err == nil {
		t.Error("collision with a builtin must error")
	}
}

func TestRegisterCustomRoundtrip(t *testing.T) {
	const name = "test-custom-roundtrip"
	called := 0
	if err := Register(name, func(ctx Context) (kernel.Scheduler, error) {
		called++
		return cfs.New(cfs.Options{}), nil
	}); err != nil {
		t.Fatal(err)
	}
	s, err := New(name, Context{})
	if err != nil {
		t.Fatal(err)
	}
	if s == nil || called != 1 {
		t.Fatalf("factory not invoked exactly once (called=%d)", called)
	}
	if err := Register(name, func(Context) (kernel.Scheduler, error) { return nil, nil }); err == nil {
		t.Fatal("re-registering the same custom name must error")
	}
}

func TestFactoryErrorWrapped(t *testing.T) {
	const name = "test-factory-error"
	MustRegister(name, func(Context) (kernel.Scheduler, error) {
		return nil, fmt.Errorf("boom")
	})
	_, err := New(name, Context{})
	if err == nil || !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), name) {
		t.Fatalf("factory error not wrapped with the policy name: %v", err)
	}
}

func TestNeedsSpeedup(t *testing.T) {
	for name, want := range map[string]bool{
		Linux: false, GTS: false, EAS: false, COLABOracle: false,
		WASH: true, COLAB: true, COLABDVFS: true, COLABNoScale: true,
		"some-user-policy": true, // conservative for unknown names
	} {
		if got := NeedsSpeedup(name); got != want {
			t.Errorf("NeedsSpeedup(%s) = %v, want %v", name, got, want)
		}
	}
}
