package policy

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"colab/internal/kernel"
)

// The second registry level: individual pipeline stages. Where the policy
// registry maps one name to a whole kernel.Scheduler factory, the stage
// registry maps (slot, name) pairs to stage factories, and the composition
// grammar makes every stage combination addressable wherever a policy name
// is accepted:
//
//	"colab.labeler+wash.selector+colab.governor"
//
// Each "+"-separated part is "<name>.<slot>" with slot one of labeler,
// allocator, selector, governor; at most one stage per slot. Omitted
// allocator/selector slots default to the CFS stages ("linux"); omitted
// labeler/governor slots stay empty. A composition name is resolved lazily
// by New/Check when it is not shadowed by a registered whole-policy name.

// Slot identifies a pipeline stage position.
type Slot string

// The four pipeline slots.
const (
	SlotLabeler   Slot = "labeler"
	SlotAllocator Slot = "allocator"
	SlotSelector  Slot = "selector"
	SlotGovernor  Slot = "governor"
)

// Slots returns the pipeline slots in pipeline order.
func Slots() []Slot { return []Slot{SlotLabeler, SlotAllocator, SlotSelector, SlotGovernor} }

func validSlot(s Slot) bool {
	switch s {
	case SlotLabeler, SlotAllocator, SlotSelector, SlotGovernor:
		return true
	}
	return false
}

// DefaultStageFamily is the family filling omitted allocator/selector
// slots: plain CFS mechanics.
const DefaultStageFamily = "linux"

// StageFactory builds one stage instance from the shared context. The
// returned stage must implement the slot's interface (kernel.Labeler,
// kernel.Allocator, kernel.Selector or kernel.Governor); this is checked at
// pipeline build time. Factories must return a fresh instance per call:
// stage state is per-machine.
type StageFactory func(Context) (kernel.Stage, error)

var (
	stageMu        sync.RWMutex
	stageFactories = map[Slot]map[string]StageFactory{
		SlotLabeler:   {},
		SlotAllocator: {},
		SlotSelector:  {},
		SlotGovernor:  {},
	}
)

// RegisterStage adds a stage under (slot, name), making "<name>.<slot>"
// addressable in the composition grammar. It errors on an unknown slot, an
// empty or grammar-ambiguous name, a nil factory, or a collision.
func RegisterStage(slot Slot, name string, f StageFactory) error {
	if !validSlot(slot) {
		return fmt.Errorf("policy: unknown stage slot %q (slots: %s)", slot, slotList())
	}
	if name == "" {
		return fmt.Errorf("policy: empty stage name for slot %s", slot)
	}
	if strings.ContainsAny(name, ".+ \t") {
		return fmt.Errorf("policy: stage name %q may not contain '.', '+' or spaces (composition grammar)", name)
	}
	if f == nil {
		return fmt.Errorf("policy: nil factory for stage %s.%s", name, slot)
	}
	stageMu.Lock()
	defer stageMu.Unlock()
	if _, dup := stageFactories[slot][name]; dup {
		return fmt.Errorf("policy: stage %s.%s already registered", name, slot)
	}
	stageFactories[slot][name] = f
	return nil
}

// MustRegisterStage is RegisterStage for init-time use; it panics on error.
func MustRegisterStage(slot Slot, name string, f StageFactory) {
	if err := RegisterStage(slot, name, f); err != nil {
		panic(err)
	}
}

// StageNames returns every registered stage name for the slot in sorted
// order (empty for an unknown slot).
func StageNames(slot Slot) []string {
	stageMu.RLock()
	defer stageMu.RUnlock()
	out := make([]string, 0, len(stageFactories[slot]))
	for name := range stageFactories[slot] {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NewStage instantiates the registered (slot, name) stage. Unknown names
// error with the slot's full registered-name list.
func NewStage(slot Slot, name string, ctx Context) (kernel.Stage, error) {
	if !validSlot(slot) {
		return nil, fmt.Errorf("policy: unknown stage slot %q (slots: %s)", slot, slotList())
	}
	stageMu.RLock()
	f, ok := stageFactories[slot][name]
	stageMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("policy: unknown %s %q (registered %ss: %s)",
			slot, name, slot, strings.Join(StageNames(slot), ", "))
	}
	s, err := f(ctx)
	if err != nil {
		return nil, fmt.Errorf("policy: building stage %s.%s: %w", name, slot, err)
	}
	if s == nil {
		return nil, fmt.Errorf("policy: factory for stage %s.%s returned nil", name, slot)
	}
	return s, nil
}

func slotList() string {
	var parts []string
	for _, s := range Slots() {
		parts = append(parts, string(s))
	}
	return strings.Join(parts, ", ")
}

// ---------------------------------------------------------------------------
// Composition grammar.

// IsComposition reports whether name uses the pipeline-composition grammar
// (it contains a "+" join or ends in a ".slot" suffix). Such names resolve
// through the stage registry when no whole policy shadows them.
func IsComposition(name string) bool {
	if strings.Contains(name, "+") {
		return true
	}
	i := strings.LastIndex(name, ".")
	return i > 0 && validSlot(Slot(name[i+1:]))
}

// parseComposition splits a composition name into its per-slot stage names.
func parseComposition(name string) (map[Slot]string, error) {
	out := make(map[Slot]string, 4)
	for _, part := range strings.Split(name, "+") {
		part = strings.TrimSpace(part)
		i := strings.LastIndex(part, ".")
		if i <= 0 || i == len(part)-1 {
			return nil, fmt.Errorf("policy: bad pipeline stage %q in %q (want \"<name>.<slot>\", slots: %s)",
				part, name, slotList())
		}
		stage, slot := part[:i], Slot(part[i+1:])
		if !validSlot(slot) {
			return nil, fmt.Errorf("policy: unknown stage slot %q in %q (slots: %s)", slot, name, slotList())
		}
		if prev, dup := out[slot]; dup {
			return nil, fmt.Errorf("policy: composition %q names two %s stages (%q and %q)", name, slot, prev, stage)
		}
		out[slot] = stage
	}
	return out, nil
}

// checkComposition validates a composition name against the stage registry
// without instantiating anything.
func checkComposition(name string) error {
	comp, err := parseComposition(name)
	if err != nil {
		return err
	}
	for slot, stage := range comp {
		stageMu.RLock()
		_, ok := stageFactories[slot][stage]
		stageMu.RUnlock()
		if !ok {
			return fmt.Errorf("policy: unknown %s %q in %q (registered %ss: %s)",
				slot, stage, name, slot, strings.Join(StageNames(slot), ", "))
		}
	}
	return nil
}

// newComposition builds a pipeline scheduler from a composition name.
func newComposition(name string, ctx Context) (kernel.Scheduler, error) {
	comp, err := parseComposition(name)
	if err != nil {
		return nil, err
	}
	if _, ok := comp[SlotAllocator]; !ok {
		comp[SlotAllocator] = DefaultStageFamily
	}
	if _, ok := comp[SlotSelector]; !ok {
		comp[SlotSelector] = DefaultStageFamily
	}
	var (
		lab   kernel.Labeler
		alloc kernel.Allocator
		sel   kernel.Selector
		gov   kernel.Governor
	)
	for slot, stage := range comp {
		st, err := NewStage(slot, stage, ctx)
		if err != nil {
			return nil, err
		}
		ok := false
		switch slot {
		case SlotLabeler:
			lab, ok = st.(kernel.Labeler)
		case SlotAllocator:
			alloc, ok = st.(kernel.Allocator)
		case SlotSelector:
			sel, ok = st.(kernel.Selector)
		case SlotGovernor:
			gov, ok = st.(kernel.Governor)
		}
		if !ok {
			return nil, fmt.Errorf("policy: stage %s.%s does not implement the %s interface", stage, slot, slot)
		}
	}
	s, err := kernel.NewPipeline(name, lab, alloc, sel, gov)
	if err != nil {
		return nil, fmt.Errorf("policy: building pipeline %q: %w", name, err)
	}
	return s, nil
}

// CanonicalComposition returns the composition-grammar equivalent of a
// built-in policy name, or false for policies without a canonical stage
// decomposition (the COLAB option-ablation variants keep their monolithic
// option switches). The canonical compositions are held byte-identical to
// their policies by the golden-corpus tests.
//
// Note "colab-dvfs" composes the tiered-prediction labeler
// (colab-dvfs.labeler) with the governor active; it matches the policy
// whenever the context carries the tiered predictor, but the whole-policy
// factory additionally self-trains the default tri-gear tiered model when
// the context carries none, while the composition uses exactly the
// context's predictors.
func CanonicalComposition(name string) (string, bool) {
	switch name {
	case Linux:
		return "linux.allocator+linux.selector", true
	case WASH:
		return "wash.labeler+linux.allocator+linux.selector", true
	case GTS:
		return "gts.labeler+linux.allocator+linux.selector", true
	case EAS:
		return "eas.labeler+eas.allocator+eas.selector+eas.governor", true
	case COLAB:
		return "colab.labeler+colab.allocator+colab.selector", true
	case COLABDVFS:
		return "colab-dvfs.labeler+colab.allocator+colab.selector+colab.governor", true
	}
	return "", false
}
