package policy

import "strings"

// Canonical returns the canonical form of a policy name: the stable
// closed-form key the distribution layer (cell keys, checkpoint journals,
// the serve cache) uses to decide that two names select the same
// scheduling behaviour.
//
// Registered whole-policy names are canonical as-is (they shadow the
// composition grammar, and a monolith and its stage decomposition are only
// conditionally equivalent — see CanonicalComposition's colab-dvfs note —
// so they must not share a key). Composition-grammar names normalise to
// slot order (labeler, allocator, selector, governor) with the implicit
// CFS allocator/selector defaults made explicit, so every spelling of one
// pipeline renders identically:
//
//	Canonical("wash.labeler") == Canonical("linux.selector+wash.labeler+linux.allocator")
//	                          == "wash.labeler+linux.allocator+linux.selector"
//
// Unknown or malformed names pass through verbatim: Canonical never
// errors, and callers that validate do so through Check.
func Canonical(name string) string {
	name = strings.TrimSpace(name)
	mu.RLock()
	_, whole := factories[name]
	mu.RUnlock()
	if whole || !IsComposition(name) {
		return name
	}
	comp, err := parseComposition(name)
	if err != nil {
		return name
	}
	if _, ok := comp[SlotAllocator]; !ok {
		comp[SlotAllocator] = DefaultStageFamily
	}
	if _, ok := comp[SlotSelector]; !ok {
		comp[SlotSelector] = DefaultStageFamily
	}
	parts := make([]string, 0, len(comp))
	for _, slot := range Slots() {
		if stage, ok := comp[slot]; ok {
			parts = append(parts, stage+"."+string(slot))
		}
	}
	return strings.Join(parts, "+")
}
