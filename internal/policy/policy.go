// Package policy is the process-wide scheduler registry: every scheduling
// policy — the five built-in ones, their ablation variants, and any policy a
// library user registers — is reachable by a string name through one
// factory table. The public API (colab.RegisterPolicy / colab.Policies /
// colab.NewPolicy), the experiment harness and the cmd/ tools all consume
// this registry, so the set of known policy names lives in exactly one
// place.
//
// The registry is two-level: whole policies (this file) and individual
// pipeline stages (stage.go). Names using the composition grammar
// ("colab.labeler+wash.selector+...") resolve through the stage level, so
// every stage combination is addressable wherever a policy name is
// accepted.
package policy

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/task"
)

// Context carries the shared inputs a policy factory may wire into the
// scheduler it builds. Every field is optional: a zero Context selects each
// policy's neutral defaults (e.g. WASH and COLAB fall back to a neutral
// speedup predictor).
type Context struct {
	// Speedup predicts a thread's big-vs-little speedup (the trained
	// Table 2 model's ThreadPredictor).
	Speedup func(*task.Thread) float64
	// TierSpeedup predicts a thread's speedup on an arbitrary tier (the
	// tri-gear tiered model's TierPredictor). Policies that take per-tier
	// predictions (colab-dvfs) prefer it over interpolating Speedup.
	TierSpeedup func(*task.Thread, int) float64
	// TierSpeedupTiers is the palette TierSpeedup was trained for; policies
	// use it to disable per-tier predictions on foreign machines.
	TierSpeedupTiers []cpu.Tier
}

// Factory builds one scheduler instance from the shared context. Factories
// must return a fresh instance per call: scheduler state is per-machine.
type Factory func(Context) (kernel.Scheduler, error)

var (
	mu        sync.RWMutex
	factories = make(map[string]Factory)
)

// Register adds a policy under name. It errors on an empty name, a nil
// factory, or a name collision — the built-in names below are taken.
func Register(name string, f Factory) error {
	if name == "" {
		return fmt.Errorf("policy: empty policy name")
	}
	if f == nil {
		return fmt.Errorf("policy: nil factory for %q", name)
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := factories[name]; dup {
		return fmt.Errorf("policy: %q already registered", name)
	}
	factories[name] = f
	return nil
}

// MustRegister is Register for init-time use; it panics on error.
func MustRegister(name string, f Factory) {
	if err := Register(name, f); err != nil {
		panic(err)
	}
}

// Names returns every registered policy name in sorted order.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(factories))
	for name := range factories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Check reports whether name is registered (or is a resolvable pipeline
// composition); an unknown name errors with the full registered-name list —
// or, for a composition with an unknown stage, the slot's registered stage
// names — so callers surface the valid choices for free.
func Check(name string) error {
	mu.RLock()
	_, ok := factories[name]
	mu.RUnlock()
	if ok {
		return nil
	}
	if IsComposition(name) {
		return checkComposition(name)
	}
	return fmt.Errorf("policy: unknown policy %q (registered: %s)",
		name, strings.Join(Names(), ", "))
}

// New instantiates the named policy. Composition-grammar names build a
// stage pipeline; other unknown names error like Check.
func New(name string, ctx Context) (kernel.Scheduler, error) {
	mu.RLock()
	f, ok := factories[name]
	mu.RUnlock()
	if !ok {
		if IsComposition(name) {
			return newComposition(name, ctx)
		}
		return nil, fmt.Errorf("policy: unknown policy %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	s, err := f(ctx)
	if err != nil {
		return nil, fmt.Errorf("policy: building %q: %w", name, err)
	}
	if s == nil {
		return nil, fmt.Errorf("policy: factory for %q returned nil", name)
	}
	return s, nil
}
