package policy

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"colab/internal/kernel"
	"colab/internal/sched/cfs"
	"colab/internal/sched/colab"
)

func TestBuiltinStagesRegistered(t *testing.T) {
	want := map[Slot][]string{
		SlotLabeler:   {COLAB, COLABDVFS, EAS, GTS, WASH},
		SlotAllocator: {COLAB, EAS, GTS, Linux, WASH},
		SlotSelector:  {COLAB, EAS, GTS, Linux, WASH},
		SlotGovernor:  {COLAB, EAS},
	}
	for slot, names := range want {
		got := StageNames(slot)
		if !sort.StringsAreSorted(got) {
			t.Errorf("StageNames(%s) not sorted: %v", slot, got)
		}
		for _, n := range names {
			found := false
			for _, g := range got {
				if g == n {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("stage %s.%s missing from registry: %v", n, slot, got)
			}
		}
	}
}

func TestCompositionGrammar(t *testing.T) {
	for name, wantErr := range map[string]string{
		"colab.labeler+wash.selector+colab.governor": "",
		"colab.labeler":                            "", // defaults fill allocator+selector
		"eas.governor":                             "",
		"colab.labeler+colab.labeler":              "two labeler stages",
		"colab.labeler+gts.labeler":                "two labeler stages",
		"colab.badslot+linux.selector":             "unknown stage slot",
		"nope.labeler":                             "registered labelers",
		"+colab.selector":                          "bad pipeline stage",
		"colab.labeler+":                           "bad pipeline stage",
		".labeler":                                 "unknown policy", // no family name: not grammar
		"wash.allocator+gts.selector":              "",               // aliases of the CFS stages
		"colab.governor+colab.labeler":             "",               // order-free grammar
		"linux.allocator+linux.selector":           "",
		"colab.selector+colab.selector+x.governor": "two selector stages",
	} {
		err := Check(name)
		if wantErr == "" {
			if err != nil {
				t.Errorf("Check(%q): unexpected error %v", name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Errorf("Check(%q) = %v, want error containing %q", name, err, wantErr)
		}
	}
}

// Unknown stages must list the slot's registered names, mirroring the
// unknown-policy behaviour.
func TestUnknownStageListsRegistry(t *testing.T) {
	_, err := New("bogus.selector", Context{})
	if err == nil {
		t.Fatal("unknown selector must error")
	}
	for _, want := range []string{"bogus", "colab", "eas", "linux", "wash", "registered selectors"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-stage error misses %q: %v", want, err)
		}
	}
	if _, err := NewStage(SlotGovernor, "bogus", Context{}); err == nil ||
		!strings.Contains(err.Error(), "registered governors") {
		t.Errorf("NewStage unknown error = %v", err)
	}
	if _, err := NewStage("bogusslot", "colab", Context{}); err == nil ||
		!strings.Contains(err.Error(), "labeler, allocator, selector, governor") {
		t.Errorf("NewStage unknown-slot error = %v", err)
	}
}

// A whole-policy registration shadows the composition grammar for the same
// name string.
func TestPolicyNameShadowsComposition(t *testing.T) {
	const name = "test-shadow.labeler"
	built := 0
	MustRegister(name, func(Context) (kernel.Scheduler, error) {
		built++
		return cfs.New(cfs.Options{}), nil
	})
	if err := Check(name); err != nil {
		t.Fatalf("registered name must check clean: %v", err)
	}
	if _, err := New(name, Context{}); err != nil || built != 1 {
		t.Fatalf("whole-policy factory not used (err=%v, built=%d)", err, built)
	}
}

// Compositions build fresh pipelines per call and wire the context's
// predictor into the stages that take one.
func TestCompositionBuildsFreshPipelines(t *testing.T) {
	const name = "colab.labeler+colab.allocator+colab.selector"
	a, err := New(name, Context{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(name, Context{})
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("composition returned the same scheduler twice")
	}
	if a.Name() != name {
		t.Fatalf("pipeline name = %q", a.Name())
	}
}

// RegisterStage validation: slots, names, nil factories, collisions.
func TestRegisterStageValidation(t *testing.T) {
	ok := func(Context) (kernel.Stage, error) { return colab.NewLabeler(colab.Options{}), nil }
	for _, tc := range []struct {
		slot Slot
		name string
		f    StageFactory
		want string
	}{
		{"nope", "x", ok, "unknown stage slot"},
		{SlotLabeler, "", ok, "empty stage name"},
		{SlotLabeler, "a.b", ok, "may not contain"},
		{SlotLabeler, "a+b", ok, "may not contain"},
		{SlotLabeler, "a b", ok, "may not contain"},
		{SlotLabeler, "x", nil, "nil factory"},
		{SlotLabeler, COLAB, ok, "already registered"},
	} {
		err := RegisterStage(tc.slot, tc.name, tc.f)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("RegisterStage(%s, %q) = %v, want %q", tc.slot, tc.name, err, tc.want)
		}
	}
}

// A stage registered under the wrong slot is rejected at build time, not
// silently run.
func TestCompositionRejectsWrongStageKind(t *testing.T) {
	MustRegisterStage(SlotSelector, "test-notasel", func(Context) (kernel.Stage, error) {
		return colab.NewLabeler(colab.Options{}), nil // a labeler, not a selector
	})
	_, err := New("test-notasel.selector", Context{})
	if err == nil || !strings.Contains(err.Error(), "does not implement the selector interface") {
		t.Fatalf("wrong-kind stage error = %v", err)
	}
}

// Both registry levels must be safe under concurrent registration, lookup
// and instantiation (run with -race in CI).
func TestRegistryConcurrentAccess(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := fmt.Sprintf("conc-%d", i)
			if err := Register("policy-"+name, func(Context) (kernel.Scheduler, error) {
				return cfs.New(cfs.Options{}), nil
			}); err != nil {
				t.Errorf("Register: %v", err)
			}
			if err := RegisterStage(SlotLabeler, name, func(Context) (kernel.Stage, error) {
				return colab.NewLabeler(colab.Options{}), nil
			}); err != nil {
				t.Errorf("RegisterStage: %v", err)
			}
			if _, err := New(Linux, Context{}); err != nil {
				t.Errorf("New(linux): %v", err)
			}
			if _, err := New(name+".labeler+colab.selector", Context{}); err != nil {
				t.Errorf("New(composition): %v", err)
			}
			if err := Check("colab.labeler+wash.selector"); err != nil {
				t.Errorf("Check: %v", err)
			}
			Names()
			StageNames(SlotLabeler)
			if _, err := NewStage(SlotSelector, COLAB, Context{}); err != nil {
				t.Errorf("NewStage: %v", err)
			}
		}()
	}
	wg.Wait()
}
