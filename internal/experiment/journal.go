package experiment

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"colab/internal/metrics"
)

// JournalRecord is one NDJSON line of a checkpoint journal: a completed
// cell's canonical key and its scores. Scores are marshalled with
// encoding/json's shortest-round-trip float rendering, so a replayed cell
// is bit-identical to the computed one. The same shape travels on the
// fleet wire: a coordinator ships a failed shard's partial journal to the
// replacement worker as a list of records.
type JournalRecord struct {
	Key   string  `json:"key"`
	HANTT float64 `json:"h_antt"`
	HSTP  float64 `json:"h_stp"`
}

// Journal is the checkpoint store of a sweep: an append-only NDJSON file
// of completed cells keyed by CellKey. A batch run with a journal records
// every cell as it completes (each line is flushed and fsynced before the
// cell is reported done), and a restarted run over the same file replays
// completed cells instead of recomputing them — the replayed scores are
// bit-identical, so the resumed sweep's final output matches an
// uninterrupted run byte for byte.
//
// Because entries are keyed, the journal is oblivious to shard layout and
// worker count: any subset of a sweep's cells may be present, and a
// journal written by several sharded processes (one file per shard) can be
// replayed per shard or concatenated. A Journal is safe for concurrent use
// by one process; concurrent processes must use distinct files.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	done map[string]metrics.MixScore
}

// scanJournal walks the NDJSON journal bytes line by line, calling record
// for every complete entry (with the raw line preserved). It returns the
// byte length of a torn trailing fragment — the signature of a kill
// mid-append: the file ends without a newline in a half-written record —
// or an error when an interior line is malformed, which means the file is
// not a journal.
func scanJournal(path string, data []byte, record func(raw []byte, e JournalRecord)) (torn int, err error) {
	lines := bytes.Split(data, []byte("\n"))
	for i, line := range lines {
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			continue
		}
		var e JournalRecord
		if err := json.Unmarshal(trimmed, &e); err != nil || e.Key == "" {
			if i == len(lines)-1 {
				return len(line), nil
			}
			return 0, fmt.Errorf("experiment: journal %s line %d is not a cell record: %q", path, i+1, trimmed)
		}
		record(trimmed, e)
	}
	return 0, nil
}

// OpenJournal opens (creating if missing) the checkpoint journal at path
// and loads every completed cell. A truncated final line — the signature
// of a kill mid-write — is tolerated and dropped; malformed interior lines
// mean the file is not a journal and error out.
func OpenJournal(path string) (*Journal, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("experiment: reading journal %s: %w", path, err)
	}
	done := make(map[string]metrics.MixScore)
	torn, err := scanJournal(path, data, func(_ []byte, e JournalRecord) {
		done[e.Key] = metrics.MixScore{HANTT: e.HANTT, HSTP: e.HSTP}
	})
	if err != nil {
		return nil, err
	}
	if torn > 0 {
		// The process died mid-append. Truncate the fragment away —
		// appending after it would weld two records onto one line — and
		// let the cell rerun.
		if err := os.Truncate(path, int64(len(data)-torn)); err != nil {
			return nil, fmt.Errorf("experiment: truncating torn journal tail in %s: %w", path, err)
		}
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("experiment: opening journal %s: %w", path, err)
	}
	return &Journal{f: f, done: done}, nil
}

// WriteJournal writes records as a fresh journal file at path (truncating
// any previous content), fsynced before returning. The fleet layer uses
// it to seed a replacement worker's checkpoint from the cells a failed
// shard already streamed back.
func WriteJournal(path string, recs []JournalRecord) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("experiment: writing journal %s: %w", path, err)
	}
	w := bufio.NewWriter(f)
	for _, r := range recs {
		line, err := json.Marshal(r)
		if err != nil {
			f.Close()
			return fmt.Errorf("experiment: writing journal %s: %w", path, err)
		}
		w.Write(line)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("experiment: writing journal %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("experiment: syncing journal %s: %w", path, err)
	}
	return f.Close()
}

// CompactJournal rewrites the checkpoint journal at path dropping
// duplicate and torn records: for every cell key the first complete record
// is kept verbatim (byte for byte — later records of a key are superseded
// no-ops, since Journal.Record never re-records a known key), a torn
// trailing fragment is dropped exactly as OpenJournal would drop it, and
// the surviving lines keep their order. The rewrite is atomic (temp file,
// fsync, rename), so a kill mid-compaction leaves either the old or the
// new journal, never a mix. It returns the number of records kept and the
// number of duplicate records dropped (a dropped torn tail is not
// counted: it was never a record).
//
// Journals accumulate duplicates across processes — concatenated shard
// journals, or a reassigned fleet shard whose replacement worker re-ran
// with a shipped seed — which compaction folds away; million-cell sweep
// journals shrink accordingly.
func CompactJournal(path string) (kept, dropped int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, fmt.Errorf("experiment: reading journal %s: %w", path, err)
	}
	var out bytes.Buffer
	seen := make(map[string]bool)
	if _, err := scanJournal(path, data, func(raw []byte, e JournalRecord) {
		if seen[e.Key] {
			dropped++
			return
		}
		seen[e.Key] = true
		kept++
		out.Write(raw)
		out.WriteByte('\n')
	}); err != nil {
		return 0, 0, err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".compact-*")
	if err != nil {
		return 0, 0, fmt.Errorf("experiment: compacting journal %s: %w", path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds
	if _, err := tmp.Write(out.Bytes()); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		return 0, 0, fmt.Errorf("experiment: compacting journal %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return 0, 0, fmt.Errorf("experiment: compacting journal %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, 0, fmt.Errorf("experiment: compacting journal %s: %w", path, err)
	}
	return kept, dropped, nil
}

// Lookup returns the replayed score of a completed cell.
func (j *Journal) Lookup(key CellKey) (metrics.MixScore, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	v, ok := j.done[key.String()]
	return v, ok
}

// Len returns the number of completed cells on record.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Record appends one completed cell, fsyncing before returning so a kill
// after Record never loses the cell. Re-recording a known key is a no-op:
// replayed and cache-served cells flow through Record freely.
func (j *Journal) Record(key CellKey, score metrics.MixScore) error {
	ks := key.String()
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.done[ks]; ok {
		return nil
	}
	line, err := json.Marshal(JournalRecord{Key: ks, HANTT: score.HANTT, HSTP: score.HSTP})
	if err != nil {
		return fmt.Errorf("experiment: journal record: %w", err)
	}
	w := bufio.NewWriter(j.f)
	w.Write(line)
	w.WriteByte('\n')
	if err := w.Flush(); err != nil {
		return fmt.Errorf("experiment: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("experiment: journal sync: %w", err)
	}
	j.done[ks] = score
	return nil
}

// Close releases the journal file. The journal stays readable afterwards
// (lookups keep working); only appends stop.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
