package experiment

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"colab/internal/metrics"
)

// journalEntry is one NDJSON line of a checkpoint journal. Scores are
// marshalled with encoding/json's shortest-round-trip float rendering, so
// a replayed cell is bit-identical to the computed one.
type journalEntry struct {
	Key   string  `json:"key"`
	HANTT float64 `json:"h_antt"`
	HSTP  float64 `json:"h_stp"`
}

// Journal is the checkpoint store of a sweep: an append-only NDJSON file
// of completed cells keyed by CellKey. A batch run with a journal records
// every cell as it completes (each line is flushed and fsynced before the
// cell is reported done), and a restarted run over the same file replays
// completed cells instead of recomputing them — the replayed scores are
// bit-identical, so the resumed sweep's final output matches an
// uninterrupted run byte for byte.
//
// Because entries are keyed, the journal is oblivious to shard layout and
// worker count: any subset of a sweep's cells may be present, and a
// journal written by several sharded processes (one file per shard) can be
// replayed per shard or concatenated. A Journal is safe for concurrent use
// by one process; concurrent processes must use distinct files.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	done map[string]metrics.MixScore
}

// OpenJournal opens (creating if missing) the checkpoint journal at path
// and loads every completed cell. A truncated final line — the signature
// of a kill mid-write — is tolerated and dropped; malformed interior lines
// mean the file is not a journal and error out.
func OpenJournal(path string) (*Journal, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("experiment: reading journal %s: %w", path, err)
	}
	done := make(map[string]metrics.MixScore)
	lines := bytes.Split(data, []byte("\n"))
	for i, line := range lines {
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(trimmed, &e); err != nil || e.Key == "" {
			if i == len(lines)-1 {
				// The file ends without a newline in a half-written record:
				// the process died mid-append. Truncate the fragment away —
				// appending after it would weld two records onto one line —
				// and let the cell rerun.
				if err := os.Truncate(path, int64(len(data)-len(line))); err != nil {
					return nil, fmt.Errorf("experiment: truncating torn journal tail in %s: %w", path, err)
				}
				break
			}
			return nil, fmt.Errorf("experiment: journal %s line %d is not a cell record: %q", path, i+1, trimmed)
		}
		done[e.Key] = metrics.MixScore{HANTT: e.HANTT, HSTP: e.HSTP}
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("experiment: opening journal %s: %w", path, err)
	}
	return &Journal{f: f, done: done}, nil
}

// Lookup returns the replayed score of a completed cell.
func (j *Journal) Lookup(key CellKey) (metrics.MixScore, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	v, ok := j.done[key.String()]
	return v, ok
}

// Len returns the number of completed cells on record.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Record appends one completed cell, fsyncing before returning so a kill
// after Record never loses the cell. Re-recording a known key is a no-op:
// replayed and cache-served cells flow through Record freely.
func (j *Journal) Record(key CellKey, score metrics.MixScore) error {
	ks := key.String()
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.done[ks]; ok {
		return nil
	}
	line, err := json.Marshal(journalEntry{Key: ks, HANTT: score.HANTT, HSTP: score.HSTP})
	if err != nil {
		return fmt.Errorf("experiment: journal record: %w", err)
	}
	w := bufio.NewWriter(j.f)
	w.Write(line)
	w.WriteByte('\n')
	if err := w.Flush(); err != nil {
		return fmt.Errorf("experiment: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("experiment: journal sync: %w", err)
	}
	j.done[ks] = score
	return nil
}

// Close releases the journal file. The journal stays readable afterwards
// (lookups keep working); only appends stop.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
