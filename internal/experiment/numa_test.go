package experiment

import (
	"bytes"
	"strings"
	"testing"

	"colab/internal/cpu"
	"colab/internal/workload"
)

func TestNUMASweepTable(t *testing.T) {
	r := testRunner(t)
	tbl, err := r.NUMASweepTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(NUMASweepCosts()) {
		t.Fatalf("%d rows, want %d", len(tbl.Rows), len(NUMASweepCosts()))
	}
	// Zero-cost row: the topology is inactive, so Linux normalises to
	// itself and no cross-domain hops can be charged.
	row0 := tbl.Rows[0]
	if row0[0] != "0" || row0[1] != "1.000" {
		t.Fatalf("zero-cost linux row drifted: %v", row0)
	}
	if row0[len(row0)-1] != "0" {
		t.Fatalf("zero-cost row charged hops: %v", row0)
	}
	hops := false
	for _, row := range tbl.Rows[1:] {
		if row[len(row)-1] != "0" {
			hops = true
		}
	}
	if !hops {
		t.Fatalf("no cross-domain hops recorded at any non-zero cost")
	}
	out := tbl.String()
	if !strings.Contains(out, "migration-cost sweep") || !strings.Contains(out, "2x2B2S") {
		t.Fatalf("table render drifted:\n%s", out)
	}
}

// TestNUMAMatrixDeterministic pins the parallel-sweep guarantee on a NUMA
// palette: the exported CSV is byte-identical at 1, 4 and 8 workers and
// across independent runners with the same seed.
func TestNUMAMatrixDeterministic(t *testing.T) {
	comp, ok := workload.CompositionByIndex("Rand-7")
	if !ok {
		t.Fatal("Rand-7 missing")
	}
	kinds := []string{SchedLinux, SchedWASH, SchedCOLAB}
	csvOf := func(workers int) string {
		r := testRunner(t)
		r.Workers = workers
		cells, err := r.RunMatrix([]workload.Composition{comp},
			[]cpu.Config{cpu.Config2x2B2S}, kinds)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteCellsCSV(&buf, cells); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	want := csvOf(1)
	if want == "" {
		t.Fatal("empty CSV")
	}
	for _, workers := range []int{4, 8} {
		if got := csvOf(workers); got != want {
			t.Errorf("CSV differs at %d workers", workers)
		}
	}
	// A fresh runner with the same seed reproduces the same bytes.
	if got := csvOf(1); got != want {
		t.Errorf("CSV differs across repeated same-seed runs")
	}
}
