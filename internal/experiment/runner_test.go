package experiment

import (
	"strconv"
	"strings"
	"testing"

	"colab/internal/cpu"
	"colab/internal/perfmodel"
	"colab/internal/workload"
)

func testRunner(t *testing.T) *Runner {
	t.Helper()
	r, err := NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewSchedulerKinds(t *testing.T) {
	r := testRunner(t)
	for _, kind := range append(PaperSchedulers(), AblationSchedulers()...) {
		s, err := r.NewScheduler(kind)
		if err != nil {
			t.Errorf("NewScheduler(%s): %v", kind, err)
			continue
		}
		if s == nil {
			t.Errorf("NewScheduler(%s) = nil", kind)
		}
	}
	if _, err := r.NewScheduler("bogus"); err == nil {
		t.Errorf("unknown kind must error")
	}
}

func TestMixScoreMemoized(t *testing.T) {
	r := testRunner(t)
	comp, _ := workload.CompositionByIndex("Sync-1")
	s1, err := r.MixScore(comp, cpu.Config2B2S, SchedLinux)
	if err != nil {
		t.Fatal(err)
	}
	if s1.HANTT <= 0 || s1.HSTP <= 0 {
		t.Fatalf("degenerate score %+v", s1)
	}
	// A mix always runs slower than each app alone on an all-big machine.
	if s1.HANTT < 1 {
		t.Fatalf("H_ANTT %v < 1 against big-only baseline", s1.HANTT)
	}
	s2, err := r.MixScore(comp, cpu.Config2B2S, SchedLinux)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatalf("memoised score changed: %+v vs %+v", s1, s2)
	}
}

func TestRunMatrixNormalisesToLinux(t *testing.T) {
	r := testRunner(t)
	comp, _ := workload.CompositionByIndex("NSync-1")
	cells, err := r.RunMatrix([]workload.Composition{comp}, []cpu.Config{cpu.Config2B2S}, []string{SchedLinux, SchedCOLAB})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("%d cells", len(cells))
	}
	for _, c := range cells {
		if c.Sched == SchedLinux {
			if c.Norm.HANTT != 1 || c.Norm.HSTP != 1 {
				t.Fatalf("linux norm = %+v", c.Norm)
			}
		} else if c.Norm.HANTT <= 0 {
			t.Fatalf("bad normalised cell %+v", c)
		}
	}
}

func TestAppAlonePreservesThePrograms(t *testing.T) {
	comp, _ := workload.CompositionByIndex("Comp-1")
	mix, err := comp.Build(9)
	if err != nil {
		t.Fatal(err)
	}
	alone, err := specAlone(comp.Spec(), 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(alone.Apps) != 1 {
		t.Fatalf("alone has %d apps", len(alone.Apps))
	}
	mixApp := mix.Apps[1]
	aloneApp := alone.Apps[0]
	if mixApp.Name != aloneApp.Name || mixApp.NumThreads() != aloneApp.NumThreads() {
		t.Fatalf("app identity mismatch")
	}
	for i := range mixApp.Threads {
		if mixApp.Threads[i].Program.TotalWork() != aloneApp.Threads[i].Program.TotalWork() {
			t.Fatalf("thread %d work differs between mix and alone build", i)
		}
	}
	if _, err := specAlone(comp.Spec(), 9, 9); err == nil {
		t.Fatalf("out-of-range app index must error")
	}
}

func TestSingleProgramScore(t *testing.T) {
	r := testRunner(t)
	s, err := r.SingleProgram("swaptions", 4, cpu.Config2B2S, SchedLinux)
	if err != nil {
		t.Fatal(err)
	}
	if s.HNTT < 1 {
		t.Fatalf("single-program H_NTT %v < 1 vs all-big baseline", s.HNTT)
	}
	if s.Bench != "swaptions" || s.Sched != SchedLinux {
		t.Fatalf("labels wrong: %+v", s)
	}
}

func TestStaticTables(t *testing.T) {
	t3 := Table3()
	if len(t3.Rows) != 15 {
		t.Fatalf("Table 3 rows = %d", len(t3.Rows))
	}
	if !strings.Contains(t3.String(), "fluidanimate") {
		t.Fatalf("Table 3 missing fluidanimate")
	}
	t4 := Table4()
	if len(t4.Rows) != 26 {
		t.Fatalf("Table 4 rows = %d", len(t4.Rows))
	}
	if !strings.Contains(t4.String(), "Rand-10") {
		t.Fatalf("Table 4 missing Rand-10")
	}
}

func TestTable2Regeneration(t *testing.T) {
	if testing.Short() {
		t.Skip("training runs are not -short friendly")
	}
	s, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "speedup =") || !strings.Contains(s, "R2=") {
		t.Fatalf("Table 2 output incomplete:\n%s", s)
	}
}

func TestFigure4ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("full single-program sweep is not -short friendly")
	}
	r := testRunner(t)
	tab, err := r.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	// 12 benchmarks + geomean row.
	if len(tab.Rows) != 13 {
		t.Fatalf("Figure 4 rows = %d", len(tab.Rows))
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "geomean" {
		t.Fatalf("missing geomean row")
	}
	linux, wash, colab := parseF(t, last[1]), parseF(t, last[2]), parseF(t, last[3])
	// The paper's single-program ordering: both AMP-aware schedulers beat
	// Linux on average, and COLAB is at least competitive with WASH.
	if wash >= linux {
		t.Errorf("WASH geomean %.3f not better than Linux %.3f", wash, linux)
	}
	if colab >= linux || colab > wash {
		t.Errorf("COLAB geomean %.3f vs wash %.3f vs linux %.3f", colab, wash, linux)
	}
}

func TestOracleAblationRuns(t *testing.T) {
	r := testRunner(t)
	comp, _ := workload.CompositionByIndex("Sync-1")
	s, err := r.MixScore(comp, cpu.Config2B2S, SchedCOLABOracle)
	if err != nil {
		t.Fatal(err)
	}
	if s.HANTT <= 0 {
		t.Fatalf("oracle score %+v", s)
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

// Check that the default trained predictor is wired through NewRunner.
func TestRunnerUsesTrainedModel(t *testing.T) {
	r := testRunner(t)
	if r.Speedup == nil {
		t.Fatal("runner has no speedup predictor")
	}
	m, err := perfmodel.Default()
	if err != nil {
		t.Fatal(err)
	}
	if m.R2 < 0.8 {
		t.Fatalf("default model R2 %v", m.R2)
	}
}
