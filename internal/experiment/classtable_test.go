package experiment

import (
	"context"
	"strings"
	"testing"

	"colab/internal/cpu"
	"colab/internal/workload"
)

// TestClassTableStandardSuite regenerates the Figure 8-style per-class
// table for the four standard-suite scenarios under all five policies
// (Linux joins implicitly as the normalisation reference).
func TestClassTableStandardSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("suite sweep in -short")
	}
	r := testRunner(t)
	kinds := []string{SchedWASH, SchedCOLAB, SchedGTS, SchedEAS}
	tab, err := r.ClassTable(context.Background(), nil, []cpu.Config{cpu.Config2B2S}, kinds)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	for _, class := range []string{"mixed", "interactive", "batch", "memory"} {
		if !strings.Contains(out, class) {
			t.Errorf("table misses class group %q:\n%s", class, out)
		}
	}
	for _, kind := range kinds {
		if !strings.Contains(out, kind+" H_ANTT") {
			t.Errorf("table misses column for %s:\n%s", kind, out)
		}
	}
	if !strings.Contains(out, "geomean") {
		t.Errorf("table misses geomean rows:\n%s", out)
	}
	// Default grouping covers exactly the suite's four classes: four
	// per-config rows plus four geomean rows.
	if got := strings.Count(out, "geomean"); got != 4 {
		t.Errorf("want 4 geomean rows, got %d:\n%s", got, out)
	}
}

// TestScenarioMatrixCells checks the Cell surface ScenarioMatrix exposes:
// scenario names, @class= labels and Linux-normalised scores.
func TestScenarioMatrixCells(t *testing.T) {
	r := testRunner(t)
	spec, err := workload.ResolveSpec("interactive-burst")
	if err != nil {
		t.Fatal(err)
	}
	cells, err := r.ScenarioMatrix([]workload.Spec{spec}, []cpu.Config{cpu.Config2B2S}, []string{SchedCOLAB})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("%d cells, want 1", len(cells))
	}
	c := cells[0]
	if c.Workload != "interactive-burst" || c.Class != workload.Class("interactive") {
		t.Errorf("cell identity = %q/%q", c.Workload, c.Class)
	}
	if c.Raw.HANTT <= 0 || c.Norm.HANTT <= 0 {
		t.Errorf("degenerate scores %+v", c)
	}
	// ClassTable rejects unclassified scenarios by name.
	if _, err := r.ClassTable(context.Background(), []string{"Sync-1"}, []cpu.Config{cpu.Config2B2S}, nil); err == nil || !strings.Contains(err.Error(), "@class=") {
		t.Errorf("unclassified scenario error = %v", err)
	}
}
