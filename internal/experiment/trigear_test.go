package experiment

import (
	"strings"
	"testing"

	"colab/internal/cpu"
	"colab/internal/workload"
)

// TestTriGearAllPolicies drives the 2B2M2S tri-gear machine through the
// experiment harness end-to-end under all five policies (the acceptance
// bar for the multi-tier machine model).
func TestTriGearAllPolicies(t *testing.T) {
	r, err := NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	comp, ok := workload.CompositionByIndex("Rand-7")
	if !ok {
		t.Fatal("Rand-7 missing")
	}
	for _, kind := range TriGearSchedulers() {
		s, err := r.MixScore(comp, cpu.Config2B2M2S, kind)
		if err != nil {
			t.Fatalf("%s on %s: %v", kind, cpu.Config2B2M2S.Name, err)
		}
		if s.HANTT <= 0 || s.HSTP <= 0 {
			t.Errorf("%s: degenerate scores %+v", kind, s)
		}
		t.Logf("%s: HANTT=%.3f HSTP=%.3f", kind, s.HANTT, s.HSTP)
	}
}

// TestTriGearTable renders the full five-policy comparison table.
func TestTriGearTable(t *testing.T) {
	if testing.Short() {
		t.Skip("tri-gear table is not -short")
	}
	r, err := NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := r.TriGearTable()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if len(tbl.Rows) != len(TriGearSchedulers()) {
		t.Fatalf("want %d rows, got %d:\n%s", len(TriGearSchedulers()), len(tbl.Rows), out)
	}
	for _, kind := range TriGearSchedulers() {
		if !strings.Contains(out, kind) {
			t.Errorf("table misses %s:\n%s", kind, out)
		}
	}
	t.Log("\n" + out)
}
