package experiment

import (
	"fmt"
	"strings"
	"testing"

	"colab/internal/cpu"
	"colab/internal/workload"
)

// TestTriGearAllPolicies drives the 2B2M2S tri-gear machine through the
// experiment harness end-to-end under all five policies (the acceptance
// bar for the multi-tier machine model).
func TestTriGearAllPolicies(t *testing.T) {
	r, err := NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	comp, ok := workload.CompositionByIndex("Rand-7")
	if !ok {
		t.Fatal("Rand-7 missing")
	}
	for _, kind := range TriGearSchedulers() {
		s, err := r.MixScore(comp, cpu.Config2B2M2S, kind)
		if err != nil {
			t.Fatalf("%s on %s: %v", kind, cpu.Config2B2M2S.Name, err)
		}
		if s.HANTT <= 0 || s.HSTP <= 0 {
			t.Errorf("%s: degenerate scores %+v", kind, s)
		}
		t.Logf("%s: HANTT=%.3f HSTP=%.3f", kind, s.HANTT, s.HSTP)
	}
}

// TestTriGearTable renders the full five-policy comparison table.
func TestTriGearTable(t *testing.T) {
	if testing.Short() {
		t.Skip("tri-gear table is not -short")
	}
	r, err := NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := r.TriGearTable()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if len(tbl.Rows) != len(TriGearSchedulers()) {
		t.Fatalf("want %d rows, got %d:\n%s", len(TriGearSchedulers()), len(tbl.Rows), out)
	}
	for _, kind := range TriGearSchedulers() {
		if !strings.Contains(out, kind) {
			t.Errorf("table misses %s:\n%s", kind, out)
		}
	}
	// The tri-gear acceptance bar: COLAB's native governor must land below
	// fixed-frequency COLAB on both energy and EDP (columns 3 and 4), and
	// must actually leave the nominal point (f@nom, column 5).
	edp := map[string][3]float64{}
	for _, row := range tbl.Rows {
		var e, d, f float64
		if _, err := fmt.Sscanf(row[3]+" "+row[4]+" "+row[5], "%f %f %f", &e, &d, &f); err != nil {
			t.Fatalf("unparseable row %v: %v", row, err)
		}
		edp[row[0]] = [3]float64{e, d, f}
	}
	fixed, gov := edp[SchedCOLAB], edp[SchedCOLABDVFS]
	if gov[1] >= fixed[1] {
		t.Errorf("colab-dvfs EDP %.3f not below fixed-frequency colab %.3f", gov[1], fixed[1])
	}
	if gov[0] >= fixed[0] {
		t.Errorf("colab-dvfs energy %.3f not below fixed-frequency colab %.3f", gov[0], fixed[0])
	}
	if gov[2] >= 1 || fixed[2] != 1 {
		t.Errorf("residency: colab-dvfs f@nom %.3f (want < 1), colab %.3f (want 1)", gov[2], fixed[2])
	}
	t.Log("\n" + out)
}
