package experiment

import (
	"context"
	"fmt"
	"strconv"
	"testing"

	"colab/internal/cpu"
	"colab/internal/workload"
)

// openSpec is the canonical open-system scenario of the determinism tests:
// a closed Table 4 pair joined mid-run by a replayed arrival and a Poisson
// stream, so every policy sees admissions landing while its labeling state
// is warm.
func openSpec(t *testing.T) workload.Spec {
	t.Helper()
	spec, err := workload.ParseSpec("Sync-1+radix:2@arrive=trace(8ms)+ferret:2@arrive=poisson(6ms)")
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Open() {
		t.Fatal("spec is not open-system")
	}
	return spec
}

// TestOpenSystemDeterministicAcrossWorkers runs an open-system scenario
// with mid-run arrivals under all five canonical policies and requires
// byte-identical scored cells for any Experiment worker count and across
// two independent runs at the same seed.
func TestOpenSystemDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs five policies on a full open mix; not -short")
	}
	policies := []string{SchedLinux, SchedWASH, SchedCOLAB, SchedGTS, SchedEAS}
	render := func(workers int) string {
		b := &Batch{
			Scenarios: []workload.Spec{openSpec(t)},
			Configs:   []cpu.Config{cpu.Config2B2S},
			Policies:  policies,
			Seeds:     []uint64{1},
			Workers:   workers,
		}
		cells, err := b.Run(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		out := ""
		for _, c := range cells {
			if c.Score.HANTT <= 0 || c.Score.HSTP <= 0 {
				t.Fatalf("degenerate score for %+v: %+v", c.Key, c.Score)
			}
			out += fmt.Sprintf("%s|%s|%s|%d HANTT=%s HSTP=%s\n",
				c.Key.Workload, c.Key.Config, c.Key.Policy, c.Key.Seed,
				strconv.FormatFloat(c.Score.HANTT, 'g', -1, 64),
				strconv.FormatFloat(c.Score.HSTP, 'g', -1, 64))
		}
		return out
	}
	ref := render(1)
	for _, workers := range []int{4, 8} {
		if got := render(workers); got != ref {
			t.Errorf("workers=%d differs from workers=1:\n%s\nvs\n%s", workers, got, ref)
		}
	}
	// A fresh batch (new runner, no shared memo) at the same seed must
	// reproduce the same bytes.
	if got := render(1); got != ref {
		t.Errorf("second run at the same seed differs:\n%s\nvs\n%s", got, ref)
	}
}

// An open scenario and its closed counterpart share baselines but score
// differently: arrivals change contention, and turnaround is measured from
// each app's own arrival.
func TestOpenScenarioScoresDifferFromClosed(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates two full mixes; not -short")
	}
	r, err := NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	closed, err := workload.ParseSpec("ferret:4+bodytrack:4")
	if err != nil {
		t.Fatal(err)
	}
	open, err := workload.ParseSpec("ferret:4+bodytrack:4@arrive=40ms")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := r.ScenarioScore(closed, cpu.Config2B2S, SchedCOLAB)
	if err != nil {
		t.Fatal(err)
	}
	so, err := r.ScenarioScore(open, cpu.Config2B2S, SchedCOLAB)
	if err != nil {
		t.Fatal(err)
	}
	if sc == so {
		t.Fatalf("open and closed scenarios scored identically: %+v", sc)
	}
	// Staggering arrivals reduces overlap, so the average slowdown must
	// not get worse.
	if so.HANTT > sc.HANTT {
		t.Errorf("staggered arrivals increased H_ANTT: closed %v, open %v", sc.HANTT, so.HANTT)
	}
}
