package experiment

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/policy"
	"colab/internal/workload"
)

// CellKey is the canonical closed-form identity of one experiment cell:
// what must match for two runs to be guaranteed byte-identical. It is the
// single content-address used by baseline dedup, the checkpoint journal
// and the colab-serve cell cache — every consumer keys off the same five
// coordinates:
//
//   - Scenario: the scenario's canonical grammar form (the fuzz-pinned
//     fixed point of workload.Spec.Canonical), so every spelling of one
//     scenario shares an identity;
//   - Policy: the canonical policy name (policy.Canonical), so every
//     spelling of one stage composition shares an identity;
//   - Machine: the machine fingerprint (cpu.Config.Fingerprint): config
//     name plus a structural digest, so same-named but different machines
//     never collide;
//   - Seed: the workload-generation seed;
//   - Params: a digest of the normalised kernel cost parameters
//     (kernel.Params.Canonical), so a zero Params and its spelled-out
//     defaults share an identity.
//
// CellKey is a comparable value type; String renders a stable one-line
// form that ParseCellKey round-trips exactly.
type CellKey struct {
	Scenario string
	Policy   string
	Machine  string
	Seed     uint64
	Params   string
}

// NewCellKey derives the canonical key of (scenario, policy, machine,
// seed, params).
func NewCellKey(spec workload.Spec, policyName string, cfg cpu.Config, seed uint64, params kernel.Params) CellKey {
	return CellKey{
		Scenario: spec.Canonical(),
		Policy:   policy.Canonical(policyName),
		Machine:  cfg.Fingerprint(),
		Seed:     seed,
		Params:   ParamsDigest(params),
	}
}

// ParamsDigest returns the 64-bit digest of the normalised kernel params
// that CellKey.Params carries.
func ParamsDigest(p kernel.Params) string {
	c := p.Canonical()
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d|%d|%v", c.ContextSwitchCost, c.MigrationCost, c.MaxEvents, c.CounterNoiseSeed, c.Power)
	return fmt.Sprintf("%016x", h.Sum64())
}

// String renders the key as five '|'-separated fields
// (scenario|policy|machine|seed|params) with '%' and '|' percent-escaped
// inside fields. The rendering is stable across runs and processes for
// equal keys, and ParseCellKey(k.String()) == k.
func (k CellKey) String() string {
	return strings.Join([]string{
		escapeKeyField(k.Scenario),
		escapeKeyField(k.Policy),
		escapeKeyField(k.Machine),
		strconv.FormatUint(k.Seed, 10),
		escapeKeyField(k.Params),
	}, "|")
}

// ParseCellKey parses a String rendering back into the key.
func ParseCellKey(s string) (CellKey, error) {
	parts := strings.Split(s, "|")
	if len(parts) != 5 {
		return CellKey{}, fmt.Errorf("experiment: cell key %q has %d fields, want 5 (scenario|policy|machine|seed|params)", s, len(parts))
	}
	seed, err := strconv.ParseUint(parts[3], 10, 64)
	if err != nil {
		return CellKey{}, fmt.Errorf("experiment: cell key %q: bad seed field: %v", s, err)
	}
	fields := make([]string, 0, 4)
	for _, i := range []int{0, 1, 2, 4} {
		f, err := unescapeKeyField(parts[i])
		if err != nil {
			return CellKey{}, fmt.Errorf("experiment: cell key %q: %v", s, err)
		}
		fields = append(fields, f)
	}
	return CellKey{Scenario: fields[0], Policy: fields[1], Machine: fields[2], Seed: seed, Params: fields[3]}, nil
}

// escapeKeyField protects the field separator: '%' and '|' become %25 and
// %7C; everything else (the grammar's ':', '+', '@', '(', ')' included)
// stays readable.
func escapeKeyField(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	return strings.ReplaceAll(s, "|", "%7C")
}

func unescapeKeyField(s string) (string, error) {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '%' {
			sb.WriteByte(s[i])
			continue
		}
		if i+2 >= len(s) {
			return "", fmt.Errorf("truncated escape %q", s[i:])
		}
		switch s[i+1 : i+3] {
		case "25":
			sb.WriteByte('%')
		case "7C", "7c":
			sb.WriteByte('|')
		default:
			return "", fmt.Errorf("unknown escape %%%s", s[i+1:i+3])
		}
		i += 2
	}
	return sb.String(), nil
}
