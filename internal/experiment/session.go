package experiment

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/metrics"
	"colab/internal/perfmodel"
	"colab/internal/policy"
	"colab/internal/sim"
	"colab/internal/task"
	"colab/internal/workload"
)

// BatchKey identifies one cell of a batch: one (workload, config, policy,
// seed) combination, scored over both core orders.
type BatchKey struct {
	Workload string
	Config   string
	Policy   string
	Seed     uint64
}

// BatchCell is one scored cell. Score is the auto-baselined H_ANTT / H_STP
// pair (big-only-alone baselines, averaged over big-first and little-first
// core orders — exactly what Runner.MixScore computes).
type BatchCell struct {
	Key   BatchKey
	Score metrics.MixScore
	// CellKey is the canonical content address of the cell: the identity
	// the checkpoint journal and the serve cache file it under.
	CellKey CellKey
	// Cached reports the score was replayed from the journal or answered
	// by the cache rather than computed by this run.
	Cached bool
}

// Batch is the context-aware batch executor underneath colab.Experiment:
// it fans the Workloads x Configs x Policies x Seeds cross-product out over
// a worker pool, collecting and caching big-only baselines automatically.
//
// Results are deterministic and independent of Workers: cells come back in
// cross-product order (seeds outermost, then workloads, configs, policies
// innermost) and every cell's value is computed by the same memoised
// single-cell path the legacy Runner uses.
type Batch struct {
	// Workloads are Table 4 compositions to run (closed-system; kept as
	// the typed composition surface).
	Workloads []workload.Composition
	// Scenarios are grammar/registry scenario specs to run; they join
	// Workloads in the cross-product. A converted composition
	// (Composition.Spec) and the composition itself run byte-identically,
	// and open-system specs (with arrival processes) score each app from
	// its own arrival time. At least one workload or scenario is required.
	Scenarios []workload.Spec
	// Configs are the machine shapes to run on (at least one).
	Configs []cpu.Config
	// Policies are registry names (built-in or user-registered).
	Policies []string
	// Seeds drive workload generation; one full sub-matrix per seed.
	Seeds []uint64
	// Params forwards kernel costs.
	Params kernel.Params
	// Workers bounds run parallelism (0 = GOMAXPROCS). A Tracer forces
	// sequential execution regardless, so the event stream is deterministic.
	Workers int
	// Speedup is the predictor handed to AMP-aware policies. When nil, the
	// standard trained model (perfmodel.Default) is substituted.
	Speedup func(*task.Thread) float64
	// TierSpeedup optionally overrides the per-tier predictor used by
	// colab-dvfs (nil = lazily trained tri-gear model).
	TierSpeedup func(*task.Thread, int) float64
	// TierSpeedupTiers is the palette TierSpeedup was trained for (nil
	// applies TierSpeedup on every machine).
	TierSpeedupTiers []cpu.Tier
	// Tracer, when set, receives every scheduling event of every mix run
	// (baseline runs are not traced), tagged with the cell it belongs to
	// and the core order of the run (each cell simulates big-first then
	// little-first; core IDs mean different tiers in the two layouts).
	Tracer func(key BatchKey, bigFirst bool, ev kernel.TraceEvent)
	// ShardIndex/ShardCount split the sweep deterministically across
	// independent processes. The assignment unit is the baseline-sharing
	// group — all cells of one (seed, closed canonical scenario), which
	// share big-only-alone baselines — numbered in cross-product order and
	// dealt round-robin, so no baseline is ever computed by two shards.
	// Every shard derives the identical assignment from the batch spec
	// alone, each returns its own cells in cross-product order, and the
	// union across shards is byte-identical to an unsharded run. Zero
	// ShardCount (or 1) runs everything.
	ShardIndex, ShardCount int
	// Observer, when set, receives every cell of this batch's result set
	// in deterministic cross-product order, each as soon as it and all its
	// predecessors have completed — a streaming face whose delivery order
	// is independent of worker scheduling. Cells are delivered on worker
	// goroutines; observers that need to abort use the run context.
	Observer func(BatchCell)
	// Journal, when set, checkpoints the sweep: completed cells are
	// recorded (fsynced) as they land, and cells already on record are
	// replayed instead of recomputed, so a killed sweep resumes where it
	// died with byte-identical final output.
	Journal *Journal
	// Cache, when set, is the content-addressed cell store consulted
	// before and filled after every cell computation; overlapping batches
	// sharing one Cache dedup their common cells (colab-serve's layer).
	Cache *Cache

	// runners pre-seeds per-seed runners so callers (Runner.RunMatrix) can
	// share memo caches with the batch.
	runners map[uint64]*Runner
}

func (b *Batch) validate() error {
	if len(b.Workloads) == 0 && len(b.Scenarios) == 0 {
		return fmt.Errorf("experiment: batch has no workloads")
	}
	if len(b.Configs) == 0 {
		return fmt.Errorf("experiment: batch has no machine configs")
	}
	if len(b.Policies) == 0 {
		return fmt.Errorf("experiment: batch has no policies")
	}
	if len(b.Seeds) == 0 {
		return fmt.Errorf("experiment: batch has no seeds")
	}
	for _, p := range b.Policies {
		if err := policy.Check(p); err != nil {
			return err
		}
	}
	if b.ShardCount < 0 || b.ShardIndex < 0 {
		return fmt.Errorf("experiment: negative shard coordinates %d/%d", b.ShardIndex, b.ShardCount)
	}
	if b.ShardCount > 0 && b.ShardIndex >= b.ShardCount {
		return fmt.Errorf("experiment: shard index %d out of range for %d shards", b.ShardIndex, b.ShardCount)
	}
	seen := make(map[string]bool, len(b.Configs))
	for _, cfg := range b.Configs {
		if err := cfg.Validate(); err != nil {
			return err
		}
		// Cells are identified by Config.Name; two machines sharing a name
		// would be indistinguishable in results and normalisation.
		if seen[cfg.Name] {
			return fmt.Errorf("experiment: duplicate machine name %q in batch (set distinct Config.Name values)", cfg.Name)
		}
		seen[cfg.Name] = true
	}
	return nil
}

// anyNeedsSpeedup reports whether any policy in the sweep consumes the
// trained speedup predictor; pure-baseline sweeps skip training entirely.
func anyNeedsSpeedup(policies []string) bool {
	for _, p := range policies {
		if policy.NeedsSpeedup(p) {
			return true
		}
	}
	return false
}

// runnerFor returns (building if needed) the memoising runner for one seed.
func (b *Batch) runnerFor(seed uint64, speedup func(*task.Thread) float64) *Runner {
	if r, ok := b.runners[seed]; ok {
		return r
	}
	r := &Runner{
		Speedup:          speedup,
		TierSpeedup:      b.TierSpeedup,
		TierSpeedupTiers: b.TierSpeedupTiers,
		Seed:             seed,
		Params:           b.Params,
		baselines:        make(map[string]sim.Time),
		mixes:            make(map[string]metrics.MixScore),
	}
	if b.runners == nil {
		b.runners = make(map[uint64]*Runner)
	}
	b.runners[seed] = r
	return r
}

// Run executes the batch. It returns one cell per cross-product entry, in
// deterministic order, or the first error. Cancelling ctx aborts promptly
// (the kernel run loop itself is context-checked) and surfaces a wrapped
// ctx.Err().
func (b *Batch) Run(ctx context.Context) ([]BatchCell, error) {
	if err := b.validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("experiment: batch cancelled: %w", err)
	}
	speedup := b.Speedup
	if speedup == nil && anyNeedsSpeedup(b.Policies) {
		model, err := perfmodel.Default()
		if err != nil {
			return nil, fmt.Errorf("experiment: training default speedup model: %w", err)
		}
		speedup = model.ThreadPredictor()
	}

	type job struct {
		rn   *Runner
		spec workload.Spec
		cfg  cpu.Config
		key  BatchKey
		ck   CellKey
	}
	// The plan (planCells) owns the cross-product enumeration and the
	// baseline-sharing-group shard assignment; a sharded run executes its
	// own subsequence of the plan in plan order.
	var jobs []job
	for _, cell := range b.planCells() {
		if b.ShardCount > 1 && cell.shard != b.ShardIndex {
			continue
		}
		jobs = append(jobs, job{b.runnerFor(cell.seed, speedup), cell.spec, cell.cfg, cell.key, cell.ck})
	}

	workers := b.Workers
	if b.Tracer != nil {
		workers = 1 // keep the traced event stream deterministic
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]BatchCell, len(jobs))
	var (
		next     int64
		firstErr error
		errOnce  sync.Once
		wg       sync.WaitGroup
		obsMu    sync.Mutex
		obsDone  []bool
		obsNext  int
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	if b.Observer != nil {
		obsDone = make([]bool, len(jobs))
	}
	// deliver flushes the observer stream: cell i is handed over once every
	// cell before it has completed, so the delivery order is the
	// cross-product order no matter which workers finish first.
	deliver := func(i int) {
		if b.Observer == nil {
			return
		}
		obsMu.Lock()
		obsDone[i] = true
		for obsNext < len(obsDone) && obsDone[obsNext] {
			b.Observer(results[obsNext])
			obsNext++
		}
		obsMu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(jobs) || runCtx.Err() != nil {
					return
				}
				j := jobs[i]
				var (
					score  metrics.MixScore
					cached bool
					err    error
				)
				if b.Journal != nil {
					if v, ok := b.Journal.Lookup(j.ck); ok {
						score, cached = v, true
						if b.Cache != nil {
							b.Cache.Store(j.ck, v)
						}
					}
				}
				if !cached {
					compute := func() (metrics.MixScore, error) {
						var tracer func(bool, kernel.TraceEvent)
						if b.Tracer != nil {
							tracer = func(bigFirst bool, ev kernel.TraceEvent) { b.Tracer(j.key, bigFirst, ev) }
						}
						return j.rn.specScore(runCtx, j.spec, j.cfg, j.key.Policy, tracer)
					}
					if b.Cache != nil {
						score, cached, err = b.Cache.Do(runCtx, j.ck, compute)
					} else {
						score, err = compute()
					}
					if err == nil && b.Journal != nil {
						err = b.Journal.Record(j.ck, score)
					}
				}
				if err != nil {
					fail(err)
					return
				}
				results[i] = BatchCell{Key: j.key, Score: score, CellKey: j.ck, Cached: cached}
				deliver(i)
			}
		}()
	}
	wg.Wait()
	// The parent context's cancellation wins over any per-cell error it
	// caused (aborted cells surface as kernel cancellation errors).
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("experiment: batch cancelled: %w", err)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}
