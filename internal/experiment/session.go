package experiment

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/metrics"
	"colab/internal/perfmodel"
	"colab/internal/policy"
	"colab/internal/sim"
	"colab/internal/task"
	"colab/internal/workload"
)

// BatchKey identifies one cell of a batch: one (workload, config, policy,
// seed) combination, scored over both core orders.
type BatchKey struct {
	Workload string
	Config   string
	Policy   string
	Seed     uint64
}

// BatchCell is one scored cell. Score is the auto-baselined H_ANTT / H_STP
// pair (big-only-alone baselines, averaged over big-first and little-first
// core orders — exactly what Runner.MixScore computes).
type BatchCell struct {
	Key   BatchKey
	Score metrics.MixScore
}

// Batch is the context-aware batch executor underneath colab.Experiment:
// it fans the Workloads x Configs x Policies x Seeds cross-product out over
// a worker pool, collecting and caching big-only baselines automatically.
//
// Results are deterministic and independent of Workers: cells come back in
// cross-product order (seeds outermost, then workloads, configs, policies
// innermost) and every cell's value is computed by the same memoised
// single-cell path the legacy Runner uses.
type Batch struct {
	// Workloads are Table 4 compositions to run (closed-system; kept as
	// the typed composition surface).
	Workloads []workload.Composition
	// Scenarios are grammar/registry scenario specs to run; they join
	// Workloads in the cross-product. A converted composition
	// (Composition.Spec) and the composition itself run byte-identically,
	// and open-system specs (with arrival processes) score each app from
	// its own arrival time. At least one workload or scenario is required.
	Scenarios []workload.Spec
	// Configs are the machine shapes to run on (at least one).
	Configs []cpu.Config
	// Policies are registry names (built-in or user-registered).
	Policies []string
	// Seeds drive workload generation; one full sub-matrix per seed.
	Seeds []uint64
	// Params forwards kernel costs.
	Params kernel.Params
	// Workers bounds run parallelism (0 = GOMAXPROCS). A Tracer forces
	// sequential execution regardless, so the event stream is deterministic.
	Workers int
	// Speedup is the predictor handed to AMP-aware policies. When nil, the
	// standard trained model (perfmodel.Default) is substituted.
	Speedup func(*task.Thread) float64
	// TierSpeedup optionally overrides the per-tier predictor used by
	// colab-dvfs (nil = lazily trained tri-gear model).
	TierSpeedup func(*task.Thread, int) float64
	// TierSpeedupTiers is the palette TierSpeedup was trained for (nil
	// applies TierSpeedup on every machine).
	TierSpeedupTiers []cpu.Tier
	// Tracer, when set, receives every scheduling event of every mix run
	// (baseline runs are not traced), tagged with the cell it belongs to
	// and the core order of the run (each cell simulates big-first then
	// little-first; core IDs mean different tiers in the two layouts).
	Tracer func(key BatchKey, bigFirst bool, ev kernel.TraceEvent)

	// runners pre-seeds per-seed runners so callers (Runner.RunMatrix) can
	// share memo caches with the batch.
	runners map[uint64]*Runner
}

func (b *Batch) validate() error {
	if len(b.Workloads) == 0 && len(b.Scenarios) == 0 {
		return fmt.Errorf("experiment: batch has no workloads")
	}
	if len(b.Configs) == 0 {
		return fmt.Errorf("experiment: batch has no machine configs")
	}
	if len(b.Policies) == 0 {
		return fmt.Errorf("experiment: batch has no policies")
	}
	if len(b.Seeds) == 0 {
		return fmt.Errorf("experiment: batch has no seeds")
	}
	for _, p := range b.Policies {
		if err := policy.Check(p); err != nil {
			return err
		}
	}
	seen := make(map[string]bool, len(b.Configs))
	for _, cfg := range b.Configs {
		if err := cfg.Validate(); err != nil {
			return err
		}
		// Cells are identified by Config.Name; two machines sharing a name
		// would be indistinguishable in results and normalisation.
		if seen[cfg.Name] {
			return fmt.Errorf("experiment: duplicate machine name %q in batch (set distinct Config.Name values)", cfg.Name)
		}
		seen[cfg.Name] = true
	}
	return nil
}

// anyNeedsSpeedup reports whether any policy in the sweep consumes the
// trained speedup predictor; pure-baseline sweeps skip training entirely.
func anyNeedsSpeedup(policies []string) bool {
	for _, p := range policies {
		if policy.NeedsSpeedup(p) {
			return true
		}
	}
	return false
}

// runnerFor returns (building if needed) the memoising runner for one seed.
func (b *Batch) runnerFor(seed uint64, speedup func(*task.Thread) float64) *Runner {
	if r, ok := b.runners[seed]; ok {
		return r
	}
	r := &Runner{
		Speedup:          speedup,
		TierSpeedup:      b.TierSpeedup,
		TierSpeedupTiers: b.TierSpeedupTiers,
		Seed:             seed,
		Params:           b.Params,
		baselines:        make(map[string]sim.Time),
		mixes:            make(map[string]metrics.MixScore),
	}
	if b.runners == nil {
		b.runners = make(map[uint64]*Runner)
	}
	b.runners[seed] = r
	return r
}

// Run executes the batch. It returns one cell per cross-product entry, in
// deterministic order, or the first error. Cancelling ctx aborts promptly
// (the kernel run loop itself is context-checked) and surfaces a wrapped
// ctx.Err().
func (b *Batch) Run(ctx context.Context) ([]BatchCell, error) {
	if err := b.validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("experiment: batch cancelled: %w", err)
	}
	speedup := b.Speedup
	if speedup == nil && anyNeedsSpeedup(b.Policies) {
		model, err := perfmodel.Default()
		if err != nil {
			return nil, fmt.Errorf("experiment: training default speedup model: %w", err)
		}
		speedup = model.ThreadPredictor()
	}

	specs := make([]workload.Spec, 0, len(b.Workloads)+len(b.Scenarios))
	for _, comp := range b.Workloads {
		specs = append(specs, comp.Spec())
	}
	specs = append(specs, b.Scenarios...)

	type job struct {
		rn   *Runner
		spec workload.Spec
		cfg  cpu.Config
		key  BatchKey
	}
	var jobs []job
	for _, seed := range b.Seeds {
		rn := b.runnerFor(seed, speedup)
		for _, spec := range specs {
			for _, cfg := range b.Configs {
				for _, kind := range b.Policies {
					jobs = append(jobs, job{rn, spec, cfg,
						BatchKey{Workload: spec.Name, Config: cfg.Name, Policy: kind, Seed: seed}})
				}
			}
		}
	}

	workers := b.Workers
	if b.Tracer != nil {
		workers = 1 // keep the traced event stream deterministic
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]BatchCell, len(jobs))
	var (
		next     int64
		firstErr error
		errOnce  sync.Once
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(jobs) || runCtx.Err() != nil {
					return
				}
				j := jobs[i]
				var tracer func(bool, kernel.TraceEvent)
				if b.Tracer != nil {
					tracer = func(bigFirst bool, ev kernel.TraceEvent) { b.Tracer(j.key, bigFirst, ev) }
				}
				score, err := j.rn.specScore(runCtx, j.spec, j.cfg, j.key.Policy, tracer)
				if err != nil {
					fail(err)
					return
				}
				results[i] = BatchCell{Key: j.key, Score: score}
			}
		}()
	}
	wg.Wait()
	// The parent context's cancellation wins over any per-cell error it
	// caused (aborted cells surface as kernel cancellation errors).
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("experiment: batch cancelled: %w", err)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}
