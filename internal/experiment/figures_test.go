package experiment

import (
	"strconv"
	"strings"
	"testing"
)

// TestFiguresShareOneMatrix exercises the aggregated figures end-to-end.
// The runner memoises (workload, config, scheduler) cells, so figures 5, 8,
// 9 and the summary share most of their simulations; total cost is roughly
// one full matrix run.
func TestFiguresShareOneMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix figures are not -short friendly")
	}
	r := testRunner(t)

	fig5, err := r.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	// Sync and NSync groups x (4 configs + geomean) rows.
	if len(fig5.Rows) != 10 {
		t.Fatalf("figure 5 rows = %d", len(fig5.Rows))
	}
	assertGroupRow(t, fig5.Rows, "Sync")
	assertGroupRow(t, fig5.Rows, "NSync")

	fig8, err := r.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	assertGroupRow(t, fig8.Rows, "Thread-low")
	assertGroupRow(t, fig8.Rows, "Thread-high")
	// The paper's strongest contrast: COLAB gains much more on thread-low
	// than on thread-high workloads.
	low := geomeanCell(t, fig8.Rows, "Thread-low", 4)
	high := geomeanCell(t, fig8.Rows, "Thread-high", 4)
	if low >= high {
		t.Errorf("thread-low COLAB H_ANTT %.3f not better than thread-high %.3f", low, high)
	}

	fig9, err := r.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	assertGroupRow(t, fig9.Rows, "2-programmed")
	assertGroupRow(t, fig9.Rows, "4-programmed")

	sum, err := r.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Rows) != 2 {
		t.Fatalf("summary rows = %d", len(sum.Rows))
	}
	// Headline ordering: COLAB < WASH < 1.0 on normalised H_ANTT.
	var washANTT, colabANTT float64
	for _, row := range sum.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", row[1], err)
		}
		switch row[0] {
		case SchedWASH:
			washANTT = v
		case SchedCOLAB:
			colabANTT = v
		}
	}
	if !(colabANTT < washANTT && washANTT < 1.0) {
		t.Errorf("headline ordering broken: colab %.3f, wash %.3f", colabANTT, washANTT)
	}

	det, err := r.DetailTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(det.Rows) != 104 {
		t.Fatalf("detail rows = %d, want 26x4", len(det.Rows))
	}
}

func assertGroupRow(t *testing.T, rows [][]string, group string) {
	t.Helper()
	for _, row := range rows {
		if row[0] == group && row[1] == "geomean" {
			return
		}
	}
	t.Fatalf("no geomean row for group %s", group)
}

// geomeanCell fetches the named group's geomean row value at column idx.
func geomeanCell(t *testing.T, rows [][]string, group string, idx int) float64 {
	t.Helper()
	for _, row := range rows {
		if row[0] == group && row[1] == "geomean" {
			v, err := strconv.ParseFloat(row[idx], 64)
			if err != nil {
				t.Fatalf("parse %q: %v", row[idx], err)
			}
			return v
		}
	}
	t.Fatalf("group %s missing", group)
	return 0
}

func TestOptionsAblationTable(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep is not -short friendly")
	}
	r := testRunner(t)
	tab, err := r.Ablation()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(AblationSchedulers()) {
		t.Fatalf("ablation rows = %d", len(tab.Rows))
	}
	vals := map[string]float64{}
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", row[1], err)
		}
		vals[row[0]] = v
	}
	// Disabling the biased-global selector must cost COLAB the most of any
	// single ablation (the coordination is the contribution).
	if vals[SchedCOLABLocal] <= vals[SchedCOLAB] {
		t.Errorf("local-only selector (%v) should be worse than full COLAB (%v)",
			vals[SchedCOLABLocal], vals[SchedCOLAB])
	}
	if !strings.Contains(tab.String(), "colab-noscale") {
		t.Errorf("ablation table missing variants")
	}
}
