package experiment

import (
	"fmt"
	"strings"
	"text/tabwriter"
)

// Table is a rendered experiment artefact (one paper table or figure's
// data series).
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as aligned text.
func (t *Table) String() string {
	var sb strings.Builder
	sb.WriteString("== " + t.Title + " ==\n")
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	if len(t.Header) > 0 {
		fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	}
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
	for _, n := range t.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	return sb.String()
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

func pct(v float64) string { return fmt.Sprintf("%+.1f%%", (v-1)*100) }
