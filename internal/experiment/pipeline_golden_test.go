package experiment

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"colab/internal/cpu"
	"colab/internal/perfmodel"
	"colab/internal/policy"
	"colab/internal/workload"
)

// TestPipelineCompositionsMatchGoldenCorpus is the pipeline-API acceptance
// oracle: the five canonical stage compositions, addressed through the
// registry's composition grammar, must reproduce their monolithic policies
// on every mix cell of the golden corpus to the last bit — the stage
// decomposition is a refactoring of how schedulers are built, not of what
// they do.
func TestPipelineCompositionsMatchGoldenCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus comparison is not -short")
	}
	raw, err := os.ReadFile("testdata/golden_paper_configs.txt")
	if err != nil {
		t.Fatalf("golden corpus missing: %v", err)
	}
	want := make(map[string]string) // "workload|config|policy" -> "HANTT=... HSTP=..."
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if !strings.HasPrefix(line, "mix|") {
			continue
		}
		key, scores, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed corpus line %q", line)
		}
		want[strings.TrimPrefix(key, "mix|")] = scores
	}

	monoliths := []string{SchedLinux, SchedWASH, SchedCOLAB, SchedGTS, SchedEAS}
	var composites []string
	back := make(map[string]string, len(monoliths)) // composition -> monolith name
	for _, name := range monoliths {
		comp, ok := policy.CanonicalComposition(name)
		if !ok {
			t.Fatalf("no canonical composition for %s", name)
		}
		composites = append(composites, comp)
		back[comp] = name
	}

	var mixes []workload.Composition
	for _, idx := range []string{"Sync-2", "NSync-2", "Comm-2", "Comp-2", "Rand-7"} {
		mixes = append(mixes, compByIndex(t, idx))
	}
	b := &Batch{
		Workloads: mixes,
		Configs:   cpu.EvaluatedConfigs(),
		Policies:  composites,
		Seeds:     []uint64{1},
	}
	cells, err := b.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	checked := 0
	for _, c := range cells {
		key := fmt.Sprintf("%s|%s|%s", c.Key.Workload, c.Key.Config, back[c.Key.Policy])
		scores, ok := want[key]
		if !ok {
			t.Fatalf("corpus has no cell %s", key)
		}
		got := fmt.Sprintf("HANTT=%s HSTP=%s", ff(c.Score.HANTT), ff(c.Score.HSTP))
		if got != scores {
			t.Errorf("pipeline %q drifted from monolith on %s:\n  golden:   %s\n  pipeline: %s",
				c.Key.Policy, key, scores, got)
		}
		checked++
	}
	if wantCells := len(mixes) * len(cpu.EvaluatedConfigs()) * len(composites); checked != wantCells {
		t.Fatalf("checked %d cells, want %d", checked, wantCells)
	}
}

// TestHybridPipelineRunsEndToEnd exercises a cross-policy hybrid — COLAB's
// labeler feeding WASH's (CFS) selector — through the registry grammar and
// the batch engine, and checks it is a genuinely distinct scheduler: its
// scores differ from both parents on a contended mix.
func TestHybridPipelineRunsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a full mix; not -short")
	}
	const hybrid = "colab.labeler+wash.selector+colab.governor"
	if err := policy.Check(hybrid); err != nil {
		t.Fatalf("hybrid composition rejected: %v", err)
	}
	b := &Batch{
		Workloads: []workload.Composition{compByIndex(t, "Sync-2")},
		Configs:   []cpu.Config{cpu.Config2B2S},
		Policies:  []string{SchedCOLAB, SchedWASH, hybrid},
		Seeds:     []uint64{1},
	}
	cells, err := b.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	scores := make(map[string]float64, len(cells))
	for _, c := range cells {
		if c.Score.HANTT <= 0 || c.Score.HSTP <= 0 {
			t.Fatalf("%s produced degenerate score %+v", c.Key.Policy, c.Score)
		}
		scores[c.Key.Policy] = c.Score.HANTT
	}
	if scores[hybrid] == scores[SchedCOLAB] || scores[hybrid] == scores[SchedWASH] {
		t.Fatalf("hybrid is not distinct: colab=%v wash=%v hybrid=%v",
			scores[SchedCOLAB], scores[SchedWASH], scores[hybrid])
	}
}

// Canonical identity must also hold under a tiered context: plain
// colab.labeler ignores the per-tier model exactly like the "colab"
// policy (per-tier predictions are the dvfs variant's feature), and the
// colab-dvfs composition matches the colab-dvfs policy when the context
// carries the same tiered predictor. The golden corpus cannot see this —
// it runs with a nil TierSpeedup.
func TestCanonicalIdentityWithTieredContext(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the tri-gear tiered model; not -short")
	}
	tm, err := perfmodel.DefaultTriGear()
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	r.TierSpeedup, r.TierSpeedupTiers = tm.TierPredictor(), tm.Tiers
	comp := compByIndex(t, "Sync-2")
	for _, name := range []string{SchedCOLAB, SchedCOLABDVFS} {
		canonical, ok := policy.CanonicalComposition(name)
		if !ok {
			t.Fatalf("no canonical composition for %s", name)
		}
		mono, err := r.MixScore(comp, cpu.Config2B2M2S, name)
		if err != nil {
			t.Fatal(err)
		}
		pipe, err := r.MixScore(comp, cpu.Config2B2M2S, canonical)
		if err != nil {
			t.Fatal(err)
		}
		if mono != pipe {
			t.Errorf("%s diverges from %s under a tiered context: %+v vs %+v",
				name, canonical, mono, pipe)
		}
	}
}
