package experiment

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"testing"

	"colab/internal/cpu"
	"colab/internal/workload"
)

// goldenPaperLines regenerates the pre-refactor regression corpus: raw
// H_ANTT/H_STP cells, single-program H_NTT rows and energy figures for the
// four paper configs at seed 1. The two-tier machine model is the degenerate
// case of the tiered model, so these numbers must never change.
func goldenPaperLines(t *testing.T) []string {
	t.Helper()
	r, err := NewRunner(1)
	if err != nil {
		t.Fatalf("runner: %v", err)
	}
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	var lines []string
	add := func(format string, args ...any) { lines = append(lines, fmt.Sprintf(format, args...)) }

	mixes := []string{"Sync-2", "NSync-2", "Comm-2", "Comp-2", "Rand-7"}
	kinds := []string{SchedLinux, SchedWASH, SchedCOLAB, SchedGTS, SchedEAS}
	for _, idx := range mixes {
		comp, ok := workload.CompositionByIndex(idx)
		if !ok {
			t.Fatalf("unknown composition %s", idx)
		}
		for _, cfg := range cpu.EvaluatedConfigs() {
			for _, kind := range kinds {
				s, err := r.MixScore(comp, cfg, kind)
				if err != nil {
					t.Fatalf("mix %s %s %s: %v", idx, cfg.Name, kind, err)
				}
				add("mix|%s|%s|%s HANTT=%s HSTP=%s", idx, cfg.Name, kind, ff(s.HANTT), ff(s.HSTP))
			}
		}
	}
	for _, abl := range []string{SchedCOLABNoScale, SchedCOLABLocal, SchedCOLABFlat, SchedCOLABNoPull, SchedCOLABOracle} {
		comp, _ := workload.CompositionByIndex("Sync-2")
		s, err := r.MixScore(comp, cpu.Config2B2S, abl)
		if err != nil {
			t.Fatalf("ablation %s: %v", abl, err)
		}
		add("mix|Sync-2|%s|%s HANTT=%s HSTP=%s", cpu.Config2B2S.Name, abl, ff(s.HANTT), ff(s.HSTP))
	}
	for _, bench := range []string{"radix", "ferret", "fluidanimate"} {
		for _, kind := range PaperSchedulers() {
			s, err := r.SingleProgram(bench, 4, cpu.Config2B2S, kind)
			if err != nil {
				t.Fatalf("single %s %s: %v", bench, kind, err)
			}
			add("single|%s|%s HNTT=%s", bench, kind, ff(s.HNTT))
		}
	}
	for _, kind := range kinds {
		comp, _ := workload.CompositionByIndex("Sync-2")
		w, err := comp.Build(1)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		res, err := r.run(cpu.Config2B4S, kind, w)
		if err != nil {
			t.Fatalf("energy run %s: %v", kind, err)
		}
		add("energy|Sync-2|2B4S|%s E=%s EDP=%s end=%d mig=%d pre=%d sw=%d",
			kind, ff(res.TotalEnergyJ()), ff(res.EnergyDelayProduct()), int64(res.EndTime),
			res.TotalMigrations, res.TotalPreemptions, res.TotalSwitches)
	}
	sort.Strings(lines)
	return lines
}

func TestWriteGolden(t *testing.T) {
	if os.Getenv("GOLDEN_WRITE") == "" {
		t.Skip("set GOLDEN_WRITE=1 to regenerate")
	}
	lines := goldenPaperLines(t)
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	if err := os.WriteFile("testdata/golden_paper_configs.txt", []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
}
