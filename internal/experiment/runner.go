// Package experiment is the evaluation harness: it reproduces the paper's
// 312-simulation matrix (26 Table 4 workloads x 4 hardware configs x 3
// schedulers, each averaged over big-first and little-first core orders),
// the Figure 4 single-program study, the Figure 8/9 regroupings, and the
// design-choice ablations.
package experiment

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/metrics"
	"colab/internal/perfmodel"
	"colab/internal/policy"
	"colab/internal/sim"
	"colab/internal/task"
	"colab/internal/workload"
)

// Scheduler kinds the harness can instantiate: aliases of the registry's
// built-in policy names (internal/policy), kept so existing call sites read
// naturally. Custom registered policies work everywhere these do.
const (
	SchedLinux = policy.Linux
	SchedWASH  = policy.WASH
	SchedCOLAB = policy.COLAB
	SchedGTS   = policy.GTS
	SchedEAS   = policy.EAS
	// SchedCOLABDVFS is COLAB with its native DVFS governor and per-tier
	// trained speedup models (tri-gear extension; identical to SchedCOLAB
	// on fixed-frequency machines apart from the per-tier predictions).
	SchedCOLABDVFS = policy.COLABDVFS
	// Ablation variants of COLAB (DESIGN.md §4).
	SchedCOLABNoScale = policy.COLABNoScale // scale-slice fairness off
	SchedCOLABLocal   = policy.COLABLocal   // biased-global selector off
	SchedCOLABFlat    = policy.COLABFlat    // hierarchical allocator off
	SchedCOLABNoPull  = policy.COLABNoPull  // big-pulls-little off
	SchedCOLABOracle  = policy.COLABOracle  // ground-truth speedup predictor
)

// PaperSchedulers are the three schedulers of the paper's evaluation.
func PaperSchedulers() []string { return []string{SchedLinux, SchedWASH, SchedCOLAB} }

// AblationSchedulers are the extension comparison points.
func AblationSchedulers() []string {
	return []string{SchedCOLAB, SchedCOLABNoScale, SchedCOLABLocal, SchedCOLABFlat, SchedCOLABNoPull, SchedCOLABOracle, SchedGTS, SchedEAS}
}

// Runner executes and memoises simulations. It is safe for concurrent use;
// the heavy entry points fan out over a worker pool internally.
type Runner struct {
	// Speedup is the online predictor given to the AMP-aware schedulers.
	// Defaults to the lazily trained standard model.
	Speedup func(*task.Thread) float64
	// TierSpeedup is the per-tier predictor SchedCOLABDVFS uses. When nil,
	// the lazily trained tri-gear tiered model (perfmodel.DefaultTriGear)
	// is substituted on first use.
	TierSpeedup func(*task.Thread, int) float64
	// TierSpeedupTiers is the palette TierSpeedup was trained for; policies
	// use it to disable per-tier predictions on machines the model does not
	// cover instead of mispredicting through wrong tier indices.
	TierSpeedupTiers []cpu.Tier
	// Seed drives workload generation. Two core orders of the same seed
	// form one experiment.
	Seed uint64
	// Params forwards kernel costs.
	Params kernel.Params
	// Workers bounds run parallelism (0 = GOMAXPROCS).
	Workers int

	mu        sync.Mutex
	baselines map[string]sim.Time
	mixes     map[string]metrics.MixScore
}

// NewRunner returns a Runner using the standard trained speedup model.
func NewRunner(seed uint64) (*Runner, error) {
	model, err := perfmodel.Default()
	if err != nil {
		return nil, fmt.Errorf("experiment: training default speedup model: %w", err)
	}
	return &Runner{
		Speedup:   model.ThreadPredictor(),
		Seed:      seed,
		baselines: make(map[string]sim.Time),
		mixes:     make(map[string]metrics.MixScore),
	}, nil
}

// NewScheduler instantiates a policy by kind through the registry, wiring
// in the runner's speedup predictors. Unknown kinds error with the full
// registered-policy list.
func (r *Runner) NewScheduler(kind string) (kernel.Scheduler, error) {
	return policy.New(kind, policy.Context{
		Speedup:          r.Speedup,
		TierSpeedup:      r.TierSpeedup,
		TierSpeedupTiers: r.TierSpeedupTiers,
	})
}

func (r *Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// run executes one workload on one machine variant.
func (r *Runner) run(cfg cpu.Config, kind string, w *task.Workload) (*kernel.Result, error) {
	return r.runCtx(context.Background(), cfg, kind, w, nil)
}

// runCtx is run with cooperative cancellation and an optional per-event
// tracer.
func (r *Runner) runCtx(ctx context.Context, cfg cpu.Config, kind string, w *task.Workload, tracer func(kernel.TraceEvent)) (*kernel.Result, error) {
	s, err := r.NewScheduler(kind)
	if err != nil {
		return nil, err
	}
	m, err := kernel.NewMachine(cfg, s, w, r.Params)
	if err != nil {
		return nil, err
	}
	if tracer != nil {
		m.SetTracer(tracer)
	}
	return m.RunContext(ctx)
}

// ---------------------------------------------------------------------------
// Baselines: each app of a scenario alone on the all-big variant.

// specAlone rebuilds the scenario and isolates app appIdx, preserving the
// exact thread programs/profiles the app has inside the mix. The isolated
// app runs closed (arrival cleared): the baseline is the app alone with
// the machine to itself from time zero, which open-system turnarounds —
// measured from each app's own arrival — are compared against.
func specAlone(spec workload.Spec, appIdx int, seed uint64) (*task.Workload, error) {
	// The closed build strips arrival shaping without touching program
	// content (machine-dependent load generators like util need no
	// capacity here), so the isolated app runs the mix's exact programs.
	w, err := spec.Closed().Build(seed)
	if err != nil {
		return nil, err
	}
	if appIdx < 0 || appIdx >= len(w.Apps) {
		return nil, fmt.Errorf("experiment: app index %d out of range for %s", appIdx, spec.Name)
	}
	app := w.Apps[appIdx]
	app.Arrival = 0
	return &task.Workload{Name: spec.Name + "/" + app.Name, Apps: []*task.App{app}}, nil
}

// baselineBig is baselineBigCtx for Table 4 compositions (the trigear and
// OPP-sweep tables read baselines directly).
func (r *Runner) baselineBig(comp workload.Composition, appIdx int, cfg cpu.Config) (sim.Time, error) {
	return r.baselineBigCtx(context.Background(), comp.Spec(), appIdx, cfg)
}

// baselineBigCtx returns (cached) the turnaround of scenario app appIdx
// running alone on an all-big machine with the same core count as cfg.
// The cache key is the CellKey of the baseline run itself — the closed
// canonical form of the scenario under linux on the symmetric big machine
// — plus the app index, so arrival variants of one mix share their
// baselines and every shard derives the same key independently.
func (r *Runner) baselineBigCtx(ctx context.Context, spec workload.Spec, appIdx int, cfg cpu.Config) (sim.Time, error) {
	n := cfg.NumCores()
	key := BaselineKey(spec, appIdx, n, r.Seed, r.Params)
	r.mu.Lock()
	if v, ok := r.baselines[key]; ok {
		r.mu.Unlock()
		return v, nil
	}
	r.mu.Unlock()
	w, err := specAlone(spec, appIdx, r.Seed)
	if err != nil {
		return 0, err
	}
	res, err := r.runCtx(ctx, cpu.NewSymmetric(cpu.Big, n), SchedLinux, w, nil)
	if err != nil {
		return 0, fmt.Errorf("experiment: baseline %s app %d: %w", spec.Name, appIdx, err)
	}
	v := res.Apps[0].Turnaround
	r.mu.Lock()
	r.baselines[key] = v
	r.mu.Unlock()
	return v, nil
}

// ---------------------------------------------------------------------------
// Mix experiments.

// MixScore returns the H_ANTT / H_STP of one (workload, config, scheduler)
// cell, averaged over the two core orders, memoised.
func (r *Runner) MixScore(comp workload.Composition, cfg cpu.Config, kind string) (metrics.MixScore, error) {
	return r.specScore(context.Background(), comp.Spec(), cfg, kind, nil)
}

// ScenarioScore is MixScore for a grammar/registry scenario spec: the
// auto-baselined H_ANTT / H_STP of one (scenario, config, scheduler) cell,
// averaged over the two core orders, memoised. Open-system scenarios score
// each app's turnaround from its own arrival time.
func (r *Runner) ScenarioScore(spec workload.Spec, cfg cpu.Config, kind string) (metrics.MixScore, error) {
	return r.specScore(context.Background(), spec, cfg, kind, nil)
}

// BaselineKey is the content address of one big-only-alone baseline: the
// CellKey of the closed scenario under linux on the symmetric big machine,
// suffixed with the app index. Cells of different grammar spellings (and
// of different arrival variants) of one scenario resolve to the same
// baseline keys, which is what lets shards and the serve cache dedup the
// shared baseline work.
func BaselineKey(spec workload.Spec, appIdx, cores int, seed uint64, params kernel.Params) string {
	k := NewCellKey(spec.Closed(), SchedLinux, cpu.NewSymmetric(cpu.Big, cores), seed, params)
	return fmt.Sprintf("%s|app=%d", k, appIdx)
}

// specScore computes (or returns memoised) one cell. A non-nil tracer
// receives every scheduling event of the two mix runs (baseline runs are
// not traced) and disables memoisation for the cell, so the events always
// correspond to a real execution.
func (r *Runner) specScore(ctx context.Context, spec workload.Spec, cfg cpu.Config, kind string, tracer func(bigFirst bool, ev kernel.TraceEvent)) (metrics.MixScore, error) {
	key := NewCellKey(spec, kind, cfg, r.Seed, r.Params).String()
	if tracer == nil {
		r.mu.Lock()
		if v, ok := r.mixes[key]; ok {
			r.mu.Unlock()
			return v, nil
		}
		r.mu.Unlock()
	}

	bases := make([]sim.Time, spec.NumApps())
	for i := range bases {
		b, err := r.baselineBigCtx(ctx, spec, i, cfg)
		if err != nil {
			return metrics.MixScore{}, err
		}
		bases[i] = b
	}
	var total metrics.MixScore
	orders := []bool{true, false} // big-first, little-first (§5.1)
	for _, bigFirst := range orders {
		variant := cfg.Ordered(bigFirst)
		w, err := spec.BuildFor(r.Seed, variant.AggregateCapacity())
		if err != nil {
			return metrics.MixScore{}, err
		}
		var tr func(kernel.TraceEvent)
		if tracer != nil {
			bf := bigFirst
			tr = func(ev kernel.TraceEvent) { tracer(bf, ev) }
		}
		res, err := r.runCtx(ctx, variant, kind, w, tr)
		if err != nil {
			return metrics.MixScore{}, fmt.Errorf("experiment: %s on %s under %s: %w", spec.Name, variant.Name, kind, err)
		}
		score, err := metrics.Score(res, func(i int, _ kernel.AppResult) sim.Time { return bases[i] })
		if err != nil {
			return metrics.MixScore{}, err
		}
		total.HANTT += score.HANTT / float64(len(orders))
		total.HSTP += score.HSTP / float64(len(orders))
	}
	if tracer == nil {
		r.mu.Lock()
		r.mixes[key] = total
		r.mu.Unlock()
	}
	return total, nil
}

// Cell is one (workload, config, scheduler) outcome normalised to Linux.
type Cell struct {
	Workload string
	Class    workload.Class
	Config   string
	Sched    string
	Raw      metrics.MixScore
	Norm     metrics.MixScore // relative to Linux on the same workload+config
}

// RunMatrix evaluates the given compositions x configs x schedulers in
// parallel and returns one Cell per combination. Linux cells carry
// Norm = {1, 1}.
func (r *Runner) RunMatrix(comps []workload.Composition, cfgs []cpu.Config, kinds []string) ([]Cell, error) {
	return r.RunMatrixContext(context.Background(), comps, cfgs, kinds)
}

// RunMatrixContext is RunMatrix with cooperative cancellation. The fan-out
// goes through the Batch session engine (sharing this runner's memo
// caches); the normalised Cell assembly then reads the warmed cache.
func (r *Runner) RunMatrixContext(ctx context.Context, comps []workload.Composition, cfgs []cpu.Config, kinds []string) ([]Cell, error) {
	// Linux is always included: it is the normalisation reference.
	seen := map[string]bool{}
	var all []string
	for _, k := range append([]string{SchedLinux}, kinds...) {
		if seen[k] {
			continue
		}
		seen[k] = true
		all = append(all, k)
	}
	b := &Batch{
		Workloads:        comps,
		Configs:          cfgs,
		Policies:         all,
		Seeds:            []uint64{r.Seed},
		Params:           r.Params,
		Workers:          r.workers(),
		Speedup:          r.Speedup,
		TierSpeedup:      r.TierSpeedup,
		TierSpeedupTiers: r.TierSpeedupTiers,
		runners:          map[uint64]*Runner{r.Seed: r},
	}
	if _, err := b.Run(ctx); err != nil {
		return nil, err
	}
	var cells []Cell
	for _, c := range comps {
		for _, cfg := range cfgs {
			ref, err := r.MixScore(c, cfg, SchedLinux)
			if err != nil {
				return nil, err
			}
			for _, k := range kinds {
				raw, err := r.MixScore(c, cfg, k)
				if err != nil {
					return nil, err
				}
				cells = append(cells, Cell{
					Workload: c.Index,
					Class:    c.Class,
					Config:   cfg.Name,
					Sched:    k,
					Raw:      raw,
					Norm:     metrics.Normalized(raw, ref),
				})
			}
		}
	}
	return cells, nil
}

// ---------------------------------------------------------------------------
// Single-program experiments (Figure 4).

// SingleScore is one benchmark's H_NTT under one scheduler.
type SingleScore struct {
	Bench string
	Sched string
	HNTT  float64
}

// singleBaseline caches the big-only-alone turnaround of a single-program
// workload.
func (r *Runner) singleBaseline(bench string, threads, cores int) (sim.Time, error) {
	key := fmt.Sprintf("single|%s|%d|%d|%d", bench, threads, cores, r.Seed)
	r.mu.Lock()
	if v, ok := r.baselines[key]; ok {
		r.mu.Unlock()
		return v, nil
	}
	r.mu.Unlock()
	w, err := workload.SingleProgram(bench, threads, r.Seed)
	if err != nil {
		return 0, err
	}
	res, err := r.run(cpu.NewSymmetric(cpu.Big, cores), SchedLinux, w)
	if err != nil {
		return 0, err
	}
	v := res.Apps[0].Turnaround
	r.mu.Lock()
	r.baselines[key] = v
	r.mu.Unlock()
	return v, nil
}

// SingleProgram evaluates one benchmark alone on cfg under kind, averaged
// over core orders, returning H_NTT.
func (r *Runner) SingleProgram(bench string, threads int, cfg cpu.Config, kind string) (SingleScore, error) {
	base, err := r.singleBaseline(bench, threads, cfg.NumCores())
	if err != nil {
		return SingleScore{}, err
	}
	var hntt float64
	orders := []bool{true, false}
	for _, bigFirst := range orders {
		variant := cfg.Ordered(bigFirst)
		w, err := workload.SingleProgram(bench, threads, r.Seed)
		if err != nil {
			return SingleScore{}, err
		}
		res, err := r.run(variant, kind, w)
		if err != nil {
			return SingleScore{}, fmt.Errorf("experiment: single %s on %s under %s: %w", bench, variant.Name, kind, err)
		}
		hntt += metrics.HNTT(res.Apps[0].Turnaround, base) / float64(len(orders))
	}
	return SingleScore{Bench: bench, Sched: kind, HNTT: hntt}, nil
}
