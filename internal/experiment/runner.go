// Package experiment is the evaluation harness: it reproduces the paper's
// 312-simulation matrix (26 Table 4 workloads x 4 hardware configs x 3
// schedulers, each averaged over big-first and little-first core orders),
// the Figure 4 single-program study, the Figure 8/9 regroupings, and the
// design-choice ablations.
package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/metrics"
	"colab/internal/perfmodel"
	"colab/internal/sched/cfs"
	"colab/internal/sched/colab"
	"colab/internal/sched/eas"
	"colab/internal/sched/gts"
	"colab/internal/sched/wash"
	"colab/internal/sim"
	"colab/internal/task"
	"colab/internal/workload"
)

// Scheduler kinds the harness can instantiate.
const (
	SchedLinux = "linux"
	SchedWASH  = "wash"
	SchedCOLAB = "colab"
	SchedGTS   = "gts"
	SchedEAS   = "eas"
	// SchedCOLABDVFS is COLAB with its native DVFS governor and per-tier
	// trained speedup models (tri-gear extension; identical to SchedCOLAB
	// on fixed-frequency machines apart from the per-tier predictions).
	SchedCOLABDVFS = "colab-dvfs"
	// Ablation variants of COLAB (DESIGN.md §4).
	SchedCOLABNoScale = "colab-noscale" // scale-slice fairness off
	SchedCOLABLocal   = "colab-local"   // biased-global selector off
	SchedCOLABFlat    = "colab-flat"    // hierarchical allocator off
	SchedCOLABNoPull  = "colab-nopull"  // big-pulls-little off
	SchedCOLABOracle  = "colab-oracle"  // ground-truth speedup predictor
)

// PaperSchedulers are the three schedulers of the paper's evaluation.
func PaperSchedulers() []string { return []string{SchedLinux, SchedWASH, SchedCOLAB} }

// AblationSchedulers are the extension comparison points.
func AblationSchedulers() []string {
	return []string{SchedCOLAB, SchedCOLABNoScale, SchedCOLABLocal, SchedCOLABFlat, SchedCOLABNoPull, SchedCOLABOracle, SchedGTS, SchedEAS}
}

// Runner executes and memoises simulations. It is safe for concurrent use;
// the heavy entry points fan out over a worker pool internally.
type Runner struct {
	// Speedup is the online predictor given to the AMP-aware schedulers.
	// Defaults to the lazily trained standard model.
	Speedup func(*task.Thread) float64
	// TierSpeedup is the per-tier predictor SchedCOLABDVFS uses. When nil,
	// the lazily trained tri-gear tiered model (perfmodel.DefaultTriGear)
	// is substituted on first use.
	TierSpeedup func(*task.Thread, int) float64
	// Seed drives workload generation. Two core orders of the same seed
	// form one experiment.
	Seed uint64
	// Params forwards kernel costs.
	Params kernel.Params
	// Workers bounds run parallelism (0 = GOMAXPROCS).
	Workers int

	mu        sync.Mutex
	baselines map[string]sim.Time
	mixes     map[string]metrics.MixScore
}

// NewRunner returns a Runner using the standard trained speedup model.
func NewRunner(seed uint64) (*Runner, error) {
	model, err := perfmodel.Default()
	if err != nil {
		return nil, fmt.Errorf("experiment: training default speedup model: %w", err)
	}
	return &Runner{
		Speedup:   model.ThreadPredictor(),
		Seed:      seed,
		baselines: make(map[string]sim.Time),
		mixes:     make(map[string]metrics.MixScore),
	}, nil
}

// NewScheduler instantiates a policy by kind, wiring in the runner's
// speedup predictor.
func (r *Runner) NewScheduler(kind string) (kernel.Scheduler, error) {
	switch kind {
	case SchedLinux:
		return cfs.New(cfs.Options{}), nil
	case SchedWASH:
		return wash.New(wash.Options{Speedup: r.Speedup}), nil
	case SchedCOLAB:
		return colab.New(colab.Options{Speedup: r.Speedup}), nil
	case SchedGTS:
		return gts.New(gts.Options{}), nil
	case SchedEAS:
		return eas.New(eas.Options{}), nil
	case SchedCOLABDVFS:
		o := colab.Options{Speedup: r.Speedup, Governor: true}
		if r.TierSpeedup != nil {
			o.TierSpeedup = r.TierSpeedup
		} else {
			tm, err := perfmodel.DefaultTriGear()
			if err != nil {
				return nil, fmt.Errorf("experiment: training tri-gear tiered model: %w", err)
			}
			// The palette lets the policy disable per-tier predictions on
			// machines the model was not trained for (e.g. the two-tier
			// paper configs) instead of mispredicting through wrong tier
			// indices.
			o.TierSpeedup, o.TierSpeedupTiers = tm.TierPredictor(), tm.Tiers
		}
		return colab.New(o), nil
	case SchedCOLABNoScale:
		return colab.New(colab.Options{Speedup: r.Speedup, DisableScaleSlice: true}), nil
	case SchedCOLABLocal:
		return colab.New(colab.Options{Speedup: r.Speedup, LocalOnlySelector: true}), nil
	case SchedCOLABFlat:
		return colab.New(colab.Options{Speedup: r.Speedup, FlatAllocator: true}), nil
	case SchedCOLABNoPull:
		return colab.New(colab.Options{Speedup: r.Speedup, DisablePull: true}), nil
	case SchedCOLABOracle:
		return colab.New(colab.Options{Speedup: perfmodel.Oracle()}), nil
	default:
		return nil, fmt.Errorf("experiment: unknown scheduler kind %q", kind)
	}
}

func (r *Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// run executes one workload on one machine variant.
func (r *Runner) run(cfg cpu.Config, kind string, w *task.Workload) (*kernel.Result, error) {
	s, err := r.NewScheduler(kind)
	if err != nil {
		return nil, err
	}
	m, err := kernel.NewMachine(cfg, s, w, r.Params)
	if err != nil {
		return nil, err
	}
	return m.Run()
}

// ---------------------------------------------------------------------------
// Baselines: each app of a composition alone on the all-big variant.

// appAlone rebuilds the composition and isolates app appIdx, preserving the
// exact thread programs/profiles the app has inside the mix.
func appAlone(comp workload.Composition, appIdx int, seed uint64) (*task.Workload, error) {
	w, err := comp.Build(seed)
	if err != nil {
		return nil, err
	}
	if appIdx < 0 || appIdx >= len(w.Apps) {
		return nil, fmt.Errorf("experiment: app index %d out of range for %s", appIdx, comp.Index)
	}
	app := w.Apps[appIdx]
	return &task.Workload{Name: comp.Index + "/" + app.Name, Apps: []*task.App{app}}, nil
}

// baselineBig returns (cached) the turnaround of composition app appIdx
// running alone on an all-big machine with the same core count as cfg.
func (r *Runner) baselineBig(comp workload.Composition, appIdx int, cfg cpu.Config) (sim.Time, error) {
	n := cfg.NumCores()
	key := fmt.Sprintf("%s|%d|%d|%d", comp.Index, appIdx, n, r.Seed)
	r.mu.Lock()
	if v, ok := r.baselines[key]; ok {
		r.mu.Unlock()
		return v, nil
	}
	r.mu.Unlock()
	w, err := appAlone(comp, appIdx, r.Seed)
	if err != nil {
		return 0, err
	}
	res, err := r.run(cpu.NewSymmetric(cpu.Big, n), SchedLinux, w)
	if err != nil {
		return 0, fmt.Errorf("experiment: baseline %s app %d: %w", comp.Index, appIdx, err)
	}
	v := res.Apps[0].Turnaround
	r.mu.Lock()
	r.baselines[key] = v
	r.mu.Unlock()
	return v, nil
}

// ---------------------------------------------------------------------------
// Mix experiments.

// MixScore returns the H_ANTT / H_STP of one (workload, config, scheduler)
// cell, averaged over the two core orders, memoised.
func (r *Runner) MixScore(comp workload.Composition, cfg cpu.Config, kind string) (metrics.MixScore, error) {
	key := fmt.Sprintf("%s|%s|%s|%d", comp.Index, cfg.Name, kind, r.Seed)
	r.mu.Lock()
	if v, ok := r.mixes[key]; ok {
		r.mu.Unlock()
		return v, nil
	}
	r.mu.Unlock()

	bases := make([]sim.Time, len(comp.Parts))
	for i := range comp.Parts {
		b, err := r.baselineBig(comp, i, cfg)
		if err != nil {
			return metrics.MixScore{}, err
		}
		bases[i] = b
	}
	var total metrics.MixScore
	orders := []bool{true, false} // big-first, little-first (§5.1)
	for _, bigFirst := range orders {
		variant := cfg.Ordered(bigFirst)
		w, err := comp.Build(r.Seed)
		if err != nil {
			return metrics.MixScore{}, err
		}
		res, err := r.run(variant, kind, w)
		if err != nil {
			return metrics.MixScore{}, fmt.Errorf("experiment: %s on %s under %s: %w", comp.Index, variant.Name, kind, err)
		}
		score, err := metrics.Score(res, func(i int, _ kernel.AppResult) sim.Time { return bases[i] })
		if err != nil {
			return metrics.MixScore{}, err
		}
		total.HANTT += score.HANTT / float64(len(orders))
		total.HSTP += score.HSTP / float64(len(orders))
	}
	r.mu.Lock()
	r.mixes[key] = total
	r.mu.Unlock()
	return total, nil
}

// Cell is one (workload, config, scheduler) outcome normalised to Linux.
type Cell struct {
	Workload string
	Class    workload.Class
	Config   string
	Sched    string
	Raw      metrics.MixScore
	Norm     metrics.MixScore // relative to Linux on the same workload+config
}

// RunMatrix evaluates the given compositions x configs x schedulers in
// parallel and returns one Cell per combination. Linux cells carry
// Norm = {1, 1}.
func (r *Runner) RunMatrix(comps []workload.Composition, cfgs []cpu.Config, kinds []string) ([]Cell, error) {
	type job struct {
		comp workload.Composition
		cfg  cpu.Config
		kind string
	}
	var jobs []job
	for _, c := range comps {
		for _, cfg := range cfgs {
			// Linux first so the normalisation reference is always present.
			seen := map[string]bool{}
			for _, k := range append([]string{SchedLinux}, kinds...) {
				if seen[k] {
					continue
				}
				seen[k] = true
				jobs = append(jobs, job{c, cfg, k})
			}
		}
	}
	sem := make(chan struct{}, r.workers())
	var wg sync.WaitGroup
	errs := make([]error, len(jobs))
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			_, errs[i] = r.MixScore(j.comp, j.cfg, j.kind)
		}(i, j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var cells []Cell
	for _, c := range comps {
		for _, cfg := range cfgs {
			ref, err := r.MixScore(c, cfg, SchedLinux)
			if err != nil {
				return nil, err
			}
			for _, k := range kinds {
				raw, err := r.MixScore(c, cfg, k)
				if err != nil {
					return nil, err
				}
				cells = append(cells, Cell{
					Workload: c.Index,
					Class:    c.Class,
					Config:   cfg.Name,
					Sched:    k,
					Raw:      raw,
					Norm:     metrics.Normalized(raw, ref),
				})
			}
		}
	}
	return cells, nil
}

// ---------------------------------------------------------------------------
// Single-program experiments (Figure 4).

// SingleScore is one benchmark's H_NTT under one scheduler.
type SingleScore struct {
	Bench string
	Sched string
	HNTT  float64
}

// singleBaseline caches the big-only-alone turnaround of a single-program
// workload.
func (r *Runner) singleBaseline(bench string, threads, cores int) (sim.Time, error) {
	key := fmt.Sprintf("single|%s|%d|%d|%d", bench, threads, cores, r.Seed)
	r.mu.Lock()
	if v, ok := r.baselines[key]; ok {
		r.mu.Unlock()
		return v, nil
	}
	r.mu.Unlock()
	w, err := workload.SingleProgram(bench, threads, r.Seed)
	if err != nil {
		return 0, err
	}
	res, err := r.run(cpu.NewSymmetric(cpu.Big, cores), SchedLinux, w)
	if err != nil {
		return 0, err
	}
	v := res.Apps[0].Turnaround
	r.mu.Lock()
	r.baselines[key] = v
	r.mu.Unlock()
	return v, nil
}

// SingleProgram evaluates one benchmark alone on cfg under kind, averaged
// over core orders, returning H_NTT.
func (r *Runner) SingleProgram(bench string, threads int, cfg cpu.Config, kind string) (SingleScore, error) {
	base, err := r.singleBaseline(bench, threads, cfg.NumCores())
	if err != nil {
		return SingleScore{}, err
	}
	var hntt float64
	orders := []bool{true, false}
	for _, bigFirst := range orders {
		variant := cfg.Ordered(bigFirst)
		w, err := workload.SingleProgram(bench, threads, r.Seed)
		if err != nil {
			return SingleScore{}, err
		}
		res, err := r.run(variant, kind, w)
		if err != nil {
			return SingleScore{}, fmt.Errorf("experiment: single %s on %s under %s: %w", bench, variant.Name, kind, err)
		}
		hntt += metrics.HNTT(res.Apps[0].Turnaround, base) / float64(len(orders))
	}
	return SingleScore{Bench: bench, Sched: kind, HNTT: hntt}, nil
}
