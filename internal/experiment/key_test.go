package experiment

import (
	"strings"
	"testing"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/workload"
)

func specFor(t *testing.T, name string) workload.Spec {
	t.Helper()
	spec, err := workload.ResolveSpec(name)
	if err != nil {
		t.Fatalf("ResolveSpec(%q): %v", name, err)
	}
	return spec
}

func TestCellKeyRoundTripAndStability(t *testing.T) {
	specs := []string{
		"Sync-2",
		"ferret:4+bodytrack:8",
		"Sync-2@seed=7",
		"ferret:4@arrive=poisson(5ms)",
		"ferret*3@arrive=uniform(0ns,40ms)",
	}
	for _, name := range specs {
		k := NewCellKey(specFor(t, name), SchedCOLAB, cpu.Config2B2S, 3, kernel.Params{})
		s := k.String()
		back, err := ParseCellKey(s)
		if err != nil {
			t.Fatalf("ParseCellKey(%q): %v", s, err)
		}
		if back != k {
			t.Errorf("round trip changed key: %+v -> %+v", k, back)
		}
		// Stable: deriving the key again renders identically.
		if again := NewCellKey(specFor(t, name), SchedCOLAB, cpu.Config2B2S, 3, kernel.Params{}).String(); again != s {
			t.Errorf("key not stable across derivations: %q vs %q", s, again)
		}
	}
}

// Every spelling of one cell must share one key: scenario grammar
// spellings canonicalise, policy composition spellings canonicalise, and
// zero params hash like their spelled-out defaults.
func TestCellKeyCanonicalSharing(t *testing.T) {
	base := NewCellKey(specFor(t, "ferret:4+bodytrack:8"), "wash.labeler", cpu.Config2B2S, 1, kernel.Params{})
	grammar := NewCellKey(specFor(t, " ferret:4 + bodytrack:8 "), "linux.selector+wash.labeler+linux.allocator", cpu.Config2B2S, 1, kernel.Params{})
	if base != grammar {
		t.Errorf("equivalent spellings produced distinct keys:\n%s\n%s", base, grammar)
	}
	spelled := kernel.Params{
		ContextSwitchCost: kernel.DefaultContextSwitchCost,
		MigrationCost:     kernel.DefaultMigrationCost,
		MaxEvents:         kernel.DefaultMaxEvents,
	}
	if ParamsDigest(kernel.Params{}) != ParamsDigest(spelled) {
		t.Error("zero params and spelled-out defaults must share a digest")
	}
	if ParamsDigest(kernel.Params{}) == ParamsDigest(kernel.Params{MigrationCost: 1}) {
		t.Error("different params must not share a digest")
	}
}

// Distinct coordinates must produce distinct keys, including same-named
// but structurally different machines.
func TestCellKeyDiscriminates(t *testing.T) {
	spec := specFor(t, "Sync-2")
	base := NewCellKey(spec, SchedLinux, cpu.Config2B2S, 1, kernel.Params{})
	renamed := cpu.Config2B4S
	renamed.Name = cpu.Config2B2S.Name
	for what, other := range map[string]CellKey{
		"policy":  NewCellKey(spec, SchedWASH, cpu.Config2B2S, 1, kernel.Params{}),
		"seed":    NewCellKey(spec, SchedLinux, cpu.Config2B2S, 2, kernel.Params{}),
		"machine": NewCellKey(spec, SchedLinux, renamed, 1, kernel.Params{}),
		"params":  NewCellKey(spec, SchedLinux, cpu.Config2B2S, 1, kernel.Params{MaxEvents: 7}),
	} {
		if other == base {
			t.Errorf("%s change did not change the key: %s", what, base)
		}
	}
}

func TestCellKeyEscaping(t *testing.T) {
	k := CellKey{Scenario: "a|b%7C", Policy: "p%", Machine: "m", Seed: 9, Params: "00"}
	back, err := ParseCellKey(k.String())
	if err != nil {
		t.Fatalf("ParseCellKey(%q): %v", k.String(), err)
	}
	if back != k {
		t.Errorf("escaped round trip changed key: %+v -> %+v", k, back)
	}
	if _, err := ParseCellKey("only|three|fields"); err == nil {
		t.Error("short key must not parse")
	}
	if _, err := ParseCellKey("a|b|c|notanumber|e"); err == nil {
		t.Error("non-numeric seed must not parse")
	}
}

// The baseline key is shared by arrival variants and grammar spellings of
// one scenario — that sharing is what dedups baselines across shards.
func TestBaselineKeySharedAcrossArrivalVariants(t *testing.T) {
	p := kernel.Params{}
	closed := BaselineKey(specFor(t, "Sync-2"), 0, 4, 1, p)
	open := BaselineKey(specFor(t, "Sync-2@arrive=poisson(5ms)"), 0, 4, 1, p)
	if closed != open {
		t.Errorf("arrival variant changed the baseline key:\n%s\n%s", closed, open)
	}
	if other := BaselineKey(specFor(t, "Sync-2"), 1, 4, 1, p); other == closed {
		t.Error("app index must discriminate baseline keys")
	}
	if !strings.Contains(closed, "|app=0") {
		t.Errorf("baseline key misses app suffix: %s", closed)
	}
}
