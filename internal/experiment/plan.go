package experiment

import (
	"fmt"

	"colab/internal/cpu"
	"colab/internal/workload"
)

// planCell is one cell of a batch's deterministic execution plan: the
// resolved axes the run needs plus the shard that owns the cell. The plan
// is a pure function of the batch spec, so every process (each shard of a
// sweep, or a fleet coordinator and its workers) derives the identical
// assignment independently.
type planCell struct {
	spec  workload.Spec
	cfg   cpu.Config
	seed  uint64
	shard int
	key   BatchKey
	ck    CellKey
}

// planCells enumerates the full cross-product in deterministic order
// (seeds outermost, then workloads, configs, policies innermost) and
// annotates every cell with its owning shard. Shard assignment works in
// baseline-sharing groups: all cells of one (seed, closed canonical
// scenario) share their big-only-alone baselines, so they travel together
// and no baseline is ever computed by two shards. Groups are numbered in
// first-appearance order and dealt round-robin.
func (b *Batch) planCells() []planCell {
	specs := make([]workload.Spec, 0, len(b.Workloads)+len(b.Scenarios))
	for _, comp := range b.Workloads {
		specs = append(specs, comp.Spec())
	}
	specs = append(specs, b.Scenarios...)

	groups := make(map[string]int)
	var cells []planCell
	for _, seed := range b.Seeds {
		for _, spec := range specs {
			group := fmt.Sprintf("%d|%s", seed, spec.Closed().Canonical())
			gi, ok := groups[group]
			if !ok {
				gi = len(groups)
				groups[group] = gi
			}
			shard := 0
			if b.ShardCount > 1 {
				shard = gi % b.ShardCount
			}
			for _, cfg := range b.Configs {
				for _, kind := range b.Policies {
					cells = append(cells, planCell{
						spec:  spec,
						cfg:   cfg,
						seed:  seed,
						shard: shard,
						key:   BatchKey{Workload: spec.Name, Config: cfg.Name, Policy: kind, Seed: seed},
						ck:    NewCellKey(spec, kind, cfg, seed, b.Params),
					})
				}
			}
		}
	}
	return cells
}

// PlannedCell is one cell of a batch's execution plan as seen from
// outside: its global cross-product index, the shard that owns it, and
// both of its identities (the sweep coordinates and the canonical content
// address). The fleet coordinator plans a sweep with the worker count as
// ShardCount and uses the result to know, for every shard, exactly which
// cells — and in which order — the worker executing that shard will
// stream back.
type PlannedCell struct {
	Index   int
	Shard   int
	Key     BatchKey
	CellKey CellKey
}

// Plan validates the batch and returns its full deterministic execution
// plan: every cell of the cross-product (all shards, regardless of the
// batch's own ShardIndex), in the exact order an unsharded Run returns
// them. A sharded Run executes the subsequence of cells whose Shard
// matches its ShardIndex, preserving this order.
func (b *Batch) Plan() ([]PlannedCell, error) {
	if err := b.validate(); err != nil {
		return nil, err
	}
	cells := b.planCells()
	out := make([]PlannedCell, len(cells))
	for i, c := range cells {
		out[i] = PlannedCell{Index: i, Shard: c.shard, Key: c.key, CellKey: c.ck}
	}
	return out, nil
}
