package experiment

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"colab/internal/cpu"
	"colab/internal/metrics"
	"colab/internal/workload"
)

func TestEnergyTable(t *testing.T) {
	if testing.Short() {
		t.Skip("energy sweep is not -short friendly")
	}
	r := testRunner(t)
	tab, err := r.EnergyTable()
	if err != nil {
		t.Fatal(err)
	}
	// 4 configs x 5 schedulers.
	if len(tab.Rows) != 20 {
		t.Fatalf("energy rows = %d", len(tab.Rows))
	}
	s := tab.String()
	for _, kind := range []string{"linux", "wash", "colab", "gts", "eas"} {
		if !strings.Contains(s, kind) {
			t.Fatalf("energy table missing %s:\n%s", kind, s)
		}
	}
	// Linux rows are the 1.000 reference.
	for _, row := range tab.Rows {
		if row[1] == SchedLinux && (row[2] != "1.000" || row[3] != "1.000") {
			t.Fatalf("linux reference row wrong: %v", row)
		}
	}
}

func TestReplicationTable(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep is not -short friendly")
	}
	tab, err := ReplicationTable([]uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("replication rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if !strings.Contains(row[1], "+/-") || !strings.Contains(row[2], "+/-") {
			t.Fatalf("row without spread: %v", row)
		}
	}
}

func TestWriteCellsCSV(t *testing.T) {
	cells := []Cell{
		{
			Workload: "Sync-1", Class: workload.ClassSync, Config: "2B2S", Sched: "colab",
			Raw:  metrics.MixScore{HANTT: 2.5, HSTP: 1.5},
			Norm: metrics.MixScore{HANTT: 0.9, HSTP: 1.1},
		},
		{
			Workload: "Rand-7", Class: workload.ClassRand, Config: "4B4S", Sched: "wash",
			Raw:  metrics.MixScore{HANTT: 3.0, HSTP: 1.2},
			Norm: metrics.MixScore{HANTT: 1.05, HSTP: 0.98},
		},
	}
	var buf bytes.Buffer
	if err := WriteCellsCSV(&buf, cells); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 { // header + 2 rows
		t.Fatalf("csv records = %d", len(recs))
	}
	if recs[0][0] != "workload" || len(recs[0]) != 8 {
		t.Fatalf("header = %v", recs[0])
	}
	if recs[1][0] != "Sync-1" || recs[1][3] != "colab" || recs[1][6] != "0.900000" {
		t.Fatalf("row = %v", recs[1])
	}
}

func TestFigure8GroupBoundaries(t *testing.T) {
	// 4-thread workloads count as thread-low on the 4-core config; Rand-9
	// (55 threads) is thread-high everywhere; a 9-thread workload on 2B2S
	// is neither.
	if n := coreCount("2B2S"); n != 4 {
		t.Fatalf("coreCount 2B2S = %d", n)
	}
	if n := maxEvaluatedCores(); n != 8 {
		t.Fatalf("max cores = %d", n)
	}
	comp, _ := workload.CompositionByIndex("Sync-1")
	if comp.TotalThreads() > coreCount("2B2S") {
		t.Fatalf("Sync-1 should be thread-low on 2B2S")
	}
	r9, _ := workload.CompositionByIndex("Rand-9")
	if r9.TotalThreads() < 2*maxEvaluatedCores() {
		t.Fatalf("Rand-9 should be thread-high")
	}
}

func TestClassAggregateGeomeans(t *testing.T) {
	cells := []Cell{
		{Workload: "a", Class: workload.ClassSync, Config: "2B2S", Sched: "colab",
			Norm: metrics.MixScore{HANTT: 0.5, HSTP: 2}},
		{Workload: "b", Class: workload.ClassSync, Config: "2B2S", Sched: "colab",
			Norm: metrics.MixScore{HANTT: 2, HSTP: 0.5}},
	}
	tab := classAggregate(cells,
		func(c Cell) (string, bool) { return string(c.Class), true },
		[]string{"Sync"}, []string{"colab"})
	// geomean(0.5, 2) = 1.
	found := false
	for _, row := range tab.Rows {
		if row[1] == "2B2S" {
			found = true
			if row[2] != "1.000" || row[3] != "1.000" {
				t.Fatalf("geomean row = %v", row)
			}
		}
	}
	if !found {
		t.Fatalf("config row missing: %+v", tab.Rows)
	}
}

func TestEvaluatedConfigCoreCounts(t *testing.T) {
	for _, cfg := range cpu.EvaluatedConfigs() {
		if coreCount(cfg.Name) != cfg.NumCores() {
			t.Fatalf("coreCount(%s) = %d", cfg.Name, coreCount(cfg.Name))
		}
	}
	if coreCount("bogus") != 0 {
		t.Fatalf("unknown config must map to 0 cores")
	}
}
