package experiment

import (
	"fmt"
	"strings"

	"colab/internal/cpu"
	"colab/internal/mathx"
	"colab/internal/perfmodel"
	"colab/internal/workload"
)

// Figure4Benches are the twelve single-program benchmarks of Figure 4 (the
// three 2-thread-capped SPLASH-2 kernels are excluded, §5.2).
func Figure4Benches() []string {
	return []string{
		"radix", "lu_ncb", "lu_cb", "fft", "blackscholes", "bodytrack",
		"dedup", "fluidanimate", "swaptions", "ocean_cp", "freqmine", "ferret",
	}
}

// Figure4 reproduces the single-program study: H_NTT per benchmark on the
// 2-big-2-little configuration under Linux, WASH and COLAB.
func (r *Runner) Figure4() (*Table, error) {
	const threads = 4
	cfg := cpu.Config2B2S
	t := &Table{
		Title:  "Figure 4: single-program H_NTT on 2B2S (lower is better)",
		Header: []string{"benchmark", "linux", "wash", "colab"},
	}
	per := map[string][]float64{SchedLinux: nil, SchedWASH: nil, SchedCOLAB: nil}
	for _, bench := range Figure4Benches() {
		row := []string{bench}
		for _, kind := range PaperSchedulers() {
			s, err := r.SingleProgram(bench, threads, cfg, kind)
			if err != nil {
				return nil, err
			}
			per[kind] = append(per[kind], s.HNTT)
			row = append(row, f3(s.HNTT))
		}
		t.AddRow(row...)
	}
	t.AddRow("geomean",
		f3(mathx.GeoMean(per[SchedLinux])),
		f3(mathx.GeoMean(per[SchedWASH])),
		f3(mathx.GeoMean(per[SchedCOLAB])))
	return t, nil
}

// classAggregate geomeans normalised scores over the workloads of each
// (group, config, scheduler) cell.
func classAggregate(cells []Cell, group func(Cell) (string, bool), groups []string, kinds []string) *Table {
	type key struct{ g, cfg, k string }
	antt := map[key][]float64{}
	stp := map[key][]float64{}
	var cfgs []string
	seenCfg := map[string]bool{}
	for _, c := range cells {
		g, ok := group(c)
		if !ok {
			continue
		}
		k := key{g, c.Config, c.Sched}
		antt[k] = append(antt[k], c.Norm.HANTT)
		stp[k] = append(stp[k], c.Norm.HSTP)
		if !seenCfg[c.Config] {
			seenCfg[c.Config] = true
			cfgs = append(cfgs, c.Config)
		}
	}
	t := &Table{Header: []string{"group", "config"}}
	for _, k := range kinds {
		t.Header = append(t.Header, k+" H_ANTT", k+" H_STP")
	}
	for _, g := range groups {
		var gaNTT, gSTP = map[string][]float64{}, map[string][]float64{}
		for _, cfg := range cfgs {
			row := []string{g, cfg}
			any := false
			for _, kind := range kinds {
				k := key{g, cfg, kind}
				if len(antt[k]) == 0 {
					row = append(row, "-", "-")
					continue
				}
				any = true
				a := mathx.GeoMean(antt[k])
				s := mathx.GeoMean(stp[k])
				gaNTT[kind] = append(gaNTT[kind], a)
				gSTP[kind] = append(gSTP[kind], s)
				row = append(row, f3(a), f3(s))
			}
			if any {
				t.AddRow(row...)
			}
		}
		row := []string{g, "geomean"}
		for _, kind := range kinds {
			if len(gaNTT[kind]) == 0 {
				row = append(row, "-", "-")
				continue
			}
			row = append(row, f3(mathx.GeoMean(gaNTT[kind])), f3(mathx.GeoMean(gSTP[kind])))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "all values normalised to Linux CFS; H_ANTT < 1 and H_STP > 1 mean better than Linux")
	return t
}

// classCells runs the full paper matrix for the given classes.
func (r *Runner) classCells(classes ...workload.Class) ([]Cell, error) {
	var comps []workload.Composition
	for _, cl := range classes {
		comps = append(comps, workload.CompositionsByClass(cl)...)
	}
	return r.RunMatrix(comps, cpu.EvaluatedConfigs(), []string{SchedWASH, SchedCOLAB})
}

// Figure5 reproduces the Sync vs NSync class comparison.
func (r *Runner) Figure5() (*Table, error) {
	cells, err := r.classCells(workload.ClassSync, workload.ClassNSync)
	if err != nil {
		return nil, err
	}
	t := classAggregate(cells,
		func(c Cell) (string, bool) { return string(c.Class), true },
		[]string{string(workload.ClassSync), string(workload.ClassNSync)},
		[]string{SchedWASH, SchedCOLAB})
	t.Title = "Figure 5: Sync vs NSync workloads, normalised to Linux"
	return t, nil
}

// Figure6 reproduces the Comm vs Comp class comparison.
func (r *Runner) Figure6() (*Table, error) {
	cells, err := r.classCells(workload.ClassComm, workload.ClassComp)
	if err != nil {
		return nil, err
	}
	t := classAggregate(cells,
		func(c Cell) (string, bool) { return string(c.Class), true },
		[]string{string(workload.ClassComm), string(workload.ClassComp)},
		[]string{SchedWASH, SchedCOLAB})
	t.Title = "Figure 6: Comm vs Comp workloads, normalised to Linux"
	return t, nil
}

// Figure7 reproduces the random-mixed class results.
func (r *Runner) Figure7() (*Table, error) {
	cells, err := r.classCells(workload.ClassRand)
	if err != nil {
		return nil, err
	}
	t := classAggregate(cells,
		func(c Cell) (string, bool) { return "Random-mix", true },
		[]string{"Random-mix"},
		[]string{SchedWASH, SchedCOLAB})
	t.Title = "Figure 7: random-mixed workloads, normalised to Linux"
	return t, nil
}

// allCells runs the complete 26-workload matrix once (memoised).
func (r *Runner) allCells(kinds []string) ([]Cell, error) {
	return r.RunMatrix(workload.Compositions(), cpu.EvaluatedConfigs(), kinds)
}

// coreCount maps a config name back to its total cores.
func coreCount(name string) int {
	for _, c := range cpu.EvaluatedConfigs() {
		if c.Name == name {
			return c.NumCores()
		}
	}
	return 0
}

// maxEvaluatedCores is the largest evaluated machine (4B4S): the paper's
// "high thread count" means at least double this.
func maxEvaluatedCores() int {
	mx := 0
	for _, c := range cpu.EvaluatedConfigs() {
		if n := c.NumCores(); n > mx {
			mx = n
		}
	}
	return mx
}

// Figure8 regroups all workloads by thread count: low (< cores of the
// config) vs high (>= 2x the maximum core count).
func (r *Runner) Figure8() (*Table, error) {
	cells, err := r.allCells([]string{SchedWASH, SchedCOLAB})
	if err != nil {
		return nil, err
	}
	highBar := 2 * maxEvaluatedCores()
	group := func(c Cell) (string, bool) {
		comp, ok := workload.CompositionByIndex(c.Workload)
		if !ok {
			return "", false
		}
		n := comp.TotalThreads()
		switch {
		case n <= coreCount(c.Config):
			return "Thread-low", true
		case n >= highBar:
			return "Thread-high", true
		default:
			return "", false
		}
	}
	t := classAggregate(cells, group, []string{"Thread-low", "Thread-high"}, []string{SchedWASH, SchedCOLAB})
	t.Title = "Figure 8: low vs high thread-count workloads, normalised to Linux"
	return t, nil
}

// Figure9 regroups all workloads by program count (2- vs 4-programmed).
func (r *Runner) Figure9() (*Table, error) {
	cells, err := r.allCells([]string{SchedWASH, SchedCOLAB})
	if err != nil {
		return nil, err
	}
	group := func(c Cell) (string, bool) {
		comp, ok := workload.CompositionByIndex(c.Workload)
		if !ok {
			return "", false
		}
		switch comp.NumPrograms() {
		case 2:
			return "2-programmed", true
		case 4:
			return "4-programmed", true
		default:
			return "", false
		}
	}
	t := classAggregate(cells, group, []string{"2-programmed", "4-programmed"}, []string{SchedWASH, SchedCOLAB})
	t.Title = "Figure 9: 2- vs 4-programmed workloads, normalised to Linux"
	return t, nil
}

// Summary reproduces the paper's closing aggregate over the full matrix
// ("In summary from all 312 experiments...").
func (r *Runner) Summary() (*Table, error) {
	cells, err := r.allCells([]string{SchedWASH, SchedCOLAB})
	if err != nil {
		return nil, err
	}
	antt := map[string][]float64{}
	stp := map[string][]float64{}
	for _, c := range cells {
		antt[c.Sched] = append(antt[c.Sched], c.Norm.HANTT)
		stp[c.Sched] = append(stp[c.Sched], c.Norm.HSTP)
	}
	t := &Table{
		Title:  "Summary: all Table 4 workloads x 4 configs (312 simulations incl. core orders)",
		Header: []string{"scheduler", "H_ANTT vs linux", "H_STP vs linux", "turnaround gain", "throughput gain"},
	}
	for _, k := range []string{SchedWASH, SchedCOLAB} {
		a := mathx.GeoMean(antt[k])
		s := mathx.GeoMean(stp[k])
		t.AddRow(k, f3(a), f3(s), pct(1/a), pct(s))
	}
	wa, ca := mathx.GeoMean(antt[SchedWASH]), mathx.GeoMean(antt[SchedCOLAB])
	ws, cs := mathx.GeoMean(stp[SchedWASH]), mathx.GeoMean(stp[SchedCOLAB])
	t.Notes = append(t.Notes,
		fmt.Sprintf("COLAB vs WASH: turnaround %s, throughput %s", pct(wa/ca), pct(cs/ws)),
		"paper reports: COLAB vs Linux -11%% turnaround / +15%% throughput; vs WASH -5%% / +6%%")
	return t, nil
}

// Ablation compares COLAB against its single-feature-disabled variants and
// GTS on representative classes (DESIGN.md's design-choice index).
func (r *Runner) Ablation() (*Table, error) {
	comps := append(workload.CompositionsByClass(workload.ClassSync),
		workload.CompositionsByClass(workload.ClassRand)...)
	cfgs := []cpu.Config{cpu.Config2B2S, cpu.Config4B4S}
	kinds := AblationSchedulers()
	cells, err := r.RunMatrix(comps, cfgs, kinds)
	if err != nil {
		return nil, err
	}
	antt := map[string][]float64{}
	stp := map[string][]float64{}
	for _, c := range cells {
		antt[c.Sched] = append(antt[c.Sched], c.Norm.HANTT)
		stp[c.Sched] = append(stp[c.Sched], c.Norm.HSTP)
	}
	t := &Table{
		Title:  "Ablation: COLAB design choices on Sync+Rand, 2B2S+4B4S (normalised to Linux)",
		Header: []string{"variant", "H_ANTT", "H_STP"},
	}
	for _, k := range kinds {
		t.AddRow(k, f3(mathx.GeoMean(antt[k])), f3(mathx.GeoMean(stp[k])))
	}
	t.Notes = append(t.Notes, "colab-noscale: no scale-slice; colab-local: no global selection; colab-flat: no hierarchical allocation; colab-nopull: big never preempts little; colab-oracle: ground-truth speedups")
	return t, nil
}

// Table2 regenerates the paper's Table 2: the PCA-selected counters and the
// linear speedup model, from freshly collected symmetric training runs.
func Table2() (string, error) {
	model, err := perfmodel.Default()
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("== Table 2: selected performance counters and speedup model ==\n")
	sb.WriteString(model.Describe())
	return sb.String(), nil
}

// Table3 renders the benchmark categorisation.
func Table3() *Table {
	t := &Table{
		Title:  "Table 3: benchmark categorisation",
		Header: []string{"name", "suite", "sync rate", "comm/comp ratio", "max threads"},
	}
	for _, b := range workload.All() {
		maxT := "-"
		if b.MaxThreads > 0 {
			maxT = fmt.Sprintf("%d", b.MaxThreads)
		}
		t.AddRow(b.Name, b.Suite, string(b.SyncRate), string(b.CommComp), maxT)
	}
	return t
}

// Table4 renders the workload compositions.
func Table4() *Table {
	t := &Table{
		Title:  "Table 4: multi-programmed workload compositions",
		Header: []string{"index", "class", "composition", "threads"},
	}
	for _, c := range workload.Compositions() {
		var parts []string
		for _, p := range c.Parts {
			parts = append(parts, fmt.Sprintf("%s(%d)", p.Bench, p.Threads))
		}
		t.AddRow(c.Index, string(c.Class), strings.Join(parts, " - "), fmt.Sprintf("%d", c.TotalThreads()))
	}
	return t
}
