package experiment

import (
	"fmt"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/metrics"
	"colab/internal/sim"
	"colab/internal/workload"
)

// NUMASweepCosts are the per-hop migration penalties (cold-cache cycles)
// the sensitivity sweep evaluates, from free migrations up to a penalty an
// order of magnitude past the default.
func NUMASweepCosts() []float64 {
	return []float64{0, 2000, 8000, 32000, 128000}
}

// NUMASweepTable is the migration-cost sensitivity study on the small
// two-socket palette: Linux, WASH and COLAB on Config2x2B2S with the
// per-hop penalty swept over NUMASweepCosts. The linux column is
// normalised to the zero-cost Linux run (how much the added realism costs
// an unaware baseline); the WASH and COLAB columns are normalised to
// Linux at the same cost (what topology-aware placement buys back). The
// zero-cost row exercises the reduction guarantee: it is bit-identical to
// the same palette with no topology at all.
func (r *Runner) NUMASweepTable() (*Table, error) {
	cfg := cpu.Config2x2B2S
	const idx = "Rand-7"
	comp, ok := workload.CompositionByIndex(idx)
	if !ok {
		return nil, fmt.Errorf("experiment: unknown workload %s", idx)
	}
	// Baselines are solo runs on a big core: no migrations happen, so the
	// flat palette keeps them identical across every cost row.
	flat := cfg.Flat()
	bases := make([]sim.Time, len(comp.Parts))
	for i := range comp.Parts {
		b, err := r.baselineBig(comp, i, flat)
		if err != nil {
			return nil, err
		}
		bases[i] = b
	}
	type cell struct {
		score metrics.MixScore
		migs  int
		hops  int
	}
	eval := func(c cpu.Config, kind string) (cell, error) {
		w, err := comp.Build(r.Seed)
		if err != nil {
			return cell{}, err
		}
		res, err := r.run(c, kind, w)
		if err != nil {
			return cell{}, fmt.Errorf("experiment: NUMA sweep %s under %s: %w", c.Name, kind, err)
		}
		score, err := metrics.Score(res, func(i int, _ kernel.AppResult) sim.Time { return bases[i] })
		if err != nil {
			return cell{}, err
		}
		hops := 0
		for _, th := range res.Threads {
			hops += th.CrossDomainHops
		}
		return cell{score, res.TotalMigrations, hops}, nil
	}
	t := &Table{
		Title: fmt.Sprintf("NUMA migration-cost sweep: %s on %s", idx, cfg.Name),
		Header: []string{"cost(cyc/hop)", "linux H_ANTT", "wash H_ANTT", "colab H_ANTT",
			"wash H_STP", "colab H_STP", "colab hops"},
	}
	var linuxFree cell
	for i, cost := range NUMASweepCosts() {
		cc := cfg.WithMigrationCost(cost)
		lin, err := eval(cc, SchedLinux)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			linuxFree = lin
		}
		wa, err := eval(cc, SchedWASH)
		if err != nil {
			return nil, err
		}
		co, err := eval(cc, SchedCOLAB)
		if err != nil {
			return nil, err
		}
		nl := metrics.Normalized(lin.score, linuxFree.score)
		nw := metrics.Normalized(wa.score, lin.score)
		nc := metrics.Normalized(co.score, lin.score)
		t.AddRow(fmt.Sprintf("%g", cost),
			f3(nl.HANTT), f3(nw.HANTT), f3(nc.HANTT),
			f3(nw.HSTP), f3(nc.HSTP),
			fmt.Sprintf("%d", co.hops))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("machine: %s — 2 sockets x (2 big + 2 little), one LLC domain per socket", cfg.Name),
		"linux H_ANTT normalised to the zero-cost Linux run; wash/colab normalised to Linux at the same cost",
		"H_ANTT lower is better, H_STP higher is better; colab hops = cross-domain hop count under COLAB",
		"the zero-cost row is bit-identical to the flat (topology-free) palette by construction")
	return t, nil
}
