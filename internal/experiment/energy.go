package experiment

import (
	"fmt"

	"colab/internal/cpu"
	"colab/internal/mathx"
	"colab/internal/workload"
)

// EnergyTable is the energy extension (DESIGN.md non-goal in the paper,
// provided here as an extra): it runs one representative workload per class
// on every config under all paper schedulers plus GTS and reports total
// energy and energy-delay product, normalised to Linux.
func (r *Runner) EnergyTable() (*Table, error) {
	reps := []string{"Sync-2", "NSync-2", "Comm-2", "Comp-2", "Rand-7"}
	kinds := []string{SchedLinux, SchedWASH, SchedCOLAB, SchedGTS, SchedEAS}
	t := &Table{
		Title:  "Energy extension: total energy and EDP vs Linux (geomean over representative workloads)",
		Header: []string{"config", "sched", "energy vs linux", "EDP vs linux"},
	}
	for _, cfg := range cpu.EvaluatedConfigs() {
		ref := map[string][2]float64{} // workload -> {energy, edp} under linux
		for _, kind := range kinds {
			var eRatios, edpRatios []float64
			for _, idx := range reps {
				comp, ok := workload.CompositionByIndex(idx)
				if !ok {
					return nil, fmt.Errorf("experiment: unknown workload %s", idx)
				}
				w, err := comp.Build(r.Seed)
				if err != nil {
					return nil, err
				}
				res, err := r.run(cfg, kind, w)
				if err != nil {
					return nil, err
				}
				e, edp := res.TotalEnergyJ(), res.EnergyDelayProduct()
				if kind == SchedLinux {
					ref[idx] = [2]float64{e, edp}
					continue
				}
				base := ref[idx]
				if base[0] <= 0 || base[1] <= 0 {
					return nil, fmt.Errorf("experiment: missing linux energy baseline for %s", idx)
				}
				eRatios = append(eRatios, e/base[0])
				edpRatios = append(edpRatios, edp/base[1])
			}
			if kind == SchedLinux {
				t.AddRow(cfg.Name, kind, "1.000", "1.000")
				continue
			}
			t.AddRow(cfg.Name, kind, f3(mathx.GeoMean(eRatios)), f3(mathx.GeoMean(edpRatios)))
		}
	}
	t.Notes = append(t.Notes,
		"energy model: per-core busy/idle power (A57-like big, A53-like little); lower is better",
		"the paper reports no energy numbers; this table is an extension")
	return t, nil
}
