package experiment

// Class regrouping over grammar scenarios: ScenarioMatrix is RunMatrix
// for specs, and ClassTable regenerates a Figure 8-style per-class
// H_ANTT/H_STP table grouped by the @class= label each scenario declares
// — by default over the standard suite (workload.StandardSuite).

import (
	"context"
	"fmt"

	"colab/internal/cpu"
	"colab/internal/metrics"
	"colab/internal/workload"
)

// ScenarioMatrix evaluates the given scenario specs x configs x
// schedulers in parallel and returns one Cell per combination, with
// Cell.Workload the scenario name and Cell.Class its @class= label.
func (r *Runner) ScenarioMatrix(specs []workload.Spec, cfgs []cpu.Config, kinds []string) ([]Cell, error) {
	return r.ScenarioMatrixContext(context.Background(), specs, cfgs, kinds)
}

// ScenarioMatrixContext is ScenarioMatrix with cooperative cancellation.
// Like RunMatrixContext, the fan-out goes through the Batch session
// engine sharing this runner's memo caches, and Linux is always included
// as the normalisation reference.
func (r *Runner) ScenarioMatrixContext(ctx context.Context, specs []workload.Spec, cfgs []cpu.Config, kinds []string) ([]Cell, error) {
	seen := map[string]bool{}
	var all []string
	for _, k := range append([]string{SchedLinux}, kinds...) {
		if seen[k] {
			continue
		}
		seen[k] = true
		all = append(all, k)
	}
	b := &Batch{
		Scenarios:        specs,
		Configs:          cfgs,
		Policies:         all,
		Seeds:            []uint64{r.Seed},
		Params:           r.Params,
		Workers:          r.workers(),
		Speedup:          r.Speedup,
		TierSpeedup:      r.TierSpeedup,
		TierSpeedupTiers: r.TierSpeedupTiers,
		runners:          map[uint64]*Runner{r.Seed: r},
	}
	if _, err := b.Run(ctx); err != nil {
		return nil, err
	}
	var cells []Cell
	for _, spec := range specs {
		for _, cfg := range cfgs {
			ref, err := r.ScenarioScore(spec, cfg, SchedLinux)
			if err != nil {
				return nil, err
			}
			for _, k := range kinds {
				raw, err := r.ScenarioScore(spec, cfg, k)
				if err != nil {
					return nil, err
				}
				cells = append(cells, Cell{
					Workload: spec.Name,
					Class:    spec.Class,
					Config:   cfg.Name,
					Sched:    k,
					Raw:      raw,
					Norm:     metrics.Normalized(raw, ref),
				})
			}
		}
	}
	return cells, nil
}

// ClassTable regenerates a Figure 8-style per-class table over grammar
// scenarios, grouped by each scenario's @class= label. Empty arguments
// take the defaults: the standard suite, the evaluated configs, and
// WASH+COLAB. Every named scenario must declare a class.
func (r *Runner) ClassTable(ctx context.Context, names []string, cfgs []cpu.Config, kinds []string) (*Table, error) {
	if len(names) == 0 {
		names = workload.SuiteNames()
	}
	if len(cfgs) == 0 {
		cfgs = cpu.EvaluatedConfigs()
	}
	if len(kinds) == 0 {
		kinds = []string{SchedWASH, SchedCOLAB}
	}
	var specs []workload.Spec
	var groups []string
	seenGroup := map[workload.Class]bool{}
	for _, name := range names {
		spec, err := workload.ResolveSpec(name)
		if err != nil {
			return nil, err
		}
		if spec.Class == "" {
			return nil, fmt.Errorf("experiment: scenario %q declares no @class= label, so ClassTable cannot group it", name)
		}
		specs = append(specs, spec)
		if !seenGroup[spec.Class] {
			seenGroup[spec.Class] = true
			groups = append(groups, string(spec.Class))
		}
	}
	cells, err := r.ScenarioMatrixContext(ctx, specs, cfgs, kinds)
	if err != nil {
		return nil, err
	}
	t := classAggregate(cells,
		func(c Cell) (string, bool) { return string(c.Class), c.Class != "" },
		groups, kinds)
	t.Title = "Per-class scenarios (@class= labels), normalised to Linux"
	return t, nil
}
