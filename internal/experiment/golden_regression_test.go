package experiment

import (
	"os"
	"strings"
	"testing"
)

// TestPaperConfigsUnchanged is the tier-refactor regression oracle: the
// golden corpus in testdata was produced by the pre-refactor two-kind
// big/little implementation, and the two-tier palette is the degenerate
// case of the tiered machine model, so every number must match to the last
// bit. Regenerate with GOLDEN_WRITE=1 only when an intentional behaviour
// change is documented in DESIGN.md.
func TestPaperConfigsUnchanged(t *testing.T) {
	if testing.Short() {
		t.Skip("full paper-config regression corpus is not -short")
	}
	raw, err := os.ReadFile("testdata/golden_paper_configs.txt")
	if err != nil {
		t.Fatalf("golden corpus missing: %v", err)
	}
	want := strings.Split(strings.TrimSpace(string(raw)), "\n")
	got := goldenPaperLines(t)
	if len(got) != len(want) {
		t.Fatalf("golden corpus has %d lines, regenerated %d", len(want), len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d drifted:\n  golden: %s\n  got:    %s", i, want[i], got[i])
		}
	}
}
