package experiment

import (
	"fmt"
	"strings"
	"testing"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/workload"
)

func runTriGear(t *testing.T, r *Runner, kind string) *kernel.Result {
	t.Helper()
	comp, ok := workload.CompositionByIndex("Rand-7")
	if !ok {
		t.Fatal("Rand-7 missing")
	}
	w, err := comp.Build(r.Seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.run(cpu.Config2B2M2S, kind, w)
	if err != nil {
		t.Fatalf("%s on %s: %v", kind, cpu.Config2B2M2S.Name, err)
	}
	return res
}

// The headline tri-gear claim: COLAB's native governor must beat
// fixed-frequency COLAB on energy-delay product on the 2B2M2S machine, and
// it must do so by actually using the ladders (sub-nominal residency).
func TestCOLABGovernorLowersEDP(t *testing.T) {
	r, err := NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	fixed := runTriGear(t, r, SchedCOLAB)
	dvfs := runTriGear(t, r, SchedCOLABDVFS)
	fe, de := fixed.EnergyDelayProduct(), dvfs.EnergyDelayProduct()
	t.Logf("EDP: fixed=%.4f Js, governor=%.4f Js (energy %.3f -> %.3f J)",
		fe, de, fixed.TotalEnergyJ(), dvfs.TotalEnergyJ())
	if de > fe {
		t.Errorf("governor EDP %.4f worse than fixed-frequency %.4f", de, fe)
	}
	if f := nominalResidency(fixed); f != 1 {
		t.Errorf("fixed-frequency run shows sub-nominal residency %.3f", f)
	}
	if f := nominalResidency(dvfs); f >= 1 {
		t.Errorf("governor never engaged: nominal residency %.3f", f)
	}
}

// On a machine the tiered model was not trained for (the two-tier paper
// shape), colab-dvfs must disable per-tier predictions and behave exactly
// like fixed-frequency COLAB — wrong-palette tier indices would otherwise
// clamp big-core predictions to the medium tier's envelope.
func TestCOLABDVFSFallsBackOffPalette(t *testing.T) {
	r, err := NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	comp, ok := workload.CompositionByIndex("Rand-7")
	if !ok {
		t.Fatal("Rand-7 missing")
	}
	turnarounds := func(kind string) []float64 {
		w, err := comp.Build(r.Seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.run(cpu.Config2B2S, kind, w)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		var out []float64
		for _, a := range res.Apps {
			out = append(out, float64(a.Turnaround))
		}
		return out
	}
	fixed, dvfs := turnarounds(SchedCOLAB), turnarounds(SchedCOLABDVFS)
	for i := range fixed {
		if fixed[i] != dvfs[i] {
			t.Fatalf("app %d turnaround diverges on 2B2S: colab %v vs colab-dvfs %v", i, fixed[i], dvfs[i])
		}
	}
}

// The OPP sweep renders one row per ladder step plus the governor, and
// pinning every core low must cost less energy than nominal (the tradeoff
// the governor navigates).
func TestOPPSweepTable(t *testing.T) {
	if testing.Short() {
		t.Skip("OPP sweep is not -short")
	}
	r, err := NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := r.OPPSweepTable()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if len(tbl.Rows) != 4 {
		t.Fatalf("want 3 pinned rows + governor, got %d:\n%s", len(tbl.Rows), out)
	}
	if !strings.Contains(out, "colab-dvfs") || !strings.Contains(out, "@nominal") {
		t.Fatalf("sweep table missing variants:\n%s", out)
	}
	var low, nom float64
	if _, err := fmt.Sscanf(tbl.Rows[0][3], "%f", &low); err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Sscanf(tbl.Rows[2][3], "%f", &nom); err != nil {
		t.Fatal(err)
	}
	if low >= nom {
		t.Errorf("energy pinned low (%.3f J) not below nominal (%.3f J)", low, nom)
	}
	t.Log("\n" + out)
}
