package experiment

import (
	"colab/internal/cpu"
	"colab/internal/workload"
)

// DetailTable runs the full paper matrix and reports every individual
// (workload, config) cell — the per-bar values behind the aggregated
// figures 5-9 — normalised to Linux.
func (r *Runner) DetailTable() (*Table, error) {
	cells, err := r.RunMatrix(workload.Compositions(), cpu.EvaluatedConfigs(),
		[]string{SchedWASH, SchedCOLAB})
	if err != nil {
		return nil, err
	}
	type key struct{ wl, cfg string }
	type pair struct{ antt, stp float64 }
	byCell := map[key]map[string]pair{}
	for _, c := range cells {
		k := key{c.Workload, c.Config}
		if byCell[k] == nil {
			byCell[k] = map[string]pair{}
		}
		byCell[k][c.Sched] = pair{c.Norm.HANTT, c.Norm.HSTP}
	}
	t := &Table{
		Title: "Per-workload detail: every cell of the evaluation matrix, normalised to Linux",
		Header: []string{"workload", "config",
			"wash H_ANTT", "wash H_STP", "colab H_ANTT", "colab H_STP"},
	}
	for _, comp := range workload.Compositions() {
		for _, cfg := range cpu.EvaluatedConfigs() {
			p := byCell[key{comp.Index, cfg.Name}]
			w, c := p[SchedWASH], p[SchedCOLAB]
			t.AddRow(comp.Index, cfg.Name, f3(w.antt), f3(w.stp), f3(c.antt), f3(c.stp))
		}
	}
	t.Notes = append(t.Notes, "104 cells = 26 workloads x 4 configs; each averaged over 2 core orders")
	return t, nil
}
