package experiment

import (
	"context"
	"strconv"
	"testing"

	"colab/internal/cpu"
	"colab/internal/policy"
)

// The stage-swap ablation on a reduced scope: the full-colab reference row
// must normalise to exactly 1, every variant must produce finite positive
// scores, and the inert governor rows must stay at 1.000 on the
// fixed-frequency paper machine (composing a governor must not perturb a
// machine with no ladders).
func TestStageAblationTable(t *testing.T) {
	if testing.Short() {
		t.Skip("stage ablation sweep is not -short friendly")
	}
	r := testRunner(t)
	tab, err := r.stageAblation(context.Background(), []string{"Sync-2"},
		[]cpu.Config{cpu.Config2B2S}, StageAblationVariants())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(StageAblationVariants()) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(StageAblationVariants()))
	}
	cell := func(row []string, col int) float64 {
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", row[col], err)
		}
		return v
	}
	for _, row := range tab.Rows {
		antt, stp := cell(row, 2), cell(row, 3)
		if antt <= 0 || stp <= 0 {
			t.Errorf("%s: degenerate normalised scores %v / %v", row[0], antt, stp)
		}
		switch row[0] {
		case "full colab", "governor -> colab", "governor -> eas":
			// Reference row and governors on a ladder-less machine: the
			// composition must be score-identical to full COLAB.
			if antt != 1 || stp != 1 {
				t.Errorf("%s on 2B2S: want exact 1.000/1.000, got %v/%v", row[0], antt, stp)
			}
		}
	}
}

// The variant list itself: first row is the reference, every composition
// passes registry validation.
func TestStageAblationVariantsValid(t *testing.T) {
	vs := StageAblationVariants()
	if vs[0].Label != "full colab" {
		t.Fatalf("first variant must be the reference, got %q", vs[0].Label)
	}
	for _, v := range vs {
		if err := policy.Check(v.Composition); err != nil {
			t.Errorf("variant %q: %v", v.Label, err)
		}
	}
}
