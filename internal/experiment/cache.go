package experiment

import (
	"container/list"
	"context"
	"sync"

	"colab/internal/metrics"
)

// CacheStats is a point-in-time snapshot of a cell cache's counters.
type CacheStats struct {
	// Cells is the number of scored cells held.
	Cells int `json:"cells"`
	// Hits counts lookups answered from the cache, including lookups that
	// waited for an identical in-flight computation instead of starting
	// their own.
	Hits uint64 `json:"hits"`
	// Misses counts lookups that had to compute their cell.
	Misses uint64 `json:"misses"`
	// Evictions counts cells dropped by the LRU bound (0 while the cache
	// is unbounded).
	Evictions uint64 `json:"evictions"`
	// Limit is the configured maximum number of cells (0 = unbounded).
	Limit int `json:"limit"`
}

// Cache is a concurrency-safe, content-addressed store of scored cells
// keyed by CellKey: the long-lived layer behind colab-serve and the fleet
// workers that lets repeated and overlapping requests share work.
// Identical in-flight computations are deduplicated — when two requests
// race on one cell, the second waits for the first's result rather than
// recomputing — and a leader failing (its request cancelled, say) promotes
// a waiter to compute, so one aborted request never poisons another.
//
// The cache is unbounded by default; SetLimit bounds it to a maximum
// number of cells with least-recently-used eviction (every hit, store and
// computed fill refreshes a cell's recency). In-flight computations are
// never evicted — only completed cells count against the limit.
type Cache struct {
	mu       sync.Mutex
	cells    map[string]*list.Element // -> *cacheEntry, also held in lru
	lru      *list.List               // front = most recently used
	limit    int
	inflight map[string]*inflightCell
	hits     uint64
	misses   uint64
	evicted  uint64
}

type cacheEntry struct {
	key   string
	score metrics.MixScore
}

type inflightCell struct {
	done  chan struct{}
	score metrics.MixScore
	err   error
}

// NewCache returns an empty, unbounded cell cache.
func NewCache() *Cache {
	return &Cache{
		cells:    make(map[string]*list.Element),
		lru:      list.New(),
		inflight: make(map[string]*inflightCell),
	}
}

// SetLimit bounds the cache to at most maxEntries cells, evicting the
// least recently used cells immediately if it already holds more;
// maxEntries <= 0 removes the bound. Safe to call at any time.
func (c *Cache) SetLimit(maxEntries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if maxEntries < 0 {
		maxEntries = 0
	}
	c.limit = maxEntries
	c.evictOverflow()
}

// evictOverflow drops least-recently-used cells until the limit holds.
// Callers hold c.mu.
func (c *Cache) evictOverflow() {
	if c.limit <= 0 {
		return
	}
	for c.lru.Len() > c.limit {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.cells, oldest.Value.(*cacheEntry).key)
		c.evicted++
	}
}

// insert stores (or refreshes) a scored cell and applies the LRU bound.
// Callers hold c.mu.
func (c *Cache) insert(ks string, score metrics.MixScore) {
	if el, ok := c.cells[ks]; ok {
		el.Value.(*cacheEntry).score = score
		c.lru.MoveToFront(el)
		return
	}
	c.cells[ks] = c.lru.PushFront(&cacheEntry{key: ks, score: score})
	c.evictOverflow()
}

// Lookup returns the cached score of a cell, without touching the hit or
// miss counters (use Do for counted access). A found cell's recency is
// refreshed.
func (c *Cache) Lookup(key CellKey) (metrics.MixScore, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.cells[key.String()]
	if !ok {
		return metrics.MixScore{}, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).score, true
}

// Store inserts a scored cell directly (journal replays warm the cache
// through this).
func (c *Cache) Store(key CellKey, score metrics.MixScore) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insert(key.String(), score)
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Cells: len(c.cells), Hits: c.hits, Misses: c.misses, Evictions: c.evicted, Limit: c.limit}
}

// Do returns the cell's score, computing it via compute on a miss. The
// second result reports whether the score came from the cache (directly or
// by waiting on an identical in-flight computation) rather than from this
// caller's compute. Cancelling ctx abandons only this caller's wait;
// compute itself is expected to honour the same ctx.
func (c *Cache) Do(ctx context.Context, key CellKey, compute func() (metrics.MixScore, error)) (metrics.MixScore, bool, error) {
	ks := key.String()
	for {
		c.mu.Lock()
		if el, ok := c.cells[ks]; ok {
			c.hits++
			c.lru.MoveToFront(el)
			score := el.Value.(*cacheEntry).score
			c.mu.Unlock()
			return score, true, nil
		}
		if fl, ok := c.inflight[ks]; ok {
			c.mu.Unlock()
			select {
			case <-fl.done:
			case <-ctx.Done():
				return metrics.MixScore{}, false, ctx.Err()
			}
			if fl.err == nil {
				// The leader stored the cell. Under a tight LRU bound it may
				// already have been evicted again, so return the in-flight
				// result directly — still a hit, never a recompute.
				c.mu.Lock()
				c.hits++
				c.insert(ks, fl.score)
				c.mu.Unlock()
				return fl.score, true, nil
			}
			if err := ctx.Err(); err != nil {
				return metrics.MixScore{}, false, err
			}
			// The leader failed — likely its own request was cancelled.
			// Loop and try to become the leader ourselves.
			continue
		}
		fl := &inflightCell{done: make(chan struct{})}
		c.inflight[ks] = fl
		c.misses++
		c.mu.Unlock()
		score, err := compute()
		c.mu.Lock()
		delete(c.inflight, ks)
		if err == nil {
			c.insert(ks, score)
		}
		c.mu.Unlock()
		fl.score, fl.err = score, err
		close(fl.done)
		return score, false, err
	}
}
