package experiment

import (
	"context"
	"sync"

	"colab/internal/metrics"
)

// CacheStats is a point-in-time snapshot of a cell cache's counters.
type CacheStats struct {
	// Cells is the number of scored cells held.
	Cells int `json:"cells"`
	// Hits counts lookups answered from the cache, including lookups that
	// waited for an identical in-flight computation instead of starting
	// their own.
	Hits uint64 `json:"hits"`
	// Misses counts lookups that had to compute their cell.
	Misses uint64 `json:"misses"`
}

// Cache is a concurrency-safe, content-addressed store of scored cells
// keyed by CellKey: the long-lived layer behind colab-serve that lets
// repeated and overlapping requests share work. Identical in-flight
// computations are deduplicated — when two requests race on one cell, the
// second waits for the first's result rather than recomputing — and a
// leader failing (its request cancelled, say) promotes a waiter to
// compute, so one aborted request never poisons another.
type Cache struct {
	mu       sync.Mutex
	cells    map[string]metrics.MixScore
	inflight map[string]*inflightCell
	hits     uint64
	misses   uint64
}

type inflightCell struct {
	done  chan struct{}
	score metrics.MixScore
	err   error
}

// NewCache returns an empty cell cache.
func NewCache() *Cache {
	return &Cache{
		cells:    make(map[string]metrics.MixScore),
		inflight: make(map[string]*inflightCell),
	}
}

// Lookup returns the cached score of a cell, without touching the hit or
// miss counters (use Do for counted access).
func (c *Cache) Lookup(key CellKey) (metrics.MixScore, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.cells[key.String()]
	return v, ok
}

// Store inserts a scored cell directly (journal replays warm the cache
// through this).
func (c *Cache) Store(key CellKey, score metrics.MixScore) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cells[key.String()] = score
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Cells: len(c.cells), Hits: c.hits, Misses: c.misses}
}

// Do returns the cell's score, computing it via compute on a miss. The
// second result reports whether the score came from the cache (directly or
// by waiting on an identical in-flight computation) rather than from this
// caller's compute. Cancelling ctx abandons only this caller's wait;
// compute itself is expected to honour the same ctx.
func (c *Cache) Do(ctx context.Context, key CellKey, compute func() (metrics.MixScore, error)) (metrics.MixScore, bool, error) {
	ks := key.String()
	for {
		c.mu.Lock()
		if v, ok := c.cells[ks]; ok {
			c.hits++
			c.mu.Unlock()
			return v, true, nil
		}
		if fl, ok := c.inflight[ks]; ok {
			c.mu.Unlock()
			select {
			case <-fl.done:
			case <-ctx.Done():
				return metrics.MixScore{}, false, ctx.Err()
			}
			if fl.err == nil {
				// The leader stored the cell; loop to pick it up (and count
				// the hit) from the map.
				continue
			}
			if err := ctx.Err(); err != nil {
				return metrics.MixScore{}, false, err
			}
			// The leader failed — likely its own request was cancelled.
			// Loop and try to become the leader ourselves.
			continue
		}
		fl := &inflightCell{done: make(chan struct{})}
		c.inflight[ks] = fl
		c.misses++
		c.mu.Unlock()
		score, err := compute()
		c.mu.Lock()
		delete(c.inflight, ks)
		if err == nil {
			c.cells[ks] = score
		}
		c.mu.Unlock()
		fl.score, fl.err = score, err
		close(fl.done)
		return score, false, err
	}
}
