package experiment

import (
	"context"

	"colab/internal/cpu"
	"colab/internal/mathx"
	"colab/internal/workload"
)

// paperDelta is one headline claim of the paper's closing summary ("COLAB
// vs Linux -11% turnaround / +15% throughput; vs WASH -5% / +6%"). The
// quantitative values are gem5-specific; the reproduction target is the
// sign and ordering of every row.
type paperDelta struct {
	comparison string
	metric     string
	paper      string // "-" where the paper states no number
}

// DeltaTable is the paper-vs-reproduction quantitative comparison: the
// paper's headline percentage deltas next to the ones this reproduction
// measures over the full 26-workload x 4-config matrix. The matrix runs
// through the Batch session engine (the same machinery behind
// colab.Experiment), sharing this runner's memo caches.
func (r *Runner) DeltaTable(ctx context.Context) (*Table, error) {
	cells, err := r.RunMatrixContext(ctx, workload.Compositions(), cpu.EvaluatedConfigs(),
		[]string{SchedWASH, SchedCOLAB})
	if err != nil {
		return nil, err
	}
	antt := map[string][]float64{}
	stp := map[string][]float64{}
	for _, c := range cells {
		antt[c.Sched] = append(antt[c.Sched], c.Norm.HANTT)
		stp[c.Sched] = append(stp[c.Sched], c.Norm.HSTP)
	}
	wa, ca := mathx.GeoMean(antt[SchedWASH]), mathx.GeoMean(antt[SchedCOLAB])
	ws, cs := mathx.GeoMean(stp[SchedWASH]), mathx.GeoMean(stp[SchedCOLAB])

	rows := []struct {
		paperDelta
		repro float64 // ratio; pct() renders the signed delta
	}{
		{paperDelta{"COLAB vs Linux", "turnaround (H_ANTT)", "-11%"}, ca},
		{paperDelta{"COLAB vs Linux", "throughput (H_STP)", "+15%"}, cs},
		{paperDelta{"COLAB vs WASH", "turnaround (H_ANTT)", "-5%"}, ca / wa},
		{paperDelta{"COLAB vs WASH", "throughput (H_STP)", "+6%"}, cs / ws},
		{paperDelta{"WASH vs Linux", "turnaround (H_ANTT)", "-"}, wa},
		{paperDelta{"WASH vs Linux", "throughput (H_STP)", "-"}, ws},
	}
	t := &Table{
		Title:  "Paper vs reproduction: headline deltas over the full matrix",
		Header: []string{"comparison", "metric", "paper", "repro"},
	}
	for _, row := range rows {
		t.AddRow(row.comparison, row.metric, row.paper, pct(row.repro))
	}
	t.Notes = append(t.Notes,
		"geomean over all 26 Table 4 workloads x 4 configs at seed 1, both core orders",
		"negative turnaround and positive throughput deltas mean better than the baseline",
		"the paper's absolute numbers are gem5-specific; the reproduction target is sign and ordering")
	return t, nil
}
