package experiment

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"colab/internal/metrics"
)

func testKey(i int) CellKey {
	return CellKey{Scenario: fmt.Sprintf("s-%d", i), Policy: "linux", Machine: "m#0", Seed: 1, Params: "00"}
}

func TestJournalRecordReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ndjson")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	// Scores with awkward float values must replay bit-identically.
	want := metrics.MixScore{HANTT: 1.0 / 3.0, HSTP: 2.0000000000000004}
	if err := j.Record(testKey(1), want); err != nil {
		t.Fatal(err)
	}
	if err := j.Record(testKey(1), metrics.MixScore{HANTT: 99}); err != nil {
		t.Fatal(err) // duplicate records are no-ops, not errors
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 1 {
		t.Fatalf("journal replayed %d cells, want 1", j2.Len())
	}
	got, ok := j2.Lookup(testKey(1))
	if !ok {
		t.Fatal("recorded cell missing after reopen")
	}
	if got != want {
		t.Errorf("replayed score not bit-identical: %v vs %v", got, want)
	}
}

// A kill mid-append leaves a truncated final line; the journal must drop
// it (the cell reruns) and keep every complete record.
func TestJournalToleratesTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ndjson")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Record(testKey(i), metrics.MixScore{HANTT: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"half-writ`)
	f.Close()
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("truncated tail must be tolerated: %v", err)
	}
	defer j2.Close()
	if j2.Len() != 3 {
		t.Errorf("journal replayed %d cells, want the 3 complete ones", j2.Len())
	}
}

// Garbage in the middle of the file is not a kill signature: refuse it.
func TestJournalRejectsCorruptInterior(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ndjson")
	if err := os.WriteFile(path, []byte("not json\n{\"key\":\"k\",\"h_antt\":1,\"h_stp\":1}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path); err == nil {
		t.Fatal("corrupt interior line must error")
	}
}

func TestCacheCountsAndStores(t *testing.T) {
	c := NewCache()
	ctx := context.Background()
	want := metrics.MixScore{HANTT: 2, HSTP: 3}
	v, cached, err := c.Do(ctx, testKey(1), func() (metrics.MixScore, error) { return want, nil })
	if err != nil || cached || v != want {
		t.Fatalf("first Do = (%v, %v, %v), want computed %v", v, cached, err, want)
	}
	v, cached, err = c.Do(ctx, testKey(1), func() (metrics.MixScore, error) {
		t.Error("hit must not recompute")
		return metrics.MixScore{}, nil
	})
	if err != nil || !cached || v != want {
		t.Fatalf("second Do = (%v, %v, %v), want cached %v", v, cached, err, want)
	}
	if s := c.Stats(); s.Cells != 1 || s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 1 cell, 1 hit, 1 miss", s)
	}
	// A failed compute must not poison the cache.
	boom := errors.New("boom")
	if _, _, err := c.Do(ctx, testKey(2), func() (metrics.MixScore, error) { return metrics.MixScore{}, boom }); !errors.Is(err, boom) {
		t.Fatalf("compute error not surfaced: %v", err)
	}
	if _, ok := c.Lookup(testKey(2)); ok {
		t.Error("failed compute must not be stored")
	}
}

// Concurrent identical requests must run one compute; the rest wait and
// count as hits.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache()
	var computes int32
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	const waiters = 8
	results := make([]metrics.MixScore, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do(context.Background(), testKey(1), func() (metrics.MixScore, error) {
				if atomic.AddInt32(&computes, 1) == 1 {
					close(started)
				}
				<-release
				return metrics.MixScore{HANTT: 7, HSTP: 7}, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	<-started
	close(release)
	wg.Wait()
	if n := atomic.LoadInt32(&computes); n != 1 {
		t.Errorf("compute ran %d times, want 1", n)
	}
	for i, v := range results {
		if (v != metrics.MixScore{HANTT: 7, HSTP: 7}) {
			t.Errorf("waiter %d got %v", i, v)
		}
	}
	if s := c.Stats(); s.Misses != 1 || s.Hits != waiters-1 {
		t.Errorf("stats = %+v, want 1 miss and %d hits", s, waiters-1)
	}
}

// A cancelled leader must not strand waiters: one of them takes over.
func TestCacheLeaderFailurePromotesWaiter(t *testing.T) {
	c := NewCache()
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	inLeader := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, _, err := c.Do(leaderCtx, testKey(1), func() (metrics.MixScore, error) {
			close(inLeader)
			<-leaderCtx.Done()
			return metrics.MixScore{}, leaderCtx.Err()
		})
		if err == nil {
			t.Error("cancelled leader must error")
		}
	}()
	<-inLeader
	waiterDone := make(chan metrics.MixScore, 1)
	go func() {
		v, _, err := c.Do(context.Background(), testKey(1), func() (metrics.MixScore, error) {
			return metrics.MixScore{HANTT: 5, HSTP: 5}, nil
		})
		if err != nil {
			t.Error(err)
		}
		waiterDone <- v
	}()
	cancelLeader()
	<-leaderDone
	if v := <-waiterDone; (v != metrics.MixScore{HANTT: 5, HSTP: 5}) {
		t.Errorf("promoted waiter got %v", v)
	}
}

// The LRU bound: inserting past the limit evicts the least recently used
// cell, recency is refreshed by hits, and the counters report it all.
func TestCacheLRUEviction(t *testing.T) {
	c := NewCache()
	c.SetLimit(2)
	score := func(i int) metrics.MixScore { return metrics.MixScore{HANTT: float64(i)} }
	c.Store(testKey(1), score(1))
	c.Store(testKey(2), score(2))
	// Touch key 1 so key 2 is now the least recently used.
	if _, ok := c.Lookup(testKey(1)); !ok {
		t.Fatal("key 1 missing before eviction")
	}
	c.Store(testKey(3), score(3))
	if _, ok := c.Lookup(testKey(2)); ok {
		t.Error("least recently used cell survived eviction")
	}
	if _, ok := c.Lookup(testKey(1)); !ok {
		t.Error("recently touched cell was evicted")
	}
	if _, ok := c.Lookup(testKey(3)); !ok {
		t.Error("newest cell was evicted")
	}
	st := c.Stats()
	if st.Cells != 2 || st.Limit != 2 || st.Evictions != 1 {
		t.Errorf("stats = %+v, want 2 cells, limit 2, 1 eviction", st)
	}
	// Dropping the limit evicts immediately; lifting it stops evicting.
	c.SetLimit(1)
	if st := c.Stats(); st.Cells != 1 || st.Evictions != 2 {
		t.Errorf("after SetLimit(1): %+v, want 1 cell, 2 evictions", st)
	}
	c.SetLimit(0)
	c.Store(testKey(4), score(4))
	c.Store(testKey(5), score(5))
	if st := c.Stats(); st.Cells != 3 || st.Evictions != 2 {
		t.Errorf("unbounded again: %+v, want 3 cells and no new evictions", st)
	}
}

// An evicted cell is recomputed (a counted miss), not resurrected.
func TestCacheEvictedCellRecomputes(t *testing.T) {
	c := NewCache()
	c.SetLimit(1)
	ctx := context.Background()
	computes := 0
	compute := func() (metrics.MixScore, error) {
		computes++
		return metrics.MixScore{HANTT: 7}, nil
	}
	if _, cached, _ := c.Do(ctx, testKey(1), compute); cached {
		t.Fatal("first compute claims cached")
	}
	c.Store(testKey(2), metrics.MixScore{}) // evicts key 1
	if _, cached, _ := c.Do(ctx, testKey(1), compute); cached {
		t.Fatal("evicted cell claims cached")
	}
	if computes != 2 {
		t.Fatalf("computed %d times, want 2", computes)
	}
	st := c.Stats()
	if st.Misses != 2 || st.Evictions == 0 {
		t.Errorf("stats = %+v, want 2 misses and at least 1 eviction", st)
	}
}

// Do under a tight limit with concurrent waiters: the waiter path must
// return the leader's result even when the stored cell is immediately
// evicted again.
func TestCacheSingleflightUnderTightLimit(t *testing.T) {
	c := NewCache()
	c.SetLimit(1)
	ctx := context.Background()
	var wg sync.WaitGroup
	var computes atomic.Int32
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 4; k++ {
				score, _, err := c.Do(ctx, testKey(k), func() (metrics.MixScore, error) {
					computes.Add(1)
					return metrics.MixScore{HANTT: float64(k)}, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if score.HANTT != float64(k) {
					t.Errorf("key %d returned score %v", k, score.HANTT)
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := c.Stats(); st.Cells > 1 {
		t.Errorf("cache holds %d cells over its limit of 1", st.Cells)
	}
	_ = computes.Load() // recomputes are allowed under eviction; wrong scores are not
}

// CompactJournal drops duplicate and torn records, keeps first
// occurrences verbatim, and replays to the identical cell set.
func TestCompactJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ndjson")
	want := metrics.MixScore{HANTT: 1.0 / 3.0, HSTP: 2.0000000000000004}
	lines := ""
	add := func(key CellKey, s metrics.MixScore) {
		rec, _ := json.Marshal(JournalRecord{Key: key.String(), HANTT: s.HANTT, HSTP: s.HSTP})
		lines += string(rec) + "\n"
	}
	add(testKey(1), want)
	add(testKey(2), metrics.MixScore{HANTT: 2})
	add(testKey(1), metrics.MixScore{HANTT: 99}) // superseded duplicate
	add(testKey(2), metrics.MixScore{HANTT: 2})  // identical duplicate
	lines += `{"key":"torn`                      // crash mid-append
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	kept, dropped, err := CompactJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if kept != 2 || dropped != 2 {
		t.Errorf("kept %d dropped %d, want 2 and 2 (the torn tail is not counted)", kept, dropped)
	}
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Len() != 2 {
		t.Fatalf("compacted journal replays %d cells, want 2", j.Len())
	}
	if got, ok := j.Lookup(testKey(1)); !ok || got != want {
		t.Errorf("first occurrence not kept verbatim: %v, want %v", got, want)
	}
	// Compacting a compacted journal is a no-op.
	kept2, dropped2, err := CompactJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if kept2 != 2 || dropped2 != 0 {
		t.Errorf("recompaction kept %d dropped %d, want 2 and 0", kept2, dropped2)
	}
}

// CompactJournal on a missing or empty journal is clean.
func TestCompactJournalEdges(t *testing.T) {
	if _, _, err := CompactJournal(filepath.Join(t.TempDir(), "absent.ndjson")); err == nil {
		t.Error("compacting a missing journal must error")
	}
	path := filepath.Join(t.TempDir(), "empty.ndjson")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	kept, dropped, err := CompactJournal(path)
	if err != nil || kept != 0 || dropped != 0 {
		t.Errorf("empty journal: kept %d dropped %d err %v, want zeros", kept, dropped, err)
	}
}

// WriteJournal materialises records into a journal OpenJournal replays
// bit-identically — the mechanism coordinators use to ship checkpoint
// state to replacement workers.
func TestWriteJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shipped.ndjson")
	recs := []JournalRecord{
		{Key: testKey(1).String(), HANTT: 1.0 / 3.0, HSTP: 2.0000000000000004},
		{Key: testKey(2).String(), HANTT: 5, HSTP: 6},
	}
	if err := WriteJournal(path, recs); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Len() != 2 {
		t.Fatalf("replayed %d cells, want 2", j.Len())
	}
	got, ok := j.Lookup(testKey(1))
	if !ok || got.HANTT != 1.0/3.0 || got.HSTP != 2.0000000000000004 {
		t.Errorf("shipped journal not bit-identical: %v", got)
	}
}
