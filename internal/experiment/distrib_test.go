package experiment

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"colab/internal/metrics"
)

func testKey(i int) CellKey {
	return CellKey{Scenario: fmt.Sprintf("s-%d", i), Policy: "linux", Machine: "m#0", Seed: 1, Params: "00"}
}

func TestJournalRecordReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ndjson")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	// Scores with awkward float values must replay bit-identically.
	want := metrics.MixScore{HANTT: 1.0 / 3.0, HSTP: 2.0000000000000004}
	if err := j.Record(testKey(1), want); err != nil {
		t.Fatal(err)
	}
	if err := j.Record(testKey(1), metrics.MixScore{HANTT: 99}); err != nil {
		t.Fatal(err) // duplicate records are no-ops, not errors
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 1 {
		t.Fatalf("journal replayed %d cells, want 1", j2.Len())
	}
	got, ok := j2.Lookup(testKey(1))
	if !ok {
		t.Fatal("recorded cell missing after reopen")
	}
	if got != want {
		t.Errorf("replayed score not bit-identical: %v vs %v", got, want)
	}
}

// A kill mid-append leaves a truncated final line; the journal must drop
// it (the cell reruns) and keep every complete record.
func TestJournalToleratesTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ndjson")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Record(testKey(i), metrics.MixScore{HANTT: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"half-writ`)
	f.Close()
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("truncated tail must be tolerated: %v", err)
	}
	defer j2.Close()
	if j2.Len() != 3 {
		t.Errorf("journal replayed %d cells, want the 3 complete ones", j2.Len())
	}
}

// Garbage in the middle of the file is not a kill signature: refuse it.
func TestJournalRejectsCorruptInterior(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ndjson")
	if err := os.WriteFile(path, []byte("not json\n{\"key\":\"k\",\"h_antt\":1,\"h_stp\":1}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path); err == nil {
		t.Fatal("corrupt interior line must error")
	}
}

func TestCacheCountsAndStores(t *testing.T) {
	c := NewCache()
	ctx := context.Background()
	want := metrics.MixScore{HANTT: 2, HSTP: 3}
	v, cached, err := c.Do(ctx, testKey(1), func() (metrics.MixScore, error) { return want, nil })
	if err != nil || cached || v != want {
		t.Fatalf("first Do = (%v, %v, %v), want computed %v", v, cached, err, want)
	}
	v, cached, err = c.Do(ctx, testKey(1), func() (metrics.MixScore, error) {
		t.Error("hit must not recompute")
		return metrics.MixScore{}, nil
	})
	if err != nil || !cached || v != want {
		t.Fatalf("second Do = (%v, %v, %v), want cached %v", v, cached, err, want)
	}
	if s := c.Stats(); s.Cells != 1 || s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 1 cell, 1 hit, 1 miss", s)
	}
	// A failed compute must not poison the cache.
	boom := errors.New("boom")
	if _, _, err := c.Do(ctx, testKey(2), func() (metrics.MixScore, error) { return metrics.MixScore{}, boom }); !errors.Is(err, boom) {
		t.Fatalf("compute error not surfaced: %v", err)
	}
	if _, ok := c.Lookup(testKey(2)); ok {
		t.Error("failed compute must not be stored")
	}
}

// Concurrent identical requests must run one compute; the rest wait and
// count as hits.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache()
	var computes int32
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	const waiters = 8
	results := make([]metrics.MixScore, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do(context.Background(), testKey(1), func() (metrics.MixScore, error) {
				if atomic.AddInt32(&computes, 1) == 1 {
					close(started)
				}
				<-release
				return metrics.MixScore{HANTT: 7, HSTP: 7}, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	<-started
	close(release)
	wg.Wait()
	if n := atomic.LoadInt32(&computes); n != 1 {
		t.Errorf("compute ran %d times, want 1", n)
	}
	for i, v := range results {
		if (v != metrics.MixScore{HANTT: 7, HSTP: 7}) {
			t.Errorf("waiter %d got %v", i, v)
		}
	}
	if s := c.Stats(); s.Misses != 1 || s.Hits != waiters-1 {
		t.Errorf("stats = %+v, want 1 miss and %d hits", s, waiters-1)
	}
}

// A cancelled leader must not strand waiters: one of them takes over.
func TestCacheLeaderFailurePromotesWaiter(t *testing.T) {
	c := NewCache()
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	inLeader := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, _, err := c.Do(leaderCtx, testKey(1), func() (metrics.MixScore, error) {
			close(inLeader)
			<-leaderCtx.Done()
			return metrics.MixScore{}, leaderCtx.Err()
		})
		if err == nil {
			t.Error("cancelled leader must error")
		}
	}()
	<-inLeader
	waiterDone := make(chan metrics.MixScore, 1)
	go func() {
		v, _, err := c.Do(context.Background(), testKey(1), func() (metrics.MixScore, error) {
			return metrics.MixScore{HANTT: 5, HSTP: 5}, nil
		})
		if err != nil {
			t.Error(err)
		}
		waiterDone <- v
	}()
	cancelLeader()
	<-leaderDone
	if v := <-waiterDone; (v != metrics.MixScore{HANTT: 5, HSTP: 5}) {
		t.Errorf("promoted waiter got %v", v)
	}
}
