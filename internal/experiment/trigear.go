package experiment

import (
	"fmt"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/mathx"
	"colab/internal/metrics"
	"colab/internal/sim"
	"colab/internal/workload"
)

// TriGearWorkloads are the representative per-class compositions the
// tri-gear extension table evaluates (one per Table 4 class).
func TriGearWorkloads() []string {
	return []string{"Sync-2", "NSync-2", "Comm-2", "Comp-2", "Rand-7"}
}

// TriGearSchedulers are the five policies the tri-gear table compares.
func TriGearSchedulers() []string {
	return []string{SchedLinux, SchedWASH, SchedCOLAB, SchedGTS, SchedEAS}
}

// TriGearTable is the multi-tier extension study: all five policies on the
// 2B2M2S DynamIQ-style machine (two big, two medium, two little cores,
// every tier with a DVFS ladder). H_ANTT / H_STP are averaged over the two
// core orders and normalised to Linux, like the paper tables; the energy
// and EDP columns come from the big-first run and exercise the per-OPP
// power model (EAS doubles as a schedutil-like governor here).
func (r *Runner) TriGearTable() (*Table, error) {
	cfg := cpu.Config2B2M2S
	kinds := TriGearSchedulers()
	t := &Table{
		Title:  fmt.Sprintf("Tri-gear extension: five policies on %s (normalised to Linux)", cfg.Name),
		Header: []string{"sched", "H_ANTT", "H_STP", "energy", "EDP"},
	}
	type cell struct {
		score metrics.MixScore
		e     float64
		edp   float64
	}
	perSched := map[string]struct {
		antt, stp, e, edp []float64
	}{}
	for _, idx := range TriGearWorkloads() {
		comp, ok := workload.CompositionByIndex(idx)
		if !ok {
			return nil, fmt.Errorf("experiment: unknown workload %s", idx)
		}
		bases := make([]sim.Time, len(comp.Parts))
		for i := range comp.Parts {
			b, err := r.baselineBig(comp, i, cfg)
			if err != nil {
				return nil, err
			}
			bases[i] = b
		}
		// One simulation per core order per scheduler: the scores average
		// both orders (as the paper does) and the energy columns read the
		// big-first Result directly.
		eval := func(kind string) (cell, error) {
			var c cell
			orders := []bool{true, false}
			for _, bigFirst := range orders {
				w, err := comp.Build(r.Seed)
				if err != nil {
					return cell{}, err
				}
				res, err := r.run(cfg.Ordered(bigFirst), kind, w)
				if err != nil {
					return cell{}, fmt.Errorf("experiment: %s on %s under %s: %w", idx, cfg.Name, kind, err)
				}
				score, err := metrics.Score(res, func(i int, _ kernel.AppResult) sim.Time { return bases[i] })
				if err != nil {
					return cell{}, err
				}
				c.score.HANTT += score.HANTT / float64(len(orders))
				c.score.HSTP += score.HSTP / float64(len(orders))
				if bigFirst {
					c.e, c.edp = res.TotalEnergyJ(), res.EnergyDelayProduct()
				}
			}
			return c, nil
		}
		ref, err := eval(SchedLinux)
		if err != nil {
			return nil, err
		}
		if ref.e <= 0 || ref.edp <= 0 {
			return nil, fmt.Errorf("experiment: missing linux energy reference for %s", idx)
		}
		for _, kind := range kinds {
			c := ref
			if kind != SchedLinux {
				if c, err = eval(kind); err != nil {
					return nil, err
				}
			}
			agg := perSched[kind]
			norm := metrics.Normalized(c.score, ref.score)
			agg.antt = append(agg.antt, norm.HANTT)
			agg.stp = append(agg.stp, norm.HSTP)
			agg.e = append(agg.e, c.e/ref.e)
			agg.edp = append(agg.edp, c.edp/ref.edp)
			perSched[kind] = agg
		}
	}
	for _, kind := range kinds {
		agg := perSched[kind]
		t.AddRow(kind,
			f3(mathx.GeoMean(agg.antt)), f3(mathx.GeoMean(agg.stp)),
			f3(mathx.GeoMean(agg.e)), f3(mathx.GeoMean(agg.edp)))
	}
	t.Notes = append(t.Notes,
		"machine: 2 big (A57-like, OPPs 1.2/1.6/2.0 GHz) + 2 medium (A72-like, 1.0/1.3/1.6 GHz) + 2 little (A53-like, 0.6/0.9/1.2 GHz)",
		"geomean over one representative workload per class; H_ANTT/energy/EDP lower is better, H_STP higher is better",
		"the paper evaluates two-tier machines only; this table is the multi-tier extension")
	return t, nil
}
