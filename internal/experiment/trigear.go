package experiment

import (
	"fmt"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/mathx"
	"colab/internal/metrics"
	"colab/internal/sim"
	"colab/internal/task"
	"colab/internal/workload"
)

// TriGearWorkloads are the representative per-class compositions the
// tri-gear extension table evaluates (one per Table 4 class).
func TriGearWorkloads() []string {
	return []string{"Sync-2", "NSync-2", "Comm-2", "Comp-2", "Rand-7"}
}

// TriGearSchedulers are the policies the tri-gear table compares: the five
// PR-1 policies plus COLAB with its native DVFS governor and per-tier
// trained speedup models.
func TriGearSchedulers() []string {
	return []string{SchedLinux, SchedWASH, SchedCOLAB, SchedCOLABDVFS, SchedGTS, SchedEAS}
}

// nominalResidency is the fraction of machine busy time spent at the
// nominal (top) operating point — 1.0 for any fixed-frequency policy, lower
// the more a DVFS governor caps cores.
func nominalResidency(res *kernel.Result) float64 {
	var busy, nom sim.Time
	for _, c := range res.Cores {
		for i, b := range c.BusyByOPP {
			busy += b
			if i == len(c.BusyByOPP)-1 {
				nom += b
			}
		}
	}
	if busy == 0 {
		return 1
	}
	return float64(nom) / float64(busy)
}

// TriGearTable is the multi-tier extension study: the six TriGearSchedulers
// (the five PR-1 policies plus COLAB with its native DVFS governor) on the
// 2B2M2S DynamIQ-style machine (two big, two medium, two little cores,
// every tier with a DVFS ladder). H_ANTT / H_STP are averaged over the two
// core orders and normalised to Linux, like the paper tables; the energy,
// EDP and frequency-residency columns come from the big-first run and
// exercise the per-OPP power model (EAS and colab-dvfs program the
// ladders; every other policy runs fixed at nominal).
func (r *Runner) TriGearTable() (*Table, error) {
	cfg := cpu.Config2B2M2S
	kinds := TriGearSchedulers()
	t := &Table{
		Title:  fmt.Sprintf("Tri-gear extension: policies on %s (normalised to Linux)", cfg.Name),
		Header: []string{"sched", "H_ANTT", "H_STP", "energy", "EDP", "f@nom"},
	}
	type cell struct {
		score metrics.MixScore
		e     float64
		edp   float64
		fnom  float64
	}
	perSched := map[string]struct {
		antt, stp, e, edp, fnom []float64
	}{}
	for _, idx := range TriGearWorkloads() {
		comp, ok := workload.CompositionByIndex(idx)
		if !ok {
			return nil, fmt.Errorf("experiment: unknown workload %s", idx)
		}
		bases := make([]sim.Time, len(comp.Parts))
		for i := range comp.Parts {
			b, err := r.baselineBig(comp, i, cfg)
			if err != nil {
				return nil, err
			}
			bases[i] = b
		}
		// One simulation per core order per scheduler: the scores average
		// both orders (as the paper does) and the energy columns read the
		// big-first Result directly.
		eval := func(kind string) (cell, error) {
			var c cell
			orders := []bool{true, false}
			for _, bigFirst := range orders {
				w, err := comp.Build(r.Seed)
				if err != nil {
					return cell{}, err
				}
				res, err := r.run(cfg.Ordered(bigFirst), kind, w)
				if err != nil {
					return cell{}, fmt.Errorf("experiment: %s on %s under %s: %w", idx, cfg.Name, kind, err)
				}
				score, err := metrics.Score(res, func(i int, _ kernel.AppResult) sim.Time { return bases[i] })
				if err != nil {
					return cell{}, err
				}
				c.score.HANTT += score.HANTT / float64(len(orders))
				c.score.HSTP += score.HSTP / float64(len(orders))
				if bigFirst {
					c.e, c.edp = res.TotalEnergyJ(), res.EnergyDelayProduct()
					c.fnom = nominalResidency(res)
				}
			}
			return c, nil
		}
		ref, err := eval(SchedLinux)
		if err != nil {
			return nil, err
		}
		if ref.e <= 0 || ref.edp <= 0 {
			return nil, fmt.Errorf("experiment: missing linux energy reference for %s", idx)
		}
		for _, kind := range kinds {
			c := ref
			if kind != SchedLinux {
				if c, err = eval(kind); err != nil {
					return nil, err
				}
			}
			agg := perSched[kind]
			norm := metrics.Normalized(c.score, ref.score)
			agg.antt = append(agg.antt, norm.HANTT)
			agg.stp = append(agg.stp, norm.HSTP)
			agg.e = append(agg.e, c.e/ref.e)
			agg.edp = append(agg.edp, c.edp/ref.edp)
			agg.fnom = append(agg.fnom, c.fnom)
			perSched[kind] = agg
		}
	}
	for _, kind := range kinds {
		agg := perSched[kind]
		t.AddRow(kind,
			f3(mathx.GeoMean(agg.antt)), f3(mathx.GeoMean(agg.stp)),
			f3(mathx.GeoMean(agg.e)), f3(mathx.GeoMean(agg.edp)),
			f3(mathx.Mean(agg.fnom)))
	}
	t.Notes = append(t.Notes,
		"machine: 2 big (A57-like, OPPs 1.2/1.6/2.0 GHz) + 2 medium (A72-like, 1.0/1.3/1.6 GHz) + 2 little (A53-like, 0.6/0.9/1.2 GHz)",
		"geomean over one representative workload per class; H_ANTT/energy/EDP lower is better, H_STP higher is better",
		"f@nom: fraction of busy time at the nominal operating point (mean over workloads; 1.0 = fixed frequency)",
		"colab-dvfs: COLAB's native label-driven governor with per-tier trained speedup models",
		"the paper evaluates two-tier machines only; this table is the multi-tier extension")
	return t, nil
}

// ---------------------------------------------------------------------------
// OPP sweep: the frequency-scaling scenario.

// fixedOPPSched pins every DVFS-capable core at one ladder index (clamped
// per core), turning any policy into its fixed-frequency variant at an
// arbitrary operating point.
type fixedOPPSched struct {
	kernel.Scheduler
	idx int
}

// SelectOPP implements kernel.DVFSGovernor.
func (f fixedOPPSched) SelectOPP(*kernel.Core, *task.Thread) int { return f.idx }

// OPPSweepTable sweeps the tri-gear machine's frequency ladders under
// COLAB: every core pinned at ladder step 0, 1, ... up to nominal, plus the
// native governor. Scores are normalised to the nominal (fixed-frequency)
// run; energy is absolute joules. The sweep quantifies what the governor is
// trading: pinning low saves energy but stretches turnaround, the governor
// recovers the turnaround while keeping most of the savings.
func (r *Runner) OPPSweepTable() (*Table, error) {
	cfg := cpu.Config2B2M2S
	const idx = "Rand-7"
	comp, ok := workload.CompositionByIndex(idx)
	if !ok {
		return nil, fmt.Errorf("experiment: unknown workload %s", idx)
	}
	bases := make([]sim.Time, len(comp.Parts))
	for i := range comp.Parts {
		b, err := r.baselineBig(comp, i, cfg)
		if err != nil {
			return nil, err
		}
		bases[i] = b
	}
	maxOPPs := 0
	for _, tier := range cfg.Tiers() {
		if n := len(tier.Ladder()); n > maxOPPs {
			maxOPPs = n
		}
	}
	type row struct {
		name  string
		score metrics.MixScore
		e     float64
		edp   float64
		fnom  float64
	}
	eval := func(name, kind string, pin int) (row, error) {
		s, err := r.NewScheduler(kind)
		if err != nil {
			return row{}, err
		}
		if pin >= 0 {
			s = fixedOPPSched{s, pin}
		}
		w, err := comp.Build(r.Seed)
		if err != nil {
			return row{}, err
		}
		m, err := kernel.NewMachine(cfg, s, w, r.Params)
		if err != nil {
			return row{}, err
		}
		res, err := m.Run()
		if err != nil {
			return row{}, fmt.Errorf("experiment: OPP sweep %s: %w", name, err)
		}
		score, err := metrics.Score(res, func(i int, _ kernel.AppResult) sim.Time { return bases[i] })
		if err != nil {
			return row{}, err
		}
		return row{name, score, res.TotalEnergyJ(), res.EnergyDelayProduct(), nominalResidency(res)}, nil
	}
	var rows []row
	for opp := 0; opp < maxOPPs; opp++ {
		name := fmt.Sprintf("colab @OPP%d", opp)
		if opp == maxOPPs-1 {
			name = "colab @nominal"
		}
		rw, err := eval(name, SchedCOLAB, opp)
		if err != nil {
			return nil, err
		}
		rows = append(rows, rw)
	}
	govRow, err := eval("colab-dvfs (governor)", SchedCOLABDVFS, -1)
	if err != nil {
		return nil, err
	}
	rows = append(rows, govRow)
	ref := rows[maxOPPs-1] // nominal fixed-frequency reference
	t := &Table{
		Title:  fmt.Sprintf("OPP sweep: COLAB across the %s frequency ladders on %s", idx, cfg.Name),
		Header: []string{"variant", "H_ANTT", "H_STP", "energy(J)", "EDP(Js)", "f@nom"},
	}
	for _, rw := range rows {
		norm := metrics.Normalized(rw.score, ref.score)
		t.AddRow(rw.name, f3(norm.HANTT), f3(norm.HSTP), f3(rw.e), f3(rw.edp), f3(rw.fnom))
	}
	t.Notes = append(t.Notes,
		"H_ANTT/H_STP normalised to the nominal fixed-frequency run; energy and EDP are absolute",
		"@OPPk pins every core at ladder step k (clamped per tier); the governor picks per-dispatch")
	return t, nil
}
