package experiment

import (
	"context"
	"fmt"
	"strconv"
	"testing"

	"colab/internal/cpu"
	"colab/internal/workload"
)

// TestBigMachineDeterministicAcrossWorkers is the 128-core acceptance run:
// the open-system mix on Config32B32M64S must render byte-identical scored
// cells for worker counts 1, 4 and 8 under all five policies. Mask words
// beyond the inline 64 bits, parallel cell execution and the event freelist
// must leave no trace in the results.
func TestBigMachineDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs five policies on a 128-core open mix; not -short")
	}
	policies := []string{SchedLinux, SchedWASH, SchedCOLAB, SchedGTS, SchedEAS}
	render := func(workers int) string {
		b := &Batch{
			Scenarios: []workload.Spec{openSpec(t)},
			Configs:   []cpu.Config{cpu.Config32B32M64S},
			Policies:  policies,
			Seeds:     []uint64{1},
			Workers:   workers,
		}
		cells, err := b.Run(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		out := ""
		for _, c := range cells {
			if c.Score.HANTT <= 0 || c.Score.HSTP <= 0 {
				t.Fatalf("degenerate score for %+v: %+v", c.Key, c.Score)
			}
			out += fmt.Sprintf("%s|%s|%s|%d HANTT=%s HSTP=%s\n",
				c.Key.Workload, c.Key.Config, c.Key.Policy, c.Key.Seed,
				strconv.FormatFloat(c.Score.HANTT, 'g', -1, 64),
				strconv.FormatFloat(c.Score.HSTP, 'g', -1, 64))
		}
		return out
	}
	ref := render(1)
	for _, workers := range []int{4, 8} {
		if got := render(workers); got != ref {
			t.Errorf("workers=%d differs from workers=1:\n%s\nvs\n%s", workers, got, ref)
		}
	}
}
