package experiment

import (
	"context"
	"fmt"

	"colab/internal/cpu"
	"colab/internal/mathx"
	"colab/internal/policy"
	"colab/internal/workload"
)

// Stage-swap ablation: the paper argues COLAB wins because its labeler,
// allocator and selector are decomposed and co-designed; the pipeline
// registry lets us regenerate that evidence directly, by swapping one
// stage of the canonical COLAB composition at a time and re-running the
// mix. This subsumes the option-based ablation variants (colab-noscale,
// ...) with compositions any API user can write.

// StageAblationVariant is one row of the stage-swap ablation: a canonical
// COLAB pipeline with a single slot replaced (or added, for the governor
// rows).
type StageAblationVariant struct {
	// Label names the swap (e.g. "selector -> linux").
	Label string
	// Composition is the registry-grammar pipeline name.
	Composition string
}

// StageAblationVariants returns the standard swap set: full COLAB first
// (the normalisation reference), then one replaced stage per row, then the
// governor additions that only bite on DVFS-laddered machines.
func StageAblationVariants() []StageAblationVariant {
	full, _ := policy.CanonicalComposition(policy.COLAB)
	dvfs, _ := policy.CanonicalComposition(policy.COLABDVFS)
	return []StageAblationVariant{
		{"full colab", full},
		{"labeler -> none", "colab.allocator+colab.selector"},
		{"labeler -> wash", "wash.labeler+colab.allocator+colab.selector"},
		{"allocator -> linux", "colab.labeler+linux.allocator+colab.selector"},
		{"selector -> linux", "colab.labeler+colab.allocator+linux.selector"},
		{"governor -> colab", dvfs},
		{"governor -> eas", "colab.labeler+colab.allocator+colab.selector+eas.governor"},
	}
}

// AblationTable regenerates the paper's ablation-style evidence from the
// pipeline API: every variant of StageAblationVariants on the 2B2S paper
// machine and the tri-gear 2B2M2S machine, scored on a sync-heavy and a
// random mix and normalised to the full COLAB composition on the same
// machine (H_ANTT < 1 means the swap *helped*, > 1 means the replaced
// stage was pulling its weight). The governor rows are inert on the
// fixed-frequency 2B2S (no ladders to govern) — their 1.000 there is
// itself evidence the governor composes without side effects.
func (r *Runner) AblationTable(ctx context.Context) (*Table, error) {
	comps := []string{"Sync-2", "Rand-7"}
	cfgs := []cpu.Config{cpu.Config2B2S, cpu.Config2B2M2S}
	return r.stageAblation(ctx, comps, cfgs, StageAblationVariants())
}

// stageAblation is the parameterised core of AblationTable (tests run it
// on a reduced scope).
func (r *Runner) stageAblation(ctx context.Context, indexes []string, cfgs []cpu.Config, variants []StageAblationVariant) (*Table, error) {
	if len(variants) == 0 || variants[0].Label != "full colab" {
		return nil, fmt.Errorf("experiment: stage ablation needs the full-colab reference as its first variant")
	}
	var comps []workload.Composition
	for _, idx := range indexes {
		comp, ok := workload.CompositionByIndex(idx)
		if !ok {
			return nil, fmt.Errorf("experiment: unknown composition %q", idx)
		}
		comps = append(comps, comp)
	}
	names := make([]string, len(variants))
	for i, v := range variants {
		names[i] = v.Composition
	}
	b := &Batch{
		Workloads:        comps,
		Configs:          cfgs,
		Policies:         names,
		Seeds:            []uint64{r.Seed},
		Params:           r.Params,
		Workers:          r.workers(),
		Speedup:          r.Speedup,
		TierSpeedup:      r.TierSpeedup,
		TierSpeedupTiers: r.TierSpeedupTiers,
		runners:          map[uint64]*Runner{r.Seed: r},
	}
	if _, err := b.Run(ctx); err != nil {
		return nil, err
	}

	t := &Table{
		Title:  "Stage ablation: one pipeline stage swapped at a time vs full COLAB (Sync-2 + Rand-7)",
		Header: []string{"variant", "composition"},
	}
	for _, cfg := range cfgs {
		t.Header = append(t.Header, cfg.Name+" H_ANTT", cfg.Name+" H_STP")
	}
	ref := variants[0]
	for _, v := range variants {
		row := []string{v.Label, v.Composition}
		for _, cfg := range cfgs {
			var antt, stp []float64
			for _, comp := range comps {
				base, err := r.MixScore(comp, cfg, ref.Composition)
				if err != nil {
					return nil, err
				}
				got, err := r.MixScore(comp, cfg, v.Composition)
				if err != nil {
					return nil, err
				}
				antt = append(antt, got.HANTT/base.HANTT)
				stp = append(stp, got.HSTP/base.HSTP)
			}
			row = append(row, f3(mathx.GeoMean(antt)), f3(mathx.GeoMean(stp)))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"normalised to the full COLAB composition per machine; H_ANTT > 1 = the replaced stage was load-bearing",
		"governor rows add DVFS stages: inert (1.000) on fixed-frequency 2B2S, active on the laddered 2B2M2S",
		"governors trade turnaround for energy by design; their win metric is EDP (colab-bench -trigear)")
	return t, nil
}
