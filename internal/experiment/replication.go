package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"colab/internal/cpu"
	"colab/internal/mathx"
	"colab/internal/workload"
)

// ReplicationTable quantifies run-to-run variance: representative
// workloads are re-generated under several seeds and the
// normalised-to-Linux H_ANTT of WASH and COLAB is reported as mean +/- std.
// The paper controls variance by averaging two core orders (§5.1); this
// extension makes the residual workload-generation variance visible.
func ReplicationTable(seeds []uint64) (*Table, error) {
	if len(seeds) == 0 {
		seeds = []uint64{1, 2, 3, 4, 5}
	}
	reps := []string{"Sync-2", "Comm-2", "Rand-7"}
	cfg := cpu.Config2B2S
	t := &Table{
		Title:  fmt.Sprintf("Replication: H_ANTT vs Linux over %d seeds on %s (mean +/- std)", len(seeds), cfg.Name),
		Header: []string{"workload", "wash", "colab"},
	}
	for _, idx := range reps {
		comp, ok := workload.CompositionByIndex(idx)
		if !ok {
			return nil, fmt.Errorf("experiment: unknown workload %s", idx)
		}
		vals := map[string][]float64{}
		for _, seed := range seeds {
			r, err := NewRunner(seed)
			if err != nil {
				return nil, err
			}
			ref, err := r.MixScore(comp, cfg, SchedLinux)
			if err != nil {
				return nil, err
			}
			for _, kind := range []string{SchedWASH, SchedCOLAB} {
				s, err := r.MixScore(comp, cfg, kind)
				if err != nil {
					return nil, err
				}
				vals[kind] = append(vals[kind], s.HANTT/ref.HANTT)
			}
		}
		t.AddRow(idx,
			fmt.Sprintf("%.3f +/- %.3f", mathx.Mean(vals[SchedWASH]), mathx.Std(vals[SchedWASH])),
			fmt.Sprintf("%.3f +/- %.3f", mathx.Mean(vals[SchedCOLAB]), mathx.Std(vals[SchedCOLAB])))
	}
	return t, nil
}

// WriteCellsCSV exports a cell matrix (one row per workload x config x
// scheduler) for external analysis.
func WriteCellsCSV(w io.Writer, cells []Cell) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"workload", "class", "config", "sched",
		"hantt", "hstp", "hantt_vs_linux", "hstp_vs_linux"}); err != nil {
		return err
	}
	for _, c := range cells {
		rec := []string{
			c.Workload, string(c.Class), c.Config, c.Sched,
			strconv.FormatFloat(c.Raw.HANTT, 'f', 6, 64),
			strconv.FormatFloat(c.Raw.HSTP, 'f', 6, 64),
			strconv.FormatFloat(c.Norm.HANTT, 'f', 6, 64),
			strconv.FormatFloat(c.Norm.HSTP, 'f', 6, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
