// Package cpu models the asymmetric multicore hardware the paper simulates
// with gem5: single-ISA processors whose cores belong to an ordered set of
// *tiers* — core types of increasing microarchitectural capability, each
// with its own clock and DVFS ladder. The paper's ARM big.LITTLE platform
// (out-of-order Cortex-A57-like "big" cores at 2 GHz, in-order
// Cortex-A53-like "little" cores at 1.2 GHz) is the two-tier instance;
// modern AMPs (ARM DynamIQ tri-gear, Apple P/E designs) add middle tiers,
// modelled here by interpolating between the in-order and out-of-order
// anchors.
//
// The model is timing-level, not cycle-level. Each thread carries a hidden
// WorkProfile describing its microarchitectural character (ILP, branchiness,
// memory intensity, ...). The profile determines (a) the thread's true
// per-tier speedup — how much faster each tier retires its work relative to
// the base tier — and (b) the synthetic hardware performance counters the
// schedulers observe. Schedulers never see the profile or the true speedup;
// they must infer it from counters through the trained model, exactly as on
// real hardware.
package cpu

import (
	"fmt"
	"sort"

	"colab/internal/topo"
)

// Kind is a per-core tier index into a Config's tier set. In the default
// two-tier palette index 0 is the little tier and index 1 the big tier; the
// Little/Big constants name exactly those indices.
type Kind int

const (
	// Little is the base tier of the default palette: an in-order,
	// low-power core (Cortex-A53-like).
	Little Kind = iota
	// Big is the top tier of the default palette: an out-of-order,
	// high-performance core (Cortex-A57-like).
	Big
)

// String returns "big" or "little" for the default palette indices and
// "tierN" otherwise (multi-tier configs name cores through their Tier).
func (k Kind) String() string {
	switch k {
	case Big:
		return "big"
	case Little:
		return "little"
	default:
		return fmt.Sprintf("tier%d", int(k))
	}
}

// RefFreqMHz is the base-tier reference clock (Cortex-A53-like, 1.2 GHz).
// Work units are calibrated against it: one work unit is one nanosecond of
// execution on an in-order core at this frequency.
const RefFreqMHz = 1200

// Tier describes one core type of an asymmetric machine.
//
// Uarch places the tier's pipeline between the two calibrated anchors:
// 0 is the in-order base core, 1 the full out-of-order big core, and
// intermediate values interpolate the microarchitectural benefit (a
// DynamIQ-style "medium" core sits near 0.5). MinSpeedup/MaxSpeedup bound
// the tier's work-rate relative to the base tier, mirroring the physical
// envelope big.LITTLE studies report for the anchor cores.
//
// OPPsMHz is the tier's DVFS frequency ladder in ascending order; the last
// entry must equal FreqMHz (the nominal operating point). A nil or
// single-entry ladder means the tier runs fixed-frequency, which is how the
// paper's gem5 configuration behaves. Per-OPP power states are derived in
// power.go (dynamic power scales with the cube of the frequency ratio).
type Tier struct {
	Name   string // tier name: "big", "medium", "little", ...
	Symbol string // one-letter symbol used in config names: "B", "M", "S"
	Model  string // core model the tier mimics, e.g. "cortexa57"

	FreqMHz int     // nominal (maximum) clock
	Uarch   float64 // out-of-order strength in [0, 1]
	// Capacity is the tier's nominal work-rate relative to the base tier
	// for a balanced workload; tiers of a config must be listed in
	// ascending capacity.
	Capacity float64
	// MinSpeedup and MaxSpeedup clamp the per-profile speedup vs base.
	MinSpeedup, MaxSpeedup float64
	// L1I, L1D and L2 sizes in KiB; informational (they shape the counter
	// model constants) and reported by tooling.
	L1IKB, L1DKB, L2KB int
	// OPPsMHz is the ascending DVFS ladder; nil means fixed at FreqMHz.
	OPPsMHz []int
}

// Ladder returns the tier's operating points, substituting the fixed
// nominal frequency for a nil ladder.
func (t Tier) Ladder() []int {
	if len(t.OPPsMHz) == 0 {
		return []int{t.FreqMHz}
	}
	return t.OPPsMHz
}

// NominalOPP returns the index of the nominal (highest) operating point.
func (t Tier) NominalOPP() int { return len(t.Ladder()) - 1 }

// Validate reports structural problems with the tier definition.
func (t Tier) Validate() error {
	if t.FreqMHz <= 0 {
		return fmt.Errorf("cpu: tier %q has non-positive frequency %d", t.Name, t.FreqMHz)
	}
	if t.Uarch < 0 || t.Uarch > 1 {
		return fmt.Errorf("cpu: tier %q Uarch %.2f outside [0,1]", t.Name, t.Uarch)
	}
	if t.Capacity <= 0 {
		return fmt.Errorf("cpu: tier %q has non-positive capacity", t.Name)
	}
	ladder := t.Ladder()
	for i, f := range ladder {
		if f <= 0 {
			return fmt.Errorf("cpu: tier %q OPP %d has non-positive frequency", t.Name, i)
		}
		if i > 0 && f <= ladder[i-1] {
			return fmt.Errorf("cpu: tier %q ladder not strictly ascending at OPP %d", t.Name, i)
		}
	}
	if ladder[len(ladder)-1] != t.FreqMHz {
		return fmt.Errorf("cpu: tier %q ladder top %d != nominal %d MHz", t.Name, ladder[len(ladder)-1], t.FreqMHz)
	}
	return nil
}

// The calibrated anchor tiers, mirroring the paper's gem5 configuration
// (§5.1). Fixed-frequency, as in the paper.
var (
	// TierLittle is the in-order base tier (Cortex-A53-like, 1.2 GHz).
	TierLittle = Tier{
		Name: "little", Symbol: "S", Model: "cortexa53",
		FreqMHz: 1200, Uarch: 0, Capacity: 1.0,
		MinSpeedup: 1.0, MaxSpeedup: 1.0,
		L1IKB: 32, L1DKB: 32, L2KB: 512,
	}
	// TierBig is the out-of-order top tier (Cortex-A57-like, 2 GHz).
	TierBig = Tier{
		Name: "big", Symbol: "B", Model: "cortexa57",
		FreqMHz: 2000, Uarch: 1, Capacity: 2.0,
		MinSpeedup: 1.05, MaxSpeedup: 2.85,
		L1IKB: 48, L1DKB: 32, L2KB: 2048,
	}
	// TierMedium is a DynamIQ-style middle tier (Cortex-A72-like,
	// 1.6 GHz, moderately out-of-order) with a three-point DVFS ladder.
	TierMedium = Tier{
		Name: "medium", Symbol: "M", Model: "cortexa72",
		FreqMHz: 1600, Uarch: 0.5, Capacity: 1.5,
		MinSpeedup: 1.02, MaxSpeedup: 1.95,
		L1IKB: 48, L1DKB: 32, L2KB: 1024,
		OPPsMHz: []int{1000, 1300, 1600},
	}
	// TierBigDVFS and TierLittleDVFS are the anchor tiers with realistic
	// frequency ladders enabled, for DVFS experiments. Their nominal
	// points match TierBig/TierLittle exactly.
	TierBigDVFS = Tier{
		Name: "big", Symbol: "B", Model: "cortexa57",
		FreqMHz: 2000, Uarch: 1, Capacity: 2.0,
		MinSpeedup: 1.05, MaxSpeedup: 2.85,
		L1IKB: 48, L1DKB: 32, L2KB: 2048,
		OPPsMHz: []int{1200, 1600, 2000},
	}
	TierLittleDVFS = Tier{
		Name: "little", Symbol: "S", Model: "cortexa53",
		FreqMHz: 1200, Uarch: 0, Capacity: 1.0,
		MinSpeedup: 1.0, MaxSpeedup: 1.0,
		L1IKB: 32, L1DKB: 32, L2KB: 512,
		OPPsMHz: []int{600, 900, 1200},
	}
)

// DefaultTiers is the paper's two-tier big.LITTLE palette in ascending
// capacity order. Configs with a nil tier set use it; tier index 0 is
// Little and tier index 1 is Big, matching the Kind constants.
func DefaultTiers() []Tier { return []Tier{TierLittle, TierBig} }

// TriGearTiers is the three-tier DynamIQ-style palette in ascending
// capacity order, with DVFS ladders on every tier.
func TriGearTiers() []Tier { return []Tier{TierLittleDVFS, TierMedium, TierBigDVFS} }

// Spec describes one core instance (a flattened view of its tier).
type Spec struct {
	Kind    Kind
	Name    string
	FreqMHz int
	// L1I, L1D and L2 sizes in KiB; informational (they shape the counter
	// model constants) and reported by tooling.
	L1IKB, L1DKB, L2KB int
}

// Standard core specs mirroring the paper's gem5 configuration (§5.1).
var (
	BigSpec    = Spec{Kind: Big, Name: "cortexa57", FreqMHz: 2000, L1IKB: 48, L1DKB: 32, L2KB: 2048}
	LittleSpec = Spec{Kind: Little, Name: "cortexa53", FreqMHz: 1200, L1IKB: 32, L1DKB: 32, L2KB: 512}
)

// FreqRatio is the big/little clock ratio (2.0 GHz / 1.2 GHz).
const FreqRatio = 2000.0 / 1200.0

// MaxCores is the largest supported machine. Thread affinity is a
// task.Mask set (inline fast path below 64 cores, spilled words above), so
// the bound is no longer a representation limit — it is a sanity guard
// sized for the largest server palettes worth simulating, and it fixes the
// universe the mask set's "all cores" value covers. Config.Validate and
// the config constructors enforce it.
const MaxCores = 1024

// checkCoreCount guards the constructors against out-of-universe sizes
// with a clear error instead of corrupt affinity state downstream.
func checkCoreCount(n int, what string) {
	if n > MaxCores {
		panic(fmt.Sprintf("cpu: %s has %d cores; max %d supported", what, n, MaxCores))
	}
}

// Config is a machine configuration: an ordered list of core tier indices
// over a tier set. Order matters — the paper averages each experiment over
// two simulations with big-cores-first and little-cores-first orderings,
// because initial placement follows core order.
type Config struct {
	Name string
	// Kinds holds one tier index per core, in core order.
	Kinds []Kind
	// TierSet is the ascending-capacity tier palette Kinds index into.
	// nil selects DefaultTiers (the paper's big.LITTLE pair).
	TierSet []Tier
	// Topo is the machine's socket/LLC-domain layout. The zero value is
	// the flat (single-domain) machine, which behaves — and fingerprints —
	// exactly like the pre-topology model.
	Topo topo.Topology
}

// Topology returns the config's socket/LLC-domain layout (flat when unset).
func (c Config) Topology() topo.Topology { return c.Topo }

// WithTopology returns c with the topology attached. Validate checks the
// layout against the core count.
func (c Config) WithTopology(t topo.Topology) Config {
	c.Topo = t
	return c
}

// WithMigrationCost returns c with its topology's per-hop migration
// penalty replaced (cycles = 0 makes the machine schedule bit-identically
// to its flat equivalent).
func (c Config) WithMigrationCost(cycles float64) Config {
	t := c.Topo
	t.PenaltyCycles = cycles
	c.Topo = t
	return c
}

// Flat returns c with its topology stripped: the equivalent single-domain
// machine with an identical core layout.
func (c Config) Flat() Config {
	c.Topo = topo.Topology{}
	return c
}

// Tiers returns the config's tier palette (DefaultTiers when unset).
func (c Config) Tiers() []Tier {
	if c.TierSet == nil {
		return DefaultTiers()
	}
	return c.TierSet
}

// NumTiers returns the size of the tier palette.
func (c Config) NumTiers() int { return len(c.Tiers()) }

// Tier returns the tier of core index i.
func (c Config) Tier(i int) Tier { return c.Tiers()[c.Kinds[i]] }

// Validate reports structural problems with the configuration.
func (c Config) Validate() error {
	tiers := c.Tiers()
	if len(tiers) == 0 {
		return fmt.Errorf("cpu: config %q has no tiers", c.Name)
	}
	if n := len(c.Kinds); n > MaxCores {
		return fmt.Errorf("cpu: config %q has %d cores; max %d supported", c.Name, n, MaxCores)
	}
	for i, t := range tiers {
		if err := t.Validate(); err != nil {
			return err
		}
		if i > 0 && t.Capacity < tiers[i-1].Capacity {
			return fmt.Errorf("cpu: config %q tiers not in ascending capacity order at %q", c.Name, t.Name)
		}
	}
	for i, k := range c.Kinds {
		if int(k) < 0 || int(k) >= len(tiers) {
			return fmt.Errorf("cpu: config %q core %d has tier index %d outside palette of %d", c.Name, i, k, len(tiers))
		}
	}
	if err := c.Topo.Validate(len(c.Kinds)); err != nil {
		return fmt.Errorf("cpu: config %q: %w", c.Name, err)
	}
	return nil
}

// NewConfig builds a two-tier configuration with nBig big cores and nLittle
// little cores. bigFirst selects the core ordering.
func NewConfig(nBig, nLittle int, bigFirst bool) Config {
	checkCoreCount(nBig+nLittle, fmt.Sprintf("config %dB%dS", nBig, nLittle))
	name := fmt.Sprintf("%dB%dS", nBig, nLittle)
	kinds := make([]Kind, 0, nBig+nLittle)
	if bigFirst {
		for i := 0; i < nBig; i++ {
			kinds = append(kinds, Big)
		}
		for i := 0; i < nLittle; i++ {
			kinds = append(kinds, Little)
		}
	} else {
		for i := 0; i < nLittle; i++ {
			kinds = append(kinds, Little)
		}
		for i := 0; i < nBig; i++ {
			kinds = append(kinds, Big)
		}
		name += "-lf" // little-first ordering
	}
	return Config{Name: name, Kinds: kinds}
}

// NewTieredConfig builds a machine over an arbitrary ascending-capacity
// tier palette. counts[i] is the number of cores of tiers[i]. bigFirst lays
// the tier blocks out in descending capacity order (the default evaluated
// ordering); the little-first variant reverses the blocks and gets a "-lf"
// name suffix. The name concatenates per-tier counts and symbols from the
// top tier down, e.g. "2B2M2S".
func NewTieredConfig(tiers []Tier, counts []int, bigFirst bool) Config {
	if len(tiers) != len(counts) {
		panic(fmt.Sprintf("cpu: NewTieredConfig got %d tiers but %d counts", len(tiers), len(counts)))
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	checkCoreCount(total, "NewTieredConfig palette")
	name := ""
	for i := len(tiers) - 1; i >= 0; i-- {
		sym := tiers[i].Symbol
		if sym == "" {
			sym = "?"
		}
		name += fmt.Sprintf("%d%s", counts[i], sym)
	}
	var kinds []Kind
	appendTier := func(i int) {
		for n := 0; n < counts[i]; n++ {
			kinds = append(kinds, Kind(i))
		}
	}
	if bigFirst {
		for i := len(tiers) - 1; i >= 0; i-- {
			appendTier(i)
		}
	} else {
		for i := 0; i < len(tiers); i++ {
			appendTier(i)
		}
		name += "-lf"
	}
	return Config{Name: name, Kinds: kinds, TierSet: tiers}
}

// NewNUMAConfig builds a multi-socket machine: every socket carries the
// same per-socket tier palette (countsPerSocket[i] cores of tiers[i], tier
// blocks in descending capacity order when bigFirst), its cores split
// contiguously into domainsPerSocket shared-LLC domains, and migrations pay
// penaltyCycles destination-core cycles per distance hop. The name prefixes
// the per-socket shape with the socket count, e.g. "2x32B32M64S".
func NewNUMAConfig(sockets, domainsPerSocket int, tiers []Tier, countsPerSocket []int, penaltyCycles float64, bigFirst bool) Config {
	if sockets < 1 || domainsPerSocket < 1 {
		panic(fmt.Sprintf("cpu: NewNUMAConfig needs positive shape, got %d sockets × %d domains", sockets, domainsPerSocket))
	}
	socket := NewTieredConfig(tiers, countsPerSocket, bigFirst)
	perSocket := len(socket.Kinds)
	if perSocket%domainsPerSocket != 0 {
		panic(fmt.Sprintf("cpu: NewNUMAConfig socket of %d cores does not split into %d LLC domains", perSocket, domainsPerSocket))
	}
	name := fmt.Sprintf("%dx%s", sockets, socket.Name)
	checkCoreCount(sockets*perSocket, "config "+name)
	kinds := make([]Kind, 0, sockets*perSocket)
	for s := 0; s < sockets; s++ {
		kinds = append(kinds, socket.Kinds...)
	}
	return Config{
		Name:    name,
		Kinds:   kinds,
		TierSet: tiers,
		Topo:    topo.Uniform(sockets, domainsPerSocket, perSocket/domainsPerSocket, penaltyCycles),
	}
}

// DescribeTopology renders the config's socket/LLC-domain layout for the
// CLI tools: a summary line plus one line per domain with its socket, core
// range and tier mix. Flat configs get a single "flat" line.
func (c Config) DescribeTopology() []string {
	t := c.Topo
	if t.IsFlat() {
		return []string{fmt.Sprintf("topology: flat (%d cores, one implicit LLC domain)", len(c.Kinds))}
	}
	lines := []string{fmt.Sprintf("topology: %d sockets, %d LLC domains, migration cost %g cycles/hop",
		t.NumSockets(), t.NumDomains(), t.PenaltyCycles)}
	for di, d := range t.Domains {
		counts := make([]int, c.NumTiers())
		for _, id := range d.Cores {
			counts[c.Kinds[id]]++
		}
		mix := ""
		for i := len(counts) - 1; i >= 0; i-- {
			if counts[i] == 0 {
				continue
			}
			if mix != "" {
				mix += "+"
			}
			sym := c.Tiers()[i].Symbol
			if sym == "" {
				sym = "?"
			}
			mix += fmt.Sprintf("%d%s", counts[i], sym)
		}
		lines = append(lines, fmt.Sprintf("  socket %d / domain %d: cores %s (%s)", d.Socket, di, coreRangeString(d.Cores), mix))
	}
	return lines
}

// coreRangeString compresses a core list into "0-31" / "0-3,8" display form.
func coreRangeString(ids []int) string {
	sorted := append([]int(nil), ids...)
	sort.Ints(sorted)
	out := ""
	for i := 0; i < len(sorted); {
		j := i
		for j+1 < len(sorted) && sorted[j+1] == sorted[j]+1 {
			j++
		}
		if out != "" {
			out += ","
		}
		if i == j {
			out += fmt.Sprintf("%d", sorted[i])
		} else {
			out += fmt.Sprintf("%d-%d", sorted[i], sorted[j])
		}
		i = j + 1
	}
	return out
}

// Ordered returns the config with its cores regrouped by tier: descending
// capacity when bigFirst (the evaluated default), ascending otherwise (the
// "-lf" variant the paper averages against). Per-tier counts are preserved.
// On a topology config the regrouping happens within each LLC domain, so
// the socket layout — and every domain's tier composition — is preserved.
func (c Config) Ordered(bigFirst bool) Config {
	var kinds []Kind
	if c.Topo.IsFlat() {
		counts := make([]int, c.NumTiers())
		for _, k := range c.Kinds {
			counts[k]++
		}
		kinds = make([]Kind, 0, len(c.Kinds))
		if bigFirst {
			for i := len(counts) - 1; i >= 0; i-- {
				for n := 0; n < counts[i]; n++ {
					kinds = append(kinds, Kind(i))
				}
			}
		} else {
			for i := 0; i < len(counts); i++ {
				for n := 0; n < counts[i]; n++ {
					kinds = append(kinds, Kind(i))
				}
			}
		}
	} else {
		kinds = make([]Kind, len(c.Kinds))
		for _, d := range c.Topo.Domains {
			ids := append([]int(nil), d.Cores...)
			sort.Ints(ids)
			counts := make([]int, c.NumTiers())
			for _, id := range ids {
				counts[c.Kinds[id]]++
			}
			pos := 0
			write := func(tier int) {
				for n := 0; n < counts[tier]; n++ {
					kinds[ids[pos]] = Kind(tier)
					pos++
				}
			}
			if bigFirst {
				for i := len(counts) - 1; i >= 0; i-- {
					write(i)
				}
			} else {
				for i := 0; i < len(counts); i++ {
					write(i)
				}
			}
		}
	}
	name := c.Name
	for len(name) > 3 && name[len(name)-3:] == "-lf" {
		name = name[:len(name)-3]
	}
	if !bigFirst {
		name += "-lf"
	}
	return Config{Name: name, Kinds: kinds, TierSet: c.TierSet, Topo: c.Topo}
}

// NumCores returns the total core count.
func (c Config) NumCores() int { return len(c.Kinds) }

// NumInTier returns the number of cores with the given tier index.
func (c Config) NumInTier(tier int) int {
	n := 0
	for _, k := range c.Kinds {
		if int(k) == tier {
			n++
		}
	}
	return n
}

// AggregateCapacity returns the machine's total nominal work-rate: the
// sum of every core's tier capacity, in base-tier (little-core) work
// units per nanosecond. Load generators use it to translate a target
// utilisation into an arrival rate.
func (c Config) AggregateCapacity() float64 {
	var total float64
	for i := range c.Kinds {
		total += c.Tier(i).Capacity
	}
	return total
}

// NumBig returns the number of cores in the top (highest-capacity) tier.
func (c Config) NumBig() int { return c.NumInTier(c.NumTiers() - 1) }

// NumLittle returns the number of cores in the base tier.
func (c Config) NumLittle() int { return c.NumInTier(0) }

// TierIndices returns the core indices belonging to the given tier, in
// core order.
func (c Config) TierIndices(tier int) []int {
	var out []int
	for i, k := range c.Kinds {
		if int(k) == tier {
			out = append(out, i)
		}
	}
	return out
}

// BigIndices returns the core indices of the top tier, in order.
func (c Config) BigIndices() []int { return c.TierIndices(c.NumTiers() - 1) }

// LittleIndices returns the core indices of the base tier, in order.
func (c Config) LittleIndices() []int { return c.TierIndices(0) }

// Spec returns the flattened core spec for core index i.
func (c Config) Spec(i int) Spec {
	t := c.Tier(i)
	return Spec{Kind: c.Kinds[i], Name: t.Model, FreqMHz: t.FreqMHz,
		L1IKB: t.L1IKB, L1DKB: t.L1DKB, L2KB: t.L2KB}
}

// AllBig returns the metric-baseline variant of c: the same number of cores,
// all in the top tier. H_ANTT / H_STP / H_NTT normalise against runtimes
// measured alone on a big-only system (§5.1 "Metrics").
func (c Config) AllBig() Config {
	top := Kind(c.NumTiers() - 1)
	kinds := make([]Kind, len(c.Kinds))
	for i := range kinds {
		kinds[i] = top
	}
	return Config{Name: c.Name + "-allbig", Kinds: kinds, TierSet: c.TierSet, Topo: c.Topo}
}

// NewSymmetric builds an n-core machine of a single core kind from the
// default palette — the symmetric big-only / little-only configurations the
// speedup model is trained on (§4.1) and the all-big metric baseline runs
// on.
func NewSymmetric(kind Kind, n int) Config {
	checkCoreCount(n, "NewSymmetric machine")
	kinds := make([]Kind, n)
	for i := range kinds {
		kinds[i] = kind
	}
	return Config{Name: fmt.Sprintf("%d%s", n, kind), Kinds: kinds}
}

// NewSymmetricTier builds an n-core machine whose cores all belong to the
// given tier — the single-tier training machines per-tier speedup models
// collect their counter runs on (the multi-tier analogue of NewSymmetric).
func NewSymmetricTier(t Tier, n int) Config {
	checkCoreCount(n, "NewSymmetricTier machine")
	kinds := make([]Kind, n)
	sym := t.Symbol
	if sym == "" {
		sym = t.Name
	}
	return Config{Name: fmt.Sprintf("%d%s-sym", n, sym), Kinds: kinds, TierSet: []Tier{t}}
}

// The four evaluated platform shapes (§5.1): xB yS = x big + y little cores.
var (
	Config2B2S = NewConfig(2, 2, true)
	Config2B4S = NewConfig(2, 4, true)
	Config4B2S = NewConfig(4, 2, true)
	Config4B4S = NewConfig(4, 4, true)
)

// Config2B2M2S is the tri-gear extension shape: 2 big + 2 medium + 2 little
// cores with DVFS ladders on every tier (ARM DynamIQ-style).
var Config2B2M2S = NewTieredConfig(TriGearTiers(), []int{2, 2, 2}, true)

// The committed big-machine palettes the mask-set affinity representation
// unlocks (the paper's shapes stop at 8 cores; these are the server-scale
// rungs the speed campaign benchmarks against).
var (
	// Config32B32M64S is a 128-core tri-gear server: 32 big + 32 medium +
	// 64 little cores with DVFS ladders on every tier.
	Config32B32M64S = NewTieredConfig(TriGearTiers(), []int{64, 32, 32}, true)
	// Config64B64S is a 128-core two-tier big.LITTLE server on the paper's
	// fixed-frequency anchor tiers.
	Config64B64S = NewConfig(64, 64, true)
)

// The committed NUMA palettes: multi-socket machines with shared-LLC
// domains and a cold-cache migration penalty per distance hop.
var (
	// Config2x32B32M64S is a 256-core two-socket tri-gear server: each
	// socket carries 32 big + 32 medium + 64 little cores split into two
	// LLC domains.
	Config2x32B32M64S = NewNUMAConfig(2, 2, TriGearTiers(), []int{64, 32, 32}, topo.DefaultPenaltyCycles, true)
	// Config4x16B16S is a 128-core four-socket big.LITTLE server: one LLC
	// domain per socket of 16 big + 16 little cores.
	Config4x16B16S = NewNUMAConfig(4, 1, DefaultTiers(), []int{16, 16}, topo.DefaultPenaltyCycles, true)
	// Config2x2B2S is the small two-socket shape (2 big + 2 little per
	// socket) the determinism tests and migration-cost sweeps use.
	Config2x2B2S = NewNUMAConfig(2, 1, DefaultTiers(), []int{2, 2}, topo.DefaultPenaltyCycles, true)
)

// EvaluatedConfigs lists the four paper platform shapes in paper order.
func EvaluatedConfigs() []Config {
	return []Config{Config2B2S, Config2B4S, Config4B2S, Config4B4S}
}

// NamedConfigs lists every named platform shape the tools accept: the four
// paper shapes, the tri-gear extension, the big-machine palettes and the
// multi-socket NUMA palettes.
func NamedConfigs() []Config {
	return append(EvaluatedConfigs(), Config2B2M2S, Config32B32M64S, Config64B64S,
		Config2x2B2S, Config2x32B32M64S, Config4x16B16S)
}

// ConfigByName returns the named config (for CLI tools), or false.
func ConfigByName(name string) (Config, bool) {
	for _, c := range NamedConfigs() {
		if c.Name == name {
			return c, true
		}
	}
	return Config{}, false
}
