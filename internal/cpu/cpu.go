// Package cpu models the asymmetric multicore hardware the paper simulates
// with gem5: ARM big.LITTLE-like processors with out-of-order "big" cores
// (Cortex-A57-like, 2 GHz) and in-order "little" cores (Cortex-A53-like,
// 1.2 GHz).
//
// The model is timing-level, not cycle-level. Each thread carries a hidden
// WorkProfile describing its microarchitectural character (ILP, branchiness,
// memory intensity, ...). The profile determines (a) the thread's true
// big-vs-little speedup — how much faster a big core retires its work — and
// (b) the synthetic hardware performance counters the schedulers observe.
// Schedulers never see the profile or the true speedup; they must infer it
// from counters through the trained model, exactly as on real hardware.
package cpu

import "fmt"

// Kind distinguishes the two core types of a single-ISA AMP.
type Kind int

const (
	// Little is an in-order, low-power core (Cortex-A53-like).
	Little Kind = iota
	// Big is an out-of-order, high-performance core (Cortex-A57-like).
	Big
)

// String returns "big" or "little".
func (k Kind) String() string {
	if k == Big {
		return "big"
	}
	return "little"
}

// Spec describes one core type.
type Spec struct {
	Kind    Kind
	Name    string
	FreqMHz int
	// L1I, L1D and L2 sizes in KiB; informational (they shape the counter
	// model constants) and reported by tooling.
	L1IKB, L1DKB, L2KB int
}

// Standard core specs mirroring the paper's gem5 configuration (§5.1).
var (
	BigSpec    = Spec{Kind: Big, Name: "cortexa57", FreqMHz: 2000, L1IKB: 48, L1DKB: 32, L2KB: 2048}
	LittleSpec = Spec{Kind: Little, Name: "cortexa53", FreqMHz: 1200, L1IKB: 32, L1DKB: 32, L2KB: 512}
)

// FreqRatio is the big/little clock ratio (2.0 GHz / 1.2 GHz).
const FreqRatio = 2000.0 / 1200.0

// Config is a machine configuration: an ordered list of core kinds. Order
// matters — the paper averages each experiment over two simulations with
// big-cores-first and little-cores-first orderings, because initial
// placement follows core order.
type Config struct {
	Name  string
	Kinds []Kind
}

// NewConfig builds a configuration with nBig big cores and nLittle little
// cores. bigFirst selects the core ordering.
func NewConfig(nBig, nLittle int, bigFirst bool) Config {
	name := fmt.Sprintf("%dB%dS", nBig, nLittle)
	kinds := make([]Kind, 0, nBig+nLittle)
	if bigFirst {
		for i := 0; i < nBig; i++ {
			kinds = append(kinds, Big)
		}
		for i := 0; i < nLittle; i++ {
			kinds = append(kinds, Little)
		}
	} else {
		for i := 0; i < nLittle; i++ {
			kinds = append(kinds, Little)
		}
		for i := 0; i < nBig; i++ {
			kinds = append(kinds, Big)
		}
		name += "-lf" // little-first ordering
	}
	return Config{Name: name, Kinds: kinds}
}

// NumCores returns the total core count.
func (c Config) NumCores() int { return len(c.Kinds) }

// NumBig returns the number of big cores.
func (c Config) NumBig() int {
	n := 0
	for _, k := range c.Kinds {
		if k == Big {
			n++
		}
	}
	return n
}

// NumLittle returns the number of little cores.
func (c Config) NumLittle() int { return c.NumCores() - c.NumBig() }

// BigIndices returns the core indices that are big cores, in order.
func (c Config) BigIndices() []int {
	var out []int
	for i, k := range c.Kinds {
		if k == Big {
			out = append(out, i)
		}
	}
	return out
}

// LittleIndices returns the core indices that are little cores, in order.
func (c Config) LittleIndices() []int {
	var out []int
	for i, k := range c.Kinds {
		if k == Little {
			out = append(out, i)
		}
	}
	return out
}

// Spec returns the core spec for core index i.
func (c Config) Spec(i int) Spec {
	if c.Kinds[i] == Big {
		return BigSpec
	}
	return LittleSpec
}

// AllBig returns the metric-baseline variant of c: the same number of cores,
// all big. H_ANTT / H_STP / H_NTT normalise against runtimes measured alone
// on a big-only system (§5.1 "Metrics").
func (c Config) AllBig() Config {
	kinds := make([]Kind, len(c.Kinds))
	for i := range kinds {
		kinds[i] = Big
	}
	return Config{Name: c.Name + "-allbig", Kinds: kinds}
}

// NewSymmetric builds an n-core machine of a single core kind — the
// symmetric big-only / little-only configurations the speedup model is
// trained on (§4.1) and the all-big metric baseline runs on.
func NewSymmetric(kind Kind, n int) Config {
	kinds := make([]Kind, n)
	for i := range kinds {
		kinds[i] = kind
	}
	return Config{Name: fmt.Sprintf("%d%s", n, kind), Kinds: kinds}
}

// The four evaluated platform shapes (§5.1): xB yS = x big + y little cores.
var (
	Config2B2S = NewConfig(2, 2, true)
	Config2B4S = NewConfig(2, 4, true)
	Config4B2S = NewConfig(4, 2, true)
	Config4B4S = NewConfig(4, 4, true)
)

// EvaluatedConfigs lists the four platform shapes in paper order.
func EvaluatedConfigs() []Config {
	return []Config{Config2B2S, Config2B4S, Config4B2S, Config4B4S}
}

// ConfigByName returns the evaluated config with the given name (for CLI
// tools), or false.
func ConfigByName(name string) (Config, bool) {
	for _, c := range EvaluatedConfigs() {
		if c.Name == name {
			return c, true
		}
	}
	return Config{}, false
}
