package cpu

import (
	"reflect"
	"strings"
	"testing"

	"colab/internal/topo"
)

// The topology fold must be invisible on flat configs: every pre-topology
// fingerprint — and with it CellKey identity, journals and fleet wire
// specs — stays byte-identical.
func TestFlatFingerprintsUnchanged(t *testing.T) {
	want := map[string]string{
		"2B2S":      "2B2S#e3fe6e794b9fbf44",
		"2B4S":      "2B4S#0e927f3d1221f014",
		"4B2S":      "4B2S#91d41ef3bf865788",
		"4B4S":      "4B4S#06b41ab0af0fb2c8",
		"2B2M2S":    "2B2M2S#9aad8a2ff2a22bd3",
		"32B32M64S": "32B32M64S#56c37b7ba603ce73",
		"64B64S":    "64B64S#2171b29e32aad740",
	}
	for _, c := range NamedConfigs() {
		w, ok := want[c.Name]
		if !ok {
			continue // NUMA palettes are new; covered below
		}
		if got := c.Fingerprint(); got != w {
			t.Errorf("flat fingerprint for %s drifted: got %s, want %s", c.Name, got, w)
		}
	}
}

func TestNUMAFingerprintFoldsTopology(t *testing.T) {
	numa := Config2x2B2S
	flat := numa.Flat()
	fpNUMA, fpFlat := numa.Fingerprint(), flat.Fingerprint()
	if fpNUMA == fpFlat {
		t.Fatalf("NUMA config fingerprints identically to its flat shape: %s", fpNUMA)
	}
	// Same layout at a different migration cost is a different machine.
	if got := numa.WithMigrationCost(1).Fingerprint(); got == fpNUMA {
		t.Fatalf("changing migration cost did not change the fingerprint")
	}
	// But the fold is deterministic.
	if again := Config2x2B2S.Fingerprint(); again != fpNUMA {
		t.Fatalf("NUMA fingerprint unstable: %s vs %s", fpNUMA, again)
	}
}

func TestNewNUMAConfigLayout(t *testing.T) {
	c := Config2x2B2S
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if c.Name != "2x2B2S" {
		t.Fatalf("name = %q, want 2x2B2S", c.Name)
	}
	if len(c.Kinds) != 8 {
		t.Fatalf("cores = %d, want 8", len(c.Kinds))
	}
	// Per-socket big-first blocks: B B S S | B B S S.
	want := []Kind{Big, Big, Little, Little, Big, Big, Little, Little}
	if !reflect.DeepEqual(c.Kinds, want) {
		t.Fatalf("kinds = %v, want %v", c.Kinds, want)
	}
	if got := c.Topo.NumSockets(); got != 2 {
		t.Fatalf("sockets = %d, want 2", got)
	}
	if got := c.Topo.NumDomains(); got != 2 {
		t.Fatalf("domains = %d, want 2", got)
	}

	big := Config2x32B32M64S
	if err := big.Validate(); err != nil {
		t.Fatalf("Validate(%s): %v", big.Name, err)
	}
	if big.Name != "2x32B32M64S" || len(big.Kinds) != 256 {
		t.Fatalf("big palette: name %q cores %d, want 2x32B32M64S with 256", big.Name, len(big.Kinds))
	}
	if got := big.Topo.NumDomains(); got != 4 {
		t.Fatalf("big palette domains = %d, want 4", got)
	}

	four := Config4x16B16S
	if err := four.Validate(); err != nil {
		t.Fatalf("Validate(%s): %v", four.Name, err)
	}
	if four.Name != "4x16B16S" || len(four.Kinds) != 128 || four.Topo.NumSockets() != 4 {
		t.Fatalf("four-socket palette: name %q cores %d sockets %d", four.Name, len(four.Kinds), four.Topo.NumSockets())
	}
}

func TestOrderedPreservesDomainComposition(t *testing.T) {
	c := Config2x32B32M64S
	lf := c.Ordered(false)
	if lf.Name != "2x32B32M64S-lf" {
		t.Fatalf("lf name = %q", lf.Name)
	}
	if !reflect.DeepEqual(lf.Topo, c.Topo) {
		t.Fatalf("Ordered dropped the topology")
	}
	// Every domain keeps its tier composition — only the order within the
	// domain flips — so the topology still describes the same machine.
	domains := c.Topo.CoreDomains(len(c.Kinds))
	for _, cfg := range []Config{lf, lf.Ordered(true)} {
		for di := range c.Topo.Domains {
			orig := make([]int, c.NumTiers())
			got := make([]int, c.NumTiers())
			for id, d := range domains {
				if d == di {
					orig[c.Kinds[id]]++
					got[cfg.Kinds[id]]++
				}
			}
			if !reflect.DeepEqual(orig, got) {
				t.Fatalf("domain %d tier mix changed: %v -> %v (%s)", di, orig, got, cfg.Name)
			}
		}
	}
	// Round trip restores the original layout exactly.
	back := lf.Ordered(true)
	if !reflect.DeepEqual(back.Kinds, c.Kinds) || back.Name != c.Name {
		t.Fatalf("Ordered round trip drifted")
	}
	// Within-domain ordering in the lf variant is ascending capacity.
	// Domain 0 holds 32 big + 32 medium cores: lf puts medium (tier 1)
	// first and big (tier 2) last; domain 1 is all little (tier 0).
	if lf.Kinds[0] != Kind(1) || lf.Kinds[63] != Kind(2) || lf.Kinds[64] != Kind(0) {
		t.Fatalf("lf variant not ascending within domain: %v %v %v", lf.Kinds[0], lf.Kinds[63], lf.Kinds[64])
	}
}

func TestFlatHelperStripsTopology(t *testing.T) {
	flat := Config2x2B2S.Flat()
	if !flat.Topo.IsFlat() {
		t.Fatalf("Flat() left a topology behind")
	}
	if !reflect.DeepEqual(flat.Kinds, Config2x2B2S.Kinds) {
		t.Fatalf("Flat() changed the core layout")
	}
}

func TestWithTopologyValidates(t *testing.T) {
	c := NewConfig(2, 2, true).WithTopology(topo.Uniform(2, 1, 2, 0))
	if err := c.Validate(); err != nil {
		t.Fatalf("valid topology rejected: %v", err)
	}
	bad := NewConfig(2, 2, true).WithTopology(topo.Uniform(2, 1, 3, 0)) // 6 cores over a 4-core machine
	if err := bad.Validate(); err == nil {
		t.Fatalf("mismatched topology accepted")
	}
}

func TestDescribeTopology(t *testing.T) {
	flat := Config4B4S.DescribeTopology()
	if len(flat) != 1 || !strings.Contains(flat[0], "flat") {
		t.Fatalf("flat describe = %q", flat)
	}
	numa := Config2x2B2S.DescribeTopology()
	if len(numa) != 3 {
		t.Fatalf("describe lines = %d, want summary + 2 domains: %q", len(numa), numa)
	}
	if !strings.Contains(numa[0], "2 sockets") || !strings.Contains(numa[0], "8000") {
		t.Fatalf("summary line = %q", numa[0])
	}
	if !strings.Contains(numa[1], "socket 0 / domain 0: cores 0-3 (2B+2S)") {
		t.Fatalf("domain line = %q", numa[1])
	}
	if !strings.Contains(numa[2], "socket 1 / domain 1: cores 4-7 (2B+2S)") {
		t.Fatalf("domain line = %q", numa[2])
	}
}
