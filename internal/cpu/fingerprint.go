package cpu

import (
	"fmt"
	"hash/fnv"
)

// Fingerprint identifies a machine shape for content-addressed caches and
// cell keys: the config name plus a 64-bit digest of the full structure
// (per-core tier indices and every tier parameter, DVFS ladders included).
// Config.Name alone is not identity — user-built palettes can generate the
// same name for materially different machines — while the digest pins the
// structure without embedding a 128-core description in every key. The
// digest is a pure function of the config's value, stable across processes
// and runs.
func (c Config) Fingerprint() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "kinds:%v", c.Kinds)
	for _, t := range c.Tiers() {
		fmt.Fprintf(h, "|tier:%s,%s,%s,%d,%g,%g,%g,%g,%d,%d,%d,%v",
			t.Name, t.Symbol, t.Model, t.FreqMHz, t.Uarch, t.Capacity,
			t.MinSpeedup, t.MaxSpeedup, t.L1IKB, t.L1DKB, t.L2KB, t.OPPsMHz)
	}
	// Topology folds in via its canonical string — but only when non-flat,
	// so every pre-topology fingerprint (and with it CellKey identity,
	// journals and fleet wire specs) is unchanged byte for byte.
	if !c.Topo.IsFlat() {
		fmt.Fprintf(h, "|topo:%s", c.Topo.Canonical())
	}
	return fmt.Sprintf("%s#%016x", c.Name, h.Sum64())
}
