package cpu

import (
	"testing"
	"testing/quick"
)

func TestSpeedupOnAnchorsMatchLegacy(t *testing.T) {
	// The tiered speedup must reduce exactly to the two-kind model: the
	// base tier defines the work unit and the big anchor is TrueSpeedup.
	f := func(ilp, br, mem, store, fp, code float64) bool {
		p := WorkProfile{ILP: ilp, BranchRate: br, MemIntensity: mem,
			StoreRate: store, FPRate: fp, CodeFootprint: code}.Clamp()
		return p.SpeedupOn(TierLittle) == 1.0 &&
			p.SpeedupOn(TierBig) == p.TrueSpeedup() &&
			p.SpeedupOn(TierLittleDVFS) == 1.0 &&
			p.SpeedupOn(TierBigDVFS) == p.TrueSpeedup()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedupOnMediumBetweenAnchors(t *testing.T) {
	f := func(ilp, mem float64) bool {
		p := WorkProfile{ILP: ilp, MemIntensity: mem, BranchRate: 0.1}.Clamp()
		m := p.SpeedupOn(TierMedium)
		return m >= 1.0 && m <= p.SpeedupOn(TierBig) && m >= TierMedium.MinSpeedup && m <= TierMedium.MaxSpeedup
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRelSpeedupAnchors(t *testing.T) {
	for _, pred := range []float64{1.0, 1.3, 1.8, 2.85} {
		if got := TierLittle.RelSpeedup(pred); got != 1.0 {
			t.Errorf("little RelSpeedup(%v) = %v, want 1", pred, got)
		}
		if got := TierBig.RelSpeedup(pred); got != pred {
			t.Errorf("big RelSpeedup(%v) = %v, want identity", pred, got)
		}
		m := TierMedium.RelSpeedup(pred)
		if m < 1.0 || m > pred+1e-12 {
			t.Errorf("medium RelSpeedup(%v) = %v outside [1, pred]", pred, m)
		}
	}
}

func TestTierValidate(t *testing.T) {
	for _, tier := range TriGearTiers() {
		if err := tier.Validate(); err != nil {
			t.Errorf("%s: %v", tier.Name, err)
		}
	}
	bad := TierMedium
	bad.OPPsMHz = []int{1600, 1000} // not ascending
	if err := bad.Validate(); err == nil {
		t.Error("descending ladder accepted")
	}
	bad = TierMedium
	bad.OPPsMHz = []int{1000, 1300} // top != nominal
	if err := bad.Validate(); err == nil {
		t.Error("ladder not ending at nominal accepted")
	}
}

func TestNewTieredConfigLayout(t *testing.T) {
	cfg := Config2B2M2S
	if cfg.Name != "2B2M2S" {
		t.Fatalf("name %q", cfg.Name)
	}
	if cfg.NumCores() != 6 || cfg.NumTiers() != 3 {
		t.Fatalf("cores %d tiers %d", cfg.NumCores(), cfg.NumTiers())
	}
	// Big-first layout: big block, medium block, little block.
	wantKinds := []Kind{2, 2, 1, 1, 0, 0}
	for i, k := range cfg.Kinds {
		if k != wantKinds[i] {
			t.Fatalf("kinds %v, want %v", cfg.Kinds, wantKinds)
		}
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.NumBig() != 2 || cfg.NumInTier(1) != 2 || cfg.NumLittle() != 2 {
		t.Errorf("per-tier counts: big=%d mid=%d little=%d", cfg.NumBig(), cfg.NumInTier(1), cfg.NumLittle())
	}

	lf := NewTieredConfig(TriGearTiers(), []int{2, 2, 2}, false)
	if lf.Name != "2B2M2S-lf" {
		t.Errorf("little-first name %q", lf.Name)
	}
	if lf.Kinds[0] != 0 || lf.Kinds[5] != 2 {
		t.Errorf("little-first layout %v", lf.Kinds)
	}
}

func TestOrderedMatchesNewConfig(t *testing.T) {
	for _, cfg := range EvaluatedConfigs() {
		for _, bigFirst := range []bool{true, false} {
			want := NewConfig(cfg.NumBig(), cfg.NumLittle(), bigFirst)
			got := cfg.Ordered(bigFirst)
			if got.Name != want.Name {
				t.Errorf("%s Ordered(%v) name %q, want %q", cfg.Name, bigFirst, got.Name, want.Name)
			}
			for i := range want.Kinds {
				if got.Kinds[i] != want.Kinds[i] {
					t.Errorf("%s Ordered(%v) kinds %v, want %v", cfg.Name, bigFirst, got.Kinds, want.Kinds)
					break
				}
			}
		}
	}
	// Ordering round-trips on the tri-gear shape.
	lf := Config2B2M2S.Ordered(false)
	back := lf.Ordered(true)
	if back.Name != Config2B2M2S.Name {
		t.Errorf("round-trip name %q", back.Name)
	}
}

func TestOPPPowerStates(t *testing.T) {
	p := DefaultPower
	if p.TierBusyW(TierBig) != p.BigBusyW || p.TierBusyW(TierLittle) != p.LittleBusyW {
		t.Error("anchor busy power drifted")
	}
	mid := p.TierBusyW(TierMedium)
	if mid <= p.LittleBusyW || mid >= p.BigBusyW {
		t.Errorf("medium busy %v outside anchors", mid)
	}
	// Per-OPP power: nominal exact, lower points cheaper, monotone.
	if p.OPPBusyW(TierMedium, TierMedium.FreqMHz) != mid {
		t.Error("nominal OPP power not exact")
	}
	prev := 0.0
	for _, f := range TierMedium.Ladder() {
		w := p.OPPBusyW(TierMedium, f)
		if w <= prev {
			t.Errorf("OPP power not increasing at %d MHz", f)
		}
		prev = w
	}
	if p.OPPBusyW(TierMedium, 1000) >= mid {
		t.Error("downclocked point not cheaper than nominal")
	}
}

func TestConfigByNameIncludesTriGear(t *testing.T) {
	cfg, ok := ConfigByName("2B2M2S")
	if !ok || cfg.NumTiers() != 3 {
		t.Fatalf("2B2M2S not resolvable: %v %v", cfg, ok)
	}
	if _, ok := ConfigByName("2B2S"); !ok {
		t.Fatal("paper config lost")
	}
}
