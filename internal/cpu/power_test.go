package cpu

import (
	"testing"

	"colab/internal/sim"
)

func TestCoreEnergyJ(t *testing.T) {
	pm := PowerModel{BigBusyW: 2, BigIdleW: 0.5, LittleBusyW: 1, LittleIdleW: 0.1}
	// 1 s busy + 2 s idle on big: 2*1 + 0.5*2 = 3 J.
	if got := pm.CoreEnergyJ(Big, sim.Second, 2*sim.Second); got != 3 {
		t.Fatalf("big energy = %v", got)
	}
	// Same on little: 1*1 + 0.1*2 = 1.2 J.
	if got := pm.CoreEnergyJ(Little, sim.Second, 2*sim.Second); got != 1.2 {
		t.Fatalf("little energy = %v", got)
	}
	if pm.CoreEnergyJ(Big, 0, 0) != 0 {
		t.Fatalf("zero time must cost zero energy")
	}
}

func TestDefaultPowerOrdering(t *testing.T) {
	// Physical sanity: big busy > little busy > idle draws, all positive.
	p := DefaultPower
	if !(p.BigBusyW > p.LittleBusyW && p.LittleBusyW > p.BigIdleW && p.BigIdleW > p.LittleIdleW && p.LittleIdleW > 0) {
		t.Fatalf("implausible default power model: %+v", p)
	}
	// For equal busy time, the big core must cost more.
	if DefaultPower.CoreEnergyJ(Big, sim.Second, 0) <= DefaultPower.CoreEnergyJ(Little, sim.Second, 0) {
		t.Fatalf("big core must draw more than little")
	}
}
