package cpu

import (
	"testing"

	"colab/internal/mathx"
)

// The tier-aware synthesis must reproduce the two-tier model bit-for-bit on
// the anchor tiers (the golden-corpus guarantee) — same RNG stream, same
// values.
func TestSampleCountersOnMatchesAnchors(t *testing.T) {
	p := WorkProfile{ILP: 0.6, BranchRate: 0.1, MemIntensity: 0.5, StoreRate: 0.3, FPRate: 0.2, CodeFootprint: 0.4}
	for _, c := range []struct {
		kind Kind
		tier Tier
	}{{Big, TierBig}, {Little, TierLittle}, {Big, TierBigDVFS}, {Little, TierLittleDVFS}} {
		a := SampleCounters(mathx.NewRNG(3), p, c.kind, 1e7, 2e7, 5e5)
		b := SampleCountersOn(mathx.NewRNG(3), p, c.tier, 1e7, 2e7, 5e5)
		if a != b {
			t.Errorf("tier %q drifts from kind %v synthesis:\n %v\nvs %v", c.tier.Name, c.kind, a, b)
		}
	}
}

// Middle tiers must stop emitting big-like counters: the medium core's
// 1 MiB L2 puts its miss counters strictly between the big (2 MiB) and
// little (512 KiB) anchors for the same work.
func TestMediumTierCountersBetweenAnchors(t *testing.T) {
	p := WorkProfile{ILP: 0.4, BranchRate: 0.08, MemIntensity: 0.7, StoreRate: 0.4}
	perInst := func(tier Tier) float64 {
		v := SampleCountersOn(mathx.NewRNG(11), p, tier, 1e7, 2e7, 0).NormalizeByInsts()
		return v[CtrL2Misses]
	}
	big, med, little := perInst(TierBig), perInst(TierMedium), perInst(TierLittle)
	if !(big < med && med < little) {
		t.Fatalf("L2 misses/inst not ordered big < medium < little: %.6g, %.6g, %.6g", big, med, little)
	}
}

// The miss multiplier is anchored exactly and monotone in L2 size; tiers
// without a declared L2 fall back to Uarch interpolation.
func TestL2MissMultAnchors(t *testing.T) {
	if got := l2MissMult(TierBig); got != 1.0 {
		t.Errorf("big multiplier %v, want exactly 1", got)
	}
	if got := l2MissMult(TierLittle); got != 1.8 {
		t.Errorf("little multiplier %v, want exactly 1.8", got)
	}
	m := l2MissMult(TierMedium)
	if !(1.0 < m && m < 1.8) {
		t.Errorf("medium multiplier %v outside (1, 1.8)", m)
	}
	noL2 := Tier{Name: "x", FreqMHz: 1000, Uarch: 0.5, Capacity: 1.2, MinSpeedup: 1, MaxSpeedup: 2}
	if got, want := l2MissMult(noL2), 1.8-0.8*0.5; got != want {
		t.Errorf("no-L2 fallback %v, want %v", got, want)
	}
}
