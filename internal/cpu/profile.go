package cpu

import "colab/internal/mathx"

// WorkProfile is the hidden microarchitectural character of a thread's
// compute work. It is ground truth known only to the simulator; schedulers
// observe it indirectly through the synthetic performance counters.
//
// All fields are dimensionless in [0, 1] except BranchRate (branches per
// instruction, realistically <= ~0.3).
type WorkProfile struct {
	// ILP is exploitable instruction-level parallelism. High-ILP code gains
	// the most from the out-of-order big core.
	ILP float64
	// BranchRate is branches per instruction. Branchy code benefits from the
	// big core's predictor but suffers on the in-order little core.
	BranchRate float64
	// MemIntensity is pressure on the memory hierarchy. Memory-bound work
	// gains little from a faster pipeline.
	MemIntensity float64
	// StoreRate is store-queue pressure (drives rename.SQFullEvents).
	StoreRate float64
	// FPRate is the floating-point fraction of the instruction mix.
	FPRate float64
	// CodeFootprint is instruction-cache pressure (drives icache stalls).
	CodeFootprint float64
}

// Clamp returns the profile with all fields limited to their valid ranges.
func (p WorkProfile) Clamp() WorkProfile {
	p.ILP = mathx.Clamp(p.ILP, 0, 1)
	p.BranchRate = mathx.Clamp(p.BranchRate, 0, 0.3)
	p.MemIntensity = mathx.Clamp(p.MemIntensity, 0, 1)
	p.StoreRate = mathx.Clamp(p.StoreRate, 0, 1)
	p.FPRate = mathx.Clamp(p.FPRate, 0, 1)
	p.CodeFootprint = mathx.Clamp(p.CodeFootprint, 0, 1)
	return p
}

// uarchFactor is the profile's out-of-order benefit: how much faster a full
// OoO pipeline (at equal clock) retires this work than the in-order base.
// OoO execution pays off for high-ILP, branchy, cache-friendly code and is
// wasted on memory-bound code.
func (p WorkProfile) uarchFactor() float64 {
	uarch := 1.0 +
		0.55*p.ILP + // OoO window exploits independent instructions
		0.20*(p.BranchRate/0.3) - // better predictor + speculation depth
		0.45*p.MemIntensity - // memory wall: frequency does not help
		0.10*p.CodeFootprint // the bigger L1I helps, but front-end stalls cap gains
	return mathx.Clamp(uarch, 0.70, 1.70)
}

// SpeedupOn is the factor by which a core of tier t retires this work
// faster than a base-tier core at nominal frequency. It composes the tier's
// clock ratio over the 1.2 GHz reference with the tier-weighted
// microarchitectural factor: tiers between the in-order base (Uarch 0) and
// the full out-of-order big core (Uarch 1) receive a proportional share of
// the OoO benefit. The result is clamped to the tier's physical envelope;
// for the big anchor that lands in roughly [1.1, 2.8], matching the spread
// big.LITTLE studies report.
func (p WorkProfile) SpeedupOn(t Tier) float64 {
	if t.Uarch <= 0 && t.FreqMHz == RefFreqMHz {
		return 1.0 // the base tier defines the work unit
	}
	p = p.Clamp()
	uarch := p.uarchFactor()
	if t.Uarch < 1 {
		uarch = 1 + t.Uarch*(uarch-1)
	}
	fr := float64(t.FreqMHz) / float64(RefFreqMHz)
	return mathx.Clamp(fr*uarch, t.MinSpeedup, t.MaxSpeedup)
}

// TrueSpeedup is the factor by which a big (top-anchor) core retires this
// work faster than a little core — the ground truth the paper's speedup
// model is trained to predict.
func (p WorkProfile) TrueSpeedup() float64 {
	return p.SpeedupOn(TierBig)
}

// ExecRate returns the work units retired per nanosecond on a default-
// palette core of the given kind. Work is calibrated so a little core
// retires exactly 1 unit/ns; a big core retires TrueSpeedup units/ns.
// Segment durations in the workload DSL are therefore expressed directly as
// "nanoseconds on a little core".
func (p WorkProfile) ExecRate(k Kind) float64 {
	if k == Big {
		return p.TrueSpeedup()
	}
	return 1.0
}

// RelSpeedup converts a predicted big-vs-little speedup into the expected
// speedup on tier t: 1.0 on the base tier, the prediction itself on the big
// anchor, and the tier-weighted interpolation in between. Policies use it
// to turn the trained model's two-anchor prediction into per-tier
// scheduling decisions without retraining.
func (t Tier) RelSpeedup(pred float64) float64 {
	if t.Uarch <= 0 && t.FreqMHz == RefFreqMHz {
		return 1.0
	}
	if t.Uarch >= 1 && t.FreqMHz == BigSpec.FreqMHz {
		return pred
	}
	uarch := pred / FreqRatio // recover the microarchitectural factor
	if t.Uarch < 1 {
		uarch = 1 + t.Uarch*(uarch-1)
	}
	s := float64(t.FreqMHz) / float64(RefFreqMHz) * uarch
	s = mathx.Clamp(s, t.MinSpeedup, t.MaxSpeedup)
	// A lower tier never outruns the big anchor the prediction is for:
	// keep the tier order monotone even for degenerate predictions.
	if pred > 1 && s > pred {
		s = pred
	} else if pred <= 1 {
		s = 1
	}
	return s
}

// InstPerWorkUnit converts work units to retired instructions for counter
// synthesis: a little core at 1.2 GHz with the profile-dependent IPC.
func (p WorkProfile) InstPerWorkUnit() float64 {
	p = p.Clamp()
	// In-order IPC model: base 0.9, helped by ILP up to ~1.3, hurt by
	// memory stalls down to ~0.4.
	ipc := mathx.Clamp(0.9+0.4*p.ILP-0.5*p.MemIntensity, 0.35, 1.35)
	return ipc * (float64(LittleSpec.FreqMHz) / 1000.0) // instructions per ns of little-core time
}
