package cpu

import (
	"strings"
	"testing"
)

// Machines beyond MaxCores exceed the affinity mask-set universe; every
// construction path must refuse them loudly instead of corrupting affinity
// state downstream.
func TestMaxCoresGuards(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s: want panic on >%d cores", name, MaxCores)
				return
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "max 1024 supported") {
				t.Errorf("%s: panic %v does not explain the core limit", name, r)
			}
		}()
		f()
	}
	mustPanic("NewConfig", func() { NewConfig(520, 520, true) })
	mustPanic("NewTieredConfig", func() { NewTieredConfig(TriGearTiers(), []int{400, 400, 400}, true) })
	mustPanic("NewSymmetric", func() { NewSymmetric(Big, MaxCores+1) })
	mustPanic("NewSymmetricTier", func() { NewSymmetricTier(TierBig, MaxCores+1) })

	// A hand-built oversized Config fails Validate with the same clarity.
	kinds := make([]Kind, MaxCores+1)
	cfg := Config{Name: "huge", Kinds: kinds}
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "max 1024 supported") {
		t.Errorf("Validate on %d cores = %v, want core-limit error", len(kinds), err)
	}
}

// Shapes beyond the old 64-core uint64 ceiling now construct: the mask-set
// affinity representation lifted the limit to 1024.
func TestBeyond64CoresAccepted(t *testing.T) {
	cfg := NewTieredConfig(TriGearTiers(), []int{30, 30, 30}, true)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("90-core machine must validate: %v", err)
	}
	if cfg.NumCores() != 90 {
		t.Fatalf("cores = %d", cfg.NumCores())
	}
	for _, big := range []Config{Config32B32M64S, Config64B64S} {
		if err := big.Validate(); err != nil {
			t.Fatalf("palette %q must validate: %v", big.Name, err)
		}
		if big.NumCores() != 128 {
			t.Fatalf("palette %q has %d cores, want 128", big.Name, big.NumCores())
		}
	}
}

// The largest legal machine still constructs and validates: the guard must
// not off-by-one away real capacity.
func TestMaxCoresBoundaryAccepted(t *testing.T) {
	cfg := NewConfig(MaxCores/2, MaxCores/2, true)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("%d-core machine must validate: %v", MaxCores, err)
	}
	if cfg.NumCores() != MaxCores {
		t.Fatalf("cores = %d", cfg.NumCores())
	}
}
