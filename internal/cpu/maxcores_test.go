package cpu

import (
	"strings"
	"testing"
)

// Machines beyond 64 cores would silently corrupt uint64 affinity masks;
// every construction path must refuse them loudly instead.
func TestMaxCoresGuards(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s: want panic on >%d cores", name, MaxCores)
				return
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "affinity masks are uint64") {
				t.Errorf("%s: panic %v does not explain the mask limit", name, r)
			}
		}()
		f()
	}
	mustPanic("NewConfig", func() { NewConfig(40, 40, true) })
	mustPanic("NewTieredConfig", func() { NewTieredConfig(TriGearTiers(), []int{30, 30, 30}, true) })
	mustPanic("NewSymmetric", func() { NewSymmetric(Big, MaxCores+1) })
	mustPanic("NewSymmetricTier", func() { NewSymmetricTier(TierBig, MaxCores+1) })

	// A hand-built oversized Config fails Validate with the same clarity.
	kinds := make([]Kind, MaxCores+1)
	cfg := Config{Name: "huge", Kinds: kinds}
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "affinity masks are uint64") {
		t.Errorf("Validate on %d cores = %v, want mask-limit error", len(kinds), err)
	}
}

// The largest legal machine still constructs and validates: the guard must
// not off-by-one away real capacity.
func TestMaxCoresBoundaryAccepted(t *testing.T) {
	cfg := NewConfig(MaxCores/2, MaxCores/2, true)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("%d-core machine must validate: %v", MaxCores, err)
	}
	if cfg.NumCores() != MaxCores {
		t.Fatalf("cores = %d", cfg.NumCores())
	}
}
