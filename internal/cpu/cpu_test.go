package cpu

import (
	"testing"
	"testing/quick"

	"colab/internal/mathx"
)

func TestConfigShapes(t *testing.T) {
	for _, tc := range []struct {
		cfg         Config
		big, little int
	}{
		{Config2B2S, 2, 2},
		{Config2B4S, 2, 4},
		{Config4B2S, 4, 2},
		{Config4B4S, 4, 4},
	} {
		if tc.cfg.NumBig() != tc.big || tc.cfg.NumLittle() != tc.little {
			t.Errorf("%s: %dB %dS", tc.cfg.Name, tc.cfg.NumBig(), tc.cfg.NumLittle())
		}
		if tc.cfg.NumCores() != tc.big+tc.little {
			t.Errorf("%s: cores %d", tc.cfg.Name, tc.cfg.NumCores())
		}
	}
}

func TestConfigOrdering(t *testing.T) {
	bf := NewConfig(2, 2, true)
	if bf.Kinds[0] != Big || bf.Kinds[3] != Little {
		t.Fatalf("big-first kinds = %v", bf.Kinds)
	}
	lf := NewConfig(2, 2, false)
	if lf.Kinds[0] != Little || lf.Kinds[3] != Big {
		t.Fatalf("little-first kinds = %v", lf.Kinds)
	}
	if bi := bf.BigIndices(); len(bi) != 2 || bi[0] != 0 || bi[1] != 1 {
		t.Fatalf("big indices = %v", bi)
	}
	if li := lf.LittleIndices(); len(li) != 2 || li[0] != 0 || li[1] != 1 {
		t.Fatalf("little-first little indices = %v", li)
	}
}

func TestAllBigAndSymmetric(t *testing.T) {
	ab := Config2B4S.AllBig()
	if ab.NumCores() != 6 || ab.NumLittle() != 0 {
		t.Fatalf("allbig = %v", ab.Kinds)
	}
	sym := NewSymmetric(Little, 3)
	if sym.NumLittle() != 3 || sym.NumBig() != 0 {
		t.Fatalf("symmetric = %v", sym.Kinds)
	}
	if Config2B2S.Spec(0).Kind != Big || Config2B2S.Spec(3).Kind != Little {
		t.Fatalf("Spec kind mismatch")
	}
}

func TestConfigByName(t *testing.T) {
	for _, name := range []string{"2B2S", "2B4S", "4B2S", "4B4S"} {
		if _, ok := ConfigByName(name); !ok {
			t.Errorf("ConfigByName(%s) missing", name)
		}
	}
	if _, ok := ConfigByName("8B8S"); ok {
		t.Errorf("unknown config must not resolve")
	}
}

func TestTrueSpeedupDirections(t *testing.T) {
	base := WorkProfile{ILP: 0.5, BranchRate: 0.1, MemIntensity: 0.3}
	s0 := base.TrueSpeedup()
	hiILP := base
	hiILP.ILP = 0.9
	if hiILP.TrueSpeedup() <= s0 {
		t.Errorf("more ILP must raise big-core speedup")
	}
	hiMem := base
	hiMem.MemIntensity = 0.9
	if hiMem.TrueSpeedup() >= s0 {
		t.Errorf("more memory intensity must lower big-core speedup")
	}
	branchy := base
	branchy.BranchRate = 0.25
	if branchy.TrueSpeedup() <= s0 {
		t.Errorf("branchier code must gain more from the big core")
	}
}

// Property: speedups stay in the physical envelope and ExecRate is
// consistent with TrueSpeedup.
func TestSpeedupEnvelopeProperty(t *testing.T) {
	check := func(a, b, c, d, e, f float64) bool {
		p := WorkProfile{ILP: a, BranchRate: b, MemIntensity: c, StoreRate: d, FPRate: e, CodeFootprint: f}.Clamp()
		s := p.TrueSpeedup()
		if s < 1.05 || s > 2.85 {
			return false
		}
		return p.ExecRate(Big) == s && p.ExecRate(Little) == 1.0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInstPerWorkUnitBounds(t *testing.T) {
	lo := WorkProfile{MemIntensity: 1}.InstPerWorkUnit()
	hi := WorkProfile{ILP: 1}.InstPerWorkUnit()
	if lo >= hi {
		t.Fatalf("memory-bound IPC %v !< compute IPC %v", lo, hi)
	}
	if lo <= 0 {
		t.Fatalf("IPC must be positive")
	}
}

func TestSampleCountersStructure(t *testing.T) {
	rng := mathx.NewRNG(1)
	p := WorkProfile{ILP: 0.6, BranchRate: 0.12, MemIntensity: 0.4, StoreRate: 0.3, FPRate: 0.4, CodeFootprint: 0.3}
	v := SampleCounters(rng, p, Big, 1e6, 2e6, 0)
	if v[CtrCommittedInsts] <= 0 {
		t.Fatalf("no instructions")
	}
	if v[CtrCycles] != 2e6 {
		t.Fatalf("cycles = %v", v[CtrCycles])
	}
	for i, val := range v {
		if val < 0 {
			t.Fatalf("counter %s negative: %v", Counter(i).Name(), val)
		}
	}
	if v[CtrFetchBranches] >= v[CtrCommittedInsts] {
		t.Fatalf("more branches than instructions")
	}
	// Zero work: only cycle/quiesce counters may be set.
	z := SampleCounters(rng, p, Big, 0, 100, 40)
	if z[CtrCommittedInsts] != 0 || z[CtrQuiesceCycles] != 40 || z[CtrCycles] != 100 {
		t.Fatalf("zero-work sample wrong: %v", z)
	}
}

func TestCountersReflectProfile(t *testing.T) {
	rng := mathx.NewRNG(2)
	memHeavy := WorkProfile{ILP: 0.2, MemIntensity: 0.9, StoreRate: 0.5}
	cpuHeavy := WorkProfile{ILP: 0.9, MemIntensity: 0.05, FPRate: 0.7}
	vm := SampleCounters(rng, memHeavy, Big, 1e7, 2e7, 0).NormalizeByInsts()
	vc := SampleCounters(rng, cpuHeavy, Big, 1e7, 2e7, 0).NormalizeByInsts()
	if vm[CtrDcacheMisses] <= vc[CtrDcacheMisses] {
		t.Errorf("memory-heavy profile must miss more in L1D")
	}
	if vc[CtrFPRegfileWrites] <= vm[CtrFPRegfileWrites] {
		t.Errorf("FP-heavy profile must write FP regfile more")
	}
}

func TestNormalizeByInsts(t *testing.T) {
	var v Vec
	v[CtrCommittedInsts] = 100
	v[CtrFetchBranches] = 20
	n := v.NormalizeByInsts()
	if n[CtrFetchBranches] != 0.2 || n[CtrCommittedInsts] != 100 {
		t.Fatalf("normalise wrong: %v %v", n[CtrFetchBranches], n[CtrCommittedInsts])
	}
	var zero Vec
	if z := zero.NormalizeByInsts(); z != (Vec{}) {
		t.Fatalf("zero-inst normalise must be zero")
	}
}

func TestVecAddScale(t *testing.T) {
	var a, b Vec
	a[0], b[0] = 1, 2
	a.Add(b)
	if a[0] != 3 {
		t.Fatalf("Add = %v", a[0])
	}
	a.Scale(2)
	if a[0] != 6 {
		t.Fatalf("Scale = %v", a[0])
	}
}

func TestCounterDefsComplete(t *testing.T) {
	if len(Defs) != NumCounters {
		t.Fatalf("%d defs for %d counters", len(Defs), NumCounters)
	}
	seen := map[string]bool{}
	for i, d := range Defs {
		if int(d.Index) != i {
			t.Errorf("def %d has index %d", i, d.Index)
		}
		if d.Name == "" || seen[d.Name] {
			t.Errorf("bad/duplicate counter name %q", d.Name)
		}
		seen[d.Name] = true
	}
	// The paper's Table 2 counters must all exist.
	for _, name := range []string{
		"fp_regfile_writes", "fetch.Branches", "rename.SQFullEvents",
		"quiesceCycles", "dcache.tags.tagsinuse",
		"fetch.IcacheWaitRetryStallCycles", "commit.committedInsts",
	} {
		if !seen[name] {
			t.Errorf("paper counter %q missing", name)
		}
	}
}
