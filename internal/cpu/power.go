package cpu

import "colab/internal/sim"

// PowerModel assigns busy/idle power draw to the two anchor core types. The
// defaults approximate per-core figures reported for Cortex-A57 (big) and
// Cortex-A53 (little) at the simulated clocks. Middle tiers interpolate
// between the anchors by out-of-order strength, and per-OPP power states
// follow the cube of the frequency ratio (P ~ f*V^2 with V ~ f), so the
// model extends to any tier palette without new knobs. The paper motivates
// AMPs with energy-limited devices but reports no energy numbers; this
// model is an extension that lets the harness compare the schedulers'
// energy and energy-delay product on identical workloads.
type PowerModel struct {
	BigBusyW    float64
	BigIdleW    float64
	LittleBusyW float64
	LittleIdleW float64
}

// DefaultPower is the standard big.LITTLE-like power model.
var DefaultPower = PowerModel{
	BigBusyW:    1.80,
	BigIdleW:    0.12,
	LittleBusyW: 0.45,
	LittleIdleW: 0.03,
}

// CoreEnergyJ returns the energy in joules consumed by one default-palette
// core of the given kind that was busy and idle for the given durations.
func (p PowerModel) CoreEnergyJ(kind Kind, busy, idle sim.Time) float64 {
	busyW, idleW := p.LittleBusyW, p.LittleIdleW
	if kind == Big {
		busyW, idleW = p.BigBusyW, p.BigIdleW
	}
	return busyW*busy.Seconds() + idleW*idle.Seconds()
}

// TierBusyW returns the tier's busy power at its nominal operating point:
// the anchor values for the anchor tiers, linear interpolation in
// out-of-order strength between them.
func (p PowerModel) TierBusyW(t Tier) float64 {
	switch {
	case t.Uarch >= 1:
		return p.BigBusyW
	case t.Uarch <= 0:
		return p.LittleBusyW
	default:
		return p.LittleBusyW + t.Uarch*(p.BigBusyW-p.LittleBusyW)
	}
}

// TierIdleW returns the tier's idle power, interpolated like TierBusyW.
// Idle power is frequency-independent (clock-gated cores leak, they do not
// switch).
func (p PowerModel) TierIdleW(t Tier) float64 {
	switch {
	case t.Uarch >= 1:
		return p.BigIdleW
	case t.Uarch <= 0:
		return p.LittleIdleW
	default:
		return p.LittleIdleW + t.Uarch*(p.BigIdleW-p.LittleIdleW)
	}
}

// OPPBusyW returns the tier's busy power at the given ladder frequency:
// nominal busy power scaled by the cube of the frequency ratio (dynamic
// power ~ f*V^2 and voltage tracks frequency on DVFS ladders).
func (p PowerModel) OPPBusyW(t Tier, freqMHz int) float64 {
	busy := p.TierBusyW(t)
	if freqMHz == t.FreqMHz {
		return busy
	}
	r := float64(freqMHz) / float64(t.FreqMHz)
	return busy * r * r * r
}

// TierEnergyJ returns the energy consumed by one core of tier t given its
// busy time at each operating point of the tier's ladder plus its total
// idle time. busyByOPP must be indexed like t.Ladder().
func (p PowerModel) TierEnergyJ(t Tier, busyByOPP []sim.Time, idle sim.Time) float64 {
	ladder := t.Ladder()
	e := 0.0
	for i, busy := range busyByOPP {
		if busy == 0 {
			continue
		}
		e += p.OPPBusyW(t, ladder[i]) * busy.Seconds()
	}
	return e + p.TierIdleW(t)*idle.Seconds()
}
