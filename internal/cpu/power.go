package cpu

import "colab/internal/sim"

// PowerModel assigns busy/idle power draw to each core type. The defaults
// approximate per-core figures reported for Cortex-A57 (big) and
// Cortex-A53 (little) at the simulated clocks. The paper motivates AMPs
// with energy-limited devices but reports no energy numbers; this model is
// an extension that lets the harness compare the schedulers' energy and
// energy-delay product on identical workloads.
type PowerModel struct {
	BigBusyW    float64
	BigIdleW    float64
	LittleBusyW float64
	LittleIdleW float64
}

// DefaultPower is the standard big.LITTLE-like power model.
var DefaultPower = PowerModel{
	BigBusyW:    1.80,
	BigIdleW:    0.12,
	LittleBusyW: 0.45,
	LittleIdleW: 0.03,
}

// CoreEnergyJ returns the energy in joules consumed by one core of the
// given kind that was busy and idle for the given durations.
func (p PowerModel) CoreEnergyJ(kind Kind, busy, idle sim.Time) float64 {
	busyW, idleW := p.LittleBusyW, p.LittleIdleW
	if kind == Big {
		busyW, idleW = p.BigBusyW, p.BigIdleW
	}
	return busyW*busy.Seconds() + idleW*idle.Seconds()
}
