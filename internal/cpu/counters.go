package cpu

import (
	"fmt"
	"math"

	"colab/internal/mathx"
)

// The paper records all 225 gem5 performance counters of the simulated big
// cores, then PCA-selects the six with the largest effect on speedup
// modelling (Table 2). Emitting 225 counters would add bulk without adding
// behaviour, so this model synthesises a representative 24-counter vector —
// including all seven counters the paper's final model uses — from the
// hidden WorkProfile. The PCA + regression pipeline then runs unchanged.
// (Substitution documented in DESIGN.md §1.)

// Counter indexes the synthetic performance counter vector.
type Counter int

// The counter set. The first seven are the paper's Table 2 counters.
const (
	CtrCommittedInsts        Counter = iota // commit.committedInsts (paper: G)
	CtrFPRegfileWrites                      // fp_regfile_writes (paper: A)
	CtrFetchBranches                        // fetch.Branches (paper: B)
	CtrRenameSQFullEvents                   // rename.SQFullEvents (paper: C)
	CtrQuiesceCycles                        // quiesceCycles (paper: D)
	CtrDcacheTagsInUse                      // dcache.tags.tagsinuse (paper: E)
	CtrIcacheWaitRetryStalls                // fetch.IcacheWaitRetryStallCycles (paper: F)
	CtrIntRegfileWrites
	CtrBranchMispredicts
	CtrDcacheMisses
	CtrDcacheWritebacks
	CtrL2Misses
	CtrL2Accesses
	CtrITLBMisses
	CtrDTLBMisses
	CtrLoadInsts
	CtrStoreInsts
	CtrROBFullEvents
	CtrIQFullEvents
	CtrFetchCycles
	CtrIdleCycles
	CtrMemOrderViolations
	CtrSquashedInsts
	CtrCycles
	NumCounters int = iota
)

// Def describes one counter for reporting.
type Def struct {
	Index Counter
	Name  string
	Desc  string
}

// Defs lists all counter definitions in index order.
var Defs = []Def{
	{CtrCommittedInsts, "commit.committedInsts", "instructions committed"},
	{CtrFPRegfileWrites, "fp_regfile_writes", "FP regfile writes"},
	{CtrFetchBranches, "fetch.Branches", "branches encountered"},
	{CtrRenameSQFullEvents, "rename.SQFullEvents", "SQ-full blocks"},
	{CtrQuiesceCycles, "quiesceCycles", "interrupt waiting cycles"},
	{CtrDcacheTagsInUse, "dcache.tags.tagsinuse", "tags of dcache in use"},
	{CtrIcacheWaitRetryStalls, "fetch.IcacheWaitRetryStallCycles", "MSHR-full stall cycles"},
	{CtrIntRegfileWrites, "int_regfile_writes", "integer regfile writes"},
	{CtrBranchMispredicts, "branchPred.mispredicted", "mispredicted branches"},
	{CtrDcacheMisses, "dcache.misses", "L1D misses"},
	{CtrDcacheWritebacks, "dcache.writebacks", "L1D writebacks"},
	{CtrL2Misses, "l2.misses", "L2 misses"},
	{CtrL2Accesses, "l2.accesses", "L2 accesses"},
	{CtrITLBMisses, "itlb.misses", "ITLB misses"},
	{CtrDTLBMisses, "dtlb.misses", "DTLB misses"},
	{CtrLoadInsts, "commit.loads", "committed loads"},
	{CtrStoreInsts, "commit.stores", "committed stores"},
	{CtrROBFullEvents, "rename.ROBFullEvents", "ROB-full blocks"},
	{CtrIQFullEvents, "rename.IQFullEvents", "IQ-full blocks"},
	{CtrFetchCycles, "fetch.Cycles", "fetch active cycles"},
	{CtrIdleCycles, "decode.IdleCycles", "decode idle cycles"},
	{CtrMemOrderViolations, "iew.memOrderViolationEvents", "memory order violations"},
	{CtrSquashedInsts, "commit.squashedInsts", "squashed instructions"},
	{CtrCycles, "numCycles", "core cycles"},
}

// Name returns the gem5-style counter name.
func (c Counter) Name() string {
	if int(c) < 0 || int(c) >= NumCounters {
		return fmt.Sprintf("counter(%d)", int(c))
	}
	return Defs[c].Name
}

// Vec is one sampled counter vector.
type Vec [NumCounters]float64

// Add accumulates o into v.
func (v *Vec) Add(o Vec) {
	for i := range v {
		v[i] += o[i]
	}
}

// Scale multiplies every counter by f.
func (v *Vec) Scale(f float64) {
	for i := range v {
		v[i] *= f
	}
}

// NormalizeByInsts returns the vector with every counter divided by
// committed instructions (the paper normalises all counters to the number of
// committed instructions before regression). The instruction counter itself
// is preserved so models can still use absolute progress if they want.
func (v Vec) NormalizeByInsts() Vec {
	insts := v[CtrCommittedInsts]
	if insts <= 0 {
		return Vec{}
	}
	out := v
	for i := range out {
		if Counter(i) != CtrCommittedInsts {
			out[i] /= insts
		}
	}
	return out
}

// SampleCounters synthesises the counters a default-palette core of kind k
// would report; it is SampleCountersOn over the anchor tiers. Multi-tier
// callers use SampleCountersOn directly.
func SampleCounters(rng *mathx.RNG, p WorkProfile, k Kind, work, cycles, waitCycles float64) Vec {
	t := TierBig
	if k == Little {
		t = TierLittle
	}
	return SampleCountersOn(rng, p, t, work, cycles, waitCycles)
}

// l2MissMult is the tier's L2 miss-rate multiplier relative to the big
// anchor's 2 MiB cache: miss rates grow with the logarithm of the capacity
// deficit, calibrated so the little anchor's 512 KiB cache misses 1.8x more
// and the big anchor exactly 1.0x. Middle tiers land in between according to
// their actual L2 size, so a medium core's memory-system counters are no
// longer big-like. Tiers without a declared L2 fall back to out-of-order
// strength interpolation between the same endpoints.
func l2MissMult(t Tier) float64 {
	switch t.L2KB {
	case TierBig.L2KB:
		// Anchor fast paths: this runs on every execution burst, and the
		// paper's two-tier configs (the bulk of the 312-experiment matrix)
		// only ever see the anchors — skip the logarithms there. The
		// returned constants equal what the formula below yields exactly.
		return 1.0
	case TierLittle.L2KB:
		return 1.8
	}
	if t.L2KB <= 0 {
		return 1.8 - 0.8*mathx.Clamp(t.Uarch, 0, 1)
	}
	refKB := float64(TierBig.L2KB)
	spread := math.Log(refKB / float64(TierLittle.L2KB)) // 512 KiB -> 1.8x
	m := 1 + 0.8*(math.Log(refKB/float64(t.L2KB))/spread)
	return mathx.Clamp(m, 1.0, 2.5)
}

// SampleCountersOn synthesises the counters a core of tier t would report
// for a thread with hidden profile p retiring `work` work units over
// `cycles` core cycles, with waitCycles spent quiesced. Noise makes repeated
// samples realistic without hiding the signal (counter readings on real PMUs
// are deterministic, but phase drift within an interval is not). The
// memory-system counters scale with the tier's cache sizes; the anchor tiers
// reproduce the two-tier model bit-for-bit.
func SampleCountersOn(rng *mathx.RNG, p WorkProfile, t Tier, work, cycles, waitCycles float64) Vec {
	p = p.Clamp()
	var v Vec
	if work <= 0 {
		v[CtrCycles] = cycles
		v[CtrQuiesceCycles] = waitCycles
		return v
	}
	insts := work * p.InstPerWorkUnit()
	noise := func(base, amp float64) float64 {
		if base <= 0 {
			return 0
		}
		return rng.Jitter(base, amp)
	}

	branches := insts * p.BranchRate
	loads := insts * (0.12 + 0.28*p.MemIntensity)
	stores := insts * (0.04 + 0.20*p.StoreRate)
	fpWrites := insts * (0.05 + 0.65*p.FPRate)
	intWrites := insts * (0.55 - 0.30*p.FPRate)
	l1dMissRate := 0.002 + 0.055*p.MemIntensity
	l1dMisses := (loads + stores) * l1dMissRate
	l2MissRate := 0.05 + 0.45*p.MemIntensity
	if m := l2MissMult(t); m != 1 { // smaller L2: more misses
		l2MissRate = mathx.Clamp(l2MissRate*m, 0, 0.95)
	}

	v[CtrCommittedInsts] = noise(insts, 0.02)
	v[CtrFPRegfileWrites] = noise(fpWrites, 0.05)
	v[CtrFetchBranches] = noise(branches, 0.04)
	v[CtrRenameSQFullEvents] = noise(insts*0.002*(0.2+3.0*p.StoreRate*p.MemIntensity), 0.10)
	v[CtrQuiesceCycles] = noise(waitCycles, 0.01)
	v[CtrDcacheTagsInUse] = noise(cycles*(0.15+0.80*p.MemIntensity), 0.05)
	v[CtrIcacheWaitRetryStalls] = noise(cycles*0.01*(0.1+2.5*p.CodeFootprint), 0.10)
	v[CtrIntRegfileWrites] = noise(intWrites, 0.05)
	v[CtrBranchMispredicts] = noise(branches*(0.015+0.06*(1-p.ILP)), 0.08)
	v[CtrDcacheMisses] = noise(l1dMisses, 0.08)
	v[CtrDcacheWritebacks] = noise(stores*l1dMissRate*0.6, 0.10)
	v[CtrL2Accesses] = noise(l1dMisses*1.1, 0.08)
	v[CtrL2Misses] = noise(l1dMisses*l2MissRate, 0.10)
	v[CtrITLBMisses] = noise(insts*0.0002*(0.2+2.0*p.CodeFootprint), 0.15)
	v[CtrDTLBMisses] = noise((loads+stores)*0.0008*(0.3+1.5*p.MemIntensity), 0.15)
	v[CtrLoadInsts] = noise(loads, 0.03)
	v[CtrStoreInsts] = noise(stores, 0.03)
	v[CtrROBFullEvents] = noise(cycles*0.004*(1-0.7*p.ILP)*(0.3+p.MemIntensity), 0.12)
	v[CtrIQFullEvents] = noise(cycles*0.003*(0.2+p.ILP*0.5), 0.12)
	v[CtrFetchCycles] = noise(cycles*(0.60+0.25*p.ILP), 0.04)
	v[CtrIdleCycles] = noise(cycles*(0.10+0.40*p.MemIntensity), 0.06)
	v[CtrMemOrderViolations] = noise(insts*0.0004*p.StoreRate*(0.5+p.ILP), 0.20)
	v[CtrSquashedInsts] = noise(branches*(0.015+0.06*(1-p.ILP))*8, 0.10)
	v[CtrCycles] = cycles
	return v
}
