package gts_test

import (
	"testing"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/sched/gts"
	"colab/internal/sim"
	"colab/internal/task"
)

var plain = cpu.WorkProfile{ILP: 0.6, BranchRate: 0.1, MemIntensity: 0.2}

func runGTS(t *testing.T, cfg cpu.Config, w *task.Workload) *kernel.Result {
	t.Helper()
	m, err := kernel.NewMachine(cfg, gts.New(gts.Options{}), w, kernel.Params{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// GTS steers by load average: a CPU-bound thread stays big-eligible, a
// mostly-sleeping thread must be down-migrated to little cores.
func TestLoadBasedSteering(t *testing.T) {
	a := &task.App{ID: 0, Name: "m"}
	busy := &task.Thread{App: a, Name: "busy", Profile: plain,
		Program: task.Program{task.Compute{Work: 200e6}}}
	var lazyProg task.Program
	for i := 0; i < 40; i++ {
		lazyProg = append(lazyProg, task.Compute{Work: 0.3e6}, task.Sleep{Duration: 4 * sim.Millisecond})
	}
	lazy := &task.Thread{App: a, Name: "lazy", Profile: plain, Program: lazyProg}
	a.Threads = []*task.Thread{busy, lazy}
	w := &task.Workload{Name: "m", Apps: []*task.App{a}}
	res := runGTS(t, cpu.Config2B2S, w)

	busyShare := float64(res.Threads[0].SumExecBig) / float64(res.Threads[0].SumExec)
	lazyShare := float64(res.Threads[1].SumExecBig) / float64(res.Threads[1].SumExec)
	if busyShare <= lazyShare {
		t.Fatalf("GTS did not bias busy thread to big cores: busy %.2f lazy %.2f", busyShare, lazyShare)
	}
	if lazyShare > 0.5 {
		t.Fatalf("mostly-sleeping thread kept %.0f%% big-core time", lazyShare*100)
	}
}

func TestName(t *testing.T) {
	if gts.New(gts.Options{}).Name() != "gts" {
		t.Fatal("name")
	}
}

// GTS must complete a multi-app workload without wedging (regression test
// for the idle-core requeue stall).
func TestMultiAppCompletion(t *testing.T) {
	mk := func(id int, n int, work float64) *task.App {
		a := &task.App{ID: id, Name: "app"}
		for i := 0; i < n; i++ {
			a.Threads = append(a.Threads, &task.Thread{App: a, Name: "t", Profile: plain,
				Program: task.Program{task.Compute{Work: work}, task.Sleep{Duration: sim.Millisecond}, task.Compute{Work: work}}})
		}
		return a
	}
	w := &task.Workload{Name: "multi", Apps: []*task.App{mk(0, 3, 20e6), mk(1, 3, 15e6)}}
	res := runGTS(t, cpu.Config2B4S, w)
	for _, app := range res.Apps {
		if app.Turnaround <= 0 {
			t.Fatalf("app did not finish")
		}
	}
}
