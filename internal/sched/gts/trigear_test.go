package gts_test

import (
	"testing"

	"colab/internal/cpu"
	"colab/internal/sim"
	"colab/internal/task"
)

// On the tri-gear ladder the stepwise up/down migration must park a
// CPU-bound thread on the big cluster and walk a mostly-sleeping thread
// down to the little cluster, with the middle tier crossed on the way.
func TestTriGearLadderSteering(t *testing.T) {
	a := &task.App{ID: 0, Name: "m"}
	busy := &task.Thread{App: a, Name: "busy", Profile: plain,
		Program: task.Program{task.Compute{Work: 300e6}}}
	var lazyProg task.Program
	for i := 0; i < 60; i++ {
		lazyProg = append(lazyProg, task.Compute{Work: 0.3e6}, task.Sleep{Duration: 4 * sim.Millisecond})
	}
	lazy := &task.Thread{App: a, Name: "lazy", Profile: plain, Program: lazyProg}
	a.Threads = []*task.Thread{busy, lazy}
	w := &task.Workload{Name: "m", Apps: []*task.App{a}}
	res := runGTS(t, cpu.Config2B2M2S, w)

	// SumExecBig counts top-tier time on the tri-gear machine.
	busyShare := float64(res.Threads[0].SumExecBig) / float64(res.Threads[0].SumExec)
	lazyShare := float64(res.Threads[1].SumExecBig) / float64(res.Threads[1].SumExec)
	if busyShare < 0.8 {
		t.Errorf("busy thread big-tier share %.2f, want >= 0.8", busyShare)
	}
	if lazyShare > 0.3 {
		t.Errorf("lazy thread big-tier share %.2f, want <= 0.3 (should step down the ladder)", lazyShare)
	}
}
