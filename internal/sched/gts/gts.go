// Package gts implements an ARM Global Task Scheduling–like policy
// (big.LITTLE MP, Table 1 row "ARM [11]"): thread affinity follows each
// thread's tracked load average — busy threads up-migrate to big cores,
// mostly-waiting threads down-migrate to little cores — with hysteresis
// thresholds. No bottleneck awareness, no asymmetric fairness. It exists as
// the extension comparison point the paper discusses qualitatively (§2).
package gts

import (
	"colab/internal/kernel"
	"colab/internal/sched/cfs"
	"colab/internal/sim"
	"colab/internal/task"
)

// Options configure the GTS policy.
type Options struct {
	CFS cfs.Options
	// Interval is the load-sampling period.
	Interval sim.Time
	// UpThreshold and DownThreshold bound the hysteresis band on the
	// runnable-fraction load average.
	UpThreshold   float64
	DownThreshold float64
	// LoadDecay is the EWMA retention of the per-interval load.
	LoadDecay float64
}

func (o Options) withDefaults() Options {
	if o.Interval == 0 {
		o.Interval = 10 * sim.Millisecond
	}
	if o.UpThreshold == 0 {
		o.UpThreshold = 0.75
	}
	if o.DownThreshold == 0 {
		o.DownThreshold = 0.35
	}
	if o.LoadDecay == 0 {
		o.LoadDecay = 0.5
	}
	return o
}

type info struct {
	load     float64
	lastExec sim.Time
	lastRdy  sim.Time
	onBig    bool
}

// Policy is the GTS-like scheduler: CFS mechanics plus load-average
// affinity steering.
type Policy struct {
	*cfs.Policy
	opts    Options
	m       *kernel.Machine
	threads map[*task.Thread]*info
	lastAt  sim.Time

	bigMask, littleMask uint64
}

// New returns a GTS policy.
func New(opts Options) *Policy {
	return &Policy{Policy: cfs.New(opts.CFS), opts: opts.withDefaults(), threads: make(map[*task.Thread]*info)}
}

// Name implements kernel.Scheduler.
func (p *Policy) Name() string { return "gts" }

// Start implements kernel.Scheduler.
func (p *Policy) Start(m *kernel.Machine) {
	p.Policy.Start(m)
	p.m = m
	p.threads = make(map[*task.Thread]*info)
	p.lastAt = 0
	p.bigMask = task.MaskOf(m.BigCoreIDs())
	p.littleMask = task.MaskOf(m.LittleCoreIDs())
	if p.littleMask == 0 {
		p.littleMask = p.bigMask
	}
	m.Engine().After(p.opts.Interval, p.sample)
}

// Admit implements kernel.Scheduler.
func (p *Policy) Admit(t *task.Thread) {
	p.Policy.Admit(t)
	// New threads start heavy (GTS boots threads on big): optimistic load.
	p.threads[t] = &info{load: 1, onBig: true}
	t.Affinity = task.AffinityAll
}

// ThreadDone implements kernel.Scheduler.
func (p *Policy) ThreadDone(t *task.Thread) {
	p.Policy.ThreadDone(t)
	delete(p.threads, t)
}

func (p *Policy) sample() {
	if p.m.Done() {
		return
	}
	defer p.m.Engine().After(p.opts.Interval, p.sample)
	now := p.m.Now()
	wall := float64(now - p.lastAt)
	p.lastAt = now
	if wall <= 0 || len(p.threads) == 0 {
		return
	}
	for t, in := range p.threads {
		running := float64(t.SumExec - in.lastExec)
		ready := float64(t.ReadyTime - in.lastRdy)
		in.lastExec = t.SumExec
		in.lastRdy = t.ReadyTime
		inst := (running + ready) / wall
		if inst > 1 {
			inst = 1
		}
		in.load = p.opts.LoadDecay*in.load + (1-p.opts.LoadDecay)*inst
		switch {
		case !in.onBig && in.load > p.opts.UpThreshold:
			in.onBig = true
		case in.onBig && in.load < p.opts.DownThreshold:
			in.onBig = false
		}
		mask := p.littleMask
		if in.onBig {
			mask = p.bigMask
		}
		if t.Affinity != mask {
			t.Affinity = mask
			if core := p.QueuedOn(t); core >= 0 && !t.AllowedOn(core) {
				p.Dequeue(t)
				p.m.Kick(p.Policy.Enqueue(t, false))
			}
		}
	}
}

var _ kernel.Scheduler = (*Policy)(nil)
