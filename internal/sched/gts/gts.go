// Package gts implements an ARM Global Task Scheduling–like policy
// (big.LITTLE MP, Table 1 row "ARM [11]"): thread affinity follows each
// thread's tracked load average — busy threads up-migrate towards faster
// tiers, mostly-waiting threads down-migrate towards slower tiers — with
// hysteresis thresholds. On multi-tier machines (DynamIQ-style) migration
// moves one tier at a time, exactly as the stepwise up/down thresholds of
// the real governor behave. No bottleneck awareness, no asymmetric
// fairness. It exists as the extension comparison point the paper discusses
// qualitatively (§2).
//
// In pipeline terms GTS is a single stage: LabelerStage ("gts.labeler").
// New composes it with the CFS allocator and selector stages; the registry
// aliases "gts.allocator" and "gts.selector" to the CFS stages.
package gts

import (
	"sort"

	"colab/internal/kernel"
	"colab/internal/sched/cfs"
	"colab/internal/sim"
	"colab/internal/task"
)

// Options configure the GTS policy.
type Options struct {
	CFS cfs.Options
	// Interval is the load-sampling period.
	Interval sim.Time
	// UpThreshold and DownThreshold bound the hysteresis band on the
	// runnable-fraction load average.
	UpThreshold   float64
	DownThreshold float64
	// LoadDecay is the EWMA retention of the per-interval load.
	LoadDecay float64
}

func (o Options) withDefaults() Options {
	if o.Interval == 0 {
		o.Interval = 10 * sim.Millisecond
	}
	if o.UpThreshold == 0 {
		o.UpThreshold = 0.75
	}
	if o.DownThreshold == 0 {
		o.DownThreshold = 0.35
	}
	if o.LoadDecay == 0 {
		o.LoadDecay = 0.5
	}
	return o
}

// New returns the GTS policy: the GTS load-ladder labeler stage over CFS
// allocation and selection.
func New(opts Options) kernel.Scheduler {
	opts = opts.withDefaults()
	s, err := kernel.NewPipeline("gts", NewLabeler(opts), cfs.NewAllocator(opts.CFS), cfs.NewSelector(opts.CFS), nil)
	if err != nil {
		panic(err) // both mandatory stages are supplied above
	}
	return s
}

type info struct {
	load     float64
	lastExec sim.Time
	lastRdy  sim.Time
	tier     int // current placement tier (affinity ladder rung)
}

// LabelerStage is the GTS load-average affinity ladder as a pipeline stage.
// It publishes each thread's ladder rung (TargetTier) and load (Util) as
// hints for downstream stages in hybrid pipelines.
type LabelerStage struct {
	opts    Options
	pc      *kernel.PipelineContext
	threads map[*task.Thread]*info
	lastAt  sim.Time

	// tierMask[k] is the affinity mask of tier k's cores; unpopulated
	// tiers borrow the nearest populated tier's mask (below first, then
	// above), so symmetric machines degenerate to a single rung.
	tierMask []task.Mask
	topTier  int
}

// NewLabeler returns the GTS labeler stage.
func NewLabeler(opts Options) *LabelerStage {
	return &LabelerStage{opts: opts.withDefaults()}
}

// Name implements kernel.Stage.
func (l *LabelerStage) Name() string { return "gts.labeler" }

// Start implements kernel.Stage.
func (l *LabelerStage) Start(pc *kernel.PipelineContext) {
	l.pc = pc
	m := pc.Machine()
	l.threads = make(map[*task.Thread]*info)
	l.lastAt = 0
	l.topTier = m.NumTiers() - 1
	l.tierMask = make([]task.Mask, m.NumTiers())
	for tier := range l.tierMask {
		l.tierMask[tier] = task.MaskOf(m.TierCoreIDs(tier))
	}
	for tier := range l.tierMask {
		if l.tierMask[tier].IsEmpty() {
			l.tierMask[tier] = l.nearestMask(tier)
		}
	}
	m.Engine().After(l.opts.Interval, l.sample)
}

// nearestMask finds the mask of the nearest populated tier, preferring
// lower tiers (down-migration is always safe).
func (l *LabelerStage) nearestMask(tier int) task.Mask {
	for d := 1; d <= l.topTier; d++ {
		if lo := tier - d; lo >= 0 && !l.tierMask[lo].IsEmpty() {
			return l.tierMask[lo]
		}
		if hi := tier + d; hi <= l.topTier && !l.tierMask[hi].IsEmpty() {
			return l.tierMask[hi]
		}
	}
	return task.MaskAll()
}

// Admit implements kernel.Labeler.
func (l *LabelerStage) Admit(t *task.Thread) {
	// New threads start heavy (GTS boots threads on the fastest tier):
	// optimistic load.
	l.threads[t] = &info{load: 1, tier: l.topTier}
	t.Affinity = task.MaskAll()
}

// ThreadDone implements kernel.Labeler.
func (l *LabelerStage) ThreadDone(t *task.Thread) {
	delete(l.threads, t)
}

func (l *LabelerStage) sample() {
	m := l.pc.Machine()
	if m.Done() {
		return
	}
	defer m.Engine().After(l.opts.Interval, l.sample)
	now := m.Now()
	wall := float64(now - l.lastAt)
	l.lastAt = now
	if wall <= 0 || len(l.threads) == 0 {
		return
	}
	// Iterate in thread-ID order: map order would randomise the affinity
	// re-queue sequence and break run-to-run determinism.
	threads := make([]*task.Thread, 0, len(l.threads))
	for t := range l.threads {
		threads = append(threads, t)
	}
	sort.Slice(threads, func(i, j int) bool { return threads[i].ID < threads[j].ID })
	for _, t := range threads {
		in := l.threads[t]
		running := float64(t.SumExec - in.lastExec)
		ready := float64(t.ReadyTime - in.lastRdy)
		in.lastExec = t.SumExec
		in.lastRdy = t.ReadyTime
		inst := (running + ready) / wall
		if inst > 1 {
			inst = 1
		}
		in.load = l.opts.LoadDecay*in.load + (1-l.opts.LoadDecay)*inst
		switch {
		case in.tier < l.topTier && in.load > l.opts.UpThreshold:
			in.tier++
		case in.tier > 0 && in.load < l.opts.DownThreshold:
			in.tier--
		}
		h := l.pc.Hints().Get(t)
		h.TargetTier, h.Util = in.tier, in.load
		mask := l.tierMask[in.tier]
		if !t.Affinity.Equal(mask) {
			t.Affinity = mask
			l.pc.Requeue(t)
		}
	}
}

var _ kernel.Labeler = (*LabelerStage)(nil)
