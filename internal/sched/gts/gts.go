// Package gts implements an ARM Global Task Scheduling–like policy
// (big.LITTLE MP, Table 1 row "ARM [11]"): thread affinity follows each
// thread's tracked load average — busy threads up-migrate towards faster
// tiers, mostly-waiting threads down-migrate towards slower tiers — with
// hysteresis thresholds. On multi-tier machines (DynamIQ-style) migration
// moves one tier at a time, exactly as the stepwise up/down thresholds of
// the real governor behave. No bottleneck awareness, no asymmetric
// fairness. It exists as the extension comparison point the paper discusses
// qualitatively (§2).
package gts

import (
	"sort"

	"colab/internal/kernel"
	"colab/internal/sched/cfs"
	"colab/internal/sim"
	"colab/internal/task"
)

// Options configure the GTS policy.
type Options struct {
	CFS cfs.Options
	// Interval is the load-sampling period.
	Interval sim.Time
	// UpThreshold and DownThreshold bound the hysteresis band on the
	// runnable-fraction load average.
	UpThreshold   float64
	DownThreshold float64
	// LoadDecay is the EWMA retention of the per-interval load.
	LoadDecay float64
}

func (o Options) withDefaults() Options {
	if o.Interval == 0 {
		o.Interval = 10 * sim.Millisecond
	}
	if o.UpThreshold == 0 {
		o.UpThreshold = 0.75
	}
	if o.DownThreshold == 0 {
		o.DownThreshold = 0.35
	}
	if o.LoadDecay == 0 {
		o.LoadDecay = 0.5
	}
	return o
}

type info struct {
	load     float64
	lastExec sim.Time
	lastRdy  sim.Time
	tier     int // current placement tier (affinity ladder rung)
}

// Policy is the GTS-like scheduler: CFS mechanics plus load-average
// affinity steering over the tier ladder.
type Policy struct {
	*cfs.Policy
	opts    Options
	m       *kernel.Machine
	threads map[*task.Thread]*info
	lastAt  sim.Time

	// tierMask[k] is the affinity mask of tier k's cores; unpopulated
	// tiers borrow the nearest populated tier's mask (below first, then
	// above), so symmetric machines degenerate to a single rung.
	tierMask []uint64
	topTier  int
}

// New returns a GTS policy.
func New(opts Options) *Policy {
	return &Policy{Policy: cfs.New(opts.CFS), opts: opts.withDefaults(), threads: make(map[*task.Thread]*info)}
}

// Name implements kernel.Scheduler.
func (p *Policy) Name() string { return "gts" }

// Start implements kernel.Scheduler.
func (p *Policy) Start(m *kernel.Machine) {
	p.Policy.Start(m)
	p.m = m
	p.threads = make(map[*task.Thread]*info)
	p.lastAt = 0
	p.topTier = m.NumTiers() - 1
	p.tierMask = make([]uint64, m.NumTiers())
	for tier := range p.tierMask {
		p.tierMask[tier] = task.MaskOf(m.TierCoreIDs(tier))
	}
	for tier := range p.tierMask {
		if p.tierMask[tier] == 0 {
			p.tierMask[tier] = p.nearestMask(tier)
		}
	}
	m.Engine().After(p.opts.Interval, p.sample)
}

// nearestMask finds the mask of the nearest populated tier, preferring
// lower tiers (down-migration is always safe).
func (p *Policy) nearestMask(tier int) uint64 {
	for d := 1; d <= p.topTier; d++ {
		if lo := tier - d; lo >= 0 && p.tierMask[lo] != 0 {
			return p.tierMask[lo]
		}
		if hi := tier + d; hi <= p.topTier && p.tierMask[hi] != 0 {
			return p.tierMask[hi]
		}
	}
	return task.AffinityAll
}

// Admit implements kernel.Scheduler.
func (p *Policy) Admit(t *task.Thread) {
	p.Policy.Admit(t)
	// New threads start heavy (GTS boots threads on the fastest tier):
	// optimistic load.
	p.threads[t] = &info{load: 1, tier: p.topTier}
	t.Affinity = task.AffinityAll
}

// ThreadDone implements kernel.Scheduler.
func (p *Policy) ThreadDone(t *task.Thread) {
	p.Policy.ThreadDone(t)
	delete(p.threads, t)
}

func (p *Policy) sample() {
	if p.m.Done() {
		return
	}
	defer p.m.Engine().After(p.opts.Interval, p.sample)
	now := p.m.Now()
	wall := float64(now - p.lastAt)
	p.lastAt = now
	if wall <= 0 || len(p.threads) == 0 {
		return
	}
	// Iterate in thread-ID order: map order would randomise the affinity
	// re-queue sequence and break run-to-run determinism.
	threads := make([]*task.Thread, 0, len(p.threads))
	for t := range p.threads {
		threads = append(threads, t)
	}
	sort.Slice(threads, func(i, j int) bool { return threads[i].ID < threads[j].ID })
	for _, t := range threads {
		in := p.threads[t]
		running := float64(t.SumExec - in.lastExec)
		ready := float64(t.ReadyTime - in.lastRdy)
		in.lastExec = t.SumExec
		in.lastRdy = t.ReadyTime
		inst := (running + ready) / wall
		if inst > 1 {
			inst = 1
		}
		in.load = p.opts.LoadDecay*in.load + (1-p.opts.LoadDecay)*inst
		switch {
		case in.tier < p.topTier && in.load > p.opts.UpThreshold:
			in.tier++
		case in.tier > 0 && in.load < p.opts.DownThreshold:
			in.tier--
		}
		mask := p.tierMask[in.tier]
		if t.Affinity != mask {
			t.Affinity = mask
			if core := p.QueuedOn(t); core >= 0 && !t.AllowedOn(core) {
				p.Dequeue(t)
				p.m.Kick(p.Policy.Enqueue(t, false))
			}
		}
	}
}

var _ kernel.Scheduler = (*Policy)(nil)
