package eas_test

import (
	"testing"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/sched/cfs"
	"colab/internal/sched/eas"
	"colab/internal/task"
)

// On the tri-gear machine EAS fills the cheapest tiers first: light load
// should leave the big cluster nearly idle while littles (and mediums, as
// spill) do the work.
func TestTriGearPacksCheapTiersFirst(t *testing.T) {
	w := &task.Workload{Name: "light", Apps: []*task.App{mkApp(2, 20e6)}}
	res := runEAS(t, cpu.Config2B2M2S, w)
	var byTier [3]float64
	for _, c := range res.Cores {
		byTier[c.Kind] += float64(c.BusyTime)
	}
	if byTier[2] > 0.2*(byTier[0]+byTier[1]+byTier[2]) {
		t.Errorf("big cluster did %.0f%% of busy time on light load", 100*byTier[2]/(byTier[0]+byTier[1]+byTier[2]))
	}
}

// The schedutil-like governor must actually downclock low-utilisation
// threads on DVFS ladders: EAS energy on the tri-gear machine stays below
// plain CFS energy for the same light workload.
func TestTriGearGovernorSavesEnergy(t *testing.T) {
	mkw := func() *task.Workload {
		a := &task.App{ID: 0, Name: "app"}
		for i := 0; i < 3; i++ {
			a.Threads = append(a.Threads, &task.Thread{App: a, Name: "t", Profile: plain,
				Program: task.Program{
					task.Compute{Work: 5e6}, task.Sleep{Duration: 8e6},
					task.Compute{Work: 5e6}, task.Sleep{Duration: 8e6},
					task.Compute{Work: 5e6},
				}})
		}
		return &task.Workload{Name: "bursty", Apps: []*task.App{a}}
	}
	run := func(s kernel.Scheduler) *kernel.Result {
		m, err := kernel.NewMachine(cpu.Config2B2M2S, s, mkw(), kernel.Params{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	easRes := run(eas.New(eas.Options{}))
	cfsRes := run(cfs.New(cfs.Options{}))
	if easRes.TotalEnergyJ() >= cfsRes.TotalEnergyJ() {
		t.Errorf("EAS energy %.4f J not below CFS %.4f J on bursty tri-gear load",
			easRes.TotalEnergyJ(), cfsRes.TotalEnergyJ())
	}
	// The governor must have produced sub-nominal residency somewhere.
	downclocked := false
	for _, c := range easRes.Cores {
		for opp, busy := range c.BusyByOPP {
			if opp < len(c.BusyByOPP)-1 && busy > 0 {
				downclocked = true
			}
		}
	}
	if !downclocked {
		t.Error("no busy time at sub-nominal operating points; governor inactive")
	}
}
