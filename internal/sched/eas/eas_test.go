package eas_test

import (
	"testing"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/sched/cfs"
	"colab/internal/sched/eas"
	"colab/internal/sim"
	"colab/internal/task"
)

var plain = cpu.WorkProfile{ILP: 0.5, BranchRate: 0.1, MemIntensity: 0.3}

func mkApp(n int, work float64) *task.App {
	a := &task.App{ID: 0, Name: "app"}
	for i := 0; i < n; i++ {
		a.Threads = append(a.Threads, &task.Thread{App: a, Name: "t", Profile: plain,
			Program: task.Program{task.Compute{Work: work}}})
	}
	return a
}

func runEAS(t *testing.T, cfg cpu.Config, w *task.Workload) *kernel.Result {
	t.Helper()
	m, err := kernel.NewMachine(cfg, eas.New(eas.Options{}), w, kernel.Params{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Light load packs onto little cores: with two small threads and a 2B2S
// machine, the big cores should stay nearly unused.
func TestPacksLightLoadOnLittleCores(t *testing.T) {
	w := &task.Workload{Name: "light", Apps: []*task.App{mkApp(2, 20e6)}}
	res := runEAS(t, cpu.Config2B2S, w)
	var bigBusy, littleBusy sim.Time
	for _, c := range res.Cores {
		if c.Kind == cpu.Big {
			bigBusy += c.BusyTime
		} else {
			littleBusy += c.BusyTime
		}
	}
	if bigBusy > littleBusy/4 {
		t.Fatalf("EAS did not pack on littles: big %v vs little %v", bigBusy, littleBusy)
	}
}

// Saturating load spills to the big cluster: with 4 threads all cores work.
func TestSpillsToBigWhenSaturated(t *testing.T) {
	w := &task.Workload{Name: "full", Apps: []*task.App{mkApp(4, 40e6)}}
	res := runEAS(t, cpu.Config2B2S, w)
	for _, c := range res.Cores {
		if c.BusyTime < 10*sim.Millisecond {
			t.Fatalf("core %d unused under saturation: %v", c.ID, c.BusyTime)
		}
	}
}

// EAS must save energy relative to CFS on a light workload (that is its
// whole purpose).
func TestSavesEnergyVsCFSOnLightLoad(t *testing.T) {
	run := func(s kernel.Scheduler) float64 {
		w := &task.Workload{Name: "light", Apps: []*task.App{mkApp(2, 20e6)}}
		m, err := kernel.NewMachine(cpu.Config2B2S, s, w, kernel.Params{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalEnergyJ()
	}
	easJ := run(eas.New(eas.Options{}))
	cfsJ := run(cfs.New(cfs.Options{}))
	if easJ >= cfsJ {
		t.Fatalf("EAS energy %v J not below CFS %v J on light load", easJ, cfsJ)
	}
}

func TestName(t *testing.T) {
	if eas.New(eas.Options{}).Name() != "eas" {
		t.Fatal("name")
	}
}
