// Package eas implements a Linux Energy-Aware-Scheduling-like policy, the
// modern mainline answer to big.LITTLE placement and a natural extra
// comparison point for the energy extension. On wake-up it packs work onto
// the cheapest core that still has spare capacity — little cores cost less
// energy per unit of work, so they fill first; load spills to big cores
// only when the little cluster saturates or the thread's tracked
// utilisation does not fit a little core. Below placement it is plain CFS.
//
// EAS optimises energy, not bottlenecks or asymmetric fairness (Table 1
// has no row for it; it post-dates the paper) — expect lower energy than
// CFS on light load and weaker turnaround than COLAB on contended mixes.
package eas

import (
	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/sched/cfs"
	"colab/internal/sim"
	"colab/internal/task"
)

// Options configure the EAS policy.
type Options struct {
	CFS cfs.Options
	// Interval is the utilisation-sampling period.
	Interval sim.Time
	// LittleCapacity is the utilisation above which a thread no longer
	// "fits" a little core and is up-placed (EAS's fits_capacity rule,
	// expressed as a runnable-time fraction).
	LittleCapacity float64
	// LoadDecay is the EWMA retention of per-interval utilisation.
	LoadDecay float64
	// Power drives the energy cost comparison between clusters.
	Power cpu.PowerModel
}

func (o Options) withDefaults() Options {
	if o.Interval == 0 {
		o.Interval = 10 * sim.Millisecond
	}
	if o.LittleCapacity == 0 {
		o.LittleCapacity = 0.8
	}
	if o.LoadDecay == 0 {
		o.LoadDecay = 0.5
	}
	if o.Power == (cpu.PowerModel{}) {
		o.Power = cpu.DefaultPower
	}
	return o
}

type info struct {
	util     float64 // runnable-time fraction, EWMA
	lastExec sim.Time
	lastRdy  sim.Time
}

// Policy is the EAS-like scheduler.
type Policy struct {
	*cfs.Policy
	opts    Options
	m       *kernel.Machine
	threads map[*task.Thread]*info
	lastAt  sim.Time
}

// New returns an EAS policy.
func New(opts Options) *Policy {
	return &Policy{Policy: cfs.New(opts.CFS), opts: opts.withDefaults(), threads: make(map[*task.Thread]*info)}
}

// Name implements kernel.Scheduler.
func (p *Policy) Name() string { return "eas" }

// Start implements kernel.Scheduler.
func (p *Policy) Start(m *kernel.Machine) {
	p.Policy.Start(m)
	p.m = m
	p.threads = make(map[*task.Thread]*info)
	p.lastAt = 0
	m.Engine().After(p.opts.Interval, p.sample)
}

// Admit implements kernel.Scheduler.
func (p *Policy) Admit(t *task.Thread) {
	p.Policy.Admit(t)
	// New threads start with modest utilisation so they begin on littles,
	// the energy-first default.
	p.threads[t] = &info{util: 0.4}
}

// ThreadDone implements kernel.Scheduler.
func (p *Policy) ThreadDone(t *task.Thread) {
	p.Policy.ThreadDone(t)
	delete(p.threads, t)
}

func (p *Policy) sample() {
	if p.m.Done() {
		return
	}
	defer p.m.Engine().After(p.opts.Interval, p.sample)
	now := p.m.Now()
	wall := float64(now - p.lastAt)
	p.lastAt = now
	if wall <= 0 {
		return
	}
	for t, in := range p.threads {
		inst := (float64(t.SumExec-in.lastExec) + float64(t.ReadyTime-in.lastRdy)) / wall
		in.lastExec = t.SumExec
		in.lastRdy = t.ReadyTime
		if inst > 1 {
			inst = 1
		}
		in.util = p.opts.LoadDecay*in.util + (1-p.opts.LoadDecay)*inst
	}
}

// Enqueue implements kernel.Scheduler: energy-aware wake-up placement.
// Candidate order: idle littles (cheapest J per unit work), then idle bigs,
// then the least-loaded allowed core. Threads whose utilisation exceeds the
// little capacity skip the little cluster when a big candidate exists.
func (p *Policy) Enqueue(t *task.Thread, wakeup bool) int {
	core := p.pickCore(t)
	p.Place(t, core, wakeup)
	return core
}

func (p *Policy) pickCore(t *task.Thread) int {
	util := 0.4
	if in := p.threads[t]; in != nil {
		util = in.util
	}
	fitsLittle := util <= p.opts.LittleCapacity
	cores := p.m.Cores()

	bestIdle := -1
	// Pass 1: idle cores, littles preferred when the thread fits them.
	scan := func(ids []int) int {
		for _, id := range ids {
			if t.AllowedOn(id) && cores[id].IsIdle() && p.QueueLen(id) == 0 {
				return id
			}
		}
		return -1
	}
	if fitsLittle {
		bestIdle = scan(p.m.LittleCoreIDs())
	}
	if bestIdle < 0 {
		bestIdle = scan(p.m.BigCoreIDs())
	}
	if bestIdle < 0 && !fitsLittle {
		// Oversized thread, but no big core free: a little is still better
		// than queueing behind a busy big core if one is idle.
		bestIdle = scan(p.m.LittleCoreIDs())
	}
	if bestIdle >= 0 {
		return bestIdle
	}
	// Pass 2: all busy — fall back to CFS least-loaded placement.
	return p.LeastLoadedAllowed(t)
}

// PickNext implements kernel.Scheduler. Little cores behave exactly like
// CFS. Big cores serve their own cluster's queues but pull work from the
// little cluster only when no little core is idle — EAS suppresses
// cross-cluster balancing while the cheap cluster still has headroom.
func (p *Policy) PickNext(c *kernel.Core) *task.Thread {
	if c.Kind == cpu.Little {
		return p.Policy.PickNext(c)
	}
	if t := p.PopLocal(c.ID); t != nil {
		return t
	}
	if t := p.StealInto(c.ID, p.m.BigCoreIDs()); t != nil {
		return t
	}
	for _, id := range p.m.LittleCoreIDs() {
		if p.m.Cores()[id].IsIdle() {
			return nil // an idle little will pick the queued work up
		}
	}
	return p.StealInto(c.ID, p.m.LittleCoreIDs())
}

var _ kernel.Scheduler = (*Policy)(nil)
