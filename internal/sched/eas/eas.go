// Package eas implements a Linux Energy-Aware-Scheduling-like policy, the
// modern mainline answer to asymmetric placement and a natural extra
// comparison point for the energy extension. On wake-up it packs work onto
// the cheapest tier that still has spare capacity — slower tiers cost less
// energy per unit of work, so they fill first; load spills up the tier
// ladder only when the cheap clusters saturate or the thread's tracked
// utilisation does not fit them. Below placement it is plain CFS.
//
// On machines whose tiers expose DVFS ladders the policy doubles as a
// schedutil-like frequency governor: at each dispatch it programs the
// lowest operating point whose capacity covers the incoming thread's
// utilisation plus headroom, trading performance for energy exactly as
// mainline EAS + schedutil do. Fixed-frequency machines (the paper's gem5
// setup) never invoke the governor.
//
// EAS optimises energy, not bottlenecks or asymmetric fairness (Table 1
// has no row for it; it post-dates the paper) — expect lower energy than
// CFS on light load and weaker turnaround than COLAB on contended mixes.
//
// In pipeline terms EAS decomposes into all four stages: a utilisation-
// sampling labeler ("eas.labeler", publishes Hint.Util), an energy-aware
// wake-up allocator ("eas.allocator"), an up-migration-suppressing selector
// ("eas.selector") and the schedutil-like governor ("eas.governor"). New
// composes the canonical four.
package eas

import (
	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/sched/cfs"
	"colab/internal/sim"
	"colab/internal/task"
)

// Options configure the EAS policy.
type Options struct {
	CFS cfs.Options
	// Interval is the utilisation-sampling period.
	Interval sim.Time
	// LittleCapacity is the utilisation above which a thread no longer
	// "fits" a base-tier core and is up-placed (EAS's fits_capacity rule,
	// expressed as a runnable-time fraction). Middle tiers interpolate
	// their fit threshold between this value and 1 by relative capacity.
	LittleCapacity float64
	// LoadDecay is the EWMA retention of per-interval utilisation.
	LoadDecay float64
	// FreqHeadroom is the schedutil-style margin the DVFS governor keeps
	// above the tracked utilisation when picking an operating point
	// (mainline uses 1.25).
	FreqHeadroom float64
	// Power drives the energy cost comparison between clusters.
	Power cpu.PowerModel
}

func (o Options) withDefaults() Options {
	if o.Interval == 0 {
		o.Interval = 10 * sim.Millisecond
	}
	if o.LittleCapacity == 0 {
		o.LittleCapacity = 0.8
	}
	if o.LoadDecay == 0 {
		o.LoadDecay = 0.5
	}
	if o.FreqHeadroom == 0 {
		o.FreqHeadroom = 1.25
	}
	if o.Power == (cpu.PowerModel{}) {
		o.Power = cpu.DefaultPower
	}
	return o
}

// New returns the EAS policy: the canonical four-stage composition.
func New(opts Options) kernel.Scheduler {
	opts = opts.withDefaults()
	s, err := kernel.NewPipeline("eas", NewLabeler(opts), NewAllocator(opts), NewSelector(opts), NewGovernor(opts))
	if err != nil {
		panic(err) // both mandatory stages are supplied above
	}
	return s
}

// utilOf reads a thread's tracked utilisation from the hint board; unknown
// threads report the modest-start default.
func utilOf(pc *kernel.PipelineContext, t *task.Thread) float64 {
	return pc.Hints().Get(t).Util
}

// fitThresholds computes, per tier, the utilisation up to which a thread
// fits that tier: LittleCapacity on the base tier, 1 on the top, linear
// interpolation by relative capacity in between.
func fitThresholds(tiers []cpu.Tier, littleCapacity float64) []float64 {
	out := make([]float64, len(tiers))
	capLo := tiers[0].Capacity
	capHi := tiers[len(tiers)-1].Capacity
	for k, t := range tiers {
		switch {
		case k == len(tiers)-1 || capHi <= capLo:
			out[k] = 1 // the top tier fits everything
		case k == 0:
			out[k] = littleCapacity
		default:
			// Interpolate the fit threshold towards 1 as capacity
			// approaches the top tier's.
			frac := (capHi - t.Capacity) / (capHi - capLo)
			out[k] = 1 - (1-littleCapacity)*frac
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Labeler: utilisation sampling.

type info struct {
	lastExec sim.Time
	lastRdy  sim.Time
}

// LabelerStage samples every thread's runnable-time fraction each Interval
// and publishes the EWMA as Hint.Util — the signal the EAS allocator and
// governor (and any hybrid pipeline) consume.
type LabelerStage struct {
	opts    Options
	pc      *kernel.PipelineContext
	threads map[*task.Thread]*info
	lastAt  sim.Time
}

// NewLabeler returns the EAS utilisation-sampling labeler stage.
func NewLabeler(opts Options) *LabelerStage {
	return &LabelerStage{opts: opts.withDefaults()}
}

// Name implements kernel.Stage.
func (l *LabelerStage) Name() string { return "eas.labeler" }

// Start implements kernel.Stage.
func (l *LabelerStage) Start(pc *kernel.PipelineContext) {
	l.pc = pc
	l.threads = make(map[*task.Thread]*info)
	l.lastAt = 0
	pc.Machine().Engine().After(l.opts.Interval, l.sample)
}

// Admit implements kernel.Labeler. New threads keep the modest default
// utilisation (kernel.NeutralUtil) so they begin on the cheap tiers, the
// energy-first default.
func (l *LabelerStage) Admit(t *task.Thread) {
	l.threads[t] = &info{}
}

// ThreadDone implements kernel.Labeler.
func (l *LabelerStage) ThreadDone(t *task.Thread) {
	delete(l.threads, t)
}

func (l *LabelerStage) sample() {
	m := l.pc.Machine()
	if m.Done() {
		return
	}
	defer m.Engine().After(l.opts.Interval, l.sample)
	now := m.Now()
	wall := float64(now - l.lastAt)
	l.lastAt = now
	if wall <= 0 {
		return
	}
	for t, in := range l.threads {
		inst := (float64(t.SumExec-in.lastExec) + float64(t.ReadyTime-in.lastRdy)) / wall
		in.lastExec = t.SumExec
		in.lastRdy = t.ReadyTime
		if inst > 1 {
			inst = 1
		}
		h := l.pc.Hints().Get(t)
		h.Util = l.opts.LoadDecay*h.Util + (1-l.opts.LoadDecay)*inst
	}
}

// ---------------------------------------------------------------------------
// Allocator: energy-aware wake-up placement.

// AllocatorStage implements the EAS wake-up placement. Candidate order:
// idle cores of the cheapest tier the thread fits, up the ladder (cheapest
// J per unit work first), then idle cores of the tiers it does not fit from
// the fastest down (closest to fitting first), then the least-loaded
// allowed core. Below core choice the placement rules are plain CFS.
type AllocatorStage struct {
	*cfs.AllocatorStage
	opts      Options
	pc        *kernel.PipelineContext
	fitThresh []float64
}

// NewAllocator returns the EAS allocator stage.
func NewAllocator(opts Options) *AllocatorStage {
	opts = opts.withDefaults()
	return &AllocatorStage{AllocatorStage: cfs.NewAllocator(opts.CFS), opts: opts}
}

// Name implements kernel.Stage.
func (a *AllocatorStage) Name() string { return "eas.allocator" }

// Start implements kernel.Stage.
func (a *AllocatorStage) Start(pc *kernel.PipelineContext) {
	a.AllocatorStage.Start(pc)
	a.pc = pc
	a.fitThresh = fitThresholds(pc.Machine().Tiers(), a.opts.LittleCapacity)
}

// Enqueue implements kernel.Allocator.
func (a *AllocatorStage) Enqueue(t *task.Thread, wakeup bool) int {
	core := a.pickCore(t)
	a.Place(t, core, wakeup)
	return core
}

func (a *AllocatorStage) pickCore(t *task.Thread) int {
	util := utilOf(a.pc, t)
	m := a.pc.Machine()
	q := a.pc.Queues()
	cores := m.Cores()
	scan := func(ids []int) int {
		for _, id := range ids {
			if t.AllowedOn(id) && cores[id].IsIdle() && q.Len(id) == 0 {
				return id
			}
		}
		return -1
	}
	// Pass 1: idle cores of fitting tiers, cheapest first.
	for tier := 0; tier < m.NumTiers(); tier++ {
		if util <= a.fitThresh[tier] {
			if id := scan(m.TierCoreIDs(tier)); id >= 0 {
				return id
			}
		}
	}
	// Oversized thread with no fitting core free: an idle slow core is
	// still better than queueing behind a busy fast one. Closest-to-
	// fitting (fastest) tiers first.
	for tier := m.NumTiers() - 1; tier >= 0; tier-- {
		if util > a.fitThresh[tier] {
			if id := scan(m.TierCoreIDs(tier)); id >= 0 {
				return id
			}
		}
	}
	// Pass 2: all busy — fall back to CFS least-loaded placement.
	return a.LeastLoadedAllowed(t)
}

// ---------------------------------------------------------------------------
// Selector: suppress up-migration while cheap clusters have headroom.

// SelectorStage implements the EAS selection rule. Base-tier cores behave
// exactly like CFS. Upper-tier cores serve their own cluster's queues but
// pull work from the cheaper tiers only when none of their cores is idle —
// EAS suppresses up-migration while the cheap clusters still have headroom.
type SelectorStage struct {
	*cfs.SelectorStage
	pc *kernel.PipelineContext
}

// NewSelector returns the EAS selector stage.
func NewSelector(opts Options) *SelectorStage {
	opts = opts.withDefaults()
	return &SelectorStage{SelectorStage: cfs.NewSelector(opts.CFS)}
}

// Name implements kernel.Stage.
func (s *SelectorStage) Name() string { return "eas.selector" }

// Start implements kernel.Stage.
func (s *SelectorStage) Start(pc *kernel.PipelineContext) {
	s.SelectorStage.Start(pc)
	s.pc = pc
}

// PickNext implements kernel.Selector.
func (s *SelectorStage) PickNext(c *kernel.Core) *task.Thread {
	if c.Kind == 0 {
		return s.SelectorStage.PickNext(c)
	}
	m := s.pc.Machine()
	if t := s.PopLocal(c.ID); t != nil {
		return t
	}
	if t := s.StealInto(c.ID, m.TierCoreIDs(int(c.Kind))); t != nil {
		return t
	}
	for tier := 0; tier < int(c.Kind); tier++ {
		for _, id := range m.TierCoreIDs(tier) {
			if m.Cores()[id].IsIdle() {
				return nil // an idle cheaper core will pick the queued work up
			}
		}
	}
	for tier := int(c.Kind) - 1; tier >= 0; tier-- {
		if t := s.StealInto(c.ID, m.TierCoreIDs(tier)); t != nil {
			return t
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Governor: schedutil.

// GovernorStage is the schedutil-like DVFS stage: it programs the lowest
// operating point whose frequency covers the incoming thread's utilisation
// plus headroom at the tier's nominal capacity.
type GovernorStage struct {
	opts Options
	pc   *kernel.PipelineContext
}

// NewGovernor returns the EAS governor stage.
func NewGovernor(opts Options) *GovernorStage {
	return &GovernorStage{opts: opts.withDefaults()}
}

// Name implements kernel.Stage.
func (g *GovernorStage) Name() string { return "eas.governor" }

// Start implements kernel.Stage.
func (g *GovernorStage) Start(pc *kernel.PipelineContext) { g.pc = pc }

// SelectOPP implements kernel.Governor.
func (g *GovernorStage) SelectOPP(c *kernel.Core, t *task.Thread) int {
	target := utilOf(g.pc, t) * g.opts.FreqHeadroom * float64(c.Tier.FreqMHz)
	ladder := c.Tier.Ladder()
	for i, f := range ladder {
		if float64(f) >= target {
			return i
		}
	}
	return len(ladder) - 1
}

var (
	_ kernel.Labeler   = (*LabelerStage)(nil)
	_ kernel.Allocator = (*AllocatorStage)(nil)
	_ kernel.Selector  = (*SelectorStage)(nil)
	_ kernel.Governor  = (*GovernorStage)(nil)
)
