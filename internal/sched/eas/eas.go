// Package eas implements a Linux Energy-Aware-Scheduling-like policy, the
// modern mainline answer to asymmetric placement and a natural extra
// comparison point for the energy extension. On wake-up it packs work onto
// the cheapest tier that still has spare capacity — slower tiers cost less
// energy per unit of work, so they fill first; load spills up the tier
// ladder only when the cheap clusters saturate or the thread's tracked
// utilisation does not fit them. Below placement it is plain CFS.
//
// On machines whose tiers expose DVFS ladders the policy doubles as a
// schedutil-like frequency governor: at each dispatch it programs the
// lowest operating point whose capacity covers the incoming thread's
// utilisation plus headroom, trading performance for energy exactly as
// mainline EAS + schedutil do. Fixed-frequency machines (the paper's gem5
// setup) never invoke the governor.
//
// EAS optimises energy, not bottlenecks or asymmetric fairness (Table 1
// has no row for it; it post-dates the paper) — expect lower energy than
// CFS on light load and weaker turnaround than COLAB on contended mixes.
package eas

import (
	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/sched/cfs"
	"colab/internal/sim"
	"colab/internal/task"
)

// Options configure the EAS policy.
type Options struct {
	CFS cfs.Options
	// Interval is the utilisation-sampling period.
	Interval sim.Time
	// LittleCapacity is the utilisation above which a thread no longer
	// "fits" a base-tier core and is up-placed (EAS's fits_capacity rule,
	// expressed as a runnable-time fraction). Middle tiers interpolate
	// their fit threshold between this value and 1 by relative capacity.
	LittleCapacity float64
	// LoadDecay is the EWMA retention of per-interval utilisation.
	LoadDecay float64
	// FreqHeadroom is the schedutil-style margin the DVFS governor keeps
	// above the tracked utilisation when picking an operating point
	// (mainline uses 1.25).
	FreqHeadroom float64
	// Power drives the energy cost comparison between clusters.
	Power cpu.PowerModel
}

func (o Options) withDefaults() Options {
	if o.Interval == 0 {
		o.Interval = 10 * sim.Millisecond
	}
	if o.LittleCapacity == 0 {
		o.LittleCapacity = 0.8
	}
	if o.LoadDecay == 0 {
		o.LoadDecay = 0.5
	}
	if o.FreqHeadroom == 0 {
		o.FreqHeadroom = 1.25
	}
	if o.Power == (cpu.PowerModel{}) {
		o.Power = cpu.DefaultPower
	}
	return o
}

type info struct {
	util     float64 // runnable-time fraction, EWMA
	lastExec sim.Time
	lastRdy  sim.Time
}

// Policy is the EAS-like scheduler.
type Policy struct {
	*cfs.Policy
	opts    Options
	m       *kernel.Machine
	threads map[*task.Thread]*info
	lastAt  sim.Time

	// fitThresh[k] is the utilisation up to which a thread fits tier k.
	fitThresh []float64
}

// New returns an EAS policy.
func New(opts Options) *Policy {
	return &Policy{Policy: cfs.New(opts.CFS), opts: opts.withDefaults(), threads: make(map[*task.Thread]*info)}
}

// Name implements kernel.Scheduler.
func (p *Policy) Name() string { return "eas" }

// Start implements kernel.Scheduler.
func (p *Policy) Start(m *kernel.Machine) {
	p.Policy.Start(m)
	p.m = m
	p.threads = make(map[*task.Thread]*info)
	p.lastAt = 0
	tiers := m.Tiers()
	p.fitThresh = make([]float64, len(tiers))
	capLo := tiers[0].Capacity
	capHi := tiers[len(tiers)-1].Capacity
	for k, t := range tiers {
		switch {
		case k == len(tiers)-1 || capHi <= capLo:
			p.fitThresh[k] = 1 // the top tier fits everything
		case k == 0:
			p.fitThresh[k] = p.opts.LittleCapacity
		default:
			// Interpolate the fit threshold towards 1 as capacity
			// approaches the top tier's.
			frac := (capHi - t.Capacity) / (capHi - capLo)
			p.fitThresh[k] = 1 - (1-p.opts.LittleCapacity)*frac
		}
	}
	m.Engine().After(p.opts.Interval, p.sample)
}

// Admit implements kernel.Scheduler.
func (p *Policy) Admit(t *task.Thread) {
	p.Policy.Admit(t)
	// New threads start with modest utilisation so they begin on the cheap
	// tiers, the energy-first default.
	p.threads[t] = &info{util: 0.4}
}

// ThreadDone implements kernel.Scheduler.
func (p *Policy) ThreadDone(t *task.Thread) {
	p.Policy.ThreadDone(t)
	delete(p.threads, t)
}

func (p *Policy) sample() {
	if p.m.Done() {
		return
	}
	defer p.m.Engine().After(p.opts.Interval, p.sample)
	now := p.m.Now()
	wall := float64(now - p.lastAt)
	p.lastAt = now
	if wall <= 0 {
		return
	}
	for t, in := range p.threads {
		inst := (float64(t.SumExec-in.lastExec) + float64(t.ReadyTime-in.lastRdy)) / wall
		in.lastExec = t.SumExec
		in.lastRdy = t.ReadyTime
		if inst > 1 {
			inst = 1
		}
		in.util = p.opts.LoadDecay*in.util + (1-p.opts.LoadDecay)*inst
	}
}

func (p *Policy) util(t *task.Thread) float64 {
	if in := p.threads[t]; in != nil {
		return in.util
	}
	return 0.4
}

// Enqueue implements kernel.Scheduler: energy-aware wake-up placement.
// Candidate order: idle cores of the cheapest tier the thread fits, up the
// ladder (cheapest J per unit work first), then idle cores of the tiers it
// does not fit from the fastest down (closest to fitting first), then the
// least-loaded allowed core.
func (p *Policy) Enqueue(t *task.Thread, wakeup bool) int {
	core := p.pickCore(t)
	p.Place(t, core, wakeup)
	return core
}

func (p *Policy) pickCore(t *task.Thread) int {
	util := p.util(t)
	cores := p.m.Cores()
	scan := func(ids []int) int {
		for _, id := range ids {
			if t.AllowedOn(id) && cores[id].IsIdle() && p.QueueLen(id) == 0 {
				return id
			}
		}
		return -1
	}
	// Pass 1: idle cores of fitting tiers, cheapest first.
	for tier := 0; tier < p.m.NumTiers(); tier++ {
		if util <= p.fitThresh[tier] {
			if id := scan(p.m.TierCoreIDs(tier)); id >= 0 {
				return id
			}
		}
	}
	// Oversized thread with no fitting core free: an idle slow core is
	// still better than queueing behind a busy fast one. Closest-to-
	// fitting (fastest) tiers first.
	for tier := p.m.NumTiers() - 1; tier >= 0; tier-- {
		if util > p.fitThresh[tier] {
			if id := scan(p.m.TierCoreIDs(tier)); id >= 0 {
				return id
			}
		}
	}
	// Pass 2: all busy — fall back to CFS least-loaded placement.
	return p.LeastLoadedAllowed(t)
}

// PickNext implements kernel.Scheduler. Base-tier cores behave exactly like
// CFS. Upper-tier cores serve their own cluster's queues but pull work from
// the cheaper tiers only when none of their cores is idle — EAS suppresses
// up-migration while the cheap clusters still have headroom.
func (p *Policy) PickNext(c *kernel.Core) *task.Thread {
	if c.Kind == 0 {
		return p.Policy.PickNext(c)
	}
	if t := p.PopLocal(c.ID); t != nil {
		return t
	}
	if t := p.StealInto(c.ID, p.m.TierCoreIDs(int(c.Kind))); t != nil {
		return t
	}
	for tier := 0; tier < int(c.Kind); tier++ {
		for _, id := range p.m.TierCoreIDs(tier) {
			if p.m.Cores()[id].IsIdle() {
				return nil // an idle cheaper core will pick the queued work up
			}
		}
	}
	for tier := int(c.Kind) - 1; tier >= 0; tier-- {
		if t := p.StealInto(c.ID, p.m.TierCoreIDs(tier)); t != nil {
			return t
		}
	}
	return nil
}

// SelectOPP implements kernel.DVFSGovernor: a schedutil-like governor that
// programs the lowest operating point whose frequency covers the incoming
// thread's utilisation plus headroom at the tier's nominal capacity.
func (p *Policy) SelectOPP(c *kernel.Core, t *task.Thread) int {
	target := p.util(t) * p.opts.FreqHeadroom * float64(c.Tier.FreqMHz)
	ladder := c.Tier.Ladder()
	for i, f := range ladder {
		if float64(f) >= target {
			return i
		}
	}
	return len(ladder) - 1
}

var (
	_ kernel.Scheduler    = (*Policy)(nil)
	_ kernel.DVFSGovernor = (*Policy)(nil)
)
