package colab

import (
	"colab/internal/kernel"
	"colab/internal/sim"
	"colab/internal/task"
)

// The COLAB-native DVFS governor (tri-gear extension). Where EAS programs
// frequency from tracked utilisation, COLAB already knows *why* a thread
// matters — the labeler's multi-factor criticality tags — so the governor
// maps labels straight onto operating points:
//
//   - big / free threads hold the top OPP: high-speedup threads convert
//     frequency into progress, and free threads include the high-blame
//     bottlenecks whose waiters the whole mix is stalled on;
//   - little-labelled threads (low predicted speedup AND low blocking
//     blame) are capped at the ladder's middle step: memory-bound work
//     gains little from clock and nobody is waiting for it, so the
//     cube-law dynamic power is mostly waste — but capping all the way to
//     the bottom stretches saturated mixes' makespan enough to lose the
//     EDP it saved, so the cap stops halfway;
//   - mid-labelled threads run one step below nominal, the cluster's
//     efficiency point.
//
// Two guards keep the governor honest: a thread that released futex
// waiters since the last labeling pass is boosted regardless of its label
// (criticality moves faster than the 10 ms labeler in sync-heavy mixes),
// and downshifts walk the ladder one step per GovernorHold so a single
// mislabelled interval cannot park a core low. Upshifts apply immediately —
// a bottleneck must never wait on the governor.
//
// As a pipeline stage ("colab.governor") the decision rules read the
// labeler's published hints, so the governor composes with any labeler
// that tags threads COLAB-style — and degrades to full speed (free label,
// no fresh blame) under labelers that do not.

// OPPForLabel maps a labeler tag onto the operating-point index the
// governor requests on a ladder of numOPPs ascending frequencies.
func OPPForLabel(l Label, numOPPs int) int {
	if numOPPs <= 1 {
		return 0
	}
	switch l {
	case LabelLittle:
		return (numOPPs - 1) / 2
	case LabelMid:
		return numOPPs - 2
	default: // LabelBig and LabelFree: full speed
		return numOPPs - 1
	}
}

// GovernorStage is the label-driven COLAB governor as a pipeline stage.
// With Options.Governor unset it pins every core at nominal, reproducing
// fixed-frequency COLAB exactly (the canonical "colab" policy carries the
// stage in that inert state; the "colab.governor" registry stage is built
// active).
type GovernorStage struct {
	opts Options
	pc   *kernel.PipelineContext
	// govSince[coreID] is when the governor last changed that core's
	// operating point (downshift hysteresis).
	govSince []sim.Time
}

// NewGovernor returns the COLAB governor stage.
func NewGovernor(opts Options) *GovernorStage {
	return &GovernorStage{opts: opts.withDefaults()}
}

// Name implements kernel.Stage.
func (g *GovernorStage) Name() string { return "colab.governor" }

// Start implements kernel.Stage.
func (g *GovernorStage) Start(pc *kernel.PipelineContext) {
	g.pc = pc
	g.govSince = make([]sim.Time, len(pc.Machine().Cores()))
}

// SelectOPP implements kernel.Governor.
func (g *GovernorStage) SelectOPP(c *kernel.Core, t *task.Thread) int {
	if !g.opts.Governor {
		return c.NumOPPs() - 1
	}
	cur := c.OPP()
	h := g.pc.Hints().Get(t)
	want := OPPForLabel(Label(h.Label), c.NumOPPs())
	// Blame is only folded into labels every Interval, but criticality moves
	// faster than that in sync-heavy mixes: a thread that released waiters
	// since the last labeling pass holds a contended resource right now and
	// must not run derated, whatever its label says.
	if t.BlockBlame > h.LastBlame {
		want = c.NumOPPs() - 1
	}
	now := g.pc.Machine().Now()
	switch {
	case want > cur:
		g.govSince[c.ID] = now
		return want
	case want < cur:
		if now-g.govSince[c.ID] < g.opts.GovernorHold {
			return cur // hysteresis: hold before stepping down
		}
		g.govSince[c.ID] = now
		return cur - 1
	}
	return cur
}

var _ kernel.Governor = (*GovernorStage)(nil)
