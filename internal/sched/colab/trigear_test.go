package colab_test

import (
	"testing"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/sched/colab"
	"colab/internal/sim"
	"colab/internal/task"
)

var middling = cpu.WorkProfile{ILP: 0.5, BranchRate: 0.1, MemIntensity: 0.35, FPRate: 0.3} // ~1.9x

// On a tri-gear machine the tier-ranked labeler must steer high-speedup
// threads to the big cluster, low-speedup ones to the little cluster, and
// give middling non-critical threads a middle-tier target.
func TestTriGearLabelerTargetsTiers(t *testing.T) {
	a := newApp(0, "mix")
	var hot, mid, cold *task.Thread
	for i := 0; i < 2; i++ {
		hot = addThread(a, "hot", sensitive, task.Program{task.Compute{Work: 150e6}})
		mid = addThread(a, "mid", middling, task.Program{task.Compute{Work: 150e6}})
		cold = addThread(a, "cold", insensitive, task.Program{task.Compute{Work: 150e6}})
	}
	w := &task.Workload{Name: "mix", Apps: []*task.App{a}}
	p := colab.New(oracleOpts())
	m, err := kernel.NewMachine(cpu.Config2B2M2S, p, w, kernel.Params{})
	if err != nil {
		t.Fatal(err)
	}
	var targets map[*task.Thread]int
	var labels map[*task.Thread]colab.Label
	m.Engine().At(35*sim.Millisecond, func() {
		targets = p.TargetTiers()
		labels = p.Labels()
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if targets == nil {
		t.Fatal("snapshot not taken (run too short)")
	}
	if got := targets[hot]; got != 2 {
		t.Errorf("hot thread target tier %d, want 2 (big); labels=%v", got, labels[hot])
	}
	if got := targets[cold]; got != 0 {
		t.Errorf("cold thread target tier %d, want 0 (little)", got)
	}
	if got := targets[mid]; got != 1 {
		t.Errorf("middling thread target tier %d, want 1 (medium); label=%v", got, labels[mid])
	}
	if labels[mid] != colab.LabelMid {
		t.Errorf("middling thread label %v, want mid", labels[mid])
	}
}

// The tier-ranked selector keeps the whole tri-gear machine busy: a
// saturating compute workload should load every cluster, and faster tiers
// must retire more work per core than slower ones.
func TestTriGearSelectorLoadsAllTiers(t *testing.T) {
	a := newApp(0, "sat")
	for i := 0; i < 12; i++ {
		addThread(a, "w", middling, task.Program{task.Compute{Work: 60e6}})
	}
	w := &task.Workload{Name: "sat", Apps: []*task.App{a}}
	res := runColab(t, cpu.Config2B2M2S, w, oracleOpts())
	util := make([]float64, 3)
	n := make([]float64, 3)
	for _, c := range res.Cores {
		total := c.BusyTime + c.IdleTime
		if total > 0 {
			util[c.Kind] += float64(c.BusyTime) / float64(total)
		}
		n[c.Kind]++
	}
	for tier := 0; tier < 3; tier++ {
		if u := util[tier] / n[tier]; u < 0.5 {
			t.Errorf("tier %d mean utilisation %.2f, want >= 0.5 (selector must keep clusters busy)", tier, u)
		}
	}
}
