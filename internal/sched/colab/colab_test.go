package colab_test

import (
	"testing"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/perfmodel"
	"colab/internal/sched/cfs"
	"colab/internal/sched/colab"
	"colab/internal/sim"
	"colab/internal/task"
)

var (
	sensitive   = cpu.WorkProfile{ILP: 0.9, BranchRate: 0.12, MemIntensity: 0.05, FPRate: 0.6} // ~2.7x
	insensitive = cpu.WorkProfile{ILP: 0.1, BranchRate: 0.05, MemIntensity: 0.95}              // ~1.1x
)

func oracleOpts() colab.Options {
	return colab.Options{Speedup: perfmodel.Oracle()}
}

func newApp(id int, name string) *task.App { return &task.App{ID: id, Name: name} }

func addThread(a *task.App, name string, prof cpu.WorkProfile, prog task.Program) *task.Thread {
	t := &task.Thread{App: a, Name: name, Profile: prof, Program: prog}
	a.Threads = append(a.Threads, t)
	return t
}

func runColab(t *testing.T, cfg cpu.Config, w *task.Workload, o colab.Options) *kernel.Result {
	t.Helper()
	m, err := kernel.NewMachine(cfg, colab.New(o), w, kernel.Params{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Core-sensitive threads must receive a larger big-core share than
// insensitive ones (the hierarchical allocator + labeler at work).
func TestAllocatorFavorsSensitiveThreadsOnBig(t *testing.T) {
	a := newApp(0, "mix")
	addThread(a, "hot", sensitive, task.Program{task.Compute{Work: 120e6}})
	addThread(a, "cold", insensitive, task.Program{task.Compute{Work: 120e6}})
	addThread(a, "hot2", sensitive, task.Program{task.Compute{Work: 120e6}})
	addThread(a, "cold2", insensitive, task.Program{task.Compute{Work: 120e6}})
	w := &task.Workload{Name: "mix", Apps: []*task.App{a}}
	res := runColab(t, cpu.Config2B2S, w, oracleOpts())
	share := func(i int) float64 {
		if res.Threads[i].SumExec == 0 {
			return 0
		}
		return float64(res.Threads[i].SumExecBig) / float64(res.Threads[i].SumExec)
	}
	hot := (share(0) + share(2)) / 2
	cold := (share(1) + share(3)) / 2
	if hot <= cold+0.15 {
		t.Fatalf("big-core share: sensitive %.2f vs insensitive %.2f", hot, cold)
	}
}

// An idle big core must pull a running thread off a little core rather than
// idle (Alg. 1's final selector clause).
func TestBigCorePullsRunningLittleThread(t *testing.T) {
	a := newApp(0, "solo")
	addThread(a, "only", sensitive, task.Program{task.Compute{Work: 50e6}})
	w := &task.Workload{Name: "solo", Apps: []*task.App{a}}
	// Little-first ordering: round-robin allocation may land the only
	// thread on a little core; the idle big core must then pull it.
	cfg := cpu.NewConfig(1, 1, false)
	res := runColab(t, cfg, w, oracleOpts())
	th := res.Threads[0]
	if th.SumExecBig < th.SumExec*9/10 {
		t.Fatalf("big core did not pull: big %v of %v", th.SumExecBig, th.SumExec)
	}
	// And with pulling disabled the thread may stay on the little core.
	w2 := &task.Workload{Name: "solo2", Apps: []*task.App{func() *task.App {
		a := newApp(0, "solo")
		addThread(a, "only", sensitive, task.Program{task.Compute{Work: 50e6}})
		return a
	}()}}
	o := oracleOpts()
	o.DisablePull = true
	o.LocalOnlySelector = true
	res2 := runColab(t, cfg, w2, o)
	if res2.EndTime <= res.EndTime {
		t.Fatalf("disabling pull+steal should not be faster: %v vs %v", res2.EndTime, res.EndTime)
	}
}

// The biased-global selector must prefer the most blocking thread: a lock
// holder that makes others wait gets picked ahead of plain threads.
func TestSelectorPrioritizesBottleneck(t *testing.T) {
	// App with a heavily contended lock: the holder accrues blame.
	a := newApp(0, "locky")
	var bottleneck task.Program
	for i := 0; i < 40; i++ {
		bottleneck = append(bottleneck, task.Lock{ID: 1}, task.Compute{Work: 1.5e6}, task.Unlock{ID: 1}, task.Compute{Work: 0.2e6})
	}
	var waiter task.Program
	for i := 0; i < 40; i++ {
		waiter = append(waiter, task.Lock{ID: 1}, task.Compute{Work: 0.1e6}, task.Unlock{ID: 1}, task.Compute{Work: 0.5e6})
	}
	addThread(a, "holder", insensitive, bottleneck)
	addThread(a, "waiter1", insensitive, waiter)
	addThread(a, "waiter2", insensitive, waiter)
	// Competing CPU-bound filler app.
	b := newApp(1, "filler")
	for i := 0; i < 3; i++ {
		addThread(b, "f", insensitive, task.Program{task.Compute{Work: 80e6}})
	}
	w := &task.Workload{Name: "bn", Apps: []*task.App{a, b}}
	res := runColab(t, cpu.Config2B2S, w, oracleOpts())
	holder := res.Threads[0]
	if holder.BlockBlame == 0 {
		t.Fatalf("holder accrued no blame")
	}
	// The bottleneck holder must not languish in queues: its ready-wait
	// should be small relative to the filler threads'.
	fillerReady := res.Threads[3].ReadyTime + res.Threads[4].ReadyTime + res.Threads[5].ReadyTime
	if holder.ReadyTime*3 > fillerReady*2 {
		t.Fatalf("bottleneck waited too long: holder %v vs fillers %v", holder.ReadyTime, fillerReady/3)
	}
}

// Figure 1's motivating example: alpha(2 threads, a1 high-speedup blocks
// a2), beta(2 threads, b1 low-speedup blocks b2), gamma (single-thread high
// speedup) on one big + one little core. The coordinated scheduler must
// beat CFS end-to-end.
func TestMotivatingExampleBeatsCFS(t *testing.T) {
	build := func() *task.Workload {
		blocker := func(work float64) task.Program {
			var p task.Program
			for i := 0; i < 40; i++ {
				p = append(p, task.Lock{ID: 1}, task.Compute{Work: work}, task.Unlock{ID: 1}, task.Compute{Work: 0.2e6})
			}
			return p
		}
		blocked := func() task.Program {
			var p task.Program
			for i := 0; i < 40; i++ {
				p = append(p, task.Compute{Work: 0.2e6}, task.Lock{ID: 1}, task.Compute{Work: 0.1e6}, task.Unlock{ID: 1}, task.Compute{Work: 1e6})
			}
			return p
		}
		alpha := newApp(0, "alpha")
		addThread(alpha, "a1", sensitive, blocker(3e6))
		addThread(alpha, "a2", insensitive, blocked())
		beta := newApp(1, "beta")
		addThread(beta, "b1", insensitive, blocker(3e6))
		addThread(beta, "b2", insensitive, blocked())
		gamma := newApp(2, "gamma")
		addThread(gamma, "g", sensitive, task.Program{task.Compute{Work: 240e6}})
		return &task.Workload{Name: "fig1", Apps: []*task.App{alpha, beta, gamma}}
	}
	cfg := cpu.NewConfig(1, 1, true)

	mc, err := kernel.NewMachine(cfg, colab.New(oracleOpts()), build(), kernel.Params{})
	if err != nil {
		t.Fatal(err)
	}
	resColab, err := mc.Run()
	if err != nil {
		t.Fatal(err)
	}
	ml, err := kernel.NewMachine(cfg, cfs.New(cfs.Options{}), build(), kernel.Params{})
	if err != nil {
		t.Fatal(err)
	}
	resCFS, err := ml.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resColab.Makespan() >= resCFS.Makespan() {
		t.Fatalf("COLAB %v not faster than CFS %v on the motivating example",
			resColab.Makespan(), resCFS.Makespan())
	}
}

// Scale-slice: with contention on big cores, COLAB must rotate threads
// faster than the no-scale ablation (more switches, tighter fairness).
func TestScaleSliceIncreasesRotation(t *testing.T) {
	build := func() *task.Workload {
		a := newApp(0, "spin")
		for i := 0; i < 4; i++ {
			addThread(a, "t", sensitive, task.Program{task.Compute{Work: 60e6}})
		}
		return &task.Workload{Name: "spin", Apps: []*task.App{a}}
	}
	cfg := cpu.NewConfig(2, 0, true) // big cores only: all slices scaled
	on := runColab(t, cfg, build(), oracleOpts())
	o := oracleOpts()
	o.DisableScaleSlice = true
	off := runColab(t, cfg, build(), o)
	if on.TotalSwitches <= off.TotalSwitches {
		t.Fatalf("scale-slice did not shorten slices: %d vs %d switches",
			on.TotalSwitches, off.TotalSwitches)
	}
}

func TestNames(t *testing.T) {
	if colab.New(colab.Options{}).Name() != "colab" {
		t.Fatalf("name")
	}
	if colab.New(colab.Options{FlatAllocator: true}).Name() != "colab-ablated" {
		t.Fatalf("ablated name")
	}
	for l, want := range map[colab.Label]string{
		colab.LabelFree: "free", colab.LabelBig: "big", colab.LabelLittle: "little",
	} {
		if l.String() != want {
			t.Errorf("label %d = %q", int(l), l.String())
		}
	}
}

// The labeler must classify a clearly bimodal speedup population.
func TestLabelsSplitBimodalPopulation(t *testing.T) {
	a := newApp(0, "bimodal")
	for i := 0; i < 3; i++ {
		addThread(a, "hot", sensitive, task.Program{task.Compute{Work: 200e6}})
		addThread(a, "cold", insensitive, task.Program{task.Compute{Work: 200e6}})
	}
	w := &task.Workload{Name: "bimodal", Apps: []*task.App{a}}
	p := colab.New(oracleOpts())
	m, err := kernel.NewMachine(cpu.Config2B2S, p, w, kernel.Params{})
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot labels after a few labeling intervals.
	var snapshot map[*task.Thread]colab.Label
	m.Engine().At(35*sim.Millisecond, func() { snapshot = p.Labels() })
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if snapshot == nil {
		t.Fatal("snapshot never taken")
	}
	bigHot, littleCold := 0, 0
	for th, l := range snapshot {
		if th.Profile.TrueSpeedup() > 2 && l == colab.LabelBig {
			bigHot++
		}
		if th.Profile.TrueSpeedup() < 1.5 && l == colab.LabelLittle {
			littleCold++
		}
	}
	if bigHot == 0 {
		t.Errorf("no sensitive thread labeled big: %v", snapshot)
	}
	if littleCold == 0 {
		t.Errorf("no insensitive thread labeled little")
	}
}
