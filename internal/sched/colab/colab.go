// Package colab implements the paper's contribution: a collaborative
// multi-factor scheduler for asymmetric multicore processors (§3–4),
// generalised from the paper's two-kind big/little machines to arbitrary
// ordered core tiers.
//
// Three collaborating heuristics, each primarily owning one factor:
//
//   - A multi-factor labeler runs every 10 ms and tags ready threads from
//     the runtime models (predicted speedup, futex blocking blame):
//     high-speedup threads get top-tier priority, low-speedup &
//     low-blocking threads get base-tier priority. On machines with middle
//     tiers, non-critical middle-band threads are spread over the middle
//     tiers by predicted speedup; the rest stay free.
//   - The hierarchical round-robin core allocator (Alg. 1,
//     _core_alloctor_) places waking threads by label: round-robin within
//     the labelled tier's cluster, or across all cores for free threads —
//     keeping every cluster loaded without migration churn.
//   - The tier-ranked global thread selector (Alg. 1, _thread_selector_)
//     always runs the most blocking (most critical) thread: local queue
//     first, then the same-tier cluster, then the remaining tiers from the
//     top of the machine down; an empty core may even pull a thread
//     running on any lower-tier core. Lower tiers never preempt higher
//     ones.
//
// Fairness comes from speedup-scaled slices: on upper-tier cores vruntime
// advances multiplied by the tier-relative predicted speedup, so threads
// are charged for work received rather than wall time and selection
// triggers proportionally more often on fast cores (the paper's
// scale-slice equal-progress mechanism).
//
// The decomposition is literal: the package exports the three heuristics
// (plus the tri-gear DVFS governor) as pipeline stages — LabelerStage,
// AllocatorStage, SelectorStage, GovernorStage — coupled only through the
// pipeline hint board, so each can be swapped against another policy's
// stage (the paper's ablation story, now expressible in the public API).
// Policy composes the canonical four.
package colab

import (
	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/sim"
	"colab/internal/task"
)

// Label is the core-allocation tag the labeler assigns (§3.2).
type Label int

const (
	// LabelFree threads balance load across all clusters.
	LabelFree Label = iota
	// LabelBig marks high-predicted-speedup threads: top-tier priority.
	LabelBig
	// LabelLittle marks low-speedup, low-blocking (non-critical) threads:
	// base-tier priority.
	LabelLittle
	// LabelMid marks middle-band threads steered to a middle tier
	// (machines with three or more tiers only).
	LabelMid
)

// String names the label.
func (l Label) String() string {
	switch l {
	case LabelBig:
		return "big"
	case LabelLittle:
		return "little"
	case LabelMid:
		return "mid"
	default:
		return "free"
	}
}

// Options configure COLAB. The ablation switches disable individual design
// choices for the ablation benches DESIGN.md §4 calls out.
type Options struct {
	// TargetLatency / MinGranularity / WakeupGranularity mirror the CFS
	// latency parameters the slice computation is built on.
	TargetLatency     sim.Time
	MinGranularity    sim.Time
	WakeupGranularity sim.Time
	// Interval is the labeling period (paper: 10 ms).
	Interval sim.Time
	// Speedup predicts a thread's big-vs-little speedup (trained model).
	Speedup func(*task.Thread) float64
	// TierSpeedup, when set, predicts a thread's tier-vs-base speedup
	// directly per tier index (per-tier trained model). When nil, upper-tier
	// scaling interpolates the big-anchor Speedup prediction through
	// Tier.RelSpeedup — the two-anchor fallback.
	TierSpeedup func(*task.Thread, int) float64
	// TierSpeedupTiers is the palette TierSpeedup was trained for. When set
	// and the machine's palette differs (a tri-gear model on a two-tier
	// machine, say), per-tier predictions are disabled for that run and
	// upper-tier scaling falls back to interpolation — tier indices would
	// otherwise select the wrong tier's model and clamp to the wrong
	// envelope.
	TierSpeedupTiers []cpu.Tier
	// Governor enables the COLAB-native DVFS governor on machines whose
	// tiers expose frequency ladders: cores running critical or
	// high-speedup threads are boosted to the top operating point, cores
	// running low-speedup non-critical threads are capped at the ladder's
	// middle step, and middle-band threads run one step below nominal (see
	// governor.go for the full decision rules). Downshifts are hysteretic
	// (one ladder step per GovernorHold); fixed-frequency machines (the
	// paper's setup) never invoke it.
	Governor bool
	// GovernorHold is the minimum residency at an operating point before
	// the governor lowers a core's frequency by one step (upshifts are
	// immediate).
	GovernorHold sim.Time
	// HighSpeedupZ sets the high-speedup threshold at mean + z*std of the
	// current ready-thread speedup distribution.
	HighSpeedupZ float64
	// BlameDecay is the EWMA retention of per-interval blocking blame.
	BlameDecay float64
	// FairnessWindow bounds how far (in scaled vruntime) blame priority may
	// push a thread ahead of its fair share before selection reverts to
	// pure vruntime order.
	FairnessWindow sim.Time

	// Ablation switches (all false for the paper's COLAB).
	DisableScaleSlice bool // drop the equal-progress vruntime scaling
	LocalOnlySelector bool // selector never steals from other queues
	FlatAllocator     bool // ignore labels: plain round-robin over all cores
	DisablePull       bool // upper tiers never preempt running lower-tier threads
}

func (o Options) withDefaults() Options {
	if o.TargetLatency == 0 {
		o.TargetLatency = 6 * sim.Millisecond
	}
	if o.MinGranularity == 0 {
		o.MinGranularity = 750 * sim.Microsecond
	}
	if o.WakeupGranularity == 0 {
		o.WakeupGranularity = sim.Millisecond
	}
	if o.Interval == 0 {
		o.Interval = 10 * sim.Millisecond
	}
	if o.Speedup == nil {
		o.Speedup = func(*task.Thread) float64 { return 1.5 }
	}
	if o.HighSpeedupZ == 0 {
		o.HighSpeedupZ = 0.5
	}
	if o.BlameDecay == 0 {
		o.BlameDecay = 0.5
	}
	if o.FairnessWindow == 0 {
		o.FairnessWindow = 4 * o.TargetLatency
	}
	if o.GovernorHold == 0 {
		o.GovernorHold = 2 * sim.Millisecond
	}
	return o
}

// Policy is the COLAB scheduler: the canonical composition of the four
// COLAB stages over the generic pipeline driver.
type Policy struct {
	kernel.Scheduler
	opts Options
	lab  *LabelerStage
	gov  *GovernorStage
}

// New returns a COLAB policy.
func New(opts Options) *Policy {
	opts = opts.withDefaults()
	lab := NewLabeler(opts)
	gov := NewGovernor(opts)
	sched, err := kernel.NewPipeline("colab", lab, NewAllocator(opts), NewSelector(opts), gov)
	if err != nil {
		panic(err) // both mandatory stages are supplied above
	}
	return &Policy{Scheduler: sched, opts: opts, lab: lab, gov: gov}
}

// Name implements kernel.Scheduler.
func (p *Policy) Name() string {
	if p.opts.DisableScaleSlice || p.opts.LocalOnlySelector || p.opts.FlatAllocator || p.opts.DisablePull {
		return "colab-ablated"
	}
	if p.opts.Governor {
		return "colab-dvfs"
	}
	return "colab"
}

// SelectOPP implements kernel.DVFSGovernor. With Options.Governor unset it
// pins every core at nominal, reproducing fixed-frequency COLAB exactly.
func (p *Policy) SelectOPP(c *kernel.Core, t *task.Thread) int { return p.gov.SelectOPP(c, t) }

// Labels returns a snapshot of the current label of every live thread
// (diagnostics and tests).
func (p *Policy) Labels() map[*task.Thread]Label { return p.lab.Labels() }

// TargetTiers returns a snapshot of every live thread's allocation target
// tier (-1 = free), for diagnostics and tests.
func (p *Policy) TargetTiers() map[*task.Thread]int { return p.lab.TargetTiers() }

// paletteMatches reports whether the machine's palette is the one a tiered
// predictor was trained for, on the fields prediction semantics depend on.
func paletteMatches(trained, machine []cpu.Tier) bool {
	if len(trained) != len(machine) {
		return false
	}
	for i := range trained {
		a, b := trained[i], machine[i]
		if a.Name != b.Name || a.FreqMHz != b.FreqMHz || a.Uarch != b.Uarch ||
			a.Capacity != b.Capacity || a.MinSpeedup != b.MinSpeedup || a.MaxSpeedup != b.MaxSpeedup {
			return false
		}
	}
	return true
}

// middleTier linearly maps a prediction inside [low, high) onto the middle
// tier indices 1..nt-2.
func middleTier(nt int, pred, low, high float64) int {
	span := high - low
	if span <= 0 {
		return 1
	}
	idx := 1 + int(float64(nt-2)*(pred-low)/span)
	if idx < 1 {
		idx = 1
	}
	if idx > nt-2 {
		idx = nt - 2
	}
	return idx
}

var (
	_ kernel.Scheduler    = (*Policy)(nil)
	_ kernel.DVFSGovernor = (*Policy)(nil)
)
