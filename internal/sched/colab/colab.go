// Package colab implements the paper's contribution: a collaborative
// multi-factor scheduler for asymmetric multicore processors (§3–4),
// generalised from the paper's two-kind big/little machines to arbitrary
// ordered core tiers.
//
// Three collaborating heuristics, each primarily owning one factor:
//
//   - A multi-factor labeler runs every 10 ms and tags ready threads from
//     the runtime models (predicted speedup, futex blocking blame):
//     high-speedup threads get top-tier priority, low-speedup &
//     low-blocking threads get base-tier priority. On machines with middle
//     tiers, non-critical middle-band threads are spread over the middle
//     tiers by predicted speedup; the rest stay free.
//   - The hierarchical round-robin core allocator (Alg. 1,
//     _core_alloctor_) places waking threads by label: round-robin within
//     the labelled tier's cluster, or across all cores for free threads —
//     keeping every cluster loaded without migration churn.
//   - The tier-ranked global thread selector (Alg. 1, _thread_selector_)
//     always runs the most blocking (most critical) thread: local queue
//     first, then the same-tier cluster, then the remaining tiers from the
//     top of the machine down; an empty core may even pull a thread
//     running on any lower-tier core. Lower tiers never preempt higher
//     ones.
//
// Fairness comes from speedup-scaled slices: on upper-tier cores vruntime
// advances multiplied by the tier-relative predicted speedup, so threads
// are charged for work received rather than wall time and selection
// triggers proportionally more often on fast cores (the paper's
// scale-slice equal-progress mechanism).
package colab

import (
	"fmt"
	"sort"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/mathx"
	"colab/internal/sim"
	"colab/internal/task"
)

// Label is the core-allocation tag the labeler assigns (§3.2).
type Label int

const (
	// LabelFree threads balance load across all clusters.
	LabelFree Label = iota
	// LabelBig marks high-predicted-speedup threads: top-tier priority.
	LabelBig
	// LabelLittle marks low-speedup, low-blocking (non-critical) threads:
	// base-tier priority.
	LabelLittle
	// LabelMid marks middle-band threads steered to a middle tier
	// (machines with three or more tiers only).
	LabelMid
)

// String names the label.
func (l Label) String() string {
	switch l {
	case LabelBig:
		return "big"
	case LabelLittle:
		return "little"
	case LabelMid:
		return "mid"
	default:
		return "free"
	}
}

// Options configure COLAB. The ablation switches disable individual design
// choices for the ablation benches DESIGN.md §4 calls out.
type Options struct {
	// TargetLatency / MinGranularity / WakeupGranularity mirror the CFS
	// latency parameters the slice computation is built on.
	TargetLatency     sim.Time
	MinGranularity    sim.Time
	WakeupGranularity sim.Time
	// Interval is the labeling period (paper: 10 ms).
	Interval sim.Time
	// Speedup predicts a thread's big-vs-little speedup (trained model).
	Speedup func(*task.Thread) float64
	// TierSpeedup, when set, predicts a thread's tier-vs-base speedup
	// directly per tier index (per-tier trained model). When nil, upper-tier
	// scaling interpolates the big-anchor Speedup prediction through
	// Tier.RelSpeedup — the two-anchor fallback.
	TierSpeedup func(*task.Thread, int) float64
	// TierSpeedupTiers is the palette TierSpeedup was trained for. When set
	// and the machine's palette differs (a tri-gear model on a two-tier
	// machine, say), per-tier predictions are disabled for that run and
	// upper-tier scaling falls back to interpolation — tier indices would
	// otherwise select the wrong tier's model and clamp to the wrong
	// envelope.
	TierSpeedupTiers []cpu.Tier
	// Governor enables the COLAB-native DVFS governor on machines whose
	// tiers expose frequency ladders: cores running critical or
	// high-speedup threads are boosted to the top operating point, cores
	// running low-speedup non-critical threads are capped at the ladder's
	// middle step, and middle-band threads run one step below nominal (see
	// governor.go for the full decision rules). Downshifts are hysteretic
	// (one ladder step per GovernorHold); fixed-frequency machines (the
	// paper's setup) never invoke it.
	Governor bool
	// GovernorHold is the minimum residency at an operating point before
	// the governor lowers a core's frequency by one step (upshifts are
	// immediate).
	GovernorHold sim.Time
	// HighSpeedupZ sets the high-speedup threshold at mean + z*std of the
	// current ready-thread speedup distribution.
	HighSpeedupZ float64
	// BlameDecay is the EWMA retention of per-interval blocking blame.
	BlameDecay float64
	// FairnessWindow bounds how far (in scaled vruntime) blame priority may
	// push a thread ahead of its fair share before selection reverts to
	// pure vruntime order.
	FairnessWindow sim.Time

	// Ablation switches (all false for the paper's COLAB).
	DisableScaleSlice bool // drop the equal-progress vruntime scaling
	LocalOnlySelector bool // selector never steals from other queues
	FlatAllocator     bool // ignore labels: plain round-robin over all cores
	DisablePull       bool // upper tiers never preempt running lower-tier threads
}

func (o Options) withDefaults() Options {
	if o.TargetLatency == 0 {
		o.TargetLatency = 6 * sim.Millisecond
	}
	if o.MinGranularity == 0 {
		o.MinGranularity = 750 * sim.Microsecond
	}
	if o.WakeupGranularity == 0 {
		o.WakeupGranularity = sim.Millisecond
	}
	if o.Interval == 0 {
		o.Interval = 10 * sim.Millisecond
	}
	if o.Speedup == nil {
		o.Speedup = func(*task.Thread) float64 { return 1.5 }
	}
	if o.HighSpeedupZ == 0 {
		o.HighSpeedupZ = 0.5
	}
	if o.BlameDecay == 0 {
		o.BlameDecay = 0.5
	}
	if o.FairnessWindow == 0 {
		o.FairnessWindow = 4 * o.TargetLatency
	}
	if o.GovernorHold == 0 {
		o.GovernorHold = 2 * sim.Millisecond
	}
	return o
}

// tinfo is the per-thread runtime model state.
type tinfo struct {
	label      Label
	targetTier int // tier the allocator steers to; -1 = free
	pred       float64
	// tierPred caches the per-tier speedup predictions of the last labeling
	// pass (nil until the first pass, or when no TierSpeedup model is set).
	tierPred  []float64
	blameEWMA float64
	lastBlame sim.Time
}

// Policy is the COLAB scheduler.
type Policy struct {
	opts Options
	m    *kernel.Machine

	info map[*task.Thread]*tinfo
	rqs  [][]*task.Thread // per-core ready queues (selection scans by blame)

	// tierIDs[k] holds the allocation targets for tier k: the tier's own
	// cores when the cluster is populated, all cores otherwise.
	tierIDs [][]int
	allIDs  []int
	rrTier  []int
	rrAll   int
	// stealOrder[k] lists, for a core of tier k, the other tiers to scan
	// in selection order: the core's own tier first, then the remaining
	// tiers from the top of the machine down.
	stealOrder [][]int
	// govSince[coreID] is when the governor last changed that core's
	// operating point (downshift hysteresis).
	govSince []sim.Time
	// useTierPred reports whether TierSpeedup applies to this machine
	// (set in Start after the palette check).
	useTierPred bool
}

// New returns a COLAB policy.
func New(opts Options) *Policy {
	return &Policy{opts: opts.withDefaults(), info: make(map[*task.Thread]*tinfo)}
}

// Name implements kernel.Scheduler.
func (p *Policy) Name() string {
	if p.opts.DisableScaleSlice || p.opts.LocalOnlySelector || p.opts.FlatAllocator || p.opts.DisablePull {
		return "colab-ablated"
	}
	if p.opts.Governor {
		return "colab-dvfs"
	}
	return "colab"
}

// Start implements kernel.Scheduler.
func (p *Policy) Start(m *kernel.Machine) {
	p.m = m
	p.info = make(map[*task.Thread]*tinfo)
	p.rqs = make([][]*task.Thread, len(m.Cores()))
	p.allIDs = p.allIDs[:0]
	for i := range m.Cores() {
		p.allIDs = append(p.allIDs, i)
	}
	nt := m.NumTiers()
	p.tierIDs = make([][]int, nt)
	p.rrTier = make([]int, nt)
	p.stealOrder = make([][]int, nt)
	for tier := 0; tier < nt; tier++ {
		ids := m.TierCoreIDs(tier)
		if len(ids) == 0 {
			ids = p.allIDs // unpopulated cluster: fall back to everything
		}
		p.tierIDs[tier] = ids
		order := []int{tier}
		for other := nt - 1; other >= 0; other-- {
			if other != tier {
				order = append(order, other)
			}
		}
		p.stealOrder[tier] = order
	}
	p.rrAll = 0
	p.govSince = make([]sim.Time, len(m.Cores()))
	p.useTierPred = p.opts.TierSpeedup != nil &&
		(p.opts.TierSpeedupTiers == nil || paletteMatches(p.opts.TierSpeedupTiers, m.Tiers()))
	m.Engine().After(p.opts.Interval, p.label)
}

// Admit implements kernel.Scheduler.
func (p *Policy) Admit(t *task.Thread) {
	p.info[t] = &tinfo{label: LabelFree, targetTier: -1, pred: perfNeutral}
}

const perfNeutral = 1.5

// ThreadDone implements kernel.Scheduler.
func (p *Policy) ThreadDone(t *task.Thread) {
	delete(p.info, t)
}

func (p *Policy) ti(t *task.Thread) *tinfo {
	in := p.info[t]
	if in == nil {
		in = &tinfo{label: LabelFree, targetTier: -1, pred: perfNeutral}
		p.info[t] = in
	}
	return in
}

// ---------------------------------------------------------------------------
// Multi-factor labeler (§3.2): periodically refresh the runtime models and
// re-tag every live thread with a target tier.

func (p *Policy) label() {
	if p.m.Done() {
		return
	}
	defer p.m.Engine().After(p.opts.Interval, p.label)
	if len(p.info) == 0 {
		return
	}
	// Iterate in thread-ID order: map order would randomise the float
	// summation behind the thresholds and break run-to-run determinism.
	threads := make([]*task.Thread, 0, len(p.info))
	for t := range p.info {
		threads = append(threads, t)
	}
	sort.Slice(threads, func(i, j int) bool { return threads[i].ID < threads[j].ID })
	preds := make([]float64, 0, len(threads))
	blames := make([]float64, 0, len(threads))
	nt := p.m.NumTiers()
	for _, t := range threads {
		in := p.info[t]
		in.pred = p.opts.Speedup(t)
		if p.useTierPred {
			if in.tierPred == nil {
				in.tierPred = make([]float64, nt)
			}
			in.tierPred[0] = 1
			for tier := 1; tier < nt; tier++ {
				in.tierPred[tier] = p.opts.TierSpeedup(t, tier)
			}
		}
		intervalBlame := float64(t.BlockBlame - in.lastBlame)
		in.lastBlame = t.BlockBlame
		in.blameEWMA = p.opts.BlameDecay*in.blameEWMA + (1-p.opts.BlameDecay)*intervalBlame
		t.IntervalCounters = cpu.Vec{}
		preds = append(preds, in.pred)
		blames = append(blames, in.blameEWMA)
	}
	pMean, pStd := mathx.Mean(preds), mathx.Std(preds)
	bMean := mathx.Mean(blames)
	// Degenerate distributions (all threads alike) must not label everyone
	// big: require a real margin above the mean.
	highThresh := pMean + mathx.Clamp(p.opts.HighSpeedupZ*pStd, 0.02*pMean, 1)
	lowThresh := pMean
	top := p.m.TopTier()
	for _, t := range threads {
		in := p.info[t]
		switch {
		case in.pred >= highThresh:
			in.label, in.targetTier = LabelBig, top
		case in.pred < lowThresh && in.blameEWMA <= 0.5*bMean:
			in.label, in.targetTier = LabelLittle, 0
		case nt > 2 && in.blameEWMA <= 0.5*bMean:
			// Tier-ranked middle band: non-critical threads between the
			// thresholds are spread over the middle tiers by predicted
			// speedup. Critical ones keep full freedom (stay free).
			in.label = LabelMid
			in.targetTier = middleTier(nt, in.pred, lowThresh, highThresh)
		default:
			in.label, in.targetTier = LabelFree, -1
		}
	}
}

// paletteMatches reports whether the machine's palette is the one a tiered
// predictor was trained for, on the fields prediction semantics depend on.
func paletteMatches(trained, machine []cpu.Tier) bool {
	if len(trained) != len(machine) {
		return false
	}
	for i := range trained {
		a, b := trained[i], machine[i]
		if a.Name != b.Name || a.FreqMHz != b.FreqMHz || a.Uarch != b.Uarch ||
			a.Capacity != b.Capacity || a.MinSpeedup != b.MinSpeedup || a.MaxSpeedup != b.MaxSpeedup {
			return false
		}
	}
	return true
}

// middleTier linearly maps a prediction inside [low, high) onto the middle
// tier indices 1..nt-2.
func middleTier(nt int, pred, low, high float64) int {
	span := high - low
	if span <= 0 {
		return 1
	}
	idx := 1 + int(float64(nt-2)*(pred-low)/span)
	if idx < 1 {
		idx = 1
	}
	if idx > nt-2 {
		idx = nt - 2
	}
	return idx
}

// ---------------------------------------------------------------------------
// Hierarchical round-robin core allocator (Alg. 1: _core_alloctor_).

// Enqueue implements kernel.Scheduler.
func (p *Policy) Enqueue(t *task.Thread, wakeup bool) int {
	var core int
	switch {
	case p.opts.FlatAllocator:
		core = p.rr(p.allIDs, &p.rrAll)
	default:
		if tier := p.ti(t).targetTier; tier >= 0 {
			core = p.rr(p.tierIDs[tier], &p.rrTier[tier])
		} else {
			core = p.rr(p.allIDs, &p.rrAll)
		}
	}
	p.rqs[core] = append(p.rqs[core], t)
	return core
}

func (p *Policy) rr(ids []int, ctr *int) int {
	core := ids[*ctr%len(ids)]
	*ctr++
	return core
}

// ---------------------------------------------------------------------------
// Tier-ranked global thread selector (Alg. 1: _thread_selector_).

// PickNext implements kernel.Scheduler: most blocking thread from the local
// queue, then the same-tier cluster, then the remaining tiers from the top
// down; an empty core may pull a thread running on a lower-tier core.
func (p *Policy) PickNext(c *kernel.Core) *task.Thread {
	if t := p.takeMaxBlame(c.ID, c.ID); t != nil {
		return t
	}
	if p.opts.LocalOnlySelector {
		return nil
	}
	for _, tier := range p.stealOrder[int(c.Kind)] {
		best, bestCore := p.scanMaxBlame(p.m.TierCoreIDs(tier), c)
		if best != nil {
			p.removeQueued(bestCore, best)
			return best
		}
	}
	if int(c.Kind) > 0 && !p.opts.DisablePull {
		if t := p.pullFromLower(c); t != nil {
			return t // still Running on the lower core; the kernel migrates it
		}
	}
	return nil
}

// takeMaxBlame pops the most blocking thread allowed on core from queue q.
func (p *Policy) takeMaxBlame(q, core int) *task.Thread {
	best := -1
	for i, t := range p.rqs[q] {
		if !t.AllowedOn(core) {
			continue
		}
		if best < 0 || p.moreCritical(t, p.rqs[q][best]) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	t := p.rqs[q][best]
	p.rqs[q] = append(p.rqs[q][:best], p.rqs[q][best+1:]...)
	return t
}

// scanMaxBlame finds (without removing) the most blocking stealable thread
// across the queues of the listed cores.
func (p *Policy) scanMaxBlame(ids []int, c *kernel.Core) (*task.Thread, int) {
	var best *task.Thread
	bestCore := -1
	for _, id := range ids {
		if id == c.ID {
			continue
		}
		for _, t := range p.rqs[id] {
			if !t.AllowedOn(c.ID) {
				continue
			}
			if best == nil || p.moreCritical(t, best) {
				best, bestCore = t, id
			}
		}
	}
	return best, bestCore
}

func (p *Policy) removeQueued(core int, t *task.Thread) {
	q := p.rqs[core]
	for i, o := range q {
		if o == t {
			p.rqs[core] = append(q[:i], q[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("colab: thread %v not found in cpu%d queue", t, core))
}

// moreCritical orders candidates: higher blocking blame first (bottleneck
// acceleration), then higher predicted speedup (only meaningful when an
// upper-tier core selects — the §3.1 "empty big core" exception), then
// lower vruntime.
//
// Blame priority only applies within a vruntime fairness window: a thread
// that is more than FairnessWindow of (scaled) runtime ahead of a candidate
// loses to it regardless of blame. This is the selector's side of "keeping
// the whole workload in equal progress without penalizing any individual
// application" (§3.1): in overloaded systems unbounded blame priority would
// starve low-blame applications.
func (p *Policy) moreCritical(a, b *task.Thread) bool {
	ia, ib := p.ti(a), p.ti(b)
	dv := a.VRuntime - b.VRuntime
	if dv > p.opts.FairnessWindow || dv < -p.opts.FairnessWindow {
		return dv < 0
	}
	if ia.blameEWMA != ib.blameEWMA {
		return ia.blameEWMA > ib.blameEWMA
	}
	if ia.pred != ib.pred {
		return ia.pred > ib.pred
	}
	return a.VRuntime < b.VRuntime
}

// pullFromLower selects the most critical thread currently running on a
// strictly lower tier for migration onto the idle core c. Lower tiers
// never pull from higher ones.
func (p *Policy) pullFromLower(c *kernel.Core) *task.Thread {
	var best *task.Thread
	cores := p.m.Cores()
	for tier := 0; tier < int(c.Kind); tier++ {
		for _, id := range p.m.TierCoreIDs(tier) {
			t := cores[id].Current
			if t == nil || t.State != task.Running || !t.AllowedOn(c.ID) {
				continue
			}
			if best == nil || p.moreCritical(t, best) {
				best = t
			}
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// Scale-slice fairness (§3.2 / §4.1).

// tierScale is the tier-relative predicted speedup of t on c: 1 on the base
// tier and, in two-anchor mode, the big prediction interpolated through
// Tier.RelSpeedup in between. With a per-tier trained model (TierSpeedup)
// the labeler's cached per-tier prediction is used directly instead.
func (p *Policy) tierScale(c *kernel.Core, t *task.Thread) float64 {
	if c.Kind == 0 {
		return 1
	}
	in := p.ti(t)
	if in.tierPred != nil {
		if s := in.tierPred[c.Kind]; s > 1 {
			return s
		}
		return 1
	}
	return c.Tier.RelSpeedup(in.pred)
}

// TimeSlice implements kernel.Scheduler. On upper-tier cores the slice
// shrinks by the tier-relative predicted speedup so selection triggers
// proportionally more often.
func (p *Policy) TimeSlice(c *kernel.Core, t *task.Thread) sim.Time {
	nr := len(p.rqs[c.ID]) + 1
	slice := p.opts.TargetLatency / sim.Time(nr)
	if slice < p.opts.MinGranularity {
		slice = p.opts.MinGranularity
	}
	if c.Kind > 0 && !p.opts.DisableScaleSlice {
		if s := p.tierScale(c, t); s > 1 {
			slice = sim.Time(float64(slice) / s)
		}
		if min := p.opts.MinGranularity / 2; slice < min {
			slice = min
		}
	}
	return slice
}

// VRuntimeScale implements kernel.Scheduler: upper-tier cores charge
// vruntime at the tier-relative predicted speedup so equal vruntime means
// equal progress.
func (p *Policy) VRuntimeScale(c *kernel.Core, t *task.Thread) float64 {
	if c.Kind > 0 && !p.opts.DisableScaleSlice {
		if s := p.tierScale(c, t); s > 1 {
			return s
		}
	}
	return 1
}

// WakeupPreempt implements kernel.Scheduler: the CFS granularity check,
// relaxed for woken threads that are more critical than the running one.
func (p *Policy) WakeupPreempt(c *kernel.Core, t *task.Thread) bool {
	cur := c.Current
	if cur == nil {
		return false
	}
	vdiff := cur.VRuntime - t.VRuntime
	if vdiff > p.opts.WakeupGranularity {
		return true
	}
	return p.ti(t).blameEWMA > p.ti(cur).blameEWMA && vdiff > p.opts.WakeupGranularity/4
}

// Labels returns a snapshot of the current label of every live thread
// (diagnostics and tests).
func (p *Policy) Labels() map[*task.Thread]Label {
	out := make(map[*task.Thread]Label, len(p.info))
	for t, in := range p.info {
		out[t] = in.label
	}
	return out
}

// TargetTiers returns a snapshot of every live thread's allocation target
// tier (-1 = free), for diagnostics and tests.
func (p *Policy) TargetTiers() map[*task.Thread]int {
	out := make(map[*task.Thread]int, len(p.info))
	for t, in := range p.info {
		out[t] = in.targetTier
	}
	return out
}

var _ kernel.Scheduler = (*Policy)(nil)
