package colab

import (
	"fmt"
	"sort"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/mathx"
	"colab/internal/sim"
	"colab/internal/task"
)

// The COLAB stage decomposition. The three collaborating heuristics (plus
// the governor) communicate exclusively through the pipeline hint board:
// the labeler publishes Label / TargetTier / Pred / TierPred / Crit /
// LastBlame, the allocator reads TargetTier, the selector reads Crit and
// the predictions, the governor reads Label and LastBlame. Swapping any
// stage for another policy's (or dropping the labeler, leaving neutral
// hints) yields a well-defined hybrid — the ablation axis the paper argues
// along, now first-class.

// ---------------------------------------------------------------------------
// Multi-factor labeler (§3.2): periodically refresh the runtime models and
// re-tag every live thread with a target tier.

// LabelerStage is the COLAB multi-factor labeler as a pipeline stage.
type LabelerStage struct {
	opts    Options
	pc      *kernel.PipelineContext
	threads map[*task.Thread]struct{}
	// useTierPred reports whether TierSpeedup applies to this machine
	// (set in Start after the palette check).
	useTierPred bool
}

// NewLabeler returns the COLAB labeler stage.
func NewLabeler(opts Options) *LabelerStage {
	return &LabelerStage{opts: opts.withDefaults(), threads: make(map[*task.Thread]struct{})}
}

// Name implements kernel.Stage.
func (l *LabelerStage) Name() string { return "colab.labeler" }

// Start implements kernel.Stage.
func (l *LabelerStage) Start(pc *kernel.PipelineContext) {
	l.pc = pc
	l.threads = make(map[*task.Thread]struct{})
	l.useTierPred = l.opts.TierSpeedup != nil &&
		(l.opts.TierSpeedupTiers == nil || paletteMatches(l.opts.TierSpeedupTiers, pc.Machine().Tiers()))
	pc.Machine().Engine().After(l.opts.Interval, l.label)
}

// Admit implements kernel.Labeler. The fresh thread keeps the board's
// neutral hint (free label, no target tier, neutral prediction).
func (l *LabelerStage) Admit(t *task.Thread) {
	l.threads[t] = struct{}{}
}

// ThreadDone implements kernel.Labeler.
func (l *LabelerStage) ThreadDone(t *task.Thread) {
	delete(l.threads, t)
}

func (l *LabelerStage) label() {
	m := l.pc.Machine()
	if m.Done() {
		return
	}
	defer m.Engine().After(l.opts.Interval, l.label)
	if len(l.threads) == 0 {
		return
	}
	// Iterate in thread-ID order: map order would randomise the float
	// summation behind the thresholds and break run-to-run determinism.
	threads := make([]*task.Thread, 0, len(l.threads))
	for t := range l.threads {
		threads = append(threads, t)
	}
	sort.Slice(threads, func(i, j int) bool { return threads[i].ID < threads[j].ID })
	preds := make([]float64, 0, len(threads))
	blames := make([]float64, 0, len(threads))
	nt := m.NumTiers()
	board := l.pc.Hints()
	for _, t := range threads {
		h := board.Get(t)
		h.Pred = l.opts.Speedup(t)
		if l.useTierPred {
			if h.TierPred == nil {
				h.TierPred = make([]float64, nt)
			}
			h.TierPred[0] = 1
			for tier := 1; tier < nt; tier++ {
				h.TierPred[tier] = l.opts.TierSpeedup(t, tier)
			}
		}
		intervalBlame := float64(t.BlockBlame - h.LastBlame)
		h.LastBlame = t.BlockBlame
		h.Crit = l.opts.BlameDecay*h.Crit + (1-l.opts.BlameDecay)*intervalBlame
		t.IntervalCounters = cpu.Vec{}
		preds = append(preds, h.Pred)
		blames = append(blames, h.Crit)
	}
	pMean, pStd := mathx.Mean(preds), mathx.Std(preds)
	bMean := mathx.Mean(blames)
	// Degenerate distributions (all threads alike) must not label everyone
	// big: require a real margin above the mean.
	highThresh := pMean + mathx.Clamp(l.opts.HighSpeedupZ*pStd, 0.02*pMean, 1)
	lowThresh := pMean
	top := m.TopTier()
	for _, t := range threads {
		h := board.Get(t)
		switch {
		case h.Pred >= highThresh:
			h.Label, h.TargetTier = int(LabelBig), top
		case h.Pred < lowThresh && h.Crit <= 0.5*bMean:
			h.Label, h.TargetTier = int(LabelLittle), 0
		case nt > 2 && h.Crit <= 0.5*bMean:
			// Tier-ranked middle band: non-critical threads between the
			// thresholds are spread over the middle tiers by predicted
			// speedup. Critical ones keep full freedom (stay free).
			h.Label = int(LabelMid)
			h.TargetTier = middleTier(nt, h.Pred, lowThresh, highThresh)
		default:
			h.Label, h.TargetTier = int(LabelFree), -1
		}
	}
}

// Labels returns a snapshot of the current label of every live thread.
func (l *LabelerStage) Labels() map[*task.Thread]Label {
	out := make(map[*task.Thread]Label, len(l.threads))
	for t := range l.threads {
		out[t] = Label(l.pc.Hints().Get(t).Label)
	}
	return out
}

// TargetTiers returns a snapshot of every live thread's allocation target
// tier (-1 = free).
func (l *LabelerStage) TargetTiers() map[*task.Thread]int {
	out := make(map[*task.Thread]int, len(l.threads))
	for t := range l.threads {
		out[t] = l.pc.Hints().Get(t).TargetTier
	}
	return out
}

// ---------------------------------------------------------------------------
// Hierarchical round-robin core allocator (Alg. 1: _core_alloctor_).

// AllocatorStage places waking threads by the labeler's target tier:
// round-robin within the labelled tier's cluster, or across all cores for
// free (untagged) threads.
type AllocatorStage struct {
	opts Options
	pc   *kernel.PipelineContext

	// tierIDs[k] holds the allocation targets for tier k: the tier's own
	// cores when the cluster is populated, all cores otherwise.
	tierIDs [][]int
	allIDs  []int
	rrTier  []int
	rrAll   int

	// Topology-aware targets (populated only when the machine topology is
	// active): domTierIDs[d][k] is the tier-k cores of LLC domain d, with a
	// matching round-robin counter, so a labelled thread is placed on its
	// home domain's slice of the tier band; domIDs[d]/rrDom[d] serve free
	// threads the same way. Empty intersections fall back tier-wide.
	topoActive bool
	domTierIDs [][][]int
	rrDomTier  [][]int
	domIDs     [][]int
	rrDom      []int
}

// NewAllocator returns the COLAB allocator stage.
func NewAllocator(opts Options) *AllocatorStage {
	return &AllocatorStage{opts: opts.withDefaults()}
}

// Name implements kernel.Stage.
func (a *AllocatorStage) Name() string { return "colab.allocator" }

// Start implements kernel.Stage.
func (a *AllocatorStage) Start(pc *kernel.PipelineContext) {
	a.pc = pc
	m := pc.Machine()
	a.allIDs = a.allIDs[:0]
	for i := range m.Cores() {
		a.allIDs = append(a.allIDs, i)
	}
	nt := m.NumTiers()
	a.tierIDs = make([][]int, nt)
	a.rrTier = make([]int, nt)
	for tier := 0; tier < nt; tier++ {
		ids := m.TierCoreIDs(tier)
		if len(ids) == 0 {
			ids = a.allIDs // unpopulated cluster: fall back to everything
		}
		a.tierIDs[tier] = ids
	}
	a.rrAll = 0
	a.topoActive = m.TopoActive()
	a.domTierIDs, a.rrDomTier, a.domIDs, a.rrDom = nil, nil, nil, nil
	if a.topoActive {
		nd := m.NumDomains()
		a.domTierIDs = make([][][]int, nd)
		a.rrDomTier = make([][]int, nd)
		a.domIDs = make([][]int, nd)
		a.rrDom = make([]int, nd)
		for d := 0; d < nd; d++ {
			a.domIDs[d] = m.DomainCoreIDs(d)
			a.domTierIDs[d] = make([][]int, nt)
			a.rrDomTier[d] = make([]int, nt)
			for _, id := range a.domIDs[d] {
				tier := int(m.Cores()[id].Kind)
				a.domTierIDs[d][tier] = append(a.domTierIDs[d][tier], id)
			}
		}
	}
}

// Enqueue implements kernel.Allocator. On an active topology the
// hierarchical round-robin narrows each step to the thread's home LLC
// domain: labelled threads rotate over the home domain's slice of the
// target tier (tier-wide when the domain has no such cores), free threads
// rotate over the home domain instead of the whole machine.
func (a *AllocatorStage) Enqueue(t *task.Thread, wakeup bool) int {
	var core int
	switch {
	case a.opts.FlatAllocator:
		core = a.rr(a.allIDs, &a.rrAll)
	case a.topoActive:
		d := t.HomeDomain
		if tier := a.pc.Hints().Get(t).TargetTier; tier >= 0 && tier < len(a.tierIDs) {
			if ids := a.domTierIDs[d][tier]; len(ids) > 0 {
				core = a.rr(ids, &a.rrDomTier[d][tier])
			} else {
				core = a.rr(a.tierIDs[tier], &a.rrTier[tier])
			}
		} else {
			core = a.rr(a.domIDs[d], &a.rrDom[d])
		}
	default:
		if tier := a.pc.Hints().Get(t).TargetTier; tier >= 0 && tier < len(a.tierIDs) {
			core = a.rr(a.tierIDs[tier], &a.rrTier[tier])
		} else {
			core = a.rr(a.allIDs, &a.rrAll)
		}
	}
	a.pc.Queues().Push(core, t)
	return core
}

func (a *AllocatorStage) rr(ids []int, ctr *int) int {
	core := ids[*ctr%len(ids)]
	*ctr++
	return core
}

// ---------------------------------------------------------------------------
// Tier-ranked global thread selector (Alg. 1: _thread_selector_).

// SelectorStage always runs the most blocking (most critical) thread: the
// local queue first, then the same-tier cluster, then the remaining tiers
// from the top of the machine down; an empty core may pull a thread running
// on a lower-tier core. It also owns COLAB's scale-slice fairness hooks.
type SelectorStage struct {
	opts Options
	pc   *kernel.PipelineContext

	// stealOrder[k] lists, for a core of tier k, the other tiers to scan
	// in selection order: the core's own tier first, then the remaining
	// tiers from the top of the machine down.
	stealOrder [][]int
}

// NewSelector returns the COLAB selector stage.
func NewSelector(opts Options) *SelectorStage {
	return &SelectorStage{opts: opts.withDefaults()}
}

// Name implements kernel.Stage.
func (s *SelectorStage) Name() string { return "colab.selector" }

// Start implements kernel.Stage.
func (s *SelectorStage) Start(pc *kernel.PipelineContext) {
	s.pc = pc
	nt := pc.Machine().NumTiers()
	s.stealOrder = make([][]int, nt)
	for tier := 0; tier < nt; tier++ {
		order := []int{tier}
		for other := nt - 1; other >= 0; other-- {
			if other != tier {
				order = append(order, other)
			}
		}
		s.stealOrder[tier] = order
	}
}

// PickNext implements kernel.Selector.
func (s *SelectorStage) PickNext(c *kernel.Core) *task.Thread {
	if t := s.takeMaxBlame(c.ID, c.ID); t != nil {
		return t
	}
	if s.opts.LocalOnlySelector {
		return nil
	}
	m := s.pc.Machine()
	for _, tier := range s.stealOrder[int(c.Kind)] {
		if best := s.scanMaxBlame(m.TierCoreIDs(tier), c); best != nil {
			if !s.pc.Queues().Remove(best) {
				panic(fmt.Sprintf("colab: scanned thread %v vanished from the queues", best))
			}
			return best
		}
	}
	if int(c.Kind) > 0 && !s.opts.DisablePull {
		if t := s.pullFromLower(c); t != nil {
			return t // still Running on the lower core; the kernel migrates it
		}
	}
	return nil
}

// takeMaxBlame pops the most blocking thread allowed on core from queue q.
// The scan is an index loop over the insertion-ordered queue (not an Each
// closure) so the per-dispatch criticality sweep does not allocate.
func (s *SelectorStage) takeMaxBlame(q, core int) *task.Thread {
	qs := s.pc.Queues()
	var best *task.Thread
	for i, n := 0, qs.Len(q); i < n; i++ {
		t := qs.Thread(q, i)
		if !t.AllowedOn(core) {
			continue
		}
		if best == nil || s.moreCritical(t, best) {
			best = t
		}
	}
	if best == nil {
		return nil
	}
	if !qs.Remove(best) {
		panic(fmt.Sprintf("colab: thread %v not found in cpu%d queue", best, q))
	}
	return best
}

// scanMaxBlame finds (without removing) the most blocking stealable thread
// across the queues of the listed cores, allocation-free like takeMaxBlame.
func (s *SelectorStage) scanMaxBlame(ids []int, c *kernel.Core) *task.Thread {
	qs := s.pc.Queues()
	var best *task.Thread
	for _, id := range ids {
		if id == c.ID {
			continue
		}
		for i, n := 0, qs.Len(id); i < n; i++ {
			t := qs.Thread(id, i)
			if !t.AllowedOn(c.ID) {
				continue
			}
			if best == nil || s.moreCritical(t, best) {
				best = t
			}
		}
	}
	return best
}

// moreCritical orders candidates: higher blocking blame first (bottleneck
// acceleration), then higher predicted speedup (only meaningful when an
// upper-tier core selects — the §3.1 "empty big core" exception), then
// lower vruntime.
//
// Blame priority only applies within a vruntime fairness window: a thread
// that is more than FairnessWindow of (scaled) runtime ahead of a candidate
// loses to it regardless of blame. This is the selector's side of "keeping
// the whole workload in equal progress without penalizing any individual
// application" (§3.1): in overloaded systems unbounded blame priority would
// starve low-blame applications.
func (s *SelectorStage) moreCritical(a, b *task.Thread) bool {
	ha, hb := s.pc.Hints().Get(a), s.pc.Hints().Get(b)
	dv := a.VRuntime - b.VRuntime
	if dv > s.opts.FairnessWindow || dv < -s.opts.FairnessWindow {
		return dv < 0
	}
	if ha.Crit != hb.Crit {
		return ha.Crit > hb.Crit
	}
	if ha.Pred != hb.Pred {
		return ha.Pred > hb.Pred
	}
	return a.VRuntime < b.VRuntime
}

// pullFromLower selects the most critical thread currently running on a
// strictly lower tier for migration onto the idle core c. Lower tiers
// never pull from higher ones.
func (s *SelectorStage) pullFromLower(c *kernel.Core) *task.Thread {
	var best *task.Thread
	m := s.pc.Machine()
	cores := m.Cores()
	for tier := 0; tier < int(c.Kind); tier++ {
		for _, id := range m.TierCoreIDs(tier) {
			t := cores[id].Current
			if t == nil || t.State != task.Running || !t.AllowedOn(c.ID) {
				continue
			}
			if best == nil || s.moreCritical(t, best) {
				best = t
			}
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// Scale-slice fairness (§3.2 / §4.1).

// tierScale is the tier-relative predicted speedup of t on c: 1 on the base
// tier and, in two-anchor mode, the big prediction interpolated through
// Tier.RelSpeedup in between. With a per-tier trained model (TierSpeedup)
// the labeler's published per-tier prediction is used directly instead.
func (s *SelectorStage) tierScale(c *kernel.Core, t *task.Thread) float64 {
	if c.Kind == 0 {
		return 1
	}
	h := s.pc.Hints().Get(t)
	if h.TierPred != nil {
		if sc := h.TierPred[c.Kind]; sc > 1 {
			return sc
		}
		return 1
	}
	return c.Tier.RelSpeedup(h.Pred)
}

// TimeSlice implements kernel.Selector. On upper-tier cores the slice
// shrinks by the tier-relative predicted speedup so selection triggers
// proportionally more often.
func (s *SelectorStage) TimeSlice(c *kernel.Core, t *task.Thread) sim.Time {
	nr := s.pc.Queues().Len(c.ID) + 1
	slice := s.opts.TargetLatency / sim.Time(nr)
	if slice < s.opts.MinGranularity {
		slice = s.opts.MinGranularity
	}
	if c.Kind > 0 && !s.opts.DisableScaleSlice {
		if sc := s.tierScale(c, t); sc > 1 {
			slice = sim.Time(float64(slice) / sc)
		}
		if min := s.opts.MinGranularity / 2; slice < min {
			slice = min
		}
	}
	return slice
}

// VRuntimeScale implements kernel.Selector: upper-tier cores charge
// vruntime at the tier-relative predicted speedup so equal vruntime means
// equal progress.
func (s *SelectorStage) VRuntimeScale(c *kernel.Core, t *task.Thread) float64 {
	if c.Kind > 0 && !s.opts.DisableScaleSlice {
		if sc := s.tierScale(c, t); sc > 1 {
			return sc
		}
	}
	return 1
}

// WakeupPreempt implements kernel.Selector: the CFS granularity check,
// relaxed for woken threads that are more critical than the running one.
func (s *SelectorStage) WakeupPreempt(c *kernel.Core, t *task.Thread) bool {
	cur := c.Current
	if cur == nil {
		return false
	}
	vdiff := cur.VRuntime - t.VRuntime
	if vdiff > s.opts.WakeupGranularity {
		return true
	}
	return s.pc.Hints().Get(t).Crit > s.pc.Hints().Get(cur).Crit && vdiff > s.opts.WakeupGranularity/4
}

var (
	_ kernel.Labeler   = (*LabelerStage)(nil)
	_ kernel.Allocator = (*AllocatorStage)(nil)
	_ kernel.Selector  = (*SelectorStage)(nil)
)
