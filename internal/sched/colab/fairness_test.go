package colab_test

import (
	"testing"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/mathx"
	"colab/internal/sched/colab"
	"colab/internal/sim"
	"colab/internal/task"
	"colab/internal/workload"
)

// Under heavy overload, blame priority must not starve low-blame
// applications. Pipeline bottleneck threads (ferret's rank stage) run
// continuously while accumulating blame, so without a fairness bound they
// are always selected ahead of a plain compute app far behind on vruntime.
func TestFairnessWindowPreventsStarvation(t *testing.T) {
	build := func() *task.Workload {
		w := &task.Workload{Name: "starve"}
		rng := mathx.NewRNG(5)
		ferret, _ := workload.ByName("ferret")
		swap, _ := workload.ByName("swaptions")
		a, err := ferret.Instantiate(0, 8, rng)
		if err != nil {
			t.Fatal(err)
		}
		b, err := swap.Instantiate(1, 4, rng)
		if err != nil {
			t.Fatal(err)
		}
		w.Apps = []*task.App{a, b}
		return w
	}
	// 12 threads on 4 cores: overload.
	cfg := cpu.Config2B2S

	run := func(window sim.Time) sim.Time {
		o := oracleOpts()
		o.FairnessWindow = window
		m, err := kernel.NewMachine(cfg, colab.New(o), build(), kernel.Params{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		tt, ok := res.AppTurnaround("swaptions")
		if !ok {
			t.Fatal("swaptions missing")
		}
		return tt
	}

	tight := run(24 * sim.Millisecond)
	loose := run(100 * sim.Second) // effectively unbounded blame priority
	// With unbounded blame priority the low-blame app waits behind the
	// pipeline; the bounded window must finish it meaningfully earlier.
	if float64(tight) > 0.95*float64(loose) {
		t.Fatalf("fairness window had no effect: tight %v vs loose %v", tight, loose)
	}
}

// The fairness window must not defeat bottleneck acceleration in the
// normal (non-overloaded) regime: the motivating example still wins.
func TestFairnessWindowKeepsBottleneckWins(t *testing.T) {
	// Covered by TestMotivatingExampleBeatsCFS running with the default
	// window; here we just assert the default is sane.
	o := colab.Options{}
	p := colab.New(o)
	if p.Name() != "colab" {
		t.Fatal("unexpected policy")
	}
}
