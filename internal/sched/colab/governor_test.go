package colab_test

import (
	"testing"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/sched/colab"
	"colab/internal/sim"
	"colab/internal/task"
)

// The label→OPP decision table: critical and high-speedup work runs flat
// out, capped work runs at the ladder's middle step, middle-band work one
// step below nominal; single-point ladders always select their only entry.
func TestOPPForLabelTable(t *testing.T) {
	cases := []struct {
		label colab.Label
		opps  int
		want  int
	}{
		{colab.LabelBig, 3, 2},
		{colab.LabelFree, 3, 2},
		{colab.LabelMid, 3, 1},
		{colab.LabelLittle, 3, 1},
		{colab.LabelBig, 5, 4},
		{colab.LabelMid, 5, 3},
		{colab.LabelLittle, 5, 2},
		{colab.LabelBig, 1, 0},
		{colab.LabelLittle, 1, 0},
		{colab.LabelLittle, 2, 0},
		{colab.LabelMid, 2, 0},
		{colab.LabelFree, 2, 1},
	}
	for _, c := range cases {
		if got := colab.OPPForLabel(c.label, c.opps); got != c.want {
			t.Errorf("OPPForLabel(%v, %d) = %d, want %d", c.label, c.opps, got, c.want)
		}
	}
}

// With the governor disabled (the default), SelectOPP pins nominal so a
// DVFS-laddered machine behaves exactly like the fixed-frequency paper
// setup under COLAB.
func TestGovernorDisabledPinsNominal(t *testing.T) {
	a := newApp(0, "solo")
	th := addThread(a, "only", sensitive, task.Program{task.Compute{Work: 1e6}})
	w := &task.Workload{Name: "solo", Apps: []*task.App{a}}
	p := colab.New(oracleOpts())
	m, err := kernel.NewMachine(cpu.Config2B2M2S, p, w, kernel.Params{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range m.Cores() {
		if got, want := p.SelectOPP(c, th), c.NumOPPs()-1; got != want {
			t.Errorf("disabled governor on %v: OPP %d, want nominal %d", c, got, want)
		}
	}
}

func governorOpts(hold sim.Time) colab.Options {
	o := oracleOpts()
	o.Governor = true
	o.GovernorHold = hold
	return o
}

// mixWorkload builds a hot/cold thread mix that gives the labeler a real
// speedup spread: cold threads get LabelLittle and should be frequency-
// capped by the governor.
func mixWorkload(work float64) *task.Workload {
	a := newApp(0, "mix")
	for i := 0; i < 3; i++ {
		addThread(a, "hot", sensitive, task.Program{task.Compute{Work: work}})
		addThread(a, "cold", insensitive, task.Program{task.Compute{Work: work}})
	}
	return &task.Workload{Name: "mix", Apps: []*task.App{a}}
}

// The governor must actually move cores off the nominal point: on a
// hot/cold mix the capped cold threads leave low-OPP busy residency behind,
// and per-OPP residency always sums to the core's busy time.
func TestGovernorCapsAndAccountsResidency(t *testing.T) {
	res := runColab(t, cpu.Config2B2M2S, mixWorkload(120e6), governorOpts(0))
	var nominal, total sim.Time
	for _, c := range res.Cores {
		var sum sim.Time
		for i, b := range c.BusyByOPP {
			sum += b
			total += b
			if i == len(c.BusyByOPP)-1 {
				nominal += b
			}
		}
		if sum != c.BusyTime {
			t.Errorf("%s(%d): BusyByOPP sums to %v, BusyTime %v", c.TierName, c.ID, sum, c.BusyTime)
		}
	}
	if nominal == total {
		t.Fatalf("governor never left the nominal point (busy %v all at nominal)", total)
	}
}

// Hysteresis: an effectively infinite hold time must forbid every downshift
// (cores boot at nominal and may only stay or boost), so all busy time lands
// on the nominal point even under the governor.
func TestGovernorHoldBlocksDownshift(t *testing.T) {
	res := runColab(t, cpu.Config2B2M2S, mixWorkload(120e6), governorOpts(sim.Time(1e15)))
	for _, c := range res.Cores {
		for i, b := range c.BusyByOPP {
			if i != len(c.BusyByOPP)-1 && b != 0 {
				t.Errorf("%s(%d): %v busy at OPP %d despite infinite hold", c.TierName, c.ID, b, i)
			}
		}
	}
}

// A short hold must yield strictly more sub-nominal residency than a long
// one on the same deterministic mix (single-step downshifts per hold
// period).
func TestGovernorHoldThrottlesDownshifts(t *testing.T) {
	subNominal := func(hold sim.Time) sim.Time {
		res := runColab(t, cpu.Config2B2M2S, mixWorkload(120e6), governorOpts(hold))
		var sub sim.Time
		for _, c := range res.Cores {
			for i, b := range c.BusyByOPP {
				if i != len(c.BusyByOPP)-1 {
					sub += b
				}
			}
		}
		return sub
	}
	fast, slow := subNominal(sim.Millisecond), subNominal(40*sim.Millisecond)
	if fast <= slow {
		t.Fatalf("sub-nominal residency: hold=1ms %v <= hold=40ms %v; hysteresis not throttling", fast, slow)
	}
}
