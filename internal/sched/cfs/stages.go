package cfs

import (
	"colab/internal/kernel"
	"colab/internal/sim"
	"colab/internal/task"
)

// The CFS stage decomposition: the least-loaded wake-up placement becomes
// the pipeline allocator and the vruntime-timeline selection (leftmost pop,
// rightmost idle-balance steal, granularity-guarded preemption) becomes the
// pipeline selector, both operating on the pipeline's shared RunQueues
// instead of the monolithic Policy's red-black trees. (vruntime, push
// order) scans over the shared queues reproduce the tree's timeline
// ordering exactly — the golden corpus holds the two implementations to
// bit-identical schedules. CFS has no labeler and no governor.

// AllocatorStage is the CFS core-allocation stage: least-loaded placement
// among allowed cores (asymmetry-blind) with sleeper vruntime credit on
// wake-up. Registered as "linux.allocator"; WASH and GTS alias it, since
// below their affinity masks allocation is plain CFS.
type AllocatorStage struct {
	opts Options
	pc   *kernel.PipelineContext
}

// NewAllocator returns the CFS allocator stage.
func NewAllocator(opts Options) *AllocatorStage {
	return &AllocatorStage{opts: opts.withDefaults()}
}

// Name implements kernel.Stage.
func (a *AllocatorStage) Name() string { return "linux.allocator" }

// Start implements kernel.Stage.
func (a *AllocatorStage) Start(pc *kernel.PipelineContext) { a.pc = pc }

// Enqueue implements kernel.Allocator.
func (a *AllocatorStage) Enqueue(t *task.Thread, wakeup bool) int {
	core := a.leastLoadedAllowed(t)
	a.Place(t, core, wakeup)
	return core
}

// leastLoadedAllowed picks the allowed core with the smallest load (queued
// plus running threads), breaking ties by core index. With an unsatisfiable
// mask it falls back to all cores rather than wedging the thread.
func (a *AllocatorStage) leastLoadedAllowed(t *task.Thread) int {
	q, cores := a.pc.Queues(), a.pc.Machine().Cores()
	best, bestLoad := -1, int(^uint(0)>>1)
	for i := 0; i < q.NumQueues(); i++ {
		if !t.AllowedOn(i) {
			continue
		}
		l := q.Len(i)
		if cores[i].Current != nil {
			l++
		}
		if l < bestLoad {
			best, bestLoad = i, l
		}
	}
	if best < 0 {
		t.Affinity = task.MaskAll()
		return a.leastLoadedAllowed(t)
	}
	return best
}

// Place inserts t into core's run queue, applying the CFS vruntime
// placement rules (sleeper credit against the queue's vruntime floor).
// Exported for allocator stages that do their own core selection but keep
// CFS placement (EAS).
func (a *AllocatorStage) Place(t *task.Thread, core int, wakeup bool) {
	q := a.pc.Queues()
	floor := q.MinVR(core)
	if wakeup {
		floor -= a.opts.SleeperCredit
	}
	if t.VRuntime < floor {
		t.VRuntime = floor
	}
	q.Push(core, t)
}

// LeastLoadedAllowed exposes the CFS fallback placement for embedding
// stages.
func (a *AllocatorStage) LeastLoadedAllowed(t *task.Thread) int { return a.leastLoadedAllowed(t) }

// SelectorStage is the CFS thread-selection stage: leftmost of the local
// timeline, else idle-balance steal of the least-entitled allowed thread
// from the busiest queue, plus the CFS slice/preemption rules. Registered
// as "linux.selector"; WASH and GTS alias it.
type SelectorStage struct {
	opts    Options
	pc      *kernel.PipelineContext
	allIDs  []int
	scratch []int // reused steal-order buffer (hot path: no per-call alloc)
}

// NewSelector returns the CFS selector stage.
func NewSelector(opts Options) *SelectorStage {
	return &SelectorStage{opts: opts.withDefaults()}
}

// Name implements kernel.Stage.
func (s *SelectorStage) Name() string { return "linux.selector" }

// Start implements kernel.Stage.
func (s *SelectorStage) Start(pc *kernel.PipelineContext) {
	s.pc = pc
	s.allIDs = s.allIDs[:0]
	for i := 0; i < pc.Queues().NumQueues(); i++ {
		s.allIDs = append(s.allIDs, i)
	}
}

// PickNext implements kernel.Selector: the local timeline first, else the
// idle-balance steal over every other queue.
func (s *SelectorStage) PickNext(c *kernel.Core) *task.Thread {
	if t := s.PopLocal(c.ID); t != nil {
		return t
	}
	return s.StealInto(c.ID, s.allIDs)
}

// PopLocal removes and returns the leftmost thread of core's own queue
// that may run there, nil otherwise. The affinity filter never engages in
// the canonical compositions (their allocators only queue allowed threads,
// and labeler affinity changes requeue through PipelineContext.Requeue);
// it protects hybrids whose allocator queues affinity-blind, COLAB-style.
// Exported for selector stages with custom stealing rules.
func (s *SelectorStage) PopLocal(core int) *task.Thread {
	return s.pc.Queues().PopMinAllowed(core, core)
}

// StealInto steals the least-entitled thread runnable on core from the
// busiest of the given source queues, nil when nothing is stealable. On an
// active topology the idle balance is LLC-aware: nearer domains are
// searched first (cheapest migration), busiest-first within one distance
// band. Exported for selector stages with custom stealing rules (EAS).
func (s *SelectorStage) StealInto(core int, from []int) *task.Thread {
	q := s.pc.Queues()
	m := s.pc.Machine()
	topoActive := m.TopoActive()
	order := s.scratch[:0]
	for _, i := range from {
		if i != core && q.Len(i) > 0 {
			order = append(order, i)
		}
	}
	// Stable insertion sort so queues of equal rank keep their from-order
	// (identical to sort.Slice on the small slices it small-sorts) without
	// allocating a comparator per call. Flat machines rank busiest-first;
	// an active topology ranks nearest-domain-first, then busiest.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && s.stealBefore(q, m, core, order[j], order[j-1], topoActive); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	s.scratch = order
	for _, i := range order {
		if t := q.StealMaxAllowed(i, core); t != nil {
			return t
		}
	}
	return nil
}

// stealBefore ranks steal source a strictly ahead of b for the idle core.
func (s *SelectorStage) stealBefore(q *kernel.RunQueues, m *kernel.Machine, core, a, b int, topoActive bool) bool {
	if topoActive {
		da := m.DomainDistance(m.DomainOf(core), m.DomainOf(a))
		db := m.DomainDistance(m.DomainOf(core), m.DomainOf(b))
		if da != db {
			return da < db
		}
	}
	return q.Len(a) > q.Len(b)
}

// nrRunning is the number of runnable threads associated with core (queued
// plus running), minimum 1, for slice computation.
func (s *SelectorStage) nrRunning(c *kernel.Core) int {
	n := s.pc.Queues().Len(c.ID)
	if c.Current != nil {
		n++
	}
	if n < 1 {
		n = 1
	}
	return n
}

// TimeSlice implements kernel.Selector: target latency divided by the
// number of runnable threads, floored at the minimum granularity.
func (s *SelectorStage) TimeSlice(c *kernel.Core, t *task.Thread) sim.Time {
	slice := s.opts.TargetLatency / sim.Time(s.nrRunning(c))
	if slice < s.opts.MinGranularity {
		slice = s.opts.MinGranularity
	}
	return slice
}

// VRuntimeScale implements kernel.Selector: CFS charges wall-clock time.
func (s *SelectorStage) VRuntimeScale(c *kernel.Core, t *task.Thread) float64 { return 1 }

// WakeupPreempt implements kernel.Selector: preempt when the woken thread
// is behind the running one by more than the wake-up granularity.
func (s *SelectorStage) WakeupPreempt(c *kernel.Core, t *task.Thread) bool {
	cur := c.Current
	if cur == nil {
		return false
	}
	return cur.VRuntime-t.VRuntime > s.opts.WakeupGranularity
}

var (
	_ kernel.Allocator = (*AllocatorStage)(nil)
	_ kernel.Selector  = (*SelectorStage)(nil)
)
