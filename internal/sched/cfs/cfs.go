// Package cfs re-implements the Linux Completely Fair Scheduler on the
// simulated kernel: per-core run queues ordered by virtual runtime in a
// red-black tree, least-loaded wake-up placement, sleeper credit, idle-time
// stealing and wake-up preemption with a granularity guard.
//
// CFS is both the paper's Linux baseline and the mechanical base layer the
// affinity-only policies (WASH, GTS) drive: they adjust thread affinity
// masks every labeling interval and leave allocation/selection to CFS.
package cfs

import (
	"fmt"
	"sort"

	"colab/internal/kernel"
	"colab/internal/rbtree"
	"colab/internal/sim"
	"colab/internal/task"
)

// Options tune the CFS latency targets (Linux defaults scaled to the
// simulated machine).
type Options struct {
	// TargetLatency is the scheduling period every runnable thread should
	// run once within (Linux sched_latency_ns, default 6 ms).
	TargetLatency sim.Time
	// MinGranularity floors the per-thread slice (default 750 us).
	MinGranularity sim.Time
	// WakeupGranularity guards wake-up preemption (default 1 ms).
	WakeupGranularity sim.Time
	// SleeperCredit caps how much vruntime credit a waking sleeper gets
	// (default TargetLatency/2, as in place_entity).
	SleeperCredit sim.Time
}

func (o Options) withDefaults() Options {
	if o.TargetLatency == 0 {
		o.TargetLatency = 6 * sim.Millisecond
	}
	if o.MinGranularity == 0 {
		o.MinGranularity = 750 * sim.Microsecond
	}
	if o.WakeupGranularity == 0 {
		o.WakeupGranularity = sim.Millisecond
	}
	if o.SleeperCredit == 0 {
		o.SleeperCredit = o.TargetLatency / 2
	}
	return o
}

type entry struct {
	t   *task.Thread
	vr  sim.Time
	seq uint64
}

func entryLess(a, b entry) bool {
	if a.vr != b.vr {
		return a.vr < b.vr
	}
	return a.seq < b.seq
}

// runqueue is one core's CFS timeline.
type runqueue struct {
	coreID int
	tree   *rbtree.Tree[entry]
	nodes  map[*task.Thread]*rbtree.Node[entry]
	minVR  sim.Time
	seq    uint64
}

func newRunqueue(core int) *runqueue {
	return &runqueue{coreID: core, tree: rbtree.New(entryLess), nodes: make(map[*task.Thread]*rbtree.Node[entry])}
}

func (rq *runqueue) len() int { return rq.tree.Len() }

func (rq *runqueue) push(t *task.Thread) {
	if _, dup := rq.nodes[t]; dup {
		panic(fmt.Sprintf("cfs: thread %v enqueued twice on cpu%d", t, rq.coreID))
	}
	rq.seq++
	rq.nodes[t] = rq.tree.Insert(entry{t: t, vr: t.VRuntime, seq: rq.seq})
}

func (rq *runqueue) remove(t *task.Thread) bool {
	n, ok := rq.nodes[t]
	if !ok {
		return false
	}
	rq.tree.Delete(n)
	delete(rq.nodes, t)
	return true
}

func (rq *runqueue) popLeftmost() *task.Thread {
	n := rq.tree.Min()
	if n == nil {
		return nil
	}
	t := n.Value.t
	if n.Value.vr > rq.minVR {
		rq.minVR = n.Value.vr
	}
	rq.tree.Delete(n)
	delete(rq.nodes, t)
	return t
}

// peekLeftmost returns the next thread without removing it.
func (rq *runqueue) peekLeftmost() *task.Thread {
	n := rq.tree.Min()
	if n == nil {
		return nil
	}
	return n.Value.t
}

// stealRightmost removes and returns the rightmost (least entitled) thread
// satisfying allow, or nil.
func (rq *runqueue) stealRightmost(allow func(*task.Thread) bool) *task.Thread {
	for n := rq.tree.Max(); n != nil; n = rq.tree.Prev(n) {
		if allow(n.Value.t) {
			t := n.Value.t
			rq.tree.Delete(n)
			delete(rq.nodes, t)
			return t
		}
	}
	return nil
}

// Policy is the CFS scheduling policy. It also serves as an embeddable base
// for affinity-driven policies (WASH, GTS).
type Policy struct {
	opts Options
	m    *kernel.Machine
	rqs  []*runqueue
}

// New returns a CFS policy.
func New(opts Options) *Policy {
	return &Policy{opts: opts.withDefaults()}
}

// Name implements kernel.Scheduler.
func (p *Policy) Name() string { return "linux" }

// Machine returns the machine the policy runs on (for embedders).
func (p *Policy) Machine() *kernel.Machine { return p.m }

// Options returns the effective options.
func (p *Policy) Options() Options { return p.opts }

// Start implements kernel.Scheduler.
func (p *Policy) Start(m *kernel.Machine) {
	p.m = m
	p.rqs = p.rqs[:0]
	for i := range m.Cores() {
		p.rqs = append(p.rqs, newRunqueue(i))
	}
}

// Admit implements kernel.Scheduler.
func (p *Policy) Admit(t *task.Thread) {}

// load is the CFS placement load of a core: queued plus running threads.
func (p *Policy) load(core int) int {
	n := p.rqs[core].len()
	if p.m.Cores()[core].Current != nil {
		n++
	}
	return n
}

// Enqueue implements kernel.Scheduler: least-loaded placement among allowed
// cores (asymmetry-blind), with sleeper vruntime credit on wake-up.
func (p *Policy) Enqueue(t *task.Thread, wakeup bool) int {
	core := p.leastLoadedAllowed(t)
	p.Place(t, core, wakeup)
	return core
}

// QueueLen returns the number of threads queued (not running) on core.
func (p *Policy) QueueLen(core int) int { return p.rqs[core].len() }

// PopLocal removes and returns the leftmost thread of core's own queue,
// nil when empty. Exported for embedders with custom stealing rules.
func (p *Policy) PopLocal(core int) *task.Thread { return p.rqs[core].popLeftmost() }

// StealInto steals the least-entitled thread runnable on core from the
// busiest of the given source queues, nil when nothing is stealable.
// Exported for embedders with custom stealing rules.
func (p *Policy) StealInto(core int, from []int) *task.Thread {
	order := make([]*runqueue, 0, len(from))
	for _, i := range from {
		if i != core && p.rqs[i].len() > 0 {
			order = append(order, p.rqs[i])
		}
	}
	sort.Slice(order, func(a, b int) bool { return order[a].len() > order[b].len() })
	for _, o := range order {
		if t := o.stealRightmost(func(t *task.Thread) bool { return t.AllowedOn(core) }); t != nil {
			return t
		}
	}
	return nil
}

// LeastLoadedAllowed picks the allowed core with the smallest load,
// breaking ties by core index. With an unsatisfiable mask it falls back to
// all cores rather than wedging the thread. Exported for embedders that
// need the CFS fallback placement.
func (p *Policy) LeastLoadedAllowed(t *task.Thread) int { return p.leastLoadedAllowed(t) }

// leastLoadedAllowed picks the allowed core with the smallest load,
// breaking ties by core index. With an unsatisfiable mask it falls back to
// all cores rather than wedging the thread.
func (p *Policy) leastLoadedAllowed(t *task.Thread) int {
	best, bestLoad := -1, int(^uint(0)>>1)
	for i := range p.rqs {
		if !t.AllowedOn(i) {
			continue
		}
		if l := p.load(i); l < bestLoad {
			best, bestLoad = i, l
		}
	}
	if best < 0 {
		t.Affinity = task.AffinityAll
		return p.leastLoadedAllowed(t)
	}
	return best
}

// Place inserts t into core's run queue, applying vruntime placement rules.
// Exported for embedders that do their own core allocation.
func (p *Policy) Place(t *task.Thread, core int, wakeup bool) {
	rq := p.rqs[core]
	floor := rq.minVR
	if wakeup {
		floor -= p.opts.SleeperCredit
	}
	if t.VRuntime < floor {
		t.VRuntime = floor
	}
	rq.push(t)
}

// Dequeue removes t from whichever run queue holds it (for re-labeling).
func (p *Policy) Dequeue(t *task.Thread) bool {
	for _, rq := range p.rqs {
		if rq.remove(t) {
			return true
		}
	}
	return false
}

// QueuedOn returns the core whose run queue currently holds t, or -1.
func (p *Policy) QueuedOn(t *task.Thread) int {
	for i, rq := range p.rqs {
		if _, ok := rq.nodes[t]; ok {
			return i
		}
	}
	return -1
}

// PickNext implements kernel.Scheduler: leftmost of the local queue, else
// idle-balance steal of the least-entitled allowed thread from the busiest
// queue.
func (p *Policy) PickNext(c *kernel.Core) *task.Thread {
	rq := p.rqs[c.ID]
	if t := rq.popLeftmost(); t != nil {
		return t
	}
	// Idle balance: steal from other queues, busiest first, skipping queues
	// whose threads this core may not run.
	order := make([]*runqueue, 0, len(p.rqs)-1)
	for i, o := range p.rqs {
		if i != c.ID && o.len() > 0 {
			order = append(order, o)
		}
	}
	sort.Slice(order, func(a, b int) bool { return order[a].len() > order[b].len() })
	for _, o := range order {
		if t := o.stealRightmost(func(t *task.Thread) bool { return t.AllowedOn(c.ID) }); t != nil {
			return t
		}
	}
	return nil
}

// NrRunning returns the number of runnable threads associated with core
// (queued plus running), minimum 1, for slice computation.
func (p *Policy) NrRunning(c *kernel.Core) int {
	n := p.rqs[c.ID].len()
	if c.Current != nil {
		n++
	}
	if n < 1 {
		n = 1
	}
	return n
}

// TimeSlice implements kernel.Scheduler: target latency divided by the
// number of runnable threads, floored at the minimum granularity.
func (p *Policy) TimeSlice(c *kernel.Core, t *task.Thread) sim.Time {
	slice := p.opts.TargetLatency / sim.Time(p.NrRunning(c))
	if slice < p.opts.MinGranularity {
		slice = p.opts.MinGranularity
	}
	return slice
}

// VRuntimeScale implements kernel.Scheduler: CFS charges wall-clock time.
func (p *Policy) VRuntimeScale(c *kernel.Core, t *task.Thread) float64 { return 1 }

// WakeupPreempt implements kernel.Scheduler: preempt when the woken thread
// is behind the running one by more than the wake-up granularity.
func (p *Policy) WakeupPreempt(c *kernel.Core, t *task.Thread) bool {
	cur := c.Current
	if cur == nil {
		return false
	}
	return cur.VRuntime-t.VRuntime > p.opts.WakeupGranularity
}

// ThreadDone implements kernel.Scheduler.
func (p *Policy) ThreadDone(t *task.Thread) {}

var _ kernel.Scheduler = (*Policy)(nil)
