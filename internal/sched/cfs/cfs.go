// Package cfs re-implements the Linux Completely Fair Scheduler on the
// simulated kernel: per-core run queues ordered by virtual runtime,
// least-loaded wake-up placement, sleeper credit, idle-time stealing and
// wake-up preemption with a granularity guard.
//
// CFS is both the paper's Linux baseline and the mechanical base layer the
// affinity-only policies (WASH, GTS) drive: they adjust thread affinity
// masks every labeling interval and leave allocation/selection to CFS.
//
// The policy is the composition of its two pipeline stages (AllocatorStage
// and SelectorStage in stages.go) over the pipeline's shared RunQueues.
// The original monolithic implementation kept each core's timeline in a
// red-black tree; the golden corpus proved the stage decomposition
// bit-identical, and BenchmarkSelectorLinearVsRbtree showed the linear
// shared queues faster (and allocation-free) at every realistic per-queue
// depth, so the monolith was collapsed onto the stages (docs/TUNING.md
// records the numbers). The rbtree timeline survives only as the benchmark
// baseline in selectorbench_test.go.
package cfs

import (
	"colab/internal/kernel"
	"colab/internal/sim"
)

// Options tune the CFS latency targets (Linux defaults scaled to the
// simulated machine).
type Options struct {
	// TargetLatency is the scheduling period every runnable thread should
	// run once within (Linux sched_latency_ns, default 6 ms).
	TargetLatency sim.Time
	// MinGranularity floors the per-thread slice (default 750 us).
	MinGranularity sim.Time
	// WakeupGranularity guards wake-up preemption (default 1 ms).
	WakeupGranularity sim.Time
	// SleeperCredit caps how much vruntime credit a waking sleeper gets
	// (default TargetLatency/2, as in place_entity).
	SleeperCredit sim.Time
}

func (o Options) withDefaults() Options {
	if o.TargetLatency == 0 {
		o.TargetLatency = 6 * sim.Millisecond
	}
	if o.MinGranularity == 0 {
		o.MinGranularity = 750 * sim.Microsecond
	}
	if o.WakeupGranularity == 0 {
		o.WakeupGranularity = sim.Millisecond
	}
	if o.SleeperCredit == 0 {
		o.SleeperCredit = o.TargetLatency / 2
	}
	return o
}

// Policy is the CFS scheduling policy: the allocator and selector stages
// composed into a pipeline named "linux".
type Policy struct {
	kernel.Scheduler
	opts Options
}

// New returns a CFS policy.
func New(opts Options) *Policy {
	opts = opts.withDefaults()
	s, err := kernel.NewPipeline("linux", nil, NewAllocator(opts), NewSelector(opts), nil)
	if err != nil {
		panic(err) // both mandatory stages are supplied above
	}
	return &Policy{Scheduler: s, opts: opts}
}

// Options returns the effective options.
func (p *Policy) Options() Options { return p.opts }

var _ kernel.Scheduler = (*Policy)(nil)
