package cfs

import (
	"testing"

	"colab/internal/sim"
	"colab/internal/task"
)

// White-box tests for the CFS run queue structure itself.

func th(vr sim.Time) *task.Thread {
	return &task.Thread{VRuntime: vr, Affinity: task.AffinityAll}
}

func TestRunqueuePopsLowestVruntime(t *testing.T) {
	rq := newRunqueue(0)
	a, b, c := th(30), th(10), th(20)
	rq.push(a)
	rq.push(b)
	rq.push(c)
	if rq.len() != 3 {
		t.Fatalf("len = %d", rq.len())
	}
	if got := rq.popLeftmost(); got != b {
		t.Fatalf("pop 1 wrong")
	}
	if got := rq.popLeftmost(); got != c {
		t.Fatalf("pop 2 wrong")
	}
	if got := rq.popLeftmost(); got != a {
		t.Fatalf("pop 3 wrong")
	}
	if rq.popLeftmost() != nil {
		t.Fatalf("empty pop must be nil")
	}
}

func TestRunqueueMinVRAdvancesMonotonically(t *testing.T) {
	rq := newRunqueue(0)
	rq.push(th(100))
	rq.push(th(50))
	rq.popLeftmost() // vr 50
	if rq.minVR != 50 {
		t.Fatalf("minVR = %v", rq.minVR)
	}
	// Popping an older (smaller) entry later must not move minVR backwards.
	rq.push(th(10))
	rq.popLeftmost()
	if rq.minVR != 50 {
		t.Fatalf("minVR went backwards: %v", rq.minVR)
	}
	rq.popLeftmost() // vr 100
	if rq.minVR != 100 {
		t.Fatalf("minVR = %v", rq.minVR)
	}
}

func TestRunqueueRemoveAndDoublePushPanics(t *testing.T) {
	rq := newRunqueue(0)
	a := th(1)
	rq.push(a)
	if !rq.remove(a) {
		t.Fatalf("remove failed")
	}
	if rq.remove(a) {
		t.Fatalf("double remove must report false")
	}
	rq.push(a)
	defer func() {
		if recover() == nil {
			t.Fatalf("double push must panic")
		}
	}()
	rq.push(a)
}

func TestStealRightmostRespectsFilter(t *testing.T) {
	rq := newRunqueue(0)
	pinned := th(100)
	pinned.Affinity = task.MaskOf([]int{0})
	free := th(50)
	rq.push(pinned)
	rq.push(free)
	// Steal for core 1: the rightmost (vr 100) is pinned to core 0, so the
	// vr-50 thread must be taken instead.
	got := rq.stealRightmost(func(t *task.Thread) bool { return t.AllowedOn(1) })
	if got != free {
		t.Fatalf("steal took the pinned thread")
	}
	if rq.stealRightmost(func(t *task.Thread) bool { return t.AllowedOn(1) }) != nil {
		t.Fatalf("nothing stealable left")
	}
	if rq.len() != 1 {
		t.Fatalf("pinned thread must remain")
	}
}

func TestPeekLeftmostDoesNotRemove(t *testing.T) {
	rq := newRunqueue(0)
	a := th(5)
	rq.push(a)
	if rq.peekLeftmost() != a || rq.len() != 1 {
		t.Fatalf("peek must not remove")
	}
}

func TestEqualVruntimeFIFO(t *testing.T) {
	rq := newRunqueue(0)
	a, b := th(7), th(7)
	rq.push(a)
	rq.push(b)
	if rq.popLeftmost() != a || rq.popLeftmost() != b {
		t.Fatalf("equal-vruntime threads must pop in arrival order")
	}
}

func TestExportedQueueHelpers(t *testing.T) {
	p := New(Options{})
	p.rqs = []*runqueue{newRunqueue(0), newRunqueue(1), newRunqueue(2)}
	a, b, c := th(10), th(20), th(30)
	p.rqs[1].push(a)
	p.rqs[1].push(b)
	p.rqs[2].push(c)

	if p.QueueLen(1) != 2 || p.QueueLen(0) != 0 {
		t.Fatalf("QueueLen wrong: %d %d", p.QueueLen(1), p.QueueLen(0))
	}
	if got := p.QueuedOn(a); got != 1 {
		t.Fatalf("QueuedOn = %d", got)
	}
	if got := p.QueuedOn(th(99)); got != -1 {
		t.Fatalf("unknown thread QueuedOn = %d", got)
	}
	if got := p.PopLocal(1); got != a {
		t.Fatalf("PopLocal took wrong thread")
	}
	// StealInto from queues 1 and 2 for core 0: queue lengths are now equal
	// (1 each), so the busiest-first order is stable and the least-entitled
	// (highest vruntime) allowed thread of the first source is taken.
	got := p.StealInto(0, []int{1, 2})
	if got == nil {
		t.Fatalf("StealInto found nothing")
	}
	if got != b && got != c {
		t.Fatalf("StealInto returned unexpected thread")
	}
	if !p.Dequeue(mustQueued(t, p)) {
		t.Fatalf("Dequeue failed")
	}
	if p.QueueLen(1)+p.QueueLen(2) != 0 {
		t.Fatalf("queues not drained")
	}
	if p.Dequeue(a) {
		t.Fatalf("Dequeue of unqueued thread must report false")
	}
}

// mustQueued returns whichever of the remaining threads is still queued.
func mustQueued(t *testing.T, p *Policy) *task.Thread {
	t.Helper()
	for _, rq := range p.rqs {
		if n := rq.tree.Min(); n != nil {
			return n.Value.t
		}
	}
	t.Fatalf("no thread queued")
	return nil
}
