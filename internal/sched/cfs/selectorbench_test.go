package cfs_test

import (
	"fmt"
	"testing"

	"colab/internal/kernel"
	"colab/internal/mathx"
	"colab/internal/rbtree"
	"colab/internal/sim"
	"colab/internal/task"
)

// The evidence behind the selector collapse (docs/TUNING.md): the original
// CFS monolith kept each core's timeline in a red-black tree, while the
// pipeline's shared RunQueues use an insertion-ordered slice scanned
// linearly. This file holds the rbtree timeline as a benchmark baseline —
// re-implemented here, since the monolith was collapsed onto the pipeline
// stages — and races the two on the dispatch cycle (pop the leftmost
// allowed thread, run, push it back) at per-queue depths bracketing what a
// saturated 128-core machine actually sees.

// rbEntry mirrors kernel.RunQueues' (vruntime, push order) timeline key.
type rbEntry struct {
	t   *task.Thread
	vr  sim.Time
	seq uint64
}

func rbLess(a, b rbEntry) bool {
	if a.vr != b.vr {
		return a.vr < b.vr
	}
	return a.seq < b.seq
}

// rbQueue is one core's timeline as the CFS monolith kept it: a red-black
// tree plus a node index for O(log n) removal.
type rbQueue struct {
	tree  *rbtree.Tree[rbEntry]
	nodes map[*task.Thread]*rbtree.Node[rbEntry]
	seq   uint64
	minVR sim.Time
}

func newRBQueue() *rbQueue {
	return &rbQueue{tree: rbtree.New(rbLess), nodes: make(map[*task.Thread]*rbtree.Node[rbEntry])}
}

func (rq *rbQueue) push(t *task.Thread) {
	rq.seq++
	rq.nodes[t] = rq.tree.Insert(rbEntry{t: t, vr: t.VRuntime, seq: rq.seq})
}

// popMinAllowed removes and returns the leftmost thread allowed on dest.
func (rq *rbQueue) popMinAllowed(dest int) *task.Thread {
	for n := rq.tree.Min(); n != nil; n = rq.tree.Next(n) {
		if !n.Value.t.AllowedOn(dest) {
			continue
		}
		t := n.Value.t
		if n.Value.vr > rq.minVR {
			rq.minVR = n.Value.vr
		}
		rq.tree.Delete(n)
		delete(rq.nodes, t)
		return t
	}
	return nil
}

// stealMaxAllowed removes and returns the rightmost thread allowed on dest.
func (rq *rbQueue) stealMaxAllowed(dest int) *task.Thread {
	for n := rq.tree.Max(); n != nil; n = rq.tree.Prev(n) {
		if !n.Value.t.AllowedOn(dest) {
			continue
		}
		t := n.Value.t
		rq.tree.Delete(n)
		delete(rq.nodes, t)
		return t
	}
	return nil
}

// The two timelines must agree on pop and steal order under random mixed
// traffic, or the benchmark would be racing different semantics.
func TestLinearAndRbtreeTimelinesAgree(t *testing.T) {
	rng := mathx.NewRNG(7)
	lin := kernel.NewRunQueues(1)
	rb := newRBQueue()
	var live []*task.Thread
	for id := 0; id < 2000; id++ {
		switch op := rng.IntN(4); {
		case op <= 1 || len(live) == 0: // push a fresh thread
			th := &task.Thread{ID: id, VRuntime: sim.Time(rng.IntN(50))}
			th.Affinity = task.MaskAll()
			if rng.IntN(8) == 0 {
				th.Affinity = task.MaskOf([]int{1}) // not allowed on core 0
			}
			lin.Push(0, th)
			rb.push(th)
			live = append(live, th)
		case op == 2:
			a, b := lin.PopMinAllowed(0, 0), rb.popMinAllowed(0)
			if a != b {
				t.Fatalf("PopMin diverged: linear %v, rbtree %v", a, b)
			}
			live = drop(live, a)
		default:
			a, b := lin.StealMaxAllowed(0, 0), rb.stealMaxAllowed(0)
			if a != b {
				t.Fatalf("StealMax diverged: linear %v, rbtree %v", a, b)
			}
			live = drop(live, a)
		}
	}
	if got := rb.tree.Validate(); got != "" {
		t.Fatalf("rbtree invariant broken: %s", got)
	}
}

func drop(live []*task.Thread, t *task.Thread) []*task.Thread {
	if t == nil {
		return live
	}
	// Also drain the counterpart structures' bookkeeping for pinned threads
	// left behind: nothing to do, both keep them queued identically.
	for i, x := range live {
		if x == t {
			return append(live[:i], live[i+1:]...)
		}
	}
	return live
}

// BenchmarkSelectorLinearVsRbtree races one dispatch cycle (pop leftmost
// allowed + push back with advanced vruntime) on both timeline
// representations across per-queue depths. A saturated 128-core machine
// with ~512 runnable threads holds ~4 threads per queue; depth 64+ only
// occurs when a single queue absorbs an entire machine's backlog.
func BenchmarkSelectorLinearVsRbtree(b *testing.B) {
	depths := []int{4, 16, 64, 256}
	mkThreads := func(n int) []*task.Thread {
		ths := make([]*task.Thread, n)
		for i := range ths {
			ths[i] = &task.Thread{ID: i, VRuntime: sim.Time(i * 1000), Affinity: task.MaskAll()}
		}
		return ths
	}
	for _, depth := range depths {
		b.Run(fmt.Sprintf("linear/depth=%d", depth), func(b *testing.B) {
			q := kernel.NewRunQueues(1)
			for _, th := range mkThreads(depth) {
				q.Push(0, th)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := q.PopMinAllowed(0, 0)
				t.VRuntime += sim.Time(1000 * depth)
				q.Push(0, t)
			}
		})
		b.Run(fmt.Sprintf("rbtree/depth=%d", depth), func(b *testing.B) {
			q := newRBQueue()
			for _, th := range mkThreads(depth) {
				q.push(th)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := q.popMinAllowed(0)
				t.VRuntime += sim.Time(1000 * depth)
				q.push(t)
			}
		})
	}
}
