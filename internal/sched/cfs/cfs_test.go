package cfs_test

import (
	"testing"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/sched/cfs"
	"colab/internal/sim"
	"colab/internal/task"
)

var plain = cpu.WorkProfile{ILP: 0.5, BranchRate: 0.1, MemIntensity: 0.3}

func app(id int, progs []task.Program, prof cpu.WorkProfile) *task.App {
	a := &task.App{ID: id, Name: "app"}
	for i, p := range progs {
		a.Threads = append(a.Threads, &task.Thread{
			App: a, Name: "t" + string(rune('0'+i)), Profile: prof, Program: p,
		})
	}
	return a
}

func cpuBound(work float64) task.Program { return task.Program{task.Compute{Work: work}} }

func run(t *testing.T, cfg cpu.Config, w *task.Workload, opts cfs.Options) *kernel.Result {
	t.Helper()
	m, err := kernel.NewMachine(cfg, cfs.New(opts), w, kernel.Params{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Two equal CPU-bound threads sharing one core must get nearly equal CPU
// time (the fairness invariant CFS exists for).
func TestFairnessOnSharedCore(t *testing.T) {
	a := app(0, []task.Program{cpuBound(50e6), cpuBound(50e6)}, plain)
	w := &task.Workload{Name: "fair", Apps: []*task.App{a}}
	res := run(t, cpu.NewSymmetric(cpu.Little, 1), w, cfs.Options{})
	e0, e1 := res.Threads[0].SumExec, res.Threads[1].SumExec
	// Both finish 50ms of work; completion order may skew the tail, but at
	// the first thread's completion both should be near 50% of the core.
	ratio := float64(e0) / float64(e1)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("unfair split: %v vs %v", e0, e1)
	}
}

// Threads are placed on the least-loaded cores: four independent threads on
// four cores must all run in parallel (makespan ~ single-thread runtime).
func TestLeastLoadedPlacementSpreads(t *testing.T) {
	a := app(0, []task.Program{cpuBound(30e6), cpuBound(30e6), cpuBound(30e6), cpuBound(30e6)}, plain)
	w := &task.Workload{Name: "spread", Apps: []*task.App{a}}
	res := run(t, cpu.NewSymmetric(cpu.Little, 4), w, cfs.Options{})
	if res.EndTime > 32*sim.Millisecond {
		t.Fatalf("threads did not spread: end %v", res.EndTime)
	}
	for _, c := range res.Cores {
		if c.Dispatches == 0 {
			t.Fatalf("core %d never dispatched", c.ID)
		}
	}
}

// Affinity masks restrict placement and stealing.
func TestAffinityRespected(t *testing.T) {
	a := app(0, []task.Program{cpuBound(20e6), cpuBound(20e6)}, plain)
	a.Threads[0].Affinity = task.MaskOf([]int{1})
	a.Threads[1].Affinity = task.MaskOf([]int{1})
	w := &task.Workload{Name: "aff", Apps: []*task.App{a}}
	res := run(t, cpu.NewSymmetric(cpu.Little, 2), w, cfs.Options{})
	if res.Cores[0].BusyTime > sim.Millisecond {
		t.Fatalf("core 0 ran pinned-away threads: busy %v", res.Cores[0].BusyTime)
	}
	if res.Cores[1].BusyTime < 40*sim.Millisecond {
		t.Fatalf("core 1 did not run both threads: busy %v", res.Cores[1].BusyTime)
	}
}

// The per-thread slice shrinks as the run queue grows (target latency is
// divided among runnable threads).
func TestSliceShrinksWithLoad(t *testing.T) {
	// 6 threads on one core: slice should be 1ms (6ms/6), so within any 6ms
	// window every thread runs. Rough proxy: switches must be plentiful.
	var progs []task.Program
	for i := 0; i < 6; i++ {
		progs = append(progs, cpuBound(12e6))
	}
	a := app(0, progs, plain)
	w := &task.Workload{Name: "slices", Apps: []*task.App{a}}
	res := run(t, cpu.NewSymmetric(cpu.Little, 1), w, cfs.Options{})
	if res.TotalSwitches < 30 {
		t.Fatalf("too few context switches for 6-way sharing: %d", res.TotalSwitches)
	}
}

// A long-sleeping thread woken up must preempt a long-running thread (its
// vruntime is far behind).
func TestWakeupPreemption(t *testing.T) {
	sleeper := task.Program{task.Sleep{Duration: 20 * sim.Millisecond}, task.Compute{Work: 5e6}}
	hog := cpuBound(100e6)
	a := app(0, []task.Program{sleeper, hog}, plain)
	w := &task.Workload{Name: "wake", Apps: []*task.App{a}}
	res := run(t, cpu.NewSymmetric(cpu.Little, 1), w, cfs.Options{})
	if res.TotalPreemptions == 0 {
		t.Fatalf("woken sleeper never preempted the hog")
	}
	// The sleeper must finish well before the hog.
	if res.Threads[0].SumExec+res.Threads[0].BlockedTime+res.Threads[0].ReadyTime >
		res.Threads[1].SumExec {
		t.Logf("sleeper total %v, hog exec %v (informational)",
			res.Threads[0].SumExec+res.Threads[0].BlockedTime, res.Threads[1].SumExec)
	}
}

// Idle cores steal work: one core overloaded, one empty.
func TestIdleSteal(t *testing.T) {
	a := app(0, []task.Program{cpuBound(40e6), cpuBound(40e6)}, plain)
	// Pin both to core 0 initially via affinity then widen? Instead: both
	// enqueue at t=0; least-loaded placement spreads them. To force a steal
	// we use three threads on two cores: the third must be stolen when a
	// core drains.
	b := app(0, []task.Program{cpuBound(40e6), cpuBound(40e6), cpuBound(40e6)}, plain)
	w := &task.Workload{Name: "steal", Apps: []*task.App{b}}
	_ = a
	res := run(t, cpu.NewSymmetric(cpu.Little, 2), w, cfs.Options{})
	// Perfect schedule: 60ms (120ms of work over 2 cores). Without stealing
	// one core would idle after 40ms and the other run 80ms.
	if res.EndTime > 70*sim.Millisecond {
		t.Fatalf("idle steal missing: end %v", res.EndTime)
	}
}

func TestNameAndDefaults(t *testing.T) {
	p := cfs.New(cfs.Options{})
	if p.Name() != "linux" {
		t.Fatalf("name = %q", p.Name())
	}
	o := p.Options()
	if o.TargetLatency != 6*sim.Millisecond || o.MinGranularity != 750*sim.Microsecond {
		t.Fatalf("defaults not applied: %+v", o)
	}
	if o.SleeperCredit != 3*sim.Millisecond {
		t.Fatalf("sleeper credit = %v", o.SleeperCredit)
	}
}
