// Package wash re-implements the WASH scheduler (Jibaja et al., CGO 2016)
// the way the paper does for its state-of-the-art comparison (§5.1): the
// same multi-factor heuristic — predicted speedup, lock-blocking
// criticality and big-core-share fairness — folded into one mixed score
// that only steers thread *affinity*. Allocation and selection below the
// affinity masks remain plain CFS, which is exactly the limitation COLAB's
// coordinated allocator/selector removes.
//
// In pipeline terms WASH is therefore a single stage: LabelerStage
// ("wash.labeler"). New composes it with the CFS allocator and selector
// stages; the registry additionally aliases "wash.allocator" and
// "wash.selector" to the CFS stages so the composition grammar reads
// naturally.
package wash

import (
	"sort"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/mathx"
	"colab/internal/sched/cfs"
	"colab/internal/sim"
	"colab/internal/task"
)

// Options configure the WASH policy.
type Options struct {
	CFS cfs.Options
	// Interval is the labeling period (paper: 10 ms).
	Interval sim.Time
	// Speedup predicts a thread's big-vs-little speedup (trained model).
	Speedup func(*task.Thread) float64
	// Score weights: z(speedup), z(blocking), big-share fairness penalty.
	SpeedupWeight float64
	BlockWeight   float64
	FairWeight    float64
	// BlameDecay is the EWMA retention of per-interval blocking blame.
	BlameDecay float64
	// Band is the score dead-zone inside which threads keep full affinity.
	Band float64
}

func (o Options) withDefaults() Options {
	if o.Interval == 0 {
		o.Interval = 10 * sim.Millisecond
	}
	if o.Speedup == nil {
		o.Speedup = func(*task.Thread) float64 { return 1.5 }
	}
	if o.SpeedupWeight == 0 {
		o.SpeedupWeight = 1.0
	}
	if o.BlockWeight == 0 {
		o.BlockWeight = 1.0
	}
	if o.FairWeight == 0 {
		o.FairWeight = 0.5
	}
	if o.BlameDecay == 0 {
		o.BlameDecay = 0.5
	}
	if o.Band == 0 {
		o.Band = 0.4
	}
	return o
}

// New returns the WASH policy: the WASH labeler stage over CFS allocation
// and selection.
func New(opts Options) kernel.Scheduler {
	opts = opts.withDefaults()
	s, err := kernel.NewPipeline("wash", NewLabeler(opts), cfs.NewAllocator(opts.CFS), cfs.NewSelector(opts.CFS), nil)
	if err != nil {
		panic(err) // both mandatory stages are supplied above
	}
	return s
}

type info struct {
	pred      float64
	blameEWMA float64
	lastBlame sim.Time
}

// LabelerStage is the periodic WASH heuristic as a pipeline stage: one
// mixed multi-factor score per thread, top scorers pinned to big cores, the
// rest to little cores, undifferentiated threads left to the underlying
// scheduler. It publishes each thread's predicted speedup and blame EWMA as
// hints for downstream stages in hybrid pipelines.
type LabelerStage struct {
	opts    Options
	pc      *kernel.PipelineContext
	threads map[*task.Thread]*info

	bigMask    task.Mask
	littleMask task.Mask
}

// NewLabeler returns the WASH labeler stage.
func NewLabeler(opts Options) *LabelerStage {
	return &LabelerStage{opts: opts.withDefaults()}
}

// Name implements kernel.Stage.
func (l *LabelerStage) Name() string { return "wash.labeler" }

// Start implements kernel.Stage.
func (l *LabelerStage) Start(pc *kernel.PipelineContext) {
	l.pc = pc
	m := pc.Machine()
	l.threads = make(map[*task.Thread]*info)
	l.bigMask = task.MaskOf(m.BigCoreIDs())
	l.littleMask = task.MaskOf(m.LittleCoreIDs())
	if l.littleMask.IsEmpty() { // symmetric all-big machine: nothing to steer
		l.littleMask = l.bigMask
	}
	m.Engine().After(l.opts.Interval, l.label)
}

// Admit implements kernel.Labeler.
func (l *LabelerStage) Admit(t *task.Thread) {
	l.threads[t] = &info{pred: 1.5}
}

// ThreadDone implements kernel.Labeler.
func (l *LabelerStage) ThreadDone(t *task.Thread) {
	delete(l.threads, t)
}

// label is the periodic scoring pass.
func (l *LabelerStage) label() {
	m := l.pc.Machine()
	if m.Done() {
		return
	}
	defer m.Engine().After(l.opts.Interval, l.label)
	if len(l.threads) == 0 {
		return
	}
	// Iterate in thread-ID order: map order would randomise both the
	// score-normalisation sums and the affinity re-queue sequence.
	threads := make([]*task.Thread, 0, len(l.threads))
	for t := range l.threads {
		threads = append(threads, t)
	}
	sort.Slice(threads, func(i, j int) bool { return threads[i].ID < threads[j].ID })
	preds := make([]float64, 0, len(threads))
	blames := make([]float64, 0, len(threads))
	for _, t := range threads {
		in := l.threads[t]
		in.pred = l.opts.Speedup(t)
		intervalBlame := float64(t.BlockBlame - in.lastBlame)
		in.lastBlame = t.BlockBlame
		in.blameEWMA = l.opts.BlameDecay*in.blameEWMA + (1-l.opts.BlameDecay)*intervalBlame
		t.IntervalCounters = cpu.Vec{}
		h := l.pc.Hints().Get(t)
		h.Pred, h.Crit, h.LastBlame = in.pred, in.blameEWMA, in.lastBlame
		preds = append(preds, in.pred)
		blames = append(blames, in.blameEWMA)
	}
	pMean, pStd := mathx.Mean(preds), mathx.Std(preds)
	bMean, bStd := mathx.Mean(blames), mathx.Std(blames)
	for _, t := range threads {
		in := l.threads[t]
		score := l.opts.SpeedupWeight*zscore(in.pred, pMean, pStd) +
			l.opts.BlockWeight*zscore(in.blameEWMA, bMean, bStd)
		if t.SumExec > 0 {
			bigShare := float64(t.SumExecBig) / float64(t.SumExec)
			score -= l.opts.FairWeight * (2*bigShare - 1)
		}
		// WASH's characteristic behaviour: every thread that looks like a
		// bottleneck is pushed to the big cores in addition to the high
		// scorers — the over-crowding COLAB's motivating example targets.
		// Threads with no clear signal keep full affinity (the heuristic
		// only *biases* placement; undifferentiated threads are left to the
		// underlying Linux scheduler).
		bottleneck := in.blameEWMA > bMean && in.blameEWMA > 0
		var mask task.Mask
		switch {
		case score > l.opts.Band || bottleneck:
			mask = l.bigMask
		case score < -l.opts.Band:
			mask = l.littleMask
		default:
			mask = task.MaskAll()
		}
		if !t.Affinity.Equal(mask) {
			t.Affinity = mask
			// Re-place queued threads whose queue no longer matches the
			// mask, the effect sched_setaffinity has on a waiting task.
			l.pc.Requeue(t)
		}
	}
}

func zscore(v, mean, std float64) float64 {
	if std < 1e-12 {
		return 0
	}
	return (v - mean) / std
}

var _ kernel.Labeler = (*LabelerStage)(nil)
