// Package wash re-implements the WASH scheduler (Jibaja et al., CGO 2016)
// the way the paper does for its state-of-the-art comparison (§5.1): the
// same multi-factor heuristic — predicted speedup, lock-blocking
// criticality and big-core-share fairness — folded into one mixed score
// that only steers thread *affinity*. Allocation and selection below the
// affinity masks remain plain CFS, which is exactly the limitation COLAB's
// coordinated allocator/selector removes.
package wash

import (
	"sort"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/mathx"
	"colab/internal/sched/cfs"
	"colab/internal/sim"
	"colab/internal/task"
)

// Options configure the WASH policy.
type Options struct {
	CFS cfs.Options
	// Interval is the labeling period (paper: 10 ms).
	Interval sim.Time
	// Speedup predicts a thread's big-vs-little speedup (trained model).
	Speedup func(*task.Thread) float64
	// Score weights: z(speedup), z(blocking), big-share fairness penalty.
	SpeedupWeight float64
	BlockWeight   float64
	FairWeight    float64
	// BlameDecay is the EWMA retention of per-interval blocking blame.
	BlameDecay float64
	// Band is the score dead-zone inside which threads keep full affinity.
	Band float64
}

func (o Options) withDefaults() Options {
	if o.Interval == 0 {
		o.Interval = 10 * sim.Millisecond
	}
	if o.Speedup == nil {
		o.Speedup = func(*task.Thread) float64 { return 1.5 }
	}
	if o.SpeedupWeight == 0 {
		o.SpeedupWeight = 1.0
	}
	if o.BlockWeight == 0 {
		o.BlockWeight = 1.0
	}
	if o.FairWeight == 0 {
		o.FairWeight = 0.5
	}
	if o.BlameDecay == 0 {
		o.BlameDecay = 0.5
	}
	if o.Band == 0 {
		o.Band = 0.4
	}
	return o
}

type info struct {
	pred      float64
	blameEWMA float64
	lastBlame sim.Time
	onBig     bool
}

// Policy is the WASH scheduler: CFS mechanics plus an affinity labeler.
type Policy struct {
	*cfs.Policy
	opts    Options
	m       *kernel.Machine
	threads map[*task.Thread]*info

	bigMask    uint64
	littleMask uint64
}

// New returns a WASH policy.
func New(opts Options) *Policy {
	return &Policy{Policy: cfs.New(opts.CFS), opts: opts.withDefaults(), threads: make(map[*task.Thread]*info)}
}

// Name implements kernel.Scheduler.
func (p *Policy) Name() string { return "wash" }

// Start implements kernel.Scheduler.
func (p *Policy) Start(m *kernel.Machine) {
	p.Policy.Start(m)
	p.m = m
	p.threads = make(map[*task.Thread]*info)
	p.bigMask = task.MaskOf(m.BigCoreIDs())
	p.littleMask = task.MaskOf(m.LittleCoreIDs())
	if p.littleMask == 0 { // symmetric all-big machine: nothing to steer
		p.littleMask = p.bigMask
	}
	m.Engine().After(p.opts.Interval, p.label)
}

// Admit implements kernel.Scheduler.
func (p *Policy) Admit(t *task.Thread) {
	p.Policy.Admit(t)
	p.threads[t] = &info{pred: 1.5}
}

// ThreadDone implements kernel.Scheduler.
func (p *Policy) ThreadDone(t *task.Thread) {
	p.Policy.ThreadDone(t)
	delete(p.threads, t)
}

// label is the periodic WASH heuristic: one mixed multi-factor score per
// thread, top scorers pinned to big cores, the rest to little cores.
func (p *Policy) label() {
	if p.m.Done() {
		return
	}
	defer p.m.Engine().After(p.opts.Interval, p.label)
	if len(p.threads) == 0 {
		return
	}
	// Iterate in thread-ID order: map order would randomise both the
	// score-normalisation sums and the affinity re-queue sequence.
	threads := make([]*task.Thread, 0, len(p.threads))
	for t := range p.threads {
		threads = append(threads, t)
	}
	sort.Slice(threads, func(i, j int) bool { return threads[i].ID < threads[j].ID })
	preds := make([]float64, 0, len(threads))
	blames := make([]float64, 0, len(threads))
	for _, t := range threads {
		in := p.threads[t]
		in.pred = p.opts.Speedup(t)
		intervalBlame := float64(t.BlockBlame - in.lastBlame)
		in.lastBlame = t.BlockBlame
		in.blameEWMA = p.opts.BlameDecay*in.blameEWMA + (1-p.opts.BlameDecay)*intervalBlame
		t.IntervalCounters = cpu.Vec{}
		preds = append(preds, in.pred)
		blames = append(blames, in.blameEWMA)
	}
	pMean, pStd := mathx.Mean(preds), mathx.Std(preds)
	bMean, bStd := mathx.Mean(blames), mathx.Std(blames)
	for _, t := range threads {
		in := p.threads[t]
		score := p.opts.SpeedupWeight*zscore(in.pred, pMean, pStd) +
			p.opts.BlockWeight*zscore(in.blameEWMA, bMean, bStd)
		if t.SumExec > 0 {
			bigShare := float64(t.SumExecBig) / float64(t.SumExec)
			score -= p.opts.FairWeight * (2*bigShare - 1)
		}
		// WASH's characteristic behaviour: every thread that looks like a
		// bottleneck is pushed to the big cores in addition to the high
		// scorers — the over-crowding COLAB's motivating example targets.
		// Threads with no clear signal keep full affinity (the heuristic
		// only *biases* placement; undifferentiated threads are left to the
		// underlying Linux scheduler).
		bottleneck := in.blameEWMA > bMean && in.blameEWMA > 0
		switch {
		case score > p.opts.Band || bottleneck:
			p.setAffinity(t, affBig)
		case score < -p.opts.Band:
			p.setAffinity(t, affLittle)
		default:
			p.setAffinity(t, affAll)
		}
	}
}

func zscore(v, mean, std float64) float64 {
	if std < 1e-12 {
		return 0
	}
	return (v - mean) / std
}

type affinity int

const (
	affAll affinity = iota
	affBig
	affLittle
)

func (p *Policy) setAffinity(t *task.Thread, a affinity) {
	in := p.threads[t]
	var mask uint64
	switch a {
	case affBig:
		mask = p.bigMask
	case affLittle:
		mask = p.littleMask
	default:
		mask = task.AffinityAll
	}
	if t.Affinity == mask {
		return
	}
	in.onBig = a == affBig
	t.Affinity = mask
	// Re-place queued threads whose queue no longer matches the mask, the
	// effect sched_setaffinity has on a waiting task.
	if core := p.QueuedOn(t); core >= 0 && !t.AllowedOn(core) {
		p.Dequeue(t)
		p.m.Kick(p.Policy.Enqueue(t, false))
	}
}

var _ kernel.Scheduler = (*Policy)(nil)
