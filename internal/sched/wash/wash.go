// Package wash re-implements the WASH scheduler (Jibaja et al., CGO 2016)
// the way the paper does for its state-of-the-art comparison (§5.1): the
// same multi-factor heuristic — predicted speedup, lock-blocking
// criticality and big-core-share fairness — folded into one mixed score
// that only steers thread *affinity*. Allocation and selection below the
// affinity masks remain plain CFS, which is exactly the limitation COLAB's
// coordinated allocator/selector removes.
//
// In pipeline terms WASH is therefore a single stage: LabelerStage
// ("wash.labeler"). New composes it with the CFS allocator and selector
// stages; the registry additionally aliases "wash.allocator" and
// "wash.selector" to the CFS stages so the composition grammar reads
// naturally.
package wash

import (
	"sort"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/mathx"
	"colab/internal/sched/cfs"
	"colab/internal/sim"
	"colab/internal/task"
)

// Options configure the WASH policy.
type Options struct {
	CFS cfs.Options
	// Interval is the labeling period (paper: 10 ms).
	Interval sim.Time
	// Speedup predicts a thread's big-vs-little speedup (trained model).
	Speedup func(*task.Thread) float64
	// Score weights: z(speedup), z(blocking), big-share fairness penalty.
	SpeedupWeight float64
	BlockWeight   float64
	FairWeight    float64
	// BlameDecay is the EWMA retention of per-interval blocking blame.
	BlameDecay float64
	// Band is the score dead-zone inside which threads keep full affinity.
	Band float64
}

func (o Options) withDefaults() Options {
	if o.Interval == 0 {
		o.Interval = 10 * sim.Millisecond
	}
	if o.Speedup == nil {
		o.Speedup = func(*task.Thread) float64 { return 1.5 }
	}
	if o.SpeedupWeight == 0 {
		o.SpeedupWeight = 1.0
	}
	if o.BlockWeight == 0 {
		o.BlockWeight = 1.0
	}
	if o.FairWeight == 0 {
		o.FairWeight = 0.5
	}
	if o.BlameDecay == 0 {
		o.BlameDecay = 0.5
	}
	if o.Band == 0 {
		o.Band = 0.4
	}
	return o
}

// New returns the WASH policy: the WASH labeler stage over CFS allocation
// and selection.
func New(opts Options) kernel.Scheduler {
	opts = opts.withDefaults()
	s, err := kernel.NewPipeline("wash", NewLabeler(opts), cfs.NewAllocator(opts.CFS), cfs.NewSelector(opts.CFS), nil)
	if err != nil {
		panic(err) // both mandatory stages are supplied above
	}
	return s
}

type info struct {
	pred      float64
	blameEWMA float64
	lastBlame sim.Time
}

// LabelerStage is the periodic WASH heuristic as a pipeline stage: one
// mixed multi-factor score per thread, top scorers pinned to big cores, the
// rest to little cores, undifferentiated threads left to the underlying
// scheduler. It publishes each thread's predicted speedup and blame EWMA as
// hints for downstream stages in hybrid pipelines.
type LabelerStage struct {
	opts    Options
	pc      *kernel.PipelineContext
	threads map[*task.Thread]*info

	bigMask    task.Mask
	littleMask task.Mask

	// Tier-ranked topology mode (DESIGN.md §3), engaged only on machines
	// with an active topology; flat machines run the legacy two-armed
	// heuristic byte-identically. Threads are ranked by the same mixed
	// score and spread over the full tier ladder proportionally to tier
	// width, each pinned to its home LLC domain's slice of the tier.
	ranked       bool
	tierMasks    []task.Mask
	tierCount    []int
	totalCores   int
	domTierMasks [][]task.Mask // [domain][tier] = tier ∩ domain cores
}

// NewLabeler returns the WASH labeler stage.
func NewLabeler(opts Options) *LabelerStage {
	return &LabelerStage{opts: opts.withDefaults()}
}

// Name implements kernel.Stage.
func (l *LabelerStage) Name() string { return "wash.labeler" }

// Start implements kernel.Stage.
func (l *LabelerStage) Start(pc *kernel.PipelineContext) {
	l.pc = pc
	m := pc.Machine()
	l.threads = make(map[*task.Thread]*info)
	l.bigMask = task.MaskOf(m.BigCoreIDs())
	l.littleMask = task.MaskOf(m.LittleCoreIDs())
	if l.littleMask.IsEmpty() { // symmetric all-big machine: nothing to steer
		l.littleMask = l.bigMask
	}
	l.ranked = m.TopoActive()
	l.tierMasks, l.tierCount, l.domTierMasks, l.totalCores = nil, nil, nil, 0
	if l.ranked {
		nt := m.NumTiers()
		l.tierMasks = make([]task.Mask, nt)
		l.tierCount = make([]int, nt)
		for k := 0; k < nt; k++ {
			ids := m.TierCoreIDs(k)
			l.tierMasks[k] = task.MaskOf(ids)
			l.tierCount[k] = len(ids)
			l.totalCores += len(ids)
		}
		nd := m.NumDomains()
		l.domTierMasks = make([][]task.Mask, nd)
		for d := 0; d < nd; d++ {
			domMask := task.MaskOf(m.DomainCoreIDs(d))
			l.domTierMasks[d] = make([]task.Mask, nt)
			for k := 0; k < nt; k++ {
				l.domTierMasks[d][k] = l.tierMasks[k].And(domMask)
			}
		}
	}
	m.Engine().After(l.opts.Interval, l.label)
}

// Admit implements kernel.Labeler.
func (l *LabelerStage) Admit(t *task.Thread) {
	l.threads[t] = &info{pred: 1.5}
}

// ThreadDone implements kernel.Labeler.
func (l *LabelerStage) ThreadDone(t *task.Thread) {
	delete(l.threads, t)
}

// label is the periodic scoring pass.
func (l *LabelerStage) label() {
	m := l.pc.Machine()
	if m.Done() {
		return
	}
	defer m.Engine().After(l.opts.Interval, l.label)
	if len(l.threads) == 0 {
		return
	}
	// Iterate in thread-ID order: map order would randomise both the
	// score-normalisation sums and the affinity re-queue sequence.
	threads := make([]*task.Thread, 0, len(l.threads))
	for t := range l.threads {
		threads = append(threads, t)
	}
	sort.Slice(threads, func(i, j int) bool { return threads[i].ID < threads[j].ID })
	preds := make([]float64, 0, len(threads))
	blames := make([]float64, 0, len(threads))
	for _, t := range threads {
		in := l.threads[t]
		in.pred = l.opts.Speedup(t)
		intervalBlame := float64(t.BlockBlame - in.lastBlame)
		in.lastBlame = t.BlockBlame
		in.blameEWMA = l.opts.BlameDecay*in.blameEWMA + (1-l.opts.BlameDecay)*intervalBlame
		t.IntervalCounters = cpu.Vec{}
		h := l.pc.Hints().Get(t)
		h.Pred, h.Crit, h.LastBlame = in.pred, in.blameEWMA, in.lastBlame
		preds = append(preds, in.pred)
		blames = append(blames, in.blameEWMA)
	}
	pMean, pStd := mathx.Mean(preds), mathx.Std(preds)
	bMean, bStd := mathx.Mean(blames), mathx.Std(blames)
	scores := make([]float64, len(threads))
	bottleneck := make([]bool, len(threads))
	for i, t := range threads {
		in := l.threads[t]
		score := l.opts.SpeedupWeight*zscore(in.pred, pMean, pStd) +
			l.opts.BlockWeight*zscore(in.blameEWMA, bMean, bStd)
		if t.SumExec > 0 {
			bigShare := float64(t.SumExecBig) / float64(t.SumExec)
			score -= l.opts.FairWeight * (2*bigShare - 1)
		}
		scores[i] = score
		// WASH's characteristic behaviour: every thread that looks like a
		// bottleneck is pushed to the big cores in addition to the high
		// scorers — the over-crowding COLAB's motivating example targets.
		bottleneck[i] = in.blameEWMA > bMean && in.blameEWMA > 0
	}
	if l.ranked {
		l.applyRanked(threads, scores, bottleneck)
		return
	}
	for i, t := range threads {
		// Threads with no clear signal keep full affinity (the heuristic
		// only *biases* placement; undifferentiated threads are left to the
		// underlying Linux scheduler).
		var mask task.Mask
		switch {
		case scores[i] > l.opts.Band || bottleneck[i]:
			mask = l.bigMask
		case scores[i] < -l.opts.Band:
			mask = l.littleMask
		default:
			mask = task.MaskAll()
		}
		l.setMask(t, mask)
	}
}

// setMask updates a thread's affinity, re-placing it when queued — the
// effect sched_setaffinity has on a waiting task.
func (l *LabelerStage) setMask(t *task.Thread, mask task.Mask) {
	if !t.Affinity.Equal(mask) {
		t.Affinity = mask
		l.pc.Requeue(t)
	}
}

// applyRanked is the topology-aware tier-ranked arm: differentiated
// threads (bottlenecks and out-of-band scorers) are ordered by (bottleneck,
// score, ID) and spread over the tier ladder from the top down, each tier
// receiving a share proportional to its core count; a ranked thread is
// pinned to its home LLC domain's slice of the assigned tier (the whole
// tier when the domain has no such cores). Undifferentiated threads keep
// full affinity, exactly like the flat dead-zone.
func (l *LabelerStage) applyRanked(threads []*task.Thread, scores []float64, bottleneck []bool) {
	ranked := make([]int, 0, len(threads))
	for i := range threads {
		if bottleneck[i] || scores[i] > l.opts.Band || scores[i] < -l.opts.Band {
			ranked = append(ranked, i)
		} else {
			l.setMask(threads[i], task.MaskAll())
		}
	}
	if len(ranked) == 0 {
		return
	}
	sort.Slice(ranked, func(a, b int) bool {
		ia, ib := ranked[a], ranked[b]
		if bottleneck[ia] != bottleneck[ib] {
			return bottleneck[ia]
		}
		if scores[ia] != scores[ib] {
			return scores[ia] > scores[ib]
		}
		return threads[ia].ID < threads[ib].ID
	})
	// Integer tier quotas proportional to tier width, remainders handed to
	// the widest-possible upper tiers first: deterministic, sums to n.
	n := len(ranked)
	quota := make([]int, len(l.tierCount))
	assigned := 0
	for k := range quota {
		quota[k] = n * l.tierCount[k] / l.totalCores
		assigned += quota[k]
	}
	for assigned < n {
		for k := len(quota) - 1; k >= 0 && assigned < n; k-- {
			if l.tierCount[k] > 0 {
				quota[k]++
				assigned++
			}
		}
	}
	pos := 0
	for k := len(quota) - 1; k >= 0; k-- {
		for q := 0; q < quota[k]; q++ {
			t := threads[ranked[pos]]
			pos++
			mask := l.domTierMasks[t.HomeDomain][k]
			if mask.IsEmpty() {
				mask = l.tierMasks[k]
			}
			l.setMask(t, mask)
		}
	}
}

func zscore(v, mean, std float64) float64 {
	if std < 1e-12 {
		return 0
	}
	return (v - mean) / std
}

var _ kernel.Labeler = (*LabelerStage)(nil)
