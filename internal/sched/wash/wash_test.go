package wash_test

import (
	"testing"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/perfmodel"
	"colab/internal/sched/wash"
	"colab/internal/sim"
	"colab/internal/task"
)

var (
	sensitive   = cpu.WorkProfile{ILP: 0.9, BranchRate: 0.12, MemIntensity: 0.05, FPRate: 0.6}
	insensitive = cpu.WorkProfile{ILP: 0.1, BranchRate: 0.05, MemIntensity: 0.95}
)

func runWASH(t *testing.T, cfg cpu.Config, w *task.Workload, o wash.Options) *kernel.Result {
	t.Helper()
	m, err := kernel.NewMachine(cfg, wash.New(o), w, kernel.Params{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func mkThread(a *task.App, name string, prof cpu.WorkProfile, prog task.Program) {
	a.Threads = append(a.Threads, &task.Thread{App: a, Name: name, Profile: prof, Program: prog})
}

// WASH's affinity heuristic must steer core-sensitive threads to big cores
// and insensitive ones away from them.
func TestAffinitySteersBySpeedup(t *testing.T) {
	a := &task.App{ID: 0, Name: "m"}
	mkThread(a, "hot1", sensitive, task.Program{task.Compute{Work: 150e6}})
	mkThread(a, "hot2", sensitive, task.Program{task.Compute{Work: 150e6}})
	mkThread(a, "cold1", insensitive, task.Program{task.Compute{Work: 150e6}})
	mkThread(a, "cold2", insensitive, task.Program{task.Compute{Work: 150e6}})
	w := &task.Workload{Name: "m", Apps: []*task.App{a}}
	res := runWASH(t, cpu.Config2B2S, w, wash.Options{Speedup: perfmodel.Oracle()})
	share := func(i int) float64 {
		return float64(res.Threads[i].SumExecBig) / float64(res.Threads[i].SumExec)
	}
	if (share(0)+share(1))/2 <= (share(2)+share(3))/2 {
		t.Fatalf("WASH did not favour sensitive threads on big cores: hot %.2f/%.2f cold %.2f/%.2f",
			share(0), share(1), share(2), share(3))
	}
}

// Bottleneck threads (high blocking blame) must be pushed to big cores even
// when their own speedup is low — WASH's characteristic over-crowding.
func TestBottleneckPushedToBig(t *testing.T) {
	a := &task.App{ID: 0, Name: "locky"}
	var holder task.Program
	for i := 0; i < 60; i++ {
		holder = append(holder, task.Lock{ID: 9}, task.Compute{Work: 1.5e6}, task.Unlock{ID: 9}, task.Compute{Work: 0.1e6})
	}
	var waiter task.Program
	for i := 0; i < 60; i++ {
		waiter = append(waiter, task.Compute{Work: 0.1e6}, task.Lock{ID: 9}, task.Compute{Work: 0.05e6}, task.Unlock{ID: 9}, task.Compute{Work: 0.3e6})
	}
	mkThread(a, "holder", insensitive, holder)
	mkThread(a, "w1", insensitive, waiter)
	mkThread(a, "w2", insensitive, waiter)
	mkThread(a, "w3", sensitive, task.Program{task.Compute{Work: 100e6}})
	w := &task.Workload{Name: "locky", Apps: []*task.App{a}}
	res := runWASH(t, cpu.Config2B2S, w, wash.Options{Speedup: perfmodel.Oracle()})
	holderRes := res.Threads[0]
	if holderRes.BlockBlame == 0 {
		t.Fatalf("holder accrued no blame")
	}
	if holderRes.SumExecBig == 0 {
		t.Fatalf("bottleneck thread never ran on a big core under WASH")
	}
}

// Undifferentiated (homogeneous) thread populations must keep full affinity
// — WASH should not pin them and behave like Linux.
func TestHomogeneousThreadsStayUnpinned(t *testing.T) {
	a := &task.App{ID: 0, Name: "flat"}
	for i := 0; i < 4; i++ {
		mkThread(a, "t", sensitive, task.Program{task.Compute{Work: 60e6}})
	}
	w := &task.Workload{Name: "flat", Apps: []*task.App{a}}
	res := runWASH(t, cpu.Config2B2S, w, wash.Options{Speedup: perfmodel.Oracle()})
	// All four equal threads on 4 cores: every core should be busy most of
	// the makespan (no artificial little-pinning stalls).
	for _, c := range res.Cores {
		if c.BusyTime < res.EndTime/2 {
			t.Fatalf("core %d mostly idle (%v of %v): affinity over-pinning",
				c.ID, c.BusyTime, res.EndTime)
		}
	}
}

func TestNameAndDefaults(t *testing.T) {
	p := wash.New(wash.Options{})
	if p.Name() != "wash" {
		t.Fatalf("name = %q", p.Name())
	}
}

// Symmetric machines must not wedge WASH (little mask falls back to big).
func TestSymmetricMachine(t *testing.T) {
	a := &task.App{ID: 0, Name: "sym"}
	mkThread(a, "t0", sensitive, task.Program{task.Compute{Work: 20e6}})
	mkThread(a, "t1", insensitive, task.Program{task.Compute{Work: 20e6}})
	w := &task.Workload{Name: "sym", Apps: []*task.App{a}}
	res := runWASH(t, cpu.NewSymmetric(cpu.Big, 2), w, wash.Options{Speedup: perfmodel.Oracle()})
	if res.EndTime <= 0 || res.EndTime > 40*sim.Millisecond {
		t.Fatalf("symmetric run misbehaved: %v", res.EndTime)
	}
}
