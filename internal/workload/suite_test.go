package workload

import (
	"bytes"
	"fmt"
	"testing"

	"colab/internal/cpu"
)

// TestStandardSuiteRegistered pins the suite's registration surface: every
// member resolves by name, keeps its registered name, and renders the
// documented canonical grammar string.
func TestStandardSuiteRegistered(t *testing.T) {
	golden := map[string]string{
		"datacenter-day":    "water_nsquared:2*2@seed=101@arrive=poisson(4ms)+fft:2*2@seed=102@arrive=poisson(6ms)@load=diurnal(25ms,3)@class=mixed",
		"interactive-burst": "dedup:2*4@seed=202@arrive=poisson(3ms)@load=burst(16ms,0.25,4)@class=interactive",
		"batch-backfill":    "lu_cb:2*2@seed=301+radix:2*2@seed=302@load=util(0.6)@class=batch",
		"memory-churn":      "ocean_cp:2*2@seed=401+radix:2*2@seed=402+fft:2*2@seed=403@load=util(0.55)@class=memory",
	}
	classes := map[string]Class{
		"datacenter-day":    ClassMixed,
		"interactive-burst": ClassInteractive,
		"batch-backfill":    ClassBatch,
		"memory-churn":      ClassMemory,
	}
	suite := StandardSuite()
	if len(suite) != 4 {
		t.Fatalf("StandardSuite has %d members, want 4", len(suite))
	}
	for _, s := range suite {
		spec, ok := ScenarioByName(s.Name)
		if !ok {
			t.Errorf("%s not registered", s.Name)
			continue
		}
		if spec.Name != s.Name {
			t.Errorf("%s: registered Name = %q", s.Name, spec.Name)
		}
		if got := spec.Canonical(); got != golden[s.Name] {
			t.Errorf("%s canonical:\n got %q\nwant %q", s.Name, got, golden[s.Name])
		}
		if spec.Class != classes[s.Name] || s.Class != classes[s.Name] {
			t.Errorf("%s class = %q/%q, want %q", s.Name, spec.Class, s.Class, classes[s.Name])
		}
		if s.Description == "" {
			t.Errorf("%s has no description", s.Name)
		}
		found := false
		for _, cfg := range cpu.NamedConfigs() {
			if cfg.Name == s.Machine {
				found = true
			}
		}
		if !found {
			t.Errorf("%s machine hint %q is not a registered config", s.Name, s.Machine)
		}
		// The canonical form is grammar-valid and a fixed point.
		again, err := ParseSpec(spec.Canonical())
		if err != nil {
			t.Errorf("%s canonical does not parse: %v", s.Name, err)
			continue
		}
		if again.Canonical() != spec.Canonical() {
			t.Errorf("%s canonical not a fixed point: %q", s.Name, again.Canonical())
		}
		// Every term pins its seed (the suite's reproducibility contract).
		for ti, term := range spec.Terms {
			if !term.HasSeed {
				t.Errorf("%s term %d does not pin @seed=", s.Name, ti+1)
			}
		}
	}
	for _, name := range SuiteNames() {
		if _, ok := golden[name]; !ok {
			t.Errorf("unexpected suite member %q", name)
		}
	}
}

// TestStandardSuiteSeedInvariance verifies the pinned-seed contract: with
// every term seed pinned, programs and per-term arrivals are identical
// whatever build seed a sweep supplies. Only the util admission stream
// (batch-backfill) follows the build seed.
func TestStandardSuiteSeedInvariance(t *testing.T) {
	fingerprint := func(name string, seed uint64) []byte {
		spec, _ := ScenarioByName(name)
		w, err := spec.BuildFor(seed, 6) // 2B2S aggregate capacity
		if err != nil {
			t.Fatalf("%s at seed %d: %v", name, seed, err)
		}
		var buf bytes.Buffer
		for _, app := range w.Apps {
			fmt.Fprintf(&buf, "%s\n", app.Name)
			for _, th := range app.Threads {
				fmt.Fprintf(&buf, "%s %#v\n", th.Name, th.Program)
			}
		}
		return buf.Bytes()
	}
	arrivals := func(name string, seed uint64) []int64 {
		spec, _ := ScenarioByName(name)
		w, err := spec.BuildFor(seed, 6)
		if err != nil {
			t.Fatal(err)
		}
		var out []int64
		for _, app := range w.Apps {
			out = append(out, int64(app.Arrival))
		}
		return out
	}
	for _, name := range SuiteNames() {
		if !bytes.Equal(fingerprint(name, 1), fingerprint(name, 99)) {
			t.Errorf("%s: programs differ across build seeds despite pinned term seeds", name)
		}
	}
	for _, name := range []string{"datacenter-day", "interactive-burst"} {
		a, b := arrivals(name, 1), arrivals(name, 99)
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: arrival %d differs across build seeds (%d vs %d)", name, i, a[i], b[i])
			}
		}
	}
	// batch-backfill's util stream follows the build seed by design.
	a, b := arrivals("batch-backfill", 1), arrivals("batch-backfill", 99)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Error("batch-backfill: util admissions identical across build seeds, want seed-driven")
	}
	// And repeated builds at one seed are bit-identical.
	for _, name := range SuiteNames() {
		x, y := arrivals(name, 7), arrivals(name, 7)
		for i := range x {
			if x[i] != y[i] {
				t.Errorf("%s: arrivals not deterministic at fixed seed", name)
			}
		}
	}
}

// TestStandardSuiteLoadSemantics pins the build-time load transforms:
// diurnal/burst warp arrivals, util opens closed terms, and Closed()
// strips all three back to a closed system.
func TestStandardSuiteLoadSemantics(t *testing.T) {
	for _, name := range SuiteNames() {
		spec, _ := ScenarioByName(name)
		if !spec.Open() {
			t.Errorf("%s must be an open system", name)
		}
		closed := spec.Closed()
		if closed.Open() {
			t.Errorf("%s.Closed() still open", name)
		}
		w, err := closed.Build(5)
		if err != nil {
			t.Fatalf("%s closed build: %v", name, err)
		}
		for i, app := range w.Apps {
			if app.Arrival != 0 {
				t.Errorf("%s closed app %d arrives at %d", name, i, app.Arrival)
			}
		}
	}
	// util without a machine capacity is a clear error, not a silent zero.
	spec, _ := ScenarioByName("batch-backfill")
	if _, err := spec.Build(1); err == nil {
		t.Error("batch-backfill.Build without capacity must error (want BuildFor)")
	}
}
