// Package workload provides synthetic stand-ins for the paper's PARSEC 3.0
// and SPLASH-2 benchmarks (Table 3) and the 26 multi-programmed workload
// compositions built from them (Table 4), plus the open scenario layer that
// generalises both: a process-wide registry of benchmark generators and
// named scenarios, a composition grammar ("ferret:4+bodytrack:8",
// "Sync-2@seed=7", "ferret:4@arrive=poisson(5ms)") and arrival processes
// for open-system workloads.
//
// Each benchmark is a parametric generator: given a thread count and a
// seed, it emits a task.App whose threads reproduce the benchmark's
// published parallel structure (data-parallel barrier phases, pipelines
// over bounded queues, lock-heavy particle updates), its synchronisation
// rate and communication/computation ratio, and a plausible spread of
// per-thread core sensitivity. Schedulers only ever observe the emergent
// blocking patterns and performance counters, so matching this structure is
// what exercises the paper's policy code paths.
package workload

import (
	"fmt"
	"sort"

	"colab/internal/cpu"
	"colab/internal/mathx"
	"colab/internal/task"
)

// Rate classifies synchronisation intensity (Table 3 vocabulary).
type Rate string

// Table 3 rate values.
const (
	RateLow      Rate = "low"
	RateMedium   Rate = "medium"
	RateHigh     Rate = "high"
	RateVeryHigh Rate = "very high"
)

// Benchmark is one synthetic benchmark generator plus its Table 3
// categorisation. User benchmarks built over the same Gen surface register
// through Register and then resolve everywhere a benchmark name is
// accepted (the scenario grammar, SingleProgram, the cmd tools).
type Benchmark struct {
	Name string
	// Suite is "parsec" or "splash2" for the built-ins; user benchmarks
	// pick any label.
	Suite string
	// SyncRate is the synchronisation intensity (Table 3).
	SyncRate Rate
	// CommComp is the communication-to-computation ratio (Table 3).
	CommComp Rate
	// MaxThreads caps the thread count (the three SPLASH-2 kernels that do
	// not scale past 2 threads with simsmall inputs, §5.2). 0 = unlimited.
	MaxThreads int
	// DefaultThreads is the single-program thread count (Figure 4 uses the
	// simsmall inputs on a 4-core machine). It also fills thread counts the
	// scenario grammar omits ("ferret" alone means "ferret:DefaultThreads").
	DefaultThreads int

	// Gen emits exactly n threads into the builder. It must be a pure
	// function of the builder's RNG stream so a (benchmark, threads, seed)
	// triple is fully reproducible.
	Gen func(b *Builder, n int)
}

// Instantiate builds a fresh App with n threads (clamped to the
// benchmark's supported range) using a deterministic seed. appID must be
// unique within one workload: the kernel scopes futexes by it. A generator
// that emits a different thread count than asked is reported as an error
// (generator authorship is a public registry surface).
func (b Benchmark) Instantiate(appID, n int, rng *mathx.RNG) (*task.App, error) {
	if n < 1 {
		n = 1
	}
	if b.MaxThreads > 0 && n > b.MaxThreads {
		n = b.MaxThreads
	}
	app := &task.App{ID: appID, Name: b.Name}
	ab := &Builder{app: app, rng: rng.Fork(uint64(appID)*7919 + 13)}
	b.Gen(ab, n)
	if len(app.Threads) != n {
		return nil, fmt.Errorf("workload: %s generator emitted %d threads, want %d", b.Name, len(app.Threads), n)
	}
	return app, nil
}

// SingleProgram builds a workload holding one benchmark instance, the
// configuration Figure 4 evaluates. Unknown names error with the full
// registered-benchmark list.
func SingleProgram(bench string, threads int, seed uint64) (*task.Workload, error) {
	b, ok := ByName(bench)
	if !ok {
		return nil, unknownBenchmarkError(bench)
	}
	rng := mathx.NewRNG(seed)
	app, err := b.Instantiate(0, threads, rng)
	if err != nil {
		return nil, err
	}
	return &task.Workload{Name: bench, Apps: []*task.App{app}}, nil
}

// ---------------------------------------------------------------------------
// The app builder: the public authoring surface benchmark generators write
// against. The built-in Table 3 generators use exactly this API.

// ms is one millisecond of little-core work in work units (work units are
// little-core nanoseconds).
const ms = 1e6

// Builder authors one application: it allocates synchronisation-object IDs,
// declares bounded queues and emits threads. A Builder is handed to
// Benchmark.Gen with a deterministic per-app RNG stream; NewAppBuilder
// creates one for standalone app authoring outside the registry.
type Builder struct {
	app    *task.App
	rng    *mathx.RNG
	nextID int
}

// NewAppBuilder starts a standalone app (outside Benchmark.Instantiate).
// appID must be unique within the workload the app will join; the RNG
// stream is forked per-app exactly like registry instantiation, so the same
// (appID, seed) pair reproduces the same app.
func NewAppBuilder(appID int, name string, rng *mathx.RNG) *Builder {
	app := &task.App{ID: appID, Name: name}
	return &Builder{app: app, rng: rng.Fork(uint64(appID)*7919 + 13)}
}

// App returns the application under construction.
func (b *Builder) App() *task.App { return b.app }

// RNG returns the builder's deterministic random stream; generators draw
// all jitter from it.
func (b *Builder) RNG() *mathx.RNG { return b.rng }

// NewID allocates a fresh app-scoped synchronisation-object ID (for locks
// and barriers).
func (b *Builder) NewID() int {
	b.nextID++
	return b.nextID
}

// Queue declares a bounded queue with the given capacity and returns its
// ID for Put/Get ops.
func (b *Builder) Queue(capacity int) int {
	id := b.NewID()
	b.app.Queues = append(b.app.Queues, task.QueueSpec{ID: id, Capacity: capacity})
	return id
}

// Thread emits one thread running prog with the given work profile.
func (b *Builder) Thread(name string, prof cpu.WorkProfile, prog task.Program) *task.Thread {
	t := &task.Thread{
		App:     b.app,
		Name:    name,
		Profile: prof.Clamp(),
		Program: prog,
	}
	b.app.Threads = append(b.app.Threads, t)
	return t
}

// ---------------------------------------------------------------------------
// Work profiles: the four microarchitectural archetype families. Each
// returns a jittered instance. The noted speedup ranges are big-anchor
// values; on machines with middle tiers each profile's per-tier speedup
// follows cpu.WorkProfile.SpeedupOn (e.g. a ~2.5x-on-big kernel lands near
// ~1.7x on a DynamIQ-style medium core), so the same generators exercise
// any tier palette.

// ComputeProfile: high-ILP floating-point kernels (~2.3-2.8x on big).
func ComputeProfile(rng *mathx.RNG) cpu.WorkProfile {
	return cpu.WorkProfile{
		ILP:           rng.Range(0.70, 0.95),
		BranchRate:    rng.Range(0.05, 0.12),
		MemIntensity:  rng.Range(0.05, 0.20),
		StoreRate:     rng.Range(0.10, 0.30),
		FPRate:        rng.Range(0.45, 0.80),
		CodeFootprint: rng.Range(0.10, 0.30),
	}
}

// MemoryProfile: bandwidth/latency-bound streaming (~1.1-1.5x on big).
func MemoryProfile(rng *mathx.RNG) cpu.WorkProfile {
	return cpu.WorkProfile{
		ILP:           rng.Range(0.10, 0.35),
		BranchRate:    rng.Range(0.04, 0.10),
		MemIntensity:  rng.Range(0.65, 0.95),
		StoreRate:     rng.Range(0.30, 0.60),
		FPRate:        rng.Range(0.10, 0.35),
		CodeFootprint: rng.Range(0.10, 0.40),
	}
}

// BalancedProfile: mixed integer workloads (~1.7-2.2x on big).
func BalancedProfile(rng *mathx.RNG) cpu.WorkProfile {
	return cpu.WorkProfile{
		ILP:           rng.Range(0.40, 0.70),
		BranchRate:    rng.Range(0.08, 0.16),
		MemIntensity:  rng.Range(0.25, 0.50),
		StoreRate:     rng.Range(0.15, 0.40),
		FPRate:        rng.Range(0.20, 0.50),
		CodeFootprint: rng.Range(0.20, 0.50),
	}
}

// BranchyProfile: control-heavy code, e.g. tree mining (~2.0-2.5x on big).
func BranchyProfile(rng *mathx.RNG) cpu.WorkProfile {
	return cpu.WorkProfile{
		ILP:           rng.Range(0.50, 0.80),
		BranchRate:    rng.Range(0.16, 0.28),
		MemIntensity:  rng.Range(0.20, 0.40),
		StoreRate:     rng.Range(0.10, 0.30),
		FPRate:        rng.Range(0.05, 0.25),
		CodeFootprint: rng.Range(0.40, 0.80),
	}
}

// ---------------------------------------------------------------------------
// Structural program builders.

// DataParallelOptions parameterises a barrier-phased data-parallel program.
type DataParallelOptions struct {
	Phases    int
	PhaseWork float64 // mean work units per thread per phase
	Imbalance float64 // per-thread-phase work jitter amplitude
	Decay     bool    // SPLASH-2 LU-style shrinking parallel sections
	LocksPer  int     // critical sections per phase
	CSWork    float64 // work inside each critical section
	// LockSpread is the number of distinct locks (contention knob).
	LockSpread int
	Profile    func(*mathx.RNG) cpu.WorkProfile
	// SkewFirst multiplies thread 0's work (serial-ish leader), 0 = off.
	SkewFirst float64
}

// DataParallel emits n threads running o.Phases barrier-separated phases.
// Critical sections inside a phase hit a random lock from the spread,
// producing futex blocking blame proportional to the sync rate.
func (b *Builder) DataParallel(n int, o DataParallelOptions) {
	if o.LockSpread < 1 {
		o.LockSpread = 1
	}
	bar := b.NewID()
	locks := make([]int, o.LockSpread)
	for i := range locks {
		locks[i] = b.NewID()
	}
	for i := 0; i < n; i++ {
		prof := o.Profile(b.rng)
		var ops task.Program
		for ph := 0; ph < o.Phases; ph++ {
			w := b.rng.Jitter(o.PhaseWork, o.Imbalance)
			if o.Decay {
				w *= float64(o.Phases-ph) / float64(o.Phases)
			}
			if i == 0 && o.SkewFirst > 0 {
				w *= o.SkewFirst
			}
			if o.LocksPer > 0 && n > 1 {
				per := w / float64(o.LocksPer+1)
				for l := 0; l < o.LocksPer; l++ {
					lk := locks[b.rng.IntN(len(locks))]
					ops = append(ops,
						task.Compute{Work: per},
						task.Lock{ID: lk},
						task.Compute{Work: b.rng.Jitter(o.CSWork, 0.3)},
						task.Unlock{ID: lk},
					)
				}
				ops = append(ops, task.Compute{Work: per})
			} else {
				ops = append(ops, task.Compute{Work: w})
			}
			if n > 1 {
				ops = append(ops, task.Barrier{ID: bar, Parties: n})
			}
		}
		b.Thread(fmt.Sprintf("w%d", i), prof, ops)
	}
}

// PipeStage describes one pipeline stage.
type PipeStage struct {
	Name     string
	WorkItem float64 // work units per item
	Profile  func(*mathx.RNG) cpu.WorkProfile
}

// Pipeline emits an items-through-stages pipeline over bounded queues (the
// dedup/ferret structure). Threads are spread one per stage first, then
// round-robin; with fewer threads than stages, adjacent stages merge (as
// the real benchmarks do at low thread counts).
func (b *Builder) Pipeline(n int, stages []PipeStage, items, qcap int) {
	if n == 1 {
		// Sequential fallback: all stages fused into one thread.
		total := 0.0
		for _, s := range stages {
			total += s.WorkItem
		}
		var ops task.Program
		for it := 0; it < items; it++ {
			ops = append(ops, task.Compute{Work: b.rng.Jitter(total, 0.2)})
		}
		b.Thread("s0", stages[0].Profile(b.rng), ops)
		return
	}
	// Merge adjacent stages down to at most n effective stages.
	eff := mergeStages(stages, min(len(stages), n))
	// Thread counts per effective stage: one each, extras round-robin over
	// the interior (parallelisable) stages, matching PARSEC pipelines.
	counts := make([]int, len(eff))
	for i := range counts {
		counts[i] = 1
	}
	extra := n - len(eff)
	for i := 0; extra > 0; i++ {
		idx := 0
		if len(eff) > 2 {
			idx = 1 + i%(len(eff)-2) // interior stages only
		} else {
			idx = i % len(eff)
		}
		counts[idx]++
		extra--
	}
	queues := make([]int, len(eff)-1)
	for i := range queues {
		queues[i] = b.Queue(qcap)
	}
	for s, spec := range eff {
		shares := splitShares(items, counts[s])
		for k := 0; k < counts[s]; k++ {
			prof := spec.Profile(b.rng)
			var ops task.Program
			for it := 0; it < shares[k]; it++ {
				if s > 0 {
					ops = append(ops, task.Get{ID: queues[s-1]})
				}
				ops = append(ops, task.Compute{Work: b.rng.Jitter(spec.WorkItem, 0.35)})
				if s < len(eff)-1 {
					ops = append(ops, task.Put{ID: queues[s]})
				}
			}
			b.Thread(fmt.Sprintf("%s%d", spec.Name, k), prof, ops)
		}
	}
}

// mergeStages combines adjacent stages into k groups, summing per-item work
// and keeping the heaviest member's profile and name.
func mergeStages(stages []PipeStage, k int) []PipeStage {
	if k >= len(stages) {
		return stages
	}
	out := make([]PipeStage, 0, k)
	base := len(stages) / k
	rem := len(stages) % k
	idx := 0
	for g := 0; g < k; g++ {
		size := base
		if g < rem {
			size++
		}
		merged := stages[idx]
		heaviest := stages[idx].WorkItem
		for j := idx + 1; j < idx+size; j++ {
			merged.WorkItem += stages[j].WorkItem
			if stages[j].WorkItem > heaviest {
				heaviest = stages[j].WorkItem
				merged.Name = stages[j].Name
				merged.Profile = stages[j].Profile
			}
		}
		out = append(out, merged)
		idx += size
	}
	return out
}

// splitShares divides items across k threads as evenly as possible.
func splitShares(items, k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = items / k
	}
	for i := 0; i < items%k; i++ {
		out[i]++
	}
	return out
}

// SortedThreadWork is a debugging helper: total per-thread work in the app,
// descending. Used by characterisation tooling and tests.
func SortedThreadWork(a *task.App) []float64 {
	var out []float64
	for _, t := range a.Threads {
		out = append(out, t.Program.TotalWork())
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// TierSpeedups returns each thread's true speedup on every tier of the
// palette (rows follow a.Threads, columns the tiers). Characterisation
// tooling uses it to show how a benchmark's core sensitivity spreads over a
// multi-tier machine.
func TierSpeedups(a *task.App, tiers []cpu.Tier) [][]float64 {
	out := make([][]float64, len(a.Threads))
	for i, t := range a.Threads {
		row := make([]float64, len(tiers))
		for j, tier := range tiers {
			row[j] = t.Profile.SpeedupOn(tier)
		}
		out[i] = row
	}
	return out
}
