// Package workload provides synthetic stand-ins for the paper's PARSEC 3.0
// and SPLASH-2 benchmarks (Table 3) and the 26 multi-programmed workload
// compositions built from them (Table 4).
//
// Each benchmark is a parametric generator: given a thread count and a
// seed, it emits a task.App whose threads reproduce the benchmark's
// published parallel structure (data-parallel barrier phases, pipelines
// over bounded queues, lock-heavy particle updates), its synchronisation
// rate and communication/computation ratio, and a plausible spread of
// per-thread core sensitivity. Schedulers only ever observe the emergent
// blocking patterns and performance counters, so matching this structure is
// what exercises the paper's policy code paths.
package workload

import (
	"fmt"
	"sort"

	"colab/internal/cpu"
	"colab/internal/mathx"
	"colab/internal/task"
)

// Rate classifies synchronisation intensity (Table 3 vocabulary).
type Rate string

// Table 3 rate values.
const (
	RateLow      Rate = "low"
	RateMedium   Rate = "medium"
	RateHigh     Rate = "high"
	RateVeryHigh Rate = "very high"
)

// Benchmark is one synthetic benchmark generator plus its Table 3
// categorisation.
type Benchmark struct {
	Name string
	// Suite is "parsec" or "splash2".
	Suite string
	// SyncRate is the synchronisation intensity (Table 3).
	SyncRate Rate
	// CommComp is the communication-to-computation ratio (Table 3).
	CommComp Rate
	// MaxThreads caps the thread count (the three SPLASH-2 kernels that do
	// not scale past 2 threads with simsmall inputs, §5.2). 0 = unlimited.
	MaxThreads int
	// DefaultThreads is the single-program thread count (Figure 4 uses the
	// simsmall defaults on a 4-core machine).
	DefaultThreads int

	gen func(ab *appBuilder, n int)
}

// Instantiate builds a fresh App with n threads (clamped to the
// benchmark's supported range) using a deterministic seed. appID must be
// unique within one workload: the kernel scopes futexes by it.
func (b Benchmark) Instantiate(appID, n int, rng *mathx.RNG) *task.App {
	if n < 1 {
		n = 1
	}
	if b.MaxThreads > 0 && n > b.MaxThreads {
		n = b.MaxThreads
	}
	app := &task.App{ID: appID, Name: b.Name}
	ab := &appBuilder{app: app, rng: rng.Fork(uint64(appID)*7919 + 13)}
	b.gen(ab, n)
	if len(app.Threads) != n {
		panic(fmt.Sprintf("workload: %s generator emitted %d threads, want %d", b.Name, len(app.Threads), n))
	}
	return app
}

// ByName looks a benchmark up by name.
func ByName(name string) (Benchmark, bool) {
	for _, b := range All() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Names returns all benchmark names in Table 3 order.
func Names() []string {
	var out []string
	for _, b := range All() {
		out = append(out, b.Name)
	}
	return out
}

// SingleProgram builds a workload holding one benchmark instance, the
// configuration Figure 4 evaluates.
func SingleProgram(bench string, threads int, seed uint64) (*task.Workload, error) {
	b, ok := ByName(bench)
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q", bench)
	}
	rng := mathx.NewRNG(seed)
	app := b.Instantiate(0, threads, rng)
	return &task.Workload{Name: bench, Apps: []*task.App{app}}, nil
}

// ---------------------------------------------------------------------------
// Builder plumbing shared by the generators.

// ms is one millisecond of little-core work in work units (work units are
// little-core nanoseconds).
const ms = 1e6

type appBuilder struct {
	app    *task.App
	rng    *mathx.RNG
	nextID int
}

func (ab *appBuilder) id() int {
	ab.nextID++
	return ab.nextID
}

func (ab *appBuilder) queue(capacity int) int {
	id := ab.id()
	ab.app.Queues = append(ab.app.Queues, task.QueueSpec{ID: id, Capacity: capacity})
	return id
}

func (ab *appBuilder) thread(name string, prof cpu.WorkProfile, prog task.Program) *task.Thread {
	t := &task.Thread{
		App:     ab.app,
		Name:    name,
		Profile: prof.Clamp(),
		Program: prog,
	}
	ab.app.Threads = append(ab.app.Threads, t)
	return t
}

// ---------------------------------------------------------------------------
// Work profiles. Each returns a jittered instance of a microarchitectural
// archetype. The noted speedup ranges are big-anchor values; on machines
// with middle tiers each profile's per-tier speedup follows
// cpu.WorkProfile.SpeedupOn (e.g. a ~2.5x-on-big kernel lands near ~1.7x
// on a DynamIQ-style medium core), so the same generators exercise any
// tier palette.

// computeProfile: high-ILP floating-point kernels (~2.3-2.8x on big).
func computeProfile(rng *mathx.RNG) cpu.WorkProfile {
	return cpu.WorkProfile{
		ILP:           rng.Range(0.70, 0.95),
		BranchRate:    rng.Range(0.05, 0.12),
		MemIntensity:  rng.Range(0.05, 0.20),
		StoreRate:     rng.Range(0.10, 0.30),
		FPRate:        rng.Range(0.45, 0.80),
		CodeFootprint: rng.Range(0.10, 0.30),
	}
}

// memoryProfile: bandwidth/latency-bound streaming (~1.1-1.5x on big).
func memoryProfile(rng *mathx.RNG) cpu.WorkProfile {
	return cpu.WorkProfile{
		ILP:           rng.Range(0.10, 0.35),
		BranchRate:    rng.Range(0.04, 0.10),
		MemIntensity:  rng.Range(0.65, 0.95),
		StoreRate:     rng.Range(0.30, 0.60),
		FPRate:        rng.Range(0.10, 0.35),
		CodeFootprint: rng.Range(0.10, 0.40),
	}
}

// balancedProfile: mixed integer workloads (~1.7-2.2x on big).
func balancedProfile(rng *mathx.RNG) cpu.WorkProfile {
	return cpu.WorkProfile{
		ILP:           rng.Range(0.40, 0.70),
		BranchRate:    rng.Range(0.08, 0.16),
		MemIntensity:  rng.Range(0.25, 0.50),
		StoreRate:     rng.Range(0.15, 0.40),
		FPRate:        rng.Range(0.20, 0.50),
		CodeFootprint: rng.Range(0.20, 0.50),
	}
}

// branchyProfile: control-heavy code, e.g. tree mining (~2.0-2.5x on big).
func branchyProfile(rng *mathx.RNG) cpu.WorkProfile {
	return cpu.WorkProfile{
		ILP:           rng.Range(0.50, 0.80),
		BranchRate:    rng.Range(0.16, 0.28),
		MemIntensity:  rng.Range(0.20, 0.40),
		StoreRate:     rng.Range(0.10, 0.30),
		FPRate:        rng.Range(0.05, 0.25),
		CodeFootprint: rng.Range(0.40, 0.80),
	}
}

// ---------------------------------------------------------------------------
// Structural program builders.

// dpOptions parameterises a barrier-phased data-parallel program.
type dpOptions struct {
	phases     int
	phaseWork  float64 // mean work units per thread per phase
	imbalance  float64 // per-thread-phase work jitter amplitude
	decay      bool    // SPLASH-2 LU-style shrinking parallel sections
	locksPer   int     // critical sections per phase
	csWork     float64 // work inside each critical section
	lockSpread int     // number of distinct locks (contention knob)
	profile    func(*mathx.RNG) cpu.WorkProfile
	// skewFirst multiplies thread 0's work (serial-ish leader), 0 = off.
	skewFirst float64
}

// buildDataParallel emits n threads running `phases` barrier-separated
// phases. Critical sections inside a phase hit a random lock from the
// spread, producing futex blocking blame proportional to the sync rate.
func buildDataParallel(ab *appBuilder, n int, o dpOptions) {
	if o.lockSpread < 1 {
		o.lockSpread = 1
	}
	bar := ab.id()
	locks := make([]int, o.lockSpread)
	for i := range locks {
		locks[i] = ab.id()
	}
	for i := 0; i < n; i++ {
		prof := o.profile(ab.rng)
		var ops task.Program
		for ph := 0; ph < o.phases; ph++ {
			w := ab.rng.Jitter(o.phaseWork, o.imbalance)
			if o.decay {
				w *= float64(o.phases-ph) / float64(o.phases)
			}
			if i == 0 && o.skewFirst > 0 {
				w *= o.skewFirst
			}
			if o.locksPer > 0 && n > 1 {
				per := w / float64(o.locksPer+1)
				for l := 0; l < o.locksPer; l++ {
					lk := locks[ab.rng.IntN(len(locks))]
					ops = append(ops,
						task.Compute{Work: per},
						task.Lock{ID: lk},
						task.Compute{Work: ab.rng.Jitter(o.csWork, 0.3)},
						task.Unlock{ID: lk},
					)
				}
				ops = append(ops, task.Compute{Work: per})
			} else {
				ops = append(ops, task.Compute{Work: w})
			}
			if n > 1 {
				ops = append(ops, task.Barrier{ID: bar, Parties: n})
			}
		}
		ab.thread(fmt.Sprintf("w%d", i), prof, ops)
	}
}

// stageSpec describes one pipeline stage.
type stageSpec struct {
	name     string
	workItem float64 // work units per item
	profile  func(*mathx.RNG) cpu.WorkProfile
}

// buildPipeline emits an items-through-stages pipeline over bounded queues
// (the dedup/ferret structure). Threads are spread one per stage first,
// then round-robin; with fewer threads than stages, adjacent stages merge
// (as the real benchmarks do at low thread counts).
func buildPipeline(ab *appBuilder, n int, stages []stageSpec, items, qcap int) {
	if n == 1 {
		// Sequential fallback: all stages fused into one thread.
		total := 0.0
		for _, s := range stages {
			total += s.workItem
		}
		var ops task.Program
		for it := 0; it < items; it++ {
			ops = append(ops, task.Compute{Work: ab.rng.Jitter(total, 0.2)})
		}
		ab.thread("s0", stages[0].profile(ab.rng), ops)
		return
	}
	// Merge adjacent stages down to at most n effective stages.
	eff := mergeStages(stages, minInt(len(stages), n))
	// Thread counts per effective stage: one each, extras round-robin over
	// the interior (parallelisable) stages, matching PARSEC pipelines.
	counts := make([]int, len(eff))
	for i := range counts {
		counts[i] = 1
	}
	extra := n - len(eff)
	for i := 0; extra > 0; i++ {
		idx := 0
		if len(eff) > 2 {
			idx = 1 + i%(len(eff)-2) // interior stages only
		} else {
			idx = i % len(eff)
		}
		counts[idx]++
		extra--
	}
	queues := make([]int, len(eff)-1)
	for i := range queues {
		queues[i] = ab.queue(qcap)
	}
	tid := 0
	for s, spec := range eff {
		shares := splitShares(items, counts[s])
		for k := 0; k < counts[s]; k++ {
			prof := spec.profile(ab.rng)
			var ops task.Program
			for it := 0; it < shares[k]; it++ {
				if s > 0 {
					ops = append(ops, task.Get{ID: queues[s-1]})
				}
				ops = append(ops, task.Compute{Work: ab.rng.Jitter(spec.workItem, 0.35)})
				if s < len(eff)-1 {
					ops = append(ops, task.Put{ID: queues[s]})
				}
			}
			ab.thread(fmt.Sprintf("%s%d", spec.name, k), prof, ops)
			tid++
		}
	}
}

// mergeStages combines adjacent stages into k groups, summing per-item work
// and keeping the heaviest member's profile and name.
func mergeStages(stages []stageSpec, k int) []stageSpec {
	if k >= len(stages) {
		return stages
	}
	out := make([]stageSpec, 0, k)
	base := len(stages) / k
	rem := len(stages) % k
	idx := 0
	for g := 0; g < k; g++ {
		size := base
		if g < rem {
			size++
		}
		merged := stages[idx]
		for j := idx + 1; j < idx+size; j++ {
			merged.workItem += stages[j].workItem
			if stages[j].workItem > stages[idx].workItem {
				merged.name = stages[j].name
				merged.profile = stages[j].profile
			}
		}
		out = append(out, merged)
		idx += size
	}
	return out
}

// splitShares divides items across k threads as evenly as possible.
func splitShares(items, k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = items / k
	}
	for i := 0; i < items%k; i++ {
		out[i]++
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SortedThreadWork is a debugging helper: total per-thread work in the app,
// descending. Used by characterisation tooling and tests.
func SortedThreadWork(a *task.App) []float64 {
	var out []float64
	for _, t := range a.Threads {
		out = append(out, t.Program.TotalWork())
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// TierSpeedups returns each thread's true speedup on every tier of the
// palette (rows follow a.Threads, columns the tiers). Characterisation
// tooling uses it to show how a benchmark's core sensitivity spreads over a
// multi-tier machine.
func TierSpeedups(a *task.App, tiers []cpu.Tier) [][]float64 {
	out := make([][]float64, len(a.Threads))
	for i, t := range a.Threads {
		row := make([]float64, len(tiers))
		for j, tier := range tiers {
			row[j] = t.Profile.SpeedupOn(tier)
		}
		out[i] = row
	}
	return out
}
