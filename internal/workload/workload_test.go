package workload

import (
	"testing"

	"colab/internal/mathx"
	"colab/internal/task"
)

func TestAllBenchmarksListed(t *testing.T) {
	benches := All()
	if len(benches) != 15 {
		t.Fatalf("Table 3 has 15 benchmarks, got %d", len(benches))
	}
	capped := map[string]bool{"water_nsquared": true, "water_spatial": true, "fmm": true}
	for _, b := range benches {
		if b.Name == "" || b.Suite == "" || b.SyncRate == "" || b.CommComp == "" {
			t.Errorf("incomplete metadata for %+v", b)
		}
		if capped[b.Name] && b.MaxThreads != 2 {
			t.Errorf("%s must be capped at 2 threads (§5.2)", b.Name)
		}
		if !capped[b.Name] && b.MaxThreads != 0 {
			t.Errorf("%s must be uncapped", b.Name)
		}
		if _, ok := ByName(b.Name); !ok {
			t.Errorf("ByName(%s) missing", b.Name)
		}
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Errorf("unknown benchmark resolved")
	}
	if len(Names()) != 15 {
		t.Errorf("Names() size")
	}
}

func TestInstantiateExactThreadCounts(t *testing.T) {
	rng := mathx.NewRNG(5)
	for _, b := range All() {
		for _, n := range []int{1, 2, 3, 4, 6, 9, 13, 16} {
			want := n
			if b.MaxThreads > 0 && want > b.MaxThreads {
				want = b.MaxThreads
			}
			app, err := b.Instantiate(0, n, rng)
			if err != nil {
				t.Fatal(err)
			}
			if app.NumThreads() != want {
				t.Fatalf("%s(n=%d): %d threads, want %d", b.Name, n, app.NumThreads(), want)
			}
			for _, th := range app.Threads {
				if len(th.Program) == 0 {
					t.Fatalf("%s(n=%d): thread %s has empty program", b.Name, n, th.Name)
				}
				if th.Program.TotalWork() <= 0 {
					t.Fatalf("%s(n=%d): thread %s has no work", b.Name, n, th.Name)
				}
				s := th.Profile.TrueSpeedup()
				if s < 1.05 || s > 2.85 {
					t.Fatalf("%s: speedup %v out of envelope", b.Name, s)
				}
			}
		}
	}
}

// mustInstantiate builds an app from a benchmark whose generator is known
// to be well-formed.
func mustInstantiate(t *testing.T, b Benchmark, appID, n int, rng *mathx.RNG) *task.App {
	t.Helper()
	app, err := b.Instantiate(appID, n, rng)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestInstantiateDeterministic(t *testing.T) {
	for _, b := range All() {
		a1 := mustInstantiate(t, b, 3, 4, mathx.NewRNG(77))
		a2 := mustInstantiate(t, b, 3, 4, mathx.NewRNG(77))
		if len(a1.Threads) != len(a2.Threads) {
			t.Fatalf("%s: nondeterministic thread count", b.Name)
		}
		for i := range a1.Threads {
			w1 := a1.Threads[i].Program.TotalWork()
			w2 := a2.Threads[i].Program.TotalWork()
			if w1 != w2 {
				t.Fatalf("%s thread %d: work %v != %v", b.Name, i, w1, w2)
			}
			if a1.Threads[i].Profile != a2.Threads[i].Profile {
				t.Fatalf("%s thread %d: profiles differ", b.Name, i)
			}
		}
	}
}

func TestSyncRateShowsInPrograms(t *testing.T) {
	rng := mathx.NewRNG(9)
	countLocks := func(app *task.App) int {
		locks := 0
		for _, th := range app.Threads {
			for _, op := range th.Program {
				if _, ok := op.(task.Lock); ok {
					locks++
				}
			}
		}
		return locks
	}
	fluid, _ := ByName("fluidanimate")
	spatial, _ := ByName("water_spatial")
	blacks, _ := ByName("blackscholes")
	lf := countLocks(mustInstantiate(t, fluid, 0, 4, rng))
	ls := countLocks(mustInstantiate(t, spatial, 1, 2, rng))
	lb := countLocks(mustInstantiate(t, blacks, 2, 4, rng))
	// fluidanimate has ~100x the lock rate of other PARSEC apps (§5.2).
	if lf < 20*ls {
		t.Errorf("fluidanimate locks %d not >> water_spatial %d", lf, ls)
	}
	if lb != 0 {
		t.Errorf("blackscholes must be lock-free, got %d locks", lb)
	}
}

func TestPipelineStructure(t *testing.T) {
	rng := mathx.NewRNG(11)
	dedup, _ := ByName("dedup")
	app := mustInstantiate(t, dedup, 0, 9, rng)
	if len(app.Queues) == 0 {
		t.Fatalf("dedup pipeline declared no queues")
	}
	puts, gets := 0, 0
	for _, th := range app.Threads {
		for _, op := range th.Program {
			switch op.(type) {
			case task.Put:
				puts++
			case task.Get:
				gets++
			}
		}
	}
	if puts == 0 || gets == 0 {
		t.Fatalf("pipeline has no queue traffic: puts=%d gets=%d", puts, gets)
	}
	// Flow conservation: total puts must equal total gets (every produced
	// item is consumed) or the pipeline deadlocks.
	if puts != gets {
		t.Fatalf("queue flow imbalance: %d puts vs %d gets", puts, gets)
	}
}

func TestPipelineFlowConservationAcrossWidths(t *testing.T) {
	rng := mathx.NewRNG(13)
	for _, name := range []string{"dedup", "ferret", "freqmine"} {
		b, _ := ByName(name)
		for _, n := range []int{1, 2, 4, 5, 7, 9, 14} {
			app, err := b.Instantiate(0, n, rng)
			if err != nil {
				t.Fatal(err)
			}
			perQueue := map[int]int{}
			for _, th := range app.Threads {
				for _, op := range th.Program {
					switch o := op.(type) {
					case task.Put:
						perQueue[o.ID]++
					case task.Get:
						perQueue[o.ID]--
					}
				}
			}
			for q, delta := range perQueue {
				if delta != 0 {
					t.Fatalf("%s(n=%d) queue %d imbalanced by %d", name, n, q, delta)
				}
			}
		}
	}
}

func TestBarrierPartiesMatchThreadCount(t *testing.T) {
	rng := mathx.NewRNG(17)
	for _, name := range []string{"blackscholes", "radix", "fft", "lu_cb", "bodytrack", "fluidanimate"} {
		b, _ := ByName(name)
		app := mustInstantiate(t, b, 0, 5, rng)
		n := app.NumThreads()
		for _, th := range app.Threads {
			for _, op := range th.Program {
				if bar, ok := op.(task.Barrier); ok && bar.Parties != n {
					t.Fatalf("%s: barrier parties %d != threads %d", name, bar.Parties, n)
				}
			}
		}
	}
}

func TestCompositionsMatchTable4(t *testing.T) {
	// Thread totals straight from Table 4 of the paper.
	wantThreads := map[string]int{
		"Sync-1": 4, "Sync-2": 18, "Sync-3": 9, "Sync-4": 20,
		"NSync-1": 4, "NSync-2": 16, "NSync-3": 8, "NSync-4": 20,
		"Comm-1": 4, "Comm-2": 16, "Comm-3": 9, "Comm-4": 20,
		"Comp-1": 4, "Comp-2": 17, "Comp-3": 8, "Comp-4": 20,
		"Rand-1": 19, "Rand-2": 10, "Rand-3": 9, "Rand-4": 8, "Rand-5": 6,
		"Rand-6": 21, "Rand-7": 20, "Rand-8": 17, "Rand-9": 55, "Rand-10": 53,
	}
	comps := Compositions()
	if len(comps) != 26 {
		t.Fatalf("Table 4 has 26 workloads, got %d", len(comps))
	}
	for _, c := range comps {
		want, ok := wantThreads[c.Index]
		if !ok {
			t.Errorf("unexpected composition %s", c.Index)
			continue
		}
		if got := c.TotalThreads(); got != want {
			t.Errorf("%s: %d threads, want %d (Table 4)", c.Index, got, want)
		}
		for _, p := range c.Parts {
			if _, ok := ByName(p.Bench); !ok {
				t.Errorf("%s references unknown benchmark %s", c.Index, p.Bench)
			}
		}
	}
	for cl, want := range map[Class]int{ClassSync: 4, ClassNSync: 4, ClassComm: 4, ClassComp: 4, ClassRand: 10} {
		if got := len(CompositionsByClass(cl)); got != want {
			t.Errorf("class %s: %d workloads, want %d", cl, got, want)
		}
	}
}

func TestCompositionBuild(t *testing.T) {
	comp, ok := CompositionByIndex("Sync-4")
	if !ok {
		t.Fatal("Sync-4 missing")
	}
	w, err := comp.Build(123)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumThreads() != comp.TotalThreads() {
		t.Fatalf("built %d threads, want %d", w.NumThreads(), comp.TotalThreads())
	}
	seen := map[int]bool{}
	for _, a := range w.Apps {
		if seen[a.ID] {
			t.Fatalf("duplicate app ID %d", a.ID)
		}
		seen[a.ID] = true
	}
	if comp.NumPrograms() != 4 {
		t.Fatalf("NumPrograms = %d", comp.NumPrograms())
	}
	if _, ok := CompositionByIndex("Nope-1"); ok {
		t.Fatalf("unknown composition resolved")
	}
}

func TestSingleProgram(t *testing.T) {
	w, err := SingleProgram("ferret", 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Apps) != 1 || w.Apps[0].NumThreads() != 6 {
		t.Fatalf("single program shape wrong")
	}
	if _, err := SingleProgram("nope", 4, 1); err == nil {
		t.Fatalf("unknown benchmark must error")
	}
}

func TestMergeStagesAndShares(t *testing.T) {
	stages := []PipeStage{
		{Name: "a", WorkItem: 1},
		{Name: "b", WorkItem: 5},
		{Name: "c", WorkItem: 2},
		{Name: "d", WorkItem: 1},
	}
	merged := mergeStages(stages, 2)
	if len(merged) != 2 {
		t.Fatalf("merged to %d stages", len(merged))
	}
	if merged[0].WorkItem+merged[1].WorkItem != 9 {
		t.Fatalf("work lost in merge: %v", merged)
	}
	if got := mergeStages(stages, 10); len(got) != 4 {
		t.Fatalf("over-merge: %d", len(got))
	}
	shares := splitShares(10, 3)
	total := 0
	for _, s := range shares {
		total += s
	}
	if total != 10 || shares[0]-shares[2] > 1 {
		t.Fatalf("shares = %v", shares)
	}
}
