package workload_test

import (
	"testing"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/sched/cfs"
	"colab/internal/sim"
	"colab/internal/workload"
)

// These tests validate that the Table 4 class labels are not just metadata:
// the generated workloads must *behave* according to their class when
// simulated — synchronization-intensive mixes block more, communication-
// intensive mixes move more futex traffic.

func runUnderCFS(t *testing.T, idx string) *kernel.Result {
	t.Helper()
	comp, ok := workload.CompositionByIndex(idx)
	if !ok {
		t.Fatalf("composition %s missing", idx)
	}
	w, err := comp.Build(11)
	if err != nil {
		t.Fatal(err)
	}
	m, err := kernel.NewMachine(cpu.Config4B4S, cfs.New(cfs.Options{}), w, kernel.Params{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// blockedFraction is the share of total thread lifetime spent futex-blocked.
func blockedFraction(res *kernel.Result) float64 {
	var blocked, exec sim.Time
	for _, th := range res.Threads {
		blocked += th.BlockedTime
		exec += th.SumExec
	}
	if exec == 0 {
		return 0
	}
	return float64(blocked) / float64(blocked+exec)
}

// blamePerExecSecond measures how much cross-thread waiting the workload
// generates per unit of execution — the bottleneck-pressure signal COLAB
// feeds on.
func blamePerExecSecond(res *kernel.Result) float64 {
	var blame, exec sim.Time
	for _, th := range res.Threads {
		blame += th.BlockBlame
		exec += th.SumExec
	}
	if exec == 0 {
		return 0
	}
	return float64(blame) / float64(exec)
}

func TestSyncClassBlocksMoreThanNSync(t *testing.T) {
	// Pair up same-size compositions from the opposing classes.
	pairs := [][2]string{
		{"Sync-1", "NSync-1"}, // both 4 threads
		{"Sync-4", "NSync-4"}, // both 20 threads
	}
	for _, p := range pairs {
		syncRes := runUnderCFS(t, p[0])
		nsyncRes := runUnderCFS(t, p[1])
		sf, nf := blockedFraction(syncRes), blockedFraction(nsyncRes)
		if sf <= nf {
			t.Errorf("%s blocked fraction %.3f not above %s %.3f — class labels do not manifest",
				p[0], sf, p[1], nf)
		}
	}
}

func TestCommClassGeneratesMoreBlameThanComp(t *testing.T) {
	pairs := [][2]string{
		{"Comm-2", "Comp-3"}, // pipeline-heavy vs compute-heavy
		{"Comm-4", "Comp-4"}, // both 20 threads
	}
	for _, p := range pairs {
		commRes := runUnderCFS(t, p[0])
		compRes := runUnderCFS(t, p[1])
		cb, pb := blamePerExecSecond(commRes), blamePerExecSecond(compRes)
		if cb <= pb {
			t.Errorf("%s blame/exec %.4f not above %s %.4f", p[0], cb, p[1], pb)
		}
	}
}

// The very-high-sync benchmark must dominate lock blocking inside a mix
// that contains it (fluidanimate's 100x lock rate, §5.2).
func TestFluidanimateDominatesBlockingInItsMix(t *testing.T) {
	res := runUnderCFS(t, "Sync-2") // dedup(9) + fluidanimate(9)
	perApp := map[string]sim.Time{}
	for _, th := range res.Threads {
		perApp[th.App] += th.BlockBlame
	}
	if perApp["fluidanimate"] == 0 {
		t.Fatalf("fluidanimate generated no blocking blame")
	}
}

// Single-program runs of every benchmark must terminate quickly on every
// config under plain CFS — a guard against generator structures that only
// work on the symmetric training machines.
func TestEveryBenchmarkRunsOnEveryConfig(t *testing.T) {
	for _, b := range workload.All() {
		for _, cfg := range []cpu.Config{cpu.Config2B2S, cpu.Config4B4S} {
			w, err := workload.SingleProgram(b.Name, b.DefaultThreads, 3)
			if err != nil {
				t.Fatal(err)
			}
			m, err := kernel.NewMachine(cfg, cfs.New(cfs.Options{}), w, kernel.Params{})
			if err != nil {
				t.Fatalf("%s on %s: %v", b.Name, cfg.Name, err)
			}
			res, err := m.Run()
			if err != nil {
				t.Fatalf("%s on %s: %v", b.Name, cfg.Name, err)
			}
			if res.EndTime <= 0 || res.EndTime > 10*sim.Second {
				t.Fatalf("%s on %s: implausible runtime %v", b.Name, cfg.Name, res.EndTime)
			}
		}
	}
}
