package workload

// This file defines the parsed scenario model behind the grammar: a Spec
// is an ordered list of Terms, each expanding to one or more benchmark
// instances with optional seed overrides and an arrival process. Table 4
// compositions convert losslessly into single-term Specs (Composition.Spec)
// and their closed-system builds are byte-identical to Composition.Build —
// the golden corpus pins this continuously.

import (
	"fmt"
	"math"

	"colab/internal/loadgen"
	"colab/internal/mathx"
	"colab/internal/sim"
	"colab/internal/task"
)

// buildSalt decorrelates workload generation from other uses of the same
// seed. It must equal the salt Composition.Build has always used: the
// grammar route to a Table 4 index reproduces the composition bit-for-bit.
const buildSalt uint64 = 0xd1b54a32d192ed03

// arrivalSalt decorrelates arrival-time draws from program generation, so
// attaching an arrival process to a term never perturbs the generated
// thread programs.
const arrivalSalt uint64 = 0x5bf03635d1f2b4d1

// loadSalt decorrelates the global load-generator stream (load=util's
// Poisson arrivals) from both program generation and per-term arrival
// draws.
const loadSalt uint64 = 0x94d049bb133111eb

// ArrivalKind enumerates the arrival processes of the scenario grammar.
type ArrivalKind string

// The arrival processes.
const (
	// ArriveClosed is the zero value: every app admitted at time zero.
	ArriveClosed ArrivalKind = ""
	// ArriveFixed admits every app of the term at offset At.
	ArriveFixed ArrivalKind = "fixed"
	// ArriveUniform draws each app's arrival uniformly from [Lo, Hi).
	ArriveUniform ArrivalKind = "uniform"
	// ArrivePoisson is a Poisson process: successive apps of the term
	// arrive after exponential gaps with mean Mean.
	ArrivePoisson ArrivalKind = "poisson"
	// ArriveTrace replays explicit arrival times: the k-th app of the term
	// arrives at Times[k].
	ArriveTrace ArrivalKind = "trace"
	// ArriveTraceFile replays arrival times read from a trace file at
	// parse time (docs/TRACE_FORMAT.md): like ArriveTrace, the k-th app of
	// the term arrives at Times[k]. Path and Digest record where the times
	// came from; the digest travels in the canonical form so cell identity
	// tracks the file's content, not just its name.
	ArriveTraceFile ArrivalKind = "tracefile"
)

// Arrival describes when the apps of one scenario term enter the system.
// The zero value is the closed system (everything at time zero). Random
// processes draw from a dedicated stream that is a pure function of the
// term's effective seed and position, independent of program generation.
type Arrival struct {
	Kind ArrivalKind
	// At is the fixed offset (ArriveFixed).
	At sim.Time
	// Lo, Hi bound the uniform window (ArriveUniform).
	Lo, Hi sim.Time
	// Mean is the mean inter-arrival gap (ArrivePoisson).
	Mean sim.Time
	// Times are the replayed arrival times (ArriveTrace, ArriveTraceFile).
	Times []sim.Time
	// Path is the trace file the times were read from (ArriveTraceFile).
	Path string
	// Digest is the content digest of the trace file (ArriveTraceFile).
	Digest string
}

// times materialises n arrival offsets for one term.
func (a Arrival) times(n int, seed uint64, term int) ([]sim.Time, error) {
	out := make([]sim.Time, n)
	switch a.Kind {
	case ArriveClosed:
	case ArriveFixed:
		if a.At < 0 {
			return nil, fmt.Errorf("negative arrival offset %v", a.At)
		}
		for i := range out {
			out[i] = a.At
		}
	case ArriveUniform:
		if a.Lo < 0 || a.Hi < a.Lo {
			return nil, fmt.Errorf("bad uniform arrival window [%v, %v)", a.Lo, a.Hi)
		}
		rng := arrivalRNG(seed, term)
		for i := range out {
			out[i] = a.Lo + sim.Time(rng.Float64()*float64(a.Hi-a.Lo))
		}
	case ArrivePoisson:
		if a.Mean <= 0 {
			return nil, fmt.Errorf("poisson arrival needs a positive mean gap, got %v", a.Mean)
		}
		rng := arrivalRNG(seed, term)
		var cum float64
		for i := range out {
			cum += rng.Exp(float64(a.Mean))
			if cum > math.MaxInt64/2 {
				return nil, fmt.Errorf("poisson arrivals overflow simulated time")
			}
			out[i] = sim.Time(cum)
		}
	case ArriveTrace, ArriveTraceFile:
		// Strict: a count mismatch in either direction means the spec does
		// not model what its author wrote (extra times silently dropped
		// would turn an intended open stream into a closed no-op).
		if n != len(a.Times) {
			return nil, fmt.Errorf("arrival trace has %d times for %d applications (replicate apps with \"*%d\")", len(a.Times), n, len(a.Times))
		}
		for i := range out {
			if a.Times[i] < 0 {
				return nil, fmt.Errorf("negative arrival time %v in trace", a.Times[i])
			}
			out[i] = a.Times[i]
		}
	default:
		return nil, fmt.Errorf("unknown arrival kind %q", a.Kind)
	}
	return out, nil
}

// arrivalRNG derives the per-term arrival stream.
func arrivalRNG(seed uint64, term int) *mathx.RNG {
	return mathx.NewRNG(seed ^ arrivalSalt ^ (uint64(term+1) * 0x9e3779b97f4a7c15))
}

// AppSpec is one benchmark instance inside a scenario term. Threads <= 0
// selects the benchmark's DefaultThreads.
type AppSpec struct {
	Bench   string
	Threads int
}

// Term is one "+"-separated part of a scenario: either a single benchmark
// instance or the expansion of a registered scenario reference, with
// optional seed override and arrival process.
type Term struct {
	// Source is the registered scenario name this term expanded from (""
	// for a bare benchmark instance); it is what the canonical rendering
	// shows.
	Source string
	// Apps are the benchmark instances, in admission (app-ID) order.
	Apps []AppSpec
	// Seed overrides the build seed for this term's program generation
	// when HasSeed is set. Terms sharing an effective seed share one
	// generation stream, so "Sync-2@seed=7" builds the exact apps of
	// building "Sync-2" at seed 7.
	Seed    uint64
	HasSeed bool
	// Arrival is the term's arrival process (zero value = closed).
	Arrival Arrival
}

// modified reports whether the term carries a seed override or an arrival
// process.
func (t Term) modified() bool { return t.HasSeed || t.Arrival.Kind != ArriveClosed }

// Spec is a parsed scenario: the unit the experiment layer builds and
// scores. Obtain one from ParseSpec (the grammar), from a registered name,
// or from Composition.Spec.
type Spec struct {
	// Name identifies the scenario in results and memo keys: the
	// registered name, a Table 4 index, or the canonical grammar string.
	Name  string
	Terms []Term
	// Load is the scenario's global load-generator transformer (@load=),
	// applied at build time to every term's arrival process. Zero value =
	// none.
	Load loadgen.Load
	// Class is the scenario's declared workload class (@class=), the label
	// experiment.ClassTable regroups by. Empty = unclassified.
	Class Class
}

// NumApps returns the number of applications the spec instantiates.
func (s Spec) NumApps() int {
	n := 0
	for _, t := range s.Terms {
		n += len(t.Apps)
	}
	return n
}

// Open reports whether the spec admits apps over time: any term carries
// an arrival process, or the load generator itself produces one
// (load=util).
func (s Spec) Open() bool {
	for _, t := range s.Terms {
		if t.Arrival.Kind != ArriveClosed {
			return true
		}
	}
	return s.Load.Opens()
}

// Closed returns a copy of the spec with every arrival-shaping element
// stripped: per-term arrival processes and arrival-shaping load
// generators (util, diurnal, burst) go, but a program-shaping load
// (closed think time) stays, because the baseline must run the exact
// thread programs the mix runs. This is the closed-system build used for
// baseline collection and baseline-sharing shard groups.
func (s Spec) Closed() Spec {
	out := Spec{Name: s.Name, Terms: make([]Term, len(s.Terms)), Load: s.Load, Class: s.Class}
	copy(out.Terms, s.Terms)
	for i := range out.Terms {
		out.Terms[i].Arrival = Arrival{}
	}
	if out.Load.ShapesArrivals() {
		out.Load = loadgen.Load{}
	}
	return out
}

// TraceFiles returns the canonical rendering of every term whose arrival
// replays a trace file. Non-empty means the spec depends on local file
// content and cannot travel by grammar string alone — the fleet and serve
// layers reject such specs, naming these terms.
func (s Spec) TraceFiles() []string {
	var out []string
	for _, t := range s.Terms {
		if t.Arrival.Kind == ArriveTraceFile {
			out = append(out, t.canonical())
		}
	}
	return out
}

// Build instantiates the scenario into a runnable workload. Each call
// produces fresh threads; a workload cannot be re-run. Terms without a
// seed override share one generation stream keyed by the build seed
// (exactly Composition.Build's scheme); each distinct override seed opens
// its own stream on first use. Specs whose load generator needs the
// target machine (load=util) must use BuildFor.
func (s Spec) Build(seed uint64) (*task.Workload, error) { return s.BuildFor(seed, 0) }

// BuildFor is Build with the target machine's aggregate capacity (work
// units per nanosecond with every core busy, cpu.Config.AggregateCapacity)
// supplied, which the open-loop utilisation generator (load=util) needs
// to derive its arrival rate. Every other spec ignores capacity, so
// BuildFor(seed, c) == Build(seed) for them.
func (s Spec) BuildFor(seed uint64, capacity float64) (*task.Workload, error) {
	if len(s.Terms) == 0 {
		return nil, fmt.Errorf("workload: scenario %q has no terms", s.Name)
	}
	if err := s.Load.Validate(); err != nil {
		return nil, fmt.Errorf("workload: scenario %s: %w", s.Name, err)
	}
	w := &task.Workload{Name: s.Name}
	streams := make(map[uint64]*mathx.RNG)
	stream := func(sd uint64) *mathx.RNG {
		r, ok := streams[sd]
		if !ok {
			r = mathx.NewRNG(sd ^ buildSalt)
			streams[sd] = r
		}
		return r
	}
	appID := 0
	for ti, term := range s.Terms {
		eff := seed
		if term.HasSeed {
			eff = term.Seed
		}
		rng := stream(eff)
		var apps []*task.App
		for _, as := range term.Apps {
			b, ok := ByName(as.Bench)
			if !ok {
				return nil, fmt.Errorf("workload: scenario %s: %w", s.Name, unknownBenchmarkError(as.Bench))
			}
			n := as.Threads
			if n <= 0 {
				n = b.DefaultThreads
			}
			app, err := b.Instantiate(appID, n, rng)
			if err != nil {
				return nil, fmt.Errorf("workload: scenario %s: %w", s.Name, err)
			}
			if app.NumThreads() != n {
				return nil, fmt.Errorf("workload: %s/%s requested %d threads, generator produced %d (cap %d)",
					s.Name, as.Bench, n, app.NumThreads(), b.MaxThreads)
			}
			appID++
			apps = append(apps, app)
		}
		times, err := term.Arrival.times(len(apps), eff, ti)
		if err != nil {
			return nil, fmt.Errorf("workload: scenario %s term %d: %w", s.Name, ti+1, err)
		}
		for i, app := range apps {
			app.Arrival = times[i]
		}
		w.Apps = append(w.Apps, apps...)
	}
	if err := s.applyLoad(w, seed, capacity); err != nil {
		return nil, fmt.Errorf("workload: scenario %s: %w", s.Name, err)
	}
	return w, nil
}

// applyLoad applies the spec's global load-generator transformer to the
// built workload. Program generation is untouched by every kind except
// closed think time, whose task.Sleep prefixes are part of the programs
// (and therefore of the closed baseline build too).
func (s Spec) applyLoad(w *task.Workload, seed uint64, capacity float64) error {
	switch s.Load.Kind {
	case loadgen.None:
		return nil
	case loadgen.Util:
		// One Poisson stream over all apps in admission order, rate set so
		// the offered load is Target of the machine's absorption rate. The
		// stream draws from a dedicated salt, so it perturbs neither
		// program generation nor per-term arrival processes.
		var total float64
		for _, app := range w.Apps {
			for _, th := range app.Threads {
				total += th.Program.TotalWork()
			}
		}
		gap, err := loadgen.UtilGap(total/float64(len(w.Apps)), capacity, s.Load.Target)
		if err != nil {
			if capacity <= 0 {
				return fmt.Errorf("load=util needs the target machine's aggregate capacity: build with BuildFor (or colab.BuildWorkloadOn)")
			}
			return err
		}
		rng := mathx.NewRNG(seed ^ loadSalt)
		var cum float64
		for _, app := range w.Apps {
			cum += rng.Exp(gap)
			if cum > math.MaxInt64/2 {
				return fmt.Errorf("load=util arrivals overflow simulated time")
			}
			app.Arrival = sim.Time(cum)
		}
	case loadgen.Closed:
		// Closed-loop think time: the k-th admitted app begins after k
		// think pauses, realised as a task.Sleep prefix on each of its
		// threads (sleeps assign no blocking blame). The system stays
		// closed; turnaround includes the think ramp, identically in the
		// mix run and in the app's own baseline.
		for k, app := range w.Apps {
			think := sim.Time(k) * s.Load.Think
			if think == 0 {
				continue
			}
			for _, th := range app.Threads {
				th.Program = append(task.Program{task.Sleep{Duration: think}}, th.Program...)
			}
		}
	case loadgen.Diurnal, loadgen.Burst:
		for _, app := range w.Apps {
			app.Arrival = s.Load.Warp(app.Arrival)
		}
	}
	return nil
}

// Spec converts a Table 4 composition into its scenario form: one closed
// term whose apps are the composition's parts. Spec(...).Build(seed) is
// byte-identical to Composition.Build(seed).
func (c Composition) Spec() Spec {
	term := Term{Source: c.Index}
	for _, p := range c.Parts {
		term.Apps = append(term.Apps, AppSpec{Bench: p.Bench, Threads: p.Threads})
	}
	return Spec{Name: c.Index, Terms: []Term{term}}
}
