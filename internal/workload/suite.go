package workload

// The standard scenario suite: three named, seed-pinned scenarios that
// exercise each load-generator family and carry class labels for
// experiment.ClassTable. They are registered alongside the Table 4
// compositions, so "datacenter-day" works everywhere a workload is named
// — Experiment, colab-sim, colab-serve, colab-fleet — and travels the
// fleet wire by name alone (no trace files).
//
// Every term pins @seed=, so program content and per-term arrival draws
// are identical regardless of the build seed a run supplies; the build
// seed still drives the load=util admission stream (batch-backfill), so
// sweeping seeds sweeps arrival interleavings over fixed programs.

import (
	"colab/internal/loadgen"
	"colab/internal/sim"
)

// SuiteScenario is one member of the standard suite.
type SuiteScenario struct {
	// Name is the registered scenario name.
	Name string
	// Class is the scenario's declared class label (its spec's @class=).
	Class Class
	// Description is a one-line summary for listings.
	Description string
	// Machine names the cpu palette the scenario was tuned on (a
	// NamedConfigs name). Scenarios stay machine-independent — this is a
	// listing hint, not a constraint.
	Machine string
	// Spec is the registered spec (Spec.Name is Name).
	Spec Spec
}

// The standard suite's class labels.
const (
	ClassMixed       Class = "mixed"
	ClassInteractive Class = "interactive"
	ClassBatch       Class = "batch"
	ClassMemory      Class = "memory"
)

// standardSuite builds the suite's specs as literals. It must not call
// ParseSpec: registration happens inside ensureBuiltins' sync.Once, and
// parsing would re-enter it.
func standardSuite() []SuiteScenario {
	rep := func(bench string, threads, copies int) []AppSpec {
		apps := make([]AppSpec, copies)
		for i := range apps {
			apps[i] = AppSpec{Bench: bench, Threads: threads}
		}
		return apps
	}
	return []SuiteScenario{
		{
			Name:        "datacenter-day",
			Class:       ClassMixed,
			Description: "two Poisson streams under a diurnal rate envelope",
			Machine:     "2B2S",
			Spec: Spec{
				Name: "datacenter-day",
				Terms: []Term{
					{Apps: rep("water_nsquared", 2, 2), Seed: 101, HasSeed: true,
						Arrival: Arrival{Kind: ArrivePoisson, Mean: 4 * sim.Millisecond}},
					{Apps: rep("fft", 2, 2), Seed: 102, HasSeed: true,
						Arrival: Arrival{Kind: ArrivePoisson, Mean: 6 * sim.Millisecond}},
				},
				Load:  loadgen.Load{Kind: loadgen.Diurnal, Period: 25 * sim.Millisecond, Factor: 3},
				Class: ClassMixed,
			},
		},
		{
			Name:        "interactive-burst",
			Class:       ClassInteractive,
			Description: "a Poisson request stream under a square-wave burst envelope",
			Machine:     "2B2S",
			Spec: Spec{
				Name: "interactive-burst",
				Terms: []Term{
					{Apps: rep("dedup", 2, 4), Seed: 202, HasSeed: true,
						Arrival: Arrival{Kind: ArrivePoisson, Mean: 3 * sim.Millisecond}},
				},
				Load:  loadgen.Load{Kind: loadgen.Burst, Period: 16 * sim.Millisecond, Duty: 0.25, Factor: 4},
				Class: ClassInteractive,
			},
		},
		{
			Name:        "batch-backfill",
			Class:       ClassBatch,
			Description: "closed batch jobs admitted open-loop at 60% target utilisation",
			Machine:     "4B4S",
			Spec: Spec{
				Name: "batch-backfill",
				Terms: []Term{
					{Apps: rep("lu_cb", 2, 2), Seed: 301, HasSeed: true},
					{Apps: rep("radix", 2, 2), Seed: 302, HasSeed: true},
				},
				Load:  loadgen.Load{Kind: loadgen.Util, Target: 0.6},
				Class: ClassBatch,
			},
		},
		{
			Name:        "memory-churn",
			Class:       ClassMemory,
			Description: "memory-bound jobs churning open-loop across LLC domains",
			Machine:     "2x2B2S",
			Spec: Spec{
				Name: "memory-churn",
				Terms: []Term{
					{Apps: rep("ocean_cp", 2, 2), Seed: 401, HasSeed: true},
					{Apps: rep("radix", 2, 2), Seed: 402, HasSeed: true},
					{Apps: rep("fft", 2, 2), Seed: 403, HasSeed: true},
				},
				Load:  loadgen.Load{Kind: loadgen.Util, Target: 0.55},
				Class: ClassMemory,
			},
		},
	}
}

// StandardSuite returns the standard scenario suite in registration order.
func StandardSuite() []SuiteScenario { return standardSuite() }

// SuiteNames returns the suite's scenario names in registration order.
func SuiteNames() []string {
	var out []string
	for _, s := range standardSuite() {
		out = append(out, s.Name)
	}
	return out
}
