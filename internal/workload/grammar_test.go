package workload

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"colab/internal/sim"
)

func TestParseSpecForms(t *testing.T) {
	cases := []struct {
		in        string
		canonical string
		apps      int
	}{
		{"ferret:4", "ferret:4", 1},
		{"ferret", "ferret:4", 1}, // DefaultThreads
		{"water_nsquared", "water_nsquared:2", 1},
		{"ferret:4+bodytrack:8", "ferret:4+bodytrack:8", 2},
		{" ferret:4 + bodytrack:8 ", "ferret:4+bodytrack:8", 2},
		{"Sync-2", "Sync-2", 2},
		{"Sync-2@seed=7", "Sync-2@seed=7", 2},
		{"ferret:2*3", "ferret:2*3", 3},
		{"ferret*2", "ferret:4*2", 2},
		{"ferret:2*8@arrive=poisson(5ms)", "ferret:2*8@arrive=poisson(5ms)", 8},
		{"dedup:4*3@arrive=trace(0,10ms,25ms)", "dedup:4*3@arrive=trace(0ns,10ms,25ms)", 3},
		{"ferret:4@arrive=10ms", "ferret:4@arrive=10ms", 1},
		{"ferret:4@arrive=fixed(10ms)", "ferret:4@arrive=10ms", 1},
		{"ferret:4@arrive=poisson(5ms)", "ferret:4@arrive=poisson(5ms)", 1},
		{"ferret:4@arrive=uniform(0,50ms)", "ferret:4@arrive=uniform(0ns,50ms)", 1},
		{"dedup:4@arrive=trace(0,10ms,25ms)", "dedup:4@arrive=trace(0ns,10ms,25ms)", 1},
		{"Sync-1@seed=3@arrive=2ms+ferret:6", "Sync-1@seed=3@arrive=2ms+ferret:6", 3},
		{"radix:2@arrive=1500us", "radix:2@arrive=1500us", 1},
		{"radix:2@arrive=1.5ms", "radix:2@arrive=1500us", 1},
		{"radix:2@arrive=2s", "radix:2@arrive=2s", 1},
		// Load generators and class labels are spec-global: written on any
		// term, rendered once at the end.
		{"ferret:4@load=util(0.7)", "ferret:4@load=util(0.7)", 1},
		{"ferret:4@load=util(0.7)+radix:2", "ferret:4+radix:2@load=util(0.7)", 2},
		{"ferret:4+radix:2@load=closed(think=5ms)", "ferret:4+radix:2@load=closed(think=5ms)", 2},
		{"ferret:2*4@arrive=poisson(5ms)@load=diurnal(40ms,3)", "ferret:2*4@arrive=poisson(5ms)@load=diurnal(40ms,3)", 4},
		{"ferret:2*4@arrive=poisson(5ms)@load=burst(16ms,0.25,4)@class=interactive",
			"ferret:2*4@arrive=poisson(5ms)@load=burst(16ms,0.25,4)@class=interactive", 4},
		{"ferret:4@class=web", "ferret:4@class=web", 1},
		{"ferret:4@class=web+radix:2", "ferret:4+radix:2@class=web", 2},
		// A registered scenario carrying its own load/class inlines with
		// both propagated (collapsing to the name would re-modify it).
		{"interactive-burst", "dedup:2*4@seed=202@arrive=poisson(3ms)@load=burst(16ms,0.25,4)@class=interactive", 4},
	}
	for _, c := range cases {
		spec, err := ParseSpec(c.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if spec.Canonical() != c.canonical {
			t.Errorf("ParseSpec(%q).Canonical() = %q, want %q", c.in, spec.Canonical(), c.canonical)
		}
		if spec.Name != c.canonical {
			t.Errorf("ParseSpec(%q).Name = %q, want canonical %q", c.in, spec.Name, c.canonical)
		}
		if got := spec.NumApps(); got != c.apps {
			t.Errorf("ParseSpec(%q).NumApps() = %d, want %d", c.in, got, c.apps)
		}
		// Round-trip stability: the canonical form reparses to itself.
		again, err := ParseSpec(spec.Canonical())
		if err != nil {
			t.Errorf("reparse of %q failed: %v", spec.Canonical(), err)
			continue
		}
		if again.Canonical() != spec.Canonical() {
			t.Errorf("canonical form not stable: %q -> %q", spec.Canonical(), again.Canonical())
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct{ in, wantSub string }{
		{"", "empty"},
		{"nosuchthing:4", "benchmarks:"},
		{"nosuchthing", "scenarios:"},
		{"ferret:zero", "thread count"},
		{"ferret:0", "out of range"},
		{"ferret:99999999", "out of range"},
		{"Sync-2:4", "no thread count"},
		{"Sync-2*2", "no replication count"},
		{"ferret:2*zero", "replication count"},
		{"ferret:2*0", "out of range"},
		{"ferret:2*9999", "out of range"},
		{"ferret:4@", "modifier"},
		{"ferret:4@bogus=1", "unknown modifier"},
		{"ferret:4@seed=abc", "bad seed"},
		{"ferret:4@seed=1@seed=2", "twice"},
		{"ferret:4@arrive=1ms@arrive=2ms", "twice"},
		{"ferret:4@arrive=sometimes", "bad arrival"},
		{"ferret:4@arrive=uniform(5ms)", "uniform"},
		{"ferret:4@arrive=uniform(9ms,2ms)", "inverted"},
		{"ferret:4@arrive=poisson(0)", "positive"},
		{"ferret:4@arrive=poisson(-5ms)", "duration"},
		{"ferret:4@arrive=trace()", "at least one"},
		{"ferret:4@arrive=uniform(1ms", "unbalanced"},
		{"ferret:4@arrive=1ms)", "unbalanced"},
		{"+ferret:4", "empty term"},
		{"ferret:4@load=util(0.7)@load=util(0.8)", "twice"},
		{"ferret:4@load=util(0.7)+radix:2@load=util(0.8)", "twice"},
		{"ferret:4@class=a+radix:2@class=b", "twice"},
		{"ferret:4@load=bogus", "bad load"},
		{"ferret:4@load=util(2)", "out of range"},
		{"ferret:4@load=closed(5ms)", "think="},
		{"ferret:4@class=bad~label", "grammar-safe"},
		{"ferret:4@arrive=poisson(5ms)@load=util(0.5)", "closed terms"},
		{"ferret:4@arrive=poisson(5ms)+radix:2@load=closed(think=1ms)", "closed terms"},
		{"interactive-burst@seed=1", "carries its own modifiers"},
		{"ferret:4@arrive=tracefile()", "tracefile takes"},
		{"ferret:4@arrive=tracefile(/no/such/file)", "no such file"},
		{"ferret:4@arrive=tracefile(bad path)", "grammar-reserved"},
	}
	for _, c := range cases {
		_, err := ParseSpec(c.in)
		if err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error containing %q", c.in, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParseSpec(%q) error %q misses %q", c.in, err, c.wantSub)
		}
	}
}

func TestDurationParsing(t *testing.T) {
	cases := []struct {
		in   string
		want sim.Time
	}{
		{"0", 0},
		{"1500", 1500},
		{"1500ns", 1500},
		{"2us", 2 * sim.Microsecond},
		{"2µs", 2 * sim.Microsecond},
		{"10ms", 10 * sim.Millisecond},
		{"1.5ms", 1500 * sim.Microsecond},
		{"2s", 2 * sim.Second},
	}
	for _, c := range cases {
		got, err := parseDur(c.in)
		if err != nil {
			t.Errorf("parseDur(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("parseDur(%q) = %d, want %d", c.in, got, c.want)
		}
		if back, err := parseDur(formatDur(got)); err != nil || back != got {
			t.Errorf("formatDur round-trip broke: %q -> %q -> %v (%v)", c.in, formatDur(got), back, err)
		}
	}
	for _, bad := range []string{"", "ms", "-1ms", "1e300s", "nan", "inf", "+inf"} {
		if _, err := parseDur(bad); err == nil {
			t.Errorf("parseDur(%q) succeeded", bad)
		}
	}
}

// TestTracefileSpec exercises arrive=tracefile end to end: parse,
// digest-pinned canonical form, round-trip, build, TraceFiles reporting,
// and the changed-file rejection.
func TestTracefileSpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "arrivals.trace")
	if err := os.WriteFile(path, []byte("# recorded burst\n0\n10ms\n25ms\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := ParseSpec(fmt.Sprintf("dedup:2*3@arrive=tracefile(%s)", path))
	if err != nil {
		t.Fatal(err)
	}
	digest := spec.Terms[0].Arrival.Digest
	if len(digest) != 16 {
		t.Fatalf("digest %q: want 16 hex digits", digest)
	}
	want := fmt.Sprintf("dedup:2*3@arrive=tracefile(%s,sha256=%s)", path, digest)
	if got := spec.Canonical(); got != want {
		t.Fatalf("canonical = %q, want %q", got, want)
	}
	if tf := spec.TraceFiles(); len(tf) != 1 || !strings.Contains(tf[0], path) {
		t.Fatalf("TraceFiles() = %v, want the tracefile term", tf)
	}
	// The canonical form re-parses to itself while the file is unchanged.
	again, err := ParseSpec(spec.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	if again.Canonical() != spec.Canonical() {
		t.Fatalf("canonical not stable: %q -> %q", spec.Canonical(), again.Canonical())
	}
	// Builds replay the times in order, for any build seed.
	w, err := spec.Build(42)
	if err != nil {
		t.Fatal(err)
	}
	wantTimes := []sim.Time{0, 10 * sim.Millisecond, 25 * sim.Millisecond}
	for i, app := range w.Apps {
		if app.Arrival != wantTimes[i] {
			t.Errorf("app %d arrival = %d, want %d", i, app.Arrival, wantTimes[i])
		}
	}
	// A count mismatch fails the build, exactly like inline trace(...).
	mismatch, err := ParseSpec(fmt.Sprintf("dedup:2*4@arrive=tracefile(%s)", path))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mismatch.Build(1); err == nil || !strings.Contains(err.Error(), "3 times for 4 applications") {
		t.Fatalf("count mismatch build error = %v", err)
	}
	// Changing the file invalidates the pinned canonical form.
	if err := os.WriteFile(path, []byte("0\n10ms\n99ms\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSpec(spec.Canonical()); err == nil || !strings.Contains(err.Error(), "changed since") {
		t.Fatalf("changed-file reparse error = %v", err)
	}
}

// FuzzParseSpec fuzzes the scenario-grammar parser: it must never panic,
// and any accepted input must have a stable canonical form (parse →
// render → parse is a fixed point).
func FuzzParseSpec(f *testing.F) {
	for _, c := range Compositions() {
		f.Add(c.Index)
	}
	for _, name := range Names() {
		f.Add(name)
		f.Add(name + ":4")
	}
	for _, s := range []string{
		"ferret:4+bodytrack:8",
		"Sync-2@seed=7",
		"ferret:4@arrive=poisson(5ms)",
		"ferret:4@arrive=fixed(10ms)",
		"ferret:4@arrive=uniform(0,50ms)",
		"ferret:2*8@arrive=poisson(5ms)",
		"dedup:4*3@arrive=trace(0,10ms,25ms)",
		"ferret:2*0",
		"Sync-1@seed=3@arrive=2ms+ferret:6",
		"radix:2@arrive=1.5ms",
		"water_nsquared+fmm@seed=9",
		"ferret:4@arrive=uniform(1ms",
		"@seed=1",
		"ferret:4@@",
		"ferret:4@arrive=tracefile(testdata/arrivals.trace)",
		"ferret:4@arrive=tracefile(x,sha256=0123456789abcdef)",
		"ferret:4@load=util(0.7)",
		"ferret:4+radix:2@load=closed(think=5ms)",
		"ferret:2*4@arrive=poisson(5ms)@load=diurnal(40ms,3)@class=interactive",
		"ferret:2*4@arrive=poisson(5ms)@load=burst(16ms,0.25,4)",
		"ferret:4@class=web",
		"datacenter-day",
		"interactive-burst",
		"batch-backfill",
		"ferret:4@load=util(2)",
		"ferret:4@arrive=poisson(5ms)@load=util(0.5)",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		spec, err := ParseSpec(in)
		if err != nil {
			return
		}
		canon := spec.Canonical()
		again, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", canon, in, err)
		}
		if got := again.Canonical(); got != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q -> %q", in, canon, got)
		}
		if spec.NumApps() != again.NumApps() {
			t.Fatalf("app count drifted through canonicalisation: %d vs %d", spec.NumApps(), again.NumApps())
		}
	})
}
