package workload

import (
	"strings"
	"testing"

	"colab/internal/sim"
)

func TestParseSpecForms(t *testing.T) {
	cases := []struct {
		in        string
		canonical string
		apps      int
	}{
		{"ferret:4", "ferret:4", 1},
		{"ferret", "ferret:4", 1}, // DefaultThreads
		{"water_nsquared", "water_nsquared:2", 1},
		{"ferret:4+bodytrack:8", "ferret:4+bodytrack:8", 2},
		{" ferret:4 + bodytrack:8 ", "ferret:4+bodytrack:8", 2},
		{"Sync-2", "Sync-2", 2},
		{"Sync-2@seed=7", "Sync-2@seed=7", 2},
		{"ferret:2*3", "ferret:2*3", 3},
		{"ferret*2", "ferret:4*2", 2},
		{"ferret:2*8@arrive=poisson(5ms)", "ferret:2*8@arrive=poisson(5ms)", 8},
		{"dedup:4*3@arrive=trace(0,10ms,25ms)", "dedup:4*3@arrive=trace(0ns,10ms,25ms)", 3},
		{"ferret:4@arrive=10ms", "ferret:4@arrive=10ms", 1},
		{"ferret:4@arrive=fixed(10ms)", "ferret:4@arrive=10ms", 1},
		{"ferret:4@arrive=poisson(5ms)", "ferret:4@arrive=poisson(5ms)", 1},
		{"ferret:4@arrive=uniform(0,50ms)", "ferret:4@arrive=uniform(0ns,50ms)", 1},
		{"dedup:4@arrive=trace(0,10ms,25ms)", "dedup:4@arrive=trace(0ns,10ms,25ms)", 1},
		{"Sync-1@seed=3@arrive=2ms+ferret:6", "Sync-1@seed=3@arrive=2ms+ferret:6", 3},
		{"radix:2@arrive=1500us", "radix:2@arrive=1500us", 1},
		{"radix:2@arrive=1.5ms", "radix:2@arrive=1500us", 1},
		{"radix:2@arrive=2s", "radix:2@arrive=2s", 1},
	}
	for _, c := range cases {
		spec, err := ParseSpec(c.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if spec.Canonical() != c.canonical {
			t.Errorf("ParseSpec(%q).Canonical() = %q, want %q", c.in, spec.Canonical(), c.canonical)
		}
		if spec.Name != c.canonical {
			t.Errorf("ParseSpec(%q).Name = %q, want canonical %q", c.in, spec.Name, c.canonical)
		}
		if got := spec.NumApps(); got != c.apps {
			t.Errorf("ParseSpec(%q).NumApps() = %d, want %d", c.in, got, c.apps)
		}
		// Round-trip stability: the canonical form reparses to itself.
		again, err := ParseSpec(spec.Canonical())
		if err != nil {
			t.Errorf("reparse of %q failed: %v", spec.Canonical(), err)
			continue
		}
		if again.Canonical() != spec.Canonical() {
			t.Errorf("canonical form not stable: %q -> %q", spec.Canonical(), again.Canonical())
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct{ in, wantSub string }{
		{"", "empty"},
		{"nosuchthing:4", "benchmarks:"},
		{"nosuchthing", "scenarios:"},
		{"ferret:zero", "thread count"},
		{"ferret:0", "out of range"},
		{"ferret:99999999", "out of range"},
		{"Sync-2:4", "no thread count"},
		{"Sync-2*2", "no replication count"},
		{"ferret:2*zero", "replication count"},
		{"ferret:2*0", "out of range"},
		{"ferret:2*9999", "out of range"},
		{"ferret:4@", "modifier"},
		{"ferret:4@bogus=1", "unknown modifier"},
		{"ferret:4@seed=abc", "bad seed"},
		{"ferret:4@seed=1@seed=2", "twice"},
		{"ferret:4@arrive=1ms@arrive=2ms", "twice"},
		{"ferret:4@arrive=sometimes", "bad arrival"},
		{"ferret:4@arrive=uniform(5ms)", "uniform"},
		{"ferret:4@arrive=uniform(9ms,2ms)", "inverted"},
		{"ferret:4@arrive=poisson(0)", "positive"},
		{"ferret:4@arrive=poisson(-5ms)", "duration"},
		{"ferret:4@arrive=trace()", "at least one"},
		{"ferret:4@arrive=uniform(1ms", "unbalanced"},
		{"ferret:4@arrive=1ms)", "unbalanced"},
		{"+ferret:4", "empty term"},
	}
	for _, c := range cases {
		_, err := ParseSpec(c.in)
		if err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error containing %q", c.in, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParseSpec(%q) error %q misses %q", c.in, err, c.wantSub)
		}
	}
}

func TestDurationParsing(t *testing.T) {
	cases := []struct {
		in   string
		want sim.Time
	}{
		{"0", 0},
		{"1500", 1500},
		{"1500ns", 1500},
		{"2us", 2 * sim.Microsecond},
		{"2µs", 2 * sim.Microsecond},
		{"10ms", 10 * sim.Millisecond},
		{"1.5ms", 1500 * sim.Microsecond},
		{"2s", 2 * sim.Second},
	}
	for _, c := range cases {
		got, err := parseDur(c.in)
		if err != nil {
			t.Errorf("parseDur(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("parseDur(%q) = %d, want %d", c.in, got, c.want)
		}
		if back, err := parseDur(formatDur(got)); err != nil || back != got {
			t.Errorf("formatDur round-trip broke: %q -> %q -> %v (%v)", c.in, formatDur(got), back, err)
		}
	}
	for _, bad := range []string{"", "ms", "-1ms", "1e300s", "nan", "inf", "+inf"} {
		if _, err := parseDur(bad); err == nil {
			t.Errorf("parseDur(%q) succeeded", bad)
		}
	}
}

// FuzzParseSpec fuzzes the scenario-grammar parser: it must never panic,
// and any accepted input must have a stable canonical form (parse →
// render → parse is a fixed point).
func FuzzParseSpec(f *testing.F) {
	for _, c := range Compositions() {
		f.Add(c.Index)
	}
	for _, name := range Names() {
		f.Add(name)
		f.Add(name + ":4")
	}
	for _, s := range []string{
		"ferret:4+bodytrack:8",
		"Sync-2@seed=7",
		"ferret:4@arrive=poisson(5ms)",
		"ferret:4@arrive=fixed(10ms)",
		"ferret:4@arrive=uniform(0,50ms)",
		"ferret:2*8@arrive=poisson(5ms)",
		"dedup:4*3@arrive=trace(0,10ms,25ms)",
		"ferret:2*0",
		"Sync-1@seed=3@arrive=2ms+ferret:6",
		"radix:2@arrive=1.5ms",
		"water_nsquared+fmm@seed=9",
		"ferret:4@arrive=uniform(1ms",
		"@seed=1",
		"ferret:4@@",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		spec, err := ParseSpec(in)
		if err != nil {
			return
		}
		canon := spec.Canonical()
		again, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", canon, in, err)
		}
		if got := again.Canonical(); got != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q -> %q", in, canon, got)
		}
		if spec.NumApps() != again.NumApps() {
			t.Fatalf("app count drifted through canonicalisation: %d vs %d", spec.NumApps(), again.NumApps())
		}
	})
}
