package workload

import (
	"fmt"
	"strings"
	"testing"

	"colab/internal/sim"
	"colab/internal/task"
)

// fingerprintWorkload renders every generation-relevant detail of a built
// workload: app identity, queues, thread names, profiles, programs and
// arrivals. Two byte-identical workloads fingerprint identically.
func fingerprintWorkload(w *task.Workload) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "workload %s\n", w.Name)
	for _, a := range w.Apps {
		fmt.Fprintf(&sb, "app %d %s arrival=%d queues=%v\n", a.ID, a.Name, a.Arrival, a.Queues)
		for _, t := range a.Threads {
			fmt.Fprintf(&sb, "  thread %s profile=%+v ops=%d\n", t.Name, t.Profile, len(t.Program))
			for _, op := range t.Program {
				fmt.Fprintf(&sb, "    %#v\n", op)
			}
		}
	}
	return sb.String()
}

// TestSpecReproducesCompositionBuilds is the tentpole identity: the
// scenario route to every Table 4 composition builds the exact workload
// Composition.Build does — programs, profiles, queues, app IDs, to the
// last bit — at several seeds.
func TestSpecReproducesCompositionBuilds(t *testing.T) {
	for _, comp := range Compositions() {
		for _, seed := range []uint64{1, 7, 42} {
			want, err := comp.Build(seed)
			if err != nil {
				t.Fatalf("%s: composition build: %v", comp.Index, err)
			}
			got, err := comp.Spec().Build(seed)
			if err != nil {
				t.Fatalf("%s: spec build: %v", comp.Index, err)
			}
			if fw, fg := fingerprintWorkload(want), fingerprintWorkload(got); fw != fg {
				t.Fatalf("%s seed %d: spec build diverges from composition build", comp.Index, seed)
			}
		}
	}
}

// The grammar route must agree too, including the registered-name lookup.
func TestGrammarReproducesCompositionBuilds(t *testing.T) {
	for _, idx := range []string{"Sync-2", "Rand-7"} {
		comp, _ := CompositionByIndex(idx)
		want, err := comp.Build(3)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := ResolveSpec(idx)
		if err != nil {
			t.Fatal(err)
		}
		got, err := spec.Build(3)
		if err != nil {
			t.Fatal(err)
		}
		if fingerprintWorkload(want) != fingerprintWorkload(got) {
			t.Fatalf("%s: grammar build diverges from composition build", idx)
		}
	}
}

// A seed override must build the exact apps of building the scenario at
// that seed: "Sync-2@seed=7" at any build seed == "Sync-2" at seed 7.
func TestSeedOverrideIdentity(t *testing.T) {
	over, err := ParseSpec("Sync-2@seed=7")
	if err != nil {
		t.Fatal(err)
	}
	w1, err := over.Build(12345)
	if err != nil {
		t.Fatal(err)
	}
	comp, _ := CompositionByIndex("Sync-2")
	w2, err := comp.Build(7)
	if err != nil {
		t.Fatal(err)
	}
	// Names differ (spec canonical vs index); compare apps only.
	w1.Name, w2.Name = "x", "x"
	if fingerprintWorkload(w1) != fingerprintWorkload(w2) {
		t.Fatalf("seed override does not reproduce the overridden build")
	}
}

// An arrival process must not perturb program generation: the open build's
// programs equal the closed build's, only arrivals differ.
func TestArrivalsDoNotPerturbPrograms(t *testing.T) {
	closed, err := ParseSpec("ferret:4+bodytrack:4")
	if err != nil {
		t.Fatal(err)
	}
	open, err := ParseSpec("ferret:4+bodytrack:4@arrive=poisson(5ms)")
	if err != nil {
		t.Fatal(err)
	}
	wc, err := closed.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	wo, err := open.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	if !wo.Open() {
		t.Fatalf("poisson arrivals missing: %v", wo.Apps[1].Arrival)
	}
	if wo.Apps[0].Arrival != 0 {
		t.Fatalf("unmodified term must stay closed, got arrival %v", wo.Apps[0].Arrival)
	}
	for i := range wc.Apps {
		wo.Apps[i].Arrival = 0
	}
	wc.Name = wo.Name
	if fingerprintWorkload(wc) != fingerprintWorkload(wo) {
		t.Fatalf("arrival process perturbed program generation")
	}
}

// Arrival processes are deterministic per (seed, term) and differ across
// seeds.
func TestArrivalDeterminism(t *testing.T) {
	build := func(seed uint64) []task.App {
		spec, err := ParseSpec("ferret:2@arrive=uniform(0,50ms)+radix:2@arrive=poisson(3ms)")
		if err != nil {
			t.Fatal(err)
		}
		w, err := spec.Build(seed)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]task.App, len(w.Apps))
		for i, a := range w.Apps {
			out[i] = task.App{Name: a.Name, Arrival: a.Arrival}
		}
		return out
	}
	a, b := build(5), build(5)
	for i := range a {
		if a[i].Arrival != b[i].Arrival {
			t.Fatalf("arrivals differ across identical builds: %v vs %v", a[i].Arrival, b[i].Arrival)
		}
	}
	c := build(6)
	same := true
	for i := range a {
		if a[i].Arrival != c[i].Arrival {
			same = false
		}
	}
	if same {
		t.Fatalf("arrivals identical across different seeds")
	}
}

func TestTraceArrivalAndErrors(t *testing.T) {
	spec, err := ParseSpec("dedup:2*2@arrive=trace(0,10ms)")
	if err != nil {
		t.Fatal(err)
	}
	w, err := spec.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Apps) != 2 {
		t.Fatalf("apps = %d", len(w.Apps))
	}
	if w.Apps[0].Arrival != 0 || w.Apps[1].Arrival != 10*sim.Millisecond {
		t.Fatalf("trace arrivals = %v, %v", w.Apps[0].Arrival, w.Apps[1].Arrival)
	}
	// A count mismatch in either direction errors at build: silently
	// dropped times would turn an intended open stream into a closed run.
	for _, times := range [][]sim.Time{{0}, {0, sim.Millisecond, 2 * sim.Millisecond}} {
		bad := Spec{Name: "x", Terms: []Term{{
			Apps:    []AppSpec{{Bench: "radix", Threads: 2}, {Bench: "fft", Threads: 2}},
			Arrival: Arrival{Kind: ArriveTrace, Times: times},
		}}}
		if _, err := bad.Build(1); err == nil || !strings.Contains(err.Error(), "trace") {
			t.Fatalf("trace count mismatch (%d times) must error, got %v", len(times), err)
		}
	}
}

// A replicated Poisson term is a genuine stream: copies share the process,
// arrivals are cumulative and strictly ordered.
func TestPoissonReplicationIsAStream(t *testing.T) {
	spec, err := ParseSpec("swaptions:2*5@arrive=poisson(5ms)")
	if err != nil {
		t.Fatal(err)
	}
	w, err := spec.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Apps) != 5 {
		t.Fatalf("apps = %d", len(w.Apps))
	}
	for i := 1; i < len(w.Apps); i++ {
		if w.Apps[i].Arrival <= w.Apps[i-1].Arrival {
			t.Fatalf("poisson arrivals not increasing: %v then %v", w.Apps[i-1].Arrival, w.Apps[i].Arrival)
		}
	}
	// Replicas are distinct app instances (different app IDs fork
	// different generator streams).
	if fingerprintApp(w.Apps[0]) == fingerprintApp(w.Apps[1]) {
		t.Fatalf("replicated apps are identical clones")
	}
}

func fingerprintApp(a *task.App) string {
	var sb strings.Builder
	for _, t := range a.Threads {
		fmt.Fprintf(&sb, "%+v|%v\n", t.Profile, t.Program.TotalWork())
	}
	return sb.String()
}

// A miscounting user generator surfaces as an error, not a panic.
func TestMiscountingGeneratorErrors(t *testing.T) {
	MustRegister(Benchmark{
		Name: "spectest-short", Suite: "test", DefaultThreads: 4,
		Gen: func(b *Builder, n int) {
			for i := 0; i < n-1; i++ { // off by one
				b.Thread(fmt.Sprintf("w%d", i), ComputeProfile(b.RNG()), task.Program{task.Compute{Work: 1e6}})
			}
		},
	})
	if _, err := SingleProgram("spectest-short", 4, 1); err == nil || !strings.Contains(err.Error(), "emitted") {
		t.Fatalf("miscounting generator must error, got %v", err)
	}
	spec, err := ParseSpec("spectest-short:4")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.Build(1); err == nil || !strings.Contains(err.Error(), "emitted") {
		t.Fatalf("miscounting generator must error through Build, got %v", err)
	}
}

func TestSpecBuildErrors(t *testing.T) {
	if _, err := (Spec{Name: "empty"}).Build(1); err == nil {
		t.Fatal("empty spec must error")
	}
	bad := Spec{Name: "bad", Terms: []Term{{Apps: []AppSpec{{Bench: "nosuch", Threads: 2}}}}}
	if _, err := bad.Build(1); err == nil || !strings.Contains(err.Error(), "registered") {
		t.Fatalf("unknown benchmark must list registry, got %v", err)
	}
	capped := Spec{Name: "cap", Terms: []Term{{Apps: []AppSpec{{Bench: "fmm", Threads: 4}}}}}
	if _, err := capped.Build(1); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("over-cap thread count must error, got %v", err)
	}
}
