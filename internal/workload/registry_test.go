package workload

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"colab/internal/task"
)

func testGen(b *Builder, n int) {
	for i := 0; i < n; i++ {
		b.Thread(fmt.Sprintf("w%d", i), ComputeProfile(b.RNG()), task.Program{task.Compute{Work: 1e6}})
	}
}

func TestRegisterBenchmarkAndResolve(t *testing.T) {
	name := "regtest-bench"
	if err := Register(Benchmark{Name: name, Suite: "test", DefaultThreads: 2, Gen: testGen}); err != nil {
		t.Fatal(err)
	}
	if _, ok := ByName(name); !ok {
		t.Fatalf("registered benchmark not resolvable")
	}
	found := false
	for _, n := range BenchmarkNames() {
		if n == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("BenchmarkNames misses %q", name)
	}
	// The fixed Table 3 surface must not grow.
	if got := len(All()); got != 15 {
		t.Fatalf("All() = %d benchmarks, want 15", got)
	}
	// Grammar resolution end to end, with and without a thread count.
	w, err := ParseSpecBuild(t, name+":3+"+name)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Apps) != 2 || w.Apps[0].NumThreads() != 3 || w.Apps[1].NumThreads() != 2 {
		t.Fatalf("registered benchmark built wrong shape")
	}
}

// ParseSpecBuild is a test helper: parse then build at seed 1.
func ParseSpecBuild(t *testing.T, spec string) (*task.Workload, error) {
	t.Helper()
	s, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return s.Build(1)
}

func TestRegisterCollisionsAndValidation(t *testing.T) {
	if err := Register(Benchmark{Name: "ferret", DefaultThreads: 2, Gen: testGen}); err == nil {
		t.Fatal("duplicate benchmark name must error")
	}
	if err := Register(Benchmark{Name: "Sync-2", DefaultThreads: 2, Gen: testGen}); err == nil {
		t.Fatal("benchmark colliding with a scenario must error")
	}
	if err := Register(Benchmark{Name: "bad name", DefaultThreads: 2, Gen: testGen}); err == nil {
		t.Fatal("grammar-unsafe benchmark name must error")
	}
	if err := Register(Benchmark{Name: "nilgen", DefaultThreads: 2}); err == nil {
		t.Fatal("nil generator must error")
	}
	if err := Register(Benchmark{Name: "nothreads", Gen: testGen}); err == nil {
		t.Fatal("missing DefaultThreads must error")
	}
	spec, err := ParseSpec("ferret:2")
	if err != nil {
		t.Fatal(err)
	}
	if err := RegisterScenario("Sync-2", spec); err == nil {
		t.Fatal("duplicate scenario name must error")
	}
	if err := RegisterScenario("ferret", spec); err == nil {
		t.Fatal("scenario colliding with a benchmark must error")
	}
	if err := RegisterScenario("a+b", spec); err == nil {
		t.Fatal("grammar-unsafe scenario name must error")
	}
	if err := RegisterScenario("noterm", Spec{}); err == nil {
		t.Fatal("empty scenario must error")
	}
}

func TestRegisterScenarioAndResolve(t *testing.T) {
	name := "regtest-mix"
	spec, err := ParseSpec("ferret:2@arrive=poisson(4ms)+radix:2")
	if err != nil {
		t.Fatal(err)
	}
	if err := RegisterScenario(name, spec); err != nil {
		t.Fatal(err)
	}
	got, err := ResolveSpec(name)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != name || got.NumApps() != 2 || !got.Open() {
		t.Fatalf("resolved scenario wrong: %+v", got)
	}
	// A bare reference to a modified scenario inlines its terms.
	inlined, err := ParseSpec(name)
	if err != nil {
		t.Fatal(err)
	}
	if !inlined.Open() || inlined.NumApps() != 2 {
		t.Fatalf("inlined reference lost structure: %+v", inlined)
	}
	// A modified reference to a modified scenario is rejected.
	if _, err := ParseSpec(name + "@seed=4"); err == nil || !strings.Contains(err.Error(), "cannot be modified") {
		t.Fatalf("modified reference to modified scenario must error, got %v", err)
	}
}

// The registries must be safe under concurrent registration and lookup
// (run with -race).
func TestRegistryConcurrency(t *testing.T) {
	var wg sync.WaitGroup
	errs := make([]error, 0, 64)
	var mu sync.Mutex
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := Register(Benchmark{
				Name: fmt.Sprintf("conc-bench-%d", i%8), Suite: "test",
				DefaultThreads: 2, Gen: testGen,
			})
			mu.Lock()
			errs = append(errs, err)
			mu.Unlock()
			ByName("ferret")
			BenchmarkNames()
			ScenarioNames()
			if _, err := ResolveSpec("Sync-2"); err != nil {
				t.Errorf("resolve under concurrency: %v", err)
			}
		}(i)
	}
	wg.Wait()
	okCount := 0
	for _, err := range errs {
		if err == nil {
			okCount++
		}
	}
	// Exactly one registration per distinct name may win.
	if okCount != 8 {
		t.Fatalf("concurrent registration: %d successes, want 8", okCount)
	}
}

func TestUnknownNameErrorsListRegistries(t *testing.T) {
	_, err := SingleProgram("nope", 4, 1)
	if err == nil || !strings.Contains(err.Error(), "registered:") || !strings.Contains(err.Error(), "ferret") {
		t.Fatalf("SingleProgram unknown error must list benchmarks, got %v", err)
	}
	_, err = ResolveSpec("definitely-not-there")
	if err == nil || !strings.Contains(err.Error(), "Sync-2") || !strings.Contains(err.Error(), "ferret") {
		t.Fatalf("ResolveSpec unknown error must list both registries, got %v", err)
	}
}
