package workload

import (
	"fmt"

	"colab/internal/task"
)

// All returns the fifteen benchmarks of Table 3 in paper order, with the
// paper's synchronisation-rate and communication/computation categories.
func All() []Benchmark {
	return []Benchmark{
		{
			Name: "blackscholes", Suite: "parsec",
			SyncRate: RateLow, CommComp: RateHigh,
			DefaultThreads: 4,
			gen:            genBlackscholes,
		},
		{
			Name: "bodytrack", Suite: "parsec",
			SyncRate: RateMedium, CommComp: RateHigh,
			DefaultThreads: 4,
			gen:            genBodytrack,
		},
		{
			Name: "dedup", Suite: "parsec",
			SyncRate: RateMedium, CommComp: RateHigh,
			DefaultThreads: 4,
			gen:            genDedup,
		},
		{
			Name: "ferret", Suite: "parsec",
			SyncRate: RateHigh, CommComp: RateMedium,
			DefaultThreads: 4,
			gen:            genFerret,
		},
		{
			Name: "fluidanimate", Suite: "parsec",
			SyncRate: RateVeryHigh, CommComp: RateLow,
			DefaultThreads: 4,
			gen:            genFluidanimate,
		},
		{
			Name: "freqmine", Suite: "parsec",
			SyncRate: RateHigh, CommComp: RateHigh,
			DefaultThreads: 4,
			gen:            genFreqmine,
		},
		{
			Name: "swaptions", Suite: "parsec",
			SyncRate: RateLow, CommComp: RateLow,
			DefaultThreads: 4,
			gen:            genSwaptions,
		},
		{
			Name: "radix", Suite: "splash2",
			SyncRate: RateLow, CommComp: RateHigh,
			DefaultThreads: 4,
			gen:            genRadix,
		},
		{
			Name: "lu_ncb", Suite: "splash2",
			SyncRate: RateLow, CommComp: RateLow,
			DefaultThreads: 4,
			gen:            genLuNCB,
		},
		{
			Name: "lu_cb", Suite: "splash2",
			SyncRate: RateLow, CommComp: RateLow,
			DefaultThreads: 4,
			gen:            genLuCB,
		},
		{
			Name: "ocean_cp", Suite: "splash2",
			SyncRate: RateLow, CommComp: RateLow,
			DefaultThreads: 4,
			gen:            genOceanCP,
		},
		{
			Name: "water_nsquared", Suite: "splash2",
			SyncRate: RateMedium, CommComp: RateMedium,
			MaxThreads: 2, DefaultThreads: 2,
			gen: genWaterNsquared,
		},
		{
			Name: "water_spatial", Suite: "splash2",
			SyncRate: RateLow, CommComp: RateLow,
			MaxThreads: 2, DefaultThreads: 2,
			gen: genWaterSpatial,
		},
		{
			Name: "fmm", Suite: "splash2",
			SyncRate: RateMedium, CommComp: RateLow,
			MaxThreads: 2, DefaultThreads: 2,
			gen: genFMM,
		},
		{
			Name: "fft", Suite: "splash2",
			SyncRate: RateLow, CommComp: RateHigh,
			DefaultThreads: 4,
			gen:            genFFT,
		},
	}
}

// --- PARSEC ----------------------------------------------------------------

// blackscholes: embarrassingly parallel option pricing over a few
// barrier-separated sweeps; high-ILP FP kernels make every thread strongly
// core-sensitive.
func genBlackscholes(ab *appBuilder, n int) {
	buildDataParallel(ab, n, dpOptions{
		phases:    6,
		phaseWork: 50 * ms,
		imbalance: 0.08,
		profile:   computeProfile,
	})
}

// bodytrack: per-frame fork/join around a serial tracking step on the main
// thread — the main thread is the recurring bottleneck the AMP-aware
// schedulers should accelerate.
func genBodytrack(ab *appBuilder, n int) {
	const frames = 22
	if n == 1 {
		var ops task.Program
		for f := 0; f < frames; f++ {
			ops = append(ops, task.Compute{Work: ab.rng.Jitter(34*ms, 0.1)})
		}
		ab.thread("main", branchyProfile(ab.rng), ops)
		return
	}
	barA, barB := ab.id(), ab.id()
	parallelShare := 30 * ms / float64(n)
	// Main thread: serial stage, release workers, join.
	var main task.Program
	for f := 0; f < frames; f++ {
		main = append(main,
			task.Compute{Work: ab.rng.Jitter(4*ms, 0.15)}, // serial tracking step
			task.Barrier{ID: barA, Parties: n},
			task.Compute{Work: ab.rng.Jitter(parallelShare, 0.1)},
			task.Barrier{ID: barB, Parties: n},
		)
	}
	ab.thread("main", branchyProfile(ab.rng), main)
	for i := 1; i < n; i++ {
		var ops task.Program
		for f := 0; f < frames; f++ {
			ops = append(ops,
				task.Barrier{ID: barA, Parties: n},
				task.Compute{Work: ab.rng.Jitter(parallelShare, 0.1)},
				task.Barrier{ID: barB, Parties: n},
			)
		}
		ab.thread(fmt.Sprintf("w%d", i), balancedProfile(ab.rng), ops)
	}
}

// dedup: the 5-stage deduplication pipeline (fragment, refine, hash,
// compress, reorder) over bounded queues. Stage kernels differ sharply in
// core sensitivity, which is what makes coordinated allocation pay off.
func genDedup(ab *appBuilder, n int) {
	buildPipeline(ab, n, []stageSpec{
		{name: "frag", workItem: 1.2 * ms, profile: memoryProfile},
		{name: "refine", workItem: 2.8 * ms, profile: balancedProfile},
		{name: "hash", workItem: 4.5 * ms, profile: computeProfile},
		{name: "comp", workItem: 3.6 * ms, profile: computeProfile},
		{name: "reorder", workItem: 1.4 * ms, profile: memoryProfile},
	}, 96, 4)
}

// ferret: the 6-stage similarity-search pipeline; the rank stage dominates
// per-item cost (the unbalanced-stage example of §5.2, where COLAB gets its
// largest single-program win).
func genFerret(ab *appBuilder, n int) {
	buildPipeline(ab, n, []stageSpec{
		{name: "load", workItem: 0.9 * ms, profile: memoryProfile},
		{name: "seg", workItem: 2.4 * ms, profile: balancedProfile},
		{name: "extract", workItem: 3.2 * ms, profile: computeProfile},
		{name: "vec", workItem: 2.6 * ms, profile: computeProfile},
		{name: "rank", workItem: 7.5 * ms, profile: computeProfile},
		{name: "out", workItem: 0.8 * ms, profile: memoryProfile},
	}, 90, 4)
}

// fluidanimate: particle simulation with fine-grained cell locks — about
// two orders of magnitude more lock acquisitions than the other PARSEC
// apps (§5.2), hence "very high" sync rate.
func genFluidanimate(ab *appBuilder, n int) {
	buildDataParallel(ab, n, dpOptions{
		phases:     8,
		phaseWork:  30 * ms,
		imbalance:  0.10,
		locksPer:   60,
		csWork:     0.03 * ms,
		lockSpread: 6,
		profile:    balancedProfile,
	})
}

// freqmine: FP-growth mining as a master/worker task queue; branchy tree
// traversal with contended task dispatch.
func genFreqmine(ab *appBuilder, n int) {
	const tasks = 110
	if n == 1 {
		var ops task.Program
		for i := 0; i < tasks; i++ {
			ops = append(ops, task.Compute{Work: ab.rng.Jitter(2.6*ms, 0.5)})
		}
		ab.thread("main", branchyProfile(ab.rng), ops)
		return
	}
	q := ab.queue(8)
	workers := n - 1
	// Master: grows the FP-tree (serial-ish) while feeding the queue.
	var master task.Program
	for i := 0; i < tasks; i++ {
		master = append(master,
			task.Compute{Work: ab.rng.Jitter(0.5*ms, 0.4)},
			task.Put{ID: q},
		)
	}
	ab.thread("master", branchyProfile(ab.rng), master)
	shares := splitShares(tasks, workers)
	for i := 0; i < workers; i++ {
		var ops task.Program
		for k := 0; k < shares[i]; k++ {
			ops = append(ops,
				task.Get{ID: q},
				task.Compute{Work: ab.rng.Jitter(2.4*ms, 0.6)},
			)
		}
		ab.thread(fmt.Sprintf("w%d", i+1), branchyProfile(ab.rng), ops)
	}
}

// swaptions: fully independent Monte-Carlo pricing, no synchronisation at
// all. The heaviest thread is deliberately core-insensitive while the light
// threads are core-sensitive — the paper's ideal-for-WASH case where COLAB
// only matches Linux (§5.2).
func genSwaptions(ab *appBuilder, n int) {
	for i := 0; i < n; i++ {
		work := 70 * ms
		prof := computeProfile(ab.rng)
		if i == 0 {
			work *= 1.6 // bottleneck-by-imbalance
			prof = memoryProfile(ab.rng)
		}
		var ops task.Program
		for k := 0; k < 4; k++ {
			ops = append(ops, task.Compute{Work: ab.rng.Jitter(work/4, 0.1)})
		}
		ab.thread(fmt.Sprintf("w%d", i), prof, ops)
	}
}

// --- SPLASH-2 ---------------------------------------------------------------

// radix: counting/permutation sort rounds; permutation traffic is
// memory-bound (little speedup), with frequent barrier exchanges.
func genRadix(ab *appBuilder, n int) {
	buildDataParallel(ab, n, dpOptions{
		phases:    14,
		phaseWork: 18 * ms,
		imbalance: 0.08,
		profile:   memoryProfile,
	})
}

// lu_ncb: blocked LU without contiguous allocation — poorer locality, more
// memory-bound, shrinking parallel sections as factorisation proceeds.
func genLuNCB(ab *appBuilder, n int) {
	buildDataParallel(ab, n, dpOptions{
		phases:    16,
		phaseWork: 32 * ms,
		imbalance: 0.20,
		decay:     true,
		profile:   memoryProfile,
	})
}

// lu_cb: contiguous-block LU — cache-friendly compute kernels with the
// same shrinking-phase structure.
func genLuCB(ab *appBuilder, n int) {
	buildDataParallel(ab, n, dpOptions{
		phases:    16,
		phaseWork: 30 * ms,
		imbalance: 0.20,
		decay:     true,
		profile:   computeProfile,
	})
}

// ocean_cp: red-black Gauss-Seidel time steps on grids; bandwidth-bound
// with many short barrier-separated sweeps.
func genOceanCP(ab *appBuilder, n int) {
	buildDataParallel(ab, n, dpOptions{
		phases:    20,
		phaseWork: 15 * ms,
		imbalance: 0.06,
		profile:   memoryProfile,
	})
}

// water_nsquared: O(n^2) molecular dynamics with per-molecule locks each
// step (medium sync). Limited to 2 threads under simsmall.
func genWaterNsquared(ab *appBuilder, n int) {
	buildDataParallel(ab, n, dpOptions{
		phases:     6,
		phaseWork:  40 * ms,
		imbalance:  0.10,
		locksPer:   12,
		csWork:     0.08 * ms,
		lockSpread: 4,
		profile:    computeProfile,
	})
}

// water_spatial: spatial-decomposition water — same physics, barriers only
// (low sync). Limited to 2 threads under simsmall.
func genWaterSpatial(ab *appBuilder, n int) {
	buildDataParallel(ab, n, dpOptions{
		phases:    6,
		phaseWork: 40 * ms,
		imbalance: 0.12,
		locksPer:  2,
		csWork:    0.05 * ms,
		profile:   computeProfile,
	})
}

// fmm: adaptive fast multipole — tree imbalance skews the leader thread,
// moderate locking. Limited to 2 threads under simsmall.
func genFMM(ab *appBuilder, n int) {
	buildDataParallel(ab, n, dpOptions{
		phases:     6,
		phaseWork:  38 * ms,
		imbalance:  0.18,
		skewFirst:  1.35,
		locksPer:   6,
		csWork:     0.06 * ms,
		lockSpread: 3,
		profile:    balancedProfile,
	})
}

// fft: six-step FFT alternating compute butterflies with all-to-all
// transposes. The transposes are genuine phase changes: each thread flips
// between a compute-bound and a memory-bound profile, which is exactly the
// behaviour that forces the speedup model to predict from fresh interval
// counters rather than lifetime averages.
func genFFT(ab *appBuilder, n int) {
	bar := ab.id()
	const steps = 5
	for i := 0; i < n; i++ {
		butterfly := computeProfile(ab.rng)
		transpose := memoryProfile(ab.rng)
		var ops task.Program
		for s := 0; s < steps; s++ {
			ops = append(ops,
				task.Phase{Profile: butterfly},
				task.Compute{Work: ab.rng.Jitter(28*ms, 0.07)})
			if n > 1 {
				ops = append(ops, task.Barrier{ID: bar, Parties: n})
			}
			ops = append(ops,
				task.Phase{Profile: transpose},
				task.Compute{Work: ab.rng.Jitter(14*ms, 0.07)})
			if n > 1 {
				ops = append(ops, task.Barrier{ID: bar, Parties: n})
			}
		}
		ab.thread(fmt.Sprintf("w%d", i), butterfly, ops)
	}
}
