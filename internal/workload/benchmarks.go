package workload

import (
	"fmt"

	"colab/internal/task"
)

// builtinBenchmarks is the Table 3 set in paper order, with the paper's
// synchronisation-rate and communication/computation categories. All of the
// generators are expressed through the public Builder surface — they are
// reference users of the same authoring API custom benchmarks register
// against.
func builtinBenchmarks() []Benchmark {
	return []Benchmark{
		{
			Name: "blackscholes", Suite: "parsec",
			SyncRate: RateLow, CommComp: RateHigh,
			DefaultThreads: 4,
			Gen:            genBlackscholes,
		},
		{
			Name: "bodytrack", Suite: "parsec",
			SyncRate: RateMedium, CommComp: RateHigh,
			DefaultThreads: 4,
			Gen:            genBodytrack,
		},
		{
			Name: "dedup", Suite: "parsec",
			SyncRate: RateMedium, CommComp: RateHigh,
			DefaultThreads: 4,
			Gen:            genDedup,
		},
		{
			Name: "ferret", Suite: "parsec",
			SyncRate: RateHigh, CommComp: RateMedium,
			DefaultThreads: 4,
			Gen:            genFerret,
		},
		{
			Name: "fluidanimate", Suite: "parsec",
			SyncRate: RateVeryHigh, CommComp: RateLow,
			DefaultThreads: 4,
			Gen:            genFluidanimate,
		},
		{
			Name: "freqmine", Suite: "parsec",
			SyncRate: RateHigh, CommComp: RateHigh,
			DefaultThreads: 4,
			Gen:            genFreqmine,
		},
		{
			Name: "swaptions", Suite: "parsec",
			SyncRate: RateLow, CommComp: RateLow,
			DefaultThreads: 4,
			Gen:            genSwaptions,
		},
		{
			Name: "radix", Suite: "splash2",
			SyncRate: RateLow, CommComp: RateHigh,
			DefaultThreads: 4,
			Gen:            genRadix,
		},
		{
			Name: "lu_ncb", Suite: "splash2",
			SyncRate: RateLow, CommComp: RateLow,
			DefaultThreads: 4,
			Gen:            genLuNCB,
		},
		{
			Name: "lu_cb", Suite: "splash2",
			SyncRate: RateLow, CommComp: RateLow,
			DefaultThreads: 4,
			Gen:            genLuCB,
		},
		{
			Name: "ocean_cp", Suite: "splash2",
			SyncRate: RateLow, CommComp: RateLow,
			DefaultThreads: 4,
			Gen:            genOceanCP,
		},
		{
			Name: "water_nsquared", Suite: "splash2",
			SyncRate: RateMedium, CommComp: RateMedium,
			MaxThreads: 2, DefaultThreads: 2,
			Gen: genWaterNsquared,
		},
		{
			Name: "water_spatial", Suite: "splash2",
			SyncRate: RateLow, CommComp: RateLow,
			MaxThreads: 2, DefaultThreads: 2,
			Gen: genWaterSpatial,
		},
		{
			Name: "fmm", Suite: "splash2",
			SyncRate: RateMedium, CommComp: RateLow,
			MaxThreads: 2, DefaultThreads: 2,
			Gen: genFMM,
		},
		{
			Name: "fft", Suite: "splash2",
			SyncRate: RateLow, CommComp: RateHigh,
			DefaultThreads: 4,
			Gen:            genFFT,
		},
	}
}

// --- PARSEC ----------------------------------------------------------------

// blackscholes: embarrassingly parallel option pricing over a few
// barrier-separated sweeps; high-ILP FP kernels make every thread strongly
// core-sensitive.
func genBlackscholes(b *Builder, n int) {
	b.DataParallel(n, DataParallelOptions{
		Phases:    6,
		PhaseWork: 50 * ms,
		Imbalance: 0.08,
		Profile:   ComputeProfile,
	})
}

// bodytrack: per-frame fork/join around a serial tracking step on the main
// thread — the main thread is the recurring bottleneck the AMP-aware
// schedulers should accelerate.
func genBodytrack(b *Builder, n int) {
	const frames = 22
	rng := b.RNG()
	if n == 1 {
		var ops task.Program
		for f := 0; f < frames; f++ {
			ops = append(ops, task.Compute{Work: rng.Jitter(34*ms, 0.1)})
		}
		b.Thread("main", BranchyProfile(rng), ops)
		return
	}
	barA, barB := b.NewID(), b.NewID()
	parallelShare := 30 * ms / float64(n)
	// Main thread: serial stage, release workers, join.
	var main task.Program
	for f := 0; f < frames; f++ {
		main = append(main,
			task.Compute{Work: rng.Jitter(4*ms, 0.15)}, // serial tracking step
			task.Barrier{ID: barA, Parties: n},
			task.Compute{Work: rng.Jitter(parallelShare, 0.1)},
			task.Barrier{ID: barB, Parties: n},
		)
	}
	b.Thread("main", BranchyProfile(rng), main)
	for i := 1; i < n; i++ {
		var ops task.Program
		for f := 0; f < frames; f++ {
			ops = append(ops,
				task.Barrier{ID: barA, Parties: n},
				task.Compute{Work: rng.Jitter(parallelShare, 0.1)},
				task.Barrier{ID: barB, Parties: n},
			)
		}
		b.Thread(fmt.Sprintf("w%d", i), BalancedProfile(rng), ops)
	}
}

// dedup: the 5-stage deduplication pipeline (fragment, refine, hash,
// compress, reorder) over bounded queues. Stage kernels differ sharply in
// core sensitivity, which is what makes coordinated allocation pay off.
func genDedup(b *Builder, n int) {
	b.Pipeline(n, []PipeStage{
		{Name: "frag", WorkItem: 1.2 * ms, Profile: MemoryProfile},
		{Name: "refine", WorkItem: 2.8 * ms, Profile: BalancedProfile},
		{Name: "hash", WorkItem: 4.5 * ms, Profile: ComputeProfile},
		{Name: "comp", WorkItem: 3.6 * ms, Profile: ComputeProfile},
		{Name: "reorder", WorkItem: 1.4 * ms, Profile: MemoryProfile},
	}, 96, 4)
}

// ferret: the 6-stage similarity-search pipeline; the rank stage dominates
// per-item cost (the unbalanced-stage example of §5.2, where COLAB gets its
// largest single-program win).
func genFerret(b *Builder, n int) {
	b.Pipeline(n, []PipeStage{
		{Name: "load", WorkItem: 0.9 * ms, Profile: MemoryProfile},
		{Name: "seg", WorkItem: 2.4 * ms, Profile: BalancedProfile},
		{Name: "extract", WorkItem: 3.2 * ms, Profile: ComputeProfile},
		{Name: "vec", WorkItem: 2.6 * ms, Profile: ComputeProfile},
		{Name: "rank", WorkItem: 7.5 * ms, Profile: ComputeProfile},
		{Name: "out", WorkItem: 0.8 * ms, Profile: MemoryProfile},
	}, 90, 4)
}

// fluidanimate: particle simulation with fine-grained cell locks — about
// two orders of magnitude more lock acquisitions than the other PARSEC
// apps (§5.2), hence "very high" sync rate.
func genFluidanimate(b *Builder, n int) {
	b.DataParallel(n, DataParallelOptions{
		Phases:     8,
		PhaseWork:  30 * ms,
		Imbalance:  0.10,
		LocksPer:   60,
		CSWork:     0.03 * ms,
		LockSpread: 6,
		Profile:    BalancedProfile,
	})
}

// freqmine: FP-growth mining as a master/worker task queue; branchy tree
// traversal with contended task dispatch.
func genFreqmine(b *Builder, n int) {
	const tasks = 110
	rng := b.RNG()
	if n == 1 {
		var ops task.Program
		for i := 0; i < tasks; i++ {
			ops = append(ops, task.Compute{Work: rng.Jitter(2.6*ms, 0.5)})
		}
		b.Thread("main", BranchyProfile(rng), ops)
		return
	}
	q := b.Queue(8)
	workers := n - 1
	// Master: grows the FP-tree (serial-ish) while feeding the queue.
	var master task.Program
	for i := 0; i < tasks; i++ {
		master = append(master,
			task.Compute{Work: rng.Jitter(0.5*ms, 0.4)},
			task.Put{ID: q},
		)
	}
	b.Thread("master", BranchyProfile(rng), master)
	shares := splitShares(tasks, workers)
	for i := 0; i < workers; i++ {
		var ops task.Program
		for k := 0; k < shares[i]; k++ {
			ops = append(ops,
				task.Get{ID: q},
				task.Compute{Work: rng.Jitter(2.4*ms, 0.6)},
			)
		}
		b.Thread(fmt.Sprintf("w%d", i+1), BranchyProfile(rng), ops)
	}
}

// swaptions: fully independent Monte-Carlo pricing, no synchronisation at
// all. The heaviest thread is deliberately core-insensitive while the light
// threads are core-sensitive — the paper's ideal-for-WASH case where COLAB
// only matches Linux (§5.2).
func genSwaptions(b *Builder, n int) {
	rng := b.RNG()
	for i := 0; i < n; i++ {
		work := 70 * ms
		prof := ComputeProfile(rng)
		if i == 0 {
			work *= 1.6 // bottleneck-by-imbalance
			prof = MemoryProfile(rng)
		}
		var ops task.Program
		for k := 0; k < 4; k++ {
			ops = append(ops, task.Compute{Work: rng.Jitter(work/4, 0.1)})
		}
		b.Thread(fmt.Sprintf("w%d", i), prof, ops)
	}
}

// --- SPLASH-2 ---------------------------------------------------------------

// radix: counting/permutation sort rounds; permutation traffic is
// memory-bound (little speedup), with frequent barrier exchanges.
func genRadix(b *Builder, n int) {
	b.DataParallel(n, DataParallelOptions{
		Phases:    14,
		PhaseWork: 18 * ms,
		Imbalance: 0.08,
		Profile:   MemoryProfile,
	})
}

// lu_ncb: blocked LU without contiguous allocation — poorer locality, more
// memory-bound, shrinking parallel sections as factorisation proceeds.
func genLuNCB(b *Builder, n int) {
	b.DataParallel(n, DataParallelOptions{
		Phases:    16,
		PhaseWork: 32 * ms,
		Imbalance: 0.20,
		Decay:     true,
		Profile:   MemoryProfile,
	})
}

// lu_cb: contiguous-block LU — cache-friendly compute kernels with the
// same shrinking-phase structure.
func genLuCB(b *Builder, n int) {
	b.DataParallel(n, DataParallelOptions{
		Phases:    16,
		PhaseWork: 30 * ms,
		Imbalance: 0.20,
		Decay:     true,
		Profile:   ComputeProfile,
	})
}

// ocean_cp: red-black Gauss-Seidel time steps on grids; bandwidth-bound
// with many short barrier-separated sweeps.
func genOceanCP(b *Builder, n int) {
	b.DataParallel(n, DataParallelOptions{
		Phases:    20,
		PhaseWork: 15 * ms,
		Imbalance: 0.06,
		Profile:   MemoryProfile,
	})
}

// water_nsquared: O(n^2) molecular dynamics with per-molecule locks each
// step (medium sync). Limited to 2 threads under simsmall.
func genWaterNsquared(b *Builder, n int) {
	b.DataParallel(n, DataParallelOptions{
		Phases:     6,
		PhaseWork:  40 * ms,
		Imbalance:  0.10,
		LocksPer:   12,
		CSWork:     0.08 * ms,
		LockSpread: 4,
		Profile:    ComputeProfile,
	})
}

// water_spatial: spatial-decomposition water — same physics, barriers only
// (low sync). Limited to 2 threads under simsmall.
func genWaterSpatial(b *Builder, n int) {
	b.DataParallel(n, DataParallelOptions{
		Phases:    6,
		PhaseWork: 40 * ms,
		Imbalance: 0.12,
		LocksPer:  2,
		CSWork:    0.05 * ms,
		Profile:   ComputeProfile,
	})
}

// fmm: adaptive fast multipole — tree imbalance skews the leader thread,
// moderate locking. Limited to 2 threads under simsmall.
func genFMM(b *Builder, n int) {
	b.DataParallel(n, DataParallelOptions{
		Phases:     6,
		PhaseWork:  38 * ms,
		Imbalance:  0.18,
		SkewFirst:  1.35,
		LocksPer:   6,
		CSWork:     0.06 * ms,
		LockSpread: 3,
		Profile:    BalancedProfile,
	})
}

// fft: six-step FFT alternating compute butterflies with all-to-all
// transposes. The transposes are genuine phase changes: each thread flips
// between a compute-bound and a memory-bound profile, which is exactly the
// behaviour that forces the speedup model to predict from fresh interval
// counters rather than lifetime averages.
func genFFT(b *Builder, n int) {
	bar := b.NewID()
	rng := b.RNG()
	const steps = 5
	for i := 0; i < n; i++ {
		butterfly := ComputeProfile(rng)
		transpose := MemoryProfile(rng)
		var ops task.Program
		for s := 0; s < steps; s++ {
			ops = append(ops,
				task.Phase{Profile: butterfly},
				task.Compute{Work: rng.Jitter(28*ms, 0.07)})
			if n > 1 {
				ops = append(ops, task.Barrier{ID: bar, Parties: n})
			}
			ops = append(ops,
				task.Phase{Profile: transpose},
				task.Compute{Work: rng.Jitter(14*ms, 0.07)})
			if n > 1 {
				ops = append(ops, task.Barrier{ID: bar, Parties: n})
			}
		}
		b.Thread(fmt.Sprintf("w%d", i), butterfly, ops)
	}
}
