package workload

// The scenario grammar: the string form accepted everywhere a workload is
// named (BuildWorkload, Experiment.WithWorkloads, the cmd tools).
//
//	spec  := term ("+" term)*
//	term  := name [":" threads] ["*" copies] modifier*
//	mod   := "@seed=" uint64
//	       | "@arrive=" arrival
//
// name resolves against the scenario registry first (Table 4 indices and
// user scenarios), then the benchmark registry ("ferret:4"); a benchmark
// without ":threads" uses its DefaultThreads, and "*copies" replicates the
// instance into that many apps (how an arrival process becomes a stream).
// Arrival processes apply per term, to each of its apps:
//
//	arrival := duration                  fixed offset ("10ms")
//	         | "fixed(" duration ")"
//	         | "uniform(" lo "," hi ")"  each app uniform in [lo, hi)
//	         | "poisson(" mean ")"       cumulative exponential gaps
//	         | "trace(" d ["," d]* ")"   replayed times, k-th app at d_k
//	                                     (count must match the app count)
//
// Durations are a number with an optional unit suffix: ns (default), us,
// ms, s. Examples:
//
//	"ferret:4+bodytrack:8"
//	"Sync-2@seed=7"
//	"ferret:2*8@arrive=poisson(5ms)+blackscholes:4"
//	"dedup:4*3@arrive=trace(0,10ms,25ms)"

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"colab/internal/sim"
)

// maxSpecThreads bounds per-app thread counts accepted by the grammar; it
// protects against accidental (or fuzzed) million-thread scenarios while
// staying far above every paper composition.
const maxSpecThreads = 4096

// maxSpecCopies bounds the "*copies" replication factor.
const maxSpecCopies = 1024

// ParseSpec parses a scenario string. Registered scenario names resolve
// through the registry ("Sync-2" is a valid spec); otherwise the grammar
// above applies. The returned spec's Name is the input's canonical form,
// so equal scenarios share result keys regardless of spacing.
func ParseSpec(input string) (Spec, error) {
	s := strings.TrimSpace(input)
	if s == "" {
		return Spec{}, fmt.Errorf("workload: empty scenario spec")
	}
	parts, err := splitTop(s, '+')
	if err != nil {
		return Spec{}, fmt.Errorf("workload: spec %q: %w", input, err)
	}
	var spec Spec
	for _, part := range parts {
		terms, err := parseTerm(part)
		if err != nil {
			return Spec{}, fmt.Errorf("workload: spec %q: %w", input, err)
		}
		spec.Terms = append(spec.Terms, terms...)
	}
	spec.Name = spec.Canonical()
	return spec, nil
}

// parseTerm parses one "+"-separated part. A reference to a registered
// scenario whose own terms are unmodified collapses into a single term
// (rendered by its name); a reference to a scenario that carries its own
// modifiers inlines that scenario's terms and accepts no outer modifiers.
func parseTerm(part string) ([]Term, error) {
	fields, err := splitTop(part, '@')
	if err != nil {
		return nil, err
	}
	head := strings.TrimSpace(fields[0])
	if head == "" {
		return nil, fmt.Errorf("empty term %q", part)
	}
	head, copiesStr, hasCopies := strings.Cut(head, "*")
	copies := 1
	if hasCopies {
		v, err := strconv.Atoi(strings.TrimSpace(copiesStr))
		if err != nil {
			return nil, fmt.Errorf("bad replication count %q in %q", copiesStr, part)
		}
		if v < 1 || v > maxSpecCopies {
			return nil, fmt.Errorf("replication count %d in %q out of range [1, %d]", v, part, maxSpecCopies)
		}
		copies = v
	}
	name, threadsStr, hasThreads := strings.Cut(head, ":")
	name = strings.TrimSpace(name)
	var term Term
	if ref, ok := ScenarioByName(name); ok {
		if hasThreads {
			return nil, fmt.Errorf("scenario reference %q takes no thread count", name)
		}
		if hasCopies {
			return nil, fmt.Errorf("scenario reference %q takes no replication count", name)
		}
		plain := true
		for _, t := range ref.Terms {
			if t.modified() {
				plain = false
			}
		}
		if !plain {
			if len(fields) > 1 {
				return nil, fmt.Errorf("scenario %q carries its own modifiers and cannot be modified again", name)
			}
			return append([]Term(nil), ref.Terms...), nil
		}
		term.Source = name
		for _, t := range ref.Terms {
			term.Apps = append(term.Apps, t.Apps...)
		}
	} else if b, ok := ByName(name); ok {
		n := b.DefaultThreads
		if hasThreads {
			v, err := strconv.Atoi(strings.TrimSpace(threadsStr))
			if err != nil {
				return nil, fmt.Errorf("bad thread count %q for benchmark %q", threadsStr, name)
			}
			if v < 1 || v > maxSpecThreads {
				return nil, fmt.Errorf("thread count %d for benchmark %q out of range [1, %d]", v, name, maxSpecThreads)
			}
			n = v
		}
		for i := 0; i < copies; i++ {
			term.Apps = append(term.Apps, AppSpec{Bench: name, Threads: n})
		}
	} else {
		return nil, unknownNameError(name)
	}
	for _, mod := range fields[1:] {
		key, value, ok := strings.Cut(mod, "=")
		key, value = strings.TrimSpace(key), strings.TrimSpace(value)
		if !ok || value == "" {
			return nil, fmt.Errorf("bad modifier %q (want @key=value)", "@"+mod)
		}
		switch key {
		case "seed":
			if term.HasSeed {
				return nil, fmt.Errorf("term %q sets @seed twice", part)
			}
			v, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad seed %q", value)
			}
			term.Seed, term.HasSeed = v, true
		case "arrive":
			if term.Arrival.Kind != ArriveClosed {
				return nil, fmt.Errorf("term %q sets @arrive twice", part)
			}
			a, err := parseArrival(value)
			if err != nil {
				return nil, fmt.Errorf("bad arrival %q: %w", value, err)
			}
			term.Arrival = a
		default:
			return nil, fmt.Errorf("unknown modifier %q (modifiers: seed, arrive)", key)
		}
	}
	return []Term{term}, nil
}

// parseArrival parses an arrival expression.
func parseArrival(s string) (Arrival, error) {
	fn, args, ok := splitCall(s)
	if !ok {
		// Bare duration: fixed offset.
		d, err := parseDur(s)
		if err != nil {
			return Arrival{}, err
		}
		return Arrival{Kind: ArriveFixed, At: d}, nil
	}
	switch fn {
	case "fixed":
		if len(args) != 1 {
			return Arrival{}, fmt.Errorf("fixed takes one duration, got %d args", len(args))
		}
		d, err := parseDur(args[0])
		if err != nil {
			return Arrival{}, err
		}
		return Arrival{Kind: ArriveFixed, At: d}, nil
	case "uniform":
		if len(args) != 2 {
			return Arrival{}, fmt.Errorf("uniform takes (lo, hi), got %d args", len(args))
		}
		lo, err := parseDur(args[0])
		if err != nil {
			return Arrival{}, err
		}
		hi, err := parseDur(args[1])
		if err != nil {
			return Arrival{}, err
		}
		if hi < lo {
			return Arrival{}, fmt.Errorf("uniform window [%v, %v) is inverted", lo, hi)
		}
		return Arrival{Kind: ArriveUniform, Lo: lo, Hi: hi}, nil
	case "poisson":
		if len(args) != 1 {
			return Arrival{}, fmt.Errorf("poisson takes one mean gap, got %d args", len(args))
		}
		mean, err := parseDur(args[0])
		if err != nil {
			return Arrival{}, err
		}
		if mean <= 0 {
			return Arrival{}, fmt.Errorf("poisson mean gap must be positive, got %v", mean)
		}
		return Arrival{Kind: ArrivePoisson, Mean: mean}, nil
	case "trace":
		if len(args) == 0 {
			return Arrival{}, fmt.Errorf("trace needs at least one time")
		}
		times := make([]sim.Time, len(args))
		for i, a := range args {
			d, err := parseDur(a)
			if err != nil {
				return Arrival{}, err
			}
			times[i] = d
		}
		return Arrival{Kind: ArriveTrace, Times: times}, nil
	default:
		return Arrival{}, fmt.Errorf("unknown arrival process %q (want a duration, fixed, uniform, poisson or trace)", fn)
	}
}

// splitCall recognises "fn(a, b, ...)" forms; ok is false for anything
// else (bare durations).
func splitCall(s string) (fn string, args []string, ok bool) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", nil, false
	}
	fn = strings.TrimSpace(s[:open])
	inner := s[open+1 : len(s)-1]
	if strings.ContainsAny(inner, "()") {
		return "", nil, false
	}
	if strings.TrimSpace(inner) == "" {
		return fn, nil, true
	}
	for _, a := range strings.Split(inner, ",") {
		args = append(args, strings.TrimSpace(a))
	}
	return fn, args, true
}

// splitTop splits s on sep outside parentheses.
func splitTop(s string, sep byte) ([]string, error) {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("unbalanced ')' at byte %d", i)
			}
		case sep:
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("unbalanced '('")
	}
	return append(out, s[start:]), nil
}

// parseDur parses a simulated duration: a non-negative number with an
// optional unit suffix (ns when omitted).
func parseDur(s string) (sim.Time, error) {
	s = strings.TrimSpace(s)
	unit := float64(1)
	switch {
	case strings.HasSuffix(s, "ns"):
		s = s[:len(s)-2]
	case strings.HasSuffix(s, "us"):
		s, unit = s[:len(s)-2], float64(sim.Microsecond)
	case strings.HasSuffix(s, "µs"):
		s, unit = strings.TrimSuffix(s, "µs"), float64(sim.Microsecond)
	case strings.HasSuffix(s, "ms"):
		s, unit = s[:len(s)-2], float64(sim.Millisecond)
	case strings.HasSuffix(s, "s"):
		s, unit = s[:len(s)-1], float64(sim.Second)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	ns := v * unit
	if ns > math.MaxInt64/4 {
		return 0, fmt.Errorf("duration %q too large", s)
	}
	return sim.Time(ns), nil
}

// formatDur renders a duration in the largest exact unit.
func formatDur(t sim.Time) string {
	switch {
	case t != 0 && t%sim.Second == 0:
		return fmt.Sprintf("%ds", t/sim.Second)
	case t != 0 && t%sim.Millisecond == 0:
		return fmt.Sprintf("%dms", t/sim.Millisecond)
	case t != 0 && t%sim.Microsecond == 0:
		return fmt.Sprintf("%dus", t/sim.Microsecond)
	default:
		return fmt.Sprintf("%dns", t)
	}
}

// String renders the arrival expression in grammar form.
func (a Arrival) String() string {
	switch a.Kind {
	case ArriveClosed:
		return ""
	case ArriveFixed:
		return formatDur(a.At)
	case ArriveUniform:
		return fmt.Sprintf("uniform(%s,%s)", formatDur(a.Lo), formatDur(a.Hi))
	case ArrivePoisson:
		return fmt.Sprintf("poisson(%s)", formatDur(a.Mean))
	case ArriveTrace:
		parts := make([]string, len(a.Times))
		for i, t := range a.Times {
			parts[i] = formatDur(t)
		}
		return fmt.Sprintf("trace(%s)", strings.Join(parts, ","))
	default:
		return string(a.Kind)
	}
}

// Canonical renders the spec in normalised grammar form: parsing the
// result yields an equal spec, and equal specs render identically.
func (s Spec) Canonical() string {
	var parts []string
	for _, t := range s.Terms {
		var sb strings.Builder
		appStr := func(a AppSpec) string {
			if a.Threads <= 0 {
				return a.Bench
			}
			return fmt.Sprintf("%s:%d", a.Bench, a.Threads)
		}
		uniform := len(t.Apps) > 1
		for _, a := range t.Apps {
			if a != t.Apps[0] {
				uniform = false
			}
		}
		switch {
		case t.Source != "":
			sb.WriteString(t.Source)
		case len(t.Apps) == 1:
			sb.WriteString(appStr(t.Apps[0]))
		case uniform:
			// Replicated benchmark instance ("*copies").
			fmt.Fprintf(&sb, "%s*%d", appStr(t.Apps[0]), len(t.Apps))
		default:
			// Unreachable from the grammar (anonymous mixed-app terms can
			// only be built programmatically): render the app list.
			var names []string
			for _, a := range t.Apps {
				names = append(names, appStr(a))
			}
			sb.WriteString(strings.Join(names, "+"))
		}
		if t.HasSeed {
			fmt.Fprintf(&sb, "@seed=%d", t.Seed)
		}
		if t.Arrival.Kind != ArriveClosed {
			fmt.Fprintf(&sb, "@arrive=%s", t.Arrival)
		}
		parts = append(parts, sb.String())
	}
	return strings.Join(parts, "+")
}

// String implements fmt.Stringer as the canonical grammar form.
func (s Spec) String() string { return s.Canonical() }

// ResolveSpec resolves a workload name the way every consumer does: a
// registered scenario name resolves through the registry (keeping its
// registered name as the result key), anything else parses as a grammar
// spec. Unknown names error with the registered inventories.
func ResolveSpec(name string) (Spec, error) {
	trimmed := strings.TrimSpace(name)
	if s, ok := ScenarioByName(trimmed); ok {
		return s, nil
	}
	return ParseSpec(name)
}
