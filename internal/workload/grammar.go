package workload

// The scenario grammar: the string form accepted everywhere a workload is
// named (BuildWorkload, Experiment.WithWorkloads, the cmd tools).
//
//	spec  := term ("+" term)*
//	term  := name [":" threads] ["*" copies] modifier*
//	mod   := "@seed=" uint64
//	       | "@arrive=" arrival
//	       | "@load=" loadgen          (global: at most once per spec)
//	       | "@class=" label           (global: at most once per spec)
//
// name resolves against the scenario registry first (Table 4 indices and
// user scenarios), then the benchmark registry ("ferret:4"); a benchmark
// without ":threads" uses its DefaultThreads, and "*copies" replicates the
// instance into that many apps (how an arrival process becomes a stream).
// Arrival processes apply per term, to each of its apps:
//
//	arrival := duration                  fixed offset ("10ms")
//	         | "fixed(" duration ")"
//	         | "uniform(" lo "," hi ")"  each app uniform in [lo, hi)
//	         | "poisson(" mean ")"       cumulative exponential gaps
//	         | "trace(" d ["," d]* ")"   replayed times, k-th app at d_k
//	                                     (count must match the app count)
//	         | "tracefile(" path ["," "sha256=" hex] ")"
//	                                     times replayed from a trace file
//	                                     (docs/TRACE_FORMAT.md); canonical
//	                                     form pins the content digest
//
// Load generators (@load=) and the class label (@class=) are spec-global:
// they may be written on any term but apply to the whole scenario, and
// the canonical form renders them once, at the end:
//
//	loadgen := "util(" target ")"            open-loop target utilisation
//	         | "closed(think=" duration ")"  closed-loop think time
//	         | "diurnal(" period "," peak ")"     sinusoidal rate envelope
//	         | "burst(" period "," duty "," factor ")"  square-wave envelope
//
// Durations are a number with an optional unit suffix: ns (default), us,
// ms, s. Examples:
//
//	"ferret:4+bodytrack:8"
//	"Sync-2@seed=7"
//	"ferret:2*8@arrive=poisson(5ms)+blackscholes:4"
//	"dedup:4*3@arrive=trace(0,10ms,25ms)"
//	"dedup:4*3@arrive=tracefile(testdata/day.trace)"
//	"ferret:2*8@arrive=poisson(5ms)@load=diurnal(40ms,3)@class=interactive"
//	"fft:2*4@load=util(0.6)@class=batch"

import (
	"fmt"
	"strconv"
	"strings"

	"colab/internal/loadgen"
	"colab/internal/sim"
)

// maxSpecThreads bounds per-app thread counts accepted by the grammar; it
// protects against accidental (or fuzzed) million-thread scenarios while
// staying far above every paper composition.
const maxSpecThreads = 4096

// maxSpecCopies bounds the "*copies" replication factor.
const maxSpecCopies = 1024

// ParseSpec parses a scenario string. Registered scenario names resolve
// through the registry ("Sync-2" is a valid spec); otherwise the grammar
// above applies. The returned spec's Name is the input's canonical form,
// so equal scenarios share result keys regardless of spacing.
func ParseSpec(input string) (Spec, error) {
	s := strings.TrimSpace(input)
	if s == "" {
		return Spec{}, fmt.Errorf("workload: empty scenario spec")
	}
	parts, err := splitTop(s, '+')
	if err != nil {
		return Spec{}, fmt.Errorf("workload: spec %q: %w", input, err)
	}
	var spec Spec
	for _, part := range parts {
		p, err := parseTerm(part)
		if err != nil {
			return Spec{}, fmt.Errorf("workload: spec %q: %w", input, err)
		}
		spec.Terms = append(spec.Terms, p.terms...)
		if p.load.Kind != loadgen.None {
			if spec.Load.Kind != loadgen.None {
				return Spec{}, fmt.Errorf("workload: spec %q sets @load twice (@load is spec-global)", input)
			}
			spec.Load = p.load
		}
		if p.class != "" {
			if spec.Class != "" {
				return Spec{}, fmt.Errorf("workload: spec %q sets @class twice (@class is spec-global)", input)
			}
			spec.Class = p.class
		}
	}
	if err := spec.CheckLoad(); err != nil {
		return Spec{}, fmt.Errorf("workload: spec %q: %w", input, err)
	}
	spec.Name = spec.Canonical()
	return spec, nil
}

// parsedTerm is one parsed "+"-separated part: its terms plus any
// spec-global clauses (@load=, @class=) written on it — or inherited from
// a referenced scenario — for ParseSpec to hoist.
type parsedTerm struct {
	terms []Term
	load  loadgen.Load
	class Class
}

// parseTerm parses one "+"-separated part. A reference to a registered
// scenario whose own terms, load and class are unmodified collapses into
// a single term (rendered by its name); a reference to a scenario that
// carries its own modifiers inlines that scenario's terms — propagating
// its load and class for ParseSpec to hoist — and accepts no outer
// modifiers.
func parseTerm(part string) (parsedTerm, error) {
	var p parsedTerm
	fields, err := splitTop(part, '@')
	if err != nil {
		return p, err
	}
	head := strings.TrimSpace(fields[0])
	if head == "" {
		return p, fmt.Errorf("empty term %q", part)
	}
	head, copiesStr, hasCopies := strings.Cut(head, "*")
	copies := 1
	if hasCopies {
		v, err := strconv.Atoi(strings.TrimSpace(copiesStr))
		if err != nil {
			return p, fmt.Errorf("bad replication count %q in %q", copiesStr, part)
		}
		if v < 1 || v > maxSpecCopies {
			return p, fmt.Errorf("replication count %d in %q out of range [1, %d]", v, part, maxSpecCopies)
		}
		copies = v
	}
	name, threadsStr, hasThreads := strings.Cut(head, ":")
	name = strings.TrimSpace(name)
	var term Term
	if ref, ok := ScenarioByName(name); ok {
		if hasThreads {
			return p, fmt.Errorf("scenario reference %q takes no thread count", name)
		}
		if hasCopies {
			return p, fmt.Errorf("scenario reference %q takes no replication count", name)
		}
		plain := ref.Load.Kind == loadgen.None && ref.Class == ""
		for _, t := range ref.Terms {
			if t.modified() {
				plain = false
			}
		}
		if !plain {
			if len(fields) > 1 {
				return p, fmt.Errorf("scenario %q carries its own modifiers and cannot be modified again", name)
			}
			p.terms = append([]Term(nil), ref.Terms...)
			p.load, p.class = ref.Load, ref.Class
			return p, nil
		}
		term.Source = name
		for _, t := range ref.Terms {
			term.Apps = append(term.Apps, t.Apps...)
		}
	} else if b, ok := ByName(name); ok {
		n := b.DefaultThreads
		if hasThreads {
			v, err := strconv.Atoi(strings.TrimSpace(threadsStr))
			if err != nil {
				return p, fmt.Errorf("bad thread count %q for benchmark %q", threadsStr, name)
			}
			if v < 1 || v > maxSpecThreads {
				return p, fmt.Errorf("thread count %d for benchmark %q out of range [1, %d]", v, name, maxSpecThreads)
			}
			n = v
		}
		for i := 0; i < copies; i++ {
			term.Apps = append(term.Apps, AppSpec{Bench: name, Threads: n})
		}
	} else {
		return p, unknownNameError(name)
	}
	for _, mod := range fields[1:] {
		key, value, ok := strings.Cut(mod, "=")
		key, value = strings.TrimSpace(key), strings.TrimSpace(value)
		if !ok || value == "" {
			return p, fmt.Errorf("bad modifier %q (want @key=value)", "@"+mod)
		}
		switch key {
		case "seed":
			if term.HasSeed {
				return p, fmt.Errorf("term %q sets @seed twice", part)
			}
			v, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				return p, fmt.Errorf("bad seed %q", value)
			}
			term.Seed, term.HasSeed = v, true
		case "arrive":
			if term.Arrival.Kind != ArriveClosed {
				return p, fmt.Errorf("term %q sets @arrive twice", part)
			}
			a, err := parseArrival(value)
			if err != nil {
				return p, fmt.Errorf("bad arrival %q: %w", value, err)
			}
			term.Arrival = a
		case "load":
			if p.load.Kind != loadgen.None {
				return p, fmt.Errorf("term %q sets @load twice", part)
			}
			fn, args, ok := splitCall(value)
			if !ok {
				return p, fmt.Errorf("bad load %q (want util(target), closed(think=d), diurnal(period,peak) or burst(period,duty,factor))", value)
			}
			l, err := loadgen.ParseLoad(fn, args)
			if err != nil {
				return p, fmt.Errorf("bad load %q: %w", value, err)
			}
			p.load = l
		case "class":
			if p.class != "" {
				return p, fmt.Errorf("term %q sets @class twice", part)
			}
			if !validName(value) {
				return p, fmt.Errorf("class label %q is not grammar-safe (want [A-Za-z0-9_-]+)", value)
			}
			p.class = Class(value)
		default:
			return p, fmt.Errorf("unknown modifier %q (modifiers: seed, arrive, load, class)", key)
		}
	}
	p.terms = []Term{term}
	return p, nil
}

// parseArrival parses an arrival expression.
func parseArrival(s string) (Arrival, error) {
	fn, args, ok := splitCall(s)
	if !ok {
		// Bare duration: fixed offset.
		d, err := parseDur(s)
		if err != nil {
			return Arrival{}, err
		}
		return Arrival{Kind: ArriveFixed, At: d}, nil
	}
	switch fn {
	case "fixed":
		if len(args) != 1 {
			return Arrival{}, fmt.Errorf("fixed takes one duration, got %d args", len(args))
		}
		d, err := parseDur(args[0])
		if err != nil {
			return Arrival{}, err
		}
		return Arrival{Kind: ArriveFixed, At: d}, nil
	case "uniform":
		if len(args) != 2 {
			return Arrival{}, fmt.Errorf("uniform takes (lo, hi), got %d args", len(args))
		}
		lo, err := parseDur(args[0])
		if err != nil {
			return Arrival{}, err
		}
		hi, err := parseDur(args[1])
		if err != nil {
			return Arrival{}, err
		}
		if hi < lo {
			return Arrival{}, fmt.Errorf("uniform window [%v, %v) is inverted", lo, hi)
		}
		return Arrival{Kind: ArriveUniform, Lo: lo, Hi: hi}, nil
	case "poisson":
		if len(args) != 1 {
			return Arrival{}, fmt.Errorf("poisson takes one mean gap, got %d args", len(args))
		}
		mean, err := parseDur(args[0])
		if err != nil {
			return Arrival{}, err
		}
		if mean <= 0 {
			return Arrival{}, fmt.Errorf("poisson mean gap must be positive, got %v", mean)
		}
		return Arrival{Kind: ArrivePoisson, Mean: mean}, nil
	case "trace":
		if len(args) == 0 {
			return Arrival{}, fmt.Errorf("trace needs at least one time")
		}
		times := make([]sim.Time, len(args))
		for i, a := range args {
			d, err := parseDur(a)
			if err != nil {
				return Arrival{}, err
			}
			times[i] = d
		}
		return Arrival{Kind: ArriveTrace, Times: times}, nil
	case "tracefile":
		if len(args) != 1 && len(args) != 2 {
			return Arrival{}, fmt.Errorf("tracefile takes (path) or (path, sha256=<digest>), got %d args", len(args))
		}
		path := args[0]
		if path == "" || strings.ContainsAny(path, " \t@+*:|%()'\"") {
			return Arrival{}, fmt.Errorf("trace file path %q contains grammar-reserved characters", path)
		}
		var want string
		if len(args) == 2 {
			key, value, ok := strings.Cut(args[1], "=")
			if !ok || strings.TrimSpace(key) != "sha256" {
				return Arrival{}, fmt.Errorf("tracefile's second argument must be sha256=<digest>, got %q", args[1])
			}
			want = strings.ToLower(strings.TrimSpace(value))
		}
		times, digest, err := loadgen.ReadTraceFile(path)
		if err != nil {
			return Arrival{}, err
		}
		if want != "" && want != digest {
			return Arrival{}, fmt.Errorf("trace file %s has content digest %s, but the spec pins %s (the file changed since the spec was written)", path, digest, want)
		}
		return Arrival{Kind: ArriveTraceFile, Times: times, Path: path, Digest: digest}, nil
	default:
		return Arrival{}, fmt.Errorf("unknown arrival process %q (want a duration, fixed, uniform, poisson, trace or tracefile)", fn)
	}
}

// splitCall recognises "fn(a, b, ...)" forms; ok is false for anything
// else (bare durations).
func splitCall(s string) (fn string, args []string, ok bool) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", nil, false
	}
	fn = strings.TrimSpace(s[:open])
	inner := s[open+1 : len(s)-1]
	if strings.ContainsAny(inner, "()") {
		return "", nil, false
	}
	if strings.TrimSpace(inner) == "" {
		return fn, nil, true
	}
	for _, a := range strings.Split(inner, ",") {
		args = append(args, strings.TrimSpace(a))
	}
	return fn, args, true
}

// splitTop splits s on sep outside parentheses.
func splitTop(s string, sep byte) ([]string, error) {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("unbalanced ')' at byte %d", i)
			}
		case sep:
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("unbalanced '('")
	}
	return append(out, s[start:]), nil
}

// parseDur parses a simulated duration: a non-negative number with an
// optional unit suffix (ns when omitted). The syntax is owned by
// internal/loadgen, shared with load generators and trace files.
func parseDur(s string) (sim.Time, error) { return loadgen.ParseDuration(s) }

// formatDur renders a duration in the largest exact unit.
func formatDur(t sim.Time) string { return loadgen.FormatDuration(t) }

// String renders the arrival expression in grammar form.
func (a Arrival) String() string {
	switch a.Kind {
	case ArriveClosed:
		return ""
	case ArriveFixed:
		return formatDur(a.At)
	case ArriveUniform:
		return fmt.Sprintf("uniform(%s,%s)", formatDur(a.Lo), formatDur(a.Hi))
	case ArrivePoisson:
		return fmt.Sprintf("poisson(%s)", formatDur(a.Mean))
	case ArriveTrace:
		parts := make([]string, len(a.Times))
		for i, t := range a.Times {
			parts[i] = formatDur(t)
		}
		return fmt.Sprintf("trace(%s)", strings.Join(parts, ","))
	case ArriveTraceFile:
		// The digest is part of the canonical form: cell identity tracks
		// the file's content, and re-parsing verifies it.
		return fmt.Sprintf("tracefile(%s,sha256=%s)", a.Path, a.Digest)
	default:
		return string(a.Kind)
	}
}

// canonical renders one term in normalised grammar form.
func (t Term) canonical() string {
	var sb strings.Builder
	appStr := func(a AppSpec) string {
		if a.Threads <= 0 {
			return a.Bench
		}
		return fmt.Sprintf("%s:%d", a.Bench, a.Threads)
	}
	uniform := len(t.Apps) > 1
	for _, a := range t.Apps {
		if a != t.Apps[0] {
			uniform = false
		}
	}
	switch {
	case t.Source != "":
		sb.WriteString(t.Source)
	case len(t.Apps) == 1:
		sb.WriteString(appStr(t.Apps[0]))
	case uniform:
		// Replicated benchmark instance ("*copies").
		fmt.Fprintf(&sb, "%s*%d", appStr(t.Apps[0]), len(t.Apps))
	default:
		// Unreachable from the grammar (anonymous mixed-app terms can
		// only be built programmatically): render the app list.
		var names []string
		for _, a := range t.Apps {
			names = append(names, appStr(a))
		}
		sb.WriteString(strings.Join(names, "+"))
	}
	if t.HasSeed {
		fmt.Fprintf(&sb, "@seed=%d", t.Seed)
	}
	if t.Arrival.Kind != ArriveClosed {
		fmt.Fprintf(&sb, "@arrive=%s", t.Arrival)
	}
	return sb.String()
}

// Canonical renders the spec in normalised grammar form: parsing the
// result yields an equal spec, and equal specs render identically. The
// spec-global clauses (@load=, @class=) render once, after the last term,
// regardless of which term they were written on.
func (s Spec) Canonical() string {
	parts := make([]string, len(s.Terms))
	for i, t := range s.Terms {
		parts[i] = t.canonical()
	}
	out := strings.Join(parts, "+")
	if s.Load.Kind != loadgen.None {
		out += "@load=" + s.Load.String()
	}
	if s.Class != "" {
		out += "@class=" + string(s.Class)
	}
	return out
}

// CheckLoad validates the spec's load generator against its terms: the
// generators that produce or forbid arrival streams themselves (util,
// closed) require every term to be closed.
func (s Spec) CheckLoad() error {
	if err := s.Load.Validate(); err != nil {
		return err
	}
	if s.Load.Kind == loadgen.Util || s.Load.Kind == loadgen.Closed {
		for _, t := range s.Terms {
			if t.Arrival.Kind != ArriveClosed {
				return fmt.Errorf("load=%s needs closed terms, but term %q sets @arrive=%s", s.Load.Kind, t.canonical(), t.Arrival)
			}
		}
	}
	return nil
}

// String implements fmt.Stringer as the canonical grammar form.
func (s Spec) String() string { return s.Canonical() }

// ResolveSpec resolves a workload name the way every consumer does: a
// registered scenario name resolves through the registry (keeping its
// registered name as the result key), anything else parses as a grammar
// spec. Unknown names error with the registered inventories.
func ResolveSpec(name string) (Spec, error) {
	trimmed := strings.TrimSpace(name)
	if s, ok := ScenarioByName(trimmed); ok {
		return s, nil
	}
	return ParseSpec(name)
}
