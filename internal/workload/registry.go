package workload

// This file holds the process-wide workload registries: every benchmark
// generator (the 15 Table 3 built-ins plus any generator a library user
// registers) and every named scenario (the 26 Table 4 compositions plus
// user scenarios) is reachable by a string name through one table,
// mirroring the policy/stage registry in internal/policy. The scenario
// grammar, SingleProgram, the experiment harness and the cmd tools all
// resolve names here, so the set of known workload names lives in exactly
// one place.

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

var (
	regMu sync.RWMutex
	// benchByName holds built-ins and user benchmarks; benchOrder keeps
	// registration order (built-ins first, in Table 3 order).
	benchByName map[string]Benchmark
	benchOrder  []string
	// scenByName holds named scenarios as parsed specs; scenOrder keeps
	// registration order (Table 4 first).
	scenByName map[string]Spec
	scenOrder  []string

	builtinsOnce sync.Once
)

// ensureBuiltins seeds the registries lazily so every accessor sees the
// paper's benchmarks and compositions without depending on package init
// order.
func ensureBuiltins() {
	builtinsOnce.Do(func() {
		regMu.Lock()
		defer regMu.Unlock()
		benchByName = make(map[string]Benchmark)
		scenByName = make(map[string]Spec)
		for _, b := range builtinBenchmarks() {
			benchByName[b.Name] = b
			benchOrder = append(benchOrder, b.Name)
		}
		for _, c := range Compositions() {
			scenByName[c.Index] = c.Spec()
			scenOrder = append(scenOrder, c.Index)
		}
		// The standard suite registers as spec literals (never through
		// ParseSpec, which would re-enter this Once).
		for _, s := range standardSuite() {
			scenByName[s.Name] = s.Spec
			scenOrder = append(scenOrder, s.Name)
		}
	})
}

// validName reports whether a registry name is representable in the
// scenario grammar.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// Register adds a benchmark generator to the process-wide registry, making
// it addressable by name in the scenario grammar, SingleProgram, the
// experiment harness and the cmd tools. It errors on a grammar-unsafe
// name, a nil generator, a non-positive default thread count, or a name
// collision with any benchmark or scenario (the Table 3/Table 4 names are
// taken).
func Register(b Benchmark) error {
	ensureBuiltins()
	if !validName(b.Name) {
		return fmt.Errorf("workload: benchmark name %q is not grammar-safe (want [A-Za-z0-9_-]+)", b.Name)
	}
	if b.Gen == nil {
		return fmt.Errorf("workload: benchmark %q has a nil generator", b.Name)
	}
	if b.DefaultThreads < 1 {
		return fmt.Errorf("workload: benchmark %q needs DefaultThreads >= 1", b.Name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := benchByName[b.Name]; dup {
		return fmt.Errorf("workload: benchmark %q already registered", b.Name)
	}
	if _, dup := scenByName[b.Name]; dup {
		return fmt.Errorf("workload: %q already names a registered scenario", b.Name)
	}
	benchByName[b.Name] = b
	benchOrder = append(benchOrder, b.Name)
	return nil
}

// MustRegister is Register for init-time use; it panics on error.
func MustRegister(b Benchmark) {
	if err := Register(b); err != nil {
		panic(err)
	}
}

// RegisterScenario adds a named scenario, making name resolvable wherever
// the scenario grammar is accepted. The spec is stored fully expanded, so
// later registrations cannot change its meaning. It errors on a
// grammar-unsafe name, an empty spec, or a collision with any scenario or
// benchmark name.
func RegisterScenario(name string, s Spec) error {
	ensureBuiltins()
	if !validName(name) {
		return fmt.Errorf("workload: scenario name %q is not grammar-safe (want [A-Za-z0-9_-]+)", name)
	}
	if len(s.Terms) == 0 {
		return fmt.Errorf("workload: scenario %q has no terms", name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := scenByName[name]; dup {
		return fmt.Errorf("workload: scenario %q already registered", name)
	}
	if _, dup := benchByName[name]; dup {
		return fmt.Errorf("workload: %q already names a registered benchmark", name)
	}
	s.Name = name
	scenByName[name] = s
	scenOrder = append(scenOrder, name)
	return nil
}

// MustRegisterScenario is RegisterScenario for init-time use; it panics on
// error.
func MustRegisterScenario(name string, s Spec) {
	if err := RegisterScenario(name, s); err != nil {
		panic(err)
	}
}

// All returns the fifteen built-in benchmarks of Table 3 in paper order.
// User registrations do not appear here: All is the fixed training and
// figure-reproduction surface (perfmodel collects its symmetric runs over
// it), so its contents cannot depend on what a process registered. Use
// Registered for the full inventory.
func All() []Benchmark { return builtinBenchmarks() }

// Registered returns every registered benchmark — built-ins in Table 3
// order, then user benchmarks in registration order.
func Registered() []Benchmark {
	ensureBuiltins()
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Benchmark, 0, len(benchOrder))
	for _, name := range benchOrder {
		out = append(out, benchByName[name])
	}
	return out
}

// ByName looks a benchmark up by name (built-in or user-registered).
func ByName(name string) (Benchmark, bool) {
	ensureBuiltins()
	regMu.RLock()
	defer regMu.RUnlock()
	b, ok := benchByName[name]
	return b, ok
}

// Names returns the built-in benchmark names in Table 3 order.
func Names() []string {
	var out []string
	for _, b := range builtinBenchmarks() {
		out = append(out, b.Name)
	}
	return out
}

// BenchmarkNames returns every registered benchmark name in sorted order
// (the error-listing and inventory surface).
func BenchmarkNames() []string {
	ensureBuiltins()
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(benchByName))
	for name := range benchByName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ScenarioByName looks a registered scenario up by name.
func ScenarioByName(name string) (Spec, bool) {
	ensureBuiltins()
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := scenByName[name]
	return s, ok
}

// ScenarioNames returns every registered scenario name in sorted order.
func ScenarioNames() []string {
	ensureBuiltins()
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(scenByName))
	for name := range scenByName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func unknownBenchmarkError(name string) error {
	return fmt.Errorf("workload: unknown benchmark %q (registered: %s)",
		name, strings.Join(BenchmarkNames(), ", "))
}

func unknownNameError(name string) error {
	return fmt.Errorf("workload: unknown benchmark or scenario %q (benchmarks: %s; scenarios: %s)",
		name, strings.Join(BenchmarkNames(), ", "), strings.Join(ScenarioNames(), ", "))
}
