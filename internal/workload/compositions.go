package workload

import (
	"fmt"

	"colab/internal/mathx"
	"colab/internal/task"
)

// Class groups workload compositions the way the paper's evaluation does.
type Class string

// The five workload classes of Table 4.
const (
	ClassSync  Class = "Sync"  // synchronization-intensive
	ClassNSync Class = "NSync" // synchronization non-intensive
	ClassComm  Class = "Comm"  // communication-intensive
	ClassComp  Class = "Comp"  // computation-intensive
	ClassRand  Class = "Rand"  // random-mixed
)

// Part is one benchmark instance inside a composition.
type Part struct {
	Bench   string
	Threads int
}

// Composition is one multi-programmed workload of Table 4.
type Composition struct {
	Index string // e.g. "Sync-1"
	Class Class
	Parts []Part
}

// TotalThreads returns the composition's thread count (the Table 4 column).
func (c Composition) TotalThreads() int {
	n := 0
	for _, p := range c.Parts {
		n += p.Threads
	}
	return n
}

// NumPrograms returns the number of benchmark instances.
func (c Composition) NumPrograms() int { return len(c.Parts) }

// Build instantiates the composition into a runnable workload. Each call
// produces fresh threads; a workload cannot be re-run.
func (c Composition) Build(seed uint64) (*task.Workload, error) {
	rng := mathx.NewRNG(seed ^ 0xd1b54a32d192ed03)
	w := &task.Workload{Name: c.Index}
	for i, p := range c.Parts {
		b, ok := ByName(p.Bench)
		if !ok {
			return nil, fmt.Errorf("workload: composition %s references unknown benchmark %q", c.Index, p.Bench)
		}
		app, err := b.Instantiate(i, p.Threads, rng)
		if err != nil {
			return nil, err
		}
		if app.NumThreads() != p.Threads {
			return nil, fmt.Errorf("workload: %s/%s requested %d threads, generator produced %d (cap %d)",
				c.Index, p.Bench, p.Threads, app.NumThreads(), b.MaxThreads)
		}
		w.Apps = append(w.Apps, app)
	}
	return w, nil
}

// Compositions returns the 26 multi-programmed workloads of Table 4. The
// per-benchmark thread splits respect the 2-thread cap on water_nsquared,
// water_spatial and fmm and sum to the paper's per-workload thread totals.
func Compositions() []Composition {
	return []Composition{
		// Synchronization-intensive.
		{Index: "Sync-1", Class: ClassSync, Parts: []Part{{"water_nsquared", 2}, {"fmm", 2}}},
		{Index: "Sync-2", Class: ClassSync, Parts: []Part{{"dedup", 9}, {"fluidanimate", 9}}},
		{Index: "Sync-3", Class: ClassSync, Parts: []Part{{"water_nsquared", 2}, {"fmm", 2}, {"fluidanimate", 3}, {"bodytrack", 2}}},
		{Index: "Sync-4", Class: ClassSync, Parts: []Part{{"dedup", 8}, {"ferret", 8}, {"fmm", 2}, {"water_nsquared", 2}}},
		// Synchronization non-intensive.
		{Index: "NSync-1", Class: ClassNSync, Parts: []Part{{"water_spatial", 2}, {"lu_cb", 2}}},
		{Index: "NSync-2", Class: ClassNSync, Parts: []Part{{"blackscholes", 8}, {"swaptions", 8}}},
		{Index: "NSync-3", Class: ClassNSync, Parts: []Part{{"radix", 2}, {"fft", 2}, {"water_spatial", 2}, {"lu_cb", 2}}},
		{Index: "NSync-4", Class: ClassNSync, Parts: []Part{{"blackscholes", 6}, {"ocean_cp", 6}, {"lu_ncb", 4}, {"swaptions", 4}}},
		// Communication-intensive.
		{Index: "Comm-1", Class: ClassComm, Parts: []Part{{"water_nsquared", 2}, {"blackscholes", 2}}},
		{Index: "Comm-2", Class: ClassComm, Parts: []Part{{"ferret", 8}, {"dedup", 8}}},
		{Index: "Comm-3", Class: ClassComm, Parts: []Part{{"water_nsquared", 2}, {"fft", 2}, {"radix", 3}, {"bodytrack", 2}}},
		{Index: "Comm-4", Class: ClassComm, Parts: []Part{{"blackscholes", 4}, {"dedup", 6}, {"ferret", 8}, {"water_nsquared", 2}}},
		// Computation-intensive.
		{Index: "Comp-1", Class: ClassComp, Parts: []Part{{"water_spatial", 2}, {"fmm", 2}}},
		{Index: "Comp-2", Class: ClassComp, Parts: []Part{{"fluidanimate", 9}, {"swaptions", 8}}},
		{Index: "Comp-3", Class: ClassComp, Parts: []Part{{"lu_ncb", 2}, {"fmm", 2}, {"water_spatial", 2}, {"lu_cb", 2}}},
		{Index: "Comp-4", Class: ClassComp, Parts: []Part{{"fluidanimate", 8}, {"ocean_cp", 4}, {"lu_ncb", 4}, {"swaptions", 4}}},
		// Random-mixed.
		{Index: "Rand-1", Class: ClassRand, Parts: []Part{{"lu_cb", 6}, {"dedup", 13}}},
		{Index: "Rand-2", Class: ClassRand, Parts: []Part{{"lu_ncb", 4}, {"bodytrack", 6}}},
		{Index: "Rand-3", Class: ClassRand, Parts: []Part{{"ferret", 7}, {"water_spatial", 2}}},
		{Index: "Rand-4", Class: ClassRand, Parts: []Part{{"ocean_cp", 4}, {"fft", 4}}},
		{Index: "Rand-5", Class: ClassRand, Parts: []Part{{"freqmine", 4}, {"water_nsquared", 2}}},
		{Index: "Rand-6", Class: ClassRand, Parts: []Part{{"water_spatial", 2}, {"fmm", 2}, {"fft", 8}, {"fluidanimate", 9}}},
		{Index: "Rand-7", Class: ClassRand, Parts: []Part{{"fmm", 2}, {"water_spatial", 2}, {"ferret", 8}, {"swaptions", 8}}},
		{Index: "Rand-8", Class: ClassRand, Parts: []Part{{"water_spatial", 2}, {"water_nsquared", 2}, {"ferret", 7}, {"freqmine", 6}}},
		{Index: "Rand-9", Class: ClassRand, Parts: []Part{{"blackscholes", 16}, {"bodytrack", 12}, {"dedup", 14}, {"fluidanimate", 13}}},
		{Index: "Rand-10", Class: ClassRand, Parts: []Part{{"lu_cb", 12}, {"lu_ncb", 13}, {"bodytrack", 14}, {"dedup", 14}}},
	}
}

// CompositionsByClass filters Table 4 by class.
func CompositionsByClass(cl Class) []Composition {
	var out []Composition
	for _, c := range Compositions() {
		if c.Class == cl {
			out = append(out, c)
		}
	}
	return out
}

// CompositionByIndex looks a composition up by its Table 4 index.
func CompositionByIndex(idx string) (Composition, bool) {
	for _, c := range Compositions() {
		if c.Index == idx {
			return c, true
		}
	}
	return Composition{}, false
}
