package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"colab/internal/experiment"
)

// testSpec is the failure-path sweep: 2 seeds x 2 scenarios = 4
// baseline-sharing groups (so it deals cleanly over 2 or 4 shards), 2
// policies, 8 cells total.
func testSpec() Spec {
	return Spec{
		Workloads: []string{"Sync-1", "Comp-1"},
		Machines:  []string{"2B2S"},
		Policies:  []string{"linux", "wash"},
		Seeds:     []uint64{1, 2},
		Workers:   2,
	}
}

// localCells runs the spec unsharded in-process: the byte-identity
// reference every fleet assembly is compared against.
func localCells(t *testing.T, spec Spec) []experiment.BatchCell {
	t.Helper()
	b, err := spec.batch(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := b.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return cells
}

// fastOptions keeps the failure-path tests quick: tight heartbeats and
// backoffs, but a generous overall wait.
func fastOptions() Options {
	return Options{
		MaxAttempts:       4,
		RetryBackoff:      20 * time.Millisecond,
		MaxBackoff:        100 * time.Millisecond,
		HeartbeatTimeout:  400 * time.Millisecond,
		WorkerWaitTimeout: 10 * time.Second,
	}
}

type testFleet struct {
	coord   *Coordinator
	url     string
	workers []*Worker
	// beatCancels stops one worker's heartbeat loop (simulating its death
	// to the liveness tracker without stopping its HTTP server).
	beatCancels []context.CancelFunc
}

// newTestFleet starts a coordinator and n workers on loopback httptest
// servers, with every worker registering and heartbeating for real.
func newTestFleet(t *testing.T, n int, opts Options) *testFleet {
	t.Helper()
	tf := &testFleet{coord: NewCoordinator(opts)}
	cts := httptest.NewServer(tf.coord)
	t.Cleanup(cts.Close)
	tf.url = cts.URL
	for i := 0; i < n; i++ {
		w := NewWorker(nil)
		wts := httptest.NewServer(w)
		t.Cleanup(wts.Close)
		ctx, cancel := context.WithCancel(context.Background())
		t.Cleanup(cancel)
		tf.workers = append(tf.workers, w)
		tf.beatCancels = append(tf.beatCancels, cancel)
		go RegisterAndHeartbeat(ctx, nil, cts.URL, wts.URL, 50*time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := tf.coord.WaitWorkers(ctx, n); err != nil {
		t.Fatalf("workers never registered: %v", err)
	}
	return tf
}

// runAndCheck runs the spec on the fleet and asserts the assembled stream
// is bit-identical to the unsharded in-process run: same cells, same
// global order, same float bits. Returns the observer stream.
func runAndCheck(t *testing.T, tf *testFleet, spec Spec) []Cell {
	t.Helper()
	ref := localCells(t, spec)
	var (
		mu       sync.Mutex
		streamed []Cell
		indices  []int
	)
	shards, err := tf.coord.Run(context.Background(), spec, func(i int, c Cell) {
		mu.Lock()
		streamed = append(streamed, c)
		indices = append(indices, i)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(ref) {
		t.Fatalf("observer saw %d cells, local run has %d", len(streamed), len(ref))
	}
	total := 0
	for _, s := range shards {
		total += len(s)
	}
	if total != len(ref) {
		t.Fatalf("shards hold %d cells, local run has %d", total, len(ref))
	}
	for i, c := range streamed {
		if indices[i] != i {
			t.Fatalf("observer delivery out of order: cell %d arrived at position %d", indices[i], i)
		}
		want := ref[i]
		if c.Workload != want.Key.Workload || c.Machine != want.Key.Config ||
			c.Policy != want.Key.Policy || c.Seed != want.Key.Seed {
			t.Errorf("cell %d coordinates %s/%s/%s/%d, local %s/%s/%s/%d",
				i, c.Workload, c.Machine, c.Policy, c.Seed,
				want.Key.Workload, want.Key.Config, want.Key.Policy, want.Key.Seed)
		}
		if c.HANTT != want.Score.HANTT || c.HSTP != want.Score.HSTP {
			t.Errorf("cell %d scores (%v,%v) not bit-identical to local (%v,%v)",
				i, c.HANTT, c.HSTP, want.Score.HANTT, want.Score.HSTP)
		}
		if c.Key != want.CellKey.String() {
			t.Errorf("cell %d key %q, local %q", i, c.Key, want.CellKey.String())
		}
	}
	return streamed
}

// A healthy fleet of two workers reproduces the unsharded run exactly.
func TestFleetMatchesLocalRun(t *testing.T) {
	tf := newTestFleet(t, 2, fastOptions())
	runAndCheck(t, tf, testSpec())
	ran := 0
	for _, w := range tf.workers {
		if w.Stats().ShardsRun > 0 {
			ran++
		}
	}
	if ran != 2 {
		t.Errorf("%d of 2 workers ran shards; the sweep was not actually distributed", ran)
	}
}

// More shards than workers queue and drain across the fleet.
func TestFleetMoreShardsThanWorkers(t *testing.T) {
	opts := fastOptions()
	opts.Shards = 4
	tf := newTestFleet(t, 2, opts)
	runAndCheck(t, tf, testSpec())
}

// The kill test: one worker dies (connection cut, no clean EOF) after
// streaming two cells of its shard. The coordinator must reassign the
// shard to the survivor, shipping the two completed cells as a checkpoint
// journal so they replay rather than recompute; the re-streamed
// duplicates must be ingested idempotently; and the merged output must be
// byte-identical to the unsharded run with every cell delivered once.
func TestFleetWorkerKilledMidShardIsReassigned(t *testing.T) {
	tf := newTestFleet(t, 2, fastOptions())
	var killed atomic.Bool
	tf.workers[0].FaultInjector = func(shard, cell int) error {
		if cell == 2 && killed.CompareAndSwap(false, true) {
			return context.Canceled // any non-nil error: die now
		}
		return nil
	}
	streamed := runAndCheck(t, tf, testSpec())
	if !killed.Load() {
		t.Fatal("fault injector never fired; the kill path was not exercised")
	}
	if n := len(streamed); n != 8 {
		t.Fatalf("streamed %d cells, want 8", n)
	}
	// The survivor must have received the dead worker's partial journal.
	seeded := tf.workers[0].Stats().JournalSeeded + tf.workers[1].Stats().JournalSeeded
	if seeded != 2 {
		t.Errorf("replacement worker was seeded %d journal records, want the 2 cells streamed before the kill", seeded)
	}
}

// A worker that hangs mid-shard and stops heartbeating is declared dead;
// the in-flight dispatch is abandoned and the shard completes elsewhere.
func TestFleetHungWorkerIsAbandoned(t *testing.T) {
	tf := newTestFleet(t, 2, fastOptions())
	hang := make(chan struct{})
	t.Cleanup(func() { close(hang) })
	var hung atomic.Bool
	tf.workers[0].FaultInjector = func(shard, cell int) error {
		if hung.CompareAndSwap(false, true) {
			tf.beatCancels[0]() // heartbeats stop exactly as the hang begins
			<-hang
		}
		return nil
	}
	runAndCheck(t, tf, testSpec())
	if !hung.Load() {
		t.Fatal("hang injector never fired")
	}
}

// A worker registering after Run has started joins the dispatch pool: a
// one-worker fleet that dies is rescued by a late arrival.
func TestFleetLateWorkerRescuesRun(t *testing.T) {
	opts := fastOptions()
	opts.Shards = 2
	opts.MaxAttempts = 20 // enough retries to cover the rescuer's arrival
	tf := newTestFleet(t, 1, opts)
	var kills atomic.Int32
	tf.workers[0].FaultInjector = func(shard, cell int) error {
		// The sole worker dies on every attempt until the rescuer arrives.
		if kills.Add(1) == 1 {
			tf.beatCancels[0]()
		}
		return context.Canceled
	}
	spec := testSpec()
	ref := localCells(t, spec)
	resc := NewWorker(nil)
	rts := httptest.NewServer(resc)
	t.Cleanup(rts.Close)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go func() {
		time.Sleep(100 * time.Millisecond)
		RegisterAndHeartbeat(ctx, nil, tf.url, rts.URL, 50*time.Millisecond)
	}()
	shards, err := tf.coord.Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range shards {
		total += len(s)
	}
	if total != len(ref) {
		t.Fatalf("rescued run assembled %d cells, want %d", total, len(ref))
	}
	if resc.Stats().ShardsRun == 0 {
		t.Error("late worker never ran a shard")
	}
}

// With no workers at all, Run fails after WorkerWaitTimeout instead of
// hanging.
func TestFleetNoWorkersFailsFast(t *testing.T) {
	opts := fastOptions()
	opts.WorkerWaitTimeout = 200 * time.Millisecond
	c := NewCoordinator(opts)
	_, err := c.Run(context.Background(), testSpec(), nil)
	if err == nil || !strings.Contains(err.Error(), "no live workers") {
		t.Fatalf("empty fleet must fail fast, got: %v", err)
	}
}

// A shard that keeps dying exhausts MaxAttempts and fails the run with
// the shard named.
func TestFleetExhaustedRetriesFailRun(t *testing.T) {
	opts := fastOptions()
	opts.MaxAttempts = 2
	tf := newTestFleet(t, 1, opts)
	tf.workers[0].FaultInjector = func(shard, cell int) error { return context.Canceled }
	_, err := tf.coord.Run(context.Background(), testSpec(), nil)
	if err == nil || !strings.Contains(err.Error(), "failed 2 times") {
		t.Fatalf("exhausted retries must fail the run, got: %v", err)
	}
}

// Registration is idempotent and validated; /workers reports the fleet.
func TestRegistrationEndpoints(t *testing.T) {
	c := NewCoordinator(fastOptions())
	cts := httptest.NewServer(c)
	defer cts.Close()
	post := func(path, body string) int {
		resp, err := http.Post(cts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/register", `{"url":"not a url"}`); code != http.StatusBadRequest {
		t.Errorf("bad registration -> %d, want 400", code)
	}
	for i := 0; i < 2; i++ {
		if code := post("/register", `{"url":"http://127.0.0.1:7777"}`); code != http.StatusOK {
			t.Errorf("registration %d -> %d, want 200", i, code)
		}
	}
	if code := post("/heartbeat", `{"url":"http://127.0.0.1:7778"}`); code != http.StatusOK {
		t.Errorf("heartbeat-first registration -> %d, want 200 (heartbeats upsert)", code)
	}
	resp, err := http.Get(cts.URL + "/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []WorkerInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || !infos[0].Live || infos[0].URL != "http://127.0.0.1:7777" {
		t.Errorf("workers = %+v, want the two registered URLs, live", infos)
	}
}

// The worker endpoint rejects malformed and unresolvable requests cleanly
// before streaming.
func TestWorkerRejectsBadRequests(t *testing.T) {
	w := NewWorker(nil)
	wts := httptest.NewServer(w)
	defer wts.Close()
	for _, tc := range []struct {
		name string
		body string
	}{
		{"not json", "nope"},
		{"empty spec", `{"spec":{}}`},
		{"unknown machine", `{"spec":{"workloads":["Sync-1"],"machines":["9B9S"],"policies":["linux"],"seeds":[1]}}`},
		{"unknown policy", `{"spec":{"workloads":["Sync-1"],"machines":["2B2S"],"policies":["nope"],"seeds":[1]}}`},
		{"bad shard", `{"spec":{"workloads":["Sync-1"],"machines":["2B2S"],"policies":["linux"],"seeds":[1]},"shard_index":3,"shard_count":2}`},
	} {
		resp, err := http.Post(wts.URL+"/run", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s -> %s, want 400", tc.name, resp.Status)
		}
	}
	if resp, err := http.Get(wts.URL + "/run"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /run -> %s, want 405", resp.Status)
		}
	}
}

// The wire round trip preserves float bits: a cell encoded and decoded
// through the NDJSON stream is the exact score the worker computed.
func TestWireFloatRoundTrip(t *testing.T) {
	in := Cell{Workload: "w", HANTT: 1.0 / 3.0, HSTP: 2.0000000000000004}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(streamLine{Cell: in}); err != nil {
		t.Fatal(err)
	}
	var out streamLine
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.HANTT != in.HANTT || out.HSTP != in.HSTP {
		t.Fatalf("floats not bit-identical after wire round trip: %v vs %v", out.Cell, in)
	}
}

// A spec term that replays a local trace file has no wire form: the
// worker rejects it before streaming, naming the offending term.
func TestWorkerRejectsTraceFileSpecs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "arrivals.trace")
	if err := os.WriteFile(path, []byte("0\n5ms\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	w := NewWorker(nil)
	wts := httptest.NewServer(w)
	defer wts.Close()
	body := fmt.Sprintf(`{"spec":{"workloads":["dedup:2*2@arrive=tracefile(%s)"],"machines":["2B2S"],"policies":["linux"],"seeds":[1]}}`, path)
	resp, err := http.Post(wts.URL+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	reply, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("tracefile spec -> %s, want 400 (body %q)", resp.Status, reply)
	}
	if !strings.Contains(string(reply), "trace file") || !strings.Contains(string(reply), "dedup") {
		t.Errorf("rejection does not name the trace-file term: %q", reply)
	}
}
