// Package fleet is the multi-host coordination layer of the sweep engine:
// a coordinator that deals deterministic shard assignments of one
// experiment sweep to registered worker daemons over HTTP, streams each
// worker's per-cell NDJSON results back, and reassembles the union —
// byte-identical to the same sweep run unsharded in one process.
//
// The division of labour with internal/experiment is strict: experiment
// owns what a sweep *is* (the cross-product plan, shard assignment by
// baseline-sharing group, cell identity via CellKey, checkpoint journals,
// the cell cache), while fleet owns only *where* shards run and how
// failures are survived — worker registration with liveness heartbeats,
// per-shard retry with exponential backoff, reassignment of a dead
// worker's shard to a survivor (shipping the coordinator's copy of the
// failed shard's checkpoint journal so completed cells replay instead of
// recomputing), and idempotent result ingestion that tolerates duplicate
// cells from retried shards.
package fleet

import (
	"fmt"

	"colab/internal/cpu"
	"colab/internal/experiment"
	"colab/internal/kernel"
	"colab/internal/workload"
)

// Spec is the wire form of one sweep: the session axes shipped from the
// coordinator to every worker. All fields are registry names or grammar
// strings, resolved identically on both sides through the process-wide
// registries — a worker binary must have the same policies, scenarios and
// named machines registered as the coordinator.
type Spec struct {
	// Workloads are scenario names or scenario-grammar specs (resolved via
	// workload.ResolveSpec). At least one is required.
	Workloads []string `json:"workloads"`
	// Machines are registered machine-config names (cpu.ConfigByName).
	// At least one is required.
	Machines []string `json:"machines"`
	// Policies are registry policy names or composition-grammar strings.
	// At least one is required.
	Policies []string `json:"policies"`
	// Seeds drive workload generation; at least one is required.
	Seeds []uint64 `json:"seeds"`
	// Params are the kernel cost parameters (all numeric, so they travel
	// exactly; the zero value selects the defaults, as everywhere else).
	Params kernel.Params `json:"params"`
	// Workers bounds each worker daemon's run parallelism for this sweep
	// (0 = the worker's GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
}

// resolve materialises the spec's axes through the process-wide
// registries. Both the coordinator (to plan) and every worker (to run)
// resolve the same wire spec, so they agree on the plan by construction.
func (s Spec) resolve() (specs []workload.Spec, cfgs []cpu.Config, err error) {
	if len(s.Workloads) == 0 || len(s.Machines) == 0 || len(s.Policies) == 0 || len(s.Seeds) == 0 {
		return nil, nil, fmt.Errorf("fleet: spec needs at least one workload, machine, policy and seed")
	}
	for _, w := range s.Workloads {
		spec, err := workload.ResolveSpec(w)
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: %w", err)
		}
		if terms := spec.TraceFiles(); len(terms) != 0 {
			return nil, nil, fmt.Errorf("fleet: workload %q replays the local trace file of term %q — trace files do not travel the wire, inline the times with @arrive=trace(...)", w, terms[0])
		}
		specs = append(specs, spec)
	}
	for _, name := range s.Machines {
		cfg, ok := cpu.ConfigByName(name)
		if !ok {
			return nil, nil, fmt.Errorf("fleet: unknown machine %q (fleet sweeps use registered machine names)", name)
		}
		cfgs = append(cfgs, cfg)
	}
	return specs, cfgs, nil
}

// batch builds the experiment batch both sides derive the plan from. Only
// the shard coordinates differ between the coordinator's planning batch
// (ShardCount = fleet width, no index) and a worker's execution batch.
func (s Spec) batch(shardIndex, shardCount int) (*experiment.Batch, error) {
	specs, cfgs, err := s.resolve()
	if err != nil {
		return nil, err
	}
	return &experiment.Batch{
		Scenarios:  specs,
		Configs:    cfgs,
		Policies:   s.Policies,
		Seeds:      s.Seeds,
		Params:     s.Params,
		Workers:    s.Workers,
		ShardIndex: shardIndex,
		ShardCount: shardCount,
	}, nil
}

// Cell is the wire form of one scored cell: the sweep coordinates, the
// auto-baselined scores, the canonical content address, and whether the
// worker answered it from its cache or a shipped journal rather than
// simulating. Scores travel as JSON numbers in shortest-round-trip form,
// so an ingested cell is bit-identical to the worker's computed one.
type Cell struct {
	Workload string  `json:"workload"`
	Machine  string  `json:"machine"`
	Policy   string  `json:"policy"`
	Seed     uint64  `json:"seed"`
	HANTT    float64 `json:"h_antt"`
	HSTP     float64 `json:"h_stp"`
	Key      string  `json:"cell_key"`
	Cached   bool    `json:"cached"`
}

// runRequest is the body of a coordinator's POST to a worker's /run: the
// sweep spec, the shard this worker is to execute, and — on reassignment
// of a failed shard — the coordinator's copy of the shard's checkpoint
// journal, which the worker replays so already-streamed cells are not
// recomputed.
type runRequest struct {
	Spec       Spec                       `json:"spec"`
	ShardIndex int                        `json:"shard_index"`
	ShardCount int                        `json:"shard_count"`
	Journal    []experiment.JournalRecord `json:"journal,omitempty"`
}

// streamLine is one NDJSON line of a worker's /run response: a cell, or a
// terminal in-band error when the run failed after streaming began.
type streamLine struct {
	Cell
	Error string `json:"error,omitempty"`
}

// registration is the body of a worker's POST to the coordinator's
// /register and /heartbeat: the URL the coordinator should dispatch to.
type registration struct {
	URL string `json:"url"`
}

// WorkerStats is a point-in-time snapshot of a worker daemon's counters,
// served on its /stats endpoint next to its cell-cache stats.
type WorkerStats struct {
	// ShardsRun counts /run requests accepted (including failed ones).
	ShardsRun uint64 `json:"shards_run"`
	// CellsStreamed counts result cells streamed back to coordinators.
	CellsStreamed uint64 `json:"cells_streamed"`
	// JournalSeeded counts checkpoint records received from coordinators
	// on shard reassignment and replayed instead of recomputed.
	JournalSeeded uint64 `json:"journal_seeded"`
	// Cache is the worker's cell-cache counters.
	Cache experiment.CacheStats `json:"cache"`
}
