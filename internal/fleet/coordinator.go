package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"colab/internal/experiment"
)

// Options tunes a Coordinator. The zero value is production-sane.
type Options struct {
	// Shards is the number of shards the sweep is dealt into. 0 uses the
	// number of live workers at Run time (at least 1). More shards than
	// workers queue; surviving workers drain the queue.
	Shards int
	// MaxAttempts bounds how often one shard is tried before the run
	// fails (default 5). Attempts that fail fast — a worker killed between
	// heartbeats still holds its slot until the next dispatch errors —
	// count too, so the bound must absorb a retry-to-the-corpse or two.
	MaxAttempts int
	// RetryBackoff is the delay before a shard's second attempt; it
	// doubles per subsequent attempt (default 200ms).
	RetryBackoff time.Duration
	// MaxBackoff caps the exponential backoff (default 5s).
	MaxBackoff time.Duration
	// HeartbeatTimeout declares a worker dead when its last registration
	// or heartbeat is older than this (default 5s). Dead workers get no
	// new shards, and in-flight dispatches to them are cancelled and
	// reassigned; a worker that beats again is live again.
	HeartbeatTimeout time.Duration
	// WorkerWaitTimeout bounds how long Run waits with shards outstanding,
	// nothing in flight, and no live worker to dispatch to (default 60s) —
	// the whole fleet being dead should fail the run, not hang it.
	WorkerWaitTimeout time.Duration
	// HTTPClient dispatches shard requests (default http.DefaultClient;
	// per-attempt cancellation comes from contexts, so no client timeout
	// is needed and a streaming-friendly client must not set one).
	HTTPClient *http.Client
}

func (o Options) withDefaults() Options {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 5
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 200 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 5 * time.Second
	}
	if o.WorkerWaitTimeout <= 0 {
		o.WorkerWaitTimeout = 60 * time.Second
	}
	if o.HTTPClient == nil {
		o.HTTPClient = http.DefaultClient
	}
	return o
}

// WorkerInfo is one registered worker as reported by Workers and the
// /workers endpoint.
type WorkerInfo struct {
	URL string `json:"url"`
	// Live reports the worker heartbeat is fresh (within HeartbeatTimeout).
	Live bool `json:"live"`
	// Busy reports a shard is currently dispatched to the worker.
	Busy bool `json:"busy"`
	// LastBeatAge is the age of the last registration/heartbeat.
	LastBeatAge time.Duration `json:"last_beat_age_ns"`
}

type workerState struct {
	url      string
	lastBeat time.Time
	busy     bool
}

// Coordinator is the dispatching side of a fleet: it accepts worker
// registrations and liveness heartbeats over HTTP, and Run deals the
// shards of one sweep to the live workers — retrying failed shards with
// exponential backoff, reassigning a dead worker's shard to a survivor
// with the shard's checkpoint journal shipped along, and ingesting
// results idempotently so duplicate cells from retried shards are
// harmless. The assembled result is byte-identical to the same sweep run
// unsharded in one process.
//
// Endpoints (mount the Coordinator as an http.Handler):
//
//	POST /register   worker announces {"url": ...}; idempotent
//	POST /heartbeat  same body; refreshes liveness
//	GET  /workers    registered workers, JSON
//	GET  /healthz    liveness probe
//
// The registry outlives Run: workers may register before, during (they
// join the current sweep's dispatch pool immediately) or between runs.
type Coordinator struct {
	opts Options
	mux  *http.ServeMux

	mu      sync.Mutex
	workers map[string]*workerState
	running bool
}

// NewCoordinator returns a coordinator with opts applied.
func NewCoordinator(opts Options) *Coordinator {
	c := &Coordinator{opts: opts.withDefaults(), mux: http.NewServeMux(), workers: make(map[string]*workerState)}
	c.mux.HandleFunc("/register", c.handleRegister)
	c.mux.HandleFunc("/heartbeat", c.handleRegister)
	c.mux.HandleFunc("/workers", c.handleWorkers)
	c.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return c
}

func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) { c.mux.ServeHTTP(w, r) }

// handleRegister serves /register and /heartbeat: both upsert the worker
// and refresh its liveness, so registration is idempotent and a
// re-registering worker revives.
func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "use POST", http.StatusMethodNotAllowed)
		return
	}
	var reg registration
	if err := json.NewDecoder(r.Body).Decode(&reg); err != nil || !strings.HasPrefix(reg.URL, "http") {
		http.Error(w, "fleet: registration body must be {\"url\": \"http://...\"}", http.StatusBadRequest)
		return
	}
	url := strings.TrimRight(reg.URL, "/")
	c.mu.Lock()
	ws, ok := c.workers[url]
	if !ok {
		ws = &workerState{url: url}
		c.workers[url] = ws
	}
	ws.lastBeat = time.Now()
	c.mu.Unlock()
	fmt.Fprintln(w, "ok")
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(c.Workers())
}

// Workers snapshots the registry, sorted by URL.
func (c *Coordinator) Workers() []WorkerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	out := make([]WorkerInfo, 0, len(c.workers))
	for _, ws := range c.workers {
		out = append(out, WorkerInfo{
			URL:         ws.url,
			Live:        now.Sub(ws.lastBeat) <= c.opts.HeartbeatTimeout,
			Busy:        ws.busy,
			LastBeatAge: now.Sub(ws.lastBeat),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// liveCount returns the number of workers with fresh heartbeats.
func (c *Coordinator) liveCount() int {
	n := 0
	for _, w := range c.Workers() {
		if w.Live {
			n++
		}
	}
	return n
}

// WaitWorkers blocks until at least n workers are live or ctx is done.
func (c *Coordinator) WaitWorkers(ctx context.Context, n int) error {
	for {
		if c.liveCount() >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("fleet: waiting for %d workers (%d live): %w", n, c.liveCount(), ctx.Err())
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// claimWorker picks a free live worker, preferring one other than
// exclude (the worker whose attempt on this shard just failed), marks it
// busy and returns it; nil when none is available.
func (c *Coordinator) claimWorker(exclude string) *workerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	urls := make([]string, 0, len(c.workers))
	for url := range c.workers {
		urls = append(urls, url)
	}
	sort.Strings(urls) // deterministic preference order
	var fallback *workerState
	for _, url := range urls {
		ws := c.workers[url]
		if ws.busy || now.Sub(ws.lastBeat) > c.opts.HeartbeatTimeout {
			continue
		}
		if ws.url == exclude {
			fallback = ws
			continue
		}
		ws.busy = true
		return ws
	}
	if fallback != nil {
		fallback.busy = true
		return fallback
	}
	return nil
}

func (c *Coordinator) releaseWorker(url string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ws, ok := c.workers[url]; ok {
		ws.busy = false
	}
}

// isLive reports whether a worker's heartbeat is fresh (the in-flight
// dispatch watchdog polls this to abandon attempts on dead workers).
func (c *Coordinator) isLive(url string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	ws, ok := c.workers[url]
	return ok && time.Since(ws.lastBeat) <= c.opts.HeartbeatTimeout
}

// runState is the mutable result assembly of one Run: positional,
// idempotent ingestion plus in-order observer delivery.
type runState struct {
	mu        sync.Mutex
	planned   []experiment.PlannedCell
	keys      []string // planned[i].CellKey.String(), precomputed
	seq       [][]int  // per shard: global indices, in shard order
	results   []Cell
	filled    []bool
	delivered int
	obs       func(index int, cell Cell)
	aborted   bool
}

// ingest accepts the k-th streamed cell of a shard attempt. It validates
// the cell against the plan, drops duplicates from retried shards after
// checking they are bit-identical to the first ingestion, and streams
// newly completed prefix cells to the observer in global cross-product
// order. Safe for concurrent attempts.
func (st *runState) ingest(shard, k int, cell Cell) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.aborted {
		return fmt.Errorf("fleet: run aborted")
	}
	if k >= len(st.seq[shard]) {
		return fmt.Errorf("fleet: shard %d streamed %d cells beyond its %d-cell plan", shard, k+1, len(st.seq[shard]))
	}
	g := st.seq[shard][k]
	want := st.planned[g]
	if cell.Key != st.keys[g] {
		return fmt.Errorf("fleet: shard %d cell %d has key %q, plan expects %q (worker ran a different spec?)", shard, k, cell.Key, st.keys[g])
	}
	if cell.Workload != want.Key.Workload || cell.Machine != want.Key.Config || cell.Policy != want.Key.Policy || cell.Seed != want.Key.Seed {
		return fmt.Errorf("fleet: shard %d cell %d coordinates %s/%s/%s/%d do not match the plan", shard, k, cell.Workload, cell.Machine, cell.Policy, cell.Seed)
	}
	if st.filled[g] {
		// A duplicate from a retried shard. Scores are content-addressed,
		// so a divergent duplicate means nondeterminism somewhere — refuse
		// to paper over it.
		prev := st.results[g]
		if prev.HANTT != cell.HANTT || prev.HSTP != cell.HSTP {
			return fmt.Errorf("fleet: duplicate of cell %s diverged: (%v,%v) vs (%v,%v)", cell.Key, prev.HANTT, prev.HSTP, cell.HANTT, cell.HSTP)
		}
		return nil
	}
	st.filled[g] = true
	st.results[g] = cell
	for st.delivered < len(st.filled) && st.filled[st.delivered] {
		if st.obs != nil {
			st.obs(st.delivered, st.results[st.delivered])
		}
		st.delivered++
	}
	return nil
}

// journalFor snapshots a shard's completed cells as checkpoint records —
// what a replacement worker receives so it resumes instead of recomputing.
func (st *runState) journalFor(shard int) []experiment.JournalRecord {
	st.mu.Lock()
	defer st.mu.Unlock()
	var recs []experiment.JournalRecord
	for _, g := range st.seq[shard] {
		if st.filled[g] {
			recs = append(recs, experiment.JournalRecord{Key: st.keys[g], HANTT: st.results[g].HANTT, HSTP: st.results[g].HSTP})
		}
	}
	return recs
}

func (st *runState) abort() {
	st.mu.Lock()
	st.aborted = true
	st.mu.Unlock()
}

type shardTask struct {
	shard      int
	attempts   int
	readyAt    time.Time
	lastWorker string
}

type attemptResult struct {
	shard     int
	workerURL string
	err       error
}

// Run executes one sweep across the fleet and returns the per-shard cell
// slices (shard s's cells in s's own cross-product order — exactly what a
// WithShard(s, n) session returns, ready for MergeShards). A non-nil obs
// receives every cell of the full sweep exactly once, tagged with its
// global cross-product index, in that order (delivery is gated on all
// predecessors, as with the in-process observer). Only one Run may be
// active per Coordinator.
func (c *Coordinator) Run(ctx context.Context, spec Spec, obs func(index int, cell Cell)) ([][]Cell, error) {
	c.mu.Lock()
	if c.running {
		c.mu.Unlock()
		return nil, fmt.Errorf("fleet: a run is already in progress on this coordinator")
	}
	c.running = true
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.running = false
		c.mu.Unlock()
	}()

	shards := c.opts.Shards
	if shards <= 0 {
		// Deal one shard per live worker. An empty fleet waits here (up to
		// WorkerWaitTimeout) rather than degenerating to a 1-shard plan
		// that the first late worker would have to run whole.
		waitCtx, cancel := context.WithTimeout(ctx, c.opts.WorkerWaitTimeout)
		err := c.WaitWorkers(waitCtx, 1)
		cancel()
		if err != nil {
			return nil, fmt.Errorf("fleet: no live workers to run on: %w", err)
		}
		shards = c.liveCount()
	}
	b, err := spec.batch(0, shards)
	if err != nil {
		return nil, err
	}
	planned, err := b.Plan()
	if err != nil {
		return nil, err
	}

	st := &runState{
		planned: planned,
		keys:    make([]string, len(planned)),
		seq:     make([][]int, shards),
		results: make([]Cell, len(planned)),
		filled:  make([]bool, len(planned)),
		obs:     obs,
	}
	for i, p := range planned {
		st.keys[i] = p.CellKey.String()
		st.seq[p.Shard] = append(st.seq[p.Shard], i)
	}

	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	defer st.abort() // late attempt goroutines must not touch obs after return

	var pending []*shardTask
	remaining := 0
	for s := 0; s < shards; s++ {
		if len(st.seq[s]) == 0 {
			continue // more shards than baseline-sharing groups; nothing to run
		}
		pending = append(pending, &shardTask{shard: s})
		remaining++
	}
	inflight := make(map[int]*shardTask)
	// Buffered to the shard count so attempt goroutines can always post
	// their result and exit, even after Run has returned on error.
	done := make(chan attemptResult, shards)
	var noWorkerSince time.Time

	for remaining > 0 {
		// Dispatch every ready pending shard a free live worker exists for.
		now := time.Now()
		for i := 0; i < len(pending); {
			t := pending[i]
			if now.Before(t.readyAt) {
				i++
				continue
			}
			ws := c.claimWorker(t.lastWorker)
			if ws == nil {
				break // no free live worker; wait for a beat or a completion
			}
			pending = append(pending[:i], pending[i+1:]...)
			t.attempts++
			t.lastWorker = ws.url
			inflight[t.shard] = t
			go c.attempt(runCtx, ws.url, spec, t.shard, shards, len(st.seq[t.shard]), st, done)
		}

		// A fleet with work outstanding, nothing in flight and no live
		// worker is going nowhere: fail after WorkerWaitTimeout of that.
		if len(inflight) == 0 && c.liveCount() == 0 {
			if noWorkerSince.IsZero() {
				noWorkerSince = now
			} else if now.Sub(noWorkerSince) > c.opts.WorkerWaitTimeout {
				return nil, fmt.Errorf("fleet: no live workers for %s with %d shards outstanding", now.Sub(noWorkerSince).Round(time.Millisecond), remaining)
			}
		} else {
			noWorkerSince = time.Time{}
		}

		select {
		case res := <-done:
			t := inflight[res.shard]
			delete(inflight, res.shard)
			c.releaseWorker(res.workerURL)
			if res.err == nil {
				remaining--
				continue
			}
			if t.attempts >= c.opts.MaxAttempts {
				return nil, fmt.Errorf("fleet: shard %d failed %d times, last on %s: %w", res.shard, t.attempts, res.workerURL, res.err)
			}
			backoff := c.opts.RetryBackoff << (t.attempts - 1)
			if backoff > c.opts.MaxBackoff {
				backoff = c.opts.MaxBackoff
			}
			t.readyAt = time.Now().Add(backoff)
			pending = append(pending, t)
		case <-ctx.Done():
			return nil, fmt.Errorf("fleet: run cancelled: %w", ctx.Err())
		case <-time.After(50 * time.Millisecond):
			// Re-scan: backoffs expire, workers beat or die, late workers
			// register and immediately join the dispatch pool.
		}
	}

	out := make([][]Cell, shards)
	for s := 0; s < shards; s++ {
		out[s] = make([]Cell, len(st.seq[s]))
		for k, g := range st.seq[s] {
			out[s][k] = st.results[g]
		}
	}
	return out, nil
}

// attempt runs one dispatch of one shard to one worker, with a liveness
// watchdog that abandons the attempt when the worker's heartbeats stop —
// a hung worker must not hold its shard hostage.
func (c *Coordinator) attempt(ctx context.Context, workerURL string, spec Spec, shard, shards, want int, st *runState, done chan<- attemptResult) {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		t := time.NewTicker(100 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if !c.isLive(workerURL) {
					cancel()
					return
				}
			}
		}
	}()
	err := c.dispatch(actx, workerURL, spec, shard, shards, want, st)
	done <- attemptResult{shard: shard, workerURL: workerURL, err: err}
}

// dispatch POSTs one shard to a worker and ingests its NDJSON stream. The
// shard's already-completed cells (from a previous attempt) ride along as
// checkpoint records. Success requires exactly the planned cell count and
// a cleanly terminated stream; anything else — a non-200, a cut
// connection, an in-band error line, a short stream — fails the attempt.
func (c *Coordinator) dispatch(ctx context.Context, workerURL string, spec Spec, shard, shards, want int, st *runState) error {
	body, err := json.Marshal(runRequest{Spec: spec, ShardIndex: shard, ShardCount: shards, Journal: st.journalFor(shard)})
	if err != nil {
		return fmt.Errorf("fleet: encoding shard request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, workerURL+"/run", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("fleet: shard request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		return fmt.Errorf("fleet: dispatching shard %d to %s: %w", shard, workerURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("fleet: worker %s rejected shard %d: %s: %s", workerURL, shard, resp.Status, strings.TrimSpace(string(msg)))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	k := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var sl streamLine
		if err := json.Unmarshal(line, &sl); err != nil {
			return fmt.Errorf("fleet: worker %s shard %d sent a malformed line: %q", workerURL, shard, line)
		}
		if sl.Error != "" {
			return fmt.Errorf("fleet: worker %s failed shard %d: %s", workerURL, shard, sl.Error)
		}
		if err := st.ingest(shard, k, sl.Cell); err != nil {
			return err
		}
		k++
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("fleet: worker %s stream for shard %d cut after %d of %d cells: %w", workerURL, shard, k, want, err)
	}
	if k != want {
		return fmt.Errorf("fleet: worker %s stream for shard %d ended after %d of %d cells", workerURL, shard, k, want)
	}
	return nil
}
