package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"colab/internal/experiment"
)

// Worker is the executing side of a fleet: a thin HTTP daemon over the
// experiment session engine. Each /run request carries a sweep spec and a
// shard assignment; the worker runs exactly that shard — through its
// long-lived cell cache and, when the coordinator shipped one, a seeded
// checkpoint journal — and streams one NDJSON cell per completed cell, in
// the shard's deterministic cross-product order.
//
// Endpoints:
//
//	POST /run      execute one shard, streaming NDJSON cells
//	GET  /healthz  liveness probe
//	GET  /stats    WorkerStats (shards, cells, journal seeds, cache), JSON
//
// A Worker is safe for concurrent use; concurrent /run requests share the
// cell cache and dedup identical in-flight cells.
type Worker struct {
	mux   *http.ServeMux
	cache *experiment.Cache

	shardsRun     atomic.Uint64
	cellsStreamed atomic.Uint64
	journalSeeded atomic.Uint64

	// FaultInjector, when set, is consulted before streaming each cell of a
	// shard (with the shard index and the cell's position in the shard). A
	// non-nil return makes the worker abort the request's connection
	// abruptly, exactly as a killed process would — the failure-path tests'
	// way of dying mid-shard deterministically. Nil in production.
	FaultInjector func(shard, cell int) error
}

// NewWorker returns a worker daemon serving shards through cache (nil for
// a fresh unbounded cache).
func NewWorker(cache *experiment.Cache) *Worker {
	if cache == nil {
		cache = experiment.NewCache()
	}
	w := &Worker{mux: http.NewServeMux(), cache: cache}
	w.mux.HandleFunc("/run", w.handleRun)
	w.mux.HandleFunc("/healthz", func(rw http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(rw, "ok")
	})
	w.mux.HandleFunc("/stats", w.handleStats)
	return w
}

// Cache returns the worker's cell cache (for bounding via SetLimit or
// inspecting stats).
func (w *Worker) Cache() *experiment.Cache { return w.cache }

// Stats snapshots the worker's counters.
func (w *Worker) Stats() WorkerStats {
	return WorkerStats{
		ShardsRun:     w.shardsRun.Load(),
		CellsStreamed: w.cellsStreamed.Load(),
		JournalSeeded: w.journalSeeded.Load(),
		Cache:         w.cache.Stats(),
	}
}

func (w *Worker) ServeHTTP(rw http.ResponseWriter, r *http.Request) { w.mux.ServeHTTP(rw, r) }

func (w *Worker) handleStats(rw http.ResponseWriter, _ *http.Request) {
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(w.Stats())
}

// handleRun executes one shard. Spec errors before any cell is streamed
// are clean 400s; failures mid-stream surface as a terminal in-band
// {"error": ...} line. An injected fault (the test double of a process
// kill) aborts the connection without any terminal line, which the
// coordinator must treat exactly like a worker death.
func (w *Worker) handleRun(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(rw, "use POST", http.StatusMethodNotAllowed)
		return
	}
	var req runRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(rw, "fleet: decoding run request: "+err.Error(), http.StatusBadRequest)
		return
	}
	w.shardsRun.Add(1)
	b, err := req.Spec.batch(req.ShardIndex, req.ShardCount)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	b.Cache = w.cache

	// A reassigned shard arrives with the coordinator's copy of its
	// checkpoint journal: materialise it as a scratch journal file so the
	// session replays those cells instead of recomputing them. The file is
	// per-request scratch — the coordinator's in-memory copy, not the
	// worker, is the durable record.
	if len(req.Journal) > 0 {
		tmp, err := os.CreateTemp("", "colab-fleet-journal-*.ndjson")
		if err != nil {
			http.Error(rw, "fleet: journal scratch: "+err.Error(), http.StatusInternalServerError)
			return
		}
		path := tmp.Name()
		tmp.Close()
		defer os.Remove(path)
		if err := experiment.WriteJournal(path, req.Journal); err != nil {
			http.Error(rw, err.Error(), http.StatusInternalServerError)
			return
		}
		j, err := experiment.OpenJournal(path)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusInternalServerError)
			return
		}
		defer j.Close()
		b.Journal = j
		w.journalSeeded.Add(uint64(len(req.Journal)))
	}

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	enc := json.NewEncoder(rw)
	flusher, _ := rw.(http.Flusher)
	var (
		streamed int
		injected error
	)
	b.Observer = func(c experiment.BatchCell) {
		if injected != nil {
			return
		}
		if w.FaultInjector != nil {
			if err := w.FaultInjector(req.ShardIndex, streamed); err != nil {
				injected = err
				cancel()
				return
			}
		}
		if streamed == 0 {
			rw.Header().Set("Content-Type", "application/x-ndjson")
			rw.WriteHeader(http.StatusOK)
		}
		streamed++
		w.cellsStreamed.Add(1)
		if err := enc.Encode(streamLine{Cell: cellFromBatch(c)}); err != nil {
			// The coordinator hung up; stop computing for nobody.
			cancel()
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	_, err = b.Run(ctx)
	if injected != nil {
		// Die the way a SIGKILLed process dies: connection cut, no
		// terminal line, no clean chunked EOF.
		panic(http.ErrAbortHandler)
	}
	if err != nil {
		if streamed == 0 {
			http.Error(rw, "fleet: "+err.Error(), http.StatusBadRequest)
			return
		}
		enc.Encode(streamLine{Error: err.Error()})
	}
}

// cellFromBatch renders one session cell in wire form.
func cellFromBatch(c experiment.BatchCell) Cell {
	return Cell{
		Workload: c.Key.Workload,
		Machine:  c.Key.Config,
		Policy:   c.Key.Policy,
		Seed:     c.Key.Seed,
		HANTT:    c.Score.HANTT,
		HSTP:     c.Score.HSTP,
		Key:      c.CellKey.String(),
		Cached:   c.Cached,
	}
}

// RegisterAndHeartbeat announces the worker at selfURL to the coordinator
// and keeps it registered: an immediate registration, then one heartbeat
// per interval, until ctx is cancelled. Connection failures are retried
// at the same cadence — a worker that outlives a coordinator restart
// simply re-registers on its next beat, and registering is idempotent.
func RegisterAndHeartbeat(ctx context.Context, client *http.Client, coordinatorURL, selfURL string, interval time.Duration) {
	if client == nil {
		client = http.DefaultClient
	}
	if interval <= 0 {
		interval = time.Second
	}
	body, _ := json.Marshal(registration{URL: selfURL})
	post := func(path string) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, coordinatorURL+path, bytes.NewReader(body))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return // coordinator down or unreachable; next beat retries
		}
		resp.Body.Close()
	}
	post("/register")
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			post("/heartbeat")
		}
	}
}
