package task

import (
	"testing"

	"colab/internal/cpu"
	"colab/internal/sim"
)

func TestProgramTotalWork(t *testing.T) {
	p := Program{
		Compute{Work: 10},
		Lock{ID: 1},
		Compute{Work: 5},
		Unlock{ID: 1},
		Barrier{ID: 2, Parties: 4},
	}
	if w := p.TotalWork(); w != 15 {
		t.Fatalf("TotalWork = %v", w)
	}
	if (Program{}).TotalWork() != 0 {
		t.Fatalf("empty program work must be 0")
	}
}

func TestMaskOfAndAllowedOn(t *testing.T) {
	mask := MaskOf([]int{0, 2, 5})
	th := &Thread{Affinity: mask}
	for core, want := range map[int]bool{0: true, 1: false, 2: true, 5: true, 6: false} {
		if th.AllowedOn(core) != want {
			t.Errorf("AllowedOn(%d) = %v", core, !want)
		}
	}
	if th.AllowedOn(-1) || th.AllowedOn(64) {
		t.Errorf("unset cores must be disallowed")
	}
	if !MaskOf([]int{-3, cpu.MaxCores + 1}).IsEmpty() {
		t.Errorf("invalid indices must be ignored")
	}
	all := &Thread{Affinity: MaskAll()}
	if !all.AllowedOn(0) || !all.AllowedOn(63) || !all.AllowedOn(cpu.MaxCores-1) {
		t.Errorf("MaskAll must allow everything in range")
	}
	if all.AllowedOn(cpu.MaxCores) {
		t.Errorf("MaskAll must stop at the core universe bound")
	}
}

func TestCurrentOpAndStates(t *testing.T) {
	th := &Thread{Program: Program{Compute{Work: 1}, Sleep{Duration: 5}}}
	if _, ok := th.CurrentOp().(Compute); !ok {
		t.Fatalf("first op not compute")
	}
	th.PC = 2
	if th.CurrentOp() != nil {
		t.Fatalf("retired thread must have nil op")
	}
	for s, want := range map[State]string{
		New: "new", Ready: "ready", Running: "running", Blocked: "blocked", Done: "done",
	} {
		if s.String() != want {
			t.Errorf("State(%d) = %q", int(s), s.String())
		}
	}
}

func TestAppCompletionBookkeeping(t *testing.T) {
	app := &App{ID: 1, Name: "x"}
	t1 := &Thread{App: app, Name: "a"}
	t2 := &Thread{App: app, Name: "b"}
	app.Threads = []*Thread{t1, t2}
	if app.Finished() {
		t.Fatalf("fresh app cannot be finished")
	}
	app.NoteThreadDone(100)
	if app.Finished() {
		t.Fatalf("one of two threads done != finished")
	}
	app.NoteThreadDone(250)
	if !app.Finished() || app.FinishTime != 250 {
		t.Fatalf("finish = %v %v", app.Finished(), app.FinishTime)
	}
	app.StartTime = 50
	if app.TurnaroundTime() != 200 {
		t.Fatalf("turnaround = %v", app.TurnaroundTime())
	}
}

func TestWorkloadThreadsOrder(t *testing.T) {
	a1 := &App{ID: 0, Name: "a"}
	a1.Threads = []*Thread{{App: a1, Name: "a0"}, {App: a1, Name: "a1"}}
	a2 := &App{ID: 1, Name: "b"}
	a2.Threads = []*Thread{{App: a2, Name: "b0"}}
	w := &Workload{Name: "w", Apps: []*App{a1, a2}}
	if w.NumThreads() != 3 {
		t.Fatalf("NumThreads = %d", w.NumThreads())
	}
	ths := w.Threads()
	if ths[0].Name != "a0" || ths[2].Name != "b0" {
		t.Fatalf("thread order broken")
	}
}

func TestThreadStringAndReadyAccounting(t *testing.T) {
	app := &App{Name: "app"}
	th := &Thread{App: app, Name: "t0", Profile: cpu.WorkProfile{ILP: 0.5}}
	if th.String() != "app/t0" {
		t.Fatalf("String = %q", th.String())
	}
	th.MarkReadyAt(10 * sim.Millisecond)
	th.AccrueReadyWait(15 * sim.Millisecond)
	if th.ReadyTime != 5*sim.Millisecond {
		t.Fatalf("ReadyTime = %v", th.ReadyTime)
	}
}
