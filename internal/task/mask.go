package task

import (
	"fmt"
	"math/bits"
	"strings"

	"colab/internal/cpu"
)

// Mask is a set of allowed core indices — the affinity representation that
// replaced the original raw uint64 bitmap so machines larger than 64 cores
// can be simulated (cpu.MaxCores bounds the universe at 1024).
//
// Representation: cores 0..63 live in one inline word (the fast path every
// paper-sized machine stays on); cores 64 and above spill into extra words
// allocated only when a bit that high is actually set. The distinguished
// "all cores" value (MaskAll) is machine-size independent and admits every
// index below cpu.MaxCores.
//
// Mask behaves as a value: copying is cheap (one word plus a slice header)
// and safe — Set and Clear never mutate spilled words in place, they clone
// them first, so no two Mask values ever alias writable state. Allows, the
// scheduler hot path, performs no allocation and no copying of spilled
// words.
//
// Canonical form (maintained by every constructor and mutator, relied on by
// Equal): the all flag implies zero inline and spilled words; the spilled
// slice never ends in a zero word; and a mask whose bits cover the whole
// 0..cpu.MaxCores-1 universe is normalised to the all value.
type Mask struct {
	all bool
	lo  uint64   // cores 0..63
	hi  []uint64 // hi[w] covers cores 64*(w+1) .. 64*(w+1)+63
}

// maskWords is the number of 64-bit words covering the core universe.
const maskWords = cpu.MaxCores / 64

// MaskAll returns the mask admitting every core of any machine (the moral
// successor of the old AffinityAll constant).
func MaskAll() Mask { return Mask{all: true} }

// MaskOf builds an affinity mask admitting exactly the listed core indices.
// Out-of-range indices (negative, or >= cpu.MaxCores) are ignored.
func MaskOf(cores []int) Mask {
	var m Mask
	for _, c := range cores {
		m.Set(c)
	}
	return m
}

// MaskUpTo builds the mask admitting cores 0..n-1 (clamped to the
// cpu.MaxCores universe) — the bounded "every core of this machine" mask.
func MaskUpTo(n int) Mask {
	if n >= cpu.MaxCores {
		return MaskAll()
	}
	var m Mask
	if n <= 0 {
		return m
	}
	full := n / 64
	if full > 0 {
		m.lo = ^uint64(0)
	}
	if full > 1 {
		m.hi = make([]uint64, full-1)
		for i := range m.hi {
			m.hi[i] = ^uint64(0)
		}
	}
	for c := full * 64; c < n; c++ {
		m.Set(c)
	}
	return m
}

// IsAll reports whether the mask is the canonical every-core value.
func (m Mask) IsAll() bool { return m.all }

// IsEmpty reports whether the mask admits no core. The zero Mask is empty;
// the kernel treats an empty affinity as "unset" and defaults it to MaskAll
// at admission, exactly as it treated a zero uint64 mask.
func (m Mask) IsEmpty() bool { return !m.all && m.lo == 0 && len(m.hi) == 0 }

// Allows reports whether the mask admits core index c. This is the
// scheduler hot path: one branch and one shift for cores below 64, one
// bounds check and one indexed load above.
func (m Mask) Allows(c int) bool {
	if c < 0 {
		return false
	}
	if m.all {
		return c < cpu.MaxCores
	}
	if c < 64 {
		return m.lo&(1<<uint(c)) != 0
	}
	w := c/64 - 1
	if w >= len(m.hi) {
		return false
	}
	return m.hi[w]&(1<<uint(c%64)) != 0
}

// Set adds core index c to the mask. Out-of-range indices are ignored; the
// all mask already admits everything. Spilled words are cloned before
// modification so Mask copies never alias.
func (m *Mask) Set(c int) {
	if c < 0 || c >= cpu.MaxCores || m.all {
		return
	}
	if c < 64 {
		m.lo |= 1 << uint(c)
		m.normalize()
		return
	}
	w := c/64 - 1
	hi := make([]uint64, max(w+1, len(m.hi)))
	copy(hi, m.hi)
	hi[w] |= 1 << uint(c%64)
	m.hi = hi
	m.normalize()
}

// Clear removes core index c from the mask. Clearing from the all mask
// first materialises it over the full 0..cpu.MaxCores-1 universe (the only
// bound any machine can reach, enforced by cpu.Config.Validate). Spilled
// words are cloned before modification so Mask copies never alias.
func (m *Mask) Clear(c int) {
	if c < 0 || c >= cpu.MaxCores {
		return
	}
	if m.all {
		m.all = false
		m.lo = ^uint64(0)
		hi := make([]uint64, maskWords-1)
		for i := range hi {
			hi[i] = ^uint64(0)
		}
		m.hi = hi
	}
	if c < 64 {
		m.lo &^= 1 << uint(c)
		m.normalize()
		return
	}
	w := c/64 - 1
	if w >= len(m.hi) {
		return
	}
	hi := make([]uint64, len(m.hi))
	copy(hi, m.hi)
	hi[w] &^= 1 << uint(c%64)
	m.hi = hi
	m.normalize()
}

// And returns the intersection of m and o.
func (m Mask) And(o Mask) Mask {
	if m.all {
		return o
	}
	if o.all {
		return m
	}
	out := Mask{lo: m.lo & o.lo}
	n := min(len(m.hi), len(o.hi))
	if n > 0 {
		out.hi = make([]uint64, n)
		for i := 0; i < n; i++ {
			out.hi[i] = m.hi[i] & o.hi[i]
		}
	}
	out.normalize()
	return out
}

// Or returns the union of m and o.
func (m Mask) Or(o Mask) Mask {
	if m.all || o.all {
		return MaskAll()
	}
	out := Mask{lo: m.lo | o.lo}
	n := max(len(m.hi), len(o.hi))
	if n > 0 {
		out.hi = make([]uint64, n)
		copy(out.hi, m.hi)
		for i := range o.hi {
			out.hi[i] |= o.hi[i]
		}
	}
	out.normalize()
	return out
}

// Count returns the number of cores the mask admits (cpu.MaxCores for the
// all mask).
func (m Mask) Count() int {
	if m.all {
		return cpu.MaxCores
	}
	n := bits.OnesCount64(m.lo)
	for _, w := range m.hi {
		n += bits.OnesCount64(w)
	}
	return n
}

// Equal reports whether m and o admit exactly the same cores. Canonical
// form makes this a structural word compare.
func (m Mask) Equal(o Mask) bool {
	if m.all != o.all || m.lo != o.lo || len(m.hi) != len(o.hi) {
		return false
	}
	for i := range m.hi {
		if m.hi[i] != o.hi[i] {
			return false
		}
	}
	return true
}

// Iterate calls yield for every admitted core in ascending order, stopping
// early when yield returns false.
func (m Mask) Iterate(yield func(int) bool) {
	if m.all {
		for c := 0; c < cpu.MaxCores; c++ {
			if !yield(c) {
				return
			}
		}
		return
	}
	for w := 0; w <= len(m.hi); w++ {
		word := m.lo
		if w > 0 {
			word = m.hi[w-1]
		}
		base := w * 64
		for word != 0 {
			b := bits.TrailingZeros64(word)
			if !yield(base + b) {
				return
			}
			word &^= 1 << uint(b)
		}
	}
}

// Cores returns the admitted core indices in ascending order (diagnostics
// and tests; allocates).
func (m Mask) Cores() []int {
	out := make([]int, 0, m.Count())
	m.Iterate(func(c int) bool {
		out = append(out, c)
		return true
	})
	return out
}

// String renders the mask for traces and errors.
func (m Mask) String() string {
	if m.all {
		return "all"
	}
	if m.IsEmpty() {
		return "none"
	}
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	m.Iterate(func(c int) bool {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&sb, "%d", c)
		return true
	})
	sb.WriteByte('}')
	return sb.String()
}

// normalize restores canonical form: no trailing zero spilled words, nil
// over empty, and the fully-populated universe collapsed to the all value.
func (m *Mask) normalize() {
	n := len(m.hi)
	for n > 0 && m.hi[n-1] == 0 {
		n--
	}
	if n == 0 {
		m.hi = nil
	} else {
		m.hi = m.hi[:n]
	}
	if m.lo == ^uint64(0) && len(m.hi) == maskWords-1 {
		for _, w := range m.hi {
			if w != ^uint64(0) {
				return
			}
		}
		*m = Mask{all: true}
	}
}
