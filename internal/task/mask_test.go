package task

import (
	"sort"
	"testing"

	"colab/internal/cpu"
)

// maskModel is the reference model FuzzMaskEquivalence drives Mask against:
// a plain map of admitted cores (exact for any universe size), with a
// redundant uint64 shadow checked whenever the set stays below core 64 —
// the representation the Mask type replaced.
type maskModel struct {
	set map[int]bool
	lo  uint64
}

func newModel() *maskModel { return &maskModel{set: make(map[int]bool)} }

func (m *maskModel) setCore(c int) {
	if c < 0 || c >= cpu.MaxCores {
		return
	}
	m.set[c] = true
	if c < 64 {
		m.lo |= 1 << uint(c)
	}
}

func (m *maskModel) clearCore(c int) {
	if c < 0 || c >= cpu.MaxCores {
		return
	}
	delete(m.set, c)
	if c < 64 {
		m.lo &^= 1 << uint(c)
	}
}

func (m *maskModel) cores() []int {
	out := make([]int, 0, len(m.set))
	for c := range m.set {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

func (m *maskModel) low() bool {
	for c := range m.set {
		if c >= 64 {
			return false
		}
	}
	return true
}

// checkAgainstModel asserts full observable equivalence of mask and model.
func checkAgainstModel(t *testing.T, mask Mask, model *maskModel) {
	t.Helper()
	if got, want := mask.Count(), len(model.set); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	cores := model.cores()
	if got := mask.Cores(); !equalInts(got, cores) {
		t.Fatalf("Cores = %v, want %v", got, cores)
	}
	probes := append([]int{-1, 0, 1, 63, 64, 65, 127, 128, cpu.MaxCores - 1, cpu.MaxCores}, cores...)
	for _, c := range probes {
		want := c >= 0 && c < cpu.MaxCores && model.set[c]
		if got := mask.Allows(c); got != want {
			t.Fatalf("Allows(%d) = %v, want %v", c, got, want)
		}
	}
	if model.low() {
		// On the ≤64-core subset the uint64 shadow must agree bit for bit.
		var lo uint64
		mask.Iterate(func(c int) bool {
			if c < 64 {
				lo |= 1 << uint(c)
			}
			return true
		})
		if lo != model.lo {
			t.Fatalf("low-word divergence: %#x, want %#x", lo, model.lo)
		}
	}
	// Canonical-form round-trip: rebuilding from the admitted cores must
	// yield a structurally Equal mask.
	if rebuilt := MaskOf(mask.Cores()); !mask.IsAll() && !rebuilt.Equal(mask) {
		t.Fatalf("canonical round-trip broke: %v != %v", rebuilt, mask)
	}
	if mask.IsEmpty() != (len(model.set) == 0) {
		t.Fatalf("IsEmpty = %v with %d cores", mask.IsEmpty(), len(model.set))
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzMaskEquivalence drives Set/Clear/Allows/And/Or/Count/Iterate against
// the reference model. The op stream decodes two operations per byte:
// the low 7 bits select a core (scaled across the universe), the top bit
// picks Set vs Clear; every 16th step cross-checks And/Or against a second
// mask built from the stream's reverse.
func FuzzMaskEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x3f, 0x40, 0x41, 0x7f, 0x80, 0xbf, 0xc0, 0xff})
	f.Add([]byte{0x3e, 0x3f, 0x40, 0xbe, 0xbf, 0xc0})

	f.Fuzz(func(t *testing.T, ops []byte) {
		var mask Mask
		model := newModel()
		for i, op := range ops {
			// Spread the 7-bit operand over word boundaries: cores 0..95
			// map directly, higher values jump in 64-core strides so the
			// spilled words past 128 get exercised too.
			c := int(op & 0x7f)
			if c > 95 {
				c = 96 + (c-96)*64
			}
			if op&0x80 == 0 {
				mask.Set(c)
				model.setCore(c)
			} else {
				mask.Clear(c)
				model.clearCore(c)
			}
			if i%16 == 15 {
				checkAgainstModel(t, mask, model)
			}
		}
		checkAgainstModel(t, mask, model)

		// And/Or against a second mask from the reversed stream.
		var other Mask
		otherModel := newModel()
		for i := len(ops) - 1; i >= 0; i-- {
			c := int(ops[i] & 0x7f)
			if c > 95 {
				c = 96 + (c-96)*64
			}
			other.Set(c)
			otherModel.setCore(c)
		}
		and, or := mask.And(other), mask.Or(other)
		andModel, orModel := newModel(), newModel()
		for c := range model.set {
			orModel.setCore(c)
			if otherModel.set[c] {
				andModel.setCore(c)
			}
		}
		for c := range otherModel.set {
			orModel.setCore(c)
		}
		checkAgainstModel(t, and, andModel)
		checkAgainstModel(t, or, orModel)
	})
}

// Word-boundary edge cases: the inline word ends at 63, the first spilled
// word covers 64..127, the second begins at 128.
func TestMaskWordBoundaries(t *testing.T) {
	for _, tc := range []struct {
		name  string
		cores []int
	}{
		{"end-of-inline", []int{63}},
		{"first-spilled", []int{64}},
		{"straddle", []int{63, 64, 65}},
		{"end-of-first-spill", []int{127}},
		{"second-spill", []int{127, 128}},
		{"sparse-high", []int{0, 512, cpu.MaxCores - 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := MaskOf(tc.cores)
			if got := m.Cores(); !equalInts(got, tc.cores) {
				t.Fatalf("Cores = %v, want %v", got, tc.cores)
			}
			if m.Count() != len(tc.cores) {
				t.Fatalf("Count = %d", m.Count())
			}
			for _, c := range tc.cores {
				neighbors := []int{c - 1, c, c + 1}
				for _, p := range neighbors {
					want := false
					for _, x := range tc.cores {
						if x == p {
							want = true
						}
					}
					if p < 0 || p >= cpu.MaxCores {
						want = false
					}
					if m.Allows(p) != want {
						t.Fatalf("Allows(%d) = %v, want %v", p, m.Allows(p), want)
					}
				}
			}
			// Clearing every core must land back on the canonical empty mask.
			for _, c := range tc.cores {
				m.Clear(c)
			}
			if !m.IsEmpty() || !m.Equal(Mask{}) {
				t.Fatalf("clear-all left non-canonical mask %v", m)
			}
		})
	}
}

// The all mask is machine-size independent and survives a Set unchanged;
// clearing from it materialises the full universe minus that core.
func TestMaskAllSemantics(t *testing.T) {
	m := MaskAll()
	m.Set(5)
	if !m.IsAll() {
		t.Fatalf("Set on all must stay all")
	}
	m.Clear(64)
	if m.IsAll() || m.Count() != cpu.MaxCores-1 || m.Allows(64) {
		t.Fatalf("Clear(64) on all: count=%d allows=%v", m.Count(), m.Allows(64))
	}
	m.Set(64)
	if !m.IsAll() {
		t.Fatalf("re-setting the cleared core must normalise back to all, got %v cores", m.Count())
	}
	if MaskUpTo(cpu.MaxCores).IsAll() != true {
		t.Fatalf("MaskUpTo(universe) must canonicalise to all")
	}
	if got := MaskUpTo(65).Count(); got != 65 {
		t.Fatalf("MaskUpTo(65).Count = %d", got)
	}
}

// Value semantics: copies must never alias spilled words.
func TestMaskCopiesDoNotAlias(t *testing.T) {
	a := MaskOf([]int{10, 100})
	b := a
	b.Set(200)
	b.Clear(100)
	if !a.Allows(100) || a.Allows(200) {
		t.Fatalf("mutating a copy leaked into the original: %v", a)
	}
	if a.Count() != 2 || b.Count() != 2 {
		t.Fatalf("counts: a=%d b=%d", a.Count(), b.Count())
	}
}

func TestMaskString(t *testing.T) {
	if got := MaskAll().String(); got != "all" {
		t.Fatalf("all = %q", got)
	}
	if got := (Mask{}).String(); got != "none" {
		t.Fatalf("empty = %q", got)
	}
	if got := MaskOf([]int{2, 0, 65}).String(); got != "{0,2,65}" {
		t.Fatalf("set = %q", got)
	}
}
