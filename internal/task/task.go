// Package task defines the workload-side model: applications composed of
// threads, and the small program DSL threads execute on the simulated
// machine (compute segments, futex-backed locks, barriers and bounded
// queues).
//
// A thread's program is the stand-in for a PARSEC/SPLASH-2 benchmark
// thread: it interleaves compute work (whose speed depends on the core type
// and the thread's hidden cpu.WorkProfile) with synchronisation that
// produces the blocking patterns the COLAB bottleneck detector feeds on.
package task

import (
	"fmt"

	"colab/internal/cpu"
	"colab/internal/sim"
)

// State is the lifecycle state of a thread.
type State int

const (
	// New threads have not been admitted to the machine yet.
	New State = iota
	// Ready threads sit in some run queue.
	Ready
	// Running threads occupy a core.
	Running
	// Blocked threads wait on a futex (lock, barrier or queue).
	Blocked
	// Done threads have retired their whole program.
	Done
)

// String names the state.
func (s State) String() string {
	switch s {
	case New:
		return "new"
	case Ready:
		return "ready"
	case Running:
		return "running"
	case Blocked:
		return "blocked"
	case Done:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Op is one step of a thread program.
type Op interface{ isOp() }

// Compute retires Work work units. One work unit is calibrated as one
// nanosecond of little-core execution; a big core retires the thread's
// TrueSpeedup units per nanosecond.
type Compute struct{ Work float64 }

// Lock acquires the mutex built on futex ID (blocking when contended).
type Lock struct{ ID int }

// Unlock releases the mutex on futex ID, waking one waiter.
type Unlock struct{ ID int }

// Barrier joins barrier ID; the thread blocks until Parties threads of the
// same application have arrived, then all are released.
type Barrier struct {
	ID      int
	Parties int
}

// Put produces one item into the application's bounded queue ID, blocking
// while the queue is full.
type Put struct{ ID int }

// Get consumes one item from the application's bounded queue ID, blocking
// while the queue is empty.
type Get struct{ ID int }

// Sleep suspends the thread for a fixed simulated duration (I/O or think
// time); it does not assign blocking blame to anyone.
type Sleep struct{ Duration sim.Time }

// Phase switches the thread's active work profile, modelling program phase
// changes (e.g. an FFT alternating compute butterflies with memory-bound
// transposes). Phase behaviour is why the speedup model predicts from the
// current labeling interval's counters rather than lifetime totals.
type Phase struct{ Profile cpu.WorkProfile }

func (Compute) isOp() {}
func (Lock) isOp()    {}
func (Unlock) isOp()  {}
func (Barrier) isOp() {}
func (Put) isOp()     {}
func (Get) isOp()     {}
func (Sleep) isOp()   {}
func (Phase) isOp()   {}

// Program is the ordered op list of one thread.
type Program []Op

// TotalWork sums the compute work in the program, in work units.
func (p Program) TotalWork() float64 {
	s := 0.0
	for _, op := range p {
		if c, ok := op.(Compute); ok {
			s += c.Work
		}
	}
	return s
}

// QueueSpec declares a bounded queue used by an application's Put/Get ops.
type QueueSpec struct {
	ID       int
	Capacity int
}

// App is one application (benchmark instance) in a workload: a set of
// threads plus the queues they share. Futex and barrier IDs are scoped to
// the app by the kernel.
type App struct {
	ID      int
	Name    string
	Threads []*Thread
	Queues  []QueueSpec

	// Arrival is when the app enters the system. Zero (the closed-system
	// default) admits the app at simulation start; a positive time makes the
	// kernel admit it through a timestamped admission event, modelling an
	// open system where work arrives while earlier apps run. Turnaround is
	// measured from Arrival, not from time zero.
	Arrival sim.Time

	// Runtime results, filled by the kernel.
	StartTime  sim.Time
	FinishTime sim.Time
	finished   int
}

// NumThreads returns the thread count of the app.
func (a *App) NumThreads() int { return len(a.Threads) }

// TurnaroundTime returns the app's completion time minus its start time.
// Valid only after the app finished.
func (a *App) TurnaroundTime() sim.Time { return a.FinishTime - a.StartTime }

// Finished reports whether every thread of the app is done.
func (a *App) Finished() bool { return a.finished == len(a.Threads) }

// NoteThreadDone records one thread retiring; the kernel calls this.
func (a *App) NoteThreadDone(now sim.Time) {
	a.finished++
	if a.finished == len(a.Threads) {
		a.FinishTime = now
	}
}

// Thread is one schedulable entity. Static fields (program, profile) are
// set by the workload generator; runtime fields are owned by the kernel and
// the active scheduling policy.
type Thread struct {
	// Static identity.
	ID      int // dense global index within one simulation
	App     *App
	Name    string
	Profile cpu.WorkProfile
	Program Program

	// Runtime execution state (kernel-owned).
	State     State
	PC        int     // index of the current op
	Remaining float64 // work units left in the current Compute op
	CoreID    int     // core currently running (or last ran) the thread; -1 = never ran

	// Scheduling state.
	Affinity   Mask     // allowed-core set; policies may narrow it (WASH)
	VRuntime   sim.Time // CFS virtual runtime (scale-slice adjusts its growth)
	HomeDomain int      // LLC domain the thread's app was placed in at admission (0 on flat machines)

	// Accounting (kernel-owned).
	SumExec     sim.Time // total time on any core
	SumExecBig  sim.Time // total time on big cores
	WorkDone    float64  // work units retired
	WaitStart   sim.Time // when the thread last began a futex wait
	BlockBlame  sim.Time // cumulative time this thread made others wait (paper's criticality metric)
	BlockedTime sim.Time // cumulative time this thread spent blocked
	ReadyTime   sim.Time // cumulative time spent runnable-but-waiting
	readySince  sim.Time
	FinishTime  sim.Time

	// Performance counters (kernel-sampled).
	TotalCounters    cpu.Vec
	IntervalCounters cpu.Vec // since the last labeler interval; reset by policies

	// Event statistics.
	Migrations      int
	CrossDomainHops int // sum of LLC-domain hops over all migrations (0 on flat machines)
	Preemptions     int
	Switches        int
}

// AllowedOn reports whether the thread's affinity admits core index c.
func (t *Thread) AllowedOn(c int) bool { return t.Affinity.Allows(c) }

// CurrentOp returns the op at the program counter, or nil when retired.
func (t *Thread) CurrentOp() Op {
	if t.PC >= len(t.Program) {
		return nil
	}
	return t.Program[t.PC]
}

// MarkReadyAt starts the ready-wait accounting clock.
func (t *Thread) MarkReadyAt(now sim.Time) { t.readySince = now }

// AccrueReadyWait stops the ready-wait clock at now.
func (t *Thread) AccrueReadyWait(now sim.Time) {
	if t.readySince > 0 || now >= t.readySince {
		t.ReadyTime += now - t.readySince
	}
}

// String identifies the thread for traces and errors.
func (t *Thread) String() string {
	app := "?"
	if t.App != nil {
		app = t.App.Name
	}
	return fmt.Sprintf("%s/%s", app, t.Name)
}

// Workload is the unit the experiment harness runs: a named set of apps
// admitted together at time zero.
type Workload struct {
	Name string
	Apps []*App
}

// Open reports whether any app arrives after time zero (an open-system
// workload).
func (w *Workload) Open() bool {
	for _, a := range w.Apps {
		if a.Arrival > 0 {
			return true
		}
	}
	return false
}

// NumThreads returns the total thread count across apps.
func (w *Workload) NumThreads() int {
	n := 0
	for _, a := range w.Apps {
		n += len(a.Threads)
	}
	return n
}

// Threads returns all threads across apps in ID order of declaration.
func (w *Workload) Threads() []*Thread {
	var out []*Thread
	for _, a := range w.Apps {
		out = append(out, a.Threads...)
	}
	return out
}
