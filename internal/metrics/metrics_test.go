package metrics

import (
	"math"
	"testing"

	"colab/internal/kernel"
	"colab/internal/sim"
)

func res(turnarounds ...sim.Time) *kernel.Result {
	r := &kernel.Result{}
	for i, tt := range turnarounds {
		r.Apps = append(r.Apps, kernel.AppResult{Name: "app", AppID: i, Turnaround: tt})
	}
	return r
}

func TestHNTT(t *testing.T) {
	if got := HNTT(200, 100); got != 2 {
		t.Fatalf("HNTT = %v", got)
	}
	if HNTT(100, 0) != 0 {
		t.Fatalf("zero baseline must yield 0")
	}
}

func TestScore(t *testing.T) {
	// Two apps: slowdowns 2x and 4x -> H_ANTT = 3, H_STP = 0.5+0.25.
	r := res(200, 400)
	bases := []sim.Time{100, 100}
	s, err := Score(r, func(i int, _ kernel.AppResult) sim.Time { return bases[i] })
	if err != nil {
		t.Fatal(err)
	}
	if s.HANTT != 3 {
		t.Fatalf("HANTT = %v", s.HANTT)
	}
	if math.Abs(s.HSTP-0.75) > 1e-12 {
		t.Fatalf("HSTP = %v", s.HSTP)
	}
}

func TestScoreErrors(t *testing.T) {
	if _, err := Score(&kernel.Result{}, nil); err == nil {
		t.Fatalf("empty result must error")
	}
	r := res(100)
	if _, err := Score(r, func(int, kernel.AppResult) sim.Time { return 0 }); err == nil {
		t.Fatalf("missing baseline must error")
	}
	r2 := res(0)
	if _, err := Score(r2, func(int, kernel.AppResult) sim.Time { return 100 }); err == nil {
		t.Fatalf("unfinished app must error")
	}
}

func TestNormalized(t *testing.T) {
	s := MixScore{HANTT: 1.5, HSTP: 3}
	ref := MixScore{HANTT: 2, HSTP: 2}
	n := Normalized(s, ref)
	if n.HANTT != 0.75 || n.HSTP != 1.5 {
		t.Fatalf("normalized = %+v", n)
	}
	z := Normalized(s, MixScore{})
	if z.HANTT != 0 || z.HSTP != 0 {
		t.Fatalf("degenerate reference must zero out: %+v", z)
	}
}
