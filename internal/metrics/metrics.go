// Package metrics implements the paper's evaluation metrics (§5.1):
// Heterogeneous Normalized Turnaround Time (H_NTT), Heterogeneous Average
// Normalized Turnaround Time (H_ANTT) and Heterogeneous System Throughput
// (H_STP), after Eyerman & Eeckhout's ANTT/STP adapted for AMPs: the
// baseline runtime of each application is measured alone on a machine with
// only big cores, removing the scheduler's influence from the baseline.
package metrics

import (
	"fmt"

	"colab/internal/kernel"
	"colab/internal/sim"
)

// HNTT is T_mix / T_singleBig for one application: lower is better.
func HNTT(mix, baselineBig sim.Time) float64 {
	if baselineBig <= 0 {
		return 0
	}
	return float64(mix) / float64(baselineBig)
}

// MixScore carries both metrics for one multi-programmed run.
type MixScore struct {
	HANTT float64 // average slowdown vs big-only-alone; lower is better
	HSTP  float64 // summed relative throughput; higher is better
}

// Score computes H_ANTT and H_STP for a finished run. baseline maps each
// app (by position in the result) to its big-only-alone turnaround.
func Score(res *kernel.Result, baseline func(appIdx int, app kernel.AppResult) sim.Time) (MixScore, error) {
	if len(res.Apps) == 0 {
		return MixScore{}, fmt.Errorf("metrics: result has no apps")
	}
	var antt, stp float64
	for i, a := range res.Apps {
		base := baseline(i, a)
		if base <= 0 {
			return MixScore{}, fmt.Errorf("metrics: app %s has no baseline", a.Name)
		}
		if a.Turnaround <= 0 {
			return MixScore{}, fmt.Errorf("metrics: app %s did not finish", a.Name)
		}
		antt += float64(a.Turnaround) / float64(base)
		stp += float64(base) / float64(a.Turnaround)
	}
	n := float64(len(res.Apps))
	return MixScore{HANTT: antt / n, HSTP: stp}, nil
}

// Normalized expresses a score relative to a reference scheduler's score on
// the same workload/config (the paper normalises everything to Linux CFS):
// H_ANTT ratios below 1 and H_STP ratios above 1 mean better than the
// reference.
func Normalized(s, ref MixScore) MixScore {
	out := MixScore{}
	if ref.HANTT > 0 {
		out.HANTT = s.HANTT / ref.HANTT
	}
	if ref.HSTP > 0 {
		out.HSTP = s.HSTP / ref.HSTP
	}
	return out
}
