// Package loadgen is the workload-generation subsystem behind the
// scenario grammar's open-system features: simulated-duration syntax,
// file-trace replay (arrive=tracefile) and the global load-generator
// transformers (@load=) that modulate a scenario's arrival processes —
// open-loop target utilisation, closed-loop think time, and diurnal or
// bursty time-varying rate envelopes over any base arrival process.
//
// The package is deliberately low-level and deterministic: everything in
// it is a pure function of its inputs (no clocks, no global RNG), so the
// arrival streams it shapes are byte-identical across runs, worker counts
// and hosts. internal/workload owns the grammar syntax and applies these
// transformers at build time.
package loadgen

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"colab/internal/sim"
)

// Kind enumerates the load-generator transformers of the scenario
// grammar's @load= clause.
type Kind string

// The load-generator kinds.
const (
	// None is the zero value: arrival processes pass through unchanged.
	None Kind = ""
	// Util is the open-loop target-utilisation generator: it replaces the
	// scenario's arrival processes with one Poisson stream whose rate is
	// derived from the target machine's aggregate capacity, so the offered
	// load is Target of what the machine can absorb.
	Util Kind = "util"
	// Closed is the closed-loop think-time generator: the k-th admitted
	// app prepends k*Think of task.Sleep to each of its threads, modelling
	// a fixed population trickling in after think pauses. The system stays
	// closed (every app admitted at time zero).
	Closed Kind = "closed"
	// Diurnal warps arrival times through a smooth day-night rate
	// envelope: sinusoidal, period Period, peak-to-trough ratio Factor,
	// unit mean (the long-run average rate of the base process is kept).
	Diurnal Kind = "diurnal"
	// Burst warps arrival times through a square-wave envelope: each
	// Period spends fraction Duty at Factor times the off-burst rate,
	// unit mean.
	Burst Kind = "burst"
)

// Load is one parsed @load= clause: a transformer applied globally to a
// scenario's arrival processes. The zero value is no transformer.
type Load struct {
	Kind Kind
	// Target is the utilisation target in (0, 1] (Util).
	Target float64
	// Think is the per-position think time (Closed).
	Think sim.Time
	// Period is the envelope period (Diurnal, Burst).
	Period sim.Time
	// Factor is the peak-to-trough rate ratio (Diurnal, >= 1) or the
	// in-burst rate multiplier (Burst, >= 1).
	Factor float64
	// Duty is the fraction of each period spent bursting (Burst, in
	// (0, 1)).
	Duty float64
}

// Validate checks the transformer's parameters.
func (l Load) Validate() error {
	switch l.Kind {
	case None:
		return nil
	case Util:
		if !(l.Target > 0 && l.Target <= 1) {
			return fmt.Errorf("loadgen: util target %v out of range (0, 1]", l.Target)
		}
	case Closed:
		if l.Think <= 0 {
			return fmt.Errorf("loadgen: closed think time must be positive, got %v", l.Think)
		}
	case Diurnal:
		if l.Period <= 0 {
			return fmt.Errorf("loadgen: diurnal period must be positive, got %v", l.Period)
		}
		if l.Factor < 1 {
			return fmt.Errorf("loadgen: diurnal peak ratio %v must be >= 1", l.Factor)
		}
	case Burst:
		if l.Period <= 0 {
			return fmt.Errorf("loadgen: burst period must be positive, got %v", l.Period)
		}
		if !(l.Duty > 0 && l.Duty < 1) {
			return fmt.Errorf("loadgen: burst duty %v out of range (0, 1)", l.Duty)
		}
		if l.Factor < 1 {
			return fmt.Errorf("loadgen: burst factor %v must be >= 1", l.Factor)
		}
	default:
		return fmt.Errorf("loadgen: unknown load generator %q", l.Kind)
	}
	return nil
}

// ShapesArrivals reports whether the transformer changes arrival times
// (as opposed to thread programs): such transformers are stripped for the
// closed-system baseline build, exactly like per-term arrival processes.
func (l Load) ShapesArrivals() bool {
	switch l.Kind {
	case Util, Diurnal, Burst:
		return true
	}
	return false
}

// Opens reports whether the transformer itself makes the scenario an open
// system (apps arriving over time even when no term carries @arrive).
func (l Load) Opens() bool { return l.Kind == Util }

// String renders the transformer in grammar form (the form @load= accepts
// and Spec.Canonical emits); the zero value renders empty.
func (l Load) String() string {
	switch l.Kind {
	case None:
		return ""
	case Util:
		return fmt.Sprintf("util(%s)", formatFloat(l.Target))
	case Closed:
		return fmt.Sprintf("closed(think=%s)", FormatDuration(l.Think))
	case Diurnal:
		return fmt.Sprintf("diurnal(%s,%s)", FormatDuration(l.Period), formatFloat(l.Factor))
	default: // Burst
		return fmt.Sprintf("burst(%s,%s,%s)", FormatDuration(l.Period), formatFloat(l.Duty), formatFloat(l.Factor))
	}
}

// ParseLoad parses one @load= call already split into function name and
// arguments (the grammar owns the call syntax).
func ParseLoad(fn string, args []string) (Load, error) {
	var l Load
	switch Kind(fn) {
	case Util:
		if len(args) != 1 {
			return Load{}, fmt.Errorf("util takes one target utilisation, got %d args", len(args))
		}
		v, err := parseFloat(args[0])
		if err != nil {
			return Load{}, err
		}
		l = Load{Kind: Util, Target: v}
	case Closed:
		if len(args) != 1 {
			return Load{}, fmt.Errorf("closed takes (think=<duration>), got %d args", len(args))
		}
		key, value, ok := strings.Cut(args[0], "=")
		if !ok || strings.TrimSpace(key) != "think" {
			return Load{}, fmt.Errorf("closed takes (think=<duration>), got %q", args[0])
		}
		d, err := ParseDuration(value)
		if err != nil {
			return Load{}, err
		}
		l = Load{Kind: Closed, Think: d}
	case Diurnal:
		if len(args) != 2 {
			return Load{}, fmt.Errorf("diurnal takes (period, peak), got %d args", len(args))
		}
		p, err := ParseDuration(args[0])
		if err != nil {
			return Load{}, err
		}
		k, err := parseFloat(args[1])
		if err != nil {
			return Load{}, err
		}
		l = Load{Kind: Diurnal, Period: p, Factor: k}
	case Burst:
		if len(args) != 3 {
			return Load{}, fmt.Errorf("burst takes (period, duty, factor), got %d args", len(args))
		}
		p, err := ParseDuration(args[0])
		if err != nil {
			return Load{}, err
		}
		d, err := parseFloat(args[1])
		if err != nil {
			return Load{}, err
		}
		f, err := parseFloat(args[2])
		if err != nil {
			return Load{}, err
		}
		l = Load{Kind: Burst, Period: p, Duty: d, Factor: f}
	default:
		return Load{}, fmt.Errorf("unknown load generator %q (want util, closed, diurnal or burst)", fn)
	}
	if err := l.Validate(); err != nil {
		return Load{}, err
	}
	return l, nil
}

// Warp maps one base arrival time through the transformer's rate
// envelope: an arrival at cumulative unit-rate position u lands at the t
// with E(t) = u, where E is the envelope's cumulative rate. Warp(0) = 0
// (closed terms stay closed), Warp is strictly monotone, and because the
// envelope has unit mean the long-run average rate is preserved —
// arrivals bunch into the high-rate phases and stretch out of the low
// ones. Only Diurnal and Burst warp; every other kind is the identity.
func (l Load) Warp(u sim.Time) sim.Time {
	if u <= 0 {
		return u
	}
	switch l.Kind {
	case Diurnal:
		return sim.Time(math.Round(l.diurnalInverse(float64(u))))
	case Burst:
		return sim.Time(math.Round(l.burstInverse(float64(u))))
	}
	return u
}

// diurnalCumulative is E(t) for the unit-mean sinusoidal envelope
// e(s) = c*(1 + (k-1)*sin^2(pi*s/P)), c = 2/(k+1).
func (l Load) diurnalCumulative(t float64) float64 {
	p, k := float64(l.Period), l.Factor
	c := 2 / (k + 1)
	return c * (t + (k-1)*(t/2-p/(4*math.Pi)*math.Sin(2*math.Pi*t/p)))
}

// diurnalInverse solves E(t) = u by bisection; E's slope is bounded in
// [c, c*k], which brackets the root, and the fixed iteration count keeps
// the result deterministic everywhere.
func (l Load) diurnalInverse(u float64) float64 {
	k := l.Factor
	c := 2 / (k + 1)
	lo, hi := u/(c*k), u/c
	for i := 0; i < 64 && hi-lo > 1e-6; i++ {
		mid := lo + (hi-lo)/2
		if l.diurnalCumulative(mid) < u {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2
}

// burstInverse inverts the square-wave envelope analytically: base rate
// b = 1/(duty*factor + 1 - duty), in-burst rate b*factor, per-period
// cumulative gain exactly Period.
func (l Load) burstInverse(u float64) float64 {
	p, d, f := float64(l.Period), l.Duty, l.Factor
	b := 1 / (d*f + 1 - d)
	n := math.Floor(u / p)
	r := u - n*p // residual cumulative inside the period, in [0, P)
	burstGain := b * f * d * p
	var x float64
	if r <= burstGain {
		x = r / (b * f)
	} else {
		x = d*p + (r-burstGain)/b
	}
	return n*p + x
}

// UtilGap derives the mean inter-arrival gap (in simulated nanoseconds)
// of the util(target) Poisson stream: an app of meanWork work units
// arriving every gap nanoseconds offers meanWork/gap work per nanosecond
// to a machine absorbing capacity work units per nanosecond, so the gap
// that hits the target utilisation is meanWork/(target*capacity).
func UtilGap(meanWork, capacity, target float64) (float64, error) {
	if capacity <= 0 {
		return 0, fmt.Errorf("loadgen: util needs the target machine's aggregate capacity (got %v)", capacity)
	}
	if meanWork <= 0 {
		return 0, fmt.Errorf("loadgen: util needs positive mean app work (got %v)", meanWork)
	}
	if !(target > 0 && target <= 1) {
		return 0, fmt.Errorf("loadgen: util target %v out of range (0, 1]", target)
	}
	return meanWork / (target * capacity), nil
}

// parseFloat parses a finite positive-or-zero float argument.
func parseFloat(s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return v, nil
}

// formatFloat renders a float in shortest round-tripping form, so
// canonical load clauses are stable fixed points of parse-then-render.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ParseDuration parses a simulated duration: a non-negative number with
// an optional unit suffix — ns (the default when omitted), us, ms, s.
func ParseDuration(s string) (sim.Time, error) {
	s = strings.TrimSpace(s)
	unit := float64(1)
	switch {
	case strings.HasSuffix(s, "ns"):
		s = s[:len(s)-2]
	case strings.HasSuffix(s, "us"):
		s, unit = s[:len(s)-2], float64(sim.Microsecond)
	case strings.HasSuffix(s, "µs"):
		s, unit = strings.TrimSuffix(s, "µs"), float64(sim.Microsecond)
	case strings.HasSuffix(s, "ms"):
		s, unit = s[:len(s)-2], float64(sim.Millisecond)
	case strings.HasSuffix(s, "s"):
		s, unit = s[:len(s)-1], float64(sim.Second)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	ns := v * unit
	if ns > math.MaxInt64/4 {
		return 0, fmt.Errorf("duration %q too large", s)
	}
	return sim.Time(ns), nil
}

// FormatDuration renders a duration in the largest exact unit.
func FormatDuration(t sim.Time) string {
	switch {
	case t != 0 && t%sim.Second == 0:
		return fmt.Sprintf("%ds", t/sim.Second)
	case t != 0 && t%sim.Millisecond == 0:
		return fmt.Sprintf("%dms", t/sim.Millisecond)
	case t != 0 && t%sim.Microsecond == 0:
		return fmt.Sprintf("%dus", t/sim.Microsecond)
	default:
		return fmt.Sprintf("%dns", t)
	}
}
