package loadgen

import (
	"math"
	"strings"
	"testing"

	"colab/internal/sim"
)

func TestParseLoadForms(t *testing.T) {
	cases := []struct {
		fn   string
		args []string
		want string
	}{
		{"util", []string{"0.7"}, "util(0.7)"},
		{"util", []string{"1"}, "util(1)"},
		{"closed", []string{"think=5ms"}, "closed(think=5ms)"},
		{"closed", []string{"think=1500us"}, "closed(think=1500us)"},
		{"diurnal", []string{"30ms", "3"}, "diurnal(30ms,3)"},
		{"diurnal", []string{"1s", "1.5"}, "diurnal(1s,1.5)"},
		{"burst", []string{"16ms", "0.25", "4"}, "burst(16ms,0.25,4)"},
	}
	for _, c := range cases {
		l, err := ParseLoad(c.fn, c.args)
		if err != nil {
			t.Fatalf("ParseLoad(%s, %v): %v", c.fn, c.args, err)
		}
		if got := l.String(); got != c.want {
			t.Errorf("ParseLoad(%s, %v).String() = %q, want %q", c.fn, c.args, got, c.want)
		}
	}
}

func TestParseLoadErrors(t *testing.T) {
	cases := []struct {
		fn      string
		args    []string
		wantSub string
	}{
		{"util", []string{"0"}, "out of range"},
		{"util", []string{"1.2"}, "out of range"},
		{"util", []string{"x"}, "bad number"},
		{"util", []string{"0.5", "0.6"}, "one target"},
		{"closed", []string{"5ms"}, "think="},
		{"closed", []string{"think=0"}, "positive"},
		{"diurnal", []string{"30ms"}, "period, peak"},
		{"diurnal", []string{"0", "3"}, "positive"},
		{"diurnal", []string{"30ms", "0.5"}, ">= 1"},
		{"burst", []string{"16ms", "4"}, "period, duty, factor"},
		{"burst", []string{"16ms", "1.5", "4"}, "out of range"},
		{"burst", []string{"16ms", "0.25", "0.5"}, ">= 1"},
		{"trickle", []string{"1"}, "unknown load generator"},
	}
	for _, c := range cases {
		if _, err := ParseLoad(c.fn, c.args); err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParseLoad(%s, %v) error = %v, want substring %q", c.fn, c.args, err, c.wantSub)
		}
	}
}

// TestWarpInvertsCumulative checks E(Warp(u)) == u for both envelopes:
// the warped stream realises exactly the envelope's cumulative rate.
func TestWarpInvertsCumulative(t *testing.T) {
	diurnal := Load{Kind: Diurnal, Period: 30 * sim.Millisecond, Factor: 3}
	burst := Load{Kind: Burst, Period: 16 * sim.Millisecond, Duty: 0.25, Factor: 4}
	for _, u := range []sim.Time{0, 1, 977, sim.Millisecond, 7 * sim.Millisecond, 42 * sim.Millisecond, 313 * sim.Millisecond} {
		tw := diurnal.Warp(u)
		if back := diurnal.diurnalCumulative(float64(tw)); math.Abs(back-float64(u)) > 1 {
			t.Errorf("diurnal: E(Warp(%d)) = %.3f, want %d", u, back, u)
		}
		// Re-derive the burst cumulative directly.
		tw = burst.Warp(u)
		p, d, f := float64(burst.Period), burst.Duty, burst.Factor
		b := 1 / (d*f + 1 - d)
		n := math.Floor(float64(tw) / p)
		x := float64(tw) - n*p
		var e float64
		if x <= d*p {
			e = b * f * x
		} else {
			e = b*f*d*p + b*(x-d*p)
		}
		if back := n*p + e; math.Abs(back-float64(u)) > 1 {
			t.Errorf("burst: E(Warp(%d)) = %.3f, want %d", u, back, u)
		}
	}
}

func TestWarpProperties(t *testing.T) {
	for _, l := range []Load{
		{Kind: Diurnal, Period: 10 * sim.Millisecond, Factor: 5},
		{Kind: Burst, Period: 10 * sim.Millisecond, Duty: 0.1, Factor: 8},
	} {
		if got := l.Warp(0); got != 0 {
			t.Errorf("%s: Warp(0) = %d, want 0 (closed terms must stay closed)", l.Kind, got)
		}
		prev := sim.Time(-1)
		for u := sim.Time(0); u <= 100*sim.Millisecond; u += 199 * sim.Microsecond {
			w := l.Warp(u)
			if w < prev {
				t.Fatalf("%s: Warp not monotone at u=%d (%d < %d)", l.Kind, u, w, prev)
			}
			prev = w
		}
		// Unit mean: over whole periods the warp is (nearly) the identity.
		u := 10 * l.Period
		if w := l.Warp(u); math.Abs(float64(w-u)) > 2 {
			t.Errorf("%s: Warp(%d) = %d, want ~%d (unit-mean envelope over whole periods)", l.Kind, u, w, u)
		}
	}
	// Identity kinds.
	for _, l := range []Load{{}, {Kind: Util, Target: 0.5}, {Kind: Closed, Think: sim.Millisecond}} {
		if got := l.Warp(12345); got != 12345 {
			t.Errorf("%v: Warp(12345) = %d, want identity", l.Kind, got)
		}
	}
}

func TestWarpDeterministic(t *testing.T) {
	l := Load{Kind: Diurnal, Period: 30 * sim.Millisecond, Factor: 3}
	for _, u := range []sim.Time{1, 500, 123456789} {
		if a, b := l.Warp(u), l.Warp(u); a != b {
			t.Fatalf("Warp(%d) varied: %d vs %d", u, a, b)
		}
	}
}

func TestUtilGap(t *testing.T) {
	gap, err := UtilGap(2e6, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// 2e6 work units per arrival / (0.5 * 4 work units per ns) = 1e6 ns.
	if math.Abs(gap-1e6) > 1e-9 {
		t.Errorf("UtilGap = %v, want 1e6", gap)
	}
	for _, c := range []struct{ work, cap, target float64 }{
		{0, 4, 0.5}, {2e6, 0, 0.5}, {2e6, 4, 0}, {2e6, 4, 1.5},
	} {
		if _, err := UtilGap(c.work, c.cap, c.target); err == nil {
			t.Errorf("UtilGap(%v, %v, %v): want error", c.work, c.cap, c.target)
		}
	}
}

func TestDurationRoundTrip(t *testing.T) {
	for _, s := range []string{"0ns", "977ns", "5us", "5ms", "2s", "1500us"} {
		d, err := ParseDuration(s)
		if err != nil {
			t.Fatalf("ParseDuration(%q): %v", s, err)
		}
		if got := FormatDuration(d); got != s {
			t.Errorf("FormatDuration(ParseDuration(%q)) = %q", s, got)
		}
	}
	for _, s := range []string{"", "x", "-5ms", "NaN", "1e300s"} {
		if _, err := ParseDuration(s); err == nil {
			t.Errorf("ParseDuration(%q): want error", s)
		}
	}
}

func TestValidateZero(t *testing.T) {
	if err := (Load{}).Validate(); err != nil {
		t.Fatalf("zero Load must validate: %v", err)
	}
	if (Load{}).ShapesArrivals() || (Load{}).Opens() {
		t.Fatal("zero Load must not shape arrivals or open the system")
	}
	if !(Load{Kind: Util, Target: 0.5}).Opens() {
		t.Fatal("util must open the system")
	}
	for _, k := range []Kind{Util, Diurnal, Burst} {
		if !(Load{Kind: k}).ShapesArrivals() {
			t.Errorf("%s must shape arrivals", k)
		}
	}
	if (Load{Kind: Closed, Think: 1}).ShapesArrivals() {
		t.Error("closed shapes programs, not arrivals")
	}
}
