package loadgen

// File-trace replay: arrive=tracefile(path) reads an arrival-time trace
// from disk. The file format (docs/TRACE_FORMAT.md, "Arrival trace
// files") is one simulated duration per line — number plus optional
// ns/us/ms/s suffix — with blank lines and #-comments ignored. The k-th
// time admits the k-th app of the term, so the entry count must match the
// term's app count, exactly like the inline trace(...) process.
//
// Because the spec's canonical form must identify cell content (CellKey,
// checkpoint journals, the serve cache), the canonical rendering of a
// tracefile arrival embeds a digest of the file's bytes: equal paths with
// different content never collide, and a file that changes between parse
// and re-parse is detected rather than silently re-keyed.

import (
	"crypto/sha256"
	"fmt"
	"os"
	"strings"

	"colab/internal/sim"
)

const (
	// MaxTraceFileBytes bounds the accepted trace-file size; far above any
	// real per-term arrival trace (the grammar caps terms at 1024 apps)
	// while keeping fuzzed or accidental paths cheap to reject.
	MaxTraceFileBytes = 1 << 20
	// MaxTraceFileTimes bounds the entry count, matching the grammar's
	// replication cap.
	MaxTraceFileTimes = 4096
)

// TraceDigest returns the content digest embedded in canonical tracefile
// renderings: the first 16 hex digits of the SHA-256 of the file bytes.
func TraceDigest(data []byte) string {
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%x", sum[:8])
}

// ReadTraceFile loads an arrival trace, returning the times and the
// content digest. Only regular files within the size cap are read (so
// grammar strings can never block on FIFOs or drain device files), every
// line must parse as a non-negative duration, and at least one time is
// required.
func ReadTraceFile(path string) (times []sim.Time, digest string, err error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, "", fmt.Errorf("loadgen: trace file %s: %w", path, err)
	}
	if !info.Mode().IsRegular() {
		return nil, "", fmt.Errorf("loadgen: trace file %s is not a regular file", path)
	}
	if info.Size() > MaxTraceFileBytes {
		return nil, "", fmt.Errorf("loadgen: trace file %s is %d bytes (cap %d)", path, info.Size(), MaxTraceFileBytes)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", fmt.Errorf("loadgen: trace file %s: %w", path, err)
	}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		d, err := ParseDuration(line)
		if err != nil {
			return nil, "", fmt.Errorf("loadgen: trace file %s line %d: %v", path, i+1, err)
		}
		times = append(times, d)
		if len(times) > MaxTraceFileTimes {
			return nil, "", fmt.Errorf("loadgen: trace file %s has more than %d times", path, MaxTraceFileTimes)
		}
	}
	if len(times) == 0 {
		return nil, "", fmt.Errorf("loadgen: trace file %s has no arrival times", path)
	}
	return times, TraceDigest(data), nil
}
