package loadgen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"colab/internal/sim"
)

func writeTrace(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "arrivals.trace")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadTraceFile(t *testing.T) {
	path := writeTrace(t, "# warm-up burst\n0\n10ms\n\n25ms\n1500us\n")
	times, digest, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []sim.Time{0, 10 * sim.Millisecond, 25 * sim.Millisecond, 1500 * sim.Microsecond}
	if len(times) != len(want) {
		t.Fatalf("got %d times, want %d", len(times), len(want))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("times[%d] = %d, want %d", i, times[i], want[i])
		}
	}
	if len(digest) != 16 {
		t.Errorf("digest %q: want 16 hex digits", digest)
	}
	_, digest2, err := ReadTraceFile(path)
	if err != nil || digest2 != digest {
		t.Errorf("digest not stable: %q vs %q (err %v)", digest, digest2, err)
	}
	if d := TraceDigest([]byte("other")); d == digest {
		t.Error("different content produced the same digest")
	}
}

func TestReadTraceFileErrors(t *testing.T) {
	cases := []struct {
		name    string
		path    string
		wantSub string
	}{
		{"missing", filepath.Join(t.TempDir(), "nope"), "no such file"},
		{"directory", t.TempDir(), "not a regular file"},
		{"empty", writeTrace(t, "# only comments\n"), "no arrival times"},
		{"badline", writeTrace(t, "10ms\nbogus\n"), "line 2"},
		{"negative", writeTrace(t, "-5ms\n"), "bad duration"},
	}
	for _, c := range cases {
		if _, _, err := ReadTraceFile(c.path); err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error = %v, want substring %q", c.name, err, c.wantSub)
		}
	}
}

func TestReadTraceFileCaps(t *testing.T) {
	var sb strings.Builder
	for i := 0; i <= MaxTraceFileTimes; i++ {
		sb.WriteString("1ms\n")
	}
	if _, _, err := ReadTraceFile(writeTrace(t, sb.String())); err == nil || !strings.Contains(err.Error(), "more than") {
		t.Errorf("entry cap: error = %v", err)
	}
	big := strings.Repeat("#"+strings.Repeat("x", 1023)+"\n", 1+MaxTraceFileBytes/1024)
	if _, _, err := ReadTraceFile(writeTrace(t, big)); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Errorf("size cap: error = %v", err)
	}
}
