package perfmodel

import (
	"fmt"
	"sync"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/sched/cfs"
	"colab/internal/sim"
	"colab/internal/task"
	"colab/internal/workload"
)

// CollectOptions parameterise training-set collection.
type CollectOptions struct {
	// Cores is the core count of each symmetric training machine (§4.1
	// trains on big-only vs little-only runs). Default 4.
	Cores int
	// Threads is the per-benchmark thread count. 0 uses each benchmark's
	// default.
	Threads int
	// Seed drives workload generation; both symmetric runs of a benchmark
	// share it so their threads pair up one-to-one.
	Seed uint64
}

func (o CollectOptions) withDefaults() CollectOptions {
	if o.Cores == 0 {
		o.Cores = 4
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// minTrainExec filters threads too short-lived to carry signal.
const minTrainExec = sim.Millisecond

// CollectSamples runs every benchmark in single-program mode on a big-only
// and a little-only machine under CFS, records the big-run performance
// counters of each thread and labels them with the measured little-vs-big
// execution-time ratio — the paper's offline training-set construction
// (§4.1).
func CollectSamples(opt CollectOptions) ([]Sample, error) {
	opt = opt.withDefaults()
	var samples []Sample
	for _, b := range workload.All() {
		threads := opt.Threads
		if threads == 0 {
			threads = b.DefaultThreads
		}
		if b.MaxThreads > 0 && threads > b.MaxThreads {
			threads = b.MaxThreads
		}
		bigRun, err := runSymmetric(b.Name, threads, cpu.Big, opt)
		if err != nil {
			return nil, err
		}
		littleRun, err := runSymmetric(b.Name, threads, cpu.Little, opt)
		if err != nil {
			return nil, err
		}
		bigThreads := bigRun.Threads()
		littleThreads := littleRun.Threads()
		if len(bigThreads) != len(littleThreads) {
			return nil, fmt.Errorf("perfmodel: %s symmetric runs disagree on thread count", b.Name)
		}
		for i, bt := range bigThreads {
			lt := littleThreads[i]
			if bt.SumExec < minTrainExec || lt.SumExec < minTrainExec {
				continue
			}
			samples = append(samples, Sample{
				Bench:    b.Name,
				Counters: bt.TotalCounters,
				Speedup:  float64(lt.SumExec) / float64(bt.SumExec),
			})
		}
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("perfmodel: no usable training samples collected")
	}
	return samples, nil
}

// runSymmetric executes one benchmark alone on an all-big or all-little
// machine under CFS and returns the workload with populated accounting.
func runSymmetric(bench string, threads int, kind cpu.Kind, opt CollectOptions) (*task.Workload, error) {
	return runSingleOn(bench, threads, cpu.NewSymmetric(kind, opt.Cores), opt)
}

// runSingleOn executes one benchmark alone on an arbitrary machine under CFS
// and returns the workload with populated accounting.
func runSingleOn(bench string, threads int, cfg cpu.Config, opt CollectOptions) (*task.Workload, error) {
	w, err := workload.SingleProgram(bench, threads, opt.Seed)
	if err != nil {
		return nil, err
	}
	m, err := kernel.NewMachine(cfg, cfs.New(cfs.Options{}), w, kernel.Params{})
	if err != nil {
		return nil, fmt.Errorf("perfmodel: training run %s on %s: %w", bench, cfg.Name, err)
	}
	if _, err := m.Run(); err != nil {
		return nil, fmt.Errorf("perfmodel: training run %s on %s: %w", bench, cfg.Name, err)
	}
	return w, nil
}

// TrainDefault collects the standard training set and fits the standard
// six-feature model.
func TrainDefault() (*Model, error) {
	samples, err := CollectSamples(CollectOptions{})
	if err != nil {
		return nil, err
	}
	return Train(samples, NumSelected)
}

var (
	defaultOnce  sync.Once
	defaultModel *Model
	defaultErr   error
)

// Default returns the lazily trained, process-cached standard model. All
// experiment-harness runs share it, mirroring the paper's single offline
// model used across every evaluation.
func Default() (*Model, error) {
	defaultOnce.Do(func() {
		defaultModel, defaultErr = TrainDefault()
	})
	return defaultModel, defaultErr
}
