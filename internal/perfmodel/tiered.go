package perfmodel

import (
	"fmt"
	"sync"

	"colab/internal/cpu"
	"colab/internal/mathx"
	"colab/internal/task"
	"colab/internal/workload"
)

// TieredModel extends the paper's two-anchor speedup model to multi-tier
// machines: one independently trained Model per upper tier, each collected
// from symmetric runs on that tier's own cores (so a medium-core model is
// fit to medium-core counters, not interpolated from the big anchor). The
// base tier defines the work unit and needs no model.
type TieredModel struct {
	// Tiers is the palette the models were trained for, ascending capacity.
	Tiers []cpu.Tier
	// Models[k] predicts the tier-k-vs-base speedup from a raw counter
	// vector; Models[0] is nil (the base tier is 1.0 by definition).
	Models []*Model
}

// CollectTieredSamples runs every benchmark single-program on a symmetric
// machine of each palette tier under CFS and labels each upper tier's
// counter totals with the measured base-vs-tier execution ratio — the §4.1
// training-set construction repeated once per tier. The base-tier run of a
// benchmark is shared across all upper tiers. The result is indexed by tier;
// entry 0 is nil.
func CollectTieredSamples(tiers []cpu.Tier, opt CollectOptions) ([][]Sample, error) {
	if len(tiers) < 2 {
		return nil, fmt.Errorf("perfmodel: tiered training needs >= 2 tiers, got %d", len(tiers))
	}
	opt = opt.withDefaults()
	samples := make([][]Sample, len(tiers))
	for _, b := range workload.All() {
		threads := opt.Threads
		if threads == 0 {
			threads = b.DefaultThreads
		}
		if b.MaxThreads > 0 && threads > b.MaxThreads {
			threads = b.MaxThreads
		}
		baseRun, err := runSingleOn(b.Name, threads, cpu.NewSymmetricTier(tiers[0], opt.Cores), opt)
		if err != nil {
			return nil, err
		}
		baseThreads := baseRun.Threads()
		for k := 1; k < len(tiers); k++ {
			tierRun, err := runSingleOn(b.Name, threads, cpu.NewSymmetricTier(tiers[k], opt.Cores), opt)
			if err != nil {
				return nil, err
			}
			tierThreads := tierRun.Threads()
			if len(tierThreads) != len(baseThreads) {
				return nil, fmt.Errorf("perfmodel: %s symmetric runs disagree on thread count", b.Name)
			}
			for i, tt := range tierThreads {
				bt := baseThreads[i]
				if tt.SumExec < minTrainExec || bt.SumExec < minTrainExec {
					continue
				}
				samples[k] = append(samples[k], Sample{
					Bench:    b.Name,
					Counters: tt.TotalCounters,
					Speedup:  float64(bt.SumExec) / float64(tt.SumExec),
				})
			}
		}
	}
	for k := 1; k < len(tiers); k++ {
		if len(samples[k]) == 0 {
			return nil, fmt.Errorf("perfmodel: no usable training samples for tier %q", tiers[k].Name)
		}
	}
	return samples, nil
}

// TrainTiered collects per-tier training sets over the palette and fits one
// six-counter model per upper tier.
func TrainTiered(tiers []cpu.Tier, opt CollectOptions) (*TieredModel, error) {
	samples, err := CollectTieredSamples(tiers, opt)
	if err != nil {
		return nil, err
	}
	tm := &TieredModel{
		Tiers:  append([]cpu.Tier(nil), tiers...),
		Models: make([]*Model, len(tiers)),
	}
	for k := 1; k < len(tiers); k++ {
		m, err := Train(samples[k], NumSelected)
		if err != nil {
			return nil, fmt.Errorf("perfmodel: tier %q: %w", tiers[k].Name, err)
		}
		tm.Models[k] = m
	}
	return tm, nil
}

// NumTiers returns the palette size the model covers.
func (tm *TieredModel) NumTiers() int { return len(tm.Tiers) }

// PredictTier estimates the tier-k-vs-base speedup from a raw counter
// vector, clamped to the tier's physical envelope. Tier 0 and vectors
// without committed instructions yield the tier-interpolated neutral
// default.
func (tm *TieredModel) PredictTier(k int, v cpu.Vec) float64 {
	if k <= 0 || k >= len(tm.Tiers) {
		return 1.0
	}
	t := tm.Tiers[k]
	if v[cpu.CtrCommittedInsts] <= 0 {
		return t.RelSpeedup(DefaultNeutralSpeedup)
	}
	m := tm.Models[k]
	return mathx.Clamp(m.Reg.Predict(m.featureVector(v)), t.MinSpeedup, t.MaxSpeedup)
}

// TierPredictor adapts the model to the per-thread per-tier predictor
// signature the policies consume: interval counters when fresh enough,
// cumulative totals otherwise (matching Model.ThreadPredictor).
func (tm *TieredModel) TierPredictor() func(*task.Thread, int) float64 {
	return func(t *task.Thread, k int) float64 {
		if t.IntervalCounters[cpu.CtrCommittedInsts] >= minIntervalInsts {
			return tm.PredictTier(k, t.IntervalCounters)
		}
		return tm.PredictTier(k, t.TotalCounters)
	}
}

// Describe renders every per-tier model in Table 2 style.
func (tm *TieredModel) Describe() string {
	out := ""
	for k := 1; k < len(tm.Tiers); k++ {
		out += fmt.Sprintf("-- tier %q vs %q --\n%s", tm.Tiers[k].Name, tm.Tiers[0].Name, tm.Models[k].Describe())
	}
	return out
}

var (
	triGearOnce  sync.Once
	triGearModel *TieredModel
	triGearErr   error
)

// DefaultTriGear returns the lazily trained, process-cached tiered model for
// the standard tri-gear palette (cpu.TriGearTiers), the multi-tier analogue
// of Default.
func DefaultTriGear() (*TieredModel, error) {
	triGearOnce.Do(func() {
		triGearModel, triGearErr = TrainTiered(cpu.TriGearTiers(), CollectOptions{})
	})
	return triGearModel, triGearErr
}
