package perfmodel

import (
	"testing"

	"colab/internal/cpu"
	"colab/internal/mathx"
)

func trainTriGear(t *testing.T) *TieredModel {
	t.Helper()
	tm, err := TrainTiered(cpu.TriGearTiers(), CollectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

// Per-tier training must fit one real model per upper tier with usable
// quality — the medium tier gets its own regression over medium-core
// counter runs, not an interpolation of the big anchor's.
func TestTrainTieredFitsPerTierModels(t *testing.T) {
	tm := trainTriGear(t)
	if tm.Models[0] != nil {
		t.Error("base tier must not carry a model")
	}
	for k := 1; k < tm.NumTiers(); k++ {
		m := tm.Models[k]
		if m == nil {
			t.Fatalf("tier %d has no model", k)
		}
		if len(m.Features) != NumSelected {
			t.Errorf("tier %d selected %d counters, want %d", k, len(m.Features), NumSelected)
		}
		if m.R2 < 0.5 {
			t.Errorf("tier %d fit R2=%.3f, want >= 0.5", k, m.R2)
		}
		t.Logf("tier %q: %d samples, R2=%.3f MAE=%.3f", tm.Tiers[k].Name, m.Samples, m.R2, m.MAE)
	}
}

// Predictions must respect the tier order (a medium core never predicted
// faster than the big core) and each tier's physical envelope.
func TestTieredPredictionsOrderedAndClamped(t *testing.T) {
	tm := trainTriGear(t)
	rng := mathx.NewRNG(7)
	profiles := []cpu.WorkProfile{
		{ILP: 0.9, BranchRate: 0.12, MemIntensity: 0.05, FPRate: 0.6}, // core-sensitive
		{ILP: 0.5, BranchRate: 0.1, MemIntensity: 0.35, FPRate: 0.3},  // middling
		{ILP: 0.1, BranchRate: 0.05, MemIntensity: 0.95},              // memory-bound
	}
	for _, p := range profiles {
		v := cpu.SampleCountersOn(rng, p, cpu.TierMedium, 1e7, 2e7, 0)
		if got := tm.PredictTier(0, v); got != 1.0 {
			t.Errorf("base tier prediction %v, want 1", got)
		}
		med, big := tm.PredictTier(1, v), tm.PredictTier(2, v)
		if med > big+1e-9 {
			t.Errorf("profile %+v: medium %.3f predicted above big %.3f", p, med, big)
		}
		for k := 1; k < tm.NumTiers(); k++ {
			tier := tm.Tiers[k]
			s := tm.PredictTier(k, v)
			if s < tier.MinSpeedup || s > tier.MaxSpeedup {
				t.Errorf("tier %q prediction %.3f outside [%v, %v]", tier.Name, s, tier.MinSpeedup, tier.MaxSpeedup)
			}
		}
	}
	// Counter-free vectors fall back to the tier-interpolated neutral.
	if got, want := tm.PredictTier(2, cpu.Vec{}), cpu.TierBigDVFS.RelSpeedup(DefaultNeutralSpeedup); got != want {
		t.Errorf("neutral big prediction %v, want %v", got, want)
	}
}

// The medium-tier model must track the ground truth better than the PR-1
// interpolation fallback (RelSpeedup over the big-anchor prediction) on its
// own training distribution — the whole point of collecting medium-core
// runs.
func TestTieredBeatsInterpolationOnMedium(t *testing.T) {
	tiers := cpu.TriGearTiers()
	samples, err := CollectTieredSamples(tiers, CollectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tm := trainTriGear(t)
	big, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	var trained, interp []float64
	for _, s := range samples[1] {
		trained = append(trained, abs(tm.PredictTier(1, s.Counters)-s.Speedup))
		interp = append(interp, abs(tiers[1].RelSpeedup(big.Predict(s.Counters))-s.Speedup))
	}
	mt, mi := mathx.Mean(trained), mathx.Mean(interp)
	t.Logf("medium-tier MAE: trained=%.4f interpolated=%.4f over %d samples", mt, mi, len(trained))
	if mt >= mi {
		t.Errorf("per-tier training MAE %.4f not better than interpolation %.4f", mt, mi)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
