package perfmodel

import (
	"strings"
	"testing"

	"colab/internal/cpu"
	"colab/internal/mathx"
	"colab/internal/task"
)

// syntheticSamples builds training data directly from the counter model:
// random profiles, counters sampled as a big core would report them, labels
// set to the ground-truth speedup.
func syntheticSamples(n int, seed uint64) []Sample {
	rng := mathx.NewRNG(seed)
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		p := cpu.WorkProfile{
			ILP:           rng.Float64(),
			BranchRate:    rng.Range(0, 0.3),
			MemIntensity:  rng.Float64(),
			StoreRate:     rng.Float64(),
			FPRate:        rng.Float64(),
			CodeFootprint: rng.Float64(),
		}
		work := rng.Range(5e6, 5e7)
		cycles := work * 2
		out = append(out, Sample{
			Bench:    "synthetic",
			Counters: cpu.SampleCounters(rng, p, cpu.Big, work, cycles, 0),
			Speedup:  p.TrueSpeedup(),
		})
	}
	return out
}

func TestTrainRecoversSpeedupSignal(t *testing.T) {
	samples := syntheticSamples(150, 1)
	m, err := Train(samples, NumSelected)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Features) != NumSelected {
		t.Fatalf("selected %d features", len(m.Features))
	}
	if m.R2 < 0.7 {
		t.Fatalf("R2 = %v, model failed to learn", m.R2)
	}
	if m.MAE > 0.25 {
		t.Fatalf("MAE = %v", m.MAE)
	}
	// Held-out sanity: predictions must track ground truth in rank order.
	held := syntheticSamples(60, 2)
	var preds, truth []float64
	for _, s := range held {
		preds = append(preds, m.Predict(s.Counters))
		truth = append(truth, s.Speedup)
	}
	if c := mathx.Correlation(preds, truth); c < 0.8 {
		t.Fatalf("held-out correlation = %v", c)
	}
}

func TestPredictClampsAndDefaults(t *testing.T) {
	samples := syntheticSamples(100, 3)
	m, err := Train(samples, 4)
	if err != nil {
		t.Fatal(err)
	}
	var empty cpu.Vec
	if got := m.Predict(empty); got != DefaultNeutralSpeedup {
		t.Fatalf("empty counters predict %v, want neutral", got)
	}
	// Absurd counter vectors must clamp into the physical envelope.
	var wild cpu.Vec
	wild[cpu.CtrCommittedInsts] = 1
	for i := range wild {
		if cpu.Counter(i) != cpu.CtrCommittedInsts {
			wild[i] = 1e12
		}
	}
	got := m.Predict(wild)
	if got < MinSpeedup || got > MaxSpeedup {
		t.Fatalf("prediction %v escaped clamp", got)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, 6); err == nil {
		t.Fatalf("no samples must error")
	}
	if _, err := Train(syntheticSamples(4, 4), 6); err == nil {
		t.Fatalf("too few samples must error")
	}
}

func TestThreadPredictorPrefersIntervalCounters(t *testing.T) {
	samples := syntheticSamples(120, 5)
	m, err := Train(samples, NumSelected)
	if err != nil {
		t.Fatal(err)
	}
	pred := m.ThreadPredictor()
	rng := mathx.NewRNG(6)
	hot := cpu.WorkProfile{ILP: 0.95, MemIntensity: 0.02, FPRate: 0.7, BranchRate: 0.1}
	cold := cpu.WorkProfile{ILP: 0.05, MemIntensity: 0.95}
	th := &task.Thread{Profile: hot}
	// Total counters say memory-bound; interval counters say compute-bound.
	th.TotalCounters = cpu.SampleCounters(rng, cold, cpu.Big, 1e8, 2e8, 0)
	th.IntervalCounters = cpu.SampleCounters(rng, hot, cpu.Big, 1e7, 2e7, 0)
	wantHi := pred(th)
	th.IntervalCounters = cpu.Vec{} // empty interval -> fall back to totals
	wantLo := pred(th)
	if wantHi <= wantLo {
		t.Fatalf("interval counters not preferred: fresh=%v stale=%v", wantHi, wantLo)
	}
	// A never-run thread gets the neutral default.
	if got := pred(&task.Thread{}); got != DefaultNeutralSpeedup {
		t.Fatalf("fresh thread predicts %v", got)
	}
}

func TestOracle(t *testing.T) {
	p := cpu.WorkProfile{ILP: 0.8, MemIntensity: 0.1}
	th := &task.Thread{Profile: p}
	if got := Oracle()(th); got != p.TrueSpeedup() {
		t.Fatalf("oracle = %v, want %v", got, p.TrueSpeedup())
	}
}

func TestDescribeMentionsSelectedCounters(t *testing.T) {
	m, err := Train(syntheticSamples(100, 7), 3)
	if err != nil {
		t.Fatal(err)
	}
	desc := m.Describe()
	for _, f := range m.Features {
		if !strings.Contains(desc, f.Name()) {
			t.Fatalf("describe missing counter %s:\n%s", f.Name(), desc)
		}
	}
	if !strings.Contains(desc, "committedInsts") {
		t.Fatalf("describe must mention the normalisation base")
	}
}

// End-to-end: the real training pipeline over the benchmark suite must fit
// well and cache its default model.
func TestCollectAndDefaultModel(t *testing.T) {
	if testing.Short() {
		t.Skip("symmetric training runs are not -short friendly")
	}
	samples, err := CollectSamples(CollectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) < 30 {
		t.Fatalf("only %d training samples", len(samples))
	}
	for _, s := range samples {
		if s.Speedup < 1.0 || s.Speedup > 3.0 {
			t.Fatalf("%s: implausible measured speedup %v", s.Bench, s.Speedup)
		}
	}
	m1, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	if m1.R2 < 0.8 {
		t.Fatalf("default model R2 = %v", m1.R2)
	}
	m2, _ := Default()
	if m1 != m2 {
		t.Fatalf("Default() must cache the model")
	}
}
