// Package perfmodel implements the paper's machine-learning speedup
// prediction (§4.1, Table 2): record the performance counters of symmetric
// big-only and little-only single-program runs, select the most informative
// counters with PCA, normalise them by committed instructions and fit a
// linear regression that estimates each thread's big-vs-little speedup
// online.
package perfmodel

import (
	"fmt"
	"strings"

	"colab/internal/cpu"
	"colab/internal/mathx"
	"colab/internal/task"
)

// NumSelected is the number of counters the final model uses, as in the
// paper (six counters, Table 2).
const NumSelected = 6

// Speedup prediction clamps: nothing is slower on a big core, and the
// hardware model tops out below 3x.
const (
	MinSpeedup = 1.0
	MaxSpeedup = 3.0
)

// DefaultNeutralSpeedup is returned for threads with no counter history.
const DefaultNeutralSpeedup = 1.5

// Sample is one training observation: the counter totals of a thread from a
// big-only run and its measured big-vs-little speedup.
type Sample struct {
	Bench    string
	Counters cpu.Vec
	Speedup  float64
}

// Model is a trained speedup predictor.
type Model struct {
	Features []cpu.Counter // selected counter indices (paper's A..F)
	Reg      *mathx.LinReg
	R2       float64 // fit quality on the training set
	MAE      float64 // mean absolute error on the training set
	Samples  int
}

// featureVector extracts the model's selected, instruction-normalised
// features from a raw counter vector.
func (m *Model) featureVector(v cpu.Vec) []float64 {
	norm := v.NormalizeByInsts()
	out := make([]float64, len(m.Features))
	for i, f := range m.Features {
		out[i] = norm[f]
	}
	return out
}

// Predict estimates the big-vs-little speedup from a raw counter vector.
// Vectors without committed instructions yield the neutral default.
func (m *Model) Predict(v cpu.Vec) float64 {
	if v[cpu.CtrCommittedInsts] <= 0 {
		return DefaultNeutralSpeedup
	}
	return mathx.Clamp(m.Reg.Predict(m.featureVector(v)), MinSpeedup, MaxSpeedup)
}

// minIntervalInsts is the instruction count below which an interval sample
// is too noisy and the cumulative counters are used instead.
const minIntervalInsts = 10_000

// ThreadPredictor adapts the model to the per-thread predictor signature
// the policies consume. It prefers the current labeling interval's counters
// (fresh phase behaviour) and falls back to the cumulative totals.
func (m *Model) ThreadPredictor() func(*task.Thread) float64 {
	return func(t *task.Thread) float64 {
		if t.IntervalCounters[cpu.CtrCommittedInsts] >= minIntervalInsts {
			return m.Predict(t.IntervalCounters)
		}
		return m.Predict(t.TotalCounters)
	}
}

// Oracle returns a predictor that reads the hidden ground-truth speedup.
// It exists for model-quality ablations, not for the headline results.
func Oracle() func(*task.Thread) float64 {
	return func(t *task.Thread) float64 { return t.Profile.TrueSpeedup() }
}

// Train fits a model: PCA (standardised) over all candidate counters
// selects the k most informative ones, then OLS maps the selected,
// instruction-normalised counters to measured speedup.
func Train(samples []Sample, k int) (*Model, error) {
	if k <= 0 {
		k = NumSelected
	}
	if len(samples) < k+2 {
		return nil, fmt.Errorf("perfmodel: %d samples is too few to fit %d features", len(samples), k)
	}
	// Candidate features: every counter except the normalisation base.
	var candidates []cpu.Counter
	for i := 0; i < cpu.NumCounters; i++ {
		if cpu.Counter(i) != cpu.CtrCommittedInsts {
			candidates = append(candidates, cpu.Counter(i))
		}
	}
	xAll := mathx.NewMatrix(len(samples), len(candidates))
	y := make([]float64, len(samples))
	for i, s := range samples {
		norm := s.Counters.NormalizeByInsts()
		for j, cIdx := range candidates {
			xAll.Set(i, j, norm[cIdx])
		}
		y[i] = s.Speedup
	}
	pca, err := mathx.FitPCA(xAll, mathx.PCAOptions{Standardize: true})
	if err != nil {
		return nil, fmt.Errorf("perfmodel: %w", err)
	}
	// Rank candidates by PCA loading, then keep the k of them that
	// correlate best with the target — the paper's "largest effect on
	// speedup modeling" criterion combines both views.
	ranked := pca.SelectFeatures(len(candidates), k)
	type scored struct {
		cand int
		abs  float64
	}
	pool := ranked
	if len(pool) > 3*k {
		pool = pool[:3*k]
	}
	best := make([]scored, 0, len(pool))
	for _, cand := range pool {
		best = append(best, scored{cand, absCorr(xAll.Col(cand), y)})
	}
	for i := 0; i < len(best); i++ {
		for j := i + 1; j < len(best); j++ {
			if best[j].abs > best[i].abs {
				best[i], best[j] = best[j], best[i]
			}
		}
	}
	if len(best) > k {
		best = best[:k]
	}
	features := make([]cpu.Counter, len(best))
	xSel := mathx.NewMatrix(len(samples), len(best))
	for j, b := range best {
		features[j] = candidates[b.cand]
		for i := 0; i < len(samples); i++ {
			xSel.Set(i, j, xAll.At(i, b.cand))
		}
	}
	reg, err := mathx.FitLinReg(xSel, y, 1e-9)
	if err != nil {
		// Collinear counters: retry with a stronger ridge.
		reg, err = mathx.FitLinReg(xSel, y, 1e-3)
		if err != nil {
			return nil, fmt.Errorf("perfmodel: %w", err)
		}
	}
	m := &Model{Features: features, Reg: reg, Samples: len(samples)}
	m.R2 = reg.R2(xSel, y)
	m.MAE = reg.MAE(xSel, y)
	return m, nil
}

func absCorr(xs, ys []float64) float64 {
	c := mathx.Correlation(xs, ys)
	if c < 0 {
		return -c
	}
	return c
}

// Describe renders the model in the style of the paper's Table 2.
func (m *Model) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Selected performance counters (PCA, %d samples):\n", m.Samples)
	for i, f := range m.Features {
		fmt.Fprintf(&sb, "  %c: %-36s coef=%+.6g\n", 'A'+i, f.Name(), m.Reg.Coef[i])
	}
	fmt.Fprintf(&sb, "Linear predictive speedup model:\n  speedup = %.4f", m.Reg.Intercept)
	for i := range m.Features {
		fmt.Fprintf(&sb, " + (%+.6g * %c)", m.Reg.Coef[i], 'A'+i)
	}
	fmt.Fprintf(&sb, "\n  (all counters normalised to commit.committedInsts)\n")
	fmt.Fprintf(&sb, "Fit: R2=%.3f MAE=%.3f\n", m.R2, m.MAE)
	return sb.String()
}
