package colab

import (
	"colab/internal/experiment"
	"colab/internal/policy"
)

// PolicyContext carries the shared inputs a policy factory may wire into
// the scheduler it builds: the trained speedup predictor and (for policies
// that take per-tier predictions) the tiered predictor with its palette.
// Every field is optional; a zero PolicyContext selects each policy's
// neutral defaults.
type PolicyContext = policy.Context

// PolicyFactory builds one scheduler instance from the shared context.
// Factories must return a fresh instance per call: scheduler state is
// per-machine.
type PolicyFactory = policy.Factory

// Built-in policy names, usable with WithPolicies and NewPolicy. The
// ablation variants (colab-noscale, colab-local, colab-flat, colab-nopull,
// colab-oracle) are also registered; Policies() lists everything.
const (
	PolicyLinux     = policy.Linux
	PolicyWASH      = policy.WASH
	PolicyCOLAB     = policy.COLAB
	PolicyGTS       = policy.GTS
	PolicyEAS       = policy.EAS
	PolicyCOLABDVFS = policy.COLABDVFS
)

// RegisterPolicy adds a user policy to the process-wide registry under
// name, making it usable everywhere a policy name is accepted: Experiment
// sessions (WithPolicies), NewPolicy, the experiment harness and the cmd/
// tools. It errors on an empty name, a nil factory, or a name collision.
func RegisterPolicy(name string, f PolicyFactory) error { return policy.Register(name, f) }

// MustRegisterPolicy is RegisterPolicy for init-time use; it panics on
// error.
func MustRegisterPolicy(name string, f PolicyFactory) { policy.MustRegister(name, f) }

// Policies returns every registered policy name (built-in and user) in
// sorted order.
func Policies() []string { return policy.Names() }

// NewPolicy instantiates a registered policy by name. Unknown names error
// with the full registered-name list.
func NewPolicy(name string, ctx PolicyContext) (Scheduler, error) { return policy.New(name, ctx) }

// PaperPolicies returns the three schedulers of the paper's evaluation
// (linux, wash, colab) — the default policy set of an Experiment.
func PaperPolicies() []string { return experiment.PaperSchedulers() }
