package colab_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	colab "colab"
	"colab/internal/experiment"
	"colab/internal/workload"
)

// TestExperimentDeterministicAcrossWorkers is the session API's core
// guarantee: the same spec produces byte-identical output at any worker
// count.
func TestExperimentDeterministicAcrossWorkers(t *testing.T) {
	csvAt := func(workers int) string {
		exp := colab.NewExperiment(
			colab.WithWorkloads("Comp-1"),
			colab.WithMachine(colab.Config2B2S),
			colab.WithPolicies("linux", "colab"),
			colab.WithSeeds(1, 2),
			colab.WithWorkers(workers),
		)
		res, err := exp.Run(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	ref := csvAt(1)
	if !strings.Contains(ref, "Comp-1,2B2S,linux,1,") {
		t.Fatalf("csv misses expected cell:\n%s", ref)
	}
	if got := len(strings.Split(strings.TrimSpace(ref), "\n")); got != 1+4 {
		t.Fatalf("csv has %d lines, want header + 4 cells:\n%s", got, ref)
	}
	for _, workers := range []int{4, 8} {
		if got := csvAt(workers); got != ref {
			t.Errorf("workers=%d output differs from workers=1:\n--- workers=1\n%s\n--- workers=%d\n%s",
				workers, ref, workers, got)
		}
	}
}

// The session API must agree bit-for-bit with the legacy
// internal/experiment.Runner single-cell path.
func TestExperimentMatchesLegacyRunner(t *testing.T) {
	exp := colab.NewExperiment(
		colab.WithWorkloads("NSync-1"),
		colab.WithMachine(colab.Config2B4S),
		colab.WithPolicies("linux", "wash"),
	)
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r, err := experiment.NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	comp, ok := workload.CompositionByIndex("NSync-1")
	if !ok {
		t.Fatal("unknown composition NSync-1")
	}
	for _, cell := range res.Cells {
		want, err := r.MixScore(comp, colab.Config2B4S, cell.Run.Policy)
		if err != nil {
			t.Fatal(err)
		}
		if cell.Score.HANTT != want.HANTT || cell.Score.HSTP != want.HSTP {
			t.Errorf("%s: session %v vs legacy %v", cell.Run.Policy, cell.Score, want)
		}
	}
}

// Cancellation mid-batch must surface a wrapped ctx.Err() promptly.
func TestExperimentCancellationMidBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	events := 0
	exp := colab.NewExperiment(
		colab.WithWorkloads("Sync-1", "Sync-2", "Comp-1", "Comp-2"),
		colab.WithMachines(colab.EvaluatedConfigs()...),
		colab.WithPolicies("linux", "wash", "colab"),
		// The tracer fires on the first mix run's first scheduling event;
		// from there the context-checked kernel loop and the pool must
		// unwind without starting the remaining ~47 cells.
		colab.WithTracer(func(_ colab.ExperimentTrace) {
			if events == 0 {
				cancel()
			}
			events++
		}),
	)
	_, err := exp.Run(ctx)
	if events == 0 {
		t.Fatal("tracer never fired")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation not surfaced as wrapped ctx.Err(): %v", err)
	}
}

func TestExperimentCancelledBeforeRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	exp := colab.NewExperiment(colab.WithWorkloads("Comp-1"))
	if _, err := exp.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context must error with wrapped ctx.Err(), got %v", err)
	}
}

func TestExperimentValidation(t *testing.T) {
	if _, err := colab.NewExperiment().Run(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "WithWorkloads") {
		t.Errorf("missing workloads must name the option, got: %v", err)
	}
	if _, err := colab.NewExperiment(colab.WithWorkloads("Nope-1")).Run(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "Nope-1") {
		t.Errorf("unknown workload must error, got: %v", err)
	}
	_, err := colab.NewExperiment(
		colab.WithWorkloads("Comp-1"),
		colab.WithPolicies("not-a-policy"),
	).Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "not-a-policy") ||
		!strings.Contains(err.Error(), "linux") {
		t.Errorf("unknown policy error must list registered policies, got: %v", err)
	}
}

// A user policy registered through the public API must work as a session
// policy by name.
func TestExperimentWithRegisteredPolicy(t *testing.T) {
	const name = "test-wrapped-linux"
	if err := colab.RegisterPolicy(name, func(colab.PolicyContext) (colab.Scheduler, error) {
		return colab.NewLinux(), nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := colab.RegisterPolicy(name, func(colab.PolicyContext) (colab.Scheduler, error) {
		return colab.NewLinux(), nil
	}); err == nil {
		t.Fatal("duplicate registration must error")
	}
	found := false
	for _, n := range colab.Policies() {
		if n == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("Policies() misses %q", name)
	}
	res, err := colab.NewExperiment(
		colab.WithWorkloads("Comp-1"),
		colab.WithPolicies("linux", name),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The wrapper builds plain CFS, so its cells must equal the linux ones.
	if n := len(res.Cells); n != 2 {
		t.Fatalf("cells = %d, want 2", n)
	}
	if res.Cells[0].Score != res.Cells[1].Score {
		t.Errorf("wrapped linux diverged from linux: %v vs %v", res.Cells[0].Score, res.Cells[1].Score)
	}
}

func TestExperimentNormalized(t *testing.T) {
	res, err := colab.NewExperiment(
		colab.WithWorkloads("Comp-1"),
		colab.WithPolicies("linux", "colab"),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	norm, err := res.Normalized("linux")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range norm.Cells {
		if c.Run.Policy == "linux" && (c.Score.HANTT != 1 || c.Score.HSTP != 1) {
			t.Errorf("linux not normalised to itself: %v", c.Score)
		}
	}
	if _, err := res.Normalized("gts"); err == nil {
		t.Error("normalising to an absent policy must error")
	}
}
