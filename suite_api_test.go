package colab_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	colab "colab"
)

// suiteSweep is the standard-suite cross product the determinism tests
// sweep: all four registered suite scenarios over two policies and two
// seeds on the paper machine (memory-churn is tuned on the NUMA palette
// but, like every scenario, runs anywhere).
func suiteSweep(extra ...colab.ExperimentOption) *colab.Experiment {
	opts := []colab.ExperimentOption{
		colab.WithWorkloads("datacenter-day", "interactive-burst", "batch-backfill", "memory-churn"),
		colab.WithMachine(colab.Config2B2S),
		colab.WithPolicies("linux", "colab"),
		colab.WithSeeds(1, 2),
	}
	return colab.NewExperiment(append(opts, extra...)...)
}

// TestStandardSuiteAPI pins the public suite surface: four members, each
// resolvable as an experiment workload by its registered name.
func TestStandardSuiteAPI(t *testing.T) {
	suite := colab.StandardSuite()
	if len(suite) != 4 {
		t.Fatalf("StandardSuite has %d members, want 4", len(suite))
	}
	for _, s := range suite {
		if s.Name == "" || s.Class == "" || s.Description == "" {
			t.Errorf("suite member incomplete: %+v", s)
		}
		res, err := colab.NewExperiment(
			colab.WithWorkloads(s.Name),
			colab.WithPolicies("linux"),
		).Run(context.Background())
		if err != nil {
			t.Errorf("%s does not run by name: %v", s.Name, err)
			continue
		}
		if len(res.Cells) != 1 || res.Cells[0].Score.HANTT <= 0 {
			t.Errorf("%s: degenerate result %+v", s.Name, res.Cells)
		}
	}
}

// TestStandardSuiteSweepDeterminism requires the suite sweep's CSV to be
// byte-identical at every worker count and across repeated runs — the
// load generators (diurnal, burst, util) must not leak scheduling
// nondeterminism into the cells.
func TestStandardSuiteSweepDeterminism(t *testing.T) {
	ref := runCSV(t, suiteSweep())
	if got := len(strings.Split(strings.TrimSpace(ref), "\n")); got != 1+16 {
		t.Fatalf("reference csv has %d lines, want header + 16 cells:\n%s", got, ref)
	}
	for _, workers := range []int{1, 4, 8} {
		if got := runCSV(t, suiteSweep(colab.WithWorkers(workers))); got != ref {
			t.Errorf("workers=%d diverges from reference:\n--- reference\n%s\n--- got\n%s", workers, ref, got)
		}
	}
	// A repeated run in the same process (warm memo caches) must also agree.
	if got := runCSV(t, suiteSweep(colab.WithWorkers(8))); got != ref {
		t.Errorf("repeated run diverges from reference:\n--- reference\n%s\n--- got\n%s", ref, got)
	}
}

// TestDiurnalCheckpointKillResume kills a journaled sweep of the
// load=diurnal suite scenario mid-run, resumes over the same journal
// (with a torn trailing record), and requires the resumed output to be
// byte-identical to an uninterrupted run.
func TestDiurnalCheckpointKillResume(t *testing.T) {
	day := func(extra ...colab.ExperimentOption) *colab.Experiment {
		opts := []colab.ExperimentOption{
			colab.WithWorkloads("datacenter-day"),
			colab.WithMachine(colab.Config2B2S),
			colab.WithPolicies("linux", "colab"),
			colab.WithSeeds(1, 2),
		}
		return colab.NewExperiment(append(opts, extra...)...)
	}
	ref := runCSV(t, day())
	path := filepath.Join(t.TempDir(), "day.ndjson")

	ctx, cancel := context.WithCancel(context.Background())
	killed := 0
	_, err := day(
		colab.WithCheckpoint(path),
		colab.WithWorkers(2),
		colab.WithObserver(func(colab.ExperimentResult) {
			killed++
			cancel()
		}),
	).Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("killed run must surface ctx.Err(), got %v", err)
	}
	if killed == 0 {
		t.Fatal("observer never fired before the kill")
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(f, `{"key":"torn-by-kill`)
	f.Close()

	replayed := 0
	resumed, err := day(
		colab.WithCheckpoint(path),
		colab.WithObserver(func(c colab.ExperimentResult) {
			if c.Cached {
				replayed++
			}
		}),
	).Run(context.Background())
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if replayed == 0 {
		t.Error("resume recomputed every cell; journal was not replayed")
	}
	var buf bytes.Buffer
	if err := resumed.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != ref {
		t.Errorf("resumed output differs from uninterrupted run:\n--- uninterrupted\n%s\n--- resumed\n%s", ref, buf.String())
	}
}

// TestFleetRejectsTraceFileWorkloads pins the wire-safety rule: a spec
// that replays a local trace file cannot travel the fleet by name, and
// the error names the offending term before any worker is contacted.
func TestFleetRejectsTraceFileWorkloads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "arrivals.trace")
	if err := os.WriteFile(path, []byte("0\n5ms\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	spec := fmt.Sprintf("dedup:2*2@arrive=tracefile(%s)", path)
	_, err := colab.NewExperiment(
		colab.WithWorkloads(spec),
		colab.WithPolicies("linux"),
		colab.WithFleet(colab.NewFleet(colab.FleetOptions{})),
	).Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "trace file") {
		t.Fatalf("tracefile + fleet: error %v, want a trace-file rejection", err)
	}
	if !strings.Contains(err.Error(), "dedup") || !strings.Contains(err.Error(), "tracefile(") {
		t.Errorf("rejection does not name the offending term: %v", err)
	}
	// The same spec runs fine locally.
	res, err := colab.NewExperiment(
		colab.WithWorkloads(spec),
		colab.WithPolicies("linux"),
	).Run(context.Background())
	if err != nil {
		t.Fatalf("tracefile spec must run locally: %v", err)
	}
	if len(res.Cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(res.Cells))
	}
}
