package colab

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"colab/internal/cpu"
	"colab/internal/experiment"
	"colab/internal/fleet"
	"colab/internal/workload"
)

// Fleet is a multi-host sweep coordinator: an http.Handler that workers
// register with (POST /register, then periodic POST /heartbeat) and that
// deals deterministic shard assignments of an Experiment's sweep to the
// live workers, streaming their per-cell results back and reassembling
// the union byte-identical to an unsharded local Run. Failures are
// survived: a shard whose worker dies mid-stream is retried with
// exponential backoff on a surviving worker, shipping the already-
// completed cells as a checkpoint journal so they replay instead of
// recomputing, and duplicate cells from retried shards are ingested
// idempotently.
//
// Serve it, point colab-fleet workers (or NewFleetWorker daemons) at it,
// and attach it to a session with WithFleet:
//
//	f := colab.NewFleet(colab.FleetOptions{})
//	go http.ListenAndServe(":8080", f)
//	...
//	res, err := colab.NewExperiment(
//		colab.WithWorkloads("Sync-2", "Rand-7"),
//		colab.WithSeeds(1, 2, 3),
//		colab.WithFleet(f),
//	).Run(ctx)
type Fleet = fleet.Coordinator

// FleetOptions tune a Fleet coordinator's sharding and failure handling;
// the zero value selects sensible defaults (shard per live worker, 5
// attempts per shard, 200ms base backoff, 5s heartbeat timeout).
type FleetOptions = fleet.Options

// NewFleet builds a coordinator from options.
func NewFleet(opts FleetOptions) *Fleet { return fleet.NewCoordinator(opts) }

// FleetWorker is the executing side of a fleet: an http.Handler daemon
// that runs shards dealt by a coordinator through a long-lived cell
// cache. Serve it and announce it with RegisterFleetWorker (the
// colab-fleet binary's -mode worker does both).
type FleetWorker = fleet.Worker

// FleetWorkerStats is a point-in-time snapshot of a FleetWorker's
// counters (also served as JSON on the worker's /stats endpoint).
type FleetWorkerStats = fleet.WorkerStats

// FleetWorkerInfo describes one registered worker of a Fleet (served as
// JSON on the coordinator's /workers endpoint).
type FleetWorkerInfo = fleet.WorkerInfo

// NewFleetWorker builds a worker daemon serving shards through cache
// (nil for a fresh unbounded cache; bound it with CellCache.SetLimit).
func NewFleetWorker(cache *CellCache) *FleetWorker { return fleet.NewWorker(cache) }

// RegisterFleetWorker announces the worker daemon served at selfURL to
// the coordinator at coordinatorURL and keeps it registered with one
// heartbeat per interval (<= 0 selects 1s) until ctx is cancelled.
// Connection failures are retried at the same cadence, so a worker that
// outlives a coordinator restart re-registers on its next beat. Blocks;
// run it in a goroutine next to the worker's HTTP server.
func RegisterFleetWorker(ctx context.Context, client *http.Client, coordinatorURL, selfURL string, interval time.Duration) {
	fleet.RegisterAndHeartbeat(ctx, client, coordinatorURL, selfURL, interval)
}

// WithFleet runs the sweep on a fleet instead of in-process: Run hands
// the session spec to the coordinator, which deals shards to its
// registered workers and reassembles their streams. Results — content,
// order, and float bits — are identical to a local Run, including with
// WithObserver (cells stream in the same deterministic order as the
// shards complete).
//
// Fleet sweeps travel by name, so every axis must be resolvable on the
// workers: machines must be named shapes (NamedConfigs; arbitrary
// NewConfig shapes have no wire form), and workloads/policies must be
// registered on the worker binaries too. WithTracer, WithSpeedupModel,
// WithCheckpoint, WithCellCache and WithShard are local-execution
// concerns and are rejected in combination with WithFleet — the fleet
// itself shards the sweep, journals completed cells at the coordinator,
// and caches on the workers.
func WithFleet(f *Fleet) ExperimentOption {
	return func(e *Experiment) { e.fleet = f }
}

// fleetSpec renders the session as the fleet wire spec, validating that
// every axis survives travelling by name.
func (e *Experiment) fleetSpec() (fleet.Spec, error) {
	switch {
	case e.tracer != nil:
		return fleet.Spec{}, fmt.Errorf("colab: WithTracer cannot combine with WithFleet (trace events do not travel the fleet wire)")
	case e.model != nil:
		return fleet.Spec{}, fmt.Errorf("colab: WithSpeedupModel cannot combine with WithFleet (workers train their own default model)")
	case e.checkpoint != "":
		return fleet.Spec{}, fmt.Errorf("colab: WithCheckpoint cannot combine with WithFleet (the coordinator journals completed cells itself)")
	case e.cache != nil:
		return fleet.Spec{}, fmt.Errorf("colab: WithCellCache cannot combine with WithFleet (cells are cached on the workers)")
	case e.shardCount != 0 || e.shardIdx != 0:
		return fleet.Spec{}, fmt.Errorf("colab: WithShard cannot combine with WithFleet (the fleet shards the sweep itself)")
	}
	if len(e.workloads) == 0 {
		return fleet.Spec{}, fmt.Errorf("colab: experiment has no workloads (use WithWorkloads)")
	}
	for _, w := range e.workloads {
		spec, err := workload.ResolveSpec(w)
		if err != nil {
			continue // Run reports unresolvable workloads with full context.
		}
		if terms := spec.TraceFiles(); len(terms) != 0 {
			return fleet.Spec{}, fmt.Errorf("colab: workload %q replays the local trace file of term %q and cannot travel the fleet wire by name (inline the times with @arrive=trace(...) instead)", w, terms[0])
		}
	}
	machines := e.machines
	if len(machines) == 0 {
		machines = []Config{Config2B2S}
	}
	names := make([]string, len(machines))
	for i, cfg := range machines {
		reg, ok := cpu.ConfigByName(cfg.Name)
		if !ok {
			return fleet.Spec{}, fmt.Errorf("colab: machine %q is not a named shape — fleet sweeps resolve machines by name on the workers (see NamedConfigs)", cfg.Name)
		}
		if reg.Fingerprint() != cfg.Fingerprint() {
			return fleet.Spec{}, fmt.Errorf("colab: machine %q differs structurally from the named shape of that name; fleet workers would simulate the wrong machine", cfg.Name)
		}
		names[i] = cfg.Name
	}
	policies := e.policies
	if len(policies) == 0 {
		policies = PaperPolicies()
	}
	seeds := e.seeds
	if len(seeds) == 0 {
		seeds = []uint64{1}
	}
	return fleet.Spec{
		Workloads: e.workloads,
		Machines:  names,
		Policies:  policies,
		Seeds:     seeds,
		Params:    e.params,
		Workers:   e.workers,
	}, nil
}

// runFleet executes the sweep on e.fleet and reassembles the shards into
// the session's cross-product order.
func (e *Experiment) runFleet(ctx context.Context) (*ExperimentResults, error) {
	spec, err := e.fleetSpec()
	if err != nil {
		return nil, err
	}
	var obs func(int, fleet.Cell)
	if e.observer != nil {
		obs = func(_ int, c fleet.Cell) {
			r, err := resultFromFleetCell(c)
			if err == nil {
				e.observer(r)
			}
		}
	}
	shards, err := e.fleet.Run(ctx, spec, obs)
	if err != nil {
		return nil, err
	}
	parts := make([]*ExperimentResults, len(shards))
	for i, cells := range shards {
		parts[i] = &ExperimentResults{Cells: make([]ExperimentResult, len(cells))}
		for j, c := range cells {
			if parts[i].Cells[j], err = resultFromFleetCell(c); err != nil {
				return nil, err
			}
		}
	}
	return e.MergeShards(parts...)
}

// resultFromFleetCell converts one wire cell back into the session form.
func resultFromFleetCell(c fleet.Cell) (ExperimentResult, error) {
	key, err := experiment.ParseCellKey(c.Key)
	if err != nil {
		return ExperimentResult{}, fmt.Errorf("colab: fleet cell carries an unparseable key: %w", err)
	}
	return ExperimentResult{
		Run:    ExperimentRun{Workload: c.Workload, Machine: c.Machine, Policy: c.Policy, Seed: c.Seed},
		Score:  MixScore{HANTT: c.HANTT, HSTP: c.HSTP},
		Key:    key,
		Cached: c.Cached,
	}, nil
}
