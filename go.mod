module colab

go 1.22
