// Package colab is a Go reproduction of "COLAB: A Collaborative
// Multi-factor Scheduler for Asymmetric Multicore Processors" (Yu,
// Petoumenos, Janjic, Leather, Thomson — CGO 2020).
//
// It bundles everything the paper's system needs, built from scratch:
//
//   - a deterministic discrete-event simulator of asymmetric multicores
//     (the gem5 substitute) with an arbitrary number of ordered core tiers
//     and per-core DVFS — ARM big.LITTLE is the default two-tier shape,
//     a DynamIQ-style big.MEDIUM.LITTLE machine ships as Config2B2M2S,
//   - a simulated OS scheduling layer with futex-based synchronisation and
//     blocking-blame accounting (the Linux kernel substitute),
//   - five pluggable scheduling policies: Linux CFS, WASH (the prior state
//     of the art), ARM GTS, a Linux-EAS-like energy-aware policy, and
//     COLAB itself,
//   - the PCA + linear-regression speedup model trained from symmetric
//     big-only/little-only runs (Table 2),
//   - synthetic PARSEC 3.0 / SPLASH-2 benchmark generators (Table 3) and
//     the 26 multi-programmed workload compositions (Table 4),
//   - the H_NTT / H_ANTT / H_STP metrics and the full experiment harness
//     regenerating every figure and table of the paper's evaluation.
//
// Quick start — the Experiment session API runs whole evaluation sweeps
// with automatic baseline collection and scoring:
//
//	exp := colab.NewExperiment(
//		colab.WithWorkloads("Sync-2"),
//		colab.WithMachine(colab.Config2B2S),
//		colab.WithPolicies("linux", "wash", "colab"),
//	)
//	res, _ := exp.Run(context.Background())
//	res.WriteTable(os.Stdout)
//
// Single simulations are available too:
//
//	model, _ := colab.TrainSpeedupModel()
//	w, _ := colab.BuildWorkload("Sync-2", 1)
//	res, _ := colab.Run(colab.Config2B2S, colab.NewCOLAB(model), w)
//	res.WriteSummary(os.Stdout)
//
// Custom policies register into the process-wide registry
// (RegisterPolicy) and then work everywhere a policy name is accepted.
// The cmd/ tools expose the same functionality on the command line and
// examples/ holds runnable scenarios.
package colab

import (
	"context"
	"fmt"

	"colab/internal/cpu"
	"colab/internal/kernel"
	"colab/internal/metrics"
	"colab/internal/perfmodel"
	"colab/internal/policy"
	colabsched "colab/internal/sched/colab"
	"colab/internal/sim"
	"colab/internal/task"
	"colab/internal/topo"
	"colab/internal/workload"
)

// Core simulation types re-exported for API users.
type (
	// Config is a machine shape: an ordered list of cores drawn from an
	// ascending-capacity tier palette (big/little by default).
	Config = cpu.Config
	// Tier describes one core type: name, relative capacity, clock and
	// DVFS frequency ladder. Build multi-tier machines with
	// NewTieredConfig.
	Tier = cpu.Tier
	// CoreKind is a per-core tier index (Little and Big name the default
	// two-tier palette's indices).
	CoreKind = cpu.Kind
	// DVFSGovernor is the optional Scheduler extension through which a
	// policy programs per-core operating points at dispatch time.
	DVFSGovernor = kernel.DVFSGovernor
	// Core is one simulated CPU (visible to custom schedulers).
	Core = kernel.Core
	// Scheduler is the pluggable policy interface; implement it to drop a
	// custom policy into the simulated kernel.
	Scheduler = kernel.Scheduler
	// Machine is one wired simulation instance.
	Machine = kernel.Machine
	// Params carries kernel costs (context switch, migration).
	Params = kernel.Params
	// Result is the outcome of one simulation.
	Result = kernel.Result
	// Workload is a named set of applications admitted together.
	Workload = task.Workload
	// App is one application (benchmark instance) in a workload.
	App = task.App
	// Thread is one schedulable entity.
	Thread = task.Thread
	// Time is simulated time in nanoseconds.
	Time = sim.Time
	// SpeedupModel is the trained Table 2 performance model.
	SpeedupModel = perfmodel.Model
	// TieredSpeedupModel is the multi-tier extension of SpeedupModel: one
	// independently trained model per upper tier of a palette, collected
	// from that tier's own counter runs instead of interpolating the big
	// anchor.
	TieredSpeedupModel = perfmodel.TieredModel
	// MixScore carries the H_ANTT / H_STP pair of one run.
	MixScore = metrics.MixScore
	// Composition is one Table 4 multi-programmed workload description.
	Composition = workload.Composition
	// Benchmark is one Table 3 synthetic benchmark generator.
	Benchmark = workload.Benchmark
	// Topology describes a machine's socket/LLC-domain layout and
	// per-hop migration cost; attach one to a Config with WithTopology or
	// build a regular layout with NewNUMAConfig. The zero value is the
	// flat (single-domain) machine.
	Topology = topo.Topology
	// TopologyDomain is one shared-LLC core group of a Topology.
	TopologyDomain = topo.Domain
)

// Workload-authoring types: build custom applications against the same
// program DSL the synthetic benchmarks use.
type (
	// WorkProfile is a thread's hidden microarchitectural character; it
	// determines the true big-vs-little speedup and the counters the
	// schedulers observe.
	WorkProfile = cpu.WorkProfile
	// Program is a thread's ordered op list.
	Program = task.Program
	// Compute retires work (1 unit = 1 ns of little-core execution).
	Compute = task.Compute
	// Lock acquires a futex-backed mutex.
	Lock = task.Lock
	// Unlock releases a futex-backed mutex.
	Unlock = task.Unlock
	// Barrier joins an app-scoped barrier.
	Barrier = task.Barrier
	// Put produces into a bounded queue.
	Put = task.Put
	// Get consumes from a bounded queue.
	Get = task.Get
	// Sleep suspends the thread without assigning blame.
	Sleep = task.Sleep
	// Phase switches the thread's active work profile mid-program.
	Phase = task.Phase
	// QueueSpec declares a bounded queue an app's Put/Get ops use.
	QueueSpec = task.QueueSpec
)

// Core kinds.
const (
	Big    = cpu.Big
	Little = cpu.Little
)

// The four evaluated machine shapes (§5.1) plus the tri-gear extension.
var (
	Config2B2S = cpu.Config2B2S
	Config2B4S = cpu.Config2B4S
	Config4B2S = cpu.Config4B2S
	Config4B4S = cpu.Config4B4S
	// Config2B2M2S is the DynamIQ-style 2 big + 2 medium + 2 little
	// machine with DVFS ladders on every tier.
	Config2B2M2S = cpu.Config2B2M2S
	// Config32B32M64S is the committed big-machine palette: a 128-core
	// tri-gear server (64 little + 32 medium + 32 big) exercising the
	// mask-set affinity representation beyond the inline 64-bit word.
	Config32B32M64S = cpu.Config32B32M64S
	// Config64B64S is the 128-core big.LITTLE shape (64 big + 64 little)
	// at the paper's fixed-frequency anchors.
	Config64B64S = cpu.Config64B64S
	// Config2x32B32M64S is the 256-core two-socket tri-gear NUMA palette:
	// each socket holds 32 big + 32 medium + 64 little cores split into
	// two LLC domains, with the default cold-cache migration penalty.
	Config2x32B32M64S = cpu.Config2x32B32M64S
	// Config4x16B16S is the 128-core four-socket big.LITTLE NUMA palette
	// (16 big + 16 little per socket, one LLC domain each).
	Config4x16B16S = cpu.Config4x16B16S
	// Config2x2B2S is the small two-socket NUMA shape (2 big + 2 little
	// per socket) the determinism tests and migration-cost sweeps use.
	Config2x2B2S = cpu.Config2x2B2S
)

// DefaultMigrationPenaltyCycles is the committed NUMA palettes' cold-cache
// migration penalty in destination-core cycles per LLC-domain hop.
const DefaultMigrationPenaltyCycles = topo.DefaultPenaltyCycles

// The standard tiers: the paper's fixed-frequency anchors plus the
// DVFS-laddered variants the tri-gear machine uses.
var (
	TierLittle     = cpu.TierLittle
	TierBig        = cpu.TierBig
	TierMedium     = cpu.TierMedium
	TierLittleDVFS = cpu.TierLittleDVFS
	TierBigDVFS    = cpu.TierBigDVFS
)

// EvaluatedConfigs returns the four paper platform shapes in paper order.
func EvaluatedConfigs() []Config { return cpu.EvaluatedConfigs() }

// NewConfig builds an arbitrary nBig+nLittle machine; bigFirst selects core
// ordering (initial placement follows core order).
func NewConfig(nBig, nLittle int, bigFirst bool) Config {
	return cpu.NewConfig(nBig, nLittle, bigFirst)
}

// NewTieredConfig builds a machine over an arbitrary tier palette (listed
// in ascending capacity with per-tier core counts); bigFirst lays tiers out
// from the fastest cluster down. See cpu.NewTieredConfig for naming rules.
func NewTieredConfig(tiers []Tier, counts []int, bigFirst bool) Config {
	return cpu.NewTieredConfig(tiers, counts, bigFirst)
}

// TriGearTiers returns the three-tier DynamIQ-style palette
// (little+medium+big, all with DVFS ladders) in ascending capacity order.
func TriGearTiers() []Tier { return cpu.TriGearTiers() }

// NewNUMAConfig builds a multi-socket machine: sockets identical sockets,
// each carrying countsPerSocket[i] cores of tiers[i] split contiguously
// into domainsPerSocket shared-LLC domains, with penaltyCycles cold-cache
// migration cost per inter-domain hop (1 hop within a socket, 2 across
// sockets). A penalty of 0 schedules bit-identically to the flat machine.
func NewNUMAConfig(sockets, domainsPerSocket int, tiers []Tier, countsPerSocket []int, penaltyCycles float64, bigFirst bool) Config {
	return cpu.NewNUMAConfig(sockets, domainsPerSocket, tiers, countsPerSocket, penaltyCycles, bigFirst)
}

// WithTopology returns the config with the given socket/LLC-domain layout
// attached (Uniform topologies come from NewNUMAConfig; hand-built ones
// are validated on the next Run).
func WithTopology(cfg Config, t Topology) Config { return cfg.WithTopology(t) }

// UniformTopology builds a regular socket-major layout: sockets ×
// domainsPerSocket LLC domains of coresPerDomain cores each.
func UniformTopology(sockets, domainsPerSocket, coresPerDomain int, penaltyCycles float64) Topology {
	return topo.Uniform(sockets, domainsPerSocket, coresPerDomain, penaltyCycles)
}

// Benchmarks returns the fifteen Table 3 benchmark generators (the fixed
// paper set; RegisteredBenchmarks includes user registrations).
func Benchmarks() []Benchmark { return workload.All() }

// Compositions returns the 26 Table 4 multi-programmed workloads.
func Compositions() []Composition { return workload.Compositions() }

// BuildWorkload instantiates a workload from a registered scenario name (a
// Table 4 index like "Sync-2", or anything from RegisterScenario) or a
// scenario-grammar spec ("ferret:4+bodytrack:8", "Sync-2@seed=7",
// "ferret:4@arrive=poisson(5ms)"). Unknown names error with the registered
// inventories. Each call yields fresh threads; a workload is single-use.
func BuildWorkload(spec string, seed uint64) (*Workload, error) {
	s, err := workload.ResolveSpec(spec)
	if err != nil {
		return nil, fmt.Errorf("colab: %w", err)
	}
	w, err := s.Build(seed)
	if err != nil {
		return nil, fmt.Errorf("colab: %w", err)
	}
	return w, nil
}

// BuildWorkloadOn is BuildWorkload with a target machine supplied: specs
// whose load generator derives its arrival rate from the machine
// (load=util) need cfg's aggregate capacity; every other spec builds
// identically either way.
func BuildWorkloadOn(spec string, seed uint64, cfg Config) (*Workload, error) {
	s, err := workload.ResolveSpec(spec)
	if err != nil {
		return nil, fmt.Errorf("colab: %w", err)
	}
	w, err := s.BuildFor(seed, cfg.AggregateCapacity())
	if err != nil {
		return nil, fmt.Errorf("colab: %w", err)
	}
	return w, nil
}

// BuildBenchmark instantiates one benchmark alone (the Figure 4 setting).
// Unknown names error with the full registered-benchmark list.
func BuildBenchmark(name string, threads int, seed uint64) (*Workload, error) {
	return workload.SingleProgram(name, threads, seed)
}

// TrainSpeedupModel collects the symmetric training runs and fits the
// standard six-counter speedup model (Table 2). The result is cached
// process-wide.
func TrainSpeedupModel() (*SpeedupModel, error) { return perfmodel.Default() }

// TrainTieredSpeedupModel collects per-tier symmetric training runs over an
// arbitrary palette (ascending capacity, >= 2 tiers) and fits one
// six-counter model per upper tier.
func TrainTieredSpeedupModel(tiers []Tier) (*TieredSpeedupModel, error) {
	return perfmodel.TrainTiered(tiers, perfmodel.CollectOptions{})
}

// TrainTriGearSpeedupModel returns the process-cached tiered model for the
// standard tri-gear palette (TriGearTiers).
func TrainTriGearSpeedupModel() (*TieredSpeedupModel, error) { return perfmodel.DefaultTriGear() }

// mustPolicy builds a built-in policy whose factory cannot fail.
func mustPolicy(name string, ctx policy.Context) Scheduler {
	s, err := policy.New(name, ctx)
	if err != nil {
		panic(err)
	}
	return s
}

// predictorContext wraps an optional model into a policy context.
func predictorContext(model *SpeedupModel) policy.Context {
	ctx := policy.Context{}
	if model != nil {
		ctx.Speedup = model.ThreadPredictor()
	}
	return ctx
}

// NewLinux returns the Linux CFS baseline policy.
func NewLinux() Scheduler { return mustPolicy(policy.Linux, policy.Context{}) }

// NewWASH returns the WASH (CGO 2016) policy driven by the given speedup
// model; nil model selects a neutral predictor.
func NewWASH(model *SpeedupModel) Scheduler {
	return mustPolicy(policy.WASH, predictorContext(model))
}

// COLABOptions tunes the COLAB policy (zero value = paper configuration).
type COLABOptions = colabsched.Options

// NewCOLAB returns the COLAB policy driven by the given speedup model; nil
// model selects a neutral predictor.
func NewCOLAB(model *SpeedupModel) Scheduler {
	return mustPolicy(policy.COLAB, predictorContext(model))
}

// NewCOLABWithOptions returns a COLAB policy with explicit options (for
// ablations and tuning studies).
func NewCOLABWithOptions(o COLABOptions) Scheduler { return colabsched.New(o) }

// NewCOLABDVFS returns the COLAB policy with its native label-driven DVFS
// governor enabled and, when a tiered model is given, per-tier trained
// speedup predictions instead of anchor interpolation. On fixed-frequency
// machines (the paper's configs) the governor never engages and only the
// prediction source differs.
func NewCOLABDVFS(model *SpeedupModel, tiered *TieredSpeedupModel) Scheduler {
	o := colabsched.Options{Governor: true}
	if model != nil {
		o.Speedup = model.ThreadPredictor()
	}
	if tiered != nil {
		// The palette disables per-tier predictions on machines the model
		// was not trained for (interpolation takes over there).
		o.TierSpeedup, o.TierSpeedupTiers = tiered.TierPredictor(), tiered.Tiers
	}
	return colabsched.New(o)
}

// NewGTS returns the ARM Global Task Scheduling-like policy.
func NewGTS() Scheduler { return mustPolicy(policy.GTS, policy.Context{}) }

// NewEAS returns the Linux Energy-Aware-Scheduling-like policy (extension:
// the modern mainline big.LITTLE baseline, post-dating the paper).
func NewEAS() Scheduler { return mustPolicy(policy.EAS, policy.Context{}) }

// Run simulates workload w on config cfg under the given policy with
// default kernel costs. For sweeps (many workloads, machines, policies or
// seeds) prefer the Experiment session API, which parallelises and scores
// automatically; Run and its sibling entry points below are the
// single-shot compatibility surface.
func Run(cfg Config, s Scheduler, w *Workload) (*Result, error) {
	return RunWithParams(cfg, s, w, Params{})
}

// RunWithParams simulates with explicit kernel costs.
func RunWithParams(cfg Config, s Scheduler, w *Workload, p Params) (*Result, error) {
	return RunContext(context.Background(), cfg, s, w, p)
}

// RunContext simulates with explicit kernel costs and cooperative
// cancellation: the simulated kernel's event loop checks ctx periodically
// and returns a wrapped ctx.Err() as soon as the context is done.
func RunContext(ctx context.Context, cfg Config, s Scheduler, w *Workload, p Params) (*Result, error) {
	m, err := kernel.NewMachine(cfg, s, w, p)
	if err != nil {
		return nil, err
	}
	return m.RunContext(ctx)
}

// TraceEvent is one timestamped scheduling event (dispatch, migrate, block,
// wake, preempt, rotate, idle, done).
type TraceEvent = kernel.TraceEvent

// RunTraced simulates like Run while streaming every scheduling event to
// the tracer callback.
func RunTraced(cfg Config, s Scheduler, w *Workload, tracer func(TraceEvent)) (*Result, error) {
	m, err := kernel.NewMachine(cfg, s, w, Params{})
	if err != nil {
		return nil, err
	}
	m.SetTracer(tracer)
	return m.Run()
}

// Score computes H_ANTT / H_STP for a finished mix given per-app big-only
// baseline turnarounds in app order.
func Score(res *Result, baselines []Time) (MixScore, error) {
	if len(baselines) != len(res.Apps) {
		return MixScore{}, fmt.Errorf("colab: %d baselines for %d apps", len(baselines), len(res.Apps))
	}
	return metrics.Score(res, func(i int, _ kernel.AppResult) Time { return baselines[i] })
}

// Durations for workload authors and option tuning.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)
