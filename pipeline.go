package colab

import (
	"colab/internal/kernel"
	"colab/internal/policy"
	"colab/internal/sched/cfs"
)

// This file is the public policy-pipeline surface: schedulers as
// compositions of four first-class stages. The paper's core argument is
// that the multi-factor labeler, the core allocator and the thread
// selector must be decomposed and co-designed; here the decomposition is
// the API. Build pipelines three ways:
//
//   - by name, through the composition grammar accepted everywhere a
//     policy name is (WithPolicies, NewPolicy, colab-sim -sched, ...):
//
//     "colab.labeler+wash.selector+colab.governor"
//
//   - declaratively, from stage values (your own implementations or
//     registry-built ones via NewStage):
//
//     sched, err := colab.Pipeline{Labeler: myLabeler}.Scheduler()
//
//   - by registering custom stages (RegisterStage), which drops them into
//     the same grammar namespace as the built-ins.

// Pipeline stage interfaces and shared state, re-exported for stage
// authors.
type (
	// PipelineStage is the base contract of every stage (Name + Start).
	PipelineStage = kernel.Stage
	// Labeler is the periodic labeling stage: it observes threads,
	// refreshes runtime models and publishes per-thread Hints (and may
	// steer affinity through PipelineContext.Requeue).
	Labeler = kernel.Labeler
	// Allocator is the core-allocation stage (~ select_task_rq_fair).
	Allocator = kernel.Allocator
	// Selector is the thread-selection stage (~ pick_next_task_fair) plus
	// the fairness hooks tied to selection order.
	Selector = kernel.Selector
	// Governor is the per-dispatch DVFS stage.
	Governor = kernel.Governor
	// PipelineContext is the shared state stages operate on: the machine,
	// the per-core run queues, the hint board and the affinity requeue
	// hook.
	PipelineContext = kernel.PipelineContext
	// RunQueues is the pipeline's shared per-core ready-queue state.
	RunQueues = kernel.RunQueues
	// Hint is the per-thread blackboard entry labelers publish and other
	// stages read.
	Hint = kernel.Hint
	// HintBoard holds the live threads' hints.
	HintBoard = kernel.HintBoard
)

// StageSlot identifies a pipeline stage position in the stage registry and
// the composition grammar.
type StageSlot = policy.Slot

// The four pipeline slots.
const (
	SlotLabeler   = policy.SlotLabeler
	SlotAllocator = policy.SlotAllocator
	SlotSelector  = policy.SlotSelector
	SlotGovernor  = policy.SlotGovernor
)

// StageSlots returns the pipeline slots in pipeline order.
func StageSlots() []StageSlot { return policy.Slots() }

// StageFactory builds one stage instance from the shared context. The
// result must implement the slot's interface (Labeler, Allocator, Selector
// or Governor — checked when a pipeline is built from it).
type StageFactory = policy.StageFactory

// RegisterStage adds a user stage under (slot, name), making
// "<name>.<slot>" addressable in the composition grammar everywhere a
// policy name is accepted. It errors on an unknown slot, an invalid name,
// a nil factory, or a collision.
func RegisterStage(slot StageSlot, name string, f StageFactory) error {
	return policy.RegisterStage(slot, name, f)
}

// MustRegisterStage is RegisterStage for init-time use; it panics on error.
func MustRegisterStage(slot StageSlot, name string, f StageFactory) {
	policy.MustRegisterStage(slot, name, f)
}

// StageNames returns every registered stage name for the slot (built-in
// and user) in sorted order.
func StageNames(slot StageSlot) []string { return policy.StageNames(slot) }

// NewStage instantiates a registered stage by (slot, name) — the way to
// obtain built-in stage instances for a hand-assembled Pipeline. Unknown
// names error with the slot's registered-name list.
func NewStage(slot StageSlot, name string, ctx PolicyContext) (PipelineStage, error) {
	return policy.NewStage(slot, name, ctx)
}

// CanonicalComposition returns the composition-grammar equivalent of a
// built-in policy name ("colab" -> "colab.labeler+colab.allocator+
// colab.selector", ...), or false for policies without a canonical stage
// decomposition. The canonical compositions reproduce their policies
// byte-identically (golden-corpus guarded).
func CanonicalComposition(name string) (string, bool) { return policy.CanonicalComposition(name) }

// Pipeline is a declarative stage composition. Allocator and Selector
// default to the CFS stages when nil (the mechanical scheduling base);
// Labeler and Governor are optional refinements. The zero Pipeline is
// therefore plain CFS.
type Pipeline struct {
	// Name labels the composed scheduler; empty derives one from the stage
	// names ("colab.labeler+linux.allocator+linux.selector").
	Name string
	// Labeler is the periodic labeling stage (nil: no labeling pass).
	Labeler Labeler
	// Allocator is the core-allocation stage (nil: CFS least-loaded).
	Allocator Allocator
	// Selector is the thread-selection stage (nil: CFS timeline).
	Selector Selector
	// Governor is the DVFS stage (nil: every core at nominal frequency).
	Governor Governor
}

// Scheduler composes the stages into a Scheduler ready for Run or a custom
// RegisterPolicy factory.
func (p Pipeline) Scheduler() (Scheduler, error) {
	alloc := p.Allocator
	if alloc == nil {
		alloc = cfs.NewAllocator(cfs.Options{})
	}
	sel := p.Selector
	if sel == nil {
		sel = cfs.NewSelector(cfs.Options{})
	}
	return kernel.NewPipeline(p.Name, p.Labeler, alloc, sel, p.Governor)
}
