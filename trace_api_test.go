package colab_test

import (
	"testing"

	colab "colab"
)

func TestRunTracedStreamsEvents(t *testing.T) {
	w, err := colab.BuildBenchmark("swaptions", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	res, err := colab.RunTraced(colab.Config2B2S, colab.NewLinux(), w, func(e colab.TraceEvent) {
		counts[string(e.Kind)]++
	})
	if err != nil {
		t.Fatal(err)
	}
	if counts["dispatch"] == 0 {
		t.Fatalf("no dispatch events traced: %v", counts)
	}
	if counts["done"] != 4 {
		t.Fatalf("done events = %d, want 4", counts["done"])
	}
	if res.Makespan() <= 0 {
		t.Fatalf("run produced no result")
	}
}

func TestCustomWorkloadThroughFacade(t *testing.T) {
	// Author a two-stage pipeline directly against the public DSL.
	app := &colab.App{ID: 0, Name: "custom", Queues: []colab.QueueSpec{{ID: 1, Capacity: 2}}}
	hot := colab.WorkProfile{ILP: 0.9, MemIntensity: 0.1, FPRate: 0.5}
	var prod, cons colab.Program
	for i := 0; i < 10; i++ {
		prod = append(prod, colab.Compute{Work: 1e6}, colab.Put{ID: 1})
		cons = append(cons, colab.Get{ID: 1}, colab.Compute{Work: 2e6})
	}
	app.Threads = []*colab.Thread{
		{App: app, Name: "prod", Profile: hot, Program: prod},
		{App: app, Name: "cons", Profile: hot, Program: cons},
	}
	w := &colab.Workload{Name: "custom", Apps: []*colab.App{app}}
	res, err := colab.Run(colab.NewConfig(1, 1, true), colab.NewCOLAB(nil), w)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalEnergyJ() <= 0 {
		t.Fatalf("energy accounting missing")
	}
	if tt, ok := res.AppTurnaround("custom"); !ok || tt <= 0 {
		t.Fatalf("custom app did not run")
	}
}
