package colab_test

import (
	"strings"
	"testing"

	colab "colab"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	model, err := colab.TrainSpeedupModel()
	if err != nil {
		t.Fatal(err)
	}
	w, err := colab.BuildWorkload("Comp-1", 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := colab.Run(colab.Config2B2S, colab.NewCOLAB(model), w)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 2 {
		t.Fatalf("apps = %d", len(res.Apps))
	}
	for _, a := range res.Apps {
		if a.Turnaround <= 0 {
			t.Fatalf("app %s unfinished", a.Name)
		}
	}
	var sb strings.Builder
	res.WriteSummary(&sb)
	if !strings.Contains(sb.String(), "colab") {
		t.Fatalf("summary missing scheduler name:\n%s", sb.String())
	}
}

func TestPublicAPIBaselineScoring(t *testing.T) {
	// Run each app alone on all-big, then the mix, and score it.
	mk := func() *colab.Workload {
		w, err := colab.BuildWorkload("NSync-1", 4)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	bases := make([]colab.Time, 2)
	for i := 0; i < 2; i++ {
		w := mk()
		alone := &colab.Workload{Name: "alone", Apps: []*colab.App{w.Apps[i]}}
		res, err := colab.Run(colab.NewConfig(4, 0, true), colab.NewLinux(), alone)
		if err != nil {
			t.Fatal(err)
		}
		bases[i] = res.Apps[0].Turnaround
	}
	res, err := colab.Run(colab.Config2B2S, colab.NewLinux(), mk())
	if err != nil {
		t.Fatal(err)
	}
	score, err := colab.Score(res, bases)
	if err != nil {
		t.Fatal(err)
	}
	if score.HANTT < 1 {
		t.Fatalf("mix cannot beat big-only-alone: H_ANTT %v", score.HANTT)
	}
	if _, err := colab.Score(res, bases[:1]); err == nil {
		t.Fatalf("baseline length mismatch must error")
	}
}

func TestPublicAPIErrorsAndConstructors(t *testing.T) {
	if _, err := colab.BuildWorkload("Nope-3", 1); err == nil {
		t.Fatalf("unknown workload must error")
	}
	if _, err := colab.BuildBenchmark("nope", 4, 1); err == nil {
		t.Fatalf("unknown benchmark must error")
	}
	if got := len(colab.Benchmarks()); got != 15 {
		t.Fatalf("benchmarks = %d", got)
	}
	if got := len(colab.Compositions()); got != 26 {
		t.Fatalf("compositions = %d", got)
	}
	if got := len(colab.EvaluatedConfigs()); got != 4 {
		t.Fatalf("configs = %d", got)
	}
	cfg := colab.NewConfig(3, 1, false)
	if cfg.NumBig() != 3 || cfg.NumLittle() != 1 {
		t.Fatalf("NewConfig shape wrong")
	}
	for _, s := range []colab.Scheduler{
		colab.NewLinux(), colab.NewWASH(nil), colab.NewCOLAB(nil), colab.NewGTS(),
		colab.NewCOLABWithOptions(colab.COLABOptions{DisablePull: true}),
	} {
		if s.Name() == "" {
			t.Fatalf("scheduler without a name")
		}
	}
}

// All four policies must agree on total retired work for the same workload
// (conservation: scheduling changes when, not how much).
func TestWorkConservationAcrossSchedulers(t *testing.T) {
	model, err := colab.TrainSpeedupModel()
	if err != nil {
		t.Fatal(err)
	}
	want := -1.0
	for _, mk := range []func() colab.Scheduler{
		colab.NewLinux,
		func() colab.Scheduler { return colab.NewWASH(model) },
		func() colab.Scheduler { return colab.NewCOLAB(model) },
		colab.NewGTS,
	} {
		w, err := colab.BuildWorkload("Sync-1", 6)
		if err != nil {
			t.Fatal(err)
		}
		res, err := colab.Run(colab.Config2B4S, mk(), w)
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, th := range res.Threads {
			total += th.WorkDone
		}
		if want < 0 {
			want = total
		} else if diff := total/want - 1; diff > 0.0001 || diff < -0.0001 {
			t.Fatalf("retired work differs across schedulers: %v vs %v", total, want)
		}
	}
}
